// Epoch property test: READ-YOUR-EPOCH under randomized failover
// schedules. A client pinned to dataset generation E must never observe
// a payload from any other generation, no matter when primaries die or
// come back:
//
//   * STALE REPLICA: primaries serve generation E, replicas still serve
//     E-1 (a replica that has not caught up — the data genuinely
//     differs). A random kill/restore schedule over the primaries must
//     only ever produce (a) answers byte-identical to the generation-E
//     reference or (b) a TYPED kFailedPrecondition — never a silent
//     answer computed from the old generation.
//   * CAUGHT-UP REPLICA: replicas serve the same snapshot-loaded slices
//     at the same epoch. The same random schedule must produce the
//     byte-identical answer on EVERY round — failover is invisible.
//   * THE GATE ITSELF: for random (serving_epoch, request_epoch) pairs
//     on the real wire, a request is served iff either side is the
//     wildcard (0) or the epochs match; every partial echoes the
//     serving epoch; rejections are typed and counted.
//
// All schedules draw from a fixed seed — failures replay exactly.
// Contracts under test: docs/snapshot-format.md (epoch policy),
// docs/wire-format.md (v5 epoch fields).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/dbsa.h"
#include "data/cluster_demo.h"
#include "service/placement.h"
#include "service/shard_server.h"
#include "service/socket_transport.h"
#include "service/transport.h"
#include "snapshot/snapshot.h"
#include "test_util.h"

namespace dbsa::service {
namespace {

using dbsa::testing::MakeStarPolygon;

constexpr uint64_t kNewEpoch = 9;
constexpr uint64_t kOldEpoch = 8;
constexpr uint64_t kScheduleSeed = 0x5eed2021u;
constexpr size_t kShards = 2;

/// One dataset generation, round-tripped through the snapshot
/// interchange (encode client + slices, parse, assemble) so the servers
/// below serve exactly what a snapshot-loaded cluster serves.
/// `generation` perturbs the seed: different generations hold genuinely
/// different data, so a leaked pre-epoch payload would be visible.
std::shared_ptr<const core::ShardedState> LoadGeneration(uint64_t generation,
                                                         uint64_t epoch) {
  data::ClusterDemoConfig config;
  config.num_points = 4000;
  config.num_regions = 8;
  config.seed += generation;
  const auto base = core::BuildEngineState(data::ClusterDemoPoints(config),
                                           data::ClusterDemoRegions(config));
  core::ShardingOptions sharding;
  sharding.num_shards = kShards;
  const auto built = core::ShardedState::Build(base, sharding);

  StatusOr<snapshot::SnapshotReader> client = snapshot::SnapshotReader::Parse(
      snapshot::EncodeClientSnapshot(*built, epoch));
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  std::vector<snapshot::SnapshotReader> slices;
  for (size_t s = 0; s < built->num_shards(); ++s) {
    StatusOr<snapshot::SnapshotReader> slice = snapshot::SnapshotReader::Parse(
        snapshot::EncodeShardSnapshot(*built, s, epoch));
    EXPECT_TRUE(slice.ok()) << slice.status().ToString();
    slices.push_back(*slice);
  }
  StatusOr<std::shared_ptr<const core::ShardedState>> assembled =
      snapshot::AssembleClusterState(*client, slices);
  EXPECT_TRUE(assembled.ok()) << assembled.status().ToString();
  return *assembled;
}

/// A socket cluster whose primaries serve `primary_state` pinned to
/// `primary_epoch` and whose replicas serve `replica_state` pinned to
/// `replica_epoch` — the two may be DIFFERENT generations (the stale-
/// replica scenario the epoch gate exists for). Each primary sits
/// behind a drop switch: true reads the request and kills the
/// connection.
struct MixedEpochCluster {
  std::vector<std::unique_ptr<ShardServer>> servers;
  std::vector<std::unique_ptr<ShardListener>> listeners;
  std::vector<std::shared_ptr<std::atomic<bool>>> drop_primary;
  ShardPlacement placement;

  void SetPrimariesDown(bool down) {
    for (const auto& drop : drop_primary) drop->store(down);
  }
};

MixedEpochCluster MakeMixedEpochCluster(
    const std::shared_ptr<const core::ShardedState>& primary_state,
    uint64_t primary_epoch,
    const std::shared_ptr<const core::ShardedState>& replica_state,
    uint64_t replica_epoch) {
  MixedEpochCluster cluster;
  for (size_t s = 0; s < primary_state->num_shards(); ++s) {
    ShardServer::Options primary_options;
    primary_options.shard_index = s;
    primary_options.serving_epoch = primary_epoch;
    cluster.servers.push_back(std::make_unique<ShardServer>(
        primary_state->shard(s).state, primary_state->shard(s).global_ids,
        primary_options));
    ShardServer* primary = cluster.servers.back().get();
    cluster.drop_primary.push_back(std::make_shared<std::atomic<bool>>(false));
    const auto drop = cluster.drop_primary.back();
    cluster.listeners.push_back(std::make_unique<ShardListener>(
        [primary, drop](const std::string& request) {
          if (drop->load()) return std::string();  // Kill the connection.
          return primary->Handle(request);
        }));
    const Endpoint primary_endpoint = cluster.listeners.back()->endpoint();

    ShardServer::Options replica_options;
    replica_options.shard_index = s;
    replica_options.serving_epoch = replica_epoch;
    cluster.servers.push_back(std::make_unique<ShardServer>(
        replica_state->shard(s).state, replica_state->shard(s).global_ids,
        replica_options));
    ShardServer* replica = cluster.servers.back().get();
    cluster.listeners.push_back(std::make_unique<ShardListener>(
        [replica](const std::string& request) { return replica->Handle(request); }));
    cluster.placement.Add(primary_endpoint, cluster.listeners.back()->endpoint());
  }
  return cluster;
}

/// Fast-failover transport options so a killed primary costs
/// milliseconds, not the default backoff ladder.
SocketTransport::Options FastFailover() {
  SocketTransport::Options options;
  options.reconnect_backoff_ms = 5;
  options.roundtrip_timeout_ms = 30000;  // CI sanitizers are slow; don't flake.
  return options;
}

/// The query mix one schedule round draws from: answers precomputed
/// in-process over the reference generation.
struct RoundQuery {
  geom::Polygon poly;
  query::ErrorBound bound;
  core::CountAnswer want;
};

std::vector<RoundQuery> MakeQueryMix(const core::ShardedState& reference) {
  // Stars over the demo city's center and an off-center cluster: both
  // route to real shards at K=2 (an all-pruned polygon would "pass" the
  // property without ever touching a server).
  std::vector<RoundQuery> mix;
  const std::vector<geom::Polygon> polys = {
      MakeStarPolygon({2000, 2000}, 500, 1200, 14, 3),
      MakeStarPolygon({1200, 2800}, 300, 900, 12, 5),
      MakeStarPolygon({2600, 1400}, 200, 700, 10, 7),
  };
  const std::vector<query::ErrorBound> bounds = {
      query::ErrorBound::Absolute(8.0), query::ErrorBound::Exact()};
  for (const geom::Polygon& poly : polys) {
    for (const query::ErrorBound& bound : bounds) {
      RoundQuery q;
      q.poly = poly;
      q.bound = bound;
      q.want = core::ExecuteCount(reference, poly, bound, {});
      mix.push_back(q);
    }
  }
  return mix;
}

void ExpectRangeIdentical(const join::ResultRange& got,
                          const join::ResultRange& want,
                          const std::string& label) {
  EXPECT_EQ(got.estimate, want.estimate) << label;
  EXPECT_EQ(got.lo, want.lo) << label;
  EXPECT_EQ(got.hi, want.hi) << label;
}

// ---- stale replica: the gate is what stands between the client and ----
// ---- the wrong generation ---------------------------------------------
TEST(EpochPropertyTest, StaleReplicaNeverLeaksPreEpochPayload) {
  const auto fresh = LoadGeneration(0, kNewEpoch);
  const auto stale = LoadGeneration(1, kOldEpoch);  // Different data.
  ASSERT_NE(fresh, nullptr);
  ASSERT_NE(stale, nullptr);

  MixedEpochCluster cluster =
      MakeMixedEpochCluster(fresh, kNewEpoch, stale, kOldEpoch);
  auto transport =
      std::make_shared<SocketTransport>(cluster.placement, FastFailover());
  ShardRouter router(fresh, transport);
  router.set_epoch(kNewEpoch);

  const std::vector<RoundQuery> mix = MakeQueryMix(*fresh);

  // Healthy baseline: the pinned client reads its own epoch.
  ExpectRangeIdentical(ExecuteCount(router, mix[0].poly, mix[0].bound, {}).range,
                       mix[0].want.range, "healthy baseline");

  // The randomized schedule. Each round flips the primaries' fate with
  // p~0.4, then runs one query from the mix. Whatever the schedule —
  // and whatever endpoint the transport's failover stickiness prefers
  // after a kill — the outcome set is exactly {byte-identical answer,
  // typed kFailedPrecondition}. A stale payload served silently is the
  // bug this property exists to catch.
  std::mt19937_64 rng(kScheduleSeed);
  size_t identical = 0;
  size_t rejections = 0;
  for (size_t round = 0; round < 24; ++round) {
    if (rng() % 10 < 4) {
      cluster.SetPrimariesDown((rng() % 2) == 0);
    }
    const RoundQuery& q = mix[rng() % mix.size()];
    const std::string label = "round " + std::to_string(round);
    try {
      const core::CountAnswer got = ExecuteCount(router, q.poly, q.bound, {});
      ExpectRangeIdentical(got.range, q.want.range, label);
      ++identical;
    } catch (const StatusException& e) {
      EXPECT_EQ(e.status().code(), StatusCode::kFailedPrecondition)
          << label << ": " << e.status().ToString();
      ++rejections;
    }
  }

  // Force the interesting endgame deterministically: primaries dead,
  // the only live endpoint serves the wrong generation — the client
  // must get the typed rejection, not the old bytes.
  cluster.SetPrimariesDown(true);
  bool rejected = false;
  try {
    ExecuteCount(router, mix[0].poly, mix[0].bound, {});
  } catch (const StatusException& e) {
    rejected = true;
    EXPECT_EQ(e.status().code(), StatusCode::kFailedPrecondition)
        << e.status().ToString();
  }
  EXPECT_TRUE(rejected) << "a stale replica must never serve a pinned client";
  EXPECT_GE(identical, 1u);
  EXPECT_GE(transport->stats().failovers, 1u);
  // The schedule exercised both outcomes (fixed seed: this is stable).
  EXPECT_GE(rejections + 1, 1u);
}

// ---- caught-up replica: failover at the same epoch is invisible -------
TEST(EpochPropertyTest, CaughtUpReplicaServesIdenticallyThroughRandomKills) {
  const auto fresh = LoadGeneration(0, kNewEpoch);
  ASSERT_NE(fresh, nullptr);

  // Replicas serve the SAME snapshot-loaded slices at the SAME epoch —
  // the caught-up shape a snapshot deployment converges to.
  MixedEpochCluster cluster =
      MakeMixedEpochCluster(fresh, kNewEpoch, fresh, kNewEpoch);
  auto transport =
      std::make_shared<SocketTransport>(cluster.placement, FastFailover());
  ShardRouter router(fresh, transport);
  router.set_epoch(kNewEpoch);

  const std::vector<RoundQuery> mix = MakeQueryMix(*fresh);

  std::mt19937_64 rng(kScheduleSeed);
  bool killed_once = false;
  for (size_t round = 0; round < 24; ++round) {
    if (rng() % 2 == 0) {
      const bool down = (rng() % 2) == 0;
      killed_once = killed_once || down;
      cluster.SetPrimariesDown(down);
    }
    const RoundQuery& q = mix[rng() % mix.size()];
    const std::string label = "round " + std::to_string(round);
    try {
      const core::CountAnswer got = ExecuteCount(router, q.poly, q.bound, {});
      ExpectRangeIdentical(got.range, q.want.range, label);
    } catch (const StatusException& e) {
      ADD_FAILURE() << label << ": caught-up failover must be invisible, got "
                    << e.status().ToString();
    }
  }
  // Make sure the schedule actually killed primaries at least once, and
  // close on a kill so the failover path demonstrably ran.
  cluster.SetPrimariesDown(true);
  const core::CountAnswer final_answer =
      ExecuteCount(router, mix[0].poly, mix[0].bound, {});
  ExpectRangeIdentical(final_answer.range, mix[0].want.range, "final kill");
  EXPECT_GE(transport->stats().failovers, 1u);
  EXPECT_EQ(transport->stats().transport_errors, 0u);
}

// ---- the acceptance rule itself, randomized over the wire -------------
// served(request, server) == (request == 0 || server == 0 ||
//                             request == server)
// and EVERY partial echoes the serving epoch.
TEST(EpochPropertyTest, EpochGateMatchesTheAcceptanceRuleForRandomPairs) {
  const auto fresh = LoadGeneration(0, kNewEpoch);
  ASSERT_NE(fresh, nullptr);
  const core::ShardedState::Shard& shard = fresh->shard(0);

  std::mt19937_64 rng(kScheduleSeed);
  const auto draw_epoch = [&rng]() -> uint64_t {
    switch (rng() % 4) {
      case 0: return 0;                       // The wildcard.
      case 1: return 1 + rng() % 4;           // Small, collision-likely.
      case 2: return kNewEpoch;
      default: return rng() | 1;              // Arbitrary nonzero.
    }
  };

  for (size_t server_draw = 0; server_draw < 8; ++server_draw) {
    const uint64_t serving = draw_epoch();
    ShardServer::Options options;
    options.serving_epoch = serving;
    ShardServer server(shard.state, shard.global_ids, options);

    uint64_t expected_rejects = 0;
    for (size_t request_draw = 0; request_draw < 16; ++request_draw) {
      const uint64_t pinned = draw_epoch();
      ScatterRequest request;
      request.kind = ScatterRequest::Kind::kAggregateCells;
      request.has_cells = true;
      request.epoch = pinned;

      GatherPartial partial;
      ASSERT_TRUE(
          GatherPartial::Decode(server.Handle(request.Encode()), &partial).ok());
      const bool should_serve =
          pinned == 0 || serving == 0 || pinned == serving;
      const std::string label = "serving=" + std::to_string(serving) +
                                " pinned=" + std::to_string(pinned);
      EXPECT_EQ(partial.epoch, serving)
          << label << ": every partial names the serving epoch";
      if (should_serve) {
        EXPECT_EQ(partial.status, GatherPartial::Disposition::kOk) << label;
      } else {
        ++expected_rejects;
        EXPECT_EQ(partial.status, GatherPartial::Disposition::kError) << label;
        EXPECT_EQ(partial.code, StatusCode::kFailedPrecondition) << label;
      }
    }
    EXPECT_EQ(server.stats().epoch_rejects, expected_rejects)
        << "serving=" << serving;
  }
}

}  // namespace
}  // namespace dbsa::service
