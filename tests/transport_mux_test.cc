// Multiplexing hammer for the async socket transport: MANY tagged
// requests in flight on ONE persistent connection per shard, answered by
// a worker-pool listener whose replies complete OUT OF ORDER (slow
// requests are overtaken by fast ones on the same socket). The tests pin
// the correlation contract end to end:
//
//   * every reply pairs with exactly the request that asked for it —
//     each request carries a unique nonce and the handler echoes a
//     transform of it, so any cross-wired correlation id produces a
//     visible payload mismatch, not a silent success;
//   * concurrent blocking Roundtrip() callers and direct async Send()
//     callers share the connection safely (this file runs under TSan
//     and ASan/UBSan in CI);
//   * a reply overtaking an earlier, slower request really is delivered
//     first (out-of-order completion, forced deterministically by
//     stalling one request in the handler).
//
// docs/wire-format.md §correlation documents the rules exercised here.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/placement.h"
#include "service/socket_transport.h"
#include "service/transport.h"

namespace dbsa::service {
namespace {

/// The handler's visible transform: replies carry nonce ^ kEchoMask, so
/// an echoed-back request (or a reply meant for another nonce) can never
/// masquerade as the right answer.
constexpr uint64_t kEchoMask = 0xa5a5a5a5a5a5a5a5ull;

std::string NonceRequest(uint64_t nonce) {
  WireWriter w;
  w.U64(nonce);
  return w.TakeFramed(MessageType::kScatterRequest);
}

/// Decodes the nonce out of a reply frame; 0 on malformed frames (test
/// nonces are never 0).
uint64_t ReplyNonce(const std::string& frame) {
  MessageType type;
  const char* payload = nullptr;
  size_t payload_size = 0;
  if (!ParseFrame(frame, &type, &payload, &payload_size).ok()) return 0;
  WireReader reader(payload, payload_size);
  const uint64_t nonce = reader.U64();
  return reader.ok() ? nonce : 0;
}

/// An echo listener: reads the request nonce, stalls `stall_ms` when the
/// nonce's low bits say so (the out-of-order forcing function), answers
/// nonce ^ kEchoMask. Handler threads make the stalls overlap.
struct EchoCluster {
  explicit EchoCluster(size_t handler_threads, int stall_ms = 0,
                       uint64_t stall_mask = 0) {
    ShardListener::Options options;
    options.handler_threads = handler_threads;
    listener = std::make_unique<ShardListener>(
        [stall_ms, stall_mask](const std::string& request) {
          const uint64_t nonce = ReplyNonce(request);  // Same frame shape.
          if (stall_ms > 0 && stall_mask != 0 && (nonce & stall_mask) != 0) {
            std::this_thread::sleep_for(std::chrono::milliseconds(stall_ms));
          }
          WireWriter w;
          w.U64(nonce ^ kEchoMask);
          return w.TakeFramed(MessageType::kGatherPartial);
        },
        options);
    placement.Add(listener->endpoint());
  }

  std::unique_ptr<ShardListener> listener;
  ShardPlacement placement;
};

TEST(TransportMuxTest, ConcurrentRoundtripsCorrelateExactly) {
  // 8 client threads hammer one shard through the blocking wrapper; the
  // mux interleaves all of them on one connection. Every reply must
  // carry ITS caller's nonce — a single swapped correlation id fails
  // loudly here.
  EchoCluster cluster(/*handler_threads=*/4, /*stall_ms=*/2,
                      /*stall_mask=*/0x3);  // ~3/4 of requests stall 2ms.
  SocketTransport transport(cluster.placement);

  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 50;
  std::atomic<size_t> mismatches{0};
  std::atomic<size_t> errors{0};
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t]() {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t nonce = (uint64_t{t} << 32) | (i + 1);
        try {
          const std::string reply = Roundtrip(transport, 0, NonceRequest(nonce));
          if (ReplyNonce(reply) != (nonce ^ kEchoMask)) mismatches.fetch_add(1);
        } catch (const StatusException&) {
          errors.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& c : clients) c.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(errors.load(), 0u);
  const SocketTransport::Stats stats = transport.stats();
  EXPECT_EQ(stats.messages, kThreads * kPerThread);
  EXPECT_EQ(stats.transport_errors, 0u);
  EXPECT_EQ(stats.timeouts, 0u);
  // One persistent connection carried everything: no per-request dials.
  EXPECT_EQ(stats.dials, 1u);
}

TEST(TransportMuxTest, AsyncSendsCompleteOutOfOrderWithExactPairing) {
  // Direct Send() path: one stalled request issued FIRST must be
  // overtaken by every later request — deterministic out-of-order
  // completion on a single connection — and still pair correctly.
  constexpr int kStallMs = 300;
  constexpr uint64_t kStallBit = uint64_t{1} << 62;
  EchoCluster cluster(/*handler_threads=*/4, kStallMs, kStallBit);
  SocketTransport transport(cluster.placement);

  constexpr size_t kFast = 32;
  struct Completions {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<std::pair<uint64_t, uint64_t>> order;  ///< (nonce, reply).
    size_t failed = 0;
  } done;
  const auto send_one = [&](uint64_t nonce) {
    transport.Send(0, NonceRequest(nonce),
                   [&done, nonce](StatusOr<std::string> result) {
                     std::lock_guard<std::mutex> lock(done.mu);
                     if (result.ok()) {
                       done.order.emplace_back(nonce, ReplyNonce(result.value()));
                     } else {
                       ++done.failed;
                     }
                     done.cv.notify_one();
                   });
  };

  const uint64_t slow_nonce = kStallBit | 1;
  send_one(slow_nonce);  // Issued first, answers last.
  for (uint64_t i = 0; i < kFast; ++i) send_one(i + 2);

  std::unique_lock<std::mutex> lock(done.mu);
  ASSERT_TRUE(done.cv.wait_for(lock, std::chrono::seconds(30), [&]() {
    return done.order.size() + done.failed == kFast + 1;
  })) << "completions lost: " << done.order.size() << " + " << done.failed;
  EXPECT_EQ(done.failed, 0u);

  // Exact pairing for every single completion.
  for (const auto& [nonce, reply] : done.order) {
    EXPECT_EQ(reply, nonce ^ kEchoMask) << "nonce " << nonce;
  }
  // The stalled first request completed dead last: every fast reply
  // overtook it on the same connection.
  ASSERT_FALSE(done.order.empty());
  EXPECT_EQ(done.order.back().first, slow_nonce)
      << "expected the stalled request to finish after all fast ones";
  EXPECT_EQ(transport.stats().messages, kFast + 1);
}

TEST(TransportMuxTest, BlockingEquivalentCapStillCorrelates) {
  // max_inflight_per_connection = 1 degrades the mux to one-at-a-time
  // (the bench's "blocking" arm). Same hammer, same correctness bar.
  EchoCluster cluster(/*handler_threads=*/4);
  SocketTransport::Options options;
  options.max_inflight_per_connection = 1;
  SocketTransport transport(cluster.placement, options);

  constexpr size_t kThreads = 4;
  constexpr uint64_t kPerThread = 25;
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> clients;
  for (size_t t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t]() {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        const uint64_t nonce = (uint64_t{t} << 32) | (i + 1);
        const std::string reply = Roundtrip(transport, 0, NonceRequest(nonce));
        if (ReplyNonce(reply) != (nonce ^ kEchoMask)) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_EQ(transport.stats().messages, kThreads * kPerThread);
}

}  // namespace
}  // namespace dbsa::service
