// Run-to-run determinism: the byte-identity contract restated ACROSS
// process-internal runs, not just across execution paths. The envelope
// suite (query_envelope_test.cc) proves engine == pooled == sharded ==
// transport within one run; this suite proves the other axis the
// determinism gates defend (scripts/check_determinism.sh,
// util/determinism.h):
//
//   * the same mixed workload executed twice through FRESH service
//     stacks — different heap addresses, different hash-table layouts,
//     telemetry on vs off — produces bit-identical payloads;
//   * a shard server's reply FRAMES are byte-identical across repeated
//     calls and across independently constructed server instances
//     (serialization cannot owe a single bit to construction history);
//   * MetricRegistry::RenderText orders families by name, not by
//     registration/insertion history.
//
// A hash-seeded iteration feeding a merge, an address-keyed container,
// or a padding byte reaching an encoder shows up here as a bit diff.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/dbsa.h"
#include "service/query_service.h"
#include "service/shard_server.h"
#include "service/transport.h"
#include "telemetry/metrics.h"
#include "test_util.h"

namespace dbsa::service {
namespace {

using dbsa::testing::MakeRectPolygon;
using dbsa::testing::MakeStarPolygon;
using query::ErrorBound;

struct Submission {
  Query query;
  ExecOptions options;
  std::string label;
};

class DeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::TaxiConfig taxi_config;
    taxi_config.universe = geom::Box(0, 0, 4096, 4096);
    data::PointSet points = data::GenerateTaxiPoints(8000, taxi_config);
    data::RegionConfig region_config;
    region_config.universe = taxi_config.universe;
    region_config.num_polygons = 12;
    region_config.target_avg_vertices = 20;
    region_config.multi_fraction = 0.2;
    data::RegionSet regions = data::GenerateRegions(region_config);
    state_ = core::BuildEngineState(std::move(points), std::move(regions));
  }

  /// Mixed workload: every query kind, approximate and exact regimes,
  /// aggregate plans pinned (byte identity is per pinned plan).
  std::vector<Submission> Workload() const {
    std::vector<Submission> subs;
    const geom::Polygon star = MakeStarPolygon({2000, 2000}, 400, 900, 16, 11);
    const geom::Polygon rect = MakeRectPolygon(600, 700, 1800, 1500);
    for (const ErrorBound& bound :
         {ErrorBound::Absolute(8.0), ErrorBound::AtLevel(7),
          ErrorBound::Exact()}) {
      ExecOptions options;
      options.bound = bound;
      options.mode = core::Mode::kPointIndex;
      subs.push_back({Query::Aggregate(join::AggKind::kCount), options,
                      "count-agg " + bound.ToString()});
      subs.push_back(
          {Query::Aggregate(join::AggKind::kSum, core::Attr::kFare), options,
           "sum-agg " + bound.ToString()});
      subs.push_back({Query::Count(star), options, "count " + bound.ToString()});
      subs.push_back({Query::Select(rect), options,
                      "select " + bound.ToString()});
    }
    return subs;
  }

  /// One complete service lifetime: fresh pool, fresh shard servers,
  /// fresh caches, fresh transport — only `state_` is shared (it is
  /// immutable after build).
  std::vector<Result> RunOnce(bool tracing) const {
    ServiceOptions options;
    options.num_threads = 4;
    options.num_shards = 5;
    options.use_transport = true;
    options.enable_tracing = tracing;
    QueryService service(state_, options);
    std::vector<uint64_t> tickets;
    for (const Submission& sub : Workload()) {
      tickets.push_back(service.Submit(sub.query, sub.options));
    }
    std::vector<Result> results = service.Drain();
    EXPECT_EQ(results.size(), tickets.size());
    for (size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].ticket, tickets[i]);  // Drain keeps submit order.
    }
    return results;
  }

  /// Bit-level equality on the payload-carrying fields. EXPECT_EQ on
  /// doubles is exact comparison — one ulp of drift fails, as it must:
  /// the wire carries these very bits.
  static void ExpectBitIdentical(const Result& got, const Result& want,
                                 const std::string& label) {
    ASSERT_TRUE(got.ok() && want.ok()) << label;
    ASSERT_EQ(got.kind, want.kind) << label;
    switch (want.kind) {
      case QueryKind::kAggregate: {
        ASSERT_EQ(got.aggregate.rows.size(), want.aggregate.rows.size()) << label;
        for (size_t r = 0; r < want.aggregate.rows.size(); ++r) {
          EXPECT_EQ(got.aggregate.rows[r].region, want.aggregate.rows[r].region)
              << label << " region " << r;
          EXPECT_EQ(got.aggregate.rows[r].value, want.aggregate.rows[r].value)
              << label << " region " << r;
          EXPECT_EQ(got.aggregate.rows[r].lo, want.aggregate.rows[r].lo)
              << label << " region " << r;
          EXPECT_EQ(got.aggregate.rows[r].hi, want.aggregate.rows[r].hi)
              << label << " region " << r;
        }
        break;
      }
      case QueryKind::kCount:
        EXPECT_EQ(got.range.estimate, want.range.estimate) << label;
        EXPECT_EQ(got.range.lo, want.range.lo) << label;
        EXPECT_EQ(got.range.hi, want.range.hi) << label;
        break;
      case QueryKind::kSelect:
        ASSERT_EQ(got.ids, want.ids) << label;
        break;
    }
    EXPECT_EQ(got.bound.epsilon_achieved, want.bound.epsilon_achieved) << label;
    EXPECT_EQ(got.bound.hr_level, want.bound.hr_level) << label;
  }

  std::shared_ptr<const core::EngineState> state_;
};

// The tentpole property: two full service lifetimes, one traced and one
// not, answer the mixed workload with bit-identical payloads. A third
// run repeats the traced configuration so the comparison covers both
// "telemetry toggled" and "same config, different run".
TEST_F(DeterminismTest, MixedWorkloadBitIdenticalAcrossRunsAndTelemetry) {
  const std::vector<Submission> workload = Workload();
  const std::vector<Result> traced = RunOnce(/*tracing=*/true);
  const std::vector<Result> untraced = RunOnce(/*tracing=*/false);
  const std::vector<Result> traced_again = RunOnce(/*tracing=*/true);
  ASSERT_EQ(traced.size(), workload.size());
  ASSERT_EQ(untraced.size(), workload.size());
  ASSERT_EQ(traced_again.size(), workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    ExpectBitIdentical(untraced[i], traced[i],
                       "telemetry off vs on: " + workload[i].label);
    ExpectBitIdentical(traced_again[i], traced[i],
                       "rerun vs first run: " + workload[i].label);
  }
}

// Wire-level restatement: a shard's reply frames are byte-identical
// across repeated Handle() calls (first call builds caches, second
// serves from them — the FRAME must not care) and across a second,
// independently constructed server instance over the same slice.
TEST_F(DeterminismTest, ShardReplyFramesByteIdenticalAcrossInstances) {
  const auto sharded = core::ShardedState::Build(state_, {3});
  const core::ShardedState::Shard& slice = sharded->shard(0);
  ShardServer first(slice.state, slice.global_ids);
  ShardServer second(slice.state, slice.global_ids);

  const geom::Polygon star = MakeStarPolygon({2000, 2000}, 400, 900, 16, 11);
  const raster::HierarchicalRaster hr =
      raster::HierarchicalRaster::BuildEpsilon(star, state_->grid, 8.0);

  std::vector<ScatterRequest> requests;
  ScatterRequest aggregate;
  aggregate.kind = ScatterRequest::Kind::kAggregateCells;
  aggregate.level = 7;
  aggregate.has_cells = true;
  aggregate.cells = hr.cells();
  requests.push_back(aggregate);
  ScatterRequest select = aggregate;
  select.kind = ScatterRequest::Kind::kSelectIds;
  requests.push_back(select);

  for (const ScatterRequest& request : requests) {
    const std::string frame = request.Encode();
    // Identical descriptions must encode identically, full stop.
    EXPECT_EQ(frame, request.Encode());
    const std::string cold = first.Handle(frame);
    const std::string warm = first.Handle(frame);
    const std::string other = second.Handle(frame);
    EXPECT_EQ(cold, warm)
        << "cache warm-up changed reply bytes, kind="
        << static_cast<int>(request.kind);
    EXPECT_EQ(cold, other)
        << "server construction history changed reply bytes, kind="
        << static_cast<int>(request.kind);
    GatherPartial partial;
    ASSERT_TRUE(GatherPartial::Decode(cold, &partial).ok());
    ASSERT_EQ(partial.status, GatherPartial::Disposition::kOk);
  }
}

// RenderText exposes families in name order because the registry keys
// its directory with an ordered map — scrape diffs across processes (or
// restarts) are meaningful. Registering the same metrics in opposite
// orders must render the same text.
TEST_F(DeterminismTest, RenderTextStableAcrossRegistrationOrder) {
  telemetry::MetricRegistry forward;
  forward.GetCounter("dbsa_test_requests_total")->Add(7);
  forward.GetGauge("dbsa_test_depth")->Set(3.5);
  forward.GetHistogram("dbsa_test_latency_ms")->Record(12.0);

  telemetry::MetricRegistry reversed;
  reversed.GetHistogram("dbsa_test_latency_ms")->Record(12.0);
  reversed.GetGauge("dbsa_test_depth")->Set(3.5);
  reversed.GetCounter("dbsa_test_requests_total")->Add(7);

  EXPECT_EQ(forward.RenderText(), reversed.RenderText());

  // And the order is the NAME order, not luck: the counter renders
  // before the gauge renders before the histogram.
  const std::string text = forward.RenderText();
  const size_t depth_at = text.find("dbsa_test_depth");
  const size_t latency_at = text.find("dbsa_test_latency_ms");
  const size_t requests_at = text.find("dbsa_test_requests_total");
  ASSERT_NE(depth_at, std::string::npos);
  ASSERT_NE(latency_at, std::string::npos);
  ASSERT_NE(requests_at, std::string::npos);
  EXPECT_LT(depth_at, latency_at);
  EXPECT_LT(latency_at, requests_at);
}

}  // namespace
}  // namespace dbsa::service
