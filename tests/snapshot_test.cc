// Tests for the snapshot interchange (src/snapshot/snapshot.h): the
// writer must be deterministic (byte-identical output for identical
// state), a loaded state must answer every query byte-identically to the
// state it was written from, and the reader must be TOTAL — any
// adversarial input (truncated, bit-flipped, section-spliced, header-
// patched) resolves to a typed Status, never a crash or UB. Corruption
// is kInvalidArgument; a real-but-other format version is kUnimplemented
// (skew, not corruption); cross-file epoch/topology skew in
// AssembleClusterState is kFailedPrecondition. docs/snapshot-format.md
// is the normative spec these tests pin.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <random>
#include <string>
#include <vector>

#include "core/engine_state.h"
#include "core/sharded_state.h"
#include "data/cluster_demo.h"
#include "snapshot/snapshot.h"
#include "test_util.h"

namespace dbsa::snapshot {
namespace {

using dbsa::testing::MakeRectPolygon;
using dbsa::testing::MakeStarPolygon;

/// Small-but-real dataset: every section non-trivial, files small enough
/// that the exhaustive byte-flip sweeps stay fast under sanitizers.
data::ClusterDemoConfig SmallConfig() {
  data::ClusterDemoConfig config;
  config.num_points = 500;
  config.num_regions = 6;
  return config;
}

std::shared_ptr<const core::EngineState> SmallBase() {
  const data::ClusterDemoConfig config = SmallConfig();
  return core::BuildEngineState(data::ClusterDemoPoints(config),
                                data::ClusterDemoRegions(config));
}

std::shared_ptr<const core::ShardedState> SmallSharded(size_t k) {
  core::ShardingOptions sharding;
  sharding.num_shards = k;
  return core::ShardedState::Build(SmallBase(), sharding);
}

void ExpectSameAnswers(const core::EngineState& got, const core::EngineState& want,
                       const std::string& label) {
  const geom::Polygon star = MakeStarPolygon({1500, 1500}, 400, 1200, 12, 7);
  for (const query::ErrorBound& bound :
       {query::ErrorBound::Absolute(8.0), query::ErrorBound::Exact()}) {
    const core::AggregateAnswer agg_got = core::ExecuteAggregate(
        got, join::AggKind::kSum, core::Attr::kFare, bound, core::Mode::kAuto);
    const core::AggregateAnswer agg_want = core::ExecuteAggregate(
        want, join::AggKind::kSum, core::Attr::kFare, bound, core::Mode::kAuto);
    ASSERT_EQ(agg_got.rows.size(), agg_want.rows.size()) << label;
    for (size_t r = 0; r < agg_want.rows.size(); ++r) {
      EXPECT_EQ(agg_got.rows[r].region, agg_want.rows[r].region) << label;
      EXPECT_EQ(agg_got.rows[r].value, agg_want.rows[r].value) << label;
      EXPECT_EQ(agg_got.rows[r].lo, agg_want.rows[r].lo) << label;
      EXPECT_EQ(agg_got.rows[r].hi, agg_want.rows[r].hi) << label;
    }
    const core::CountAnswer count_got = core::ExecuteCount(got, star, bound);
    const core::CountAnswer count_want = core::ExecuteCount(want, star, bound);
    EXPECT_EQ(count_got.range.estimate, count_want.range.estimate) << label;
    EXPECT_EQ(count_got.range.lo, count_want.range.lo) << label;
    EXPECT_EQ(count_got.range.hi, count_want.range.hi) << label;
    const core::SelectAnswer sel_got = core::ExecuteSelect(got, star, bound);
    const core::SelectAnswer sel_want = core::ExecuteSelect(want, star, bound);
    EXPECT_EQ(sel_got.ids, sel_want.ids) << label;
  }
}

// ---- round trips -------------------------------------------------------

TEST(SnapshotTest, ClientSnapshotIsDeterministicAndRoundTrips) {
  const auto sharded = SmallSharded(3);
  const std::string image = EncodeClientSnapshot(*sharded, 7);
  EXPECT_EQ(image, EncodeClientSnapshot(*sharded, 7))
      << "writer must be a pure function of the state";

  StatusOr<SnapshotReader> reader = SnapshotReader::Parse(image);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader->meta().epoch, 7u);
  EXPECT_EQ(reader->meta().shard_index, -1);
  EXPECT_EQ(reader->meta().num_shards, 3u);
  EXPECT_EQ(reader->meta().hilbert_level, 16);
  EXPECT_TRUE(reader->HasSection(SectionId::kRouting));
  EXPECT_FALSE(reader->HasSection(SectionId::kShardIds));

  StatusOr<std::shared_ptr<const core::EngineState>> state =
      reader->AssembleEngineState();
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  const core::EngineState& got = **state;
  const core::EngineState& want = sharded->base();
  ASSERT_EQ(got.points->size(), want.points->size());
  EXPECT_EQ(got.points->locs, want.points->locs);
  EXPECT_EQ(got.points->fare, want.points->fare);
  EXPECT_EQ(got.points->passengers, want.points->passengers);
  EXPECT_EQ(got.points->hour, want.points->hour);
  EXPECT_EQ(got.passengers_as_double, want.passengers_as_double);
  EXPECT_EQ(got.regions->num_regions, want.regions->num_regions);
  EXPECT_EQ(got.regions->region_of, want.regions->region_of);
  EXPECT_EQ(got.regions->names, want.regions->names);
  EXPECT_EQ(got.grid.origin().x, want.grid.origin().x);
  EXPECT_EQ(got.grid.origin().y, want.grid.origin().y);
  EXPECT_EQ(got.grid.side(), want.grid.side());
  ExpectSameAnswers(got, want, "client round trip");
}

TEST(SnapshotTest, ShardSlicesRoundTripWithIdMaps) {
  const size_t k = 3;
  const auto sharded = SmallSharded(k);
  for (size_t s = 0; s < k; ++s) {
    const std::string image = EncodeShardSnapshot(*sharded, s, 9);
    StatusOr<SnapshotReader> reader = SnapshotReader::Parse(image);
    ASSERT_TRUE(reader.ok()) << reader.status().ToString();
    EXPECT_EQ(reader->meta().shard_index, static_cast<int32_t>(s));
    EXPECT_EQ(reader->meta().epoch, 9u);

    StatusOr<std::vector<uint32_t>> ids = reader->DecodeShardIds();
    ASSERT_TRUE(ids.ok()) << ids.status().ToString();
    EXPECT_EQ(*ids, sharded->shard(s).global_ids);

    StatusOr<std::shared_ptr<const core::EngineState>> slice =
        reader->AssembleEngineState();
    ASSERT_TRUE(slice.ok()) << slice.status().ToString();
    ExpectSameAnswers(**slice, *sharded->shard(s).state,
                      "slice " + std::to_string(s));
  }
}

TEST(SnapshotTest, RoutingOnlyAssemblyMatchesBuildMetadata) {
  const auto sharded = SmallSharded(4);
  StatusOr<SnapshotReader> reader =
      SnapshotReader::Parse(EncodeClientSnapshot(*sharded, 3));
  ASSERT_TRUE(reader.ok());
  auto base = reader->AssembleEngineState();
  ASSERT_TRUE(base.ok());
  StatusOr<std::shared_ptr<const core::ShardedState>> routing =
      reader->AssembleRoutingState(*base);
  ASSERT_TRUE(routing.ok()) << routing.status().ToString();
  EXPECT_FALSE((*routing)->has_slices());
  ASSERT_EQ((*routing)->num_shards(), sharded->num_shards());
  for (size_t s = 0; s < sharded->num_shards(); ++s) {
    const core::ShardedState::Shard& got = (*routing)->shard(s);
    const core::ShardedState::Shard& want = sharded->shard(s);
    EXPECT_EQ(got.global_ids, want.global_ids) << "shard " << s;
    EXPECT_EQ(got.hilbert_lo, want.hilbert_lo) << "shard " << s;
    EXPECT_EQ(got.hilbert_hi, want.hilbert_hi) << "shard " << s;
    EXPECT_EQ(got.key_ranges, want.key_ranges) << "shard " << s;
    EXPECT_EQ(got.min_ix, want.min_ix) << "shard " << s;
    EXPECT_EQ(got.max_iy, want.max_iy) << "shard " << s;
    EXPECT_EQ(got.state, nullptr) << "shard " << s;
  }
}

TEST(SnapshotTest, ClusterAssemblyGraftsSlicesAndMatchesBuildExecution) {
  const size_t k = 3;
  const auto sharded = SmallSharded(k);
  StatusOr<SnapshotReader> client =
      SnapshotReader::Parse(EncodeClientSnapshot(*sharded, 5));
  ASSERT_TRUE(client.ok());
  std::vector<SnapshotReader> slices;
  for (size_t s = 0; s < k; ++s) {
    StatusOr<SnapshotReader> slice =
        SnapshotReader::Parse(EncodeShardSnapshot(*sharded, s, 5));
    ASSERT_TRUE(slice.ok());
    slices.push_back(*slice);
  }
  StatusOr<std::shared_ptr<const core::ShardedState>> assembled =
      AssembleClusterState(*client, slices);
  ASSERT_TRUE(assembled.ok()) << assembled.status().ToString();
  EXPECT_TRUE((*assembled)->has_slices());

  // The sharded scatter-gather executor over the assembled state must be
  // byte-identical to the same execution over the built state.
  const core::AggregateAnswer got = core::ExecuteAggregate(
      **assembled, join::AggKind::kSum, core::Attr::kFare,
      query::ErrorBound::Absolute(8.0), core::Mode::kPointIndex);
  const core::AggregateAnswer want = core::ExecuteAggregate(
      *sharded, join::AggKind::kSum, core::Attr::kFare,
      query::ErrorBound::Absolute(8.0), core::Mode::kPointIndex);
  ASSERT_EQ(got.rows.size(), want.rows.size());
  for (size_t r = 0; r < want.rows.size(); ++r) {
    EXPECT_EQ(got.rows[r].value, want.rows[r].value) << "region " << r;
    EXPECT_EQ(got.rows[r].lo, want.rows[r].lo) << "region " << r;
    EXPECT_EQ(got.rows[r].hi, want.rows[r].hi) << "region " << r;
  }
}

// ---- totality ----------------------------------------------------------

TEST(SnapshotTest, EveryDirectoryOrSectionByteFlipIsTypedInvalid) {
  const auto sharded = SmallSharded(2);
  const std::string image = EncodeClientSnapshot(*sharded, 7);
  // Everything after the header is covered by directory validation +
  // section checksums: ANY single-byte corruption there must be caught.
  // (Header fields like the epoch are identity, not payload — a flipped
  // epoch yields a well-formed file of another generation, which the
  // cross-file checks in AssembleClusterState catch instead.)
  for (size_t pos = kSnapshotHeaderSize; pos < image.size(); ++pos) {
    std::string corrupt = image;
    corrupt[pos] = static_cast<char>(corrupt[pos] ^ 0xff);
    StatusOr<SnapshotReader> reader = SnapshotReader::Parse(std::move(corrupt));
    ASSERT_FALSE(reader.ok()) << "flip at " << pos << " parsed";
    EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument)
        << "flip at " << pos << ": " << reader.status().ToString();
  }
}

TEST(SnapshotTest, TruncationAtEveryLengthIsTypedInvalid) {
  const auto sharded = SmallSharded(2);
  const std::string image = EncodeShardSnapshot(*sharded, 0, 7);
  for (size_t len = 0; len < image.size(); ++len) {
    StatusOr<SnapshotReader> reader =
        SnapshotReader::Parse(image.substr(0, len));
    ASSERT_FALSE(reader.ok()) << "prefix of " << len << " parsed";
    EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument)
        << "prefix of " << len;
  }
  // Appending trailing garbage is equally malformed (strict geometry).
  StatusOr<SnapshotReader> padded =
      SnapshotReader::Parse(image + std::string(2, '\0'));
  ASSERT_FALSE(padded.ok());
  EXPECT_EQ(padded.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, HeaderCorruptionIsTypedAndVersionSkewIsUnimplemented) {
  const auto sharded = SmallSharded(2);
  const std::string image = EncodeClientSnapshot(*sharded, 7);
  const auto patched = [&image](size_t pos, std::initializer_list<uint8_t> bytes) {
    std::string out = image;
    size_t i = pos;
    for (const uint8_t b : bytes) out[i++] = static_cast<char>(b);
    return out;
  };

  // Bad magic (offset 0).
  StatusOr<SnapshotReader> bad_magic = SnapshotReader::Parse(patched(0, {0x5a}));
  EXPECT_EQ(bad_magic.status().code(), StatusCode::kInvalidArgument);

  // Another format version (offset 4, u16 LE): SKEW, not corruption.
  StatusOr<SnapshotReader> skew = SnapshotReader::Parse(patched(4, {2, 0}));
  EXPECT_EQ(skew.status().code(), StatusCode::kUnimplemented);

  // Nonzero reserved (offset 6).
  StatusOr<SnapshotReader> reserved = SnapshotReader::Parse(patched(6, {1}));
  EXPECT_EQ(reserved.status().code(), StatusCode::kInvalidArgument);

  // Epoch 0 (offset 8, u64): the wire wildcard must never stamp a file.
  StatusOr<SnapshotReader> epoch0 =
      SnapshotReader::Parse(patched(8, {0, 0, 0, 0, 0, 0, 0, 0}));
  EXPECT_EQ(epoch0.status().code(), StatusCode::kInvalidArgument);

  // shard_index below -1 (offset 16, i32 LE): -2.
  StatusOr<SnapshotReader> shard =
      SnapshotReader::Parse(patched(16, {0xfe, 0xff, 0xff, 0xff}));
  EXPECT_EQ(shard.status().code(), StatusCode::kInvalidArgument);

  // Hilbert level out of [0, 32] (offset 24).
  StatusOr<SnapshotReader> hilbert = SnapshotReader::Parse(patched(24, {99, 0, 0, 0}));
  EXPECT_EQ(hilbert.status().code(), StatusCode::kInvalidArgument);

  // Absurd section count (offset 28).
  StatusOr<SnapshotReader> sections = SnapshotReader::Parse(patched(28, {200}));
  EXPECT_EQ(sections.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, GarbageAndEmptyInputsAreTyped) {
  EXPECT_EQ(SnapshotReader::Parse("").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(SnapshotReader::Parse("snap").status().code(),
            StatusCode::kInvalidArgument);
  std::mt19937_64 rng(20210111);
  for (int round = 0; round < 64; ++round) {
    std::string blob;
    const size_t len = rng() % 512;
    blob.reserve(len);
    for (size_t i = 0; i < len; ++i) blob.push_back(static_cast<char>(rng()));
    StatusOr<SnapshotReader> reader = SnapshotReader::Parse(std::move(blob));
    if (!reader.ok()) {
      EXPECT_TRUE(reader.status().code() == StatusCode::kInvalidArgument ||
                  reader.status().code() == StatusCode::kUnimplemented)
          << reader.status().ToString();
    }
  }
}

TEST(SnapshotTest, SectionSpliceAcrossFilesIsDetected) {
  // Both files are individually valid; grafting a run of shard 1's
  // section bytes into shard 0's file at the same offsets leaves the
  // frame intact but changes guarded payload — the per-section checksum
  // must catch it (splice, not random noise: bytes come from a real
  // well-formed sibling file).
  const auto sharded = SmallSharded(2);
  const std::string a = EncodeShardSnapshot(*sharded, 0, 7);
  const std::string b = EncodeShardSnapshot(*sharded, 1, 7);
  ASSERT_TRUE(SnapshotReader::Parse(a).ok());
  ASSERT_TRUE(SnapshotReader::Parse(b).ok());
  // Splice inside the POINTS section (the first section whose bytes
  // differ between sibling slices — the grid and regions sections are
  // shared): it starts right after the 7-entry directory + 24-byte grid
  // section in both files.
  const size_t splice_at = kSnapshotHeaderSize + 7 * kSnapshotDirEntrySize + 24 + 16;
  ASSERT_GT(std::min(a.size(), b.size()), splice_at + 256);
  std::string spliced = a;
  std::memcpy(&spliced[splice_at], b.data() + splice_at, 256);
  ASSERT_NE(spliced, a) << "sibling slices coincided; pick a bigger splice";
  StatusOr<SnapshotReader> reader = SnapshotReader::Parse(std::move(spliced));
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument);
}

// ---- files -------------------------------------------------------------

TEST(SnapshotTest, WriteFileThenLoadRoundTripsAndMissingIsNotFound) {
  const auto sharded = SmallSharded(2);
  SnapshotMeta meta;
  meta.epoch = 11;
  meta.shard_index = -1;
  meta.num_shards = 2;
  SnapshotWriter writer(meta);
  AddEngineStateSections(sharded->base(), &writer);
  const std::string path = "snapshot_test.tmp";
  ASSERT_TRUE(writer.WriteFile(path).ok());
  StatusOr<SnapshotReader> loaded = SnapshotReader::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->meta().epoch, 11u);
  StatusOr<std::shared_ptr<const core::EngineState>> state =
      loaded->AssembleEngineState();
  ASSERT_TRUE(state.ok()) << state.status().ToString();
  EXPECT_EQ((*state)->points->size(), sharded->base().points->size());
  std::remove(path.c_str());

  StatusOr<SnapshotReader> missing = SnapshotReader::Load("definitely/not/here");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

// ---- cross-file skew ---------------------------------------------------

TEST(SnapshotTest, ClusterAssemblyRejectsEpochAndTopologySkewTyped) {
  const size_t k = 2;
  const auto sharded = SmallSharded(k);
  StatusOr<SnapshotReader> client =
      SnapshotReader::Parse(EncodeClientSnapshot(*sharded, 5));
  ASSERT_TRUE(client.ok());
  std::vector<SnapshotReader> good;
  for (size_t s = 0; s < k; ++s) {
    good.push_back(*SnapshotReader::Parse(EncodeShardSnapshot(*sharded, s, 5)));
  }
  ASSERT_TRUE(AssembleClusterState(*client, good).ok());

  // A slice of another epoch: FAILED PRECONDITION (skew, not corruption).
  std::vector<SnapshotReader> stale = good;
  stale[1] = *SnapshotReader::Parse(EncodeShardSnapshot(*sharded, 1, 4));
  StatusOr<std::shared_ptr<const core::ShardedState>> epoch_skew =
      AssembleClusterState(*client, stale);
  ASSERT_FALSE(epoch_skew.ok());
  EXPECT_EQ(epoch_skew.status().code(), StatusCode::kFailedPrecondition);

  // Slices out of position (shard 1's file where shard 0's should be).
  std::vector<SnapshotReader> swapped = {good[1], good[0]};
  StatusOr<std::shared_ptr<const core::ShardedState>> positions =
      AssembleClusterState(*client, swapped);
  ASSERT_FALSE(positions.ok());
  EXPECT_EQ(positions.status().code(), StatusCode::kFailedPrecondition);

  // Wrong slice count.
  std::vector<SnapshotReader> short_set = {good[0]};
  StatusOr<std::shared_ptr<const core::ShardedState>> count =
      AssembleClusterState(*client, short_set);
  ASSERT_FALSE(count.ok());
  EXPECT_EQ(count.status().code(), StatusCode::kFailedPrecondition);

  // A slice file where the client file should be.
  StatusOr<std::shared_ptr<const core::ShardedState>> not_client =
      AssembleClusterState(good[0], good);
  ASSERT_FALSE(not_client.ok());
  EXPECT_EQ(not_client.status().code(), StatusCode::kInvalidArgument);

  // A different sharding's slice against this client: topology skew.
  const auto other = SmallSharded(3);
  std::vector<SnapshotReader> foreign = good;
  foreign[0] = *SnapshotReader::Parse(EncodeShardSnapshot(*other, 0, 5));
  StatusOr<std::shared_ptr<const core::ShardedState>> topo =
      AssembleClusterState(*client, foreign);
  ASSERT_FALSE(topo.ok());
  EXPECT_EQ(topo.status().code(), StatusCode::kFailedPrecondition);
}

// ---- the checked-in golden fixture ------------------------------------
// tests/golden/snapshot/ holds the bytes scripts/check_snapshot_golden.sh
// keeps fresh. Reading them HERE pins backward compatibility: a reader
// change that stops understanding already-written v1 files fails this
// test even while writer and gate agree with each other.
TEST(SnapshotTest, GoldenFixtureLoadsAndAssembles) {
  const std::string golden = std::string(DBSA_SOURCE_DIR) + "/tests/golden/snapshot";
  StatusOr<SnapshotReader> client = SnapshotReader::Load(golden + "/client.snapshot");
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_EQ(client->meta().epoch, 3u);
  EXPECT_EQ(client->meta().shard_index, -1);
  EXPECT_EQ(client->meta().num_shards, 2u);
  EXPECT_EQ(client->meta().hilbert_level, 12);

  std::vector<SnapshotReader> slices;
  for (size_t s = 0; s < 2; ++s) {
    StatusOr<SnapshotReader> slice =
        SnapshotReader::Load(golden + "/shard-" + std::to_string(s) + ".snapshot");
    ASSERT_TRUE(slice.ok()) << slice.status().ToString();
    EXPECT_EQ(slice->meta().epoch, 3u);
    EXPECT_EQ(slice->meta().shard_index, static_cast<int32_t>(s));
    slices.push_back(*slice);
  }
  StatusOr<std::shared_ptr<const core::ShardedState>> assembled =
      AssembleClusterState(*client, slices);
  ASSERT_TRUE(assembled.ok()) << assembled.status().ToString();

  // The fixture's generation flags (the one other place they live is
  // check_snapshot_golden.sh's GOLDEN_FLAGS): assembled state must
  // answer byte-identically to a rebuild from those flags.
  data::ClusterDemoConfig config;
  config.num_points = 600;
  config.num_regions = 6;
  config.universe_side = 1024;
  config.hilbert_level = 12;
  const auto base = core::BuildEngineState(data::ClusterDemoPoints(config),
                                           data::ClusterDemoRegions(config));
  ExpectSameAnswers((*assembled)->base(), *base, "golden vs rebuild");
}

TEST(SnapshotTest, CorruptGoldenFixtureIsRejectedTyped) {
  // The negative fixture the lint selftest aims the freshness gate at:
  // one XOR-flipped byte inside client.snapshot's section data. The
  // READER must reject it too — corruption detection cannot depend on
  // having the pristine copy to diff against.
  const std::string bad = std::string(DBSA_SOURCE_DIR) +
                          "/scripts/lint_fixtures/bad_snapshot_golden/client.snapshot";
  StatusOr<SnapshotReader> reader = SnapshotReader::Load(bad);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kInvalidArgument)
      << reader.status().ToString();
}

}  // namespace
}  // namespace dbsa::snapshot
