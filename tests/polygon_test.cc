// Unit tests for Polygon / MultiPolygon: areas, centroids, containment
// (the exact PIP test the paper's approximate processing replaces).

#include <gtest/gtest.h>

#include "geom/polygon.h"
#include "test_util.h"
#include "util/random.h"

namespace dbsa::geom {
namespace {

Polygon UnitSquare() { return dbsa::testing::MakeRectPolygon(0, 0, 1, 1); }

TEST(PolygonTest, SignedAreaOrientation) {
  const Ring ccw{{0, 0}, {1, 0}, {1, 1}, {0, 1}};
  Ring cw = ccw;
  std::reverse(cw.begin(), cw.end());
  EXPECT_DOUBLE_EQ(SignedArea(ccw), 1.0);
  EXPECT_DOUBLE_EQ(SignedArea(cw), -1.0);
}

TEST(PolygonTest, AreaPerimeterCentroid) {
  const Polygon sq = UnitSquare();
  EXPECT_DOUBLE_EQ(sq.Area(), 1.0);
  EXPECT_DOUBLE_EQ(sq.TotalPerimeter(), 4.0);
  EXPECT_NEAR(sq.Centroid().x, 0.5, 1e-12);
  EXPECT_NEAR(sq.Centroid().y, 0.5, 1e-12);
}

TEST(PolygonTest, NormalizeFixesOrientation) {
  Ring cw{{0, 0}, {0, 1}, {1, 1}, {1, 0}};
  Polygon poly(std::move(cw));
  poly.Normalize();
  EXPECT_GT(SignedArea(poly.outer()), 0.0);
}

TEST(PolygonTest, ContainsBasic) {
  const Polygon sq = UnitSquare();
  EXPECT_TRUE(sq.Contains({0.5, 0.5}));
  EXPECT_FALSE(sq.Contains({1.5, 0.5}));
  EXPECT_FALSE(sq.Contains({-0.1, 0.5}));
}

TEST(PolygonTest, ContainsConcave) {
  const Polygon l_shape = dbsa::testing::MakeLPolygon(0, 0, 10);
  EXPECT_TRUE(l_shape.Contains({1, 1}));
  EXPECT_TRUE(l_shape.Contains({1, 9}));
  EXPECT_TRUE(l_shape.Contains({9, 1}));
  // The notch (inside the bbox but outside the L).
  EXPECT_FALSE(l_shape.Contains({9, 9}));
  EXPECT_FALSE(l_shape.Contains({5, 5}));
}

TEST(PolygonTest, ContainsWithHole) {
  // Square with a centered square hole.
  Polygon poly(Ring{{0, 0}, {4, 0}, {4, 4}, {0, 4}},
               {Ring{{1, 1}, {3, 1}, {3, 3}, {1, 3}}});
  poly.Normalize();
  EXPECT_TRUE(poly.Contains({0.5, 0.5}));
  EXPECT_FALSE(poly.Contains({2, 2}));  // In the hole.
  EXPECT_TRUE(poly.Contains({3.5, 3.5}));
  EXPECT_DOUBLE_EQ(poly.Area(), 16.0 - 4.0);
}

TEST(PolygonTest, HoleAreaAndVertexCount) {
  Polygon poly(Ring{{0, 0}, {4, 0}, {4, 4}, {0, 4}},
               {Ring{{1, 1}, {3, 1}, {3, 3}, {1, 3}}});
  EXPECT_EQ(poly.NumVertices(), 8u);
  EXPECT_DOUBLE_EQ(poly.TotalPerimeter(), 16.0 + 8.0);
}

TEST(PolygonTest, BoundsTracksOuterRing) {
  const Polygon star =
      dbsa::testing::MakeStarPolygon({50, 50}, 5.0, 10.0, 16, /*seed=*/1);
  const Box& b = star.bounds();
  for (const Point& p : star.outer()) {
    EXPECT_TRUE(b.Contains(p));
  }
  EXPECT_LE(b.Width(), 20.0 + 1e-9);
}

TEST(PolygonTest, ValidityChecks) {
  EXPECT_FALSE(Polygon(Ring{{0, 0}, {1, 1}}).IsValid());  // Too few vertices.
  EXPECT_FALSE(Polygon(Ring{{0, 0}, {1, 1}, {2, 2}}).IsValid());  // Zero area.
  EXPECT_TRUE(UnitSquare().IsValid());
  Ring nan_ring{{0, 0}, {1, 0}, {std::nan(""), 1}};
  EXPECT_FALSE(Polygon(std::move(nan_ring)).IsValid());
}

TEST(PolygonTest, ContainsMatchesWindingForRandomStars) {
  // Property: for star-shaped polygons, containment can be checked
  // against the generating radial structure: points near the center are
  // inside, points beyond max radius are outside.
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    const Point c{100, 100};
    const Polygon star = dbsa::testing::MakeStarPolygon(c, 8.0, 12.0, 24, seed);
    EXPECT_TRUE(star.Contains(c)) << "seed " << seed;
    EXPECT_FALSE(star.Contains({c.x + 12.5, c.y})) << "seed " << seed;
    EXPECT_FALSE(star.Contains({c.x, c.y - 12.5})) << "seed " << seed;
  }
}

TEST(PolygonTest, EdgeIterationCountsAllRings) {
  Polygon poly(Ring{{0, 0}, {4, 0}, {4, 4}, {0, 4}},
               {Ring{{1, 1}, {3, 1}, {3, 3}, {1, 3}}});
  int edges = 0;
  poly.ForEachEdge([&](const Point&, const Point&) { ++edges; });
  EXPECT_EQ(edges, 8);
}

TEST(MultiPolygonTest, ContainsAnyPart) {
  MultiPolygon mp;
  mp.Add(dbsa::testing::MakeRectPolygon(0, 0, 1, 1));
  mp.Add(dbsa::testing::MakeRectPolygon(5, 5, 6, 6));
  EXPECT_TRUE(mp.Contains({0.5, 0.5}));
  EXPECT_TRUE(mp.Contains({5.5, 5.5}));
  EXPECT_FALSE(mp.Contains({3, 3}));
  EXPECT_DOUBLE_EQ(mp.Area(), 2.0);
  EXPECT_EQ(mp.NumVertices(), 8u);
  EXPECT_TRUE(mp.bounds().Contains(Point{6, 6}));
}

TEST(PolygonTest, RingContainsBoundaryConsistency) {
  // The crossing-number rule must flip exactly once crossing an edge.
  const Polygon sq = UnitSquare();
  Rng rng(42);
  for (int i = 0; i < 200; ++i) {
    const double y = rng.Uniform(0.01, 0.99);
    EXPECT_TRUE(sq.Contains({0.5, y}));
    EXPECT_FALSE(sq.Contains({1.5, y}));
  }
}

}  // namespace
}  // namespace dbsa::geom
