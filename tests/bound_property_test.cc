// Cross-cutting property sweep for the paper's central invariant,
// d_H(g, g') <= epsilon, across every approximation construction the
// library offers: uniform / hierarchical raster, bottom-up / top-down /
// budget-driven builders, conservative / non-conservative modes, simple /
// holed / sliver polygons. Each combination is a TEST_P instance.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "geom/distance.h"
#include "raster/verify.h"
#include "test_util.h"

namespace dbsa::raster {
namespace {

enum class Shape { kStar, kHoled, kSliver, kLShape };
enum class Builder { kUniform, kHrBottomUp, kHrTopDown, kHrBudget };

const char* ShapeName(Shape s) {
  switch (s) {
    case Shape::kStar:
      return "star";
    case Shape::kHoled:
      return "holed";
    case Shape::kSliver:
      return "sliver";
    case Shape::kLShape:
      return "lshape";
  }
  return "?";
}

const char* BuilderName(Builder b) {
  switch (b) {
    case Builder::kUniform:
      return "uniform";
    case Builder::kHrBottomUp:
      return "hr_bottomup";
    case Builder::kHrTopDown:
      return "hr_topdown";
    case Builder::kHrBudget:
      return "hr_budget";
  }
  return "?";
}

geom::Polygon MakeShape(Shape shape, uint64_t seed) {
  switch (shape) {
    case Shape::kStar:
      return dbsa::testing::MakeStarPolygon({128, 128}, 40, 90, 18, seed);
    case Shape::kHoled:
      return dbsa::testing::MakeStarPolygonWithHole({128, 128}, 40, 90, 18, seed);
    case Shape::kSliver: {
      // A long thin quadrilateral: thinner than a coarse cell.
      Rng rng(seed);
      const double y = rng.Uniform(60, 190);
      geom::Polygon poly(geom::Ring{
          {30, y}, {220, y + rng.Uniform(-8, 8)}, {221, y + rng.Uniform(1.5, 4.0)},
          {31, y + 3.0}});
      poly.Normalize();
      return poly;
    }
    case Shape::kLShape:
      return dbsa::testing::MakeLPolygon(60, 60, 120);
  }
  return {};
}

class BoundSweepTest
    : public ::testing::TestWithParam<std::tuple<Shape, Builder, bool, double>> {};

TEST_P(BoundSweepTest, HausdorffWithinEpsilon) {
  const auto [shape, builder, conservative, eps] = GetParam();
  const Grid grid({0, 0}, 256.0);
  RasterOptions opts;
  opts.conservative = conservative;
  opts.min_coverage = 0.5;

  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const geom::Polygon poly = MakeShape(shape, seed);
    ASSERT_TRUE(poly.IsValid());
    BoundCheck check;
    double achieved = eps;
    switch (builder) {
      case Builder::kUniform: {
        const UniformRaster ur = UniformRaster::Build(poly, grid, eps, opts);
        achieved = ur.AchievedEpsilon(grid);
        check = CheckBound(poly, grid, ur, eps * 0.25);
        break;
      }
      case Builder::kHrBottomUp: {
        const HierarchicalRaster hr =
            HierarchicalRaster::BuildEpsilonBottomUp(poly, grid, eps, opts);
        achieved = grid.AchievedEpsilon(grid.LevelForEpsilon(eps));
        check = CheckBound(poly, grid, hr, eps * 0.25);
        break;
      }
      case Builder::kHrTopDown: {
        const HierarchicalRaster hr =
            HierarchicalRaster::BuildEpsilonTopDown(poly, grid, eps, opts);
        achieved = grid.AchievedEpsilon(grid.LevelForEpsilon(eps));
        check = CheckBound(poly, grid, hr, eps * 0.25);
        break;
      }
      case Builder::kHrBudget: {
        // Budget mode: the achieved epsilon is whatever the budget buys;
        // verify against THAT bound (still guaranteed, just not chosen).
        const HierarchicalRaster hr =
            HierarchicalRaster::BuildBudget(poly, grid, 256, opts);
        achieved = hr.AchievedEpsilon(grid);
        check = CheckBound(poly, grid, hr, achieved * 0.25);
        break;
      }
    }
    ASSERT_LE(achieved, builder == Builder::kHrBudget ? achieved : eps * (1 + 1e-12));
    // False positives never stray beyond the achieved bound.
    EXPECT_LE(check.max_false_positive_dist, achieved + 1e-9)
        << ShapeName(shape) << "/" << BuilderName(builder) << " seed " << seed;
    if (conservative) {
      EXPECT_TRUE(check.covers_polygon)
          << ShapeName(shape) << "/" << BuilderName(builder) << " seed " << seed;
    } else if (shape != Shape::kSliver) {
      // Two-sided mode: misses stay within the bound of kept coverage.
      // (Excluded for slivers: a geometry thinner than the coverage
      // threshold can lose ALL its cells, so the two-sided Hausdorff
      // bound degenerates — see NonConservativeSliverCaveat below. The
      // per-point guarantee — errors lie within epsilon of the TRUE
      // boundary — still holds there.)
      EXPECT_LE(check.max_false_negative_dist, achieved + 1e-9)
          << ShapeName(shape) << "/" << BuilderName(builder) << " seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, BoundSweepTest,
    ::testing::Combine(::testing::Values(Shape::kStar, Shape::kHoled, Shape::kSliver,
                                         Shape::kLShape),
                       ::testing::Values(Builder::kUniform, Builder::kHrBottomUp,
                                         Builder::kHrTopDown, Builder::kHrBudget),
                       ::testing::Bool(), ::testing::Values(16.0, 6.0)),
    [](const ::testing::TestParamInfo<std::tuple<Shape, Builder, bool, double>>&
           info) {
      // No structured bindings here: the brackets' commas would split the
      // macro arguments.
      return std::string(ShapeName(std::get<0>(info.param))) + "_" +
             BuilderName(std::get<1>(info.param)) + "_" +
             (std::get<2>(info.param) ? "cons" : "noncons") + "_eps" +
             std::to_string(static_cast<int>(std::get<3>(info.param)));
    });

TEST(BoundSweepTest, NonConservativeSliverCaveat) {
  // Documents a limit of non-conservative rasters the paper does not
  // dwell on: a sliver thinner than the coverage threshold may lose all
  // its cells, so d_H(g, g') is unbounded in the g -> g' direction. The
  // guarantee that DOES survive is per-point error locality: any missed
  // point is inside a dropped boundary cell, hence within the cell
  // diagonal (= epsilon) of the true geometry boundary — which is what
  // the approximate-join error semantics rely on. Conservative mode
  // (the default) never has this failure mode.
  const Grid grid({0, 0}, 256.0);
  const geom::Polygon sliver = MakeShape(Shape::kSliver, 1);
  RasterOptions drop_all;
  drop_all.conservative = false;
  drop_all.min_coverage = 0.9;  // Slivers cover < 90% of any cell.
  const UniformRaster ur = UniformRaster::Build(sliver, grid, 24.0, drop_all);
  EXPECT_EQ(ur.NumCells(), 0u);  // The pathological case is real.
  // Per-point locality: every point of the sliver is within eps of its
  // own boundary (trivially, since the sliver is thin) — consistent with
  // the error-locality guarantee the joins verify.
  for (const geom::Point& p : dbsa::testing::RandomPoints(sliver.bounds(), 100, 2)) {
    if (sliver.Contains(p)) {
      EXPECT_LE(geom::DistanceToBoundary(p, sliver), 24.0);
    }
  }
}

TEST(BoundSweepTest, SliverSurvivesConservativeRaster) {
  // A sliver thinner than a cell must still be fully covered by a
  // conservative raster (it becomes pure boundary cells).
  const Grid grid({0, 0}, 256.0);
  const geom::Polygon sliver = MakeShape(Shape::kSliver, 2);
  const UniformRaster ur = UniformRaster::Build(sliver, grid, 24.0);
  for (const geom::Point& p :
       dbsa::testing::RandomPoints(sliver.bounds(), 400, 3)) {
    if (sliver.Contains(p)) {
      ASSERT_NE(ur.Classify(p, grid), CellKind::kOutside);
    }
  }
  EXPECT_EQ(ur.cover().interior.size(), 0u);  // Too thin for interior cells.
}

}  // namespace
}  // namespace dbsa::raster
