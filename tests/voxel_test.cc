// Tests for the 3-D extension (paper Section 6, "Higher-Dimensional
// Data"): Morton3 bijectivity and the epsilon bound of voxel rasters over
// SDF solids.

#include <gtest/gtest.h>

#include "raster/voxel.h"
#include "sfc/morton3.h"
#include "util/random.h"

namespace dbsa::raster {
namespace {

TEST(Morton3Test, KnownValues) {
  EXPECT_EQ(sfc::Morton3Encode(0, 0, 0), 0u);
  EXPECT_EQ(sfc::Morton3Encode(1, 0, 0), 1u);
  EXPECT_EQ(sfc::Morton3Encode(0, 1, 0), 2u);
  EXPECT_EQ(sfc::Morton3Encode(0, 0, 1), 4u);
  EXPECT_EQ(sfc::Morton3Encode(1, 1, 1), 7u);
}

TEST(Morton3Test, RoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 20000; ++i) {
    const uint32_t x = static_cast<uint32_t>(rng.Next()) & 0x1fffff;
    const uint32_t y = static_cast<uint32_t>(rng.Next()) & 0x1fffff;
    const uint32_t z = static_cast<uint32_t>(rng.Next()) & 0x1fffff;
    uint32_t dx, dy, dz;
    sfc::Morton3Decode(sfc::Morton3Encode(x, y, z), &dx, &dy, &dz);
    ASSERT_EQ(x, dx);
    ASSERT_EQ(y, dy);
    ASSERT_EQ(z, dz);
  }
}

TEST(SdfTest, SphereDistances) {
  const Sdf s = SphereSdf({0, 0, 0}, 10.0);
  EXPECT_DOUBLE_EQ(s({0, 0, 0}), -10.0);
  EXPECT_DOUBLE_EQ(s({10, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(s({13, 0, 0}), 3.0);
}

TEST(SdfTest, BoxDistances) {
  const Sdf b = BoxSdf({0, 0, 0}, {10, 10, 10});
  EXPECT_DOUBLE_EQ(b({5, 5, 5}), -5.0);
  EXPECT_DOUBLE_EQ(b({5, 5, 9}), -1.0);
  EXPECT_DOUBLE_EQ(b({13, 5, 5}), 3.0);
  EXPECT_DOUBLE_EQ(b({13, 14, 5}), 5.0);
}

TEST(SdfTest, CapsuleDistances) {
  const Sdf c = CapsuleSdf({0, 0, 0}, {10, 0, 0}, 2.0);
  EXPECT_DOUBLE_EQ(c({5, 0, 0}), -2.0);
  EXPECT_DOUBLE_EQ(c({5, 2, 0}), 0.0);
  EXPECT_DOUBLE_EQ(c({-3, 0, 0}), 1.0);  // Beyond the cap.
}

TEST(SdfTest, CsgOps) {
  const Sdf u = UnionSdf(SphereSdf({0, 0, 0}, 5), SphereSdf({20, 0, 0}, 5));
  EXPECT_LT(u({0, 0, 0}), 0.0);
  EXPECT_LT(u({20, 0, 0}), 0.0);
  EXPECT_GT(u({10, 0, 0}), 0.0);
  const Sdf i = IntersectSdf(SphereSdf({0, 0, 0}, 5), SphereSdf({4, 0, 0}, 5));
  EXPECT_LT(i({2, 0, 0}), 0.0);
  EXPECT_GT(i({-4, 0, 0}), 0.0);
}

class VoxelBoundTest : public ::testing::TestWithParam<double> {};

TEST_P(VoxelBoundTest, EpsilonBoundHoldsForSphere) {
  const double eps = GetParam();
  const Sdf sphere = SphereSdf({50, 50, 50}, 30.0);
  const VoxelRaster vr = VoxelRaster::Build(sphere, {0, 0, 0}, 100.0, eps, 8);
  EXPECT_LE(vr.AchievedEpsilon(), std::max(eps, vr.VoxelSize() * 1.7320509));

  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    const Point3 p{rng.Uniform(0, 100), rng.Uniform(0, 100), rng.Uniform(0, 100)};
    const double d = sphere(p);
    const CellKind kind = vr.Classify(p);
    if (d <= -vr.AchievedEpsilon()) {
      // Deep inside: must be covered.
      ASSERT_NE(kind, CellKind::kOutside) << "depth " << d;
    }
    if (d >= vr.AchievedEpsilon()) {
      // Far outside: must not be covered.
      ASSERT_EQ(kind, CellKind::kOutside) << "dist " << d;
    }
    // Everything else is within the bound of the surface: any answer is
    // epsilon-consistent by definition.
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, VoxelBoundTest, ::testing::Values(20.0, 8.0, 3.0),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "eps" + std::to_string(static_cast<int>(info.param));
                         });

TEST(VoxelTest, InteriorVoxelsAreInside) {
  const Sdf box = BoxSdf({20, 20, 20}, {80, 80, 80});
  const VoxelRaster vr = VoxelRaster::Build(box, {0, 0, 0}, 100.0, 5.0, 7);
  EXPECT_GT(vr.NumInterior(), 0u);
  EXPECT_GT(vr.NumBoundary(), 0u);
  EXPECT_EQ(vr.Classify({50, 50, 50}), CellKind::kInterior);
  EXPECT_EQ(vr.Classify({5, 5, 5}), CellKind::kOutside);
}

TEST(VoxelTest, TighterEpsilonMoreVoxels) {
  const Sdf sphere = SphereSdf({50, 50, 50}, 30.0);
  size_t prev = 0;
  for (const double eps : {40.0, 15.0, 5.0}) {
    const VoxelRaster vr = VoxelRaster::Build(sphere, {0, 0, 0}, 100.0, eps, 8);
    const size_t total = vr.NumInterior() + vr.NumBoundary();
    EXPECT_GT(total, prev) << "eps " << eps;
    prev = total;
  }
}

TEST(VoxelTest, CorridorQueryScenario) {
  // A flight-corridor capsule across the cube, queried with 3-D points —
  // the kind of 3-D spatial selection the paper's future work sketches.
  const Sdf corridor = CapsuleSdf({0, 50, 50}, {100, 50, 50}, 8.0);
  const VoxelRaster vr = VoxelRaster::Build(corridor, {0, 0, 0}, 100.0, 4.0, 8);
  Rng rng(9);
  size_t approx_in = 0, exact_in = 0;
  for (int i = 0; i < 20000; ++i) {
    const Point3 p{rng.Uniform(0, 100), rng.Uniform(0, 100), rng.Uniform(0, 100)};
    if (vr.ApproxContains(p)) ++approx_in;
    if (corridor(p) <= 0) ++exact_in;
  }
  // Conservative: approx >= exact, and within the boundary-shell excess.
  EXPECT_GE(approx_in, exact_in);
  EXPECT_LT(static_cast<double>(approx_in - exact_in) / exact_in, 0.6);
}

}  // namespace
}  // namespace dbsa::raster
