// Tests for distance-bounded polygon simplification (Douglas-Peucker) —
// the vector-space epsilon-approximation companion to the rasters.

#include <gtest/gtest.h>

#include "geom/distance.h"
#include "geom/simplify.h"
#include "test_util.h"

namespace dbsa::geom {
namespace {

TEST(SimplifyTest, CollinearChainCollapses) {
  std::vector<Point> line;
  for (int i = 0; i <= 10; ++i) line.push_back({static_cast<double>(i), 0.0});
  const auto out = SimplifyPolyline(line, 0.01);
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(out.front().x, 0.0);
  EXPECT_EQ(out.back().x, 10.0);
}

TEST(SimplifyTest, KeepsSignificantDeviation) {
  const std::vector<Point> line{{0, 0}, {5, 3}, {10, 0}};
  EXPECT_EQ(SimplifyPolyline(line, 1.0).size(), 3u);   // Peak kept.
  EXPECT_EQ(SimplifyPolyline(line, 5.0).size(), 2u);   // Peak dropped.
}

TEST(SimplifyTest, EndpointsAlwaysKept) {
  Rng rng(1);
  std::vector<Point> line;
  for (int i = 0; i <= 50; ++i) {
    line.push_back({static_cast<double>(i), rng.Uniform(-1, 1)});
  }
  const auto out = SimplifyPolyline(line, 10.0);
  ASSERT_GE(out.size(), 2u);
  EXPECT_EQ(out.front().x, line.front().x);
  EXPECT_EQ(out.back().x, line.back().x);
}

TEST(SimplifyTest, SimplifiedWithinEpsilonOfOriginal) {
  // The DP guarantee: every dropped vertex is within eps of the kept
  // chain -> directed Hausdorff(original -> simplified) <= eps.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const Polygon star = dbsa::testing::MakeStarPolygon({0, 0}, 50, 100, 64, seed);
    for (const double eps : {2.0, 10.0, 30.0}) {
      const Ring simplified = SimplifyRing(star.outer(), eps);
      const double h = DirectedHausdorffSampled(star.outer(), simplified, 1.0);
      EXPECT_LE(h, eps + 1.0) << "seed " << seed << " eps " << eps;  // +sampling slack.
    }
  }
}

TEST(SimplifyTest, LargerEpsilonFewerVertices) {
  const Polygon star = dbsa::testing::MakeStarPolygon({0, 0}, 50, 100, 128, 3);
  size_t prev = star.outer().size() + 1;
  for (const double eps : {1.0, 5.0, 20.0, 60.0}) {
    const Ring simplified = SimplifyRing(star.outer(), eps);
    EXPECT_LE(simplified.size(), prev) << "eps " << eps;
    EXPECT_GE(simplified.size(), 3u);
    prev = simplified.size();
  }
}

TEST(SimplifyTest, PolygonDropsCollapsedHoles) {
  Polygon poly(Ring{{0, 0}, {100, 0}, {100, 100}, {0, 100}},
               {Ring{{50, 50}, {50.5, 50}, {50.5, 50.5}, {50, 50.5}}});
  poly.Normalize();
  const Polygon simplified = SimplifyPolygon(poly, 5.0);
  EXPECT_TRUE(simplified.holes().empty() ||
              std::fabs(SignedArea(simplified.holes()[0])) > 0.0);
  EXPECT_TRUE(simplified.IsValid());
}

TEST(SimplifyTest, TinyRingsPassThrough) {
  const Ring tri{{0, 0}, {1, 0}, {0, 1}};
  EXPECT_EQ(SimplifyRing(tri, 100.0).size(), 3u);
}

}  // namespace
}  // namespace dbsa::geom
