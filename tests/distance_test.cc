// Tests for distance functions and the sampled Hausdorff distance that
// defines the paper's epsilon-approximation (Section 2.2).

#include <gtest/gtest.h>

#include "geom/distance.h"
#include "test_util.h"

namespace dbsa::geom {
namespace {

TEST(DistanceTest, PointToRing) {
  const Ring sq{{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  EXPECT_DOUBLE_EQ(DistanceToRing({1, 1}, sq), 1.0);   // Center to edge.
  EXPECT_DOUBLE_EQ(DistanceToRing({3, 1}, sq), 1.0);   // Outside.
  EXPECT_DOUBLE_EQ(DistanceToRing({1, 0}, sq), 0.0);   // On edge.
  EXPECT_DOUBLE_EQ(DistanceToRing({-3, -4}, sq), 5.0); // Corner 3-4-5.
}

TEST(DistanceTest, PointToPolygonSolid) {
  const Polygon sq = dbsa::testing::MakeRectPolygon(0, 0, 2, 2);
  EXPECT_EQ(DistanceToPolygon({1, 1}, sq), 0.0);  // Inside -> 0.
  EXPECT_DOUBLE_EQ(DistanceToPolygon({4, 1}, sq), 2.0);
}

TEST(DistanceTest, PolygonWithHoleDistance) {
  Polygon poly(Ring{{0, 0}, {10, 0}, {10, 10}, {0, 10}},
               {Ring{{4, 4}, {6, 4}, {6, 6}, {4, 6}}});
  poly.Normalize();
  // Point inside the hole: outside the solid region; distance to the
  // hole's boundary.
  EXPECT_DOUBLE_EQ(DistanceToPolygon({5, 5}, poly), 1.0);
  EXPECT_DOUBLE_EQ(DistanceToBoundary({5, 5}, poly), 1.0);
}

TEST(DistanceTest, MultiPolygonPicksClosestPart) {
  MultiPolygon mp;
  mp.Add(dbsa::testing::MakeRectPolygon(0, 0, 1, 1));
  mp.Add(dbsa::testing::MakeRectPolygon(10, 0, 11, 1));
  EXPECT_DOUBLE_EQ(DistanceToMultiPolygon({3, 0.5}, mp), 2.0);
  EXPECT_DOUBLE_EQ(DistanceToMultiPolygon({9, 0.5}, mp), 1.0);
  EXPECT_EQ(DistanceToMultiPolygon({10.5, 0.5}, mp), 0.0);
}

TEST(HausdorffTest, IdenticalRingsZero) {
  const Ring sq{{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  EXPECT_NEAR(HausdorffSampled(sq, sq, 0.1), 0.0, 1e-12);
}

TEST(HausdorffTest, NestedSquares) {
  const Ring inner{{1, 1}, {3, 1}, {3, 3}, {1, 3}};
  const Ring outer{{0, 0}, {4, 0}, {4, 4}, {0, 4}};
  // Corner-to-corner distance sqrt(2) dominates.
  EXPECT_NEAR(HausdorffSampled(inner, outer, 0.01), std::sqrt(2.0), 0.02);
  // Directed distances differ from the symmetric value only by max().
  EXPECT_LE(DirectedHausdorffSampled(inner, outer, 0.01),
            HausdorffSampled(inner, outer, 0.01) + 1e-12);
}

TEST(HausdorffTest, TranslationLowerBound) {
  // Translating a ring by d gives Hausdorff <= d (and >= d/2 for squares).
  const Ring sq{{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  Ring moved = sq;
  for (Point& p : moved) p.x += 1.0;
  const double h = HausdorffSampled(sq, moved, 0.01);
  EXPECT_LE(h, 1.0 + 1e-9);
  EXPECT_GE(h, 0.5);
}

TEST(HausdorffTest, MbrOfStarIsDataDependent) {
  // Section 2.2's argument: the Hausdorff distance between a concave
  // polygon and its MBR can be large — there is no epsilon knob.
  const Polygon star = dbsa::testing::MakeStarPolygon({0, 0}, 1.0, 10.0, 12, 3);
  const Box& b = star.bounds();
  const Ring mbr{{b.min.x, b.min.y}, {b.max.x, b.min.y}, {b.max.x, b.max.y},
                 {b.min.x, b.max.y}};
  const double h = HausdorffSampled(mbr, star.outer(), 0.05);
  // The star's lobes leave deep gaps: the MBR corner is far from the
  // boundary (at least the radius gap minus slack).
  EXPECT_GT(h, 1.0);
}

}  // namespace
}  // namespace dbsa::geom
