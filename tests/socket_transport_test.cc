// Tests for the socket transport: execution over REAL TCP sockets must
// be byte-identical to the loopback seam and the in-process sharded
// engine (per pinned plan) for every query kind, at every (shard count,
// thread count) combination, under every bound regime — and every fault
// path must resolve to a typed Status, never a hang, crash or UB:
//
//   * mid-query connection kill  -> reconnect (same endpoint) or
//                                   single-hop failover (replica),
//                                   payload unchanged either way;
//   * dead primary, replica up   -> failover, payload unchanged;
//   * dead primary, no replica   -> kUnavailable;
//   * silent peer                -> kDeadlineExceeded at the roundtrip
//                                   timeout;
//   * stalled-but-accepting
//     primary, replica up        -> failover within the deadline (the
//                                   first hop gets half the budget);
//   * garbage / truncated bytes  -> the listener drops the connection
//                                   and keeps serving (fuzzed).
//
// Plus ShardPlacement spec parsing. docs/wire-format.md and
// docs/operations.md describe the contracts these tests pin.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/dbsa.h"
#include "data/cluster_demo.h"
#include "service/placement.h"
#include "service/query_service.h"
#include "service/shard_server.h"
#include "service/socket_cluster.h"
#include "service/socket_transport.h"
#include "service/thread_pool.h"
#include "service/transport.h"
#include "test_util.h"

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace dbsa::service {
namespace {

using dbsa::testing::MakeRectPolygon;
using dbsa::testing::MakeStarPolygon;

void ExpectRowsIdentical(const core::AggregateAnswer& got,
                         const core::AggregateAnswer& want,
                         const std::string& label) {
  ASSERT_EQ(got.rows.size(), want.rows.size()) << label;
  for (size_t r = 0; r < want.rows.size(); ++r) {
    EXPECT_EQ(got.rows[r].region, want.rows[r].region) << label << " region " << r;
    EXPECT_EQ(got.rows[r].value, want.rows[r].value) << label << " region " << r;
    EXPECT_EQ(got.rows[r].lo, want.rows[r].lo) << label << " region " << r;
    EXPECT_EQ(got.rows[r].hi, want.rows[r].hi) << label << " region " << r;
  }
}

void ExpectRangeIdentical(const join::ResultRange& got,
                          const join::ResultRange& want,
                          const std::string& label) {
  EXPECT_EQ(got.estimate, want.estimate) << label;
  EXPECT_EQ(got.lo, want.lo) << label;
  EXPECT_EQ(got.hi, want.hi) << label;
}

/// A complete socket deployment: shard servers behind real TCP
/// listeners on ephemeral localhost ports (optionally with a replica
/// listener per shard serving the same slice), a placement naming them,
/// and the client stack (socket transport + router).
struct SocketSeam {
  std::shared_ptr<const core::ShardedState> sharded;
  std::vector<std::unique_ptr<ShardServer>> servers;
  std::vector<std::unique_ptr<ShardListener>> primaries;
  std::vector<std::unique_ptr<ShardListener>> replicas;
  /// Per-shard drop switch: while true, the shard's PRIMARY handler
  /// drops the connection instead of answering (mid-query kill).
  std::vector<std::shared_ptr<std::atomic<bool>>> drop_primary;
  ShardPlacement placement;
  std::shared_ptr<SocketTransport> transport;
  std::unique_ptr<ShardRouter> router;
};

SocketSeam MakeSocketSeam(const std::shared_ptr<const core::EngineState>& base,
                          size_t k, bool with_replicas,
                          SocketTransport::Options options = {}) {
  SocketSeam seam;
  InProcessShardClusterOptions cluster_options;
  cluster_options.with_replicas = with_replicas;
  cluster_options.wrap_primary = [&seam](size_t, ShardListener::Handler inner) {
    seam.drop_primary.push_back(std::make_shared<std::atomic<bool>>(false));
    const auto drop = seam.drop_primary.back();
    return ShardListener::Handler([inner, drop](const std::string& request) {
      if (drop->load()) return std::string();  // Drop the connection.
      return inner(request);
    });
  };
  InProcessShardCluster cluster =
      MakeInProcessShardCluster(base, k, cluster_options);
  seam.sharded = std::move(cluster.sharded);
  seam.servers = std::move(cluster.servers);
  seam.primaries = std::move(cluster.primaries);
  seam.replicas = std::move(cluster.replicas);
  seam.placement = std::move(cluster.placement);
  seam.transport = std::make_shared<SocketTransport>(seam.placement, options);
  seam.router = std::make_unique<ShardRouter>(seam.sharded, seam.transport);
  return seam;
}

/// The loopback reference over the SAME ShardedState (shared servers are
/// fine: handlers and sockets never share a connection).
struct LoopbackSeam {
  std::vector<std::shared_ptr<ShardServer>> servers;
  std::shared_ptr<LoopbackTransport> transport;
  std::unique_ptr<ShardRouter> router;
};

LoopbackSeam MakeLoopbackSeam(const std::shared_ptr<const core::ShardedState>& sharded) {
  LoopbackSeam seam;
  std::vector<LoopbackTransport::Handler> handlers;
  for (size_t s = 0; s < sharded->num_shards(); ++s) {
    const core::ShardedState::Shard& shard = sharded->shard(s);
    seam.servers.push_back(
        std::make_shared<ShardServer>(shard.state, shard.global_ids));
    handlers.push_back([server = seam.servers.back()](const std::string& request) {
      return server->Handle(request);
    });
  }
  seam.transport = std::make_shared<LoopbackTransport>(std::move(handlers));
  seam.router = std::make_unique<ShardRouter>(sharded, seam.transport);
  return seam;
}

class SocketTransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::ClusterDemoConfig config;  // 20000 points, 24 regions, 4096^2.
    base_ = core::BuildEngineState(data::ClusterDemoPoints(config),
                                   data::ClusterDemoRegions(config));
  }

  std::shared_ptr<const core::EngineState> base_;
};

// ---- the acceptance matrix --------------------------------------------
// K in {1,2,7,16} x threads {serial,4,8} x every query kind x bounds
// {Absolute, AtLevel, Exact}: TCP execution byte-identical to loopback
// AND to the in-process sharded engine. Mode is pinned to kPointIndex for
// aggregates: socket and loopback transports charge different
// CostPerMessage, so under kAuto the optimizer may legitimately resolve
// different plans — the identity contract is per pinned plan.
TEST_F(SocketTransportTest, TcpByteMatchesLoopbackAndInProcessEverywhere) {
  const geom::Polygon star = MakeStarPolygon({2000, 2000}, 400, 900, 16, 11);
  const geom::Polygon corner = MakeRectPolygon(100, 100, 380, 420);
  // Prunes to zero shards at every K: serialization of nothing must
  // still be byte-identical to nothing.
  const geom::Polygon empty_rect = MakeRectPolygon(4000.5, 4000.5, 4095.0, 4095.0);
  const std::vector<geom::Polygon> polys = {star, corner, empty_rect};
  const std::vector<query::ErrorBound> bounds = {
      query::ErrorBound::Absolute(8.0), query::ErrorBound::AtLevel(6),
      query::ErrorBound::Exact()};

  for (const size_t k : {size_t{1}, size_t{2}, size_t{7}, size_t{16}}) {
    SocketSeam tcp = MakeSocketSeam(base_, k, /*with_replicas=*/false);
    LoopbackSeam loop = MakeLoopbackSeam(tcp.sharded);
    for (const size_t threads : {size_t{0}, size_t{4}, size_t{8}}) {
      std::unique_ptr<ThreadPool> pool;
      core::ExecHooks hooks;
      if (threads > 0) {
        pool = std::make_unique<ThreadPool>(threads);
        hooks.parallel_for = [&pool](size_t n,
                                     const std::function<void(size_t)>& fn) {
          pool->ParallelFor(n, fn);
        };
      }
      for (const query::ErrorBound& bound : bounds) {
        const std::string label = "k=" + std::to_string(k) +
                                  " threads=" + std::to_string(threads) +
                                  " bound=" + std::string(query::BoundKindName(bound.kind));

        for (const join::AggKind agg : {join::AggKind::kCount, join::AggKind::kSum}) {
          const core::Attr attr =
              agg == join::AggKind::kSum ? core::Attr::kFare : core::Attr::kNone;
          const core::AggregateAnswer in_process = core::ExecuteAggregate(
              *tcp.sharded, agg, attr, bound, core::Mode::kPointIndex, hooks);
          const core::AggregateAnswer over_loopback = ExecuteAggregate(
              *loop.router, agg, attr, bound, core::Mode::kPointIndex, hooks);
          const core::AggregateAnswer over_tcp = ExecuteAggregate(
              *tcp.router, agg, attr, bound, core::Mode::kPointIndex, hooks);
          ExpectRowsIdentical(over_tcp, in_process, label + " agg(tcp vs core)");
          ExpectRowsIdentical(over_tcp, over_loopback,
                              label + " agg(tcp vs loopback)");
        }

        for (size_t p = 0; p < polys.size(); ++p) {
          const std::string poly_label = label + " poly=" + std::to_string(p);
          const core::CountAnswer count_in_process =
              core::ExecuteCount(*tcp.sharded, polys[p], bound, hooks);
          const core::CountAnswer count_loopback =
              ExecuteCount(*loop.router, polys[p], bound, hooks);
          const core::CountAnswer count_tcp =
              ExecuteCount(*tcp.router, polys[p], bound, hooks);
          ExpectRangeIdentical(count_tcp.range, count_in_process.range,
                               poly_label + " count(tcp vs core)");
          ExpectRangeIdentical(count_tcp.range, count_loopback.range,
                               poly_label + " count(tcp vs loopback)");

          const core::SelectAnswer select_in_process =
              core::ExecuteSelect(*tcp.sharded, polys[p], bound, hooks);
          const core::SelectAnswer select_loopback =
              ExecuteSelect(*loop.router, polys[p], bound, hooks);
          const core::SelectAnswer select_tcp =
              ExecuteSelect(*tcp.router, polys[p], bound, hooks);
          EXPECT_EQ(select_tcp.ids, select_in_process.ids)
              << poly_label << " select(tcp vs core)";
          EXPECT_EQ(select_tcp.ids, select_loopback.ids)
              << poly_label << " select(tcp vs loopback)";
        }
      }
    }
  }
}

// QueryService end to end: TransportKind::kSocket against in-process
// listeners vs the loopback service — payloads, statuses and the
// reported deployment path.
TEST_F(SocketTransportTest, QueryServiceSocketMatchesLoopback) {
  const size_t k = 4;
  const InProcessShardCluster cluster = MakeInProcessShardCluster(base_, k);
  const ShardPlacement& placement = cluster.placement;

  ServiceOptions loopback_options;
  loopback_options.num_threads = 4;
  loopback_options.num_shards = k;
  loopback_options.use_transport = true;
  QueryService loopback_service(base_, loopback_options);

  ServiceOptions socket_options = loopback_options;
  socket_options.num_shards = 0;  // Derived from the placement.
  socket_options.transport_kind = TransportKind::kSocket;
  socket_options.placement = placement;
  QueryService socket_service(base_, socket_options);
  ASSERT_NE(socket_service.socket_transport(), nullptr);
  ASSERT_EQ(socket_service.sharded()->num_shards(), k);

  socket_service.WarmCache(8.0);  // Warms the per-shard caches over TCP.
  loopback_service.WarmCache(8.0);

  const geom::Polygon star = MakeStarPolygon({1400, 2600}, 300, 800, 12, 5);
  const auto submit_all = [&](QueryService& service) {
    ExecOptions abs;
    abs.bound = query::ErrorBound::Absolute(8.0);
    abs.mode = core::Mode::kPointIndex;
    ExecOptions level = abs;
    level.bound = query::ErrorBound::AtLevel(6);
    ExecOptions exact;
    exact.bound = query::ErrorBound::Exact();
    for (const ExecOptions& options : {abs, level, exact}) {
      service.Submit(Query::Aggregate(join::AggKind::kCount), options);
      service.Submit(Query::Aggregate(join::AggKind::kAvg, core::Attr::kFare),
                     options);
      service.Submit(Query::Count(star), options);
      service.Submit(Query::Select(star), options);
    }
  };
  submit_all(socket_service);
  submit_all(loopback_service);
  const std::vector<Result> got = socket_service.Drain();
  const std::vector<Result> want = loopback_service.Drain();
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_TRUE(got[i].ok()) << i << ": " << got[i].status.ToString();
    ASSERT_TRUE(want[i].ok()) << i;
    EXPECT_EQ(got[i].bound.path, ExecPath::kTransport) << i;
    EXPECT_EQ(got[i].kind, want[i].kind) << i;
    switch (want[i].kind) {
      case QueryKind::kAggregate:
        ExpectRowsIdentical(got[i].aggregate, want[i].aggregate,
                            "ticket " + std::to_string(i));
        break;
      case QueryKind::kCount:
        ExpectRangeIdentical(got[i].range, want[i].range,
                             "ticket " + std::to_string(i));
        break;
      case QueryKind::kSelect:
        EXPECT_EQ(got[i].ids, want[i].ids) << i;
        break;
    }
  }
  const SocketTransport::Stats stats = socket_service.socket_transport()->stats();
  EXPECT_GT(stats.messages, 0u);
  EXPECT_EQ(stats.failovers, 0u);
  EXPECT_EQ(stats.timeouts, 0u);
}

// ---- wire-level stats scrape ------------------------------------------

TEST_F(SocketTransportTest, StatsFramesScrapePerShardMetricsOverTheWire) {
  SocketSeam seam = MakeSocketSeam(base_, 3, /*with_replicas=*/false);
  // A query covering the whole universe routes to every shard, so each
  // server has a non-zero scatter count to report.
  const geom::Polygon everything = MakeRectPolygon(0, 0, 4096, 4096);
  ExecuteCount(*seam.router, everything, query::ErrorBound::Absolute(8.0), {});

  for (size_t s = 0; s < seam.placement.num_shards(); ++s) {
    // Raw wire client: dial the shard, send one kStatsRequest frame,
    // decode the kStatsReply — exactly what scrape_cluster_stats.sh does
    // through examples/cluster_stats.cpp.
    StatusOr<int> fd =
        DialTcp(seam.placement.shards[s].primary, Deadline::After(2000));
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();
    const std::string request = StatsRequest().Encode();
    ASSERT_TRUE(SendAll(fd.value(), request.data(), request.size(),
                        Deadline::After(2000))
                    .ok());
    StatusOr<std::string> frame =
        ReadFrame(fd.value(), size_t{64} << 20, Deadline::After(5000));
    close(fd.value());
    ASSERT_TRUE(frame.ok()) << frame.status().ToString();
    StatsReply reply;
    ASSERT_TRUE(StatsReply::Decode(frame.value(), &reply).ok());

    // The exposition carries this shard's labelled scatter counter with a
    // non-zero value, and its handle-latency histogram.
    const std::string series =
        "dbsa_shard_scatter_requests_total{shard=\"" + std::to_string(s) +
        "\"}";
    const size_t pos = reply.text.find(series);
    ASSERT_NE(pos, std::string::npos) << "shard " << s << ":\n" << reply.text;
    EXPECT_NE(reply.text.substr(pos + series.size(), 2), " 0") << reply.text;
    EXPECT_NE(reply.text.find("dbsa_shard_handle_ms_count{shard=\"" +
                              std::to_string(s) + "\"}"),
              std::string::npos);
    EXPECT_NE(reply.text.find("dbsa_shard_cache_entries"), std::string::npos);
  }

  // The CLIENT side of the same traffic: the transport's own registry
  // holds per-shard roundtrip histograms and the migrated counters.
  const std::string client = seam.transport->registry()->RenderText();
  EXPECT_NE(client.find("dbsa_socket_messages_total"), std::string::npos);
  EXPECT_NE(client.find("dbsa_socket_roundtrip_ms_count{shard=\"0\"}"),
            std::string::npos);
  EXPECT_EQ(seam.transport->stats().messages,
            seam.transport->registry()
                    ->GetCounter("dbsa_socket_messages_total")
                    ->Value());

  // A stats frame against a listener WITHOUT a registry falls through to
  // the shard handler, which answers a typed error partial — never a
  // hang, never a dropped connection.
  ShardListener bare([](const std::string& request) {
    GatherPartial partial;
    partial.kind = ScatterRequest::Kind::kWarm;
    (void)request;
    return partial.Encode();
  });
  StatusOr<int> fd = DialTcp(bare.endpoint(), Deadline::After(2000));
  ASSERT_TRUE(fd.ok());
  const std::string request = StatsRequest().Encode();
  ASSERT_TRUE(SendAll(fd.value(), request.data(), request.size(),
                      Deadline::After(2000))
                  .ok());
  StatusOr<std::string> frame =
      ReadFrame(fd.value(), size_t{64} << 20, Deadline::After(5000));
  close(fd.value());
  ASSERT_TRUE(frame.ok());
}

// ---- fault paths -------------------------------------------------------

TEST_F(SocketTransportTest, ReconnectsAfterConnectionKill) {
  SocketSeam seam = MakeSocketSeam(base_, 2, /*with_replicas=*/false);
  const geom::Polygon star = MakeStarPolygon({2000, 2000}, 500, 1100, 14, 3);
  const query::ErrorBound bound = query::ErrorBound::Absolute(8.0);

  const core::CountAnswer before = ExecuteCount(*seam.router, star, bound, {});
  // Sever every live connection (client keeps its now-dead sockets in
  // the idle pool) and also kill the pools mid-"query stream".
  for (const auto& primary : seam.primaries) primary->CloseConnections();
  const core::CountAnswer after = ExecuteCount(*seam.router, star, bound, {});
  ExpectRangeIdentical(after.range, before.range, "after reconnect");
  const SocketTransport::Stats stats = seam.transport->stats();
  EXPECT_GE(stats.reconnects, 1u);
  EXPECT_EQ(stats.failovers, 0u);
  EXPECT_EQ(stats.transport_errors, 0u);
}

TEST_F(SocketTransportTest, MidQueryConnectionKillFailsOverToReplica) {
  SocketSeam seam = MakeSocketSeam(base_, 4, /*with_replicas=*/true);
  const geom::Polygon star = MakeStarPolygon({2000, 2000}, 500, 1100, 14, 3);
  const query::ErrorBound bound = query::ErrorBound::Absolute(8.0);

  const core::CountAnswer before = ExecuteCount(*seam.router, star, bound, {});

  // From now on every primary reads each request and then kills the
  // connection without answering — a mid-roundtrip connection loss
  // (flags on ALL shards: which shards a polygon routes to is a
  // partitioning detail the test must not depend on). The client must
  // retry (fresh connection), see the same kill, and fail over to the
  // replica; the payload must not change by a bit.
  for (const auto& drop : seam.drop_primary) drop->store(true);
  const core::CountAnswer after = ExecuteCount(*seam.router, star, bound, {});
  ExpectRangeIdentical(after.range, before.range, "after mid-query kill");
  const SocketTransport::Stats stats = seam.transport->stats();
  EXPECT_GE(stats.failovers, 1u);
  EXPECT_EQ(stats.transport_errors, 0u);

  // And with the fault cleared the seam keeps working (the transport now
  // prefers the replica — no dead-primary tax on every call).
  for (const auto& drop : seam.drop_primary) drop->store(false);
  const core::CountAnswer recovered = ExecuteCount(*seam.router, star, bound, {});
  ExpectRangeIdentical(recovered.range, before.range, "after recovery");
}

TEST_F(SocketTransportTest, DeadPrimaryFailsOverToReplica) {
  SocketSeam seam = MakeSocketSeam(base_, 2, /*with_replicas=*/true);
  const geom::Polygon star = MakeStarPolygon({2000, 2000}, 500, 1100, 14, 3);
  const query::ErrorBound bound = query::ErrorBound::Absolute(8.0);

  const core::CountAnswer before = ExecuteCount(*seam.router, star, bound, {});
  for (const auto& primary : seam.primaries) primary->Stop();  // Ports die.
  const core::CountAnswer after = ExecuteCount(*seam.router, star, bound, {});
  ExpectRangeIdentical(after.range, before.range, "served by replicas");
  EXPECT_GE(seam.transport->stats().failovers, 1u);
}

TEST_F(SocketTransportTest, DeadPrimaryWithoutReplicaIsTypedUnavailable) {
  SocketTransport::Options fast;
  fast.roundtrip_timeout_ms = 5000;
  fast.connect_timeout_ms = 500;
  fast.reconnect_backoff_ms = 5;
  SocketSeam seam = MakeSocketSeam(base_, 2, /*with_replicas=*/false, fast);
  const geom::Polygon star = MakeStarPolygon({2000, 2000}, 500, 1100, 14, 3);
  const query::ErrorBound bound = query::ErrorBound::Absolute(8.0);

  ExecuteCount(*seam.router, star, bound, {});  // Healthy first.
  seam.primaries[0]->Stop();
  seam.primaries[1]->Stop();
  try {
    ExecuteCount(*seam.router, star, bound, {});
    FAIL() << "expected StatusException";
  } catch (const StatusException& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kUnavailable) << e.status().ToString();
  }
  EXPECT_GE(seam.transport->stats().transport_errors, 1u);
}

TEST_F(SocketTransportTest, SilentPeerIsDeadlineExceeded) {
  // A peer that accepts (via the kernel backlog) but never answers: a
  // raw listening socket the test never accept()s on. The client's
  // connect succeeds, the request lands in buffers, and the response
  // never comes — the roundtrip must die at its deadline, typed.
  const int silent_fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(silent_fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // Ephemeral.
  ASSERT_EQ(bind(silent_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(listen(silent_fd, 4), 0);
  socklen_t addr_len = sizeof(addr);
  ASSERT_EQ(getsockname(silent_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len), 0);

  ShardPlacement placement;
  placement.Add(Endpoint{"127.0.0.1", ntohs(addr.sin_port)});
  SocketTransport::Options options;
  options.roundtrip_timeout_ms = 300;
  SocketTransport transport(placement, options);
  const std::string request = ScatterRequest().Encode();
  try {
    Roundtrip(transport, 0, request);
    FAIL() << "expected StatusException";
  } catch (const StatusException& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kDeadlineExceeded)
        << e.status().ToString();
  }
  EXPECT_EQ(transport.stats().timeouts, 1u);
  close(silent_fd);
}

TEST_F(SocketTransportTest, StalledPrimaryFailsOverToHealthyReplica) {
  // A primary that accepts (kernel backlog) but never answers must NOT
  // consume the whole roundtrip deadline: the first hop is capped at
  // half the budget when the shard has an untried replica, so a healthy
  // replica still answers within the deadline (requests are idempotent,
  // resending after a stall is safe).
  const int silent_fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(silent_fd, 0);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // Ephemeral.
  ASSERT_EQ(bind(silent_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  ASSERT_EQ(listen(silent_fd, 4), 0);
  socklen_t addr_len = sizeof(addr);
  ASSERT_EQ(getsockname(silent_fd, reinterpret_cast<sockaddr*>(&addr), &addr_len), 0);

  const auto sharded = core::ShardedState::Build(base_, {1});
  const core::ShardedState::Shard& shard = sharded->shard(0);
  ShardServer server(shard.state, shard.global_ids);
  ShardListener replica(
      [&server](const std::string& request) { return server.Handle(request); });

  ShardPlacement placement;
  placement.Add(Endpoint{"127.0.0.1", ntohs(addr.sin_port)}, replica.endpoint());
  SocketTransport::Options options;
  // Generous half-budget (5s): the timing assertion below must
  // discriminate "sticky preference works" (replica answers in ms) from
  // "stalls again" (>= half the budget) even under sanitizer
  // instrumentation on a loaded single-core CI machine.
  options.roundtrip_timeout_ms = 10000;
  SocketTransport transport(placement, options);

  const std::string request = ScatterRequest().Encode();
  const std::string response = Roundtrip(transport, 0, request);
  GatherPartial partial;
  ASSERT_TRUE(GatherPartial::Decode(response, &partial).ok());
  EXPECT_GE(transport.stats().failovers, 1u);
  EXPECT_EQ(transport.stats().timeouts, 0u);

  // The preference sticks to the replica: the next call must not burn
  // another half-deadline stalling on the wedged primary.
  const auto before = std::chrono::steady_clock::now();
  Roundtrip(transport, 0, request);
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - before);
  EXPECT_LT(elapsed.count(), 4500) << "second call should skip the stalled primary";
  close(silent_fd);
}

TEST_F(SocketTransportTest, ListenerSurvivesGarbageAndTruncation) {
  const auto sharded = core::ShardedState::Build(base_, {2});
  const core::ShardedState::Shard& shard = sharded->shard(0);
  ShardServer server(shard.state, shard.global_ids);
  ShardListener listener(
      [&server](const std::string& request) { return server.Handle(request); });
  const Deadline deadline = Deadline::After(5000);

  // (a) Garbage length prefix: connection dropped, listener alive.
  {
    StatusOr<int> fd = DialTcp(listener.endpoint(), deadline);
    ASSERT_TRUE(fd.ok()) << fd.status().ToString();
    const char garbage[] = "\xff\xff\xff\xff not a frame at all";
    ASSERT_TRUE(SendAll(fd.value(), garbage, sizeof(garbage), deadline).ok());
    StatusOr<std::string> response = ReadFrame(fd.value(), 1 << 20, deadline);
    EXPECT_FALSE(response.ok());  // Dropped, not answered.
    close(fd.value());
  }

  // (b) Truncated frame: a valid header promising more bytes than sent,
  // then a close — the listener just drops the half-frame.
  {
    StatusOr<int> fd = DialTcp(listener.endpoint(), deadline);
    ASSERT_TRUE(fd.ok());
    ScatterRequest request;
    request.kind = ScatterRequest::Kind::kAggregateCells;
    const std::string frame = request.Encode();
    ASSERT_TRUE(SendAll(fd.value(), frame.data(), frame.size() / 2, deadline).ok());
    close(fd.value());
  }

  // (c) Well-framed corruption: correct length prefix, garbage payload —
  // answered with a TYPED error partial (the ShardServer contract).
  {
    StatusOr<int> fd = DialTcp(listener.endpoint(), deadline);
    ASSERT_TRUE(fd.ok());
    std::string frame = ScatterRequest().Encode();
    frame[5] ^= 0x5a;  // Break the magic.
    ASSERT_TRUE(SendAll(fd.value(), frame.data(), frame.size(), deadline).ok());
    StatusOr<std::string> response = ReadFrame(fd.value(), 1 << 20, deadline);
    ASSERT_TRUE(response.ok()) << response.status().ToString();
    GatherPartial partial;
    ASSERT_TRUE(GatherPartial::Decode(response.value(), &partial).ok());
    EXPECT_EQ(partial.status, GatherPartial::Disposition::kError);
    EXPECT_EQ(partial.code, StatusCode::kInvalidArgument);
    close(fd.value());
  }

  // (d) Seeded fuzz: random byte blobs on fresh connections. The
  // listener must survive every one of them.
  std::mt19937_64 rng(20260730);
  for (int round = 0; round < 32; ++round) {
    StatusOr<int> fd = DialTcp(listener.endpoint(), deadline);
    ASSERT_TRUE(fd.ok());
    std::string blob;
    const size_t len = 1 + rng() % 512;
    blob.reserve(len);
    for (size_t i = 0; i < len; ++i) blob.push_back(static_cast<char>(rng()));
    SendAll(fd.value(), blob.data(), blob.size(), deadline);
    close(fd.value());
  }

  // (e) After all of the above, a legitimate request still answers.
  {
    ShardPlacement placement;
    placement.Add(listener.endpoint());
    SocketTransport transport(placement, {});
    ScatterRequest request;
    request.kind = ScatterRequest::Kind::kAggregateCells;
    request.has_cells = true;  // Empty slice: zero aggregate back.
    const std::string response = Roundtrip(transport, 0, request.Encode());
    GatherPartial partial;
    ASSERT_TRUE(GatherPartial::Decode(response, &partial).ok());
    EXPECT_EQ(partial.status, GatherPartial::Disposition::kOk);
  }
  EXPECT_GE(listener.stats().bad_frames, 1u);
  listener.Stop();
}

// ---- placement parsing -------------------------------------------------

TEST(ShardPlacementTest, ParsesSpecWithCommentsAndOptionalReplicas) {
  const std::string spec =
      "# a 3-shard cluster\n"
      "\n"
      "2 127.0.0.1:7003\n"
      "0 127.0.0.1:7001 127.0.0.1:8001   # shard 0 has a replica\n"
      "1 host-b:7002 host-c.example:8002\n";
  StatusOr<ShardPlacement> placement = ShardPlacement::Parse(spec);
  ASSERT_TRUE(placement.ok()) << placement.status().ToString();
  ASSERT_EQ(placement->num_shards(), 3u);
  EXPECT_EQ(placement->shards[0].primary.ToString(), "127.0.0.1:7001");
  ASSERT_TRUE(placement->shards[0].has_replica);
  EXPECT_EQ(placement->shards[0].replica.ToString(), "127.0.0.1:8001");
  EXPECT_EQ(placement->shards[1].primary.host, "host-b");
  EXPECT_EQ(placement->shards[1].replica.port, 8002);
  EXPECT_FALSE(placement->shards[2].has_replica);

  // ToString -> Parse round-trips.
  StatusOr<ShardPlacement> again = ShardPlacement::Parse(placement->ToString());
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->num_shards(), 3u);
  EXPECT_EQ(again->shards[1].primary, placement->shards[1].primary);
  EXPECT_EQ(again->shards[0].replica, placement->shards[0].replica);
}

TEST(ShardPlacementTest, RejectsMalformedSpecsTyped) {
  const char* bad_specs[] = {
      "",                                  // No shards at all.
      "0 127.0.0.1:7001\n2 127.0.0.1:7003\n",  // Hole: shard 1 missing.
      "0 127.0.0.1:7001\n0 127.0.0.1:7002\n",  // Duplicate id.
      "x 127.0.0.1:7001\n",                // Non-numeric id.
      "0\n",                               // Missing endpoint.
      "0 127.0.0.1\n",                     // No port.
      "0 127.0.0.1:0\n",                   // Port 0.
      "0 127.0.0.1:99999\n",               // Port out of range.
      "0 127.0.0.1:7001 127.0.0.1:8001 127.0.0.1:9001\n",  // Trailing field.
      "0 fe80::1\n",                       // Bare IPv6 = missing port.
      "0 [::1:7001\n",                     // Unclosed IPv6 bracket.
  };
  for (const char* spec : bad_specs) {
    StatusOr<ShardPlacement> placement = ShardPlacement::Parse(spec);
    EXPECT_FALSE(placement.ok()) << "spec: " << spec;
    if (!placement.ok()) {
      EXPECT_EQ(placement.status().code(), StatusCode::kInvalidArgument)
          << "spec: " << spec;
    }
  }
}

TEST(ShardPlacementTest, BracketedIpv6HostsParseAndRoundTrip) {
  StatusOr<ShardPlacement> placement = ShardPlacement::Parse("0 [::1]:7001\n");
  ASSERT_TRUE(placement.ok()) << placement.status().ToString();
  EXPECT_EQ(placement->shards[0].primary.host, "::1");
  EXPECT_EQ(placement->shards[0].primary.port, 7001);
  EXPECT_EQ(placement->shards[0].primary.ToString(), "[::1]:7001");
  StatusOr<ShardPlacement> again = ShardPlacement::Parse(placement->ToString());
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->shards[0].primary, placement->shards[0].primary);
}

TEST(ShardPlacementTest, LoadReadsAFileAndMissingFileIsNotFound) {
  const std::string path = "placement_test.tmp";
  {
    std::ofstream out(path);
    out << "0 127.0.0.1:7001 127.0.0.1:8001\n1 127.0.0.1:7002\n";
  }
  StatusOr<ShardPlacement> placement = ShardPlacement::Load(path);
  ASSERT_TRUE(placement.ok()) << placement.status().ToString();
  EXPECT_EQ(placement->num_shards(), 2u);
  std::remove(path.c_str());

  StatusOr<ShardPlacement> missing = ShardPlacement::Load("definitely/not/here");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

// ---- single-slice builds (shard_server_main's startup path) -----------

// A shard-server process materializes ONLY its own slice
// (ShardingOptions::only_slice); the cuts and routing metadata must be
// identical to a full build at every shard, and the other K-1 slices
// must not exist (that is the whole point: O(1) startup per process).
TEST_F(SocketTransportTest, SingleSliceBuildMatchesFullBuildRoutingAndSlice) {
  const size_t k = 4;
  core::ShardingOptions full_options;
  full_options.num_shards = k;
  const auto full = core::ShardedState::Build(base_, full_options);
  ASSERT_TRUE(full->has_slices());
  for (size_t s = 0; s < k; ++s) {
    core::ShardingOptions one;
    one.num_shards = k;
    one.only_slice = static_cast<int>(s);
    const auto single = core::ShardedState::Build(base_, one);
    ASSERT_EQ(single->num_shards(), full->num_shards());
    // Partial slices must not be mistaken for a scatter-capable build.
    EXPECT_FALSE(single->has_slices());
    for (size_t t = 0; t < k; ++t) {
      const core::ShardedState::Shard& got = single->shard(t);
      const core::ShardedState::Shard& want = full->shard(t);
      EXPECT_EQ(got.global_ids, want.global_ids) << "shard " << t;
      EXPECT_EQ(got.hilbert_lo, want.hilbert_lo) << "shard " << t;
      EXPECT_EQ(got.hilbert_hi, want.hilbert_hi) << "shard " << t;
      EXPECT_EQ(got.key_ranges, want.key_ranges) << "shard " << t;
      if (t == s) {
        ASSERT_NE(got.state, nullptr);
        ASSERT_NE(want.state, nullptr);
        EXPECT_EQ(got.state->points->locs.size(),
                  want.state->points->locs.size());
      } else {
        EXPECT_EQ(got.state, nullptr) << "shard " << t << " kept a slice";
      }
    }
  }
}

}  // namespace
}  // namespace dbsa::service
