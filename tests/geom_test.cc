// Unit tests for the geometry kernel primitives: Point, Box, Segment.

#include <gtest/gtest.h>

#include "geom/box.h"
#include "geom/point.h"
#include "geom/segment.h"

namespace dbsa::geom {
namespace {

TEST(PointTest, Arithmetic) {
  const Point a{1.0, 2.0};
  const Point b{3.0, -1.0};
  EXPECT_EQ((a + b).x, 4.0);
  EXPECT_EQ((a + b).y, 1.0);
  EXPECT_EQ((a - b).x, -2.0);
  EXPECT_EQ((a * 2.0).y, 4.0);
  EXPECT_DOUBLE_EQ(a.Dot(b), 1.0);
  EXPECT_DOUBLE_EQ(a.Cross(b), -7.0);
}

TEST(PointTest, DistanceAndNorm) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Distance2({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(Point(3, 4).Norm(), 5.0);
}

TEST(PointTest, Orientation) {
  EXPECT_GT(Orient({0, 0}, {1, 0}, {1, 1}), 0);  // CCW.
  EXPECT_LT(Orient({0, 0}, {1, 0}, {1, -1}), 0);
  EXPECT_EQ(Orient({0, 0}, {1, 1}, {2, 2}), 0);  // Collinear.
}

TEST(BoxTest, EmptyBoxBehaviour) {
  Box b;
  EXPECT_TRUE(b.IsEmpty());
  EXPECT_EQ(b.Area(), 0.0);
  b.Extend(Point{1, 1});
  EXPECT_FALSE(b.IsEmpty());
  EXPECT_EQ(b.Area(), 0.0);  // Degenerate point box.
  EXPECT_TRUE(b.Contains(Point{1, 1}));
}

TEST(BoxTest, ExtendAndContains) {
  Box b;
  b.Extend(Point{0, 0});
  b.Extend(Point{2, 3});
  EXPECT_EQ(b.Width(), 2.0);
  EXPECT_EQ(b.Height(), 3.0);
  EXPECT_EQ(b.Area(), 6.0);
  EXPECT_TRUE(b.Contains(Point{1, 1}));
  EXPECT_TRUE(b.Contains(Point{0, 0}));  // Boundary closed.
  EXPECT_FALSE(b.Contains(Point{2.01, 1}));
}

TEST(BoxTest, IntersectionAndUnion) {
  const Box a(0, 0, 2, 2);
  const Box b(1, 1, 3, 3);
  EXPECT_TRUE(a.Intersects(b));
  const Box i = a.Intersection(b);
  EXPECT_EQ(i.min.x, 1.0);
  EXPECT_EQ(i.max.x, 2.0);
  EXPECT_EQ(i.Area(), 1.0);
  const Box u = a.Union(b);
  EXPECT_EQ(u.Area(), 9.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(b), 5.0);

  const Box far_box(10, 10, 11, 11);
  EXPECT_FALSE(a.Intersects(far_box));
  EXPECT_TRUE(a.Intersection(far_box).IsEmpty());
}

TEST(BoxTest, TouchingBoxesIntersect) {
  const Box a(0, 0, 1, 1);
  const Box b(1, 0, 2, 1);
  EXPECT_TRUE(a.Intersects(b));  // Closed-interval semantics.
}

TEST(BoxTest, DistanceToPoint) {
  const Box b(0, 0, 2, 2);
  EXPECT_EQ(b.Distance({1, 1}), 0.0);   // Inside.
  EXPECT_EQ(b.Distance({3, 1}), 1.0);   // Right.
  EXPECT_DOUBLE_EQ(b.Distance({5, 6}), 5.0);  // Corner: 3-4-5.
}

TEST(SegmentTest, PointSegmentDistance) {
  EXPECT_DOUBLE_EQ(DistancePointSegment({0, 1}, {-1, 0}, {1, 0}), 1.0);
  // Beyond the endpoint: distance to the endpoint.
  EXPECT_DOUBLE_EQ(DistancePointSegment({2, 0}, {-1, 0}, {1, 0}), 1.0);
  // Degenerate segment.
  EXPECT_DOUBLE_EQ(DistancePointSegment({3, 4}, {0, 0}, {0, 0}), 5.0);
}

TEST(SegmentTest, ProperIntersection) {
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 2}, {0, 2}, {2, 0}));
  EXPECT_FALSE(SegmentsIntersect({0, 0}, {1, 1}, {2, 2}, {3, 3}));  // Disjoint collinear.
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 2}, {1, 1}, {3, 3}));   // Overlapping collinear.
}

TEST(SegmentTest, TouchingIntersection) {
  // Endpoint on the other segment counts as intersection.
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 0}, {1, 0}, {1, 1}));
  EXPECT_TRUE(SegmentsIntersect({0, 0}, {2, 0}, {2, 0}, {3, 1}));
}

TEST(SegmentTest, SegmentSegmentDistance) {
  EXPECT_DOUBLE_EQ(DistanceSegmentSegment2({0, 0}, {1, 0}, {0, 1}, {1, 1}), 1.0);
  EXPECT_EQ(DistanceSegmentSegment2({0, 0}, {2, 2}, {0, 2}, {2, 0}), 0.0);
}

TEST(SegmentTest, SegmentBoxIntersection) {
  const Box b(0, 0, 2, 2);
  EXPECT_TRUE(SegmentIntersectsBox({1, 1}, {5, 5}, b));   // Endpoint inside.
  EXPECT_TRUE(SegmentIntersectsBox({-1, 1}, {3, 1}, b));  // Crosses through.
  EXPECT_FALSE(SegmentIntersectsBox({3, 3}, {5, 5}, b));
  // Diagonal passing beside the box.
  EXPECT_FALSE(SegmentIntersectsBox({3, 0}, {5, 2}, b));
  // Touching a corner.
  EXPECT_TRUE(SegmentIntersectsBox({2, 2}, {3, 3}, b));
}

}  // namespace
}  // namespace dbsa::geom
