// Stress tests for SFC-sharded scatter-gather execution: results must be
// BYTE-IDENTICAL to the unsharded engine at every (shard count, thread
// count) combination, across all three query kinds, including shards
// that prune to zero.
//
// Attribute note: fares are quantized to multiples of 1/64 (dyadic), so
// every per-cell and per-shard partial sum is exactly representable in
// double and the gather merge is exact — the merge-identity contract of
// core/sharded_state.h holds bit-for-bit for SUM and AVG as well as for
// the always-exact COUNT / range / selection results.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "core/dbsa.h"
#include "service/query_service.h"
#include "service/thread_pool.h"
#include "test_util.h"

namespace dbsa::core {
namespace {

using dbsa::testing::MakeRectPolygon;
using dbsa::testing::MakeStarPolygon;

/// Bitwise row comparison (== on doubles — the determinism contract).
void ExpectRowsIdentical(const AggregateAnswer& got, const AggregateAnswer& want,
                         const std::string& label) {
  ASSERT_EQ(got.rows.size(), want.rows.size()) << label;
  for (size_t r = 0; r < want.rows.size(); ++r) {
    EXPECT_EQ(got.rows[r].region, want.rows[r].region) << label << " region " << r;
    EXPECT_EQ(got.rows[r].value, want.rows[r].value) << label << " region " << r;
    EXPECT_EQ(got.rows[r].lo, want.rows[r].lo) << label << " region " << r;
    EXPECT_EQ(got.rows[r].hi, want.rows[r].hi) << label << " region " << r;
  }
}

class ShardedStateTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::TaxiConfig taxi_config;
    taxi_config.universe = geom::Box(0, 0, 4096, 4096);
    data::PointSet points = data::GenerateTaxiPoints(20000, taxi_config);
    // Dyadic fares: exact sums under any association (see file comment).
    for (double& f : points.fare) f = std::round(f * 64.0) / 64.0;

    data::RegionConfig region_config;
    region_config.universe = taxi_config.universe;
    region_config.num_polygons = 24;
    region_config.target_avg_vertices = 24;
    region_config.multi_fraction = 0.2;
    data::RegionSet regions = data::GenerateRegions(region_config);

    base_ = BuildEngineState(std::move(points), std::move(regions));
  }

  std::shared_ptr<const EngineState> base_;
};

TEST_F(ShardedStateTest, BuildPartitionsPointsIntoLocalShards) {
  const auto sharded = ShardedState::Build(base_, {/*num_shards=*/7});
  ASSERT_EQ(sharded->num_shards(), 7u);
  std::vector<char> seen(base_->points->size(), 0);
  size_t total = 0;
  for (size_t s = 0; s < sharded->num_shards(); ++s) {
    const ShardedState::Shard& shard = sharded->shard(s);
    ASSERT_NE(shard.state, nullptr);
    EXPECT_EQ(shard.state->points->size(), shard.num_points());
    EXPECT_TRUE(shard.state->point_index.has_value());  // Eagerly built.
    // Shards share the base grid — cell keys agree across shards.
    EXPECT_EQ(shard.state->grid.origin(), base_->grid.origin());
    EXPECT_EQ(shard.state->grid.side(), base_->grid.side());
    EXPECT_TRUE(std::is_sorted(shard.global_ids.begin(), shard.global_ids.end()));
    for (const uint32_t id : shard.global_ids) {
      EXPECT_EQ(seen[id], 0) << "point " << id << " in two shards";
      seen[id] = 1;
      EXPECT_TRUE(shard.bounds.Contains(base_->points->locs[id]));
    }
    total += shard.num_points();
    // Hilbert-contiguous runs are spatially local: each shard's bbox is a
    // strict sub-area of the universe.
    EXPECT_LT(shard.bounds.Area(), base_->grid.universe().Area() * 0.9);
  }
  EXPECT_EQ(total, base_->points->size());
}

TEST_F(ShardedStateTest, ScatterGatherByteMatchesUnshardedEverywhere) {
  const geom::Polygon star1 = MakeStarPolygon({2000, 2000}, 400, 900, 16, 11);
  const geom::Polygon star2 = MakeStarPolygon({1200, 2800}, 300, 700, 12, 23);
  const geom::Polygon corner = MakeRectPolygon(100, 100, 380, 420);
  const std::vector<geom::Polygon> polys = {star1, star2, corner};
  const std::vector<double> epsilons = {4.0, 16.0};

  for (const size_t k : {size_t{1}, size_t{2}, size_t{7}, size_t{16}}) {
    const auto sharded = ShardedState::Build(base_, {k});
    for (const size_t threads : {size_t{0}, size_t{4}, size_t{8}}) {
      // threads == 0: no parallel hook (serial gather); otherwise fan the
      // scatter stage out across a real pool.
      std::unique_ptr<service::ThreadPool> pool;
      ExecHooks hooks;
      if (threads > 0) {
        pool = std::make_unique<service::ThreadPool>(threads);
        hooks.parallel_for = [&pool](size_t n,
                                     const std::function<void(size_t)>& fn) {
          pool->ParallelFor(n, fn);
        };
      }
      const std::string label =
          "k=" + std::to_string(k) + " threads=" + std::to_string(threads);

      for (const double eps : epsilons) {
        // Region aggregations, all three aggregate kinds.
        ExpectRowsIdentical(
            ExecuteAggregate(*sharded, join::AggKind::kCount, Attr::kNone, eps,
                             Mode::kPointIndex, hooks),
            ExecuteAggregate(*base_, join::AggKind::kCount, Attr::kNone, eps,
                             Mode::kPointIndex),
            label + " count eps=" + std::to_string(eps));
        ExpectRowsIdentical(
            ExecuteAggregate(*sharded, join::AggKind::kSum, Attr::kFare, eps,
                             Mode::kPointIndex, hooks),
            ExecuteAggregate(*base_, join::AggKind::kSum, Attr::kFare, eps,
                             Mode::kPointIndex),
            label + " sum eps=" + std::to_string(eps));
        ExpectRowsIdentical(
            ExecuteAggregate(*sharded, join::AggKind::kAvg, Attr::kFare, eps,
                             Mode::kPointIndex, hooks),
            ExecuteAggregate(*base_, join::AggKind::kAvg, Attr::kFare, eps,
                             Mode::kPointIndex),
            label + " avg eps=" + std::to_string(eps));

        // Ad-hoc counts and selections.
        for (size_t p = 0; p < polys.size(); ++p) {
          const join::ResultRange got =
              ExecuteCountInPolygon(*sharded, polys[p], eps, hooks);
          const join::ResultRange want = ExecuteCountInPolygon(*base_, polys[p], eps);
          EXPECT_EQ(got.estimate, want.estimate) << label << " poly " << p;
          EXPECT_EQ(got.lo, want.lo) << label << " poly " << p;
          EXPECT_EQ(got.hi, want.hi) << label << " poly " << p;
          EXPECT_EQ(ExecuteSelectInPolygon(*sharded, polys[p], eps, hooks),
                    ExecuteSelectInPolygon(*base_, polys[p], eps))
              << label << " poly " << p;
        }
      }

      // Delegated (non-point-index) plans flow through unchanged.
      ExpectRowsIdentical(ExecuteAggregate(*sharded, join::AggKind::kSum,
                                           Attr::kFare, 8.0, Mode::kAct, hooks),
                          ExecuteAggregate(*base_, join::AggKind::kSum, Attr::kFare,
                                           8.0, Mode::kAct),
                          label + " delegated ACT");
      ExpectRowsIdentical(ExecuteAggregate(*sharded, join::AggKind::kCount,
                                           Attr::kNone, 0.0, Mode::kExact, hooks),
                          ExecuteAggregate(*base_, join::AggKind::kCount,
                                           Attr::kNone, 0.0, Mode::kExact),
                          label + " delegated exact");
    }
  }
}

TEST_F(ShardedStateTest, SelectivePolygonPrunesShards) {
  const auto sharded = ShardedState::Build(base_, {/*num_shards=*/16});
  const geom::Polygon corner = MakeRectPolygon(100, 100, 380, 420);
  const raster::HierarchicalRaster hr =
      raster::HierarchicalRaster::BuildEpsilon(corner, base_->grid, 8.0);
  const std::vector<uint32_t> surviving = sharded->SurvivingShards(hr);
  // A ~0.5% viewport touches a handful of Hilbert-local shards, not all.
  EXPECT_GE(surviving.size(), 1u);
  EXPECT_LT(surviving.size(), 8u);

  // The aggregate stats report how many shards were actually probed.
  const AggregateAnswer answer = ExecuteAggregate(
      *sharded, join::AggKind::kCount, Attr::kNone, 8.0, Mode::kPointIndex);
  EXPECT_GT(answer.stats.shards_probed, 0u);
  EXPECT_LE(answer.stats.shards_probed, 16u);
}

TEST_F(ShardedStateTest, QueryOutsideEveryShardPrunesToZero) {
  // Points confined to the left half of the universe; the query sits in
  // the right half: every shard prunes to zero and the (empty) gather
  // must still byte-match the unsharded engine's zero answers.
  data::TaxiConfig config;
  config.universe = geom::Box(0, 0, 2000, 4096);  // Left half only.
  data::PointSet points = data::GenerateTaxiPoints(5000, config);
  data::RegionConfig region_config;
  region_config.universe = geom::Box(0, 0, 4096, 4096);
  region_config.num_polygons = 8;
  data::RegionSet regions = data::GenerateRegions(region_config);
  const auto base = BuildEngineState(std::move(points), std::move(regions));
  const auto sharded = ShardedState::Build(base, {/*num_shards=*/4});

  const geom::Polygon far_poly = MakeRectPolygon(3000, 1000, 3800, 2000);
  const raster::HierarchicalRaster hr =
      raster::HierarchicalRaster::BuildEpsilon(far_poly, base->grid, 8.0);
  EXPECT_TRUE(sharded->SurvivingShards(hr).empty());

  const join::ResultRange got = ExecuteCountInPolygon(*sharded, far_poly, 8.0);
  const join::ResultRange want = ExecuteCountInPolygon(*base, far_poly, 8.0);
  EXPECT_EQ(got.estimate, want.estimate);
  EXPECT_EQ(got.lo, want.lo);
  EXPECT_EQ(got.hi, want.hi);
  EXPECT_EQ(got.estimate, 0.0);
  EXPECT_TRUE(ExecuteSelectInPolygon(*sharded, far_poly, 8.0).empty());
}

TEST_F(ShardedStateTest, ShardedQueryServiceByteMatchesUnshardedEngine) {
  // End-to-end through the serving layer: 8 shards x 8 threads, workload
  // duplicated so the second half exercises the warm HR cache.
  SpatialEngine engine;
  engine.SetPoints(data::PointSet(*base_->points));
  engine.SetRegions(data::RegionSet(*base_->regions));

  std::vector<service::Request> workload;
  const geom::Polygon star = MakeStarPolygon({2000, 2000}, 400, 900, 16, 11);
  const geom::Polygon corner = MakeRectPolygon(100, 100, 380, 420);
  for (const double eps : {4.0, 8.0}) {
    workload.push_back(service::Request::MakeAggregate(
        join::AggKind::kCount, Attr::kNone, eps, Mode::kPointIndex));
    workload.push_back(service::Request::MakeAggregate(
        join::AggKind::kSum, Attr::kFare, eps, Mode::kPointIndex));
    workload.push_back(service::Request::MakeCount(star, eps));
    workload.push_back(service::Request::MakeCount(corner, eps));
    workload.push_back(service::Request::MakeSelect(star, eps));
  }
  // Explicit copy: self-range insert invalidates the source iterators on
  // reallocation and used to corrupt the duplicated half.
  const std::vector<service::Request> first_pass = workload;
  workload.insert(workload.end(), first_pass.begin(), first_pass.end());

  service::ServiceOptions options;
  options.num_threads = 8;
  options.num_shards = 8;
  service::QueryService service(engine.Snapshot(), options);
  ASSERT_NE(service.sharded(), nullptr);
  ASSERT_EQ(service.sharded()->num_shards(), 8u);

  for (const service::Request& req : workload) service.Submit(req);
  const std::vector<service::Response> responses = service.DrainResponses();
  ASSERT_EQ(responses.size(), workload.size());

  for (size_t i = 0; i < responses.size(); ++i) {
    const service::Request& req = workload[i];
    const service::Response& got = responses[i];
    switch (req.kind) {
      case service::Request::Kind::kAggregate: {
        const AggregateAnswer want =
            engine.Aggregate(req.agg, req.attr, req.epsilon, req.mode);
        ExpectRowsIdentical(got.aggregate, want, "request " + std::to_string(i));
        break;
      }
      case service::Request::Kind::kCountInPolygon: {
        const join::ResultRange want = engine.CountInPolygon(req.poly, req.epsilon);
        EXPECT_EQ(got.range.estimate, want.estimate) << "request " << i;
        EXPECT_EQ(got.range.lo, want.lo) << "request " << i;
        EXPECT_EQ(got.range.hi, want.hi) << "request " << i;
        break;
      }
      case service::Request::Kind::kSelectInPolygon:
        EXPECT_EQ(got.ids, engine.SelectInPolygon(req.poly, req.epsilon))
            << "request " << i;
        break;
    }
  }
}

// ---- the unconditional SUM/AVG merge identity --------------------------

TEST(ShardedNonDyadicSumTest, AdversarialAttributesByteIdenticalAtEveryK) {
  // Regression for the compensated (error-free transformation) SUM
  // pipeline: BEFORE it, sharded SUM/AVG matched the unsharded engine
  // bit-for-bit only for dyadic attributes — per-cell partials from the
  // rounded prefix arrays re-associated differently across shard merges.
  // The attribute column here is built to break that old contract:
  //   * non-dyadic decimals (0.01 steps) whose partial sums always round,
  //   * large-magnitude pairs (±1e9 + decimals) that cancel across cells,
  //   * tiny values (1e-4 scale) whose bits die next to the big ones
  // under plain double accumulation. With the compensated pairs, every
  // per-cell and per-shard partial is exact, so the gather merges to
  // identical bits at any shard count and any thread count.
  data::TaxiConfig taxi_config;
  taxi_config.universe = geom::Box(0, 0, 4096, 4096);
  data::PointSet points = data::GenerateTaxiPoints(20000, taxi_config);
  for (size_t i = 0; i < points.fare.size(); ++i) {
    double fare = 0.01 * static_cast<double>(i % 977) + 1e-4;
    if (i % 97 == 0) fare += 1e9 + 0.123;
    if (i % 97 == 1) fare -= 1e9 - 0.456;  // Cancels a neighbour's spike.
    points.fare[i] = fare;
  }
  data::RegionConfig region_config;
  region_config.universe = taxi_config.universe;
  region_config.num_polygons = 16;
  region_config.target_avg_vertices = 24;
  region_config.multi_fraction = 0.2;
  data::RegionSet regions = data::GenerateRegions(region_config);
  const auto base = BuildEngineState(std::move(points), std::move(regions));

  for (const size_t k : {size_t{1}, size_t{7}, size_t{16}}) {
    const auto sharded = ShardedState::Build(base, {k});
    for (const size_t threads : {size_t{0}, size_t{8}}) {
      std::unique_ptr<service::ThreadPool> pool;
      ExecHooks hooks;
      if (threads > 0) {
        pool = std::make_unique<service::ThreadPool>(threads);
        hooks.parallel_for = [&pool](size_t n,
                                     const std::function<void(size_t)>& fn) {
          pool->ParallelFor(n, fn);
        };
      }
      const std::string label =
          "k=" + std::to_string(k) + " threads=" + std::to_string(threads);
      for (const double eps : {4.0, 16.0}) {
        ExpectRowsIdentical(
            ExecuteAggregate(*sharded, join::AggKind::kSum, Attr::kFare, eps,
                             Mode::kPointIndex, hooks),
            ExecuteAggregate(*base, join::AggKind::kSum, Attr::kFare, eps,
                             Mode::kPointIndex),
            label + " adversarial sum eps=" + std::to_string(eps));
        ExpectRowsIdentical(
            ExecuteAggregate(*sharded, join::AggKind::kAvg, Attr::kFare, eps,
                             Mode::kPointIndex, hooks),
            ExecuteAggregate(*base, join::AggKind::kAvg, Attr::kFare, eps,
                             Mode::kPointIndex),
            label + " adversarial avg eps=" + std::to_string(eps));
      }
    }
    // And across the transport seam: serialization must not cost a bit
    // even for the compensated pairs.
    service::ServiceOptions options;
    options.num_threads = 4;
    options.num_shards = k;
    options.use_transport = true;
    service::QueryService seam(std::shared_ptr<const EngineState>(base), options);
    const core::AggregateAnswer via_seam =
        seam.Execute(service::Query::Aggregate(join::AggKind::kSum, Attr::kFare),
                     [] {
                       service::ExecOptions o;
                       o.bound = query::ErrorBound::Absolute(4.0);
                       o.mode = Mode::kPointIndex;
                       return o;
                     }())
            .get()
            .aggregate;
    ExpectRowsIdentical(via_seam,
                        ExecuteAggregate(*base, join::AggKind::kSum, Attr::kFare,
                                         4.0, Mode::kPointIndex),
                        "seam k=" + std::to_string(k) + " adversarial sum");
  }
}

}  // namespace
}  // namespace dbsa::core
