// Tests for the join executors (Section 5.1): exact joins agree with
// brute force; the ACT approximate join's errors are confined to points
// within epsilon of true region boundaries — the paper's core guarantee.

#include <gtest/gtest.h>

#include "data/regions.h"
#include "geom/distance.h"
#include "join/act_join.h"
#include "join/exact_join.h"
#include "join/si_join.h"
#include "test_util.h"

namespace dbsa::join {
namespace {

struct JoinSetup {
  data::RegionSet regions;
  std::vector<geom::Point> pts;
  std::vector<double> attrs;
  raster::Grid grid{{0, 0}, 1024.0};

  JoinInput Input() const {
    JoinInput in;
    in.points = pts.data();
    in.attrs = attrs.data();
    in.num_points = pts.size();
    in.polys = &regions.polys;
    in.region_of = &regions.region_of;
    in.num_regions = regions.num_regions;
    return in;
  }
};

JoinSetup MakeSetup(size_t n_regions, size_t n_points, uint64_t seed) {
  JoinSetup s;
  data::RegionConfig config;
  config.universe = geom::Box(0, 0, 1024, 1024);
  config.num_polygons = n_regions;
  config.target_avg_vertices = 24;
  config.seed = seed;
  s.regions = data::GenerateRegions(config);
  s.pts = dbsa::testing::RandomPoints(geom::Box(1, 1, 1023, 1023), n_points, seed + 9);
  Rng rng(seed + 21);
  for (size_t i = 0; i < n_points; ++i) s.attrs.push_back(rng.Uniform(1, 10));
  return s;
}

TEST(ExactJoinTest, RStarEqualsBruteForce) {
  const JoinSetup s = MakeSetup(16, 4000, 1);
  const JoinInput in = s.Input();
  const JoinStats brute = BruteForceJoin(in, AggKind::kCount);
  const JoinStats rstar = RStarMbrJoin(in, AggKind::kCount);
  ASSERT_EQ(brute.value.size(), rstar.value.size());
  for (size_t r = 0; r < brute.value.size(); ++r) {
    ASSERT_DOUBLE_EQ(brute.value[r], rstar.value[r]) << "region " << r;
  }
  EXPECT_GT(rstar.pip_tests, 0u);
}

TEST(ExactJoinTest, GridPipEqualsBruteForce) {
  const JoinSetup s = MakeSetup(16, 4000, 2);
  const JoinInput in = s.Input();
  const JoinStats brute = BruteForceJoin(in, AggKind::kSum);
  for (const bool shortcut : {false, true}) {
    const JoinStats grid = GridPipJoin(in, AggKind::kSum, 64, shortcut);
    for (size_t r = 0; r < brute.value.size(); ++r) {
      ASSERT_NEAR(brute.value[r], grid.value[r], 1e-6)
          << "region " << r << " shortcut " << shortcut;
    }
  }
}

TEST(ExactJoinTest, InteriorShortcutReducesPipTests) {
  const JoinSetup s = MakeSetup(8, 20000, 3);
  const JoinInput in = s.Input();
  const JoinStats plain = GridPipJoin(in, AggKind::kCount, 64, false);
  const JoinStats shortcut = GridPipJoin(in, AggKind::kCount, 64, true);
  EXPECT_LT(shortcut.pip_tests, plain.pip_tests);
}

TEST(SiJoinTest, ExactDespiteCoarseCells) {
  const JoinSetup s = MakeSetup(16, 5000, 4);
  const JoinInput in = s.Input();
  const JoinStats brute = BruteForceJoin(in, AggKind::kCount);
  for (const size_t budget : {8u, 64u, 256u}) {
    const JoinStats si = SiJoin(in, AggKind::kCount, s.grid, budget);
    for (size_t r = 0; r < brute.value.size(); ++r) {
      ASSERT_DOUBLE_EQ(brute.value[r], si.value[r])
          << "region " << r << " budget " << budget;
    }
  }
}

TEST(SiJoinTest, FinerBudgetCutsPipTests) {
  const JoinSetup s = MakeSetup(16, 10000, 5);
  const JoinInput in = s.Input();
  const JoinStats coarse = SiJoin(in, AggKind::kCount, s.grid, 8);
  const JoinStats fine = SiJoin(in, AggKind::kCount, s.grid, 512);
  EXPECT_LT(fine.pip_tests, coarse.pip_tests);
  EXPECT_GT(fine.index_bytes, coarse.index_bytes);
}

TEST(ActJoinTest, NoPipTestsAndBoundedErrors) {
  // The defining properties of the approximate join: zero exact tests,
  // and every misclassified point lies within epsilon of the boundary of
  // its true and/or assigned region.
  const JoinSetup s = MakeSetup(16, 8000, 6);
  const JoinInput in = s.Input();
  const double eps = 8.0;

  ActJoinOptions opts;
  opts.epsilon = eps;
  ActJoinIndex index(in, s.grid, opts);
  EXPECT_LE(index.achieved_epsilon(), eps * (1 + 1e-12));

  size_t mismatches = 0;
  for (size_t i = 0; i < s.pts.size(); ++i) {
    const geom::Point& p = s.pts[i];
    const int64_t approx_poly = index.FindPolygon(p);
    int64_t exact_poly = -1;
    for (size_t j = 0; j < s.regions.polys.size(); ++j) {
      if (s.regions.polys[j].bounds().Contains(p) && s.regions.polys[j].Contains(p)) {
        exact_poly = static_cast<int64_t>(j);
        break;
      }
    }
    if (approx_poly != exact_poly) {
      ++mismatches;
      // Error locality: p is within eps of the true region's boundary
      // (false negative side) or of the assigned region's boundary
      // (false positive side).
      double dist = 1e300;
      if (exact_poly >= 0) {
        dist = std::min(dist, geom::DistanceToBoundary(
                                  p, s.regions.polys[static_cast<size_t>(exact_poly)]));
      }
      if (approx_poly >= 0) {
        dist = std::min(dist,
                        geom::DistanceToBoundary(
                            p, s.regions.polys[static_cast<size_t>(approx_poly)]));
      }
      ASSERT_LE(dist, eps + 1e-9)
          << "point " << p.x << "," << p.y << " misassigned across > eps";
    }
  }
  // Most points are classified correctly.
  EXPECT_LT(static_cast<double>(mismatches) / static_cast<double>(s.pts.size()), 0.10);
}

TEST(ActJoinTest, JoinStatsReportZeroPip) {
  const JoinSetup s = MakeSetup(8, 3000, 7);
  ActJoinOptions opts;
  opts.epsilon = 4.0;
  const JoinStats stats = ActJoin(s.Input(), AggKind::kCount, s.grid, opts);
  EXPECT_EQ(stats.pip_tests, 0u);
  EXPECT_GT(stats.index_cells, 0u);
  double total = 0;
  for (const double v : stats.value) total += v;
  // Tiling regions + center assignment: every point lands somewhere.
  EXPECT_NEAR(total, static_cast<double>(s.pts.size()),
              static_cast<double>(s.pts.size()) * 0.01);
}

TEST(ActJoinTest, TighterEpsilonImprovesAccuracy) {
  const JoinSetup s = MakeSetup(12, 10000, 8);
  const JoinInput in = s.Input();
  const JoinStats exact = BruteForceJoin(in, AggKind::kCount);
  double prev_err = 1e300;
  for (const double eps : {32.0, 8.0, 2.0}) {
    ActJoinOptions opts;
    opts.epsilon = eps;
    const JoinStats approx = ActJoin(in, AggKind::kCount, s.grid, opts);
    double err = 0;
    for (size_t r = 0; r < exact.value.size(); ++r) {
      err += std::fabs(approx.value[r] - exact.value[r]);
    }
    EXPECT_LE(err, prev_err + 1.0) << "eps " << eps;
    prev_err = err;
  }
}

TEST(ActJoinTest, ExactRefineMatchesBruteForce) {
  // exact_refine turns the approximate join into the EDBT'20 filter-and-
  // refine mode: exact answers, PIP tests only on boundary-cell hits.
  const JoinSetup s = MakeSetup(16, 6000, 10);
  const JoinInput in = s.Input();
  const JoinStats brute = BruteForceJoin(in, AggKind::kCount);
  ActJoinOptions opts;
  opts.epsilon = 8.0;
  opts.exact_refine = true;
  const JoinStats refined = ActJoin(in, AggKind::kCount, s.grid, opts);
  for (size_t r = 0; r < brute.value.size(); ++r) {
    ASSERT_DOUBLE_EQ(brute.value[r], refined.value[r]) << "region " << r;
  }
  EXPECT_GT(refined.pip_tests, 0u);
  // Residual refinement: only points in boundary cells pay a PIP.
  EXPECT_LT(refined.pip_tests, s.pts.size());
}

TEST(ActJoinTest, TighterEpsilonCutsRefinementWork) {
  const JoinSetup s = MakeSetup(12, 10000, 11);
  const JoinInput in = s.Input();
  size_t prev = SIZE_MAX;
  for (const double eps : {32.0, 8.0, 2.0}) {
    ActJoinOptions opts;
    opts.epsilon = eps;
    opts.exact_refine = true;
    const JoinStats stats = ActJoin(in, AggKind::kCount, s.grid, opts);
    EXPECT_LT(stats.pip_tests, prev) << "eps " << eps;
    prev = stats.pip_tests;
  }
}

TEST(ActJoinTest, AggregatesBeyondCount) {
  const JoinSetup s = MakeSetup(8, 5000, 9);
  const JoinInput in = s.Input();
  const JoinStats exact_sum = BruteForceJoin(in, AggKind::kSum);
  ActJoinOptions opts;
  opts.epsilon = 2.0;
  const JoinStats approx_sum = ActJoin(in, AggKind::kSum, s.grid, opts);
  const JoinStats approx_avg = ActJoin(in, AggKind::kAvg, s.grid, opts);
  for (size_t r = 0; r < exact_sum.value.size(); ++r) {
    if (exact_sum.value[r] > 100) {
      EXPECT_NEAR(approx_sum.value[r] / exact_sum.value[r], 1.0, 0.1) << r;
      EXPECT_GT(approx_avg.value[r], 0.0);
      EXPECT_LT(approx_avg.value[r], 10.0);
    }
  }
}

}  // namespace
}  // namespace dbsa::join
