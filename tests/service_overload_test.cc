// Closed-loop overload tests for the admission-control layer of
// QueryService (ServiceOptions::max_inflight / shed_inflight_threshold):
//
//   * saturating the in-flight depth sheds new queries with a typed
//     kUnavailable Result — immediately, before any pool enqueue or HR
//     build, and without ever losing a ticket (Drain returns exactly one
//     Result per submission, in ticket order);
//   * queries that ARE admitted under overload answer with the same
//     payload as the unloaded single-threaded engine (degradation must
//     never corrupt, only reject);
//   * bounded in-flight backpressure (max_inflight) blocks submitters at
//     the cap instead of queueing unboundedly, and a closed loop of
//     clients over it completes every query — no deadlock, no loss;
//   * dbsa_shed_total and dbsa_inflight_depth are scrapable and track
//     the admission decisions.
//
// Runs under TSan in CI: the admission path races client threads against
// pool workers by construction.

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "core/dbsa.h"
#include "service/query_service.h"
#include "telemetry/metrics.h"
#include "test_util.h"

namespace dbsa::service {
namespace {

class ServiceOverloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::TaxiConfig taxi_config;
    taxi_config.universe = geom::Box(0, 0, 4096, 4096);
    points_ = data::GenerateTaxiPoints(20000, taxi_config);

    data::RegionConfig region_config;
    region_config.universe = taxi_config.universe;
    region_config.num_polygons = 8;
    region_config.target_avg_vertices = 24;
    regions_ = data::GenerateRegions(region_config);

    engine_.SetPoints(points_);
    engine_.SetRegions(regions_);

    poly_ = dbsa::testing::MakeStarPolygon({2000, 2000}, 400, 900, 16, 11);
    want_ = engine_.CountInPolygon(poly_, 8.0);
  }

  Query CountQuery() const { return Query::Count(poly_); }
  static ExecOptions Bound8() {
    ExecOptions options;
    options.bound = query::ErrorBound::Absolute(8.0);
    return options;
  }

  data::PointSet points_;
  data::RegionSet regions_;
  core::SpatialEngine engine_;
  geom::Polygon poly_;
  join::ResultRange want_;
};

TEST_F(ServiceOverloadTest, SaturationShedsTypedAndNeverLosesATicket) {
  ServiceOptions options;
  options.num_threads = 1;  // One worker: submission outruns execution.
  options.shed_inflight_threshold = 3;
  QueryService service(engine_.Snapshot(), options);

  constexpr size_t kQueries = 32;
  std::vector<uint64_t> tickets;
  tickets.reserve(kQueries);
  for (size_t i = 0; i < kQueries; ++i) {
    tickets.push_back(service.Submit(CountQuery(), Bound8()));
  }
  const std::vector<Result> results = service.Drain();

  // The hard invariant: one Result per ticket, in submission order —
  // shedding must never hang a future or drop a slot.
  ASSERT_EQ(results.size(), kQueries);
  size_t shed = 0, served = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].ticket, tickets[i]) << "slot " << i;
    EXPECT_EQ(results[i].kind, QueryKind::kCount) << "slot " << i;
    if (results[i].ok()) {
      ++served;
      // Admitted-under-load answers are byte-identical to the unloaded
      // engine: overload degrades availability, never correctness.
      EXPECT_EQ(results[i].range.estimate, want_.estimate) << "slot " << i;
      EXPECT_EQ(results[i].range.lo, want_.lo) << "slot " << i;
      EXPECT_EQ(results[i].range.hi, want_.hi) << "slot " << i;
    } else {
      ++shed;
      EXPECT_EQ(results[i].status.code(), StatusCode::kUnavailable)
          << "slot " << i << ": " << results[i].status.ToString();
      EXPECT_NE(results[i].status.message().find("overloaded"),
                std::string::npos)
          << results[i].status.message();
    }
  }
  // Ticket 1 was admitted at depth 0; a one-worker pool cannot drain 3
  // admissions faster than a tight submit loop refills them.
  EXPECT_GE(served, 1u);
  EXPECT_GE(shed, 1u);

  // The decisions are observable: the shed counter matches what Drain
  // reported and the depth gauge exists (and reads 0 after the drain).
  EXPECT_EQ(service.registry()->GetCounter("dbsa_shed_total")->Value(),
            static_cast<double>(shed));
  const std::string scrape = service.registry()->RenderText();
  EXPECT_NE(scrape.find("dbsa_shed_total"), std::string::npos);
  EXPECT_NE(scrape.find("dbsa_inflight_depth"), std::string::npos);

  // The service recovers: with the load gone, fresh queries serve.
  const Result after = service.Execute(CountQuery(), Bound8()).get();
  ASSERT_TRUE(after.ok()) << after.status.ToString();
  EXPECT_EQ(after.range.hi, want_.hi);
}

TEST_F(ServiceOverloadTest, ExecuteShedsImmediatelyWhileSaturated) {
  ServiceOptions options;
  options.num_threads = 1;
  options.shed_inflight_threshold = 2;
  QueryService service(engine_.Snapshot(), options);

  // Fill the admission window, then probe with Execute: the shed future
  // must be ready at once (no pool trip) and typed.
  for (size_t i = 0; i < 16; ++i) service.Submit(CountQuery(), Bound8());
  std::future<Result> probe = service.Execute(CountQuery(), Bound8());
  ASSERT_EQ(probe.wait_for(std::chrono::seconds(0)),
            std::future_status::ready)
      << "a shed Execute must resolve without touching the pool";
  const Result shed = probe.get();
  EXPECT_FALSE(shed.ok());
  EXPECT_EQ(shed.status.code(), StatusCode::kUnavailable);
  service.Drain();  // Every submitted ticket still resolves.
}

TEST_F(ServiceOverloadTest, BoundedInflightClosedLoopCompletesEverything) {
  ServiceOptions options;
  options.num_threads = 2;
  options.max_inflight = 2;  // Backpressure: callers block at the cap.
  QueryService service(engine_.Snapshot(), options);

  constexpr size_t kClients = 4;
  constexpr size_t kPerClient = 8;
  std::vector<std::thread> clients;
  std::vector<Status> failures[kClients];
  std::atomic<size_t> correct{0};
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      for (size_t i = 0; i < kPerClient; ++i) {
        const Result r = service.Execute(CountQuery(), Bound8()).get();
        if (!r.ok()) {
          failures[c].push_back(r.status);
        } else if (r.range.estimate == want_.estimate &&
                   r.range.lo == want_.lo && r.range.hi == want_.hi) {
          correct.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();

  // No query may be rejected (max_inflight blocks, it does not shed),
  // none may be lost, and every payload matches the unloaded engine.
  for (size_t c = 0; c < kClients; ++c) {
    for (const Status& s : failures[c]) {
      ADD_FAILURE() << "client " << c << ": " << s.ToString();
    }
  }
  EXPECT_EQ(correct.load(), kClients * kPerClient);
  EXPECT_EQ(service.registry()->GetCounter("dbsa_shed_total")->Value(), 0.0);
}

}  // namespace
}  // namespace dbsa::service
