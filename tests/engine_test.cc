// Integration tests for the SpatialEngine façade: end-to-end aggregation
// across all execution modes, exact-vs-approximate consistency, result
// ranges, and the motivating Figure 2 semantics.

#include <gtest/gtest.h>

#include "core/dbsa.h"
#include "geom/distance.h"
#include "test_util.h"

namespace dbsa::core {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::TaxiConfig taxi_config;
    taxi_config.universe = geom::Box(0, 0, 8192, 8192);
    points_ = data::GenerateTaxiPoints(30000, taxi_config);

    data::RegionConfig region_config;
    region_config.universe = taxi_config.universe;
    region_config.num_polygons = 24;
    region_config.target_avg_vertices = 28;
    regions_ = data::GenerateRegions(region_config);

    engine_.SetPoints(points_);
    engine_.SetRegions(regions_);
  }

  data::PointSet points_;
  data::RegionSet regions_;
  SpatialEngine engine_;
};

TEST_F(EngineTest, ExactModeMatchesBruteForce) {
  const AggregateAnswer exact = engine_.Aggregate(join::AggKind::kCount, Attr::kNone,
                                                  /*epsilon=*/0.0);
  EXPECT_EQ(exact.stats.plan, query::PlanKind::kExactRStar);
  double total = 0;
  for (const AggregateRow& row : exact.rows) total += row.value;
  EXPECT_NEAR(total, static_cast<double>(points_.size()), 1.0);
}

TEST_F(EngineTest, ApproxModesAgreeWithinBound) {
  const double eps = 8.0;
  const AggregateAnswer exact =
      engine_.Aggregate(join::AggKind::kCount, Attr::kNone, 0.0);
  for (const Mode mode : {Mode::kAct, Mode::kPointIndex, Mode::kCanvasBrj}) {
    const AggregateAnswer approx =
        engine_.Aggregate(join::AggKind::kCount, Attr::kNone, eps, mode);
    ASSERT_EQ(approx.rows.size(), exact.rows.size());
    double total_err = 0, total = 0;
    for (size_t r = 0; r < exact.rows.size(); ++r) {
      total_err += std::fabs(approx.rows[r].value - exact.rows[r].value);
      total += exact.rows[r].value;
    }
    EXPECT_LT(total_err / total, 0.05) << "mode " << static_cast<int>(mode);
    EXPECT_LE(approx.stats.achieved_epsilon, eps * (1 + 1e-12));
  }
}

TEST_F(EngineTest, ActModePerformsNoPipTests) {
  const AggregateAnswer approx =
      engine_.Aggregate(join::AggKind::kCount, Attr::kNone, 8.0, Mode::kAct);
  EXPECT_EQ(approx.stats.pip_tests, 0u);
  EXPECT_GT(approx.stats.index_bytes, 0u);
}

TEST_F(EngineTest, PointIndexModeReturnsValidRanges) {
  const AggregateAnswer exact =
      engine_.Aggregate(join::AggKind::kCount, Attr::kNone, 0.0);
  const AggregateAnswer ranged =
      engine_.Aggregate(join::AggKind::kCount, Attr::kNone, 16.0, Mode::kPointIndex);
  for (size_t r = 0; r < exact.rows.size(); ++r) {
    EXPECT_GE(exact.rows[r].value, ranged.rows[r].lo - 1e-6) << "region " << r;
    EXPECT_LE(exact.rows[r].value, ranged.rows[r].hi + 1e-6) << "region " << r;
    EXPECT_GE(ranged.rows[r].hi, ranged.rows[r].lo);
  }
}

TEST_F(EngineTest, SumAndAvgAggregates) {
  const AggregateAnswer exact_sum =
      engine_.Aggregate(join::AggKind::kSum, Attr::kFare, 0.0);
  const AggregateAnswer approx_sum =
      engine_.Aggregate(join::AggKind::kSum, Attr::kFare, 8.0, Mode::kAct);
  const AggregateAnswer approx_avg =
      engine_.Aggregate(join::AggKind::kAvg, Attr::kFare, 8.0, Mode::kAct);
  for (size_t r = 0; r < exact_sum.rows.size(); ++r) {
    if (exact_sum.rows[r].value > 1000) {
      EXPECT_NEAR(approx_sum.rows[r].value / exact_sum.rows[r].value, 1.0, 0.1);
    }
    EXPECT_GE(approx_avg.rows[r].value, 0.0);
  }
}

TEST_F(EngineTest, PointIndexPassengerSumReroutesToAct) {
  // The point index carries prefix sums of the fare column only; a
  // SUM/AVG over passengers must not silently aggregate fares. The engine
  // reroutes such queries to the ACT join.
  const AggregateAnswer rerouted = engine_.Aggregate(
      join::AggKind::kSum, Attr::kPassengers, 8.0, Mode::kPointIndex);
  EXPECT_EQ(rerouted.stats.plan, query::PlanKind::kActJoin);
  const AggregateAnswer act =
      engine_.Aggregate(join::AggKind::kSum, Attr::kPassengers, 8.0, Mode::kAct);
  ASSERT_EQ(rerouted.rows.size(), act.rows.size());
  for (size_t r = 0; r < act.rows.size(); ++r) {
    EXPECT_EQ(rerouted.rows[r].value, act.rows[r].value) << "region " << r;
  }
  // COUNT needs no attribute column and stays on the point index.
  const AggregateAnswer count = engine_.Aggregate(join::AggKind::kCount,
                                                  Attr::kNone, 8.0, Mode::kPointIndex);
  EXPECT_EQ(count.stats.plan, query::PlanKind::kPointIndexJoin);
}

TEST_F(EngineTest, AutoModePicksAPlanAndExplains) {
  const AggregateAnswer auto_run =
      engine_.Aggregate(join::AggKind::kCount, Attr::kNone, 8.0, Mode::kAuto);
  EXPECT_FALSE(auto_run.stats.explain.empty());
  EXPECT_GT(auto_run.stats.elapsed_ms, 0.0);
}

TEST_F(EngineTest, CountInPolygonRangeContainsExact) {
  const geom::Polygon query =
      dbsa::testing::MakeStarPolygon({4000, 4000}, 800, 1800, 20, 11);
  size_t exact = 0;
  for (const geom::Point& p : points_.locs) {
    if (query.bounds().Contains(p) && query.Contains(p)) ++exact;
  }
  for (const double eps : {64.0, 16.0, 4.0}) {
    const join::ResultRange range = engine_.CountInPolygon(query, eps);
    EXPECT_TRUE(range.Contains(static_cast<double>(exact)))
        << "eps " << eps << " range [" << range.lo << "," << range.hi << "] exact "
        << exact;
  }
}

TEST_F(EngineTest, SelectInPolygonIsConservativeAndBounded) {
  const geom::Polygon query =
      dbsa::testing::MakeStarPolygon({4000, 4000}, 800, 1800, 20, 21);
  const double eps = 16.0;
  const std::vector<uint32_t> ids = engine_.SelectInPolygon(query, eps);
  std::vector<bool> selected(points_.size(), false);
  for (const uint32_t id : ids) {
    ASSERT_LT(id, points_.size());
    selected[id] = true;
  }
  for (size_t i = 0; i < points_.size(); ++i) {
    const geom::Point& p = points_.locs[i];
    const bool exact = query.bounds().Contains(p) && query.Contains(p);
    if (exact) {
      ASSERT_TRUE(selected[i]) << "missed inside point " << i;
    } else if (selected[i]) {
      ASSERT_LE(geom::DistanceToPolygon(p, query), eps + 1e-9)
          << "false positive beyond the bound";
    }
  }
}

TEST_F(EngineTest, Figure2Semantics) {
  // The motivating example: MBR-based filtering counts far-away points;
  // the distance-bounded approximation's false positives all lie near the
  // region. Reproduce with one concave query region.
  const geom::Polygon query =
      dbsa::testing::MakeStarPolygon({4000, 4000}, 600, 2000, 12, 13);
  // MBR count (what a pure-filter baseline returns).
  size_t mbr_count = 0, exact = 0;
  for (const geom::Point& p : points_.locs) {
    if (query.bounds().Contains(p)) {
      ++mbr_count;
      if (query.Contains(p)) ++exact;
    }
  }
  const double eps = 32.0;
  const join::ResultRange ur_range = engine_.CountInPolygon(query, eps);
  // The raster count is within its guaranteed range and much closer to
  // exact than the MBR count for concave regions.
  EXPECT_TRUE(ur_range.Contains(static_cast<double>(exact)));
  EXPECT_LT(std::fabs(ur_range.approx - static_cast<double>(exact)),
            std::fabs(static_cast<double>(mbr_count) - static_cast<double>(exact)));
}

TEST(EngineLifecycleTest, ReRegisteringResetsState) {
  SpatialEngine engine;
  data::TaxiConfig config;
  config.universe = geom::Box(0, 0, 1024, 1024);
  engine.SetPoints(data::GenerateTaxiPoints(1000, config));
  data::RegionConfig rc;
  rc.universe = config.universe;
  rc.num_polygons = 4;
  engine.SetRegions(data::GenerateRegions(rc));
  const AggregateAnswer a = engine.Aggregate(join::AggKind::kCount, Attr::kNone, 4.0);
  ASSERT_EQ(a.rows.size(), 4u);

  // Swap in a different region set; answers must follow.
  rc.num_polygons = 9;
  rc.seed = 99;
  engine.SetRegions(data::GenerateRegions(rc));
  const AggregateAnswer b = engine.Aggregate(join::AggKind::kCount, Attr::kNone, 4.0);
  ASSERT_EQ(b.rows.size(), 9u);
}

}  // namespace
}  // namespace dbsa::core
