// Tests for the shard-server message seam: LoopbackTransport execution
// must return results BYTE-IDENTICAL to the in-process ShardedState
// engine (per pinned plan) for all three query kinds at every
// (shard count, thread count) combination, including queries that prune
// to zero shards — serialization must not cost a single bit. Plus the
// per-shard HR cache: shard-aware WarmCache routing, reference-request
// hits, eviction and checksum-mismatch fallbacks, and malformed-message
// hardening.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/dbsa.h"
#include "service/query_service.h"
#include "service/shard_server.h"
#include "service/thread_pool.h"
#include "service/transport.h"
#include "test_util.h"

namespace dbsa::service {
namespace {

using dbsa::testing::MakeRectPolygon;
using dbsa::testing::MakeStarPolygon;

void ExpectRowsIdentical(const core::AggregateAnswer& got,
                         const core::AggregateAnswer& want,
                         const std::string& label) {
  ASSERT_EQ(got.rows.size(), want.rows.size()) << label;
  for (size_t r = 0; r < want.rows.size(); ++r) {
    EXPECT_EQ(got.rows[r].region, want.rows[r].region) << label << " region " << r;
    EXPECT_EQ(got.rows[r].value, want.rows[r].value) << label << " region " << r;
    EXPECT_EQ(got.rows[r].lo, want.rows[r].lo) << label << " region " << r;
    EXPECT_EQ(got.rows[r].hi, want.rows[r].hi) << label << " region " << r;
  }
}

/// A complete in-process deployment of the seam: shard servers behind a
/// loopback transport plus the router driving them.
struct Seam {
  std::shared_ptr<const core::ShardedState> sharded;
  std::vector<std::shared_ptr<ShardServer>> servers;
  std::shared_ptr<LoopbackTransport> transport;
  std::unique_ptr<ShardRouter> router;
};

Seam MakeSeam(const std::shared_ptr<const core::EngineState>& base, size_t k,
              size_t cache_budget_bytes = size_t{8} << 20) {
  Seam seam;
  seam.sharded = core::ShardedState::Build(base, {k});
  ShardServer::Options options;
  options.cell_cache_budget_bytes = cache_budget_bytes;
  std::vector<LoopbackTransport::Handler> handlers;
  for (size_t s = 0; s < seam.sharded->num_shards(); ++s) {
    const core::ShardedState::Shard& shard = seam.sharded->shard(s);
    seam.servers.push_back(
        std::make_shared<ShardServer>(shard.state, shard.global_ids, options));
    handlers.push_back([server = seam.servers.back()](const std::string& request) {
      return server->Handle(request);
    });
  }
  seam.transport = std::make_shared<LoopbackTransport>(std::move(handlers));
  seam.router = std::make_unique<ShardRouter>(seam.sharded, seam.transport);
  return seam;
}

class ShardServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::TaxiConfig taxi_config;
    taxi_config.universe = geom::Box(0, 0, 4096, 4096);
    data::PointSet points = data::GenerateTaxiPoints(20000, taxi_config);
    // Dyadic fares: SUM/AVG partials exact in double, so the merge
    // identity holds bit-for-bit (see sharded_state_test.cc).
    for (double& f : points.fare) f = std::round(f * 64.0) / 64.0;

    data::RegionConfig region_config;
    region_config.universe = taxi_config.universe;
    region_config.num_polygons = 24;
    region_config.target_avg_vertices = 24;
    region_config.multi_fraction = 0.2;
    data::RegionSet regions = data::GenerateRegions(region_config);

    base_ = core::BuildEngineState(std::move(points), std::move(regions));
  }

  std::shared_ptr<const core::EngineState> base_;
};

// The acceptance stress: loopback execution vs the in-process sharded
// engine, every query kind, K x threads, zero-surviving included.
TEST_F(ShardServerTest, LoopbackByteMatchesInProcessShardedEverywhere) {
  const geom::Polygon star1 = MakeStarPolygon({2000, 2000}, 400, 900, 16, 11);
  const geom::Polygon star2 = MakeStarPolygon({1200, 2800}, 300, 700, 12, 23);
  const geom::Polygon corner = MakeRectPolygon(100, 100, 380, 420);
  const std::vector<geom::Polygon> polys = {star1, star2, corner};
  const std::vector<double> epsilons = {4.0, 16.0};

  for (const size_t k : {size_t{1}, size_t{2}, size_t{7}, size_t{16}}) {
    Seam seam = MakeSeam(base_, k);
    for (const size_t threads : {size_t{0}, size_t{4}, size_t{8}}) {
      std::unique_ptr<ThreadPool> pool;
      core::ExecHooks hooks;
      if (threads > 0) {
        pool = std::make_unique<ThreadPool>(threads);
        hooks.parallel_for = [&pool](size_t n,
                                     const std::function<void(size_t)>& fn) {
          pool->ParallelFor(n, fn);
        };
      }
      const std::string label =
          "k=" + std::to_string(k) + " threads=" + std::to_string(threads);

      for (const double eps : epsilons) {
        ExpectRowsIdentical(
            ExecuteAggregate(*seam.router, join::AggKind::kCount, core::Attr::kNone,
                             eps, core::Mode::kPointIndex, hooks),
            core::ExecuteAggregate(*seam.sharded, join::AggKind::kCount,
                                   core::Attr::kNone, eps, core::Mode::kPointIndex,
                                   hooks),
            label + " count eps=" + std::to_string(eps));
        ExpectRowsIdentical(
            ExecuteAggregate(*seam.router, join::AggKind::kSum, core::Attr::kFare,
                             eps, core::Mode::kPointIndex, hooks),
            core::ExecuteAggregate(*seam.sharded, join::AggKind::kSum,
                                   core::Attr::kFare, eps, core::Mode::kPointIndex,
                                   hooks),
            label + " sum eps=" + std::to_string(eps));
        ExpectRowsIdentical(
            ExecuteAggregate(*seam.router, join::AggKind::kAvg, core::Attr::kFare,
                             eps, core::Mode::kPointIndex, hooks),
            core::ExecuteAggregate(*seam.sharded, join::AggKind::kAvg,
                                   core::Attr::kFare, eps, core::Mode::kPointIndex,
                                   hooks),
            label + " avg eps=" + std::to_string(eps));

        for (size_t p = 0; p < polys.size(); ++p) {
          const join::ResultRange got =
              ExecuteCountInPolygon(*seam.router, polys[p], eps, hooks);
          const join::ResultRange want =
              core::ExecuteCountInPolygon(*seam.sharded, polys[p], eps, hooks);
          EXPECT_EQ(got.estimate, want.estimate) << label << " poly " << p;
          EXPECT_EQ(got.lo, want.lo) << label << " poly " << p;
          EXPECT_EQ(got.hi, want.hi) << label << " poly " << p;
          EXPECT_EQ(ExecuteSelectInPolygon(*seam.router, polys[p], eps, hooks),
                    core::ExecuteSelectInPolygon(*seam.sharded, polys[p], eps, hooks))
              << label << " poly " << p;
        }
      }

      // Non-point-index plans delegate beneath the seam unchanged.
      ExpectRowsIdentical(
          ExecuteAggregate(*seam.router, join::AggKind::kSum, core::Attr::kFare,
                           8.0, core::Mode::kAct, hooks),
          core::ExecuteAggregate(*seam.sharded, join::AggKind::kSum,
                                 core::Attr::kFare, 8.0, core::Mode::kAct, hooks),
          label + " delegated ACT");
      ExpectRowsIdentical(
          ExecuteAggregate(*seam.router, join::AggKind::kCount, core::Attr::kNone,
                           0.0, core::Mode::kExact, hooks),
          core::ExecuteAggregate(*seam.sharded, join::AggKind::kCount,
                                 core::Attr::kNone, 0.0, core::Mode::kExact, hooks),
          label + " delegated exact");
    }
  }
}

TEST_F(ShardServerTest, ZeroSurvivingShardsAnswersZeroAcrossTheSeam) {
  // Points confined to the left half; the query polygon sits in the
  // right half: the scatter set is empty and the (empty) gather must
  // still byte-match the in-process engine's zeros.
  data::TaxiConfig config;
  config.universe = geom::Box(0, 0, 2000, 4096);
  data::PointSet points = data::GenerateTaxiPoints(5000, config);
  data::RegionConfig region_config;
  region_config.universe = geom::Box(0, 0, 4096, 4096);
  region_config.num_polygons = 8;
  data::RegionSet regions = data::GenerateRegions(region_config);
  const auto base = core::BuildEngineState(std::move(points), std::move(regions));

  Seam seam = MakeSeam(base, 4);
  const geom::Polygon far_poly = MakeRectPolygon(3000, 1000, 3800, 2000);
  const raster::HierarchicalRaster hr =
      raster::HierarchicalRaster::BuildEpsilon(far_poly, base->grid, 8.0);
  ASSERT_TRUE(seam.sharded->SurvivingShards(hr).empty());

  const join::ResultRange got = ExecuteCountInPolygon(*seam.router, far_poly, 8.0);
  const join::ResultRange want = core::ExecuteCountInPolygon(*base, far_poly, 8.0);
  EXPECT_EQ(got.estimate, want.estimate);
  EXPECT_EQ(got.lo, want.lo);
  EXPECT_EQ(got.hi, want.hi);
  EXPECT_EQ(got.estimate, 0.0);
  EXPECT_TRUE(ExecuteSelectInPolygon(*seam.router, far_poly, 8.0).empty());
  // No messages at all crossed the transport for the empty scatter set.
  EXPECT_EQ(seam.transport->stats().messages, 0u);
}

TEST_F(ShardServerTest, TransportServiceByteMatchesUnshardedEngine) {
  // End-to-end through QueryService with the seam on: 8 shard servers x
  // 8 threads, workload duplicated so the second half runs on warm
  // central + per-shard caches (reference requests).
  core::SpatialEngine engine;
  engine.SetPoints(data::PointSet(*base_->points));
  engine.SetRegions(data::RegionSet(*base_->regions));

  std::vector<Request> workload;
  const geom::Polygon star = MakeStarPolygon({2000, 2000}, 400, 900, 16, 11);
  const geom::Polygon corner = MakeRectPolygon(100, 100, 380, 420);
  for (const double eps : {4.0, 8.0}) {
    workload.push_back(Request::MakeAggregate(join::AggKind::kCount,
                                              core::Attr::kNone, eps,
                                              core::Mode::kPointIndex));
    workload.push_back(Request::MakeAggregate(join::AggKind::kSum, core::Attr::kFare,
                                              eps, core::Mode::kPointIndex));
    workload.push_back(Request::MakeCount(star, eps));
    workload.push_back(Request::MakeCount(corner, eps));
    workload.push_back(Request::MakeSelect(star, eps));
  }
  // Duplicate through an explicit copy: self-range insert invalidates the
  // source iterators when the vector reallocates (it silently corrupted
  // the duplicated half of earlier versions of this idiom).
  const std::vector<Request> first_pass = workload;
  workload.insert(workload.end(), first_pass.begin(), first_pass.end());

  ServiceOptions options;
  options.num_threads = 8;
  options.num_shards = 8;
  options.use_transport = true;
  QueryService service(engine.Snapshot(), options);
  ASSERT_NE(service.sharded(), nullptr);
  ASSERT_EQ(service.num_shard_servers(), 8u);

  for (const Request& req : workload) service.Submit(req);
  const std::vector<Response> responses = service.DrainResponses();
  ASSERT_EQ(responses.size(), workload.size());
  EXPECT_GT(service.transport_stats().messages, 0u);

  for (size_t i = 0; i < responses.size(); ++i) {
    const Request& req = workload[i];
    const Response& got = responses[i];
    ASSERT_TRUE(got.ok()) << got.error;
    switch (req.kind) {
      case Request::Kind::kAggregate: {
        const core::AggregateAnswer want =
            engine.Aggregate(req.agg, req.attr, req.epsilon, req.mode);
        ExpectRowsIdentical(got.aggregate, want, "request " + std::to_string(i));
        break;
      }
      case Request::Kind::kCountInPolygon: {
        const join::ResultRange want = engine.CountInPolygon(req.poly, req.epsilon);
        EXPECT_EQ(got.range.estimate, want.estimate) << "request " << i;
        EXPECT_EQ(got.range.lo, want.lo) << "request " << i;
        EXPECT_EQ(got.range.hi, want.hi) << "request " << i;
        break;
      }
      case Request::Kind::kSelectInPolygon:
        EXPECT_EQ(got.ids, engine.SelectInPolygon(req.poly, req.epsilon))
            << "request " << i;
        break;
    }
  }

  // The duplicated half was served by reference: at least one shard
  // answered from its per-shard cache, and the per-shard caches only
  // hold keys (no stale bytes growth beyond the budget).
  size_t hits = 0;
  for (size_t s = 0; s < service.num_shard_servers(); ++s) {
    hits += service.shard_server(s)->stats().cache_hits;
  }
  EXPECT_GT(hits, 0u);
}

TEST_F(ShardServerTest, ReferenceRequestsShipFewerBytesOnRepeat) {
  Seam seam = MakeSeam(base_, 8);
  const geom::Polygon star = MakeStarPolygon({2000, 2000}, 400, 900, 16, 11);
  const ObjectKey object = PolygonFingerprint(star);
  const raster::HierarchicalRaster hr =
      raster::HierarchicalRaster::BuildEpsilon(star, base_->grid, 4.0);
  const int level = base_->grid.LevelForEpsilon(4.0);

  const join::CellAggregate cold =
      seam.router->ScatterGather(hr, &object, level,
                                 query::ErrorBound::Absolute(4.0), {}, nullptr);
  const LoopbackTransport::Stats after_cold = seam.transport->stats();
  const join::CellAggregate warm =
      seam.router->ScatterGather(hr, &object, level,
                                 query::ErrorBound::Absolute(4.0), {}, nullptr);
  const LoopbackTransport::Stats after_warm = seam.transport->stats();

  // Identical partials either way (the cached slice is the pruned slice).
  EXPECT_EQ(warm.count, cold.count);
  EXPECT_EQ(warm.sum, cold.sum);
  EXPECT_EQ(warm.boundary_count, cold.boundary_count);
  EXPECT_EQ(warm.boundary_sum, cold.boundary_sum);
  // The repeat pass referenced the per-shard caches: same message count,
  // far fewer request bytes (no cell payloads).
  const uint64_t cold_bytes = after_cold.request_bytes;
  const uint64_t warm_bytes = after_warm.request_bytes - after_cold.request_bytes;
  EXPECT_EQ(after_warm.messages, 2 * after_cold.messages);
  EXPECT_LT(warm_bytes, cold_bytes / 4);
  size_t hits = 0;
  for (const auto& server : seam.servers) hits += server->stats().cache_hits;
  EXPECT_EQ(hits, after_cold.messages);  // Every repeat probe was a hit.
}

TEST_F(ShardServerTest, EvictedSliceFallsBackToInlineShipping) {
  // Budget 0: servers never retain a slice, so every reference request
  // answers kNotCached and the router re-ships inline — results must be
  // unaffected.
  Seam seam = MakeSeam(base_, 8, /*cache_budget_bytes=*/0);
  const geom::Polygon star = MakeStarPolygon({2000, 2000}, 400, 900, 16, 11);
  const ObjectKey object = PolygonFingerprint(star);
  const raster::HierarchicalRaster hr =
      raster::HierarchicalRaster::BuildEpsilon(star, base_->grid, 4.0);
  const int level = base_->grid.LevelForEpsilon(4.0);

  const join::CellAggregate first =
      seam.router->ScatterGather(hr, &object, level,
                                 query::ErrorBound::Absolute(4.0), {}, nullptr);
  const join::CellAggregate second =
      seam.router->ScatterGather(hr, &object, level,
                                 query::ErrorBound::Absolute(4.0), {}, nullptr);
  EXPECT_EQ(second.count, first.count);
  EXPECT_EQ(second.sum, first.sum);
  size_t misses = 0, entries = 0;
  for (const auto& server : seam.servers) {
    misses += server->stats().cache_misses;
    entries += server->stats().cache_entries;
  }
  EXPECT_GT(misses, 0u);   // The second pass hit the kNotCached path.
  EXPECT_EQ(entries, 0u);  // Nothing is ever retained at budget 0.
}

TEST_F(ShardServerTest, ChecksumMismatchInvalidatesCachedSlice) {
  Seam seam = MakeSeam(base_, 1);
  ASSERT_EQ(seam.servers.size(), 1u);
  ShardServer& server = *seam.servers[0];

  const geom::Polygon star = MakeStarPolygon({2000, 2000}, 400, 900, 16, 11);
  const raster::HierarchicalRaster hr =
      raster::HierarchicalRaster::BuildEpsilon(star, base_->grid, 8.0);
  ScatterRequest warm;
  warm.kind = ScatterRequest::Kind::kWarm;
  warm.level = 7;
  warm.checksum = ApproxChecksum(hr.cells().data(), hr.cells().size());
  warm.has_object = true;
  warm.object = ObjectKey(0x8000000000000000ull, 99);
  warm.has_cells = true;
  warm.cells = hr.cells();
  GatherPartial partial;
  ASSERT_TRUE(GatherPartial::Decode(server.Handle(warm.Encode()), &partial).ok());
  ASSERT_EQ(partial.status, GatherPartial::Disposition::kOk);
  EXPECT_EQ(server.stats().cache_entries, 1u);

  // A reference with the right checksum hits...
  ScatterRequest reference;
  reference.kind = ScatterRequest::Kind::kAggregateCells;
  reference.level = warm.level;
  reference.checksum = warm.checksum;
  reference.has_object = true;
  reference.object = warm.object;
  ASSERT_TRUE(
      GatherPartial::Decode(server.Handle(reference.Encode()), &partial).ok());
  EXPECT_EQ(partial.status, GatherPartial::Disposition::kOk);

  // ...but a different checksum under the same key (a stale or colliding
  // entry) answers kNotCached and drops the entry.
  reference.checksum ^= 1;
  ASSERT_TRUE(
      GatherPartial::Decode(server.Handle(reference.Encode()), &partial).ok());
  EXPECT_EQ(partial.status, GatherPartial::Disposition::kNotCached);
  EXPECT_EQ(server.stats().cache_entries, 0u);
}

TEST_F(ShardServerTest, MalformedRequestYieldsErrorPartialNotUb) {
  Seam seam = MakeSeam(base_, 1);
  ShardServer& server = *seam.servers[0];
  GatherPartial partial;
  // Unframed garbage — the decoder's typed code survives the round trip.
  ASSERT_TRUE(GatherPartial::Decode(server.Handle("garbage"), &partial).ok());
  EXPECT_EQ(partial.status, GatherPartial::Disposition::kError);
  EXPECT_EQ(partial.code, StatusCode::kInvalidArgument);
  // A version-1 frame is rejected as kUnimplemented, never decoded.
  std::string v1_frame = ScatterRequest().Encode();
  v1_frame[6] = 1;  // Version byte.
  ASSERT_TRUE(GatherPartial::Decode(server.Handle(v1_frame), &partial).ok());
  EXPECT_EQ(partial.status, GatherPartial::Disposition::kError);
  EXPECT_EQ(partial.code, StatusCode::kUnimplemented);
  // A request that carries neither cells nor an object reference.
  ScatterRequest empty;
  empty.kind = ScatterRequest::Kind::kAggregateCells;
  ASSERT_TRUE(GatherPartial::Decode(server.Handle(empty.Encode()), &partial).ok());
  EXPECT_EQ(partial.status, GatherPartial::Disposition::kError);
  // A warm request without cells.
  ScatterRequest bad_warm;
  bad_warm.kind = ScatterRequest::Kind::kWarm;
  bad_warm.has_object = true;
  bad_warm.object = ObjectKey(3);
  ASSERT_TRUE(
      GatherPartial::Decode(server.Handle(bad_warm.Encode()), &partial).ok());
  EXPECT_EQ(partial.status, GatherPartial::Disposition::kError);
  EXPECT_EQ(server.stats().parse_errors, 2u);  // Garbage + v1 frame.
  EXPECT_EQ(server.stats().requests, 4u);
}

TEST_F(ShardServerTest, SlowHandleEmitsTraceJoinedLine) {
  // Server-side slow-query diagnostics: a Handle() call over the
  // threshold emits one SLOW_SHARD line carrying the request's WIRE
  // trace id — the join key between a client's SLOW_QUERY record and the
  // shard that was slow. Zero trace fields render as "untraced".
  Seam seam = MakeSeam(base_, 1);
  const core::ShardedState::Shard& slice = seam.sharded->shard(0);
  ShardServer::Options options;
  options.shard_index = 3;
  options.slow_handle_ms = 1e-6;  // Everything is "slow".
  std::vector<std::string> lines;
  options.slow_handle_sink = [&lines](const std::string& line) {
    lines.push_back(line);
  };
  ShardServer server(slice.state, slice.global_ids, options);

  const geom::Polygon star = MakeStarPolygon({2000, 2000}, 400, 900, 16, 11);
  const raster::HierarchicalRaster hr =
      raster::HierarchicalRaster::BuildEpsilon(star, base_->grid, 8.0);
  ScatterRequest request;
  request.kind = ScatterRequest::Kind::kAggregateCells;
  request.level = 7;
  request.trace_hi = 0x00c0ffee00000001ull;
  request.trace_lo = 0xdeadbeef00000002ull;
  request.span_id = 0x42;
  request.has_cells = true;
  request.cells = hr.cells();
  GatherPartial partial;
  ASSERT_TRUE(
      GatherPartial::Decode(server.Handle(request.Encode()), &partial).ok());
  ASSERT_EQ(partial.status, GatherPartial::Disposition::kOk);

  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("SLOW_SHARD"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("trace=00c0ffee00000001deadbeef00000002"),
            std::string::npos)
      << lines[0];
  EXPECT_NE(lines[0].find("shard=3"), std::string::npos) << lines[0];

  // Untraced requests log too (slowness is slowness), marked as such.
  request.trace_hi = request.trace_lo = request.span_id = 0;
  ASSERT_TRUE(
      GatherPartial::Decode(server.Handle(request.Encode()), &partial).ok());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[1].find("trace=untraced"), std::string::npos) << lines[1];

  // The server's handle-latency histogram recorded both calls under its
  // shard label.
  EXPECT_EQ(server.registry()
                ->GetHistogram("dbsa_shard_handle_ms{shard=\"3\"}")
                ->Snapshot()
                .count,
            2u);
}

// ---- shard-aware WarmCache --------------------------------------------

TEST_F(ShardServerTest, WarmCacheWarmsOnlyRoutedRegionsPerShard) {
  for (const size_t k : {size_t{1}, size_t{2}, size_t{7}}) {
    ServiceOptions options;
    options.num_threads = 4;
    options.num_shards = k;
    options.use_transport = true;
    QueryService service(std::shared_ptr<const core::EngineState>(base_), options);
    ASSERT_EQ(service.num_shard_servers(), k);

    const double eps = 8.0;
    service.WarmCache(eps);
    const int level = base_->grid.LevelForEpsilon(eps);
    const std::vector<geom::Polygon>& polys = base_->regions->polys;

    for (size_t s = 0; s < k; ++s) {
      // Expected: exactly the regions whose HR cells route to shard s.
      std::vector<uint64_t> expected;
      for (size_t j = 0; j < polys.size(); ++j) {
        const raster::HierarchicalRaster hr =
            raster::HierarchicalRaster::BuildLevel(polys[j], base_->grid, level);
        if (service.sharded()->ShardIntersects(s, hr.cells().data(),
                                               hr.cells().size())) {
          expected.push_back(j);
        }
      }
      std::vector<uint64_t> cached;
      for (const auto& [object, cached_level] : service.shard_server(s)->CachedKeys()) {
        EXPECT_EQ(cached_level, level) << "k=" << k << " shard " << s;
        EXPECT_EQ(object.hi, 0u) << "k=" << k << " shard " << s
                                 << ": region keys only";
        cached.push_back(object.lo);
      }
      std::sort(cached.begin(), cached.end());
      std::sort(expected.begin(), expected.end());
      EXPECT_EQ(cached, expected) << "k=" << k << " shard " << s;
      // The warm routed at least one region somewhere but no shard holds
      // the full region table unless everything routes to it.
      EXPECT_LE(cached.size(), polys.size());
    }
  }
}

TEST_F(ShardServerTest, WarmAndColdResultsByteIdentical) {
  std::vector<Request> workload;
  const geom::Polygon star = MakeStarPolygon({2000, 2000}, 400, 900, 16, 11);
  for (const double eps : {4.0, 8.0}) {
    workload.push_back(Request::MakeAggregate(join::AggKind::kCount,
                                              core::Attr::kNone, eps,
                                              core::Mode::kPointIndex));
    workload.push_back(Request::MakeAggregate(join::AggKind::kSum, core::Attr::kFare,
                                              eps, core::Mode::kPointIndex));
    workload.push_back(Request::MakeCount(star, eps));
    workload.push_back(Request::MakeSelect(star, eps));
  }

  for (const size_t k : {size_t{1}, size_t{2}, size_t{7}}) {
    for (const size_t threads : {size_t{1}, size_t{8}}) {
      ServiceOptions options;
      options.num_threads = threads;
      options.num_shards = k;
      options.use_transport = true;

      QueryService cold(std::shared_ptr<const core::EngineState>(base_), options);
      QueryService warm(std::shared_ptr<const core::EngineState>(base_), options);
      warm.WarmCache(4.0);
      warm.WarmCache(8.0);

      for (const Request& req : workload) {
        cold.Submit(req);
        warm.Submit(req);
      }
      const std::vector<Response> cold_responses = cold.DrainResponses();
      const std::vector<Response> warm_responses = warm.DrainResponses();
      ASSERT_EQ(cold_responses.size(), workload.size());
      ASSERT_EQ(warm_responses.size(), workload.size());
      const std::string label =
          "k=" + std::to_string(k) + " threads=" + std::to_string(threads);
      for (size_t i = 0; i < workload.size(); ++i) {
        const Response& c = cold_responses[i];
        const Response& w = warm_responses[i];
        ASSERT_TRUE(c.ok() && w.ok()) << label << " " << c.error << w.error;
        ExpectRowsIdentical(w.aggregate, c.aggregate,
                            label + " request " + std::to_string(i));
        EXPECT_EQ(w.range.estimate, c.range.estimate) << label << " request " << i;
        EXPECT_EQ(w.range.lo, c.range.lo) << label << " request " << i;
        EXPECT_EQ(w.range.hi, c.range.hi) << label << " request " << i;
        EXPECT_EQ(w.ids, c.ids) << label << " request " << i;
      }
      // The warm service's aggregates found every region HR in the
      // central cache and (for point-index plans) the routed slices in
      // the per-shard caches.
      size_t warm_hits = 0;
      for (size_t s = 0; s < warm.num_shard_servers(); ++s) {
        warm_hits += warm.shard_server(s)->stats().cache_hits;
      }
      EXPECT_GT(warm_hits, 0u) << label;
    }
  }
}

}  // namespace
}  // namespace dbsa::service
