// Tests for the optimization layer: selectivity estimation accuracy and
// cost-based plan selection behaviour.

#include <gtest/gtest.h>

#include "query/optimizer.h"
#include "query/selectivity.h"
#include "test_util.h"

namespace dbsa::query {
namespace {

TEST(SelectivityTest, UniformDataBoxEstimates) {
  const geom::Box universe(0, 0, 1000, 1000);
  const auto pts = dbsa::testing::RandomPoints(universe, 50000, 1);
  const SelectivityHistogram hist(pts.data(), pts.size(), universe, 64);
  EXPECT_EQ(hist.total(), 50000u);

  for (const double frac : {0.5, 0.2, 0.05}) {
    const double side = 1000.0 * frac;
    const geom::Box q(100, 100, 100 + side, 100 + side);
    const double want = 50000.0 * frac * frac;
    const double got = hist.EstimateBox(q);
    EXPECT_NEAR(got, want, want * 0.15 + 50) << "frac " << frac;
  }
}

TEST(SelectivityTest, FractionalCellCoverage) {
  const geom::Box universe(0, 0, 100, 100);
  const auto pts = dbsa::testing::RandomPoints(universe, 10000, 2);
  const SelectivityHistogram hist(pts.data(), pts.size(), universe, 10);
  // A box covering exactly half a cell row.
  const double est = hist.EstimateBox(geom::Box(0, 0, 100, 5));
  EXPECT_NEAR(est, 500.0, 120.0);
}

TEST(SelectivityTest, PolygonEstimateTracksArea) {
  const geom::Box universe(0, 0, 1000, 1000);
  const auto pts = dbsa::testing::RandomPoints(universe, 40000, 3);
  const SelectivityHistogram hist(pts.data(), pts.size(), universe, 64);
  const geom::Polygon star = dbsa::testing::MakeStarPolygon({500, 500}, 150, 250, 20, 4);
  const double want = 40000.0 * star.Area() / 1e6;
  const double got = hist.EstimatePolygon(star);
  EXPECT_NEAR(got, want, want * 0.3 + 100);
}

TEST(SelectivityTest, DisjointQueryIsZero) {
  const geom::Box universe(0, 0, 100, 100);
  const auto pts = dbsa::testing::RandomPoints(universe, 1000, 5);
  const SelectivityHistogram hist(pts.data(), pts.size(), universe, 16);
  EXPECT_EQ(hist.EstimateBox(geom::Box(200, 200, 300, 300)), 0.0);
}

QueryProfile BaseProfile() {
  QueryProfile p;
  p.num_points = 1000000;
  p.num_polygons = 300;
  p.avg_vertices = 30;
  p.epsilon = 4.0;
  p.universe_extent = 65536.0;
  p.total_perimeter = 300 * 4 * 4000.0;
  p.total_polygon_area = 65536.0 * 65536.0;
  p.repetitions = 1;
  return p;
}

TEST(OptimizerTest, ExactRequiredWhenEpsilonZero) {
  QueryProfile p = BaseProfile();
  p.epsilon = 0.0;
  const PlanChoice choice = ChoosePlan(p);
  EXPECT_EQ(choice.kind, PlanKind::kExactRStar);
  EXPECT_NE(choice.explain.find("exact"), std::string::npos);
}

TEST(OptimizerTest, RepetitionFavorsIndexedPlans) {
  // With an amortized point index, complex query polygons and many
  // repetitions, the cell-range searches beat per-point PIP refinement.
  QueryProfile p = BaseProfile();
  p.num_points = 10000000;
  p.num_polygons = 100;
  p.avg_vertices = 663;                      // Boroughs-like complexity.
  p.total_perimeter = 100 * 4 * 1000.0;      // Compact regions.
  p.point_index_available = true;
  p.repetitions = 100;
  const PlanCosts costs = EstimateCosts(p);
  EXPECT_LT(costs.point_index, costs.exact);
  const PlanChoice choice = ChoosePlan(p);
  EXPECT_NE(choice.kind, PlanKind::kExactRStar);
}

TEST(OptimizerTest, ShardsDividePointIndexProbeCost) {
  QueryProfile p = BaseProfile();
  p.point_index_available = true;
  p.hr_cache_available = true;  // Isolate the probe term.
  const double unsharded = EstimateCosts(p).point_index;
  p.parallel_shards = 8.0;
  const double sharded = EstimateCosts(p).point_index;
  EXPECT_LT(sharded, unsharded / 4.0);  // ~8x with the smaller per-shard index.
  // Other plans are unaffected by sharding.
  QueryProfile q = BaseProfile();
  QueryProfile q8 = BaseProfile();
  q8.parallel_shards = 8.0;
  EXPECT_EQ(EstimateCosts(q).act, EstimateCosts(q8).act);
  EXPECT_EQ(EstimateCosts(q).brj, EstimateCosts(q8).brj);
  EXPECT_EQ(EstimateCosts(q).exact, EstimateCosts(q8).exact);
  // The sharded probe discount can flip the plan choice.
  const PlanChoice choice = ChoosePlan(q8);
  EXPECT_NE(choice.explain.find("shards=8"), std::string::npos);
}

TEST(OptimizerTest, ComplexPolygonsPenalizeExact) {
  QueryProfile simple = BaseProfile();
  simple.avg_vertices = 10;
  QueryProfile complex_polys = BaseProfile();
  complex_polys.avg_vertices = 700;
  EXPECT_GT(EstimateCosts(complex_polys).exact, EstimateCosts(simple).exact * 5);
}

TEST(OptimizerTest, TightEpsilonRaisesRasterCosts) {
  QueryProfile loose = BaseProfile();
  loose.epsilon = 10.0;
  QueryProfile tight = BaseProfile();
  tight.epsilon = 0.5;
  const PlanCosts lc = EstimateCosts(loose);
  const PlanCosts tc = EstimateCosts(tight);
  EXPECT_GT(tc.brj, lc.brj);
  EXPECT_GT(tc.act, lc.act);
  // Exact cost is epsilon-independent.
  EXPECT_DOUBLE_EQ(tc.exact, lc.exact);
}

TEST(OptimizerTest, ExplainMentionsAllCandidates) {
  const PlanChoice choice = ChoosePlan(BaseProfile());
  EXPECT_NE(choice.explain.find("ACT"), std::string::npos);
  EXPECT_NE(choice.explain.find("BRJ"), std::string::npos);
  EXPECT_NE(choice.explain.find("EXACT"), std::string::npos);
  EXPECT_GT(choice.est_cost, 0.0);
}

TEST(OptimizerTest, PlanKindNamesAreStable) {
  EXPECT_STREQ(PlanKindName(PlanKind::kActJoin), "ACT-JOIN");
  EXPECT_STREQ(PlanKindName(PlanKind::kCanvasBrj), "CANVAS-BRJ");
}

}  // namespace
}  // namespace dbsa::query
