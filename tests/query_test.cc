// Tests for the optimization layer: selectivity estimation accuracy and
// cost-based plan selection behaviour.

#include <gtest/gtest.h>

#include <cmath>

#include "query/optimizer.h"
#include "query/selectivity.h"
#include "test_util.h"

namespace dbsa::query {
namespace {

TEST(SelectivityTest, UniformDataBoxEstimates) {
  const geom::Box universe(0, 0, 1000, 1000);
  const auto pts = dbsa::testing::RandomPoints(universe, 50000, 1);
  const SelectivityHistogram hist(pts.data(), pts.size(), universe, 64);
  EXPECT_EQ(hist.total(), 50000u);

  for (const double frac : {0.5, 0.2, 0.05}) {
    const double side = 1000.0 * frac;
    const geom::Box q(100, 100, 100 + side, 100 + side);
    const double want = 50000.0 * frac * frac;
    const double got = hist.EstimateBox(q);
    EXPECT_NEAR(got, want, want * 0.15 + 50) << "frac " << frac;
  }
}

TEST(SelectivityTest, FractionalCellCoverage) {
  const geom::Box universe(0, 0, 100, 100);
  const auto pts = dbsa::testing::RandomPoints(universe, 10000, 2);
  const SelectivityHistogram hist(pts.data(), pts.size(), universe, 10);
  // A box covering exactly half a cell row.
  const double est = hist.EstimateBox(geom::Box(0, 0, 100, 5));
  EXPECT_NEAR(est, 500.0, 120.0);
}

TEST(SelectivityTest, PolygonEstimateTracksArea) {
  const geom::Box universe(0, 0, 1000, 1000);
  const auto pts = dbsa::testing::RandomPoints(universe, 40000, 3);
  const SelectivityHistogram hist(pts.data(), pts.size(), universe, 64);
  const geom::Polygon star = dbsa::testing::MakeStarPolygon({500, 500}, 150, 250, 20, 4);
  const double want = 40000.0 * star.Area() / 1e6;
  const double got = hist.EstimatePolygon(star);
  EXPECT_NEAR(got, want, want * 0.3 + 100);
}

TEST(SelectivityTest, DisjointQueryIsZero) {
  const geom::Box universe(0, 0, 100, 100);
  const auto pts = dbsa::testing::RandomPoints(universe, 1000, 5);
  const SelectivityHistogram hist(pts.data(), pts.size(), universe, 16);
  EXPECT_EQ(hist.EstimateBox(geom::Box(200, 200, 300, 300)), 0.0);
}

TEST(SelectivityTest, CollinearPointsDegenerateUniverse) {
  // Regression: a zero-width universe (all points on a vertical line)
  // used to produce 0-sized cells, NaN indexes (UB on the uint32_t cast)
  // and NaN estimates from 0/0 coverage fractions.
  std::vector<geom::Point> pts;
  for (int i = 0; i < 100; ++i) pts.push_back({5.0, static_cast<double>(i)});
  geom::Box universe;
  for (const geom::Point& p : pts) universe.Extend(p);
  ASSERT_EQ(universe.Width(), 0.0);

  const SelectivityHistogram hist(pts.data(), pts.size(), universe, 16);
  EXPECT_EQ(hist.total(), 100u);

  // Covering box: everything. Disjoint box: nothing. Half the y-range:
  // about half, and always finite.
  const double all = hist.EstimateBox(geom::Box(0, -1, 10, 100));
  EXPECT_TRUE(std::isfinite(all));
  EXPECT_NEAR(all, 100.0, 1e-9);
  EXPECT_EQ(hist.EstimateBox(geom::Box(6, 0, 10, 99)), 0.0);
  const double half = hist.EstimateBox(geom::Box(0, 0, 10, 49.5));
  EXPECT_TRUE(std::isfinite(half));
  EXPECT_NEAR(half, 50.0, 8.0);

  const geom::Polygon poly = dbsa::testing::MakeRectPolygon(0, 10, 10, 20);
  EXPECT_TRUE(std::isfinite(hist.EstimatePolygon(poly)));
}

TEST(SelectivityTest, HorizontalLineAndSinglePointUniverses) {
  // Horizontal line: zero height.
  std::vector<geom::Point> pts;
  for (int i = 0; i < 64; ++i) pts.push_back({static_cast<double>(i), -3.0});
  geom::Box universe;
  for (const geom::Point& p : pts) universe.Extend(p);
  ASSERT_EQ(universe.Height(), 0.0);
  const SelectivityHistogram hist(pts.data(), pts.size(), universe, 8);
  const double all = hist.EstimateBox(geom::Box(-1, -4, 64, 0));
  EXPECT_TRUE(std::isfinite(all));
  EXPECT_NEAR(all, 64.0, 1e-9);
  EXPECT_EQ(hist.EstimateBox(geom::Box(0, 0, 63, 10)), 0.0);

  // Single point: both axes degenerate.
  const geom::Point p{7.0, 11.0};
  const geom::Box point_universe(p, p);
  const SelectivityHistogram point_hist(&p, 1, point_universe, 4);
  const double got = point_hist.EstimateBox(geom::Box(0, 0, 20, 20));
  EXPECT_TRUE(std::isfinite(got));
  EXPECT_NEAR(got, 1.0, 1e-9);
  EXPECT_EQ(point_hist.EstimateBox(geom::Box(8, 12, 20, 20)), 0.0);
}

QueryProfile BaseProfile() {
  QueryProfile p;
  p.num_points = 1000000;
  p.num_polygons = 300;
  p.avg_vertices = 30;
  p.epsilon = 4.0;
  p.universe_extent = 65536.0;
  p.total_perimeter = 300 * 4 * 4000.0;
  p.total_polygon_area = 65536.0 * 65536.0;
  p.repetitions = 1;
  return p;
}

TEST(OptimizerTest, ExactRequiredWhenEpsilonZero) {
  QueryProfile p = BaseProfile();
  p.epsilon = 0.0;
  const PlanChoice choice = ChoosePlan(p);
  EXPECT_EQ(choice.kind, PlanKind::kExactRStar);
  EXPECT_NE(choice.explain.find("exact"), std::string::npos);
}

TEST(OptimizerTest, RepetitionFavorsIndexedPlans) {
  // With an amortized point index, complex query polygons and many
  // repetitions, the cell-range searches beat per-point PIP refinement.
  QueryProfile p = BaseProfile();
  p.num_points = 10000000;
  p.num_polygons = 100;
  p.avg_vertices = 663;                      // Boroughs-like complexity.
  p.total_perimeter = 100 * 4 * 1000.0;      // Compact regions.
  p.point_index_available = true;
  p.repetitions = 100;
  const PlanCosts costs = EstimateCosts(p);
  EXPECT_LT(costs.point_index, costs.exact);
  const PlanChoice choice = ChoosePlan(p);
  EXPECT_NE(choice.kind, PlanKind::kExactRStar);
}

TEST(OptimizerTest, ShardsDividePointIndexProbeCost) {
  QueryProfile p = BaseProfile();
  p.point_index_available = true;
  p.hr_cache_available = true;  // Isolate the probe term.
  const double unsharded = EstimateCosts(p).point_index;
  p.parallel_shards = 8.0;
  const double sharded = EstimateCosts(p).point_index;
  EXPECT_LT(sharded, unsharded / 4.0);  // ~8x with the smaller per-shard index.
  // Other plans are unaffected by sharding.
  QueryProfile q = BaseProfile();
  QueryProfile q8 = BaseProfile();
  q8.parallel_shards = 8.0;
  EXPECT_EQ(EstimateCosts(q).act, EstimateCosts(q8).act);
  EXPECT_EQ(EstimateCosts(q).brj, EstimateCosts(q8).brj);
  EXPECT_EQ(EstimateCosts(q).exact, EstimateCosts(q8).exact);
  // The sharded probe discount can flip the plan choice.
  const PlanChoice choice = ChoosePlan(q8);
  EXPECT_NE(choice.explain.find("shards=8"), std::string::npos);
}

TEST(OptimizerTest, TransportOverheadChargesPerShardMessage) {
  QueryProfile p = BaseProfile();
  p.point_index_available = true;
  p.hr_cache_available = true;
  p.parallel_shards = 8.0;
  const double in_process = EstimateCosts(p).point_index;
  p.transport_overhead = 64.0;  // Loopback-ish serialization cost.
  const double loopback = EstimateCosts(p).point_index;
  EXPECT_NEAR(loopback, in_process + 8.0 * 64.0, 1e-6);
  // A network-ish overhead scales the penalty with the fan-out: the
  // discount is no longer free, and more shards cost more messages.
  p.transport_overhead = 1e6;
  const double rpc8 = EstimateCosts(p).point_index;
  p.parallel_shards = 16.0;
  const double rpc16 = EstimateCosts(p).point_index;
  EXPECT_GT(rpc8, in_process);
  EXPECT_GT(rpc16, rpc8);
  // Other plans never pay the transport term.
  QueryProfile q = BaseProfile();
  QueryProfile qt = BaseProfile();
  qt.transport_overhead = 1e6;
  EXPECT_EQ(EstimateCosts(q).act, EstimateCosts(qt).act);
  EXPECT_EQ(EstimateCosts(q).brj, EstimateCosts(qt).brj);
  EXPECT_EQ(EstimateCosts(q).exact, EstimateCosts(qt).exact);
}

TEST(OptimizerTest, ComplexPolygonsPenalizeExact) {
  QueryProfile simple = BaseProfile();
  simple.avg_vertices = 10;
  QueryProfile complex_polys = BaseProfile();
  complex_polys.avg_vertices = 700;
  EXPECT_GT(EstimateCosts(complex_polys).exact, EstimateCosts(simple).exact * 5);
}

TEST(OptimizerTest, TightEpsilonRaisesRasterCosts) {
  QueryProfile loose = BaseProfile();
  loose.epsilon = 10.0;
  QueryProfile tight = BaseProfile();
  tight.epsilon = 0.5;
  const PlanCosts lc = EstimateCosts(loose);
  const PlanCosts tc = EstimateCosts(tight);
  EXPECT_GT(tc.brj, lc.brj);
  EXPECT_GT(tc.act, lc.act);
  // Exact cost is epsilon-independent.
  EXPECT_DOUBLE_EQ(tc.exact, lc.exact);
}

TEST(OptimizerTest, ExplainMentionsAllCandidates) {
  const PlanChoice choice = ChoosePlan(BaseProfile());
  EXPECT_NE(choice.explain.find("ACT"), std::string::npos);
  EXPECT_NE(choice.explain.find("BRJ"), std::string::npos);
  EXPECT_NE(choice.explain.find("EXACT"), std::string::npos);
  EXPECT_GT(choice.est_cost, 0.0);
}

TEST(OptimizerTest, PlanKindNamesAreStable) {
  EXPECT_STREQ(PlanKindName(PlanKind::kActJoin), "ACT-JOIN");
  EXPECT_STREQ(PlanKindName(PlanKind::kCanvasBrj), "CANVAS-BRJ");
}

}  // namespace
}  // namespace dbsa::query
