// Tests for the WKT reader/writer (Status-based error handling).

#include <gtest/gtest.h>

#include "geom/wkt.h"

namespace dbsa::geom {
namespace {

TEST(WktTest, ParsePoint) {
  const auto p = ParseWktPoint("POINT (3.5 -2)");
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p->x, 3.5);
  EXPECT_DOUBLE_EQ(p->y, -2.0);
}

TEST(WktTest, ParsePointErrors) {
  EXPECT_FALSE(ParseWktPoint("POINT 3 4").ok());
  EXPECT_FALSE(ParseWktPoint("LINESTRING (0 0, 1 1)").ok());
  EXPECT_FALSE(ParseWktPoint("POINT (1)").ok());
  EXPECT_FALSE(ParseWktPoint("POINT (1 2) extra").ok());
  EXPECT_EQ(ParseWktPoint("POINT (x y)").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(WktTest, ParsePolygon) {
  const auto poly = ParseWktPolygon("POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0))");
  ASSERT_TRUE(poly.ok());
  EXPECT_EQ(poly->outer().size(), 4u);  // Closing duplicate dropped.
  EXPECT_DOUBLE_EQ(poly->Area(), 16.0);
}

TEST(WktTest, ParsePolygonWithHole) {
  const auto poly = ParseWktPolygon(
      "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 3 1, 3 3, 1 3, 1 1))");
  ASSERT_TRUE(poly.ok());
  EXPECT_EQ(poly->holes().size(), 1u);
  EXPECT_DOUBLE_EQ(poly->Area(), 12.0);
}

TEST(WktTest, ParsePolygonErrors) {
  EXPECT_FALSE(ParseWktPolygon("POLYGON ((0 0, 1 1))").ok());  // Too few.
  EXPECT_FALSE(ParseWktPolygon("POLYGON (0 0, 1 1, 2 2)").ok());
  EXPECT_FALSE(ParseWktPolygon("POLYGON ((0 0, 1 0, 1 1,").ok());
}

TEST(WktTest, ParseMultiPolygon) {
  const auto mp = ParseWktMultiPolygon(
      "MULTIPOLYGON (((0 0, 1 0, 1 1, 0 1, 0 0)), ((5 5, 6 5, 6 6, 5 6, 5 5)))");
  ASSERT_TRUE(mp.ok());
  EXPECT_EQ(mp->parts().size(), 2u);
  EXPECT_DOUBLE_EQ(mp->Area(), 2.0);
}

TEST(WktTest, MultiPolygonAcceptsSinglePolygon) {
  const auto mp = ParseWktMultiPolygon("POLYGON ((0 0, 1 0, 1 1, 0 1, 0 0))");
  ASSERT_TRUE(mp.ok());
  EXPECT_EQ(mp->parts().size(), 1u);
}

TEST(WktTest, RoundTripPolygon) {
  const std::string wkt = "POLYGON ((0 0, 4 0, 4 4, 0 4, 0 0), (1 1, 3 1, 3 3, 1 3, 1 1))";
  const auto poly = ParseWktPolygon(wkt);
  ASSERT_TRUE(poly.ok());
  const auto again = ParseWktPolygon(ToWkt(*poly));
  ASSERT_TRUE(again.ok());
  EXPECT_DOUBLE_EQ(again->Area(), poly->Area());
  EXPECT_EQ(again->NumVertices(), poly->NumVertices());
}

TEST(WktTest, RoundTripPoint) {
  const auto p = ParseWktPoint(ToWkt(geom::Point{1.25, -7.5}));
  ASSERT_TRUE(p.ok());
  EXPECT_DOUBLE_EQ(p->x, 1.25);
  EXPECT_DOUBLE_EQ(p->y, -7.5);
}

TEST(WktTest, CaseInsensitiveKeyword) {
  EXPECT_TRUE(ParseWktPolygon("polygon ((0 0, 1 0, 1 1, 0 1, 0 0))").ok());
  EXPECT_TRUE(ParseWktPoint("point (1 2)").ok());
}

}  // namespace
}  // namespace dbsa::geom
