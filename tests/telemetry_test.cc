// Tests for src/telemetry/: the lock-free metric primitives (counters,
// gauges, latency histograms and their striped-cell concurrency story —
// the hammer test runs under TSan in CI), the registry's Prometheus text
// exposition, the histogram quantile view shared with dbsa::RunningStats,
// and the per-query tracing types (TraceContext, QueryTrace, SpanTimer,
// the slow-query line).

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/histogram.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/stats.h"

namespace dbsa::telemetry {
namespace {

TEST(HistogramDataTest, BucketBoundsAreLog2Spaced) {
  // UpperBound(0) = 1 µs, doubling per bucket.
  EXPECT_DOUBLE_EQ(HistogramData::UpperBound(0), 0.001);
  EXPECT_DOUBLE_EQ(HistogramData::UpperBound(1), 0.002);
  EXPECT_DOUBLE_EQ(HistogramData::UpperBound(10), 1.024);
  // Values at or below the smallest bound land in bucket 0; NaN and
  // negatives clamp there too (telemetry never throws).
  EXPECT_EQ(HistogramData::BucketIndex(0.0), 0u);
  EXPECT_EQ(HistogramData::BucketIndex(-5.0), 0u);
  EXPECT_EQ(HistogramData::BucketIndex(std::nan("")), 0u);
  EXPECT_EQ(HistogramData::BucketIndex(0.001), 0u);
  EXPECT_EQ(HistogramData::BucketIndex(0.0015), 1u);
  // Beyond the largest bound: the overflow bucket.
  EXPECT_EQ(HistogramData::BucketIndex(1e12),
            static_cast<size_t>(HistogramData::kNumBounds));
}

TEST(HistogramDataTest, RecordMergeAndQuantile) {
  HistogramData h;
  EXPECT_EQ(h.Quantile(50), 0.0);  // Empty histogram.
  for (int i = 0; i < 100; ++i) h.Record(1.0);  // Bucket (0.512, 1.024].
  EXPECT_EQ(h.count, 100u);
  EXPECT_DOUBLE_EQ(h.sum_ms, 100.0);
  // All mass in one bucket: any quantile interpolates inside it.
  EXPECT_GT(h.Quantile(50), 0.512);
  EXPECT_LE(h.Quantile(99), 1.024);

  HistogramData tail;
  for (int i = 0; i < 100; ++i) tail.Record(100.0);
  h.Merge(tail);
  EXPECT_EQ(h.count, 200u);
  // Half the mass at ~1 ms, half at ~100 ms: p25 low, p75 high.
  EXPECT_LT(h.Quantile(25), 2.0);
  EXPECT_GT(h.Quantile(75), 50.0);
}

TEST(RunningStatsTest, QuantileViewTracksTheHistogram) {
  dbsa::RunningStats stats;
  for (int i = 1; i <= 1000; ++i) stats.Add(static_cast<double>(i));
  // Bucketed quantiles are approximate (log2 buckets: one bucket spans
  // [512, 1024]) — assert the right bucket, not the exact order statistic
  // (Percentiles keeps that contract; see util_test.cc).
  EXPECT_GT(stats.Quantile(50), 256.0);
  EXPECT_LE(stats.Quantile(50), 1024.0);
  EXPECT_GT(stats.Quantile(99), 512.0);
  EXPECT_EQ(stats.histogram().count, 1000u);
}

TEST(MetricRegistryTest, ResolveIsStableAndKindChecked) {
  MetricRegistry registry;
  Counter* c = registry.GetCounter("dbsa_test_total");
  EXPECT_EQ(registry.GetCounter("dbsa_test_total"), c);  // Same pointer.
  c->Add(3);
  c->Add(4);
  EXPECT_EQ(c->Value(), 7u);

  Gauge* g = registry.GetGauge("dbsa_test_gauge");
  g->Set(2.5);
  EXPECT_DOUBLE_EQ(g->Value(), 2.5);
  g->Set(-1.0);
  EXPECT_DOUBLE_EQ(g->Value(), -1.0);

  Histogram* h = registry.GetHistogram("dbsa_test_ms");
  h->Record(1.0);
  h->Record(2.0);
  const HistogramData snap = h->Snapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_NEAR(snap.sum_ms, 3.0, 1e-6);
}

TEST(MetricRegistryTest, RenderTextIsPrometheusShaped) {
  MetricRegistry registry;
  registry.GetCounter("dbsa_queries_total{kind=\"aggregate\"}")->Add(7);
  registry.GetCounter("dbsa_queries_total{kind=\"count\"}")->Add(2);
  registry.GetGauge("dbsa_cache_bytes")->Set(4096);
  registry.GetHistogram("dbsa_latency_ms{shard=\"0\"}")->Record(1.0);

  const std::string text = registry.RenderText();
  // One TYPE line per family, not per series.
  EXPECT_NE(text.find("# TYPE dbsa_queries_total counter\n"),
            std::string::npos);
  EXPECT_EQ(text.find("# TYPE dbsa_queries_total counter",
                      text.find("# TYPE dbsa_queries_total counter") + 1),
            std::string::npos);
  EXPECT_NE(text.find("dbsa_queries_total{kind=\"aggregate\"} 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("dbsa_queries_total{kind=\"count\"} 2\n"),
            std::string::npos);
  // Integer-valued gauges render without a decimal point.
  EXPECT_NE(text.find("dbsa_cache_bytes 4096\n"), std::string::npos);
  // Histograms expose cumulative buckets with `le` spliced into the
  // existing label set, plus _sum and _count.
  EXPECT_NE(text.find("# TYPE dbsa_latency_ms histogram\n"),
            std::string::npos);
  EXPECT_NE(text.find("dbsa_latency_ms_bucket{shard=\"0\",le=\"1.024\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("dbsa_latency_ms_bucket{shard=\"0\",le=\"+Inf\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("dbsa_latency_ms_sum{shard=\"0\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("dbsa_latency_ms_count{shard=\"0\"} 1\n"),
            std::string::npos);
  // Cumulative: a bucket below the recorded value is 0.
  EXPECT_NE(text.find("dbsa_latency_ms_bucket{shard=\"0\",le=\"0.001\"} 0\n"),
            std::string::npos);
}

TEST(MetricRegistryTest, ConcurrentWritersNeverLoseCounts) {
  // The TSan-gated hammer: N writer threads pound counters and
  // histograms through the striped relaxed-atomic hot path while a
  // reader renders the registry concurrently. Counts must be exact once
  // the writers join — striping shards contention, it never drops
  // increments.
  MetricRegistry registry;
  Counter* counter = registry.GetCounter("dbsa_hammer_total");
  Histogram* hist = registry.GetHistogram("dbsa_hammer_ms");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;

  std::atomic<bool> stop{false};
  std::thread reader([&]() {
    while (!stop.load(std::memory_order_acquire)) {
      const std::string text = registry.RenderText();
      EXPECT_FALSE(text.empty());
      // Concurrent metric resolution must also be safe.
      registry.GetCounter("dbsa_hammer_other_total")->Add(0);
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&]() {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Add(1);
        hist->Record(0.5);
      }
    });
  }
  for (std::thread& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(counter->Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hist->Snapshot().count,
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(TraceTest, MintedContextsAreValidAndDistinct) {
  std::set<std::pair<uint64_t, uint64_t>> seen;
  for (int i = 0; i < 1000; ++i) {
    const TraceContext ctx = NewTraceContext();
    EXPECT_TRUE(ctx.valid());
    seen.insert({ctx.trace_hi, ctx.trace_lo});
  }
  EXPECT_EQ(seen.size(), 1000u);  // 128-bit ids: collisions mean a bug.

  EXPECT_EQ(TraceIdHex(0, 0), "untraced");
  EXPECT_EQ(TraceIdHex(0x00c0ffee00000001ull, 0xdeadbeef00000002ull),
            "00c0ffee00000001deadbeef00000002");
}

TEST(TraceTest, SpanTimerRecordsAndNullTraceIsNoop) {
  QueryTrace trace(NewTraceContext());
  {
    SpanTimer span(&trace, "route");
    SpanTimer shard_span(&trace, "shard_roundtrip", /*shard=*/2);
  }
  { SpanTimer noop(nullptr, "never"); }  // Must not crash.
  const std::vector<TraceSpan> spans = trace.spans();
  ASSERT_EQ(spans.size(), 2u);
  // Destruction order: the inner (shard) span pops first.
  EXPECT_EQ(spans[0].stage, "shard_roundtrip");
  EXPECT_EQ(spans[0].shard, 2);
  EXPECT_EQ(spans[1].stage, "route");
  EXPECT_EQ(spans[1].shard, -1);
  EXPECT_GE(spans[1].duration_ms, spans[0].duration_ms);
}

TEST(TraceTest, SlowQueryLineCarriesTheFullSpanTable) {
  TraceContext ctx;
  ctx.trace_hi = 0x1;
  ctx.trace_lo = 0x2;
  ctx.span_id = 0x3;
  std::vector<TraceSpan> spans;
  spans.push_back(TraceSpan{"merge", -1, 5.0, 1.0});
  spans.push_back(TraceSpan{"admission", -1, 0.0, 0.25});
  spans.push_back(TraceSpan{"shard_roundtrip", 1, 1.0, 3.5});
  const std::string line = FormatSlowQueryLine(
      ctx, "aggregate", "abs(0.5)", 0.25, "OK", 6.5, std::move(spans));
  EXPECT_NE(line.find("SLOW_QUERY"), std::string::npos);
  EXPECT_NE(line.find("trace=00000000000000010000000000000002"),
            std::string::npos);
  EXPECT_NE(line.find("kind=aggregate"), std::string::npos);
  EXPECT_NE(line.find("bound=abs(0.5)"), std::string::npos);
  EXPECT_NE(line.find("eps_achieved=0.25"), std::string::npos);
  EXPECT_NE(line.find("status=OK"), std::string::npos);
  EXPECT_NE(line.find("total_ms=6.500"), std::string::npos);
  // Spans render sorted by start time, shard-scoped ones labelled.
  const size_t admission = line.find("admission@0.000+0.250ms");
  const size_t roundtrip = line.find("shard_roundtrip{shard=1}@1.000+3.500ms");
  const size_t merge = line.find("merge@5.000+1.000ms");
  ASSERT_NE(admission, std::string::npos);
  ASSERT_NE(roundtrip, std::string::npos);
  ASSERT_NE(merge, std::string::npos);
  EXPECT_LT(admission, roundtrip);
  EXPECT_LT(roundtrip, merge);
}

}  // namespace
}  // namespace dbsa::telemetry
