// Tests for the canvas data model and operator algebra (Section 4):
// blend semantics and algebraic laws, masks, affine resampling, render
// passes, and the fused-vs-physical equivalence.

#include <gtest/gtest.h>

#include "canvas/canvas.h"
#include "canvas/ops.h"
#include "canvas/render.h"
#include "test_util.h"

namespace dbsa::canvas {
namespace {

Canvas MakeTestCanvas(int w, int h, uint64_t seed) {
  Canvas c(w, h, geom::Box(0, 0, w, h));
  Rng rng(seed);
  for (Rgba& px : c.data()) {
    px = {static_cast<float>(rng.Uniform(0, 10)), static_cast<float>(rng.Uniform(0, 10)),
          static_cast<float>(rng.Uniform(0, 10)), rng.Bernoulli(0.5) ? 1.f : 0.f};
  }
  return c;
}

TEST(CanvasTest, PixelMapping) {
  Canvas c(10, 10, geom::Box(0, 0, 100, 100));
  int px, py;
  ASSERT_TRUE(c.WorldToPixel({5, 95}, &px, &py));
  EXPECT_EQ(px, 0);
  EXPECT_EQ(py, 9);
  EXPECT_FALSE(c.WorldToPixel({-1, 5}, &px, &py));
  EXPECT_FALSE(c.WorldToPixel({100.5, 5}, &px, &py));
  const geom::Point center = c.PixelCenter(0, 0);
  EXPECT_DOUBLE_EQ(center.x, 5.0);
  EXPECT_DOUBLE_EQ(center.y, 5.0);
  EXPECT_TRUE(c.PixelBox(3, 4).Contains(c.PixelCenter(3, 4)));
}

TEST(OpsTest, BlendAddCommutativeAssociative) {
  const Canvas a = MakeTestCanvas(8, 8, 1);
  const Canvas b = MakeTestCanvas(8, 8, 2);
  const Canvas c = MakeTestCanvas(8, 8, 3);
  const Canvas ab = Blend(a, b, BlendFn::kAdd);
  const Canvas ba = Blend(b, a, BlendFn::kAdd);
  for (size_t i = 0; i < ab.data().size(); ++i) {
    ASSERT_FLOAT_EQ(ab.data()[i].r, ba.data()[i].r);
  }
  const Canvas ab_c = Blend(ab, c, BlendFn::kAdd);
  const Canvas a_bc = Blend(a, Blend(b, c, BlendFn::kAdd), BlendFn::kAdd);
  for (size_t i = 0; i < ab_c.data().size(); ++i) {
    ASSERT_FLOAT_EQ(ab_c.data()[i].g, a_bc.data()[i].g);
  }
}

TEST(OpsTest, BlendMinMaxIdempotent) {
  const Canvas a = MakeTestCanvas(8, 8, 4);
  for (const BlendFn fn : {BlendFn::kMin, BlendFn::kMax}) {
    const Canvas aa = Blend(a, a, fn);
    for (size_t i = 0; i < aa.data().size(); ++i) {
      ASSERT_FLOAT_EQ(aa.data()[i].r, a.data()[i].r);
      ASSERT_FLOAT_EQ(aa.data()[i].b, a.data()[i].b);
    }
  }
}

TEST(OpsTest, BlendOverPicksSourceWhereAlphaSet) {
  Canvas dst(2, 1, geom::Box(0, 0, 2, 1));
  Canvas src(2, 1, geom::Box(0, 0, 2, 1));
  dst.At(0, 0) = {1, 1, 1, 1};
  dst.At(1, 0) = {2, 2, 2, 1};
  src.At(0, 0) = {9, 9, 9, 1};  // Covers pixel 0 only.
  const Canvas out = Blend(dst, src, BlendFn::kOver);
  EXPECT_FLOAT_EQ(out.At(0, 0).r, 9.f);
  EXPECT_FLOAT_EQ(out.At(1, 0).r, 2.f);
}

TEST(OpsTest, MaskZeroesNonMatching) {
  Canvas c = MakeTestCanvas(8, 8, 5);
  const Canvas masked = Mask(c, [](const Rgba& px) { return px.r > 5.f; });
  for (size_t i = 0; i < masked.data().size(); ++i) {
    if (c.data()[i].r > 5.f) {
      ASSERT_FLOAT_EQ(masked.data()[i].r, c.data()[i].r);
    } else {
      ASSERT_FLOAT_EQ(masked.data()[i].r, 0.f);
      ASSERT_FLOAT_EQ(masked.data()[i].a, 0.f);
    }
  }
}

TEST(OpsTest, MaskBlendCommutesForPixelLocalOps) {
  // mask(a + b) == mask(a) + mask(b) for a pixel-local predicate applied
  // to disjoint-support canvases; here use the simpler law
  // mask(mask(x)) == mask(x) (idempotence).
  Canvas c = MakeTestCanvas(8, 8, 6);
  const auto pred = [](const Rgba& px) { return px.g > 3.f; };
  const Canvas once = Mask(c, pred);
  const Canvas twice = Mask(once, pred);
  for (size_t i = 0; i < once.data().size(); ++i) {
    ASSERT_FLOAT_EQ(once.data()[i].g, twice.data()[i].g);
  }
}

TEST(OpsTest, ReduceSumsChannels) {
  Canvas c(4, 4, geom::Box(0, 0, 4, 4));
  for (int i = 0; i < 4; ++i) c.At(i, i) = {1, 2, 0, 1};
  const Rgba total = Reduce(c);
  EXPECT_FLOAT_EQ(total.r, 4.f);
  EXPECT_FLOAT_EQ(total.g, 8.f);
}

TEST(OpsTest, ReduceWhereRespectsStencil) {
  Canvas values(4, 1, geom::Box(0, 0, 4, 1));
  Canvas stencil(4, 1, geom::Box(0, 0, 4, 1));
  for (int x = 0; x < 4; ++x) values.At(x, 0) = {1, static_cast<float>(x), 0, 1};
  stencil.At(1, 0).a = 1.f;
  stencil.At(3, 0).a = 1.f;
  const Rgba total = ReduceWhere(values, stencil);
  EXPECT_FLOAT_EQ(total.r, 2.f);
  EXPECT_FLOAT_EQ(total.g, 4.f);  // 1 + 3.
}

TEST(OpsTest, AffineResampleDownscalePreservesValues) {
  Canvas src(8, 8, geom::Box(0, 0, 8, 8));
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 8; ++x) src.At(x, y).r = static_cast<float>(x / 2);
  }
  // Zoom into the right half at the same resolution.
  const Canvas out = AffineResample(src, 4, 8, geom::Box(4, 0, 8, 8));
  for (int y = 0; y < 8; ++y) {
    for (int x = 0; x < 4; ++x) {
      ASSERT_FLOAT_EQ(out.At(x, y).r, static_cast<float>((x + 4) / 2));
    }
  }
}

TEST(RenderTest, ScatterCountsAndWeights) {
  Canvas c(10, 10, geom::Box(0, 0, 10, 10));
  const std::vector<geom::Point> pts{{1.5, 1.5}, {1.7, 1.2}, {8.5, 8.5}, {-5, 0}};
  const std::vector<double> weights{2.0, 3.0, 5.0, 100.0};
  ScatterPoints(&c, pts.data(), weights.data(), pts.size());
  EXPECT_FLOAT_EQ(c.At(1, 1).r, 2.f);  // Two points in pixel (1,1).
  EXPECT_FLOAT_EQ(c.At(1, 1).g, 5.f);
  EXPECT_FLOAT_EQ(c.At(8, 8).r, 1.f);
  const Rgba total = Reduce(c);
  EXPECT_FLOAT_EQ(total.r, 3.f);  // The out-of-viewport point is dropped.
}

TEST(RenderTest, FillPolygonCenterSampling) {
  Canvas c(10, 10, geom::Box(0, 0, 10, 10));
  const geom::Polygon rect = dbsa::testing::MakeRectPolygon(2, 2, 8, 8);
  FillPolygon(&c, rect);
  int covered = 0;
  for (int y = 0; y < 10; ++y) {
    for (int x = 0; x < 10; ++x) {
      const bool inside = rect.Contains(c.PixelCenter(x, y));
      ASSERT_EQ(c.At(x, y).a > 0.f, inside) << x << "," << y;
      covered += c.At(x, y).a > 0.f ? 1 : 0;
    }
  }
  EXPECT_EQ(covered, 36);  // Pixels with centers in (2,8)x(2,8).
}

TEST(RenderTest, ScanEqualsFillForRandomStars) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Canvas fill_canvas(64, 64, geom::Box(0, 0, 64, 64));
    const geom::Polygon star =
        dbsa::testing::MakeStarPolygon({32, 32}, 10, 25, 16, seed);
    FillPolygon(&fill_canvas, star);
    Canvas scan_canvas(64, 64, geom::Box(0, 0, 64, 64));
    ScanPolygon(scan_canvas, star, [&](int y, int x0, int x1) {
      for (int x = x0; x <= x1; ++x) scan_canvas.At(x, y).a = 1.f;
    });
    for (size_t i = 0; i < fill_canvas.data().size(); ++i) {
      ASSERT_FLOAT_EQ(fill_canvas.data()[i].a, scan_canvas.data()[i].a)
          << "seed " << seed;
    }
  }
}

}  // namespace
}  // namespace dbsa::canvas
