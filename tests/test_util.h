// Shared helpers for the dbsa test suite: deterministic random geometry
// generators used by the property tests.

#ifndef DBSA_TESTS_TEST_UTIL_H_
#define DBSA_TESTS_TEST_UTIL_H_

#include <cmath>
#include <vector>

#include "geom/polygon.h"
#include "util/random.h"

namespace dbsa::testing {

/// Star-shaped (hence simple) polygon: vertices at increasing angles with
/// radii in [r_min, r_max]. Concave whenever r_max / r_min is large.
inline geom::Polygon MakeStarPolygon(const geom::Point& center, double r_min,
                                     double r_max, int n, uint64_t seed) {
  Rng rng(seed);
  geom::Ring ring;
  ring.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double angle = 2.0 * 3.141592653589793 * (i + rng.Uniform() * 0.6) / n;
    const double r = rng.Uniform(r_min, r_max);
    ring.push_back({center.x + r * std::cos(angle), center.y + r * std::sin(angle)});
  }
  geom::Polygon poly(std::move(ring));
  poly.Normalize();
  return poly;
}

/// Star polygon with a star-shaped hole.
inline geom::Polygon MakeStarPolygonWithHole(const geom::Point& center, double r_min,
                                             double r_max, int n, uint64_t seed) {
  geom::Polygon outer = MakeStarPolygon(center, r_min, r_max, n, seed);
  geom::Polygon inner =
      MakeStarPolygon(center, r_min * 0.2, r_min * 0.5, std::max(n / 2, 4), seed + 1);
  geom::Polygon poly(outer.outer(), {inner.outer()});
  poly.Normalize();
  return poly;
}

/// Axis-aligned rectangle polygon.
inline geom::Polygon MakeRectPolygon(double x0, double y0, double x1, double y1) {
  geom::Polygon poly(geom::Ring{{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}});
  poly.Normalize();
  return poly;
}

/// A concave L-shape.
inline geom::Polygon MakeLPolygon(double x0, double y0, double size) {
  geom::Ring ring{{x0, y0},
                  {x0 + size, y0},
                  {x0 + size, y0 + size * 0.4},
                  {x0 + size * 0.4, y0 + size * 0.4},
                  {x0 + size * 0.4, y0 + size},
                  {x0, y0 + size}};
  geom::Polygon poly(std::move(ring));
  poly.Normalize();
  return poly;
}

/// Uniform random points in a box.
inline std::vector<geom::Point> RandomPoints(const geom::Box& box, size_t n,
                                             uint64_t seed) {
  Rng rng(seed);
  std::vector<geom::Point> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pts.push_back({rng.Uniform(box.min.x, box.max.x), rng.Uniform(box.min.y, box.max.y)});
  }
  return pts;
}

}  // namespace dbsa::testing

#endif  // DBSA_TESTS_TEST_UTIL_H_
