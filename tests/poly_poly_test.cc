// Tests for distance-bounded polygon-polygon predicates and the
// id-returning selection API (the "arbitrary spatial predicates" claim).

#include <gtest/gtest.h>

#include <algorithm>

#include "geom/distance.h"
#include "join/point_index_join.h"
#include "join/poly_poly.h"
#include "test_util.h"

namespace dbsa::join {
namespace {

using dbsa::testing::MakeRectPolygon;
using dbsa::testing::MakeStarPolygon;
using raster::Grid;
using raster::HierarchicalRaster;

TEST(PolyPolyTest, DisjointPolygonsSayNo) {
  const Grid grid({0, 0}, 1024.0);
  const geom::Polygon a = MakeRectPolygon(100, 100, 200, 200);
  const geom::Polygon b = MakeRectPolygon(600, 600, 700, 700);
  const auto ha = HierarchicalRaster::BuildEpsilon(a, grid, 4.0);
  const auto hb = HierarchicalRaster::BuildEpsilon(b, grid, 4.0);
  EXPECT_EQ(ApproxIntersects(ha, hb), IntersectVerdict::kNo);
  EXPECT_FALSE(ExactIntersects(a, b));
}

TEST(PolyPolyTest, OverlappingPolygonsSayYes) {
  const Grid grid({0, 0}, 1024.0);
  const geom::Polygon a = MakeRectPolygon(100, 100, 400, 400);
  const geom::Polygon b = MakeRectPolygon(250, 250, 600, 600);
  const auto ha = HierarchicalRaster::BuildEpsilon(a, grid, 8.0);
  const auto hb = HierarchicalRaster::BuildEpsilon(b, grid, 8.0);
  EXPECT_EQ(ApproxIntersects(ha, hb), IntersectVerdict::kYes);
  EXPECT_TRUE(ExactIntersects(a, b));
}

TEST(PolyPolyTest, NearMissIsWithinBound) {
  // Two rectangles 3m apart with an 8m bound: boundary cells overlap.
  const Grid grid({0, 0}, 1024.0);
  const geom::Polygon a = MakeRectPolygon(100, 100, 300, 300);
  const geom::Polygon b = MakeRectPolygon(303, 100, 500, 300);
  const auto ha = HierarchicalRaster::BuildEpsilon(a, grid, 8.0);
  const auto hb = HierarchicalRaster::BuildEpsilon(b, grid, 8.0);
  EXPECT_EQ(ApproxIntersects(ha, hb), IntersectVerdict::kWithinBound);
  EXPECT_FALSE(ExactIntersects(a, b));
}

TEST(PolyPolyTest, ContainmentWithoutEdgeCrossing) {
  const geom::Polygon outer = MakeRectPolygon(0, 0, 100, 100);
  const geom::Polygon inner = MakeRectPolygon(40, 40, 60, 60);
  EXPECT_TRUE(ExactIntersects(outer, inner));
  EXPECT_TRUE(ExactIntersects(inner, outer));
}

TEST(PolyPolyTest, VerdictSoundnessSweep) {
  // Property over random pairs: kNo implies exactly-disjoint with margin;
  // kYes implies exact intersection; kWithinBound implies the geometries
  // are within 2*eps of each other.
  const Grid grid({0, 0}, 1024.0);
  const double eps = 8.0;
  int yes = 0, no = 0, within = 0;
  Rng rng(5);
  for (int trial = 0; trial < 60; ++trial) {
    const geom::Polygon a = MakeStarPolygon(
        {rng.Uniform(200, 800), rng.Uniform(200, 800)}, 50, 120, 14, trial * 2 + 1);
    const geom::Polygon b = MakeStarPolygon(
        {rng.Uniform(200, 800), rng.Uniform(200, 800)}, 50, 120, 14, trial * 2 + 2);
    const auto ha = HierarchicalRaster::BuildEpsilon(a, grid, eps);
    const auto hb = HierarchicalRaster::BuildEpsilon(b, grid, eps);
    const IntersectVerdict verdict = ApproxIntersects(ha, hb);
    const bool exact = ExactIntersects(a, b);
    switch (verdict) {
      case IntersectVerdict::kNo:
        ++no;
        ASSERT_FALSE(exact) << "trial " << trial;
        break;
      case IntersectVerdict::kYes:
        ++yes;
        ASSERT_TRUE(exact) << "trial " << trial;
        break;
      case IntersectVerdict::kWithinBound: {
        ++within;
        // Boundaries within 2*eps: sample a's boundary for a point close
        // to b (or intersection).
        double min_dist = 1e300;
        const geom::Ring& ring = a.outer();
        for (size_t i = 0; i < ring.size(); ++i) {
          const geom::Point& p1 = ring[i];
          const geom::Point& p2 = ring[(i + 1) % ring.size()];
          for (int s = 0; s < 8; ++s) {
            const geom::Point p = p1 + (p2 - p1) * (s / 8.0);
            min_dist = std::min(min_dist, geom::DistanceToPolygon(p, b));
          }
        }
        if (!exact) {
          ASSERT_LE(min_dist, 2 * eps + 2.0) << "trial " << trial;  // Sampling slack.
        }
        break;
      }
    }
  }
  // The sweep exercised all three verdicts.
  EXPECT_GT(yes, 0);
  EXPECT_GT(no, 0);
  (void)within;
}

TEST(PolyPolyTest, OverlapAreaApproximatesExact) {
  const Grid grid({0, 0}, 1024.0);
  const geom::Polygon a = MakeRectPolygon(100, 100, 400, 400);
  const geom::Polygon b = MakeRectPolygon(200, 200, 500, 500);
  const double exact_overlap = 200.0 * 200.0;
  const auto ha = HierarchicalRaster::BuildEpsilon(a, grid, 4.0);
  const auto hb = HierarchicalRaster::BuildEpsilon(b, grid, 4.0);
  const double approx = ApproxOverlapArea(ha, hb, grid);
  EXPECT_NEAR(approx, exact_overlap, exact_overlap * 0.05);
}

TEST(SelectionTest, SelectIdsMatchesExactWithinBound) {
  const Grid grid({0, 0}, 512.0);
  const auto pts = dbsa::testing::RandomPoints(geom::Box(5, 5, 507, 507), 20000, 9);
  const PointIndex index(pts.data(), nullptr, pts.size(), grid);
  const geom::Polygon query = MakeStarPolygon({256, 256}, 80, 160, 16, 4);
  const double eps = 4.0;
  const auto hr = HierarchicalRaster::BuildEpsilon(query, grid, eps);

  std::vector<uint32_t> selected;
  const size_t n = index.SelectIds(hr, SearchStrategy::kRadixSpline, &selected);
  EXPECT_EQ(n, selected.size());

  std::vector<bool> in_selection(pts.size(), false);
  for (const uint32_t id : selected) {
    ASSERT_LT(id, pts.size());
    ASSERT_FALSE(in_selection[id]) << "duplicate id " << id;
    in_selection[id] = true;
  }
  for (size_t i = 0; i < pts.size(); ++i) {
    const bool exact = query.bounds().Contains(pts[i]) && query.Contains(pts[i]);
    if (exact && !in_selection[i]) {
      FAIL() << "conservative selection missed an inside point";
    }
    if (!exact && in_selection[i]) {
      // False positive: must be within eps of the boundary.
      ASSERT_LE(geom::DistanceToPolygon(pts[i], query), eps + 1e-9);
    }
  }
}

TEST(SelectionTest, SelectionCountMatchesAggregate) {
  const Grid grid({0, 0}, 512.0);
  const auto pts = dbsa::testing::RandomPoints(geom::Box(5, 5, 507, 507), 10000, 10);
  const PointIndex index(pts.data(), nullptr, pts.size(), grid);
  const geom::Polygon query = MakeStarPolygon({256, 256}, 80, 160, 16, 6);
  const auto hr = HierarchicalRaster::BuildEpsilon(query, grid, 8.0);
  std::vector<uint32_t> selected;
  index.SelectIds(hr, SearchStrategy::kBinarySearch, &selected);
  const CellAggregate agg = index.QueryCells(hr, SearchStrategy::kBinarySearch);
  EXPECT_EQ(static_cast<double>(selected.size()), agg.count);
}

}  // namespace
}  // namespace dbsa::join
