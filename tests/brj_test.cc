// Tests for the Bounded Raster Join: equivalence of the fused and
// physical-operator pipelines, invariance under device-limit subdivision,
// and the distance-bounded accuracy of the counts.

#include <gtest/gtest.h>

#include "canvas/brj.h"
#include "geom/distance.h"
#include "join/exact_join.h"
#include "test_util.h"

namespace dbsa::canvas {
namespace {

struct Workload {
  std::vector<geom::Point> pts;
  std::vector<double> attrs;
  std::vector<geom::Polygon> polys;
  std::vector<uint32_t> region_of;
  geom::Box universe{0, 0, 256, 256};
};

Workload MakeWorkload(uint64_t seed, size_t n_points = 5000) {
  Workload w;
  w.pts = dbsa::testing::RandomPoints(geom::Box(10, 10, 246, 246), n_points, seed);
  Rng rng(seed + 100);
  for (const auto& p : w.pts) {
    (void)p;
    w.attrs.push_back(rng.Uniform(1, 5));
  }
  w.polys.push_back(dbsa::testing::MakeStarPolygon({80, 80}, 30, 60, 16, seed));
  w.polys.push_back(dbsa::testing::MakeStarPolygon({180, 170}, 25, 55, 14, seed + 1));
  w.polys.push_back(dbsa::testing::MakeRectPolygon(20, 180, 90, 240));
  w.region_of = {0, 1, 2};
  return w;
}

BrjResult RunBrj(const Workload& w, const BrjOptions& opts) {
  return BoundedRasterJoin(w.pts.data(), w.attrs.data(), w.pts.size(), w.polys,
                           w.region_of, 3, w.universe, opts);
}

TEST(BrjTest, FusedEqualsPhysicalOperators) {
  const Workload w = MakeWorkload(1);
  BrjOptions fused;
  fused.epsilon = 8.0;
  BrjOptions physical = fused;
  physical.use_physical_operators = true;
  const BrjResult a = RunBrj(w, fused);
  const BrjResult b = RunBrj(w, physical);
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_DOUBLE_EQ(a.count[r], b.count[r]) << "region " << r;
    EXPECT_NEAR(a.sum[r], b.sum[r], 1e-3) << "region " << r;
  }
}

TEST(BrjTest, SubdivisionDoesNotChangeResults) {
  // Forcing a tiny device limit splits the canvas into many tiles; the
  // aggregates must be identical (pixels align because tiles cut on
  // pixel boundaries).
  const Workload w = MakeWorkload(2);
  BrjOptions one_tile;
  one_tile.epsilon = 4.0;
  one_tile.device.max_canvas_side = 1 << 14;
  BrjOptions many_tiles = one_tile;
  many_tiles.device.max_canvas_side = 64;
  const BrjResult a = RunBrj(w, one_tile);
  const BrjResult b = RunBrj(w, many_tiles);
  EXPECT_EQ(a.tiles, 1);
  EXPECT_GT(b.tiles, 1);
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_DOUBLE_EQ(a.count[r], b.count[r]) << "region " << r;
    EXPECT_NEAR(a.sum[r], b.sum[r], 1e-3) << "region " << r;
  }
}

TEST(BrjTest, ErrorsAreDistanceBounded) {
  // Every count discrepancy vs the exact join must come from points
  // within epsilon of the owning region's boundary. Verify the aggregate
  // error is no larger than the number of such near-boundary points.
  const Workload w = MakeWorkload(3);
  const double eps = 6.0;
  BrjOptions opts;
  opts.epsilon = eps;
  const BrjResult brj = RunBrj(w, opts);

  join::JoinInput in;
  in.points = w.pts.data();
  in.attrs = w.attrs.data();
  in.num_points = w.pts.size();
  in.polys = &w.polys;
  in.region_of = &w.region_of;
  in.num_regions = 3;
  const join::JoinStats exact = join::BruteForceJoin(in, join::AggKind::kCount);

  for (size_t r = 0; r < 3; ++r) {
    size_t near_boundary = 0;
    for (const geom::Point& p : w.pts) {
      if (geom::DistanceToBoundary(p, w.polys[r]) <= eps) ++near_boundary;
    }
    EXPECT_LE(std::fabs(brj.count[r] - exact.value[r]),
              static_cast<double>(near_boundary))
        << "region " << r;
    // And the counts are close in relative terms (sanity).
    if (exact.value[r] > 100) {
      EXPECT_LT(std::fabs(brj.count[r] - exact.value[r]) / exact.value[r], 0.25)
          << "region " << r;
    }
  }
}

TEST(BrjTest, TighterEpsilonReducesError) {
  const Workload w = MakeWorkload(4, 20000);
  join::JoinInput in;
  in.points = w.pts.data();
  in.attrs = w.attrs.data();
  in.num_points = w.pts.size();
  in.polys = &w.polys;
  in.region_of = &w.region_of;
  in.num_regions = 3;
  const join::JoinStats exact = join::BruteForceJoin(in, join::AggKind::kCount);

  double prev_err = 1e300;
  for (const double eps : {16.0, 4.0, 1.0}) {
    BrjOptions opts;
    opts.epsilon = eps;
    const BrjResult brj = RunBrj(w, opts);
    double err = 0;
    for (size_t r = 0; r < 3; ++r) err += std::fabs(brj.count[r] - exact.value[r]);
    EXPECT_LE(err, prev_err * 1.5 + 3.0) << "eps " << eps;  // Allow small noise.
    prev_err = err;
  }
  EXPECT_LT(prev_err / (exact.value[0] + exact.value[1] + exact.value[2]), 0.02);
}

TEST(BrjTest, CanvasSideTracksEpsilon) {
  const Workload w = MakeWorkload(5, 100);
  BrjOptions coarse;
  coarse.epsilon = 16.0;
  BrjOptions fine;
  fine.epsilon = 1.0;
  EXPECT_LT(RunBrj(w, coarse).canvas_side, RunBrj(w, fine).canvas_side);
}

}  // namespace
}  // namespace dbsa::canvas
