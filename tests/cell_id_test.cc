// Tests for the S2-style hierarchical cell ids.

#include <gtest/gtest.h>

#include "raster/cell_id.h"
#include "util/random.h"

namespace dbsa::raster {
namespace {

TEST(CellIdTest, LevelRoundTrip) {
  for (int level = 0; level <= CellId::kMaxLevel; ++level) {
    const CellId c = CellId::FromLevelPrefix(level, 0);
    EXPECT_EQ(c.level(), level);
    EXPECT_EQ(c.prefix(), 0u);
  }
}

TEST(CellIdTest, XYRoundTrip) {
  Rng rng(1);
  for (int level = 1; level <= CellId::kMaxLevel; ++level) {
    for (int i = 0; i < 100; ++i) {
      const uint32_t mask = (level == 32) ? ~0u : ((1u << level) - 1);
      const uint32_t x = static_cast<uint32_t>(rng.Next()) & mask;
      const uint32_t y = static_cast<uint32_t>(rng.Next()) & mask;
      const CellId c = CellId::FromXY(level, x, y);
      EXPECT_EQ(c.level(), level);
      uint32_t dx, dy;
      c.ToXY(&dx, &dy);
      ASSERT_EQ(dx, x);
      ASSERT_EQ(dy, y);
    }
  }
}

TEST(CellIdTest, ParentChildNavigation) {
  const CellId c = CellId::FromXY(10, 513, 274);
  const CellId parent = c.Parent();
  EXPECT_EQ(parent.level(), 9);
  uint32_t px, py;
  parent.ToXY(&px, &py);
  EXPECT_EQ(px, 513u >> 1);
  EXPECT_EQ(py, 274u >> 1);

  bool found = false;
  for (int i = 0; i < 4; ++i) {
    if (parent.Child(i) == c) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(CellIdTest, AncestorAtLevel) {
  const CellId c = CellId::FromXY(12, 4095, 1);
  const CellId anc = c.Parent(5);
  EXPECT_EQ(anc.level(), 5);
  uint32_t ax, ay;
  anc.ToXY(&ax, &ay);
  EXPECT_EQ(ax, 4095u >> 7);
  EXPECT_EQ(ay, 1u >> 7);
}

TEST(CellIdTest, LeafRangesNestExactly) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const int level = 1 + static_cast<int>(rng.Below(CellId::kMaxLevel));
    const uint32_t mask = (1u << level) - 1;
    const CellId c = CellId::FromXY(level, static_cast<uint32_t>(rng.Next()) & mask,
                                    static_cast<uint32_t>(rng.Next()) & mask);
    // Children partition the parent's leaf range.
    if (level < CellId::kMaxLevel) {
      uint64_t covered = 0;
      for (int k = 0; k < 4; ++k) {
        const CellId child = c.Child(k);
        ASSERT_TRUE(c.Covers(child));
        ASSERT_GE(child.LeafKeyMin(), c.LeafKeyMin());
        ASSERT_LE(child.LeafKeyMax(), c.LeafKeyMax());
        covered += child.LeafKeyMax() - child.LeafKeyMin() + 1;
      }
      ASSERT_EQ(covered, c.LeafKeyMax() - c.LeafKeyMin() + 1);
    }
  }
}

TEST(CellIdTest, RangeSizeMatchesLevel) {
  const CellId c = CellId::FromXY(20, 77, 33);
  const int below = CellId::kMaxLevel - 20;
  EXPECT_EQ(c.LeafKeyMax() - c.LeafKeyMin() + 1, 1ull << (2 * below));
}

TEST(CellIdTest, LeafCellRangeIsSingleton) {
  const CellId c = CellId::FromXY(CellId::kMaxLevel, 123456, 654321);
  EXPECT_EQ(c.LeafKeyMin(), c.LeafKeyMax());
}

TEST(CellIdTest, CoversIsReflexiveAndAntisymmetricAcrossLevels) {
  const CellId parent = CellId::FromXY(8, 10, 20);
  const CellId child = parent.Child(2).Child(1);
  EXPECT_TRUE(parent.Covers(parent));
  EXPECT_TRUE(parent.Covers(child));
  EXPECT_FALSE(child.Covers(parent));
  const CellId sibling = CellId::FromXY(8, 11, 20);
  EXPECT_FALSE(parent.Covers(sibling));
  EXPECT_FALSE(sibling.Covers(child));
}

TEST(CellIdTest, SiblingRangesAreDisjointAndOrdered) {
  const CellId parent = CellId::FromXY(6, 5, 9);
  uint64_t prev_max = 0;
  for (int k = 0; k < 4; ++k) {
    const CellId child = parent.Child(k);
    if (k > 0) {
      ASSERT_EQ(child.LeafKeyMin(), prev_max + 1);
    } else {
      ASSERT_EQ(child.LeafKeyMin(), parent.LeafKeyMin());
    }
    prev_max = child.LeafKeyMax();
  }
  EXPECT_EQ(prev_max, parent.LeafKeyMax());
}

TEST(CellIdTest, FromLeafKeyMatchesFromXY) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const uint32_t mask = (1u << CellId::kMaxLevel) - 1;
    const uint32_t x = static_cast<uint32_t>(rng.Next()) & mask;
    const uint32_t y = static_cast<uint32_t>(rng.Next()) & mask;
    const CellId direct = CellId::FromXY(CellId::kMaxLevel, x, y);
    const CellId via_key = CellId::FromLeafKey(sfc::MortonEncode(x, y));
    ASSERT_EQ(direct, via_key);
  }
}

TEST(CellIdTest, ToStringFormat) {
  EXPECT_EQ(CellId::FromXY(3, 5, 2).ToString(), "L3:(5,2)");
  EXPECT_EQ(CellId().ToString(), "invalid");
}

}  // namespace
}  // namespace dbsa::raster
