// Unit tests for the service approximation cache: LRU eviction under a
// memory budget, single-flight construction, and polygon fingerprints.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "raster/grid.h"
#include "service/approx_cache.h"
#include "test_util.h"

namespace dbsa::service {
namespace {

class ApproxCacheTest : public ::testing::Test {
 protected:
  ApproxCacheTest() : grid_({0, 0}, 1024.0) {}

  /// A distinct polygon per id (shifted rectangles).
  geom::Polygon PolyFor(int id) const {
    const double x0 = 64.0 + 8.0 * id;
    return dbsa::testing::MakeRectPolygon(x0, 64.0, x0 + 200.0, 300.0);
  }

  raster::HierarchicalRaster BuildFor(int id, int level) const {
    return raster::HierarchicalRaster::BuildLevel(PolyFor(id), grid_, level);
  }

  size_t BytesFor(int id, int level) const {
    return BuildFor(id, level).MemoryBytes();
  }

  raster::Grid grid_;
};

TEST_F(ApproxCacheTest, HitsAndMissesAreCounted) {
  ApproxCache cache(size_t{16} << 20);
  int builds = 0;
  const auto builder = [&]() {
    ++builds;
    return BuildFor(0, 6);
  };
  const ApproxCache::HrPtr first = cache.GetOrBuild(0, 6, builder);
  const ApproxCache::HrPtr second = cache.GetOrBuild(0, 6, builder);
  EXPECT_EQ(builds, 1);
  EXPECT_EQ(first.get(), second.get());  // Shared, not rebuilt.
  const ApproxCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.bytes_used, 0u);

  // A different level of the same object is a distinct entry.
  cache.GetOrBuild(0, 7, [&]() { return BuildFor(0, 7); });
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST_F(ApproxCacheTest, EvictsLeastRecentlyUsedToRespectBudget) {
  const int level = 6;
  const size_t one = BytesFor(0, level);
  // Room for three entries, not four.
  ApproxCache cache(3 * one + one / 2);
  for (int id = 0; id < 3; ++id) {
    cache.GetOrBuild(id, level, [&]() { return BuildFor(id, level); });
  }
  EXPECT_EQ(cache.stats().entries, 3u);
  EXPECT_EQ(cache.stats().evictions, 0u);

  // Touch id 0 so id 1 is the LRU victim, then overflow.
  EXPECT_NE(cache.GetOrBuild(0, level, [&]() { return BuildFor(0, level); }),
            nullptr);
  cache.GetOrBuild(3, level, [&]() { return BuildFor(3, level); });

  const ApproxCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.entries, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_LE(stats.bytes_used, stats.budget_bytes);
  EXPECT_NE(cache.Peek(0, level), nullptr);  // Recently touched: kept.
  EXPECT_EQ(cache.Peek(1, level), nullptr);  // LRU: evicted.
  EXPECT_NE(cache.Peek(3, level), nullptr);  // Newest: kept.
}

TEST_F(ApproxCacheTest, OversizedEntryIsReturnedButNotCached) {
  ApproxCache cache(/*budget_bytes=*/1);
  const ApproxCache::HrPtr hr =
      cache.GetOrBuild(0, 6, [&]() { return BuildFor(0, 6); });
  ASSERT_NE(hr, nullptr);
  EXPECT_GT(hr->NumCells(), 0u);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes_used, 0u);
}

TEST_F(ApproxCacheTest, ClearEmptiesTheCache) {
  ApproxCache cache(size_t{16} << 20);
  cache.GetOrBuild(0, 6, [&]() { return BuildFor(0, 6); });
  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes_used, 0u);
  EXPECT_EQ(cache.Peek(0, 6), nullptr);
}

TEST_F(ApproxCacheTest, ThrowingBuilderLeavesTheKeyRetryable) {
  ApproxCache cache(size_t{16} << 20);
  EXPECT_THROW(cache.GetOrBuild(
                   0, 6, [&]() -> raster::HierarchicalRaster {
                     throw std::runtime_error("build failed");
                   }),
               std::runtime_error);
  // The failure must not poison the key: the next request builds.
  const ApproxCache::HrPtr hr =
      cache.GetOrBuild(0, 6, [&]() { return BuildFor(0, 6); });
  ASSERT_NE(hr, nullptr);
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST_F(ApproxCacheTest, ClearDropsEntriesFromInFlightBuilds) {
  ApproxCache cache(size_t{16} << 20);
  std::atomic<bool> build_started{false};
  std::thread builder([&]() {
    cache.GetOrBuild(0, 6, [&]() {
      build_started.store(true);
      // Hold the build open so Clear() lands while it is in flight.
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
      return BuildFor(0, 6);
    });
  });
  while (!build_started.load()) std::this_thread::yield();
  cache.Clear();
  builder.join();
  // The in-flight build completed after Clear(): its caller got a valid
  // result, but the entry must not resurrect into the cleared cache.
  EXPECT_EQ(cache.Peek(0, 6), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes_used, 0u);
}

TEST_F(ApproxCacheTest, ConcurrentRequestsForOneKeyBuildOnce) {
  ApproxCache cache(size_t{16} << 20);
  std::atomic<int> builds{0};
  constexpr int kThreads = 8;
  std::vector<ApproxCache::HrPtr> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t]() {
      results[t] = cache.GetOrBuild(42, 6, [&]() {
        builds.fetch_add(1);
        // Widen the race window so waiters really pile onto the future.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return BuildFor(0, 6);
      });
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(builds.load(), 1);  // Single-flight.
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(results[t].get(), results[0].get());
  }
  const ApproxCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, static_cast<size_t>(kThreads - 1));
}

TEST(PolygonFingerprintTest, DistinguishesGeometry) {
  const geom::Polygon a = dbsa::testing::MakeRectPolygon(0, 0, 10, 10);
  const geom::Polygon a2 = dbsa::testing::MakeRectPolygon(0, 0, 10, 10);
  const geom::Polygon b = dbsa::testing::MakeRectPolygon(0, 0, 10, 11);
  const geom::Polygon star =
      dbsa::testing::MakeStarPolygon({50, 50}, 10, 30, 12, 7);
  EXPECT_TRUE(PolygonFingerprint(a) == PolygonFingerprint(a2));
  EXPECT_TRUE(PolygonFingerprint(a) != PolygonFingerprint(b));
  EXPECT_TRUE(PolygonFingerprint(a) != PolygonFingerprint(star));
  // The ad-hoc namespace bit never collides with region polygon indexes.
  EXPECT_NE(PolygonFingerprint(a).hi & (1ULL << 63), 0u);
  // The two 64-bit words are independent streams, not one value reused.
  EXPECT_NE(PolygonFingerprint(a).lo, PolygonFingerprint(a).hi & ~(1ULL << 63));
}

TEST(PolygonFingerprintTest, RingStructureChangesTheFingerprint) {
  // Same vertex byte stream, chunked differently into rings: one hexagon
  // vs a triangle with a triangular hole. A hash over raw bytes alone
  // would collide; the structure mix must not.
  const geom::Ring all{{0, 0}, {40, 0}, {20, 30}, {10, 10}, {30, 10}, {20, 24}};
  const geom::Polygon one_ring(all);
  const geom::Polygon two_rings(geom::Ring{{0, 0}, {40, 0}, {20, 30}},
                                {geom::Ring{{10, 10}, {30, 10}, {20, 24}}});
  EXPECT_TRUE(PolygonFingerprint(one_ring) != PolygonFingerprint(two_rings));
}

TEST(GeometrySummaryTest, MatchesIdenticalRejectsDifferent) {
  const geom::Polygon a = dbsa::testing::MakeRectPolygon(0, 0, 10, 10);
  const geom::Polygon b = dbsa::testing::MakeRectPolygon(0, 0, 10, 11);
  EXPECT_TRUE(GeometrySummary::Of(a).Matches(GeometrySummary::Of(a)));
  EXPECT_FALSE(GeometrySummary::Of(a).Matches(GeometrySummary::Of(b)));
}

TEST_F(ApproxCacheTest, FingerprintCollisionIsDetectedNotServed) {
  // Adversarial setup: two distinct polygons forced onto the SAME 128-bit
  // key (the worst case a real hash collision would produce). With the
  // geometry passed for verification, the cache must detect the mismatch,
  // discard the stale entry and rebuild — never serve the wrong HR.
  ApproxCache cache(size_t{16} << 20);
  const ObjectKey colliding_key(0x8000000000001234ULL, 0x5678ULL);
  const geom::Polygon poly_a = PolyFor(0);
  const geom::Polygon poly_b = PolyFor(40);  // Disjoint footprint from A.

  bool built = false;
  const ApproxCache::HrPtr hr_a = cache.GetOrBuild(
      colliding_key, 6, [&]() { return BuildFor(0, 6); }, &built, &poly_a);
  EXPECT_TRUE(built);

  // Same key, different geometry: must NOT serve A's approximation.
  const ApproxCache::HrPtr hr_b = cache.GetOrBuild(
      colliding_key, 6, [&]() { return BuildFor(40, 6); }, &built, &poly_b);
  EXPECT_TRUE(built);
  EXPECT_NE(hr_a.get(), hr_b.get());
  // B's approximation covers B's footprint, not A's.
  EXPECT_TRUE(hr_b->ApproxContains(poly_b.Centroid(), grid_));
  EXPECT_FALSE(hr_b->ApproxContains(poly_a.Centroid(), grid_));
  EXPECT_EQ(cache.stats().collisions, 1u);

  // Without verification geometry the key is trusted (region-table ids).
  const ApproxCache::HrPtr again = cache.GetOrBuild(
      colliding_key, 6, [&]() { return BuildFor(40, 6); }, &built);
  EXPECT_FALSE(built);
  EXPECT_EQ(again.get(), hr_b.get());
}

TEST_F(ApproxCacheTest, VerifiedHitDoesNotRebuild) {
  ApproxCache cache(size_t{16} << 20);
  const geom::Polygon poly = PolyFor(3);
  const ObjectKey key = PolygonFingerprint(poly);
  bool built = false;
  const ApproxCache::HrPtr first = cache.GetOrBuild(
      key, 6, [&]() { return BuildFor(3, 6); }, &built, &poly);
  EXPECT_TRUE(built);
  const ApproxCache::HrPtr second = cache.GetOrBuild(
      key, 6, [&]() { return BuildFor(3, 6); }, &built, &poly);
  EXPECT_FALSE(built);
  EXPECT_EQ(first.get(), second.get());
  EXPECT_EQ(cache.stats().collisions, 0u);
}

}  // namespace
}  // namespace dbsa::service
