// Property tests for the four spatial baselines of Figure 4 (R*-tree,
// STR R-tree, quadtree, kd-tree) and the grid index: box queries must
// agree with a linear scan on every size x distribution combination.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "spatial/grid_index.h"
#include "spatial/kdtree.h"
#include "spatial/quadtree.h"
#include "spatial/rstar_tree.h"
#include "spatial/str_rtree.h"
#include "test_util.h"

namespace dbsa::spatial {
namespace {

std::vector<geom::Point> MakePoints(const std::string& dist, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<geom::Point> pts;
  pts.reserve(n);
  if (dist == "uniform") {
    for (size_t i = 0; i < n; ++i) {
      pts.push_back({rng.Uniform(0, 1000), rng.Uniform(0, 1000)});
    }
  } else if (dist == "clustered") {
    for (size_t i = 0; i < n; ++i) {
      const double cx = 100.0 + 200.0 * static_cast<double>(rng.Below(4));
      const double cy = 100.0 + 200.0 * static_cast<double>(rng.Below(4));
      pts.push_back({std::clamp(rng.Gaussian(cx, 30.0), 0.0, 1000.0),
                     std::clamp(rng.Gaussian(cy, 30.0), 0.0, 1000.0)});
    }
  } else {  // "diagonal": degenerate correlated data.
    for (size_t i = 0; i < n; ++i) {
      const double t = rng.Uniform(0, 1000);
      pts.push_back({t, std::clamp(t + rng.Gaussian(0, 5.0), 0.0, 1000.0)});
    }
  }
  return pts;
}

std::vector<uint32_t> BruteForce(const std::vector<geom::Point>& pts,
                                 const geom::Box& q) {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (q.Contains(pts[i])) out.push_back(static_cast<uint32_t>(i));
  }
  return out;
}

void ExpectSameIds(std::vector<uint32_t> got, std::vector<uint32_t> want,
                   const char* label) {
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  ASSERT_EQ(got, want) << label;
}

class SpatialIndexTest
    : public ::testing::TestWithParam<std::tuple<std::string, size_t>> {};

TEST_P(SpatialIndexTest, AllIndexesAgreeWithScan) {
  const auto [dist, n] = GetParam();
  const auto pts = MakePoints(dist, n, 1234);
  const geom::Box universe(0, 0, 1000, 1000);

  RStarTree rstar;
  for (size_t i = 0; i < pts.size(); ++i) {
    rstar.Insert(geom::Box(pts[i], pts[i]), static_cast<uint32_t>(i));
  }
  std::vector<StrRTree::Item> items;
  for (size_t i = 0; i < pts.size(); ++i) {
    items.push_back({geom::Box(pts[i], pts[i]), static_cast<uint32_t>(i)});
  }
  const StrRTree str = StrRTree::Build(std::move(items));
  const QuadTree quad(pts.data(), pts.size(), universe);
  const KdTree kd(pts.data(), pts.size());
  const GridIndex grid(pts.data(), pts.size(), universe, 32);

  Rng rng(99);
  std::vector<uint32_t> got;
  for (int q = 0; q < 40; ++q) {
    const double w = rng.Uniform(5, 300);
    const double h = rng.Uniform(5, 300);
    const double x0 = rng.Uniform(0, 1000 - w);
    const double y0 = rng.Uniform(0, 1000 - h);
    const geom::Box query(x0, y0, x0 + w, y0 + h);
    const auto want = BruteForce(pts, query);

    rstar.QueryBox(query, &got);
    ExpectSameIds(got, want, "rstar");
    str.QueryBox(query, &got);
    ExpectSameIds(got, want, "str");
    quad.QueryBox(query, &got);
    ExpectSameIds(got, want, "quad");
    kd.QueryBox(query, &got);
    ExpectSameIds(got, want, "kd");
    grid.QueryBox(query, &got);
    ExpectSameIds(got, want, "grid");
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SpatialIndexTest,
    ::testing::Combine(::testing::Values("uniform", "clustered", "diagonal"),
                       ::testing::Values(100u, 2000u, 20000u)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, size_t>>& info) {
      return std::get<0>(info.param) + "_n" + std::to_string(std::get<1>(info.param));
    });

TEST(RStarTreeTest, BoxEntriesAndDuplicates) {
  RStarTree tree;
  // Duplicate boxes and overlapping rectangles.
  for (uint32_t i = 0; i < 500; ++i) {
    const double x = static_cast<double>(i % 10);
    tree.Insert(geom::Box(x, 0, x + 5, 5), i);
  }
  std::vector<uint32_t> out;
  tree.QueryBox(geom::Box(0, 0, 20, 5), &out);
  EXPECT_EQ(out.size(), 500u);
  tree.QueryBox(geom::Box(100, 100, 101, 101), &out);
  EXPECT_TRUE(out.empty());
}

TEST(RStarTreeTest, ForcedReinsertOnOffEquivalence) {
  const auto pts = MakePoints("clustered", 5000, 7);
  RStarTree::Options no_reinsert;
  no_reinsert.forced_reinsert = false;
  RStarTree a;  // Default: reinsert on.
  RStarTree b(no_reinsert);
  for (size_t i = 0; i < pts.size(); ++i) {
    a.Insert(geom::Box(pts[i], pts[i]), static_cast<uint32_t>(i));
    b.Insert(geom::Box(pts[i], pts[i]), static_cast<uint32_t>(i));
  }
  EXPECT_EQ(a.size(), b.size());
  std::vector<uint32_t> ra, rb;
  const geom::Box q(100, 100, 400, 400);
  a.QueryBox(q, &ra);
  b.QueryBox(q, &rb);
  std::sort(ra.begin(), ra.end());
  std::sort(rb.begin(), rb.end());
  EXPECT_EQ(ra, rb);
}

TEST(RStarTreeTest, HeightGrowsLogarithmically) {
  RStarTree tree;
  Rng rng(3);
  for (uint32_t i = 0; i < 20000; ++i) {
    const geom::Point p{rng.Uniform(0, 1000), rng.Uniform(0, 1000)};
    tree.Insert(geom::Box(p, p), i);
  }
  EXPECT_LE(tree.height(), 6);
  EXPECT_GT(tree.MemoryBytes(), 0u);
}

TEST(StrRTreeTest, EmptyAndSingle) {
  const StrRTree empty = StrRTree::Build({});
  std::vector<uint32_t> out;
  empty.QueryBox(geom::Box(0, 0, 1, 1), &out);
  EXPECT_TRUE(out.empty());

  const StrRTree one = StrRTree::Build({{geom::Box(1, 1, 2, 2), 7}});
  one.QueryBox(geom::Box(0, 0, 3, 3), &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0], 7u);
}

TEST(QuadTreeTest, DeepClusterSafety) {
  // Many duplicate points would recurse forever without the depth cap.
  std::vector<geom::Point> pts(500, geom::Point{500, 500});
  const QuadTree quad(pts.data(), pts.size(), geom::Box(0, 0, 1000, 1000), 16, 12);
  std::vector<uint32_t> out;
  quad.QueryBox(geom::Box(499, 499, 501, 501), &out);
  EXPECT_EQ(out.size(), 500u);
}

TEST(KdTreeTest, DuplicateCoordinatesOnSplit) {
  std::vector<geom::Point> pts;
  for (int i = 0; i < 100; ++i) pts.push_back({50.0, static_cast<double>(i)});
  const KdTree kd(pts.data(), pts.size(), 4);
  std::vector<uint32_t> out;
  kd.QueryBox(geom::Box(50, 0, 50, 99), &out);
  EXPECT_EQ(out.size(), 100u);
}

TEST(GridIndexTest, CellAccessors) {
  const auto pts = MakePoints("uniform", 1000, 77);
  const GridIndex grid(pts.data(), pts.size(), geom::Box(0, 0, 1000, 1000), 10);
  size_t total = 0;
  for (uint32_t cy = 0; cy < 10; ++cy) {
    for (uint32_t cx = 0; cx < 10; ++cx) {
      total += grid.CellCount(cx, cy);
      grid.VisitCell(cx, cy, [&](uint32_t id) {
        EXPECT_TRUE(grid.CellBox(cx, cy).Contains(pts[id]));
      });
    }
  }
  EXPECT_EQ(total, pts.size());
}

}  // namespace
}  // namespace dbsa::spatial
