// Tests for the 1-D index layer: sorted arrays + prefix sums, the static
// B+-tree, and the RadixSpline learned index. Property: all three search
// strategies agree with std::lower_bound on every distribution tried.

#include <gtest/gtest.h>

#include <algorithm>

#include "index/btree.h"
#include "index/radix_spline.h"
#include "index/sorted_array.h"
#include "util/random.h"

namespace dbsa::index {
namespace {

std::vector<uint64_t> MakeKeys(const std::string& distribution, size_t n,
                               uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> keys(n);
  if (distribution == "uniform") {
    for (auto& k : keys) k = rng.Next() >> 16;
  } else if (distribution == "clustered") {
    uint64_t base = 0;
    for (auto& k : keys) {
      if (rng.Bernoulli(0.01)) base += rng.Below(1u << 30);
      k = base + rng.Below(1024);
    }
  } else if (distribution == "duplicates") {
    for (auto& k : keys) k = rng.Below(64) * 1000003;  // Long runs.
  } else if (distribution == "sequential") {
    for (size_t i = 0; i < n; ++i) keys[i] = i * 7;
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

TEST(SortedKeyArrayTest, LowerUpperBoundBasics) {
  const SortedKeyArray arr = SortedKeyArray::Build({5, 1, 3, 3, 9});
  EXPECT_EQ(arr.LowerBound(0), 0u);
  EXPECT_EQ(arr.LowerBound(1), 0u);
  EXPECT_EQ(arr.LowerBound(2), 1u);
  EXPECT_EQ(arr.LowerBound(3), 1u);
  EXPECT_EQ(arr.UpperBound(3), 3u);
  EXPECT_EQ(arr.LowerBound(10), 5u);
  EXPECT_EQ(arr.UpperBound(UINT64_MAX), 5u);
}

TEST(SortedKeyArrayTest, AgreesWithStdOnRandomKeys) {
  for (const char* dist : {"uniform", "clustered", "duplicates", "sequential"}) {
    const auto keys = MakeKeys(dist, 5000, 42);
    const SortedKeyArray arr = SortedKeyArray::Build(keys);
    Rng rng(7);
    for (int i = 0; i < 2000; ++i) {
      const uint64_t q = i % 2 == 0 ? keys[rng.Below(keys.size())] : rng.Next() >> 16;
      const size_t expected =
          std::lower_bound(keys.begin(), keys.end(), q) - keys.begin();
      ASSERT_EQ(arr.LowerBound(q), expected) << dist << " q=" << q;
    }
  }
}

TEST(PrefixSumIndexTest, RangeCountAndSum) {
  PrefixSumIndex idx = PrefixSumIndex::Build({10, 20, 30, 40, 50},
                                             {1.0, 2.0, 3.0, 4.0, 5.0});
  EXPECT_EQ(idx.RangeCount(10, 50), 5u);
  EXPECT_EQ(idx.RangeCount(15, 45), 3u);
  EXPECT_EQ(idx.RangeCount(51, 100), 0u);
  EXPECT_DOUBLE_EQ(idx.RangeSum(20, 40), 2.0 + 3.0 + 4.0);
  EXPECT_DOUBLE_EQ(idx.RangeSum(0, 9), 0.0);
}

TEST(PrefixSumIndexTest, UnsortedInputIsReorderedWithValues) {
  PrefixSumIndex idx = PrefixSumIndex::Build({30, 10, 20}, {3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(idx.RangeSum(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(idx.RangeSum(10, 20), 3.0);
  EXPECT_DOUBLE_EQ(idx.RangeSum(10, 30), 6.0);
}

TEST(PrefixSumIndexTest, MatchesBruteForceOnRandomData) {
  Rng rng(11);
  std::vector<uint64_t> keys(3000);
  std::vector<double> vals(3000);
  for (size_t i = 0; i < keys.size(); ++i) {
    keys[i] = rng.Below(10000);
    vals[i] = rng.Uniform(0, 10);
  }
  const PrefixSumIndex idx = PrefixSumIndex::Build(keys, vals);
  for (int t = 0; t < 300; ++t) {
    uint64_t lo = rng.Below(10000), hi = rng.Below(10000);
    if (lo > hi) std::swap(lo, hi);
    size_t count = 0;
    double sum = 0.0;
    for (size_t i = 0; i < keys.size(); ++i) {
      if (keys[i] >= lo && keys[i] <= hi) {
        ++count;
        sum += vals[i];
      }
    }
    ASSERT_EQ(idx.RangeCount(lo, hi), count);
    ASSERT_NEAR(idx.RangeSum(lo, hi), sum, 1e-6);
  }
}

TEST(StaticBTreeTest, RanksAgreeWithStd) {
  for (const char* dist : {"uniform", "clustered", "duplicates", "sequential"}) {
    const auto keys = MakeKeys(dist, 20000, 5);
    const StaticBTree tree = StaticBTree::Build(keys);
    Rng rng(13);
    for (int i = 0; i < 3000; ++i) {
      const uint64_t q = i % 2 == 0 ? keys[rng.Below(keys.size())] : rng.Next() >> 16;
      const size_t expected =
          std::lower_bound(keys.begin(), keys.end(), q) - keys.begin();
      ASSERT_EQ(tree.LowerBoundRank(q), expected) << dist << " q=" << q;
      const size_t expected_ub =
          std::upper_bound(keys.begin(), keys.end(), q) - keys.begin();
      ASSERT_EQ(tree.UpperBoundRank(q), expected_ub) << dist;
    }
  }
}

TEST(StaticBTreeTest, EmptyAndTiny) {
  const std::vector<uint64_t> empty;
  EXPECT_EQ(StaticBTree::Build(empty).LowerBoundRank(5), 0u);
  const std::vector<uint64_t> one{42};
  const StaticBTree t = StaticBTree::Build(one);
  EXPECT_EQ(t.LowerBoundRank(41), 0u);
  EXPECT_EQ(t.LowerBoundRank(42), 0u);
  EXPECT_EQ(t.LowerBoundRank(43), 1u);
}

class RadixSplineParamTest
    : public ::testing::TestWithParam<std::tuple<std::string, int, size_t>> {};

TEST_P(RadixSplineParamTest, LookupProtocolFindsLowerBound) {
  const auto [dist, radix_bits, err] = GetParam();
  const auto keys = MakeKeys(dist, 30000, 3);
  const RadixSpline rs = RadixSpline::Build(keys, radix_bits, err);
  const SortedKeyArray arr = SortedKeyArray::Build(keys);
  Rng rng(17);
  for (int i = 0; i < 3000; ++i) {
    const uint64_t q = i % 2 == 0 ? keys[rng.Below(keys.size())] : rng.Next() >> 16;
    const size_t expected =
        std::lower_bound(keys.begin(), keys.end(), q) - keys.begin();
    const SearchBound b = rs.Lookup(q);
    // The window start never overshoots the answer...
    ASSERT_LE(b.begin, expected) << dist << " q=" << q;
    // ...and the caller protocol (bounded search + fall-through past the
    // window end for duplicate runs) lands exactly.
    size_t pos = arr.LowerBoundFrom(q, b.begin, b.end);
    if (pos == b.end && pos < keys.size()) {
      pos = arr.LowerBoundFrom(q, pos, keys.size());
    }
    ASSERT_EQ(pos, expected) << dist << " q=" << q;
    // Keys present in the data are always inside the window itself.
    if (i % 2 == 0) {
      ASSERT_GE(b.end, expected + 1) << dist << " q=" << q;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, RadixSplineParamTest,
    ::testing::Combine(::testing::Values("uniform", "clustered", "duplicates",
                                         "sequential"),
                       ::testing::Values(8, 16), ::testing::Values(4u, 32u, 256u)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, int, size_t>>& info) {
      return std::get<0>(info.param) + "_r" +
             std::to_string(std::get<1>(info.param)) + "_e" +
             std::to_string(std::get<2>(info.param));
    });

TEST(RadixSplineTest, WindowWidthRespectsError) {
  const auto keys = MakeKeys("uniform", 50000, 9);
  for (const size_t err : {8u, 64u}) {
    const RadixSpline rs = RadixSpline::Build(keys, 16, err);
    Rng rng(19);
    double total_width = 0;
    const int probes = 2000;
    for (int i = 0; i < probes; ++i) {
      const uint64_t q = keys[rng.Below(keys.size())];
      const SearchBound b = rs.Lookup(q);
      total_width += static_cast<double>(b.end - b.begin);
    }
    // Mean window stays within a small multiple of the configured error
    // (the build measures the real corridor error, <= ~2x configured).
    EXPECT_LE(total_width / probes, 5.0 * static_cast<double>(err) + 4.0)
        << "err " << err;
  }
}

TEST(RadixSplineTest, FewerSplinePointsWithLargerError) {
  const auto keys = MakeKeys("clustered", 50000, 21);
  const RadixSpline tight = RadixSpline::Build(keys, 16, 4);
  const RadixSpline loose = RadixSpline::Build(keys, 16, 256);
  EXPECT_LT(loose.NumSplinePoints(), tight.NumSplinePoints());
  EXPECT_LT(loose.MemoryBytes(), tight.MemoryBytes() + 1);
}

TEST(RadixSplineTest, EmptyAndSingleton) {
  const std::vector<uint64_t> empty;
  const RadixSpline rs0 = RadixSpline::Build(empty, 8, 32);
  EXPECT_EQ(rs0.Lookup(123).begin, 0u);
  const std::vector<uint64_t> one{7};
  const RadixSpline rs1 = RadixSpline::Build(one, 8, 32);
  const SearchBound b = rs1.Lookup(7);
  EXPECT_EQ(b.begin, 0u);
  EXPECT_GE(b.end, 1u);
  EXPECT_EQ(rs1.Lookup(8).begin, 1u);
}

}  // namespace
}  // namespace dbsa::index
