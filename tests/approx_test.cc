// Tests for the classical approximation zoo (Section 2.1): every
// approximation must be conservative (contain the full geometry), and the
// quality ordering the Brinkhoff study reports must hold (hull tighter
// than MBR, CBR no worse than MBR, ...). Also demonstrates the paper's
// key observation that MBR-family approximations admit no tunable
// distance bound.

#include <gtest/gtest.h>

#include "approx/approximation.h"
#include "approx/clipped.h"
#include "approx/mbr.h"
#include "approx/ncorner.h"
#include "approx/quality.h"
#include "test_util.h"

namespace dbsa::approx {
namespace {

using dbsa::testing::MakeLPolygon;
using dbsa::testing::MakeStarPolygon;

constexpr ApproxKind kAllKinds[] = {
    ApproxKind::kMbr,     ApproxKind::kRotatedMbr, ApproxKind::kCircle,
    ApproxKind::kEllipse, ApproxKind::kConvexHull, ApproxKind::kNCorner,
    ApproxKind::kClippedMbr};

class ApproxConservativeTest
    : public ::testing::TestWithParam<std::tuple<ApproxKind, uint64_t>> {};

TEST_P(ApproxConservativeTest, ContainsAllPolygonSamples) {
  const auto [kind, seed] = GetParam();
  const geom::Polygon poly = MakeStarPolygon({100, 100}, 10, 25, 20, seed);
  const auto approx = BuildApproximation(kind, poly);
  ASSERT_NE(approx, nullptr);

  // Vertices and edge samples must all be inside the approximation.
  const geom::Ring& ring = poly.outer();
  for (size_t i = 0; i < ring.size(); ++i) {
    const geom::Point& a = ring[i];
    const geom::Point& b = ring[(i + 1) % ring.size()];
    for (int s = 0; s <= 8; ++s) {
      const geom::Point p = a + (b - a) * (s / 8.0);
      EXPECT_TRUE(approx->Contains(p))
          << ApproxKindName(kind) << " seed " << seed << " misses boundary sample";
    }
  }
  // Interior samples too.
  for (const geom::Point& p :
       dbsa::testing::RandomPoints(poly.bounds(), 300, seed * 7 + 1)) {
    if (poly.Contains(p)) {
      EXPECT_TRUE(approx->Contains(p))
          << ApproxKindName(kind) << " seed " << seed << " misses interior point";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ApproxConservativeTest,
    ::testing::Combine(::testing::ValuesIn(kAllKinds),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u)),
    [](const ::testing::TestParamInfo<std::tuple<ApproxKind, uint64_t>>& info) {
      std::string name = std::string(ApproxKindName(std::get<0>(info.param))) +
                         "_seed" + std::to_string(std::get<1>(info.param));
      for (char& c : name) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return name;
    });

TEST(ApproxTest, AreaAtLeastPolygonArea) {
  const geom::Polygon poly = MakeStarPolygon({0, 0}, 5, 9, 16, 11);
  for (const ApproxKind kind : kAllKinds) {
    const auto approx = BuildApproximation(kind, poly);
    EXPECT_GE(approx->Area() * (1 + 1e-9), poly.Area()) << ApproxKindName(kind);
  }
}

TEST(ApproxTest, TightnessOrdering) {
  // CH <= n-C, CH <= RMBR-ish orderings that hold by construction.
  const geom::Polygon poly = MakeStarPolygon({0, 0}, 5, 9, 24, 13);
  const auto mbr = BuildApproximation(ApproxKind::kMbr, poly);
  const auto cbr = BuildApproximation(ApproxKind::kClippedMbr, poly);
  const auto hull = BuildApproximation(ApproxKind::kConvexHull, poly);
  const auto ncorner = BuildApproximation(ApproxKind::kNCorner, poly);
  const auto rmbr = BuildApproximation(ApproxKind::kRotatedMbr, poly);
  EXPECT_LE(cbr->Area(), mbr->Area() + 1e-9);          // Clipping only removes.
  EXPECT_LE(hull->Area(), cbr->Area() + 1e-9);         // Hull is the tightest convex.
  EXPECT_LE(hull->Area(), ncorner->Area() + 1e-9);     // n-C encloses the hull.
  EXPECT_LE(rmbr->Area(), mbr->Area() * 1.0 + 1e-9);   // RMBR no worse than... not
  // guaranteed in general (RMBR minimizes over rotations, includes axis-
  // aligned), so it IS guaranteed:
  EXPECT_LE(rmbr->Area(), mbr->Area() + 1e-9);
}

TEST(ApproxTest, MbrMatchesBounds) {
  const geom::Polygon l_shape = MakeLPolygon(0, 0, 10);
  const MbrApproximation mbr(l_shape);
  EXPECT_DOUBLE_EQ(mbr.Area(), 100.0);
  EXPECT_TRUE(mbr.Contains({9, 9}));    // False positive region of the L.
  EXPECT_FALSE(l_shape.Contains({9, 9}));
}

TEST(ApproxTest, ClippedMbrCutsEmptyCorner) {
  // A triangle leaning on the diagonal leaves the (max,max)... the
  // (min,max)/(max,min) corners empty depending on orientation.
  geom::Polygon tri(geom::Ring{{0, 0}, {10, 0}, {0, 10}});
  tri.Normalize();
  const ClippedMbrApproximation cbr(tri);
  EXPECT_FALSE(cbr.Contains({9, 9}));  // Clipped away.
  EXPECT_TRUE(cbr.Contains({1, 1}));
  EXPECT_NEAR(cbr.Area(), 50.0, 1e-9);  // Half the MBR survives.
}

TEST(ApproxTest, QualityHausdorffOrderingForConcaveShape) {
  // The Hausdorff error of convex approximations of a deeply concave
  // star is large; the quality report must reflect it.
  const geom::Polygon star = MakeStarPolygon({0, 0}, 2, 12, 14, 17);
  const auto qualities = MeasureAllApproximations(star, 0.2);
  ASSERT_EQ(qualities.size(), 7u);
  for (const Quality& q : qualities) {
    EXPECT_GT(q.hausdorff, 1.0) << q.name << ": concave gaps are unavoidable";
    EXPECT_GE(q.area_ratio, 1.0 - 1e-9) << q.name;
  }
}

TEST(ApproxTest, NCornerHasAtMostNVertices) {
  const geom::Polygon star = MakeStarPolygon({0, 0}, 6, 9, 40, 23);
  for (int n : {3, 4, 5, 6, 8}) {
    NCornerApproximation nc(star, n);
    EXPECT_LE(nc.Outline(0).size(), static_cast<size_t>(n)) << "n=" << n;
    EXPECT_GE(nc.Outline(0).size(), 3u);
  }
}

TEST(ApproxTest, MemoryFootprintsAreSmall) {
  // The classical approximations trade precision for compactness — a few
  // scalars each (the design point the paper revisits).
  const geom::Polygon poly = MakeStarPolygon({0, 0}, 5, 9, 64, 29);
  const auto mbr = BuildApproximation(ApproxKind::kMbr, poly);
  const auto mbc = BuildApproximation(ApproxKind::kCircle, poly);
  EXPECT_LE(mbr->MemoryBytes(), 64u);
  EXPECT_LE(mbc->MemoryBytes(), 64u);
}

}  // namespace
}  // namespace dbsa::approx
