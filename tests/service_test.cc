// Tests for the concurrent query service: thread-pool basics, the
// batched Submit/Drain API, cache warm-up, and the load-bearing guarantee
// that a service run with many threads returns results BYTE-IDENTICAL to
// the single-threaded SpatialEngine on the same workload.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/dbsa.h"
#include "service/query_service.h"
#include "service/thread_pool.h"
#include "test_util.h"

namespace dbsa::service {
namespace {

// ------------------------------------------------------------ ThreadPool

TEST(ThreadPoolTest, ExecutesSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<int>> futures;
  futures.reserve(32);
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.Async([&counter, i]() {
      counter.fetch_add(1);
      return i * i;
    }));
  }
  for (int i = 0; i < 32; ++i) EXPECT_EQ(futures[i].get(), i * i);
  EXPECT_EQ(counter.load(), 32);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 1000;
  std::vector<std::atomic<int>> visits(kN);
  pool.ParallelFor(kN, [&](size_t i) { visits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, NestedParallelForFromWorkerDoesNotDeadlock) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  std::vector<std::future<void>> outer;
  // More outer tasks than threads, each nesting an inner loop: the inner
  // ParallelFor must make progress on the calling worker alone.
  for (int t = 0; t < 4; ++t) {
    outer.push_back(pool.Async([&]() {
      pool.ParallelFor(50, [&](size_t) { total.fetch_add(1); });
    }));
  }
  for (auto& f : outer) f.get();
  EXPECT_EQ(total.load(), 4 * 50);
}

TEST(ThreadPoolTest, ParallelForRethrowsBodyExceptionWithoutHanging) {
  // Regression: a throwing body used to strand the caller waiting for
  // done == n (the thrown iteration never counted) or terminate the
  // worker. The contract now: first exception rethrown on the caller,
  // remaining iterations drained, pool fully usable afterwards.
  ThreadPool pool(4);
  constexpr size_t kN = 200;
  std::atomic<int> ran{0};
  try {
    pool.ParallelFor(kN, [&](size_t i) {
      if (i == 17) throw std::runtime_error("iteration 17 failed");
      ran.fetch_add(1);
    });
    FAIL() << "ParallelFor must rethrow the body exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "iteration 17 failed");
  }
  EXPECT_LT(ran.load(), static_cast<int>(kN));  // 17 itself never counted.

  // Every iteration throws: still exactly one exception, no hang.
  EXPECT_THROW(
      pool.ParallelFor(kN, [](size_t) { throw std::runtime_error("all fail"); }),
      std::runtime_error);

  // The pool survives and runs clean loops afterwards.
  std::atomic<int> clean{0};
  pool.ParallelFor(kN, [&](size_t) { clean.fetch_add(1); });
  EXPECT_EQ(clean.load(), static_cast<int>(kN));
}

TEST(ThreadPoolTest, ParallelForExceptionFromNestedWorkerLoop) {
  // A pool worker nesting a throwing ParallelFor must get the exception
  // on its own (worker) thread and not wedge the outer loop.
  ThreadPool pool(2);
  std::atomic<int> caught{0};
  std::vector<std::future<void>> outer;
  for (int t = 0; t < 4; ++t) {
    outer.push_back(pool.Async([&]() {
      try {
        pool.ParallelFor(50, [&](size_t i) {
          if (i % 7 == 3) throw std::logic_error("nested failure");
        });
      } catch (const std::logic_error&) {
        caught.fetch_add(1);
      }
    }));
  }
  for (auto& f : outer) f.get();
  EXPECT_EQ(caught.load(), 4);
}

TEST(ThreadPoolTest, ZeroAndOneIterationLoops) {
  ThreadPool pool(2);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 1);
}

// ----------------------------------------------------------- the service

class QueryServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::TaxiConfig taxi_config;
    taxi_config.universe = geom::Box(0, 0, 4096, 4096);
    points_ = data::GenerateTaxiPoints(20000, taxi_config);

    data::RegionConfig region_config;
    region_config.universe = taxi_config.universe;
    region_config.num_polygons = 16;
    region_config.target_avg_vertices = 24;
    region_config.multi_fraction = 0.2;  // Exercise multi-part regions.
    regions_ = data::GenerateRegions(region_config);

    engine_.SetPoints(points_);
    engine_.SetRegions(regions_);
  }

  /// The mixed workload both executors run. Explicit modes (not kAuto):
  /// the service advertises its HR cache to the optimizer, so kAuto may
  /// legitimately pick different plans than the engine.
  std::vector<Request> MixedWorkload() const {
    std::vector<Request> reqs;
    const geom::Polygon star1 =
        dbsa::testing::MakeStarPolygon({2000, 2000}, 400, 900, 16, 11);
    const geom::Polygon star2 =
        dbsa::testing::MakeStarPolygon({1200, 2800}, 300, 700, 12, 23);
    for (const double eps : {4.0, 8.0, 16.0}) {
      for (const core::Mode mode :
           {core::Mode::kAct, core::Mode::kPointIndex, core::Mode::kCanvasBrj}) {
        reqs.push_back(Request::MakeAggregate(join::AggKind::kCount,
                                              core::Attr::kNone, eps, mode));
        reqs.push_back(Request::MakeAggregate(join::AggKind::kSum, core::Attr::kFare,
                                              eps, mode));
        reqs.push_back(Request::MakeAggregate(join::AggKind::kAvg,
                                              core::Attr::kPassengers, eps, mode));
      }
      reqs.push_back(Request::MakeCount(star1, eps));
      reqs.push_back(Request::MakeCount(star2, eps));
      reqs.push_back(Request::MakeSelect(star1, eps));
    }
    reqs.push_back(Request::MakeAggregate(join::AggKind::kCount, core::Attr::kNone,
                                          /*epsilon=*/0.0, core::Mode::kExact));
    return reqs;
  }

  /// Single-threaded reference execution through the engine façade.
  Response Baseline(const Request& req) {
    Response r;
    r.kind = req.kind;
    switch (req.kind) {
      case Request::Kind::kAggregate:
        r.aggregate = engine_.Aggregate(req.agg, req.attr, req.epsilon, req.mode);
        break;
      case Request::Kind::kCountInPolygon:
        r.range = engine_.CountInPolygon(req.poly, req.epsilon);
        break;
      case Request::Kind::kSelectInPolygon:
        r.ids = engine_.SelectInPolygon(req.poly, req.epsilon);
        break;
    }
    return r;
  }

  /// Byte-exact comparison of the query payloads (== on doubles, no
  /// tolerance: the determinism contract).
  static void ExpectIdentical(const Response& got, const Response& want,
                              size_t index) {
    ASSERT_EQ(got.kind, want.kind) << "request " << index;
    switch (want.kind) {
      case Request::Kind::kAggregate: {
        ASSERT_EQ(got.aggregate.rows.size(), want.aggregate.rows.size())
            << "request " << index;
        for (size_t r = 0; r < want.aggregate.rows.size(); ++r) {
          EXPECT_EQ(got.aggregate.rows[r].region, want.aggregate.rows[r].region)
              << "request " << index << " region " << r;
          EXPECT_EQ(got.aggregate.rows[r].value, want.aggregate.rows[r].value)
              << "request " << index << " region " << r;
          EXPECT_EQ(got.aggregate.rows[r].lo, want.aggregate.rows[r].lo)
              << "request " << index << " region " << r;
          EXPECT_EQ(got.aggregate.rows[r].hi, want.aggregate.rows[r].hi)
              << "request " << index << " region " << r;
        }
        break;
      }
      case Request::Kind::kCountInPolygon:
        EXPECT_EQ(got.range.estimate, want.range.estimate) << "request " << index;
        EXPECT_EQ(got.range.lo, want.range.lo) << "request " << index;
        EXPECT_EQ(got.range.hi, want.range.hi) << "request " << index;
        break;
      case Request::Kind::kSelectInPolygon:
        ASSERT_EQ(got.ids, want.ids) << "request " << index;
        break;
    }
  }

  data::PointSet points_;
  data::RegionSet regions_;
  core::SpatialEngine engine_;
};

TEST_F(QueryServiceTest, EightThreadsByteMatchSingleThreadedEngine) {
  // Duplicate the workload so the second half hits the warm cache —
  // cached approximations must not change a single bit of any answer.
  // (Via an explicit copy: self-range insert invalidates the source
  // iterators on reallocation and used to corrupt the duplicated half.)
  std::vector<Request> workload = MixedWorkload();
  const std::vector<Request> first_pass = workload;
  workload.insert(workload.end(), first_pass.begin(), first_pass.end());

  std::vector<Response> expected;
  expected.reserve(workload.size());
  for (const Request& req : workload) expected.push_back(Baseline(req));

  ServiceOptions options;
  options.num_threads = 8;
  options.cache_budget_bytes = size_t{32} << 20;
  QueryService service(engine_.Snapshot(), options);
  ASSERT_EQ(service.num_threads(), 8u);

  std::vector<uint64_t> tickets;
  tickets.reserve(workload.size());
  for (const Request& req : workload) tickets.push_back(service.Submit(req));
  const std::vector<Response> responses = service.DrainResponses();

  ASSERT_EQ(responses.size(), workload.size());
  for (size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].ticket, tickets[i]) << "Drain must keep submit order";
    ExpectIdentical(responses[i], expected[i], i);
  }

  // The duplicated half must have found the region approximations in the
  // cache: every (polygon, level) pair is built at most once.
  const ApproxCache::Stats stats = service.cache_stats();
  EXPECT_GT(stats.hits, 0u);
  EXPECT_GT(stats.misses, 0u);
  EXPECT_LE(stats.bytes_used, stats.budget_bytes);
}

TEST_F(QueryServiceTest, TypedFutureInterface) {
  QueryService service(engine_.Snapshot(), {});
  std::future<core::AggregateAnswer> agg = service.Aggregate(
      join::AggKind::kCount, core::Attr::kNone, 8.0, core::Mode::kPointIndex);
  const geom::Polygon star =
      dbsa::testing::MakeStarPolygon({2000, 2000}, 400, 900, 16, 11);
  std::future<join::ResultRange> range = service.CountInPolygon(star, 8.0);
  std::future<std::vector<uint32_t>> ids = service.SelectInPolygon(star, 8.0);

  const core::AggregateAnswer engine_agg =
      engine_.Aggregate(join::AggKind::kCount, core::Attr::kNone, 8.0,
                        core::Mode::kPointIndex);
  const core::AggregateAnswer service_agg = agg.get();
  ASSERT_EQ(service_agg.rows.size(), engine_agg.rows.size());
  for (size_t r = 0; r < engine_agg.rows.size(); ++r) {
    EXPECT_EQ(service_agg.rows[r].value, engine_agg.rows[r].value);
  }
  const join::ResultRange engine_range = engine_.CountInPolygon(star, 8.0);
  const join::ResultRange service_range = range.get();
  EXPECT_EQ(service_range.lo, engine_range.lo);
  EXPECT_EQ(service_range.hi, engine_range.hi);
  EXPECT_EQ(ids.get(), engine_.SelectInPolygon(star, 8.0));
}

TEST_F(QueryServiceTest, WarmCacheMakesAggregatesMissFree) {
  QueryService service(engine_.Snapshot(), {});
  service.WarmCache(8.0);
  const size_t polys = service.state().regions->NumPolygons();
  EXPECT_EQ(service.cache_stats().misses, polys);

  const core::AggregateAnswer answer =
      service
          .Aggregate(join::AggKind::kCount, core::Attr::kNone, 8.0,
                     core::Mode::kPointIndex)
          .get();
  EXPECT_EQ(answer.stats.hr_cache_misses, 0u);
  EXPECT_EQ(answer.stats.hr_cache_hits, polys);
}

TEST_F(QueryServiceTest, ColdAggregateReportsMissesThenHits) {
  QueryService service(engine_.Snapshot(), {});
  const size_t polys = service.state().regions->NumPolygons();
  const core::AggregateAnswer cold =
      service
          .Aggregate(join::AggKind::kCount, core::Attr::kNone, 8.0,
                     core::Mode::kPointIndex)
          .get();
  EXPECT_EQ(cold.stats.hr_cache_misses, polys);
  const core::AggregateAnswer warm =
      service
          .Aggregate(join::AggKind::kCount, core::Attr::kNone, 8.0,
                     core::Mode::kPointIndex)
          .get();
  EXPECT_EQ(warm.stats.hr_cache_misses, 0u);
  EXPECT_EQ(warm.stats.hr_cache_hits, polys);
}

TEST_F(QueryServiceTest, DrainSurvivesPoisonedQueriesMidBatch) {
  // Regression: Drain used to call future.get() bare — the first
  // throwing query aborted the drain, lost every later response and left
  // the abandoned futures to block elsewhere. Now each failed ticket
  // surfaces as an error Response in its submission slot and the drain
  // completes.
  QueryService service(engine_.Snapshot(), {});
  const geom::Polygon star =
      dbsa::testing::MakeStarPolygon({2000, 2000}, 400, 900, 16, 11);
  const geom::Polygon degenerate(geom::Ring{{0, 0}, {10, 10}});  // 2 vertices.

  std::vector<Request> workload;
  workload.push_back(Request::MakeCount(star, 8.0));  // Good.
  workload.push_back(Request::MakeAggregate(join::AggKind::kSum, core::Attr::kNone,
                                            8.0));    // Poisoned: SUM w/o column.
  workload.push_back(Request::MakeCount(star, 8.0));  // Good.
  workload.push_back(Request::MakeCount(degenerate, 8.0));  // Poisoned: 2 vertices.
  workload.push_back(Request::MakeSelect(star, 8.0));       // Good.

  std::vector<uint64_t> tickets;
  for (const Request& req : workload) tickets.push_back(service.Submit(req));
  const std::vector<Response> responses = service.DrainResponses();

  ASSERT_EQ(responses.size(), workload.size());  // No ticket lost.
  for (size_t i = 0; i < responses.size(); ++i) {
    EXPECT_EQ(responses[i].ticket, tickets[i]) << "ticket order kept, slot " << i;
    EXPECT_EQ(responses[i].kind, workload[i].kind) << "slot " << i;
  }
  EXPECT_TRUE(responses[0].ok());
  EXPECT_FALSE(responses[1].ok());
  EXPECT_NE(responses[1].error.find("attribute"), std::string::npos)
      << responses[1].error;
  EXPECT_TRUE(responses[2].ok());
  EXPECT_FALSE(responses[3].ok());
  EXPECT_NE(responses[3].error.find("vertices"), std::string::npos)
      << responses[3].error;
  EXPECT_TRUE(responses[4].ok());

  // The good responses are untouched by their poisoned neighbours.
  const join::ResultRange want = engine_.CountInPolygon(star, 8.0);
  for (const size_t good : {size_t{0}, size_t{2}}) {
    EXPECT_EQ(responses[good].range.lo, want.lo);
    EXPECT_EQ(responses[good].range.hi, want.hi);
  }
  EXPECT_EQ(responses[4].ids, engine_.SelectInPolygon(star, 8.0));

  // And the service stays fully usable after a poisoned batch.
  service.Submit(Request::MakeCount(star, 8.0));
  const std::vector<Response> after = service.DrainResponses();
  ASSERT_EQ(after.size(), 1u);
  EXPECT_TRUE(after[0].ok());
  EXPECT_EQ(after[0].range.hi, want.hi);
}

TEST_F(QueryServiceTest, SharedSnapshotServesManyServices) {
  // Two services over one snapshot: no copies of the tables or index, and
  // identical answers.
  const std::shared_ptr<const core::EngineState> snapshot = engine_.Snapshot();
  ServiceOptions options;
  options.num_threads = 2;
  QueryService a(snapshot, options);
  QueryService b(snapshot, options);
  const core::AggregateAnswer ra =
      a.Aggregate(join::AggKind::kSum, core::Attr::kFare, 8.0, core::Mode::kAct)
          .get();
  const core::AggregateAnswer rb =
      b.Aggregate(join::AggKind::kSum, core::Attr::kFare, 8.0, core::Mode::kAct)
          .get();
  ASSERT_EQ(ra.rows.size(), rb.rows.size());
  for (size_t r = 0; r < ra.rows.size(); ++r) {
    EXPECT_EQ(ra.rows[r].value, rb.rows[r].value);
  }
}

TEST_F(QueryServiceTest, AutoModeUsesTheCacheAdvertisement) {
  // Not a determinism check (plans may differ engine-vs-service by
  // design); just that kAuto works end to end and explains itself.
  QueryService service(engine_.Snapshot(), {});
  const core::AggregateAnswer answer =
      service.Aggregate(join::AggKind::kCount, core::Attr::kNone, 8.0).get();
  EXPECT_FALSE(answer.stats.explain.empty());
  EXPECT_FALSE(answer.rows.empty());
}

}  // namespace
}  // namespace dbsa::service
