// Acceptance tests for the v2 query envelope:
//
//   * every query kind runs through the envelope on all four execution
//     paths — single-threaded engine, pooled service, in-process sharded,
//     loopback transport seam — with BYTE-IDENTICAL payloads per pinned
//     plan, and every Result reports the achieved epsilon / HR level;
//   * ErrorBound semantics: kGridLevel pins the HR level exactly,
//     kAbsoluteDistance reproduces Grid::LevelForEpsilon snapping (one-ulp
//     sweep), kExact bypasses approximation and matches brute force;
//   * ExecOptions: deadlines and cancellation answer typed statuses,
//     the shard fan-out cap never changes results;
//   * the frozen v1 shim surface produces byte-identical answers to the
//     native envelope.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/dbsa.h"
#include "service/query_service.h"
#include "telemetry/trace.h"
#include "test_util.h"

namespace dbsa::service {
namespace {

using dbsa::testing::MakeRectPolygon;
using dbsa::testing::MakeStarPolygon;
using query::ErrorBound;

/// One envelope submission: the descriptor plus its contract.
struct Submission {
  Query query;
  ExecOptions options;
  std::string label;
};

class QueryEnvelopeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::TaxiConfig taxi_config;
    taxi_config.universe = geom::Box(0, 0, 4096, 4096);
    data::PointSet points = data::GenerateTaxiPoints(20000, taxi_config);
    // Fares stay RAW (non-dyadic): with the compensated SUM pipeline the
    // byte-identity contract no longer needs quantized attributes.
    data::RegionConfig region_config;
    region_config.universe = taxi_config.universe;
    region_config.num_polygons = 16;
    region_config.target_avg_vertices = 24;
    region_config.multi_fraction = 0.2;
    data::RegionSet regions = data::GenerateRegions(region_config);
    state_ = core::BuildEngineState(std::move(points), std::move(regions));
  }

  /// The mixed workload: every query kind under every bound regime, with
  /// aggregate plans pinned (the byte-identity contract is per pinned
  /// plan — kAuto may legitimately resolve differently across paths).
  std::vector<Submission> Workload() const {
    std::vector<Submission> subs;
    const geom::Polygon star = MakeStarPolygon({2000, 2000}, 400, 900, 16, 11);
    const geom::Polygon rect = MakeRectPolygon(600, 700, 1800, 1500);
    const std::vector<ErrorBound> bounds = {
        ErrorBound::Absolute(4.0), ErrorBound::Absolute(16.0),
        ErrorBound::AtLevel(8)};
    for (const ErrorBound& bound : bounds) {
      for (const core::Mode mode : {core::Mode::kPointIndex, core::Mode::kAct}) {
        ExecOptions options;
        options.bound = bound;
        options.mode = mode;
        subs.push_back({Query::Aggregate(join::AggKind::kCount), options,
                        "count-agg " + bound.ToString()});
        subs.push_back(
            {Query::Aggregate(join::AggKind::kSum, core::Attr::kFare), options,
             "sum-agg " + bound.ToString()});
        subs.push_back(
            {Query::Aggregate(join::AggKind::kAvg, core::Attr::kFare), options,
             "avg-agg " + bound.ToString()});
      }
      ExecOptions options;
      options.bound = bound;
      subs.push_back({Query::Count(star), options, "count " + bound.ToString()});
      subs.push_back({Query::Count(rect), options, "count " + bound.ToString()});
      subs.push_back({Query::Select(star), options, "select " + bound.ToString()});
    }
    // The exact regime: no approximation on any path.
    ExecOptions exact;
    exact.bound = ErrorBound::Exact();
    subs.push_back({Query::Aggregate(join::AggKind::kCount), exact, "exact agg"});
    subs.push_back({Query::Count(star), exact, "exact count"});
    subs.push_back({Query::Select(star), exact, "exact select"});
    return subs;
  }

  /// Path 1: the single-threaded engine — the envelope executed directly
  /// through the core bound-typed executors, no service, no pool.
  Result Baseline(const Submission& sub) const {
    Result r;
    r.kind = sub.query.kind();
    r.bound.requested = sub.options.bound;
    sub.query.Visit([&](const auto& spec) { BaselineSpec(spec, sub.options, &r); });
    r.status = Status::OK();
    return r;
  }

  void BaselineSpec(const AggregateSpec& spec, const ExecOptions& options,
                    Result* r) const {
    r->aggregate = core::ExecuteAggregate(*state_, spec.agg, spec.attr,
                                          options.bound, options.mode);
    r->bound.epsilon_achieved = r->aggregate.stats.achieved_epsilon;
    r->bound.hr_level = r->aggregate.stats.hr_level;
  }
  void BaselineSpec(const CountSpec& spec, const ExecOptions& options,
                    Result* r) const {
    const core::CountAnswer answer =
        core::ExecuteCount(*state_, spec.poly, options.bound);
    r->range = answer.range;
    r->bound.epsilon_achieved = answer.stats.achieved_epsilon;
    r->bound.hr_level = answer.stats.hr_level;
  }
  void BaselineSpec(const SelectSpec& spec, const ExecOptions& options,
                    Result* r) const {
    core::SelectAnswer answer = core::ExecuteSelect(*state_, spec.poly, options.bound);
    r->ids = std::move(answer.ids);
    r->bound.epsilon_achieved = answer.stats.achieved_epsilon;
    r->bound.hr_level = answer.stats.hr_level;
  }

  static void ExpectIdentical(const Result& got, const Result& want,
                              const std::string& label) {
    ASSERT_TRUE(got.ok()) << label << ": " << got.status.ToString();
    ASSERT_EQ(got.kind, want.kind) << label;
    switch (want.kind) {
      case QueryKind::kAggregate: {
        ASSERT_EQ(got.aggregate.rows.size(), want.aggregate.rows.size()) << label;
        for (size_t r = 0; r < want.aggregate.rows.size(); ++r) {
          EXPECT_EQ(got.aggregate.rows[r].region, want.aggregate.rows[r].region)
              << label << " region " << r;
          EXPECT_EQ(got.aggregate.rows[r].value, want.aggregate.rows[r].value)
              << label << " region " << r;
          EXPECT_EQ(got.aggregate.rows[r].lo, want.aggregate.rows[r].lo)
              << label << " region " << r;
          EXPECT_EQ(got.aggregate.rows[r].hi, want.aggregate.rows[r].hi)
              << label << " region " << r;
        }
        break;
      }
      case QueryKind::kCount:
        EXPECT_EQ(got.range.estimate, want.range.estimate) << label;
        EXPECT_EQ(got.range.lo, want.range.lo) << label;
        EXPECT_EQ(got.range.hi, want.range.hi) << label;
        break;
      case QueryKind::kSelect:
        ASSERT_EQ(got.ids, want.ids) << label;
        break;
    }
    // The achieved contract is part of the payload identity: every path
    // must report the same served bound.
    EXPECT_EQ(got.bound.epsilon_achieved, want.bound.epsilon_achieved) << label;
    EXPECT_EQ(got.bound.hr_level, want.bound.hr_level) << label;
    EXPECT_EQ(got.bound.requested, want.bound.requested) << label;
  }

  std::shared_ptr<const core::EngineState> state_;
};

// ---- the four-path byte-identity contract, restated over v2 ------------

TEST_F(QueryEnvelopeTest, EveryKindByteIdenticalOnAllFourPaths) {
  const std::vector<Submission> workload = Workload();
  std::vector<Result> baseline;
  baseline.reserve(workload.size());
  for (const Submission& sub : workload) baseline.push_back(Baseline(sub));

  struct PathConfig {
    std::string name;
    ServiceOptions options;
    ExecPath expected_path;
  };
  std::vector<PathConfig> paths;
  {
    PathConfig pooled;
    pooled.name = "pooled";
    pooled.options.num_threads = 8;
    pooled.expected_path = ExecPath::kLocal;
    paths.push_back(pooled);
    PathConfig sharded;
    sharded.name = "sharded";
    sharded.options.num_threads = 8;
    sharded.options.num_shards = 7;
    sharded.expected_path = ExecPath::kSharded;
    paths.push_back(sharded);
    PathConfig seam;
    seam.name = "transport";
    seam.options.num_threads = 8;
    seam.options.num_shards = 7;
    seam.options.use_transport = true;
    seam.expected_path = ExecPath::kTransport;
    paths.push_back(seam);
  }

  for (const PathConfig& path : paths) {
    QueryService service(state_, path.options);
    EXPECT_EQ(service.exec_path(), path.expected_path) << path.name;
    std::vector<uint64_t> tickets;
    tickets.reserve(workload.size());
    for (const Submission& sub : workload) {
      tickets.push_back(service.Submit(sub.query, sub.options));
    }
    const std::vector<Result> results = service.Drain();
    ASSERT_EQ(results.size(), workload.size()) << path.name;
    for (size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].ticket, tickets[i]) << path.name;
      EXPECT_EQ(results[i].bound.path, path.expected_path)
          << path.name << " " << workload[i].label;
      ExpectIdentical(results[i], baseline[i],
                      path.name + " " + workload[i].label);
      // Provenance consistency: every approximate query on a scattered
      // path must report its surviving shards — selects included
      // (regression: the transport select path used to report 0).
      if (path.expected_path != ExecPath::kLocal &&
          !workload[i].options.bound.exact() &&
          results[i].kind != QueryKind::kAggregate) {
        EXPECT_GT(results[i].bound.shards_probed, 0u)
            << path.name << " " << workload[i].label;
      }
    }
  }
}

TEST_F(QueryEnvelopeTest, CountAndSelectReportConsistentProvenance) {
  // cells_touched uses per-shard-slice accounting on every scattered path
  // and for every query kind (regression: selects used to report the raw
  // approximation cell count while counts reported slice cells).
  const geom::Polygon star = MakeStarPolygon({2000, 2000}, 400, 900, 16, 11);
  ExecOptions options;
  options.bound = ErrorBound::Absolute(4.0);
  for (const bool transport : {false, true}) {
    ServiceOptions service_options;
    service_options.num_threads = 4;
    service_options.num_shards = 7;
    service_options.use_transport = transport;
    QueryService service(state_, service_options);
    const Result count = service.Execute(Query::Count(star), options).get();
    const Result select = service.Execute(Query::Select(star), options).get();
    ASSERT_TRUE(count.ok() && select.ok()) << transport;
    EXPECT_EQ(count.bound.cells_touched, select.bound.cells_touched) << transport;
    EXPECT_EQ(count.bound.shards_probed, select.bound.shards_probed) << transport;
    EXPECT_GT(select.bound.cells_touched, 0u) << transport;
    EXPECT_GT(select.bound.shards_probed, 0u) << transport;
  }
}

// ---- ErrorBound semantics ----------------------------------------------

TEST_F(QueryEnvelopeTest, GridLevelRoundTripsThroughEpsilonAtEveryLevel) {
  // The identity kGridLevel leans on: AchievedEpsilon(L) snaps back to
  // exactly L, for every level of every grid (power-of-two cell scaling,
  // identically computed diagonals).
  for (const double side : {4096.0, 1.0, 12345.678}) {
    const raster::Grid grid({0.0, 0.0}, side);
    for (int level = 0; level <= raster::CellId::kMaxLevel; ++level) {
      EXPECT_EQ(grid.LevelForEpsilon(grid.AchievedEpsilon(level)), level)
          << "side " << side << " level " << level;
      EXPECT_EQ(ErrorBound::AtLevel(level).ServedLevel(grid), level);
      EXPECT_EQ(ErrorBound::AtLevel(level).EffectiveEpsilon(grid),
                grid.AchievedEpsilon(level));
    }
  }
}

TEST_F(QueryEnvelopeTest, GridLevelPinsTheServedLevelExactly) {
  QueryService service(state_, {});
  const geom::Polygon star = MakeStarPolygon({2000, 2000}, 400, 900, 16, 11);
  for (int level = 0; level <= 14; ++level) {
    ExecOptions options;
    options.bound = ErrorBound::AtLevel(level);
    const Result result = service.Execute(Query::Count(star), options).get();
    ASSERT_TRUE(result.ok()) << result.status.ToString();
    EXPECT_EQ(result.bound.hr_level, level) << "level " << level;
    EXPECT_EQ(result.bound.epsilon_achieved, state_->grid.AchievedEpsilon(level))
        << "level " << level;
  }
}

TEST_F(QueryEnvelopeTest, AbsoluteBoundReproducesLevelForEpsilonOneUlpSweep) {
  // kAbsoluteDistance must serve exactly the level LevelForEpsilon picks,
  // including one ulp either side of every exact level diagonal (the FP
  // snapping regression of PR 2, restated over the envelope).
  const raster::Grid& grid = state_->grid;
  for (int level = 0; level <= raster::CellId::kMaxLevel; ++level) {
    const double eps = grid.AchievedEpsilon(level);
    for (const double probe :
         {eps, std::nextafter(eps, std::numeric_limits<double>::infinity()),
          std::nextafter(eps, 0.0)}) {
      EXPECT_EQ(ErrorBound::Absolute(probe).ServedLevel(grid),
                grid.LevelForEpsilon(probe))
          << "level " << level << " probe " << probe;
    }
  }
  // Spot-check end to end: the serving layer reports the snapped level.
  QueryService service(state_, {});
  const geom::Polygon star = MakeStarPolygon({2000, 2000}, 400, 900, 16, 11);
  for (const double eps : {4.0, 8.0, 100.0}) {
    ExecOptions options;
    options.bound = ErrorBound::Absolute(eps);
    const Result result = service.Execute(Query::Count(star), options).get();
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.bound.hr_level, grid.LevelForEpsilon(eps));
    EXPECT_EQ(result.bound.epsilon_achieved,
              grid.AchievedEpsilon(grid.LevelForEpsilon(eps)));
    EXPECT_LE(result.bound.epsilon_achieved, eps);  // The paper's guarantee.
  }
}

TEST_F(QueryEnvelopeTest, ExactBoundBypassesApproximationAndMatchesBruteForce) {
  QueryService service(state_, {});
  const geom::Polygon star = MakeStarPolygon({2000, 2000}, 400, 900, 16, 11);

  // Brute force reference.
  double inside = 0.0;
  std::vector<uint32_t> inside_ids;
  for (uint32_t i = 0; i < state_->points->size(); ++i) {
    if (star.Contains(state_->points->locs[i])) {
      inside += 1.0;
      inside_ids.push_back(i);
    }
  }

  ExecOptions exact;
  exact.bound = ErrorBound::Exact();
  const Result count = service.Execute(Query::Count(star), exact).get();
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.range.estimate, inside);
  EXPECT_EQ(count.range.lo, inside);  // Exact: the range collapses.
  EXPECT_EQ(count.range.hi, inside);
  EXPECT_EQ(count.bound.hr_level, -1);
  EXPECT_EQ(count.bound.epsilon_achieved, 0.0);
  EXPECT_EQ(count.bound.cells_touched, 0u);

  const Result select = service.Execute(Query::Select(star), exact).get();
  ASSERT_TRUE(select.ok());
  EXPECT_EQ(select.ids, inside_ids);

  // An approximate count at a finite bound must contain the exact answer
  // in its guaranteed range (the distance-bound contract itself).
  ExecOptions approx;
  approx.bound = ErrorBound::Absolute(16.0);
  const Result ranged = service.Execute(Query::Count(star), approx).get();
  ASSERT_TRUE(ranged.ok());
  EXPECT_LE(ranged.range.lo, inside);
  EXPECT_GE(ranged.range.hi, inside);
}

// ---- ExecOptions: deadline, cancellation, fan-out cap ------------------

TEST_F(QueryEnvelopeTest, ExpiredDeadlineAnswersTypedStatus) {
  QueryService service(state_, {});
  ExecOptions options;
  options.bound = ErrorBound::Absolute(8.0);
  options.deadline_ms = 1e-6;  // Expires before any worker can pick it up.
  const geom::Polygon star = MakeStarPolygon({2000, 2000}, 400, 900, 16, 11);
  const Result result = service.Execute(Query::Count(star), options).get();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kDeadlineExceeded);
  // The batch path delivers the same status in the ticket's slot.
  service.Submit(Query::Count(star), options);
  const std::vector<Result> drained = service.Drain();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].status.code(), StatusCode::kDeadlineExceeded);
}

TEST_F(QueryEnvelopeTest, CancelledTokenAnswersTypedStatus) {
  QueryService service(state_, {});
  auto token = std::make_shared<CancelToken>();
  ExecOptions options;
  options.bound = ErrorBound::Absolute(8.0);
  options.cancel = token;
  token->Cancel();  // Cancelled while "queued".
  const geom::Polygon star = MakeStarPolygon({2000, 2000}, 400, 900, 16, 11);
  const Result result = service.Execute(Query::Count(star), options).get();
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status.code(), StatusCode::kCancelled);

  // An uncancelled token changes nothing.
  auto live = std::make_shared<CancelToken>();
  options.cancel = live;
  EXPECT_TRUE(service.Execute(Query::Count(star), options).get().ok());
}

TEST_F(QueryEnvelopeTest, FanOutCapNeverChangesResults) {
  ServiceOptions service_options;
  service_options.num_threads = 8;
  service_options.num_shards = 7;
  QueryService service(state_, service_options);
  const geom::Polygon star = MakeStarPolygon({2000, 2000}, 400, 900, 16, 11);
  for (const size_t cap : {size_t{0}, size_t{1}, size_t{2}, size_t{64}}) {
    ExecOptions options;
    options.bound = ErrorBound::Absolute(4.0);
    options.max_shard_fanout = cap;
    options.mode = core::Mode::kPointIndex;
    const Result count = service.Execute(Query::Count(star), options).get();
    const Result agg =
        service.Execute(Query::Aggregate(join::AggKind::kSum, core::Attr::kFare),
                        options)
            .get();
    ASSERT_TRUE(count.ok() && agg.ok()) << "cap " << cap;
    const core::CountAnswer want = core::ExecuteCount(
        *state_, star, ErrorBound::Absolute(4.0));
    EXPECT_EQ(count.range.estimate, want.range.estimate) << "cap " << cap;
    EXPECT_EQ(count.range.lo, want.range.lo) << "cap " << cap;
    EXPECT_EQ(count.range.hi, want.range.hi) << "cap " << cap;
    const core::AggregateAnswer want_agg =
        core::ExecuteAggregate(*state_, join::AggKind::kSum, core::Attr::kFare,
                               ErrorBound::Absolute(4.0), core::Mode::kPointIndex);
    ASSERT_EQ(agg.aggregate.rows.size(), want_agg.rows.size()) << "cap " << cap;
    for (size_t r = 0; r < want_agg.rows.size(); ++r) {
      EXPECT_EQ(agg.aggregate.rows[r].value, want_agg.rows[r].value)
          << "cap " << cap << " region " << r;
    }
  }
}

// ---- typed failure statuses --------------------------------------------

TEST_F(QueryEnvelopeTest, MalformedQueriesAnswerInvalidArgument) {
  QueryService service(state_, {});
  const geom::Polygon degenerate(geom::Ring{{0, 0}, {10, 10}});  // 2 vertices.
  const geom::Polygon star = MakeStarPolygon({2000, 2000}, 400, 900, 16, 11);

  ExecOptions ok_bound;
  ok_bound.bound = ErrorBound::Absolute(8.0);
  // SUM without a column.
  Result r = service.Execute(Query::Aggregate(join::AggKind::kSum), ok_bound).get();
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status.message().find("attribute"), std::string::npos);
  // Degenerate polygon.
  r = service.Execute(Query::Count(degenerate), ok_bound).get();
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(r.status.message().find("vertices"), std::string::npos);
  // NaN bound.
  ExecOptions nan_bound;
  nan_bound.bound = ErrorBound::Absolute(std::nan(""));
  r = service.Execute(Query::Count(star), nan_bound).get();
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  // Out-of-range level.
  ExecOptions bad_level;
  bad_level.bound = ErrorBound::AtLevel(raster::CellId::kMaxLevel + 1);
  r = service.Execute(Query::Count(star), bad_level).get();
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);
  bad_level.bound = ErrorBound::AtLevel(-1);
  r = service.Execute(Query::Count(star), bad_level).get();
  EXPECT_EQ(r.status.code(), StatusCode::kInvalidArgument);

  // A poisoned ticket mid-batch keeps its slot and its typed status.
  service.Submit(Query::Count(star), ok_bound);
  service.Submit(Query::Aggregate(join::AggKind::kSum), ok_bound);
  service.Submit(Query::Count(star), ok_bound);
  const std::vector<Result> drained = service.Drain();
  ASSERT_EQ(drained.size(), 3u);
  EXPECT_TRUE(drained[0].ok());
  EXPECT_EQ(drained[1].status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(drained[2].ok());
  EXPECT_EQ(drained[0].range.estimate, drained[2].range.estimate);
}

TEST_F(QueryEnvelopeTest, V1TypedFuturesKeepThrowingInvalidArgument) {
  // The frozen v1 contract: validation failures surfaced as
  // std::invalid_argument from future.get(). The shims must preserve the
  // exception TYPE, not just the message — v1 catch handlers written
  // against std::invalid_argument must keep firing.
  QueryService service(state_, {});
  std::future<core::AggregateAnswer> bad =
      service.Aggregate(join::AggKind::kSum, core::Attr::kNone, 8.0);
  EXPECT_THROW(bad.get(), std::invalid_argument);
  const geom::Polygon degenerate(geom::Ring{{0, 0}, {10, 10}});
  std::future<join::ResultRange> bad_count = service.CountInPolygon(degenerate, 8.0);
  EXPECT_THROW(bad_count.get(), std::invalid_argument);
}

// ---- telemetry: observe-only tracing, slow-query log, metrics ----------

TEST_F(QueryEnvelopeTest, TelemetryIsObserveOnlyOnEveryPath) {
  // The tentpole invariant: result payloads are BYTE-IDENTICAL with
  // tracing and slow-query logging on or off, on every execution path at
  // pinned plan. Telemetry observes; it never steers.
  const std::vector<Submission> workload = Workload();
  struct PathConfig {
    size_t num_shards;
    bool use_transport;
  };
  for (const PathConfig& path :
       {PathConfig{0, false}, PathConfig{7, false}, PathConfig{7, true}}) {
    ServiceOptions off;
    off.num_threads = 4;
    off.num_shards = path.num_shards;
    off.use_transport = path.use_transport;
    off.enable_tracing = false;
    ServiceOptions on = off;
    on.enable_tracing = true;
    on.slow_query_ms = 1e-6;  // Every query "slow": the log path runs too.
    on.slow_query_sink = [](const std::string&) {};

    QueryService traced(state_, on);
    QueryService untraced(state_, off);
    for (const Submission& sub : workload) {
      traced.Submit(sub.query, sub.options);
      untraced.Submit(sub.query, sub.options);
    }
    const std::vector<Result> with = traced.Drain();
    const std::vector<Result> without = untraced.Drain();
    ASSERT_EQ(with.size(), workload.size());
    ASSERT_EQ(without.size(), workload.size());
    for (size_t i = 0; i < workload.size(); ++i) {
      ExpectIdentical(with[i], without[i],
                      (path.use_transport
                           ? std::string("transport ")
                           : path.num_shards > 0 ? std::string("sharded ")
                                                 : std::string("pooled ")) +
                          workload[i].label);
      // Tracing surfaces the id; disabled tracing reports zero.
      EXPECT_NE(with[i].bound.trace_hi | with[i].bound.trace_lo, 0u);
      EXPECT_EQ(without[i].bound.trace_hi | without[i].bound.trace_lo, 0u);
    }
  }
}

TEST_F(QueryEnvelopeTest, SlowQueryLogCarriesTheFullSpanTable) {
  // A deliberately "slowed" query (threshold below any real latency) must
  // emit ONE structured line per query carrying the trace id from the
  // result and a span table covering every serving stage of the
  // transport path.
  std::mutex mu;
  std::vector<std::string> lines;
  ServiceOptions options;
  options.num_threads = 1;
  options.num_shards = 4;
  options.use_transport = true;
  options.slow_query_ms = 1e-6;
  options.slow_query_sink = [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  };
  QueryService service(state_, options);

  const geom::Polygon star = MakeStarPolygon({2000, 2000}, 400, 900, 16, 11);
  ExecOptions exec;
  exec.bound = ErrorBound::Absolute(4.0);
  const Result result = service.Execute(Query::Count(star), exec).get();
  ASSERT_TRUE(result.ok());

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(lines.size(), 1u);
  const std::string& line = lines[0];
  EXPECT_NE(line.find("SLOW_QUERY"), std::string::npos) << line;
  EXPECT_NE(line.find("trace=" + telemetry::TraceIdHex(result.bound.trace_hi,
                                                       result.bound.trace_lo)),
            std::string::npos)
      << line;
  EXPECT_NE(line.find("kind=count"), std::string::npos) << line;
  EXPECT_NE(line.find("status=OK"), std::string::npos) << line;
  // The span table covers the whole stack: admission, the execute stage,
  // HR acquisition, routing, at least one per-shard roundtrip, and the
  // partial-combining stage (aggregates record "merge"; selects "gather").
  for (const char* stage :
       {"admission@", "execute@", "route@", "shard_roundtrip{shard=",
        "merge@"}) {
    EXPECT_NE(line.find(stage), std::string::npos) << stage << " in " << line;
  }
  const bool hr_span = line.find("hr_build@") != std::string::npos ||
                       line.find("cache_lookup@") != std::string::npos;
  EXPECT_TRUE(hr_span) << line;
}

TEST_F(QueryEnvelopeTest, RegistryCoversTheWholeServingStack) {
  // One shared registry: per-kind query counters and latency histograms,
  // per-shard scatter counters from the loopback shard servers, cache
  // gauges, per-stage histograms — all render from QueryService::registry().
  ServiceOptions options;
  options.num_threads = 2;
  options.num_shards = 3;
  options.use_transport = true;
  QueryService service(state_, options);
  const geom::Polygon star = MakeStarPolygon({2000, 2000}, 400, 900, 16, 11);
  ExecOptions exec;
  exec.bound = ErrorBound::Absolute(4.0);
  ASSERT_TRUE(service.Execute(Query::Count(star), exec).get().ok());
  ASSERT_TRUE(service.Execute(Query::Select(star), exec).get().ok());

  const std::string text = service.registry()->RenderText();
  EXPECT_NE(text.find("dbsa_queries_total{kind=\"count\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("dbsa_queries_total{kind=\"select\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("dbsa_query_latency_ms_count{kind=\"count\"} 1"),
            std::string::npos);
  // Every loopback shard server labels its metrics with its index and
  // records into the SAME registry.
  for (const char* series :
       {"dbsa_shard_scatter_requests_total{shard=\"0\"}",
        "dbsa_shard_scatter_requests_total{shard=\"1\"}",
        "dbsa_shard_scatter_requests_total{shard=\"2\"}"}) {
    const size_t pos = text.find(series);
    ASSERT_NE(pos, std::string::npos) << series;
    // The count after the series name is non-zero (both queries fanned
    // out across all three shards).
    EXPECT_NE(text.substr(pos + std::string(series).size(), 2), " 0")
        << series;
  }
  EXPECT_NE(text.find("dbsa_approx_cache_misses_total"), std::string::npos);
  EXPECT_NE(text.find("dbsa_loopback_messages_total"), std::string::npos);
  // Per-stage histograms exist under the spliced-label scheme.
  EXPECT_NE(text.find("dbsa_stage_ms_bucket{stage=\"route\""),
            std::string::npos);
  EXPECT_NE(text.find("dbsa_stage_ms_count{stage=\"shard_roundtrip\"}"),
            std::string::npos);
}

// ---- the frozen v1 shim ------------------------------------------------

TEST_F(QueryEnvelopeTest, V1ShimMatchesNativeEnvelope) {
  const geom::Polygon star = MakeStarPolygon({2000, 2000}, 400, 900, 16, 11);
  std::vector<Request> v1;
  for (const double eps : {4.0, 16.0}) {
    v1.push_back(Request::MakeAggregate(join::AggKind::kSum, core::Attr::kFare,
                                        eps, core::Mode::kPointIndex));
    v1.push_back(Request::MakeCount(star, eps));
    v1.push_back(Request::MakeSelect(star, eps));
  }

  ServiceOptions options;
  options.num_threads = 4;
  QueryService via_shim(state_, options);
  QueryService native(state_, options);
  for (const Request& req : v1) via_shim.Submit(req);
  for (const Request& req : v1) {
    native.Submit(QueryFromV1(req), OptionsFromV1(req));
  }
  const std::vector<Response> shim_responses = via_shim.DrainResponses();
  const std::vector<Result> native_results = native.Drain();
  ASSERT_EQ(shim_responses.size(), v1.size());
  ASSERT_EQ(native_results.size(), v1.size());
  for (size_t i = 0; i < v1.size(); ++i) {
    const Response& s = shim_responses[i];
    const Result& n = native_results[i];
    ASSERT_TRUE(s.ok() && n.ok()) << i;
    ASSERT_EQ(s.aggregate.rows.size(), n.aggregate.rows.size()) << i;
    for (size_t r = 0; r < n.aggregate.rows.size(); ++r) {
      EXPECT_EQ(s.aggregate.rows[r].value, n.aggregate.rows[r].value) << i;
    }
    EXPECT_EQ(s.range.estimate, n.range.estimate) << i;
    EXPECT_EQ(s.range.lo, n.range.lo) << i;
    EXPECT_EQ(s.range.hi, n.range.hi) << i;
    EXPECT_EQ(s.ids, n.ids) << i;
  }
}

}  // namespace
}  // namespace dbsa::service
