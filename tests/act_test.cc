// Tests for the Adaptive Cell Trie: lookups must agree with the
// HierarchicalRaster classification it was built from, across radix
// widths; multi-polygon overlap handling; memory accounting.

#include <gtest/gtest.h>

#include "index/act.h"
#include "raster/grid.h"
#include "raster/hierarchical_raster.h"
#include "test_util.h"

namespace dbsa::index {
namespace {

using dbsa::testing::MakeRectPolygon;
using dbsa::testing::MakeStarPolygon;
using raster::CellId;
using raster::CellKind;
using raster::Grid;
using raster::HierarchicalRaster;

TEST(ActTest, SingleCellInsertLookup) {
  ActIndex act(3);
  const CellId cell = CellId::FromXY(6, 10, 20);
  act.Insert(cell, 42, /*boundary=*/false);
  ActMatch m;
  EXPECT_TRUE(act.LookupFirst(cell.LeafKeyMin(), &m));
  EXPECT_EQ(m.value, 42u);
  EXPECT_FALSE(m.boundary);
  EXPECT_TRUE(act.LookupFirst(cell.LeafKeyMax(), &m));
  // A key just outside misses.
  EXPECT_FALSE(act.LookupFirst(cell.LeafKeyMax() + 1, &m));
}

TEST(ActTest, BoundaryFlagRoundTrips) {
  ActIndex act(3);
  act.Insert(CellId::FromXY(4, 1, 1), 7, /*boundary=*/true);
  ActMatch m;
  ASSERT_TRUE(act.LookupFirst(CellId::FromXY(4, 1, 1).LeafKeyMin(), &m));
  EXPECT_TRUE(m.boundary);
}

TEST(ActTest, NonAlignedLevelsReplicateCorrectly) {
  // A cell whose level is inside a node span covers multiple slots; all
  // leaf keys under it must hit.
  ActIndex act(3);  // Node spans 3 quad levels.
  const CellId cell = CellId::FromXY(4, 3, 2);  // Level 4 = mid-node.
  act.Insert(cell, 9, false);
  // Probe many leaf keys across the cell's range.
  const uint64_t lo = cell.LeafKeyMin();
  const uint64_t hi = cell.LeafKeyMax();
  const uint64_t step = (hi - lo) / 37 + 1;
  ActMatch m;
  for (uint64_t k = lo; k <= hi; k += step) {
    ASSERT_TRUE(act.LookupFirst(k, &m)) << "key " << k;
    ASSERT_EQ(m.value, 9u);
  }
  EXPECT_FALSE(act.LookupFirst(lo - 1, &m));
}

class ActRadixWidthTest : public ::testing::TestWithParam<int> {};

TEST_P(ActRadixWidthTest, AgreesWithHierarchicalRaster) {
  const int levels_per_node = GetParam();
  const Grid grid({0, 0}, 256.0);
  const geom::Polygon star = MakeStarPolygon({128, 128}, 40, 90, 18, 33);
  const HierarchicalRaster hr = HierarchicalRaster::BuildEpsilon(star, grid, 4.0);

  ActIndex act(levels_per_node);
  for (const raster::HrCell& cell : hr.cells()) {
    act.Insert(cell.id, 1, cell.boundary);
  }

  for (const geom::Point& p :
       dbsa::testing::RandomPoints(geom::Box(10, 10, 246, 246), 3000, 77)) {
    const CellKind kind = hr.Classify(p, grid);
    ActMatch m;
    const bool hit = act.LookupFirst(grid.LeafKey(p), &m);
    ASSERT_EQ(hit, kind != CellKind::kOutside)
        << "radix " << levels_per_node << " at " << p.x << "," << p.y;
    if (hit) {
      ASSERT_EQ(m.boundary, kind == CellKind::kBoundary);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RadixWidths, ActRadixWidthTest, ::testing::Values(1, 2, 3, 4),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "bits" + std::to_string(2 * info.param);
                         });

TEST(ActTest, OverlappingPolygonsReturnAllMatches) {
  // Conservative boundary cells of adjacent polygons overlap; Lookup
  // returns every polygon claiming the cell.
  ActIndex act(3);
  const CellId cell = CellId::FromXY(8, 100, 100);
  act.Insert(cell, 1, true);
  act.Insert(cell, 2, true);
  act.Insert(cell.Parent(), 3, false);  // Coarser cell of a third polygon.
  std::vector<ActMatch> matches;
  act.Lookup(cell.LeafKeyMin(), &matches);
  ASSERT_EQ(matches.size(), 3u);
  std::vector<uint32_t> values;
  for (const ActMatch& m : matches) values.push_back(m.value);
  std::sort(values.begin(), values.end());
  EXPECT_EQ(values, (std::vector<uint32_t>{1, 2, 3}));
}

TEST(ActTest, CoarseCellsResolveNearRoot) {
  // Coarse interior cells must not force deep traversals: index one
  // level-2 cell; node count stays minimal.
  ActIndex act(3);
  act.Insert(CellId::FromXY(2, 1, 1), 5, false);
  EXPECT_EQ(act.NumNodes(), 1u);  // Root only: level 2 < 3 spans root node.
  ActMatch m;
  EXPECT_TRUE(act.LookupFirst(CellId::FromXY(2, 1, 1).LeafKeyMin() + 12345, &m));
}

TEST(ActTest, MemoryGrowsWithCells) {
  const Grid grid({0, 0}, 256.0);
  const geom::Polygon star = MakeStarPolygon({128, 128}, 40, 90, 18, 3);
  ActIndex coarse(3), fine(3);
  const HierarchicalRaster coarse_hr = HierarchicalRaster::BuildEpsilon(star, grid, 16.0);
  for (const raster::HrCell& c : coarse_hr.cells()) {
    coarse.Insert(c.id, 0, c.boundary);
  }
  const HierarchicalRaster fine_hr = HierarchicalRaster::BuildEpsilon(star, grid, 1.0);
  for (const raster::HrCell& c : fine_hr.cells()) {
    fine.Insert(c.id, 0, c.boundary);
  }
  EXPECT_GT(fine.MemoryBytes(), coarse.MemoryBytes());
}

TEST(ActTest, TilingRegionsPartitionLookups) {
  // Two adjacent rectangles with center-assigned cells: every probe hits
  // at most one region.
  const Grid grid({0, 0}, 64.0);
  const geom::Polygon left = MakeRectPolygon(8, 8, 32, 56);
  const geom::Polygon right = MakeRectPolygon(32, 8, 56, 56);
  ActIndex act(3);
  int inserted = 0;
  for (const auto* poly : {&left, &right}) {
    const HierarchicalRaster hr = HierarchicalRaster::BuildEpsilon(*poly, grid, 2.0);
    for (const raster::HrCell& cell : hr.cells()) {
      if (cell.boundary && !poly->Contains(grid.CellBox(cell.id).Center())) continue;
      act.Insert(cell.id, poly == &left ? 0 : 1, cell.boundary);
      ++inserted;
    }
  }
  ASSERT_GT(inserted, 0);
  std::vector<ActMatch> matches;
  for (const geom::Point& p :
       dbsa::testing::RandomPoints(geom::Box(9, 9, 55, 55), 2000, 5)) {
    act.Lookup(grid.LeafKey(p), &matches);
    ASSERT_LE(matches.size(), 1u) << "at " << p.x << "," << p.y;
  }
}

}  // namespace
}  // namespace dbsa::index
