// Tests for the synthetic data generators: the tiling property (every
// point in exactly one region), vertex-count calibration, determinism,
// and workload generators.

#include <gtest/gtest.h>

#include "data/regions.h"
#include "data/taxi.h"
#include "data/workload.h"
#include "test_util.h"

namespace dbsa::data {
namespace {

TEST(TaxiTest, PointsInsideUniverseAndDeterministic) {
  TaxiConfig config;
  const PointSet a = GenerateTaxiPoints(20000, config);
  const PointSet b = GenerateTaxiPoints(20000, config);
  ASSERT_EQ(a.size(), 20000u);
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(config.universe.Contains(a.locs[i])) << i;
    ASSERT_EQ(a.locs[i], b.locs[i]) << "non-deterministic at " << i;
  }
}

TEST(TaxiTest, AttributesInRange) {
  const PointSet pts = GenerateTaxiPoints(10000);
  for (size_t i = 0; i < pts.size(); ++i) {
    ASSERT_GT(pts.fare[i], 0.0);
    ASSERT_LT(pts.fare[i], 1000.0);
    ASSERT_GE(pts.passengers[i], 1);
    ASSERT_LE(pts.passengers[i], 6);
    ASSERT_LT(pts.hour[i], 24);
  }
}

TEST(TaxiTest, HotspotSkewExists) {
  // The hotspot mixture must concentrate mass: the densest 1% of a
  // coarse grid holds far more than 1% of points.
  TaxiConfig config;
  const PointSet pts = GenerateTaxiPoints(50000, config);
  constexpr int kRes = 32;
  std::vector<size_t> counts(kRes * kRes, 0);
  for (const geom::Point& p : pts.locs) {
    const int cx = std::min<int>(
        static_cast<int>((p.x - config.universe.min.x) / config.universe.Width() * kRes),
        kRes - 1);
    const int cy = std::min<int>(
        static_cast<int>((p.y - config.universe.min.y) / config.universe.Height() * kRes),
        kRes - 1);
    ++counts[cy * kRes + cx];
  }
  std::sort(counts.rbegin(), counts.rend());
  size_t top = 0;
  for (int i = 0; i < kRes * kRes / 100; ++i) top += counts[i];
  EXPECT_GT(static_cast<double>(top) / pts.size(), 0.05);
}

TEST(RegionsTest, TilingPropertyHolds) {
  // Every random point belongs to exactly one polygon — the invariant the
  // approximate joins rely on (and real admin boundaries satisfy).
  for (const size_t k : {5u, 64u, 289u}) {
    RegionConfig config;
    config.universe = geom::Box(0, 0, 4096, 4096);
    config.num_polygons = k;
    config.target_avg_vertices = 30;
    config.seed = k;
    const RegionSet regions = GenerateRegions(config);
    ASSERT_EQ(regions.polys.size(), k);
    for (const geom::Polygon& poly : regions.polys) {
      ASSERT_TRUE(poly.IsValid());
    }
    const auto pts =
        dbsa::testing::RandomPoints(geom::Box(10, 10, 4086, 4086), 3000, k + 1);
    size_t multi = 0, none = 0;
    for (const geom::Point& p : pts) {
      int owners = 0;
      for (const geom::Polygon& poly : regions.polys) {
        if (poly.bounds().Contains(p) && poly.Contains(p)) ++owners;
      }
      if (owners == 0) ++none;
      if (owners > 1) ++multi;
    }
    // Exact tiling up to floating-point boundary grazing.
    EXPECT_LE(none, 3u) << "k=" << k;
    EXPECT_LE(multi, 3u) << "k=" << k;
  }
}

TEST(RegionsTest, VertexCalibrationApproximatesTargets) {
  const geom::Box universe(0, 0, 65536, 65536);
  struct Case {
    RegionConfig config;
    double target;
  };
  const Case cases[] = {{BoroughsConfig(universe), 663.0},
                        {NeighborhoodsConfig(universe), 30.6},
                        {CensusConfig(universe, 500), 13.6}};
  for (const Case& c : cases) {
    const RegionSet regions = GenerateRegions(c.config);
    const double avg = regions.AvgVertices();
    EXPECT_GT(avg, c.target * 0.5) << "target " << c.target;
    EXPECT_LT(avg, c.target * 2.0) << "target " << c.target;
  }
}

TEST(RegionsTest, MultiFractionCreatesMultiPolygonRegions) {
  const geom::Box universe(0, 0, 65536, 65536);
  const RegionSet regions = GenerateRegions(NeighborhoodsConfig(universe));
  EXPECT_LT(regions.num_regions, regions.NumPolygons());
  // Every polygon maps to a valid region id.
  for (const uint32_t r : regions.region_of) {
    ASSERT_LT(r, regions.num_regions);
  }
  EXPECT_EQ(regions.names.size(), regions.num_regions);
}

TEST(RegionsTest, StatsAccessors) {
  RegionConfig config;
  config.universe = geom::Box(0, 0, 1024, 1024);
  config.num_polygons = 16;
  const RegionSet regions = GenerateRegions(config);
  EXPECT_GT(regions.TotalPerimeter(), 4 * 1024.0);
  // Tiling: total area equals the universe area (warp is area-shuffling
  // only at boundaries; allow 2%).
  EXPECT_NEAR(regions.TotalArea(), 1024.0 * 1024.0, 1024.0 * 1024.0 * 0.02);
  EXPECT_TRUE(geom::Box(0, 0, 1024, 1024).Contains(regions.Bounds().Center()));
}

TEST(WorkloadTest, ZoomSequenceShrinksAndTightens) {
  const geom::Box universe(0, 0, 65536, 65536);
  const auto steps = MakeZoomSequence(universe, {30000, 30000}, 6);
  ASSERT_EQ(steps.size(), 6u);
  for (size_t i = 1; i < steps.size(); ++i) {
    EXPECT_LT(steps[i].viewport.Area(), steps[i - 1].viewport.Area());
    EXPECT_LT(steps[i].epsilon, steps[i - 1].epsilon);
    EXPECT_TRUE(universe.Contains(steps[i].viewport));
  }
}

TEST(WorkloadTest, QueryBoxSelectivity) {
  const geom::Box universe(0, 0, 1000, 1000);
  const auto boxes = MakeQueryBoxes(universe, 50, 0.01, 9);
  ASSERT_EQ(boxes.size(), 50u);
  for (const geom::Box& b : boxes) {
    EXPECT_NEAR(b.Area() / universe.Area(), 0.01, 1e-9);
    EXPECT_TRUE(universe.Contains(b));
  }
}

}  // namespace
}  // namespace dbsa::data
