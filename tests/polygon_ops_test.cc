// Tests for polygon-box operations: classification (the rasterizer's cell
// kind decision) and clipping (coverage fractions for non-conservative
// rasters).

#include <gtest/gtest.h>

#include "geom/polygon_ops.h"
#include "test_util.h"

namespace dbsa::geom {
namespace {

TEST(ClassifyBoxTest, ObviousCases) {
  const Polygon sq = dbsa::testing::MakeRectPolygon(0, 0, 10, 10);
  EXPECT_EQ(ClassifyBox(sq, Box(2, 2, 3, 3)), BoxRelation::kInside);
  EXPECT_EQ(ClassifyBox(sq, Box(20, 20, 21, 21)), BoxRelation::kOutside);
  EXPECT_EQ(ClassifyBox(sq, Box(-1, -1, 1, 1)), BoxRelation::kBoundary);
}

TEST(ClassifyBoxTest, BoxContainingPolygonIsBoundary) {
  const Polygon sq = dbsa::testing::MakeRectPolygon(4, 4, 6, 6);
  EXPECT_EQ(ClassifyBox(sq, Box(0, 0, 10, 10)), BoxRelation::kBoundary);
}

TEST(ClassifyBoxTest, HoleMakesBoxOutside) {
  Polygon poly(Ring{{0, 0}, {10, 0}, {10, 10}, {0, 10}},
               {Ring{{3, 3}, {7, 3}, {7, 7}, {3, 7}}});
  poly.Normalize();
  EXPECT_EQ(ClassifyBox(poly, Box(4.5, 4.5, 5.5, 5.5)), BoxRelation::kOutside);
  EXPECT_EQ(ClassifyBox(poly, Box(1, 1, 2, 2)), BoxRelation::kInside);
  EXPECT_EQ(ClassifyBox(poly, Box(2.5, 2.5, 3.5, 3.5)), BoxRelation::kBoundary);
}

TEST(ClipRingTest, SquareClippedToHalf) {
  const Ring sq{{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  const Ring clipped = ClipRingToBox(sq, Box(1, 0, 3, 2));
  EXPECT_DOUBLE_EQ(std::fabs(SignedArea(clipped)), 2.0);
}

TEST(ClipRingTest, DisjointClipIsEmpty) {
  const Ring sq{{0, 0}, {2, 0}, {2, 2}, {0, 2}};
  const Ring clipped = ClipRingToBox(sq, Box(5, 5, 6, 6));
  EXPECT_LT(std::fabs(SignedArea(clipped)), 1e-12);
}

TEST(ClipRingTest, FullyInsideClipUnchangedArea) {
  const Ring tri{{1, 1}, {2, 1}, {1.5, 2}};
  const Ring clipped = ClipRingToBox(tri, Box(0, 0, 10, 10));
  EXPECT_DOUBLE_EQ(std::fabs(SignedArea(clipped)), std::fabs(SignedArea(tri)));
}

TEST(CoverageTest, ExactFractions) {
  const Polygon sq = dbsa::testing::MakeRectPolygon(0, 0, 10, 10);
  EXPECT_DOUBLE_EQ(BoxCoverageFraction(sq, Box(1, 1, 2, 2)), 1.0);
  EXPECT_DOUBLE_EQ(BoxCoverageFraction(sq, Box(20, 20, 21, 21)), 0.0);
  EXPECT_NEAR(BoxCoverageFraction(sq, Box(-1, 0, 1, 2)), 0.5, 1e-12);
}

TEST(CoverageTest, HoleReducesCoverage) {
  Polygon poly(Ring{{0, 0}, {10, 0}, {10, 10}, {0, 10}},
               {Ring{{4, 4}, {6, 4}, {6, 6}, {4, 6}}});
  poly.Normalize();
  // Box exactly over the hole region plus a ring around it.
  EXPECT_NEAR(BoxCoverageFraction(poly, Box(3, 3, 7, 7)), (16.0 - 4.0) / 16.0, 1e-12);
}

TEST(CoverageTest, AdditivityOverSubdividedBoxes) {
  // Property: coverage area over a box equals the sum over its quadrants.
  const Polygon star = dbsa::testing::MakeStarPolygon({5, 5}, 2.0, 4.5, 20, 7);
  const Box box(2, 2, 8, 8);
  const Point c = box.Center();
  const Box quads[4] = {Box(box.min, c),
                        Box({c.x, box.min.y}, {box.max.x, c.y}),
                        Box({box.min.x, c.y}, {c.x, box.max.y}),
                        Box(c, box.max)};
  double sum = 0.0;
  for (const Box& q : quads) sum += PolygonBoxIntersectionArea(star, q);
  EXPECT_NEAR(PolygonBoxIntersectionArea(star, box), sum, 1e-9);
}

TEST(CoverageTest, TotalCoverageEqualsPolygonArea) {
  // Property: clipping to a box containing the polygon yields its area.
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const Polygon star = dbsa::testing::MakeStarPolygon({0, 0}, 1.0, 3.0, 16, seed);
    EXPECT_NEAR(PolygonBoxIntersectionArea(star, Box(-5, -5, 5, 5)), star.Area(),
                1e-9)
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace dbsa::geom
