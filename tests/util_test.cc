// Tests for the util module: Status/StatusOr, RNG determinism, stats,
// table printer.

#include <gtest/gtest.h>

#include "util/random.h"
#include "util/stats.h"
#include "util/status.h"
#include "util/table.h"

namespace dbsa {
namespace {

TEST(StatusTest, OkAndErrors) {
  EXPECT_TRUE(Status::OK().ok());
  EXPECT_EQ(Status::OK().ToString(), "OK");
  const Status err = Status::InvalidArgument("bad ring");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(err.ToString(), "INVALID_ARGUMENT: bad ring");
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
}

TEST(StatusOrTest, ValueAndError) {
  StatusOr<int> ok(42);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(ok.value(), 42);

  StatusOr<int> err(Status::NotFound("nope"));
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kNotFound);
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
  Rng c(124);
  EXPECT_NE(Rng(123).Next(), c.Next());
}

TEST(RngTest, UniformInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    const double v = rng.Uniform(10, 20);
    ASSERT_GE(v, 10.0);
    ASSERT_LT(v, 20.0);
    const int64_t r = rng.Range(-3, 3);
    ASSERT_GE(r, -3);
    ASSERT_LE(r, 3);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(7);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) stats.Add(rng.Gaussian(10.0, 2.0));
  EXPECT_NEAR(stats.mean(), 10.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(RunningStatsTest, KnownSequence) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.stddev(), 2.138, 0.001);  // Sample stddev.
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(PercentilesTest, OrderStatistics) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.Add(i);
  EXPECT_NEAR(p.Median(), 50.5, 0.01);
  EXPECT_NEAR(p.Percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(p.Percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(p.Percentile(90), 90.1, 0.2);
  EXPECT_FALSE(p.Summary().empty());
}

TEST(HumanFormatTest, BytesAndCounts) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(1536), "1.5 KB");
  EXPECT_EQ(HumanBytes(150000000), "143.1 MB");
  EXPECT_EQ(HumanCount(1200000000.0), "1.2B");
  EXPECT_EQ(HumanCount(39200.0), "39.2K");
  EXPECT_EQ(HumanCount(42.0), "42");
}

TEST(TablePrinterTest, AlignedOutput) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", TablePrinter::Num(1.5)});
  table.AddRow({"b", "2"});
  // Smoke: printing to a memory stream via tmpfile.
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  table.Print(f);
  table.PrintCsv(f);
  std::fclose(f);
  EXPECT_EQ(TablePrinter::Num(3.14159, 3), "3.14");
}

}  // namespace
}  // namespace dbsa
