// Tests for the shard-server wire format and transport abstraction:
// bit-exact round trips (the byte-identity contract must survive
// serialization, compensated SUM pairs included), total decoding
// (truncated / corrupted / version-skewed bytes are rejected with a
// typed Status, never undefined behaviour — this test runs under
// ASan+UBSan in CI), v1–v3 frame rejection, the v3 trace-identity
// fields, the v4 correlation envelope, the kStatsRequest/kStatsReply
// admin frames, and the loopback dispatch.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "raster/cell_id.h"
#include "service/transport.h"

namespace dbsa::service {
namespace {

TEST(WireTest, PrimitiveRoundTrip) {
  WireWriter w;
  w.U8(0xab);
  w.U16(0xbeef);
  w.U32(0xdeadbeefu);
  w.U64(0x0123456789abcdefull);
  w.I32(-42);
  w.F64(-0.0);
  w.F64(std::numeric_limits<double>::denorm_min());
  w.F64(1.0 / 3.0);

  WireReader r(w.payload());
  EXPECT_EQ(r.U8(), 0xab);
  EXPECT_EQ(r.U16(), 0xbeef);
  EXPECT_EQ(r.U32(), 0xdeadbeefu);
  EXPECT_EQ(r.U64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.I32(), -42);
  const double neg_zero = r.F64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));  // Bit pattern, not value, travels.
  EXPECT_EQ(r.F64(), std::numeric_limits<double>::denorm_min());
  EXPECT_EQ(r.F64(), 1.0 / 3.0);
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireTest, ReaderIsBoundsChecked) {
  WireWriter w;
  w.U16(7);
  WireReader r(w.payload());
  EXPECT_EQ(r.U64(), 0u);  // Overruns: returns zero, flips ok().
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.U32(), 0u);  // Stays failed.
  EXPECT_FALSE(r.AtEnd());
}

TEST(WireTest, FrameRoundTripAndRejection) {
  WireWriter w;
  w.U32(12345);
  const std::string framed = w.TakeFramed(MessageType::kScatterRequest);

  MessageType type;
  const char* payload = nullptr;
  size_t payload_size = 0;
  ASSERT_TRUE(ParseFrame(framed, &type, &payload, &payload_size).ok());
  EXPECT_EQ(type, MessageType::kScatterRequest);
  ASSERT_EQ(payload_size, 4u);
  EXPECT_EQ(WireReader(payload, payload_size).U32(), 12345u);

  // Every strict prefix must be rejected (framing or header error).
  for (size_t len = 0; len < framed.size(); ++len) {
    const Status s = ParseFrame(framed.substr(0, len), &type, &payload,
                                &payload_size);
    EXPECT_FALSE(s.ok()) << "prefix " << len;
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << "prefix " << len;
  }
  // Trailing garbage breaks the length invariant.
  EXPECT_EQ(ParseFrame(framed + "x", &type, &payload, &payload_size).code(),
            StatusCode::kInvalidArgument);
  // Bad magic.
  std::string bad = framed;
  bad[4] ^= 0x5a;
  EXPECT_EQ(ParseFrame(bad, &type, &payload, &payload_size).code(),
            StatusCode::kInvalidArgument);
  // Version skew is not corruption: typed as kUnimplemented.
  bad = framed;
  bad[6] = static_cast<char>(kWireVersion + 1);
  EXPECT_EQ(ParseFrame(bad, &type, &payload, &payload_size).code(),
            StatusCode::kUnimplemented);
  // Unknown message type.
  bad = framed;
  bad[7] = 0x7f;
  EXPECT_EQ(ParseFrame(bad, &type, &payload, &payload_size).code(),
            StatusCode::kInvalidArgument);
}

TEST(WireTest, V1FramesAreRejectedWithTypedStatus) {
  // A well-formed VERSION 1 frame (the pre-envelope wire format): header
  // plus a plausible v1 ScatterRequest payload. The v3 decoder must
  // reject it with kUnimplemented — total, typed, never decoded with
  // defaulted contract fields.
  WireWriter payload;
  payload.U8(0);       // kind = kAggregateCells
  payload.U8(0);       // flags
  payload.I32(13);     // level (v1 layout: no bound fields)
  payload.U64(0x11);   // checksum
  WireWriter framed;
  framed.U32(static_cast<uint32_t>(payload.payload().size() + 4));
  framed.U16(kWireMagic);
  framed.U8(1);  // version 1
  framed.U8(static_cast<uint8_t>(MessageType::kScatterRequest));
  framed.Bytes(payload.payload().data(), payload.payload().size());
  const std::string v1_frame = framed.payload();

  ScatterRequest out;
  const Status s = ScatterRequest::Decode(v1_frame, &out);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kUnimplemented);
  GatherPartial partial;
  EXPECT_EQ(GatherPartial::Decode(v1_frame, &partial).code(),
            StatusCode::kUnimplemented);
}

TEST(WireTest, V2FramesAreRejectedWithTypedStatus) {
  // A well-formed VERSION 2 frame: the v2 ScatterRequest layout (no
  // trace-identity fields between checksum and the object flag). The v3
  // decoder must reject it on the version byte with kUnimplemented —
  // NEVER decode the object key out of what are actually trace bytes.
  WireWriter payload;
  payload.U8(0);      // kind = kAggregateCells
  payload.U8(0);      // flags (no object, no cells)
  payload.U8(0);      // bound_kind
  payload.F64(0.25);  // bound_epsilon
  payload.I32(13);    // level
  payload.U64(0x11);  // checksum (v2 layout: object flag follows directly)
  WireWriter framed;
  framed.U32(static_cast<uint32_t>(payload.payload().size() + 4));
  framed.U16(kWireMagic);
  framed.U8(2);  // version 2
  framed.U8(static_cast<uint8_t>(MessageType::kScatterRequest));
  framed.Bytes(payload.payload().data(), payload.payload().size());
  const std::string v2_frame = framed.payload();

  ScatterRequest out;
  EXPECT_EQ(ScatterRequest::Decode(v2_frame, &out).code(),
            StatusCode::kUnimplemented);
  GatherPartial partial;
  EXPECT_EQ(GatherPartial::Decode(v2_frame, &partial).code(),
            StatusCode::kUnimplemented);
  StatsRequest stats;
  WireWriter stats_framed;
  stats_framed.U32(4);
  stats_framed.U16(kWireMagic);
  stats_framed.U8(2);
  stats_framed.U8(static_cast<uint8_t>(MessageType::kStatsRequest));
  EXPECT_EQ(StatsRequest::Decode(stats_framed.payload(), &stats).code(),
            StatusCode::kUnimplemented);
}

ScatterRequest MakeRequest(ScatterRequest::Kind kind, bool object, bool cells) {
  ScatterRequest req;
  req.kind = kind;
  req.bound_kind = query::BoundKind::kAbsoluteDistance;
  req.bound_epsilon = 0.1 + 0.2;  // Not exactly 0.3 — bits must survive.
  req.level = 13;
  req.checksum = 0x1122334455667788ull;
  req.trace_hi = 0xfeedface00000001ull;
  req.trace_lo = 0xcafe000000000002ull;
  req.span_id = 0xabad1dea00000003ull;
  if (object) {
    req.has_object = true;
    req.object = ObjectKey(0x8000000000000001ull, 42);
  }
  if (cells) {
    req.has_cells = true;
    req.cells = {{raster::CellId::FromXY(3, 5, 2), true},
                 {raster::CellId::FromXY(10, 1000, 999), false},
                 {raster::CellId::FromXY(raster::CellId::kMaxLevel, 0, 0), true}};
  }
  return req;
}

/// Offset of the first cell id in an object-less, cells-carrying
/// ScatterRequest frame: envelope(16, wire v4: length + magic + version +
/// type + correlation) + kind(1) + flags(1) + bound_kind(1) +
/// bound_epsilon(8) + level(4) + checksum(8) + trace identity (3 × 8) +
/// cell count(4).
constexpr size_t kFirstCellIdOffset = 16 + 1 + 1 + 1 + 8 + 4 + 8 + 24 + 4;

TEST(ScatterRequestTest, RoundTripAllShapes) {
  for (const auto kind :
       {ScatterRequest::Kind::kAggregateCells, ScatterRequest::Kind::kSelectIds,
        ScatterRequest::Kind::kWarm}) {
    for (const bool object : {false, true}) {
      for (const bool cells : {false, true}) {
        const ScatterRequest req = MakeRequest(kind, object, cells);
        ScatterRequest got;
        ASSERT_TRUE(ScatterRequest::Decode(req.Encode(), &got).ok());
        EXPECT_EQ(got.kind, req.kind);
        EXPECT_EQ(got.bound_kind, req.bound_kind);
        EXPECT_EQ(got.bound_epsilon, req.bound_epsilon);
        EXPECT_EQ(got.level, req.level);
        EXPECT_EQ(got.checksum, req.checksum);
        EXPECT_EQ(got.trace_hi, req.trace_hi);
        EXPECT_EQ(got.trace_lo, req.trace_lo);
        EXPECT_EQ(got.span_id, req.span_id);
        EXPECT_EQ(got.has_object, req.has_object);
        EXPECT_EQ(got.object, req.object);
        EXPECT_EQ(got.has_cells, req.has_cells);
        ASSERT_EQ(got.cells.size(), req.cells.size());
        for (size_t i = 0; i < req.cells.size(); ++i) {
          EXPECT_EQ(got.cells[i].id, req.cells[i].id);
          EXPECT_EQ(got.cells[i].boundary, req.cells[i].boundary);
        }
      }
    }
  }
}

TEST(ScatterRequestTest, RejectsInvalidCellIds) {
  const ScatterRequest req = MakeRequest(ScatterRequest::Kind::kAggregateCells,
                                         /*object=*/false, /*cells=*/true);
  std::string bytes = req.Encode();
  // Zero the first cell id: id 0 is invalid (its decoding would hit
  // __builtin_ctzll(0), which is UB — exactly what the validation must
  // prevent).
  std::memset(&bytes[kFirstCellIdOffset], 0, 8);
  ScatterRequest got;
  EXPECT_EQ(ScatterRequest::Decode(bytes, &got).code(),
            StatusCode::kInvalidArgument);

  // An id beyond the 49-bit cell domain is invalid too.
  bytes = req.Encode();
  bytes[kFirstCellIdOffset + 7] = static_cast<char>(0xff);
  EXPECT_EQ(ScatterRequest::Decode(bytes, &got).code(),
            StatusCode::kInvalidArgument);
}

TEST(ScatterRequestTest, TruncationNeverCrashes) {
  // Total decoding: every prefix of a valid message must be cleanly
  // rejected (ASan/UBSan-gated; a sloppy length check would read past
  // the buffer or allocate from a garbage count).
  const ScatterRequest req = MakeRequest(ScatterRequest::Kind::kSelectIds,
                                         /*object=*/true, /*cells=*/true);
  const std::string bytes = req.Encode();
  ScatterRequest got;
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(ScatterRequest::Decode(bytes.substr(0, len), &got).ok())
        << "prefix " << len;
  }
  // Single-byte corruptions must decode successfully or fail cleanly —
  // flipping bits in the cell payload must never produce UB. (Flips that
  // only toggle object/checksum bytes may still decode fine.)
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0xff);
    ScatterRequest out;
    (void)ScatterRequest::Decode(corrupt, &out);
  }
}

TEST(GatherPartialTest, AggregateDoublesAreBitExact) {
  GatherPartial partial;
  partial.kind = ScatterRequest::Kind::kAggregateCells;
  partial.aggregate.count = 1234567.0;
  partial.aggregate.sum = 0.1 + 0.2;  // Not exactly 0.3 — bits must survive.
  partial.aggregate.sum_comp = 1e-17;  // Compensation travels bit-exact too.
  partial.aggregate.boundary_count = -0.0;
  partial.aggregate.boundary_sum = std::numeric_limits<double>::denorm_min();
  partial.aggregate.boundary_sum_comp = -1e-33;
  partial.aggregate.query_cells = 77;
  partial.aggregate.searches = 154;

  GatherPartial got;
  ASSERT_TRUE(GatherPartial::Decode(partial.Encode(), &got).ok());
  EXPECT_EQ(got.status, GatherPartial::Disposition::kOk);
  uint64_t want_bits = 0, got_bits = 0;
  std::memcpy(&want_bits, &partial.aggregate.sum, 8);
  std::memcpy(&got_bits, &got.aggregate.sum, 8);
  EXPECT_EQ(got_bits, want_bits);
  EXPECT_EQ(got.aggregate.sum_comp, 1e-17);
  EXPECT_EQ(got.aggregate.boundary_sum_comp, -1e-33);
  EXPECT_EQ(got.aggregate.count, partial.aggregate.count);
  EXPECT_TRUE(std::signbit(got.aggregate.boundary_count));
  EXPECT_EQ(got.aggregate.boundary_sum, std::numeric_limits<double>::denorm_min());
  EXPECT_EQ(got.aggregate.query_cells, 77u);
  EXPECT_EQ(got.aggregate.searches, 154u);
}

TEST(GatherPartialTest, SelectWarmAndErrorRoundTrip) {
  GatherPartial select;
  select.kind = ScatterRequest::Kind::kSelectIds;
  select.keyed_ids = {{0, 0}, {42, 7}, {UINT64_MAX, UINT32_MAX}};
  GatherPartial got;
  ASSERT_TRUE(GatherPartial::Decode(select.Encode(), &got).ok());
  EXPECT_EQ(got.keyed_ids, select.keyed_ids);

  GatherPartial warm;
  warm.kind = ScatterRequest::Kind::kWarm;
  warm.cells_cached = 321;
  ASSERT_TRUE(GatherPartial::Decode(warm.Encode(), &got).ok());
  EXPECT_EQ(got.cells_cached, 321u);

  // Errors round-trip TYPED: the StatusCode survives the wire, so the
  // router recovers Status{kInvalidArgument, ...}, not just text.
  const GatherPartial failed = GatherPartial::FromStatus(
      ScatterRequest::Kind::kAggregateCells, GatherPartial::Disposition::kError,
      Status::InvalidArgument("shard on fire"));
  ASSERT_TRUE(GatherPartial::Decode(failed.Encode(), &got).ok());
  EXPECT_EQ(got.status, GatherPartial::Disposition::kError);
  EXPECT_EQ(got.code, StatusCode::kInvalidArgument);
  EXPECT_EQ(got.error, "shard on fire");
  EXPECT_EQ(got.ToStatus().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(got.ToStatus().message(), "shard on fire");

  const GatherPartial not_cached = GatherPartial::FromStatus(
      ScatterRequest::Kind::kAggregateCells,
      GatherPartial::Disposition::kNotCached, Status::NotFound("slice not cached"));
  ASSERT_TRUE(GatherPartial::Decode(not_cached.Encode(), &got).ok());
  EXPECT_EQ(got.status, GatherPartial::Disposition::kNotCached);
  EXPECT_EQ(got.ToStatus().code(), StatusCode::kNotFound);
}

TEST(GatherPartialTest, RejectsUnknownStatusCode) {
  const GatherPartial failed = GatherPartial::FromStatus(
      ScatterRequest::Kind::kAggregateCells, GatherPartial::Disposition::kError,
      Status::Internal("x"));
  std::string bytes = failed.Encode();
  // Corrupt the status-code byte
  // (envelope(16) + kind(1) + disposition(1) + epoch(8)).
  bytes[26] = static_cast<char>(0x7f);
  GatherPartial got;
  EXPECT_EQ(GatherPartial::Decode(bytes, &got).code(),
            StatusCode::kInvalidArgument);
}

TEST(GatherPartialTest, TruncationNeverCrashes) {
  GatherPartial partial;
  partial.kind = ScatterRequest::Kind::kSelectIds;
  for (uint32_t i = 0; i < 100; ++i) partial.keyed_ids.emplace_back(i * 31, i);
  const std::string bytes = partial.Encode();
  GatherPartial got;
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(GatherPartial::Decode(bytes.substr(0, len), &got).ok())
        << "prefix " << len;
  }
}

TEST(ScatterRequestTest, DefaultTraceIsUntraced) {
  // Tracing-off requests carry all-zero trace identity, and it survives
  // the round trip as zero — servers treat zero as "untraced" and must
  // never observe a phantom id.
  ScatterRequest req;
  req.kind = ScatterRequest::Kind::kWarm;
  ScatterRequest got;
  ASSERT_TRUE(ScatterRequest::Decode(req.Encode(), &got).ok());
  EXPECT_EQ(got.trace_hi, 0u);
  EXPECT_EQ(got.trace_lo, 0u);
  EXPECT_EQ(got.span_id, 0u);
}

TEST(StatsFrameTest, RequestRoundTripAndRejection) {
  const StatsRequest req;
  const std::string bytes = req.Encode();
  // A stats request is pure envelope: 4-byte length prefix + 12-byte
  // header (magic, version, type, correlation).
  EXPECT_EQ(bytes.size(), 16u);
  StatsRequest got;
  EXPECT_TRUE(StatsRequest::Decode(bytes, &got).ok());

  // Every strict prefix is rejected...
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(StatsRequest::Decode(bytes.substr(0, len), &got).ok())
        << "prefix " << len;
  }
  // ...as are trailing bytes (the empty-payload invariant is checked).
  EXPECT_EQ(StatsRequest::Decode(bytes + "x", &got).code(),
            StatusCode::kInvalidArgument);
  // A stats request is not a scatter request and vice versa.
  ScatterRequest scatter;
  EXPECT_EQ(ScatterRequest::Decode(bytes, &scatter).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(StatsRequest::Decode(MakeRequest(ScatterRequest::Kind::kWarm, false,
                                             false)
                                     .Encode(),
                                 &got)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(StatsFrameTest, ReplyRoundTripAndTruncation) {
  StatsReply reply;
  reply.text =
      "# TYPE dbsa_queries_total counter\n"
      "dbsa_queries_total{kind=\"aggregate\"} 7\n";
  const std::string bytes = reply.Encode();
  StatsReply got;
  ASSERT_TRUE(StatsReply::Decode(bytes, &got).ok());
  EXPECT_EQ(got.text, reply.text);

  // Empty exposition is legal (a freshly-started server).
  StatsReply empty;
  ASSERT_TRUE(StatsReply::Decode(empty.Encode(), &got).ok());
  EXPECT_EQ(got.text, "");

  // Total decoding: every prefix rejected, trailing bytes rejected, and
  // a length word pointing past the payload rejected (never a read past
  // the buffer — ASan-gated).
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(StatsReply::Decode(bytes.substr(0, len), &got).ok())
        << "prefix " << len;
  }
  EXPECT_FALSE(StatsReply::Decode(bytes + "x", &got).ok());
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::string corrupt = bytes;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0xff);
    StatsReply out;
    (void)StatsReply::Decode(corrupt, &out);  // Must not crash.
  }
}

TEST(LoopbackTransportTest, DispatchesToHandlersAndCounts) {
  std::vector<LoopbackTransport::Handler> handlers;
  for (int s = 0; s < 3; ++s) {
    handlers.push_back([s](const std::string& request) {
      GatherPartial partial;
      partial.kind = ScatterRequest::Kind::kWarm;
      partial.cells_cached = static_cast<uint64_t>(s) * 100 + request.size();
      return partial.Encode();
    });
  }
  LoopbackTransport transport(std::move(handlers));
  ASSERT_EQ(transport.num_shards(), 3u);

  ScatterRequest req;
  req.kind = ScatterRequest::Kind::kWarm;
  req.has_object = true;
  req.object = ObjectKey(1);
  req.has_cells = true;
  const std::string encoded = req.Encode();
  for (size_t s = 0; s < 3; ++s) {
    GatherPartial partial;
    ASSERT_TRUE(
        GatherPartial::Decode(Roundtrip(transport, s, encoded), &partial).ok());
    EXPECT_EQ(partial.cells_cached, s * 100 + encoded.size());
  }
  const LoopbackTransport::Stats stats = transport.stats();
  EXPECT_EQ(stats.messages, 3u);
  EXPECT_EQ(stats.request_bytes, 3 * encoded.size());
  EXPECT_GT(stats.response_bytes, 0u);

  EXPECT_THROW(Roundtrip(transport, 3, encoded), std::runtime_error);
}

}  // namespace
}  // namespace dbsa::service
