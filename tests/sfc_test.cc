// Tests for the linearization layer: Morton and Hilbert curves.

#include <gtest/gtest.h>

#include "sfc/hilbert.h"
#include "sfc/morton.h"
#include "util/random.h"

namespace dbsa::sfc {
namespace {

TEST(MortonTest, KnownValues) {
  EXPECT_EQ(MortonEncode(0, 0), 0u);
  EXPECT_EQ(MortonEncode(1, 0), 1u);
  EXPECT_EQ(MortonEncode(0, 1), 2u);
  EXPECT_EQ(MortonEncode(1, 1), 3u);
  EXPECT_EQ(MortonEncode(2, 0), 4u);
  EXPECT_EQ(MortonEncode(0xffffffffu, 0xffffffffu), 0xffffffffffffffffull);
}

TEST(MortonTest, RoundTrip) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    const uint32_t x = static_cast<uint32_t>(rng.Next());
    const uint32_t y = static_cast<uint32_t>(rng.Next());
    uint32_t dx, dy;
    MortonDecode(MortonEncode(x, y), &dx, &dy);
    ASSERT_EQ(x, dx);
    ASSERT_EQ(y, dy);
  }
}

TEST(MortonTest, QuadrantPrefixProperty) {
  // All cells of one quadtree quadrant share the Morton prefix: the
  // property the CellId scheme and ACT rely on.
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const uint32_t x = static_cast<uint32_t>(rng.Next()) >> 12;  // 20 bits.
    const uint32_t y = static_cast<uint32_t>(rng.Next()) >> 12;
    const uint64_t parent = MortonEncode(x >> 1, y >> 1);
    const uint64_t child = MortonEncode(x, y);
    ASSERT_EQ(child >> 2, parent);
  }
}

TEST(HilbertTest, RoundTrip) {
  Rng rng(3);
  for (const int order : {1, 2, 4, 8, 16, 24, 31}) {
    const uint32_t mask = order == 31 ? 0x7fffffffu : ((1u << order) - 1);
    for (int i = 0; i < 2000; ++i) {
      const uint32_t x = static_cast<uint32_t>(rng.Next()) & mask;
      const uint32_t y = static_cast<uint32_t>(rng.Next()) & mask;
      uint32_t dx, dy;
      HilbertDecode(HilbertEncode(x, y, order), order, &dx, &dy);
      ASSERT_EQ(x, dx) << "order " << order;
      ASSERT_EQ(y, dy) << "order " << order;
    }
  }
}

TEST(HilbertTest, IsBijectionOnSmallGrid) {
  const int order = 4;  // 16x16.
  std::vector<bool> seen(256, false);
  for (uint32_t y = 0; y < 16; ++y) {
    for (uint32_t x = 0; x < 16; ++x) {
      const uint64_t d = HilbertEncode(x, y, order);
      ASSERT_LT(d, 256u);
      ASSERT_FALSE(seen[d]) << "collision at " << x << "," << y;
      seen[d] = true;
    }
  }
}

TEST(HilbertTest, ConsecutiveIndicesAreGridNeighbors) {
  // The defining locality property of the Hilbert curve: successive
  // indices differ by one grid step.
  const int order = 6;  // 64x64.
  uint32_t px = 0, py = 0;
  HilbertDecode(0, order, &px, &py);
  for (uint64_t d = 1; d < 64ull * 64ull; ++d) {
    uint32_t x, y;
    HilbertDecode(d, order, &x, &y);
    const uint32_t manhattan =
        (x > px ? x - px : px - x) + (y > py ? y - py : py - y);
    ASSERT_EQ(manhattan, 1u) << "jump at d=" << d;
    px = x;
    py = y;
  }
}

TEST(HilbertTest, QuadrantContiguity) {
  // Every level-1 quadrant of the grid occupies one contiguous quarter of
  // the Hilbert range — the property that lets cell ranges drive index
  // lookups under Hilbert linearization too.
  const int order = 5;  // 32x32; quadrants are 16x16 = 256 indices.
  for (int q = 0; q < 4; ++q) {
    const uint32_t qx = (q & 1) ? 16 : 0;
    const uint32_t qy = (q & 2) ? 16 : 0;
    uint64_t min_d = UINT64_MAX, max_d = 0;
    for (uint32_t y = 0; y < 16; ++y) {
      for (uint32_t x = 0; x < 16; ++x) {
        const uint64_t d = HilbertEncode(qx + x, qy + y, order);
        min_d = std::min(min_d, d);
        max_d = std::max(max_d, d);
      }
    }
    EXPECT_EQ(max_d - min_d + 1, 256u) << "quadrant " << q;
    EXPECT_EQ(min_d % 256, 0u) << "quadrant " << q;
  }
}

TEST(HilbertTest, HierarchicalContainment) {
  // The order-n curve is the order-(n+1) curve coarsened: cell (x, y) at
  // order n-1 covers exactly positions [4d, 4d+3] at order n. This is the
  // property the sharded scatter layer relies on to map every quadtree
  // cell to ONE contiguous Hilbert interval (core/sharded_state.cc).
  Rng rng(99);
  for (int trial = 0; trial < 20000; ++trial) {
    const int order = 2 + static_cast<int>(rng.Below(15));
    const uint32_t x = static_cast<uint32_t>(rng.Below(1u << order));
    const uint32_t y = static_cast<uint32_t>(rng.Below(1u << order));
    const uint64_t d = HilbertEncode(x, y, order);
    const uint64_t parent = HilbertEncode(x >> 1, y >> 1, order - 1);
    ASSERT_EQ(d >> 2, parent) << "order " << order << " (" << x << ", " << y << ")";
  }
}

TEST(SfcLocalityTest, HilbertHasPerfectIndexAdjacency) {
  // The standard locality comparison: walking the curve index by index,
  // Hilbert always moves to a grid neighbour; Z-order takes long jumps at
  // quadrant seams. bench/abl_sfc measures the end-to-end index effect.
  const int order = 7;
  const uint64_t total = 1ull << (2 * order);
  auto neighbor_fraction = [&](auto decode) {
    uint64_t neighbors = 0;
    uint32_t px, py;
    decode(0, &px, &py);
    for (uint64_t d = 1; d < total; ++d) {
      uint32_t x, y;
      decode(d, &x, &y);
      const uint32_t manhattan =
          (x > px ? x - px : px - x) + (y > py ? y - py : py - y);
      neighbors += (manhattan == 1) ? 1 : 0;
      px = x;
      py = y;
    }
    return static_cast<double>(neighbors) / static_cast<double>(total - 1);
  };
  const double morton_frac = neighbor_fraction([](uint64_t d, uint32_t* x, uint32_t* y) {
    MortonDecode(d, x, y);
  });
  const double hilbert_frac =
      neighbor_fraction([order](uint64_t d, uint32_t* x, uint32_t* y) {
        HilbertDecode(d, order, x, y);
      });
  EXPECT_DOUBLE_EQ(hilbert_frac, 1.0);
  EXPECT_LT(morton_frac, 0.75);
}

}  // namespace
}  // namespace dbsa::sfc
