// Tests for the monotone-chain convex hull.

#include <gtest/gtest.h>

#include "geom/convex_hull.h"
#include "test_util.h"
#include "util/random.h"

namespace dbsa::geom {
namespace {

TEST(ConvexHullTest, Square) {
  const Ring hull =
      ConvexHull({{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}, {0.2, 0.8}});
  EXPECT_EQ(hull.size(), 4u);
  EXPECT_DOUBLE_EQ(std::fabs(SignedArea(hull)), 1.0);
  EXPECT_GT(SignedArea(hull), 0.0);  // CCW.
}

TEST(ConvexHullTest, CollinearPointsDropped) {
  const Ring hull = ConvexHull({{0, 0}, {1, 0}, {2, 0}, {2, 2}, {0, 2}, {1, 2}});
  EXPECT_EQ(hull.size(), 4u);
}

TEST(ConvexHullTest, DegenerateInputs) {
  EXPECT_EQ(ConvexHull({{1, 1}}).size(), 1u);
  EXPECT_EQ(ConvexHull({{1, 1}, {2, 2}}).size(), 2u);
  EXPECT_EQ(ConvexHull({{1, 1}, {1, 1}, {1, 1}}).size(), 1u);  // Duplicates.
}

TEST(ConvexHullTest, HullContainsAllPoints) {
  Rng rng(99);
  std::vector<Point> pts;
  for (int i = 0; i < 500; ++i) {
    pts.push_back({rng.Gaussian(0, 10), rng.Gaussian(0, 10)});
  }
  const Ring hull = ConvexHull(pts);
  ASSERT_GE(hull.size(), 3u);
  // Every point is left of (or on) every CCW hull edge.
  for (const Point& p : pts) {
    for (size_t i = 0; i < hull.size(); ++i) {
      const Point& a = hull[i];
      const Point& b = hull[(i + 1) % hull.size()];
      EXPECT_GE(Orient(a, b, p), -1e-9);
    }
  }
}

TEST(ConvexHullTest, HullIsConvex) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const Polygon star = dbsa::testing::MakeStarPolygon({0, 0}, 2, 8, 30, seed);
    const Ring hull = ConvexHullOf(star);
    ASSERT_GE(hull.size(), 3u);
    for (size_t i = 0; i < hull.size(); ++i) {
      const Point& a = hull[i];
      const Point& b = hull[(i + 1) % hull.size()];
      const Point& c = hull[(i + 2) % hull.size()];
      EXPECT_GT(Orient(a, b, c), 0.0) << "seed " << seed;  // Strictly convex turns.
    }
    // Hull area >= polygon area.
    EXPECT_GE(std::fabs(SignedArea(hull)) + 1e-9, star.Area());
  }
}

}  // namespace
}  // namespace dbsa::geom
