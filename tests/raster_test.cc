// Tests for the grid, the scanline rasterizer, and the uniform raster:
// the conservative-coverage and distance-bound properties of Section 2.2.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "geom/distance.h"
#include "raster/grid.h"
#include "raster/rasterizer.h"
#include "raster/uniform_raster.h"
#include "raster/verify.h"
#include "test_util.h"

namespace dbsa::raster {
namespace {

using dbsa::testing::MakeLPolygon;
using dbsa::testing::MakeRectPolygon;
using dbsa::testing::MakeStarPolygon;
using dbsa::testing::MakeStarPolygonWithHole;

TEST(GridTest, LevelForEpsilonMeetsBound) {
  const Grid grid({0, 0}, 1024.0);
  for (const double eps : {512.0, 100.0, 10.0, 1.0, 0.37}) {
    const int level = grid.LevelForEpsilon(eps);
    EXPECT_LE(grid.CellDiagonal(level), eps * (1 + 1e-12)) << "eps " << eps;
    if (level > 0) {
      // One level coarser would violate the bound.
      EXPECT_GT(grid.CellDiagonal(level - 1), eps) << "eps " << eps;
    }
  }
}

TEST(GridTest, LevelForEpsilonNeverExceedsRequestAtPowerOfTwoRatios) {
  // Regression: the level was ceil(log2(side * sqrt(2) / eps)) in floating
  // point, so epsilons that put the ratio at (or within one ulp of) an
  // exact power of two could round to a level whose achieved epsilon
  // exceeds the request — a distance-bound violation. Sweep exact
  // power-of-two ratios and their one-ulp neighbours on several grids.
  for (const double side : {1024.0, 1.0, 3.0, 16384.0, 0.125}) {
    const Grid grid({0, 0}, side);
    for (int level = 0; level <= CellId::kMaxLevel; ++level) {
      // eps chosen so side * sqrt(2) / eps == 2^level up to rounding.
      const double exact = grid.CellDiagonal(level);
      for (const double eps :
           {exact, std::nextafter(exact, 2 * exact),
            std::nextafter(exact, 0.0)}) {
        const int chosen = grid.LevelForEpsilon(eps);
        if (chosen < CellId::kMaxLevel) {
          EXPECT_LE(grid.AchievedEpsilon(chosen), eps)
              << "side " << side << " level " << level << " eps " << eps;
        }
        // Never wastefully fine: one level coarser must violate the bound
        // (the "smallest such level" contract).
        if (chosen > 0) {
          EXPECT_GT(grid.AchievedEpsilon(chosen - 1), eps)
              << "side " << side << " level " << level << " eps " << eps;
        }
      }
    }
  }
}

TEST(GridTest, PointToCellAndBox) {
  const Grid grid({0, 0}, 1024.0);
  uint32_t ix, iy;
  grid.PointToXY({100.0, 900.0}, 2, &ix, &iy);  // 4x4 cells of 256.
  EXPECT_EQ(ix, 0u);
  EXPECT_EQ(iy, 3u);
  const geom::Box box = grid.CellBoxXY(2, ix, iy);
  EXPECT_DOUBLE_EQ(box.min.y, 768.0);
  EXPECT_TRUE(box.Contains(geom::Point{100.0, 900.0}));
}

TEST(GridTest, PointsOutsideClampToEdgeCells) {
  const Grid grid({0, 0}, 100.0);
  uint32_t ix, iy;
  grid.PointToXY({-5.0, 105.0}, 4, &ix, &iy);
  EXPECT_EQ(ix, 0u);
  EXPECT_EQ(iy, 15u);
}

TEST(GridTest, LeafKeyConsistentWithCellBox) {
  const Grid grid({0, 0}, 4096.0);
  const geom::Point p{123.456, 789.012};
  const CellId leaf = CellId::FromLeafKey(grid.LeafKey(p));
  EXPECT_TRUE(grid.CellBox(leaf).Contains(p));
}

TEST(GridTest, CoveringAddsMargin) {
  geom::Box data(10, 20, 110, 70);
  const Grid grid = Grid::Covering(data);
  EXPECT_TRUE(grid.universe().Contains(data));
  EXPECT_GE(grid.side(), 100.0);
}

TEST(TraverseSegmentTest, AxisAlignedLine) {
  const Grid grid({0, 0}, 16.0);
  std::vector<std::pair<uint32_t, uint32_t>> cells;
  TraverseSegment({0.5, 0.5}, {7.5, 0.5}, grid, 4,
                  [&](uint32_t x, uint32_t y) { cells.push_back({x, y}); });
  ASSERT_EQ(cells.size(), 8u);
  for (uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(cells[i].first, i);
    EXPECT_EQ(cells[i].second, 0u);
  }
}

TEST(TraverseSegmentTest, DiagonalCoversSegmentSamples) {
  // Property: every sampled point of the segment lies in a visited cell.
  const Grid grid({0, 0}, 64.0);
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    const geom::Point a{rng.Uniform(1, 63), rng.Uniform(1, 63)};
    const geom::Point b{rng.Uniform(1, 63), rng.Uniform(1, 63)};
    std::set<std::pair<uint32_t, uint32_t>> visited;
    TraverseSegment(a, b, grid, 6, [&](uint32_t x, uint32_t y) {
      visited.insert({x, y});
    });
    for (int s = 0; s <= 200; ++s) {
      const geom::Point p = a + (b - a) * (s / 200.0);
      uint32_t ix, iy;
      grid.PointToXY(p, 6, &ix, &iy);
      ASSERT_TRUE(visited.count({ix, iy}))
          << "seed " << seed << " sample " << s << " cell (" << ix << "," << iy << ")";
    }
  }
}

TEST(RasterizeTest, RectangleCellCounts) {
  // A 4x4 world rect aligned to a grid of cell size 1: boundary ring plus
  // interior square.
  const Grid grid({0, 0}, 16.0);
  const geom::Polygon rect = MakeRectPolygon(4, 4, 8, 8);
  const CellCover cover = RasterizePolygon(rect, grid, 4);  // Cell size 1.
  // Interior: cells fully inside = 2x2 .. 3x3? The rect spans cells
  // [4..7]x[4..7]; its edges lie on cell borders, so the supercover marks
  // the cells on both sides; interior = cells whose center is inside and
  // untouched by edges.
  EXPECT_GT(cover.interior.size(), 0u);
  EXPECT_GT(cover.boundary.size(), 0u);
  // All cells within the bbox neighborhood.
  for (const uint64_t m : cover.interior) {
    uint32_t x, y;
    sfc::MortonDecode(m, &x, &y);
    EXPECT_GE(x, 4u);
    EXPECT_LE(x, 7u);
    EXPECT_GE(y, 4u);
    EXPECT_LE(y, 7u);
  }
}

TEST(RasterizeTest, InteriorCellsAreFullyInside) {
  const Grid grid({0, 0}, 256.0);
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const geom::Polygon star = MakeStarPolygon({128, 128}, 40, 90, 18, seed);
    const CellCover cover = RasterizePolygon(star, grid, 6);
    for (const uint64_t m : cover.interior) {
      uint32_t x, y;
      sfc::MortonDecode(m, &x, &y);
      const geom::Box cell = grid.CellBoxXY(6, x, y);
      // All four corners inside the polygon.
      EXPECT_TRUE(star.Contains(cell.min)) << "seed " << seed;
      EXPECT_TRUE(star.Contains(cell.max)) << "seed " << seed;
      EXPECT_TRUE(star.Contains({cell.min.x, cell.max.y})) << "seed " << seed;
      EXPECT_TRUE(star.Contains({cell.max.x, cell.min.y})) << "seed " << seed;
    }
  }
}

TEST(RasterizeTest, ConservativeCoversAllPolygonSamples) {
  const Grid grid({0, 0}, 256.0);
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const geom::Polygon star = MakeStarPolygonWithHole({128, 128}, 40, 90, 18, seed);
    const UniformRaster ur = UniformRaster::BuildAtLevel(star, grid, 7);
    // Interior samples.
    for (const geom::Point& p :
         dbsa::testing::RandomPoints(star.bounds(), 500, seed)) {
      if (star.Contains(p)) {
        EXPECT_NE(ur.Classify(p, grid), CellKind::kOutside)
            << "seed " << seed << " point " << p.x << "," << p.y;
      }
    }
  }
}

TEST(RasterizeTest, NonConservativeDropsLowCoverageCells) {
  const Grid grid({0, 0}, 256.0);
  const geom::Polygon star = MakeStarPolygon({128, 128}, 40, 90, 18, 3);
  RasterOptions conservative;
  RasterOptions aggressive;
  aggressive.conservative = false;
  aggressive.min_coverage = 0.5;
  const CellCover keep_all = RasterizePolygon(star, grid, 7, conservative);
  const CellCover dropped = RasterizePolygon(star, grid, 7, aggressive);
  EXPECT_LT(dropped.boundary.size(), keep_all.boundary.size());
  EXPECT_EQ(dropped.interior.size(), keep_all.interior.size());
}

TEST(UniformRasterTest, EpsilonBoundHolds) {
  const Grid grid({0, 0}, 256.0);
  for (const double eps : {16.0, 8.0, 2.0}) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      const geom::Polygon star = MakeStarPolygon({128, 128}, 40, 90, 16, seed);
      const UniformRaster ur = UniformRaster::Build(star, grid, eps);
      EXPECT_LE(ur.AchievedEpsilon(grid), eps * (1 + 1e-12));
      const BoundCheck check = CheckBound(star, grid, ur, eps * 0.25);
      EXPECT_LE(check.max_false_positive_dist, eps + 1e-9)
          << "eps " << eps << " seed " << seed;
      EXPECT_TRUE(check.covers_polygon) << "conservative must cover";
    }
  }
}

TEST(UniformRasterTest, NonConservativeErrorsStayBounded) {
  const Grid grid({0, 0}, 256.0);
  const double eps = 8.0;
  RasterOptions opts;
  opts.conservative = false;
  opts.min_coverage = 0.5;
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const geom::Polygon star = MakeStarPolygon({128, 128}, 40, 90, 16, seed);
    const UniformRaster ur = UniformRaster::Build(star, grid, eps, opts);
    const BoundCheck check = CheckBound(star, grid, ur, eps * 0.25);
    EXPECT_LE(check.max_false_positive_dist, eps + 1e-9) << "seed " << seed;
    // False negatives exist but stay within the bound of the kept cells.
    EXPECT_LE(check.max_false_negative_dist, eps + 1e-9) << "seed " << seed;
  }
}

TEST(UniformRasterTest, ClassifyDistinguishesKinds) {
  const Grid grid({0, 0}, 64.0);
  const geom::Polygon rect = MakeRectPolygon(8.5, 8.5, 55.5, 55.5);
  const UniformRaster ur = UniformRaster::BuildAtLevel(rect, grid, 4);  // 4-unit cells.
  EXPECT_EQ(ur.Classify({32, 32}, grid), CellKind::kInterior);
  EXPECT_EQ(ur.Classify({8.6, 32}, grid), CellKind::kBoundary);
  EXPECT_EQ(ur.Classify({2, 2}, grid), CellKind::kOutside);
}

TEST(UniformRasterTest, FinerLevelsGiveMoreCells) {
  const Grid grid({0, 0}, 256.0);
  const geom::Polygon star = MakeStarPolygon({128, 128}, 40, 90, 16, 9);
  size_t prev = 0;
  for (int level = 4; level <= 8; ++level) {
    const UniformRaster ur = UniformRaster::BuildAtLevel(star, grid, level);
    EXPECT_GT(ur.NumCells(), prev) << "level " << level;
    prev = ur.NumCells();
  }
}

}  // namespace
}  // namespace dbsa::raster
