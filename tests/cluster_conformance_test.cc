// Cluster conformance: a snapshot-loaded cluster is indistinguishable
// from a rebuild-from-scratch cluster — byte for byte, across the full
// acceptance matrix, through failover.
//
//   * MATRIX: K in {1,2,7,16} x threads {serial,4,8} x bounds {Absolute,
//     AtLevel, Exact} x every query kind: the state assembled from
//     snapshot files (client + K slices, via AssembleClusterState)
//     answers byte-identically to the state built from the dataset —
//     in-process AND through a loopback shard cluster whose servers are
//     pinned to the snapshot's epoch.
//   * FAILOVER: a socket cluster where primaries and replicas serve the
//     same snapshot-loaded slices at epoch E; a mid-query primary kill
//     fails over to the replica and the payload does not change by a
//     bit — read-your-epoch across the switch.
//   * SKEW: a client pinned to epoch E' != E gets a TYPED
//     kFailedPrecondition from an epoch-E server (never a silent answer
//     from the wrong dataset generation); the wildcard (epoch 0) on
//     either side keeps legacy configurations serving.
//
// docs/snapshot-format.md (epoch policy) and docs/wire-format.md (v5
// epoch fields) are the contracts pinned here.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/dbsa.h"
#include "data/cluster_demo.h"
#include "service/query_service.h"
#include "service/shard_server.h"
#include "service/socket_cluster.h"
#include "service/socket_transport.h"
#include "service/thread_pool.h"
#include "service/transport.h"
#include "snapshot/snapshot.h"
#include "test_util.h"

namespace dbsa::service {
namespace {

using dbsa::testing::MakeRectPolygon;
using dbsa::testing::MakeStarPolygon;

constexpr uint64_t kEpoch = 7;

void ExpectRowsIdentical(const core::AggregateAnswer& got,
                         const core::AggregateAnswer& want,
                         const std::string& label) {
  ASSERT_EQ(got.rows.size(), want.rows.size()) << label;
  for (size_t r = 0; r < want.rows.size(); ++r) {
    EXPECT_EQ(got.rows[r].region, want.rows[r].region) << label << " region " << r;
    EXPECT_EQ(got.rows[r].value, want.rows[r].value) << label << " region " << r;
    EXPECT_EQ(got.rows[r].lo, want.rows[r].lo) << label << " region " << r;
    EXPECT_EQ(got.rows[r].hi, want.rows[r].hi) << label << " region " << r;
  }
}

void ExpectRangeIdentical(const join::ResultRange& got,
                          const join::ResultRange& want,
                          const std::string& label) {
  EXPECT_EQ(got.estimate, want.estimate) << label;
  EXPECT_EQ(got.lo, want.lo) << label;
  EXPECT_EQ(got.hi, want.hi) << label;
}

/// Round-trips `sharded` through the snapshot interchange: encode the
/// client file + every slice file, parse them back, assemble. What a
/// snapshot-loaded cluster actually serves from.
std::shared_ptr<const core::ShardedState> ThroughSnapshots(
    const core::ShardedState& sharded, uint64_t epoch) {
  StatusOr<snapshot::SnapshotReader> client =
      snapshot::SnapshotReader::Parse(snapshot::EncodeClientSnapshot(sharded, epoch));
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  std::vector<snapshot::SnapshotReader> slices;
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    StatusOr<snapshot::SnapshotReader> slice = snapshot::SnapshotReader::Parse(
        snapshot::EncodeShardSnapshot(sharded, s, epoch));
    EXPECT_TRUE(slice.ok()) << slice.status().ToString();
    slices.push_back(*slice);
  }
  StatusOr<std::shared_ptr<const core::ShardedState>> assembled =
      snapshot::AssembleClusterState(*client, slices);
  EXPECT_TRUE(assembled.ok()) << assembled.status().ToString();
  return *assembled;
}

/// Loopback shard cluster over `sharded` with every server pinned to
/// `epoch`, and a router pinned the same way.
struct EpochedLoopback {
  std::vector<std::shared_ptr<ShardServer>> servers;
  std::shared_ptr<LoopbackTransport> transport;
  std::unique_ptr<ShardRouter> router;
};

EpochedLoopback MakeEpochedLoopback(
    const std::shared_ptr<const core::ShardedState>& sharded, uint64_t epoch) {
  EpochedLoopback seam;
  std::vector<LoopbackTransport::Handler> handlers;
  for (size_t s = 0; s < sharded->num_shards(); ++s) {
    const core::ShardedState::Shard& shard = sharded->shard(s);
    ShardServer::Options options;
    options.shard_index = s;
    options.serving_epoch = epoch;
    seam.servers.push_back(
        std::make_shared<ShardServer>(shard.state, shard.global_ids, options));
    handlers.push_back([server = seam.servers.back()](const std::string& request) {
      return server->Handle(request);
    });
  }
  seam.transport = std::make_shared<LoopbackTransport>(std::move(handlers));
  seam.router = std::make_unique<ShardRouter>(sharded, seam.transport);
  seam.router->set_epoch(epoch);
  return seam;
}

class ClusterConformanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    data::ClusterDemoConfig config;  // 20000 points, 24 regions, 4096^2.
    base_ = core::BuildEngineState(data::ClusterDemoPoints(config),
                                   data::ClusterDemoRegions(config));
  }

  std::shared_ptr<const core::EngineState> base_;
};

// ---- the acceptance matrix --------------------------------------------
// Snapshot-loaded must be byte-identical to rebuilt at every (K, threads,
// bound, kind) — in-process scatter-gather AND through epoch-pinned
// loopback servers. Mode pinned to kPointIndex for aggregates: the
// identity contract is per pinned plan (transports charge different
// message costs, so kAuto may legitimately resolve different plans).
TEST_F(ClusterConformanceTest, SnapshotLoadedMatchesRebuiltEverywhere) {
  const geom::Polygon star = MakeStarPolygon({2000, 2000}, 400, 900, 16, 11);
  const geom::Polygon corner = MakeRectPolygon(100, 100, 380, 420);
  // Prunes to zero shards at every K: a snapshot-loaded cluster must
  // serialize nothing identically too.
  const geom::Polygon empty_rect = MakeRectPolygon(4000.5, 4000.5, 4095.0, 4095.0);
  const std::vector<geom::Polygon> polys = {star, corner, empty_rect};
  const std::vector<query::ErrorBound> bounds = {
      query::ErrorBound::Absolute(8.0), query::ErrorBound::AtLevel(6),
      query::ErrorBound::Exact()};

  for (const size_t k : {size_t{1}, size_t{2}, size_t{7}, size_t{16}}) {
    core::ShardingOptions sharding;
    sharding.num_shards = k;
    const auto rebuilt = core::ShardedState::Build(base_, sharding);
    const auto loaded = ThroughSnapshots(*rebuilt, kEpoch);
    ASSERT_NE(loaded, nullptr);
    ASSERT_TRUE(loaded->has_slices());
    EpochedLoopback loop = MakeEpochedLoopback(loaded, kEpoch);

    for (const size_t threads : {size_t{0}, size_t{4}, size_t{8}}) {
      std::unique_ptr<ThreadPool> pool;
      core::ExecHooks hooks;
      if (threads > 0) {
        pool = std::make_unique<ThreadPool>(threads);
        hooks.parallel_for = [&pool](size_t n,
                                     const std::function<void(size_t)>& fn) {
          pool->ParallelFor(n, fn);
        };
      }
      for (const query::ErrorBound& bound : bounds) {
        const std::string label =
            "k=" + std::to_string(k) + " threads=" + std::to_string(threads) +
            " bound=" + std::string(query::BoundKindName(bound.kind));

        for (const join::AggKind agg : {join::AggKind::kCount, join::AggKind::kSum}) {
          const core::Attr attr =
              agg == join::AggKind::kSum ? core::Attr::kFare : core::Attr::kNone;
          const core::AggregateAnswer want = core::ExecuteAggregate(
              *rebuilt, agg, attr, bound, core::Mode::kPointIndex, hooks);
          const core::AggregateAnswer in_process = core::ExecuteAggregate(
              *loaded, agg, attr, bound, core::Mode::kPointIndex, hooks);
          const core::AggregateAnswer over_loopback = ExecuteAggregate(
              *loop.router, agg, attr, bound, core::Mode::kPointIndex, hooks);
          ExpectRowsIdentical(in_process, want, label + " agg(loaded vs rebuilt)");
          ExpectRowsIdentical(over_loopback, want,
                              label + " agg(epoch-pinned loopback vs rebuilt)");
        }

        for (size_t p = 0; p < polys.size(); ++p) {
          const std::string poly_label = label + " poly=" + std::to_string(p);
          const core::CountAnswer count_want =
              core::ExecuteCount(*rebuilt, polys[p], bound, hooks);
          const core::CountAnswer count_loaded =
              core::ExecuteCount(*loaded, polys[p], bound, hooks);
          const core::CountAnswer count_loopback =
              ExecuteCount(*loop.router, polys[p], bound, hooks);
          ExpectRangeIdentical(count_loaded.range, count_want.range,
                               poly_label + " count(loaded vs rebuilt)");
          ExpectRangeIdentical(count_loopback.range, count_want.range,
                               poly_label + " count(loopback vs rebuilt)");

          const core::SelectAnswer select_want =
              core::ExecuteSelect(*rebuilt, polys[p], bound, hooks);
          const core::SelectAnswer select_loaded =
              core::ExecuteSelect(*loaded, polys[p], bound, hooks);
          const core::SelectAnswer select_loopback =
              ExecuteSelect(*loop.router, polys[p], bound, hooks);
          EXPECT_EQ(select_loaded.ids, select_want.ids)
              << poly_label << " select(loaded vs rebuilt)";
          EXPECT_EQ(select_loopback.ids, select_want.ids)
              << poly_label << " select(loopback vs rebuilt)";
        }
      }
    }
  }
}

// ---- failover at one epoch --------------------------------------------
// Primaries and replicas serve the same snapshot-loaded slices at epoch
// E. A mid-query primary kill must fail over to the replica with the
// payload unchanged — the epoch pin guarantees the replica answer comes
// from the same dataset generation, not merely the same shard index.
TEST_F(ClusterConformanceTest, MidQueryPrimaryKillFailsOverAtTheSameEpoch) {
  const size_t k = 4;
  core::ShardingOptions sharding;
  sharding.num_shards = k;
  const auto rebuilt = core::ShardedState::Build(base_, sharding);
  const auto loaded = ThroughSnapshots(*rebuilt, kEpoch);

  std::vector<std::shared_ptr<std::atomic<bool>>> drop_primary;
  InProcessShardClusterOptions options;
  options.with_replicas = true;
  options.serving_epoch = kEpoch;
  options.wrap_primary = [&drop_primary](size_t, ShardListener::Handler inner) {
    drop_primary.push_back(std::make_shared<std::atomic<bool>>(false));
    const auto drop = drop_primary.back();
    return ShardListener::Handler([inner, drop](const std::string& request) {
      if (drop->load()) return std::string();  // Drop the connection.
      return inner(request);
    });
  };
  InProcessShardCluster cluster =
      MakeInProcessShardClusterFromState(loaded, options);
  auto transport = std::make_shared<SocketTransport>(cluster.placement,
                                                     SocketTransport::Options{});
  ShardRouter router(cluster.sharded, transport);
  router.set_epoch(kEpoch);

  const geom::Polygon star = MakeStarPolygon({2000, 2000}, 500, 1100, 14, 3);
  const query::ErrorBound bound = query::ErrorBound::Absolute(8.0);
  const core::CountAnswer want = core::ExecuteCount(*rebuilt, star, bound, {});
  const core::CountAnswer before = ExecuteCount(router, star, bound, {});
  ExpectRangeIdentical(before.range, want.range, "healthy snapshot cluster");

  // Every primary now reads the request and kills the connection — the
  // client must fail over to the snapshot-loaded replica, and the answer
  // must not change by a bit.
  for (const auto& drop : drop_primary) drop->store(true);
  const core::CountAnswer after = ExecuteCount(router, star, bound, {});
  ExpectRangeIdentical(after.range, want.range, "served by replicas");
  EXPECT_GE(transport->stats().failovers, 1u);
  EXPECT_EQ(transport->stats().transport_errors, 0u);

  // The epoch guarantee is effective, not incidental: the replicas are
  // REJECTING other generations while serving ours.
  ScatterRequest stale;
  stale.kind = ScatterRequest::Kind::kAggregateCells;
  stale.has_cells = true;
  stale.epoch = kEpoch + 1;
  try {
    std::string response = Roundtrip(*transport, 0, stale.Encode());
    GatherPartial partial;
    ASSERT_TRUE(GatherPartial::Decode(response, &partial).ok());
    EXPECT_EQ(partial.status, GatherPartial::Disposition::kError);
    EXPECT_EQ(partial.code, StatusCode::kFailedPrecondition);
    EXPECT_EQ(partial.epoch, kEpoch) << "rejection must name the serving epoch";
  } catch (const StatusException& e) {
    FAIL() << "skew must be a typed partial, not a transport error: "
           << e.status().ToString();
  }
}

// ---- epoch semantics on the wire --------------------------------------

TEST_F(ClusterConformanceTest, EpochSkewIsTypedAndWildcardsKeepServing) {
  core::ShardingOptions sharding;
  sharding.num_shards = 2;
  const auto loaded = ThroughSnapshots(*core::ShardedState::Build(base_, sharding),
                                       kEpoch);

  // Server pinned to kEpoch.
  const core::ShardedState::Shard& shard = loaded->shard(0);
  ShardServer::Options pinned;
  pinned.serving_epoch = kEpoch;
  ShardServer server(shard.state, shard.global_ids, pinned);

  ScatterRequest request;
  request.kind = ScatterRequest::Kind::kAggregateCells;
  request.has_cells = true;

  // Matching pin: served, and the partial echoes the serving epoch.
  request.epoch = kEpoch;
  {
    GatherPartial partial;
    ASSERT_TRUE(GatherPartial::Decode(server.Handle(request.Encode()), &partial).ok());
    EXPECT_EQ(partial.status, GatherPartial::Disposition::kOk);
    EXPECT_EQ(partial.epoch, kEpoch);
  }

  // Wildcard request (epoch 0): served by a pinned server — the legacy
  // client shape keeps working against snapshot-loaded deployments.
  request.epoch = 0;
  {
    GatherPartial partial;
    ASSERT_TRUE(GatherPartial::Decode(server.Handle(request.Encode()), &partial).ok());
    EXPECT_EQ(partial.status, GatherPartial::Disposition::kOk);
    EXPECT_EQ(partial.epoch, kEpoch) << "every partial carries the serving epoch";
  }

  // Pinned to another generation: TYPED rejection naming both epochs.
  request.epoch = kEpoch + 3;
  {
    GatherPartial partial;
    ASSERT_TRUE(GatherPartial::Decode(server.Handle(request.Encode()), &partial).ok());
    EXPECT_EQ(partial.status, GatherPartial::Disposition::kError);
    EXPECT_EQ(partial.code, StatusCode::kFailedPrecondition);
    EXPECT_EQ(partial.epoch, kEpoch);
    EXPECT_EQ(server.stats().epoch_rejects, 1u);
  }

  // Wildcard server (epoch 0, the rebuild-from-flags shape): serves any
  // pin, echoes epoch 0.
  ShardServer wildcard(shard.state, shard.global_ids);
  request.epoch = kEpoch + 3;
  {
    GatherPartial partial;
    ASSERT_TRUE(
        GatherPartial::Decode(wildcard.Handle(request.Encode()), &partial).ok());
    EXPECT_EQ(partial.status, GatherPartial::Disposition::kOk);
    EXPECT_EQ(partial.epoch, 0u);
  }

  // Through the router: a client pinned to the wrong generation gets the
  // typed failure end to end (StatusException from the gather).
  EpochedLoopback seam = MakeEpochedLoopback(loaded, kEpoch);
  seam.router->set_epoch(kEpoch + 1);
  const geom::Polygon star = MakeStarPolygon({2000, 2000}, 500, 1100, 14, 3);
  try {
    ExecuteCount(*seam.router, star, query::ErrorBound::Absolute(8.0), {});
    FAIL() << "expected StatusException";
  } catch (const StatusException& e) {
    EXPECT_EQ(e.status().code(), StatusCode::kFailedPrecondition)
        << e.status().ToString();
  }
}

// ---- the serving layer ------------------------------------------------
// QueryService over a preassembled snapshot state: results byte-identical
// to a service that rebuilt from the dataset, while every shard request
// carries the pinned epoch.
TEST_F(ClusterConformanceTest, QueryServiceOverSnapshotStateMatchesRebuilt) {
  const size_t k = 4;
  core::ShardingOptions sharding;
  sharding.num_shards = k;
  const auto rebuilt = core::ShardedState::Build(base_, sharding);
  const auto loaded = ThroughSnapshots(*rebuilt, kEpoch);

  ServiceOptions rebuilt_options;
  rebuilt_options.num_threads = 4;
  rebuilt_options.num_shards = k;
  rebuilt_options.use_transport = true;
  QueryService rebuilt_service(base_, rebuilt_options);

  ServiceOptions snapshot_options = rebuilt_options;
  snapshot_options.serving_epoch = kEpoch;
  QueryService snapshot_service(loaded, snapshot_options);

  const geom::Polygon star = MakeStarPolygon({1400, 2600}, 300, 800, 12, 5);
  const auto submit_all = [&](QueryService& service) {
    ExecOptions abs;
    abs.bound = query::ErrorBound::Absolute(8.0);
    abs.mode = core::Mode::kPointIndex;
    ExecOptions exact;
    exact.bound = query::ErrorBound::Exact();
    for (const ExecOptions& options : {abs, exact}) {
      service.Submit(Query::Aggregate(join::AggKind::kSum, core::Attr::kFare),
                     options);
      service.Submit(Query::Count(star), options);
      service.Submit(Query::Select(star), options);
    }
  };
  submit_all(snapshot_service);
  submit_all(rebuilt_service);
  const std::vector<Result> got = snapshot_service.Drain();
  const std::vector<Result> want = rebuilt_service.Drain();
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < want.size(); ++i) {
    ASSERT_TRUE(got[i].ok()) << i << ": " << got[i].status.ToString();
    ASSERT_TRUE(want[i].ok()) << i;
    EXPECT_EQ(got[i].kind, want[i].kind) << i;
    switch (want[i].kind) {
      case QueryKind::kAggregate:
        ExpectRowsIdentical(got[i].aggregate, want[i].aggregate,
                            "ticket " + std::to_string(i));
        break;
      case QueryKind::kCount:
        ExpectRangeIdentical(got[i].range, want[i].range,
                             "ticket " + std::to_string(i));
        break;
      case QueryKind::kSelect:
        EXPECT_EQ(got[i].ids, want[i].ids) << i;
        break;
    }
  }
}

}  // namespace
}  // namespace dbsa::service
