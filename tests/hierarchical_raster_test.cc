// Tests for the hierarchical raster: cell disjointness, equivalence with
// the uniform raster's classification, budget compliance and the epsilon
// bound in both construction modes.

#include <gtest/gtest.h>

#include "raster/hierarchical_raster.h"
#include "raster/verify.h"
#include "test_util.h"

namespace dbsa::raster {
namespace {

using dbsa::testing::MakeRectPolygon;
using dbsa::testing::MakeStarPolygon;
using dbsa::testing::MakeStarPolygonWithHole;

TEST(HrTest, CellsAreDisjointAndSorted) {
  const Grid grid({0, 0}, 256.0);
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const geom::Polygon star = MakeStarPolygon({128, 128}, 40, 90, 18, seed);
    const HierarchicalRaster hr = HierarchicalRaster::BuildEpsilon(star, grid, 4.0);
    const auto& cells = hr.cells();
    ASSERT_FALSE(cells.empty());
    for (size_t i = 1; i < cells.size(); ++i) {
      ASSERT_LT(cells[i - 1].id.id(), cells[i].id.id());
      // Disjoint: previous range ends before the next starts.
      ASSERT_LT(cells[i - 1].id.LeafKeyMax(), cells[i].id.LeafKeyMin())
          << "seed " << seed;
    }
  }
}

TEST(HrTest, ClassificationMatchesUniformRaster) {
  // HR must represent exactly the same region as the UR it was merged
  // from: same classification for random probes (modulo interior cells
  // reporting kInterior for merged areas).
  const Grid grid({0, 0}, 256.0);
  const double eps = 4.0;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const geom::Polygon star = MakeStarPolygonWithHole({128, 128}, 40, 90, 18, seed);
    const UniformRaster ur = UniformRaster::Build(star, grid, eps);
    const HierarchicalRaster hr = HierarchicalRaster::BuildEpsilon(star, grid, eps);
    for (const geom::Point& p :
         dbsa::testing::RandomPoints(geom::Box(20, 20, 236, 236), 2000, seed)) {
      const CellKind ur_kind = ur.Classify(p, grid);
      const CellKind hr_kind = hr.Classify(p, grid);
      ASSERT_EQ(ur_kind == CellKind::kOutside, hr_kind == CellKind::kOutside)
          << "seed " << seed << " at " << p.x << "," << p.y;
      // Boundary cells are identical (same level, unmerged).
      ASSERT_EQ(ur_kind == CellKind::kBoundary, hr_kind == CellKind::kBoundary)
          << "seed " << seed;
    }
  }
}

TEST(HrTest, MergesReduceCellCount) {
  const Grid grid({0, 0}, 256.0);
  const geom::Polygon star = MakeStarPolygon({128, 128}, 40, 90, 18, 5);
  const UniformRaster ur = UniformRaster::Build(star, grid, 2.0);
  const HierarchicalRaster hr = HierarchicalRaster::BuildEpsilon(star, grid, 2.0);
  EXPECT_LT(hr.NumCells(), ur.NumCells());
  // Boundary cells are never merged.
  EXPECT_EQ(hr.NumBoundaryCells(), ur.cover().boundary.size());
}

TEST(HrTest, EpsilonBoundHolds) {
  const Grid grid({0, 0}, 256.0);
  for (const double eps : {16.0, 4.0}) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      const geom::Polygon star = MakeStarPolygon({128, 128}, 40, 90, 16, seed);
      const HierarchicalRaster hr = HierarchicalRaster::BuildEpsilon(star, grid, eps);
      EXPECT_LE(hr.AchievedEpsilon(grid), eps * (1 + 1e-12));
      const BoundCheck check = CheckBound(star, grid, hr, eps * 0.25);
      EXPECT_LE(check.max_false_positive_dist, eps + 1e-9)
          << "eps " << eps << " seed " << seed;
      EXPECT_TRUE(check.covers_polygon);
    }
  }
}

class HrBudgetTest : public ::testing::TestWithParam<size_t> {};

TEST_P(HrBudgetTest, RespectsBudgetAndCovers) {
  const size_t budget = GetParam();
  const Grid grid({0, 0}, 256.0);
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const geom::Polygon star = MakeStarPolygon({128, 128}, 40, 90, 18, seed);
    const HierarchicalRaster hr = HierarchicalRaster::BuildBudget(star, grid, budget);
    EXPECT_LE(hr.NumCells(), budget) << "seed " << seed;
    EXPECT_GT(hr.NumCells(), 0u);
    // Conservative: still covers all interior samples.
    for (const geom::Point& p :
         dbsa::testing::RandomPoints(star.bounds(), 300, seed)) {
      if (star.Contains(p)) {
        ASSERT_NE(hr.Classify(p, grid), CellKind::kOutside)
            << "budget " << budget << " seed " << seed;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Budgets, HrBudgetTest,
                         ::testing::Values(8u, 32u, 128u, 512u),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "budget" + std::to_string(info.param);
                         });

TEST(HrTest, LargerBudgetTightensEpsilon) {
  const Grid grid({0, 0}, 256.0);
  const geom::Polygon star = MakeStarPolygon({128, 128}, 40, 90, 18, 7);
  double prev_eps = 1e300;
  for (const size_t budget : {16u, 64u, 256u, 1024u}) {
    const HierarchicalRaster hr = HierarchicalRaster::BuildBudget(star, grid, budget);
    const double eps = hr.AchievedEpsilon(grid);
    EXPECT_LE(eps, prev_eps) << "budget " << budget;
    prev_eps = eps;
  }
}

TEST(HrTest, BudgetModeMatchesExactnessOnRect) {
  // A grid-aligned rectangle needs few cells; budget mode should find an
  // exact cover (interior only, no boundary error for centered probes).
  const Grid grid({0, 0}, 256.0);
  const geom::Polygon rect = MakeRectPolygon(64, 64, 192, 192);
  const HierarchicalRaster hr = HierarchicalRaster::BuildBudget(rect, grid, 64);
  EXPECT_EQ(hr.Classify({128, 128}, grid), CellKind::kInterior);
  EXPECT_EQ(hr.Classify({10, 10}, grid), CellKind::kOutside);
}

TEST(HrTest, TopDownMatchesBottomUp) {
  // The two epsilon-driven constructions must represent the same region:
  // identical classification everywhere (boundary cells agree exactly;
  // interior merge granularity may differ, classification may not).
  const Grid grid({0, 0}, 256.0);
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const geom::Polygon star = MakeStarPolygonWithHole({128, 128}, 40, 90, 18, seed);
    const HierarchicalRaster bottom_up =
        HierarchicalRaster::BuildEpsilonBottomUp(star, grid, 4.0);
    const HierarchicalRaster top_down =
        HierarchicalRaster::BuildEpsilonTopDown(star, grid, 4.0);
    for (const geom::Point& p :
         dbsa::testing::RandomPoints(geom::Box(20, 20, 236, 236), 3000, seed * 3)) {
      const CellKind a = bottom_up.Classify(p, grid);
      const CellKind b = top_down.Classify(p, grid);
      ASSERT_EQ(a == CellKind::kOutside, b == CellKind::kOutside)
          << "seed " << seed << " at " << p.x << "," << p.y;
      ASSERT_EQ(a == CellKind::kBoundary, b == CellKind::kBoundary)
          << "seed " << seed << " at " << p.x << "," << p.y;
    }
  }
}

TEST(HrTest, TopDownEpsilonBoundHolds) {
  const Grid grid({0, 0}, 256.0);
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const geom::Polygon star = MakeStarPolygon({128, 128}, 40, 90, 16, seed);
    const HierarchicalRaster hr =
        HierarchicalRaster::BuildEpsilonTopDown(star, grid, 8.0);
    const BoundCheck check = CheckBound(star, grid, hr, 2.0);
    EXPECT_LE(check.max_false_positive_dist, 8.0 + 1e-9) << "seed " << seed;
    EXPECT_TRUE(check.covers_polygon) << "seed " << seed;
  }
}

TEST(HrTest, MemoryScalesWithCells) {
  const Grid grid({0, 0}, 256.0);
  const geom::Polygon star = MakeStarPolygon({128, 128}, 40, 90, 18, 3);
  const HierarchicalRaster coarse = HierarchicalRaster::BuildEpsilon(star, grid, 16.0);
  const HierarchicalRaster fine = HierarchicalRaster::BuildEpsilon(star, grid, 1.0);
  EXPECT_GT(fine.MemoryBytes(), coarse.MemoryBytes());
}

}  // namespace
}  // namespace dbsa::raster
