// Tests for the Section 3 point-indexing pipeline: all three search
// strategies return identical aggregates; conservative query cells give
// counts >= exact; result ranges always contain the exact answer.

#include <gtest/gtest.h>

#include "join/point_index_join.h"
#include "join/result_range.h"
#include "test_util.h"

namespace dbsa::join {
namespace {

struct PiSetup {
  raster::Grid grid{{0, 0}, 512.0};
  std::vector<geom::Point> pts;
  std::vector<double> attrs;
};

PiSetup MakeSetup(size_t n, uint64_t seed) {
  PiSetup s;
  s.pts = dbsa::testing::RandomPoints(geom::Box(5, 5, 507, 507), n, seed);
  Rng rng(seed + 1);
  for (size_t i = 0; i < n; ++i) s.attrs.push_back(rng.Uniform(0, 2));
  return s;
}

TEST(PointIndexTest, StrategiesAgree) {
  const PiSetup s = MakeSetup(20000, 1);
  const PointIndex index(s.pts.data(), s.attrs.data(), s.pts.size(), s.grid);
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const geom::Polygon poly =
        dbsa::testing::MakeStarPolygon({256, 256}, 60, 150, 18, seed);
    const raster::HierarchicalRaster hr =
        raster::HierarchicalRaster::BuildEpsilon(poly, s.grid, 4.0);
    const CellAggregate bs = index.QueryCells(hr, SearchStrategy::kBinarySearch);
    const CellAggregate rs = index.QueryCells(hr, SearchStrategy::kRadixSpline);
    const CellAggregate bt = index.QueryCells(hr, SearchStrategy::kBTree);
    ASSERT_DOUBLE_EQ(bs.count, rs.count) << "seed " << seed;
    ASSERT_DOUBLE_EQ(bs.count, bt.count) << "seed " << seed;
    ASSERT_NEAR(bs.sum, rs.sum, 1e-9);
    ASSERT_NEAR(bs.sum, bt.sum, 1e-9);
    ASSERT_EQ(bs.query_cells, rs.query_cells);
  }
}

TEST(PointIndexTest, ConservativeCountsBracketExact) {
  const PiSetup s = MakeSetup(30000, 2);
  const PointIndex index(s.pts.data(), s.attrs.data(), s.pts.size(), s.grid);
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const geom::Polygon poly =
        dbsa::testing::MakeStarPolygon({256, 256}, 60, 150, 18, seed);
    size_t exact = 0;
    for (const geom::Point& p : s.pts) {
      if (poly.bounds().Contains(p) && poly.Contains(p)) ++exact;
    }
    const raster::HierarchicalRaster hr =
        raster::HierarchicalRaster::BuildEpsilon(poly, s.grid, 4.0);
    const CellAggregate agg = index.QueryCells(hr, SearchStrategy::kRadixSpline);
    // Conservative: count >= exact; over-count confined to boundary cells.
    EXPECT_GE(agg.count + 1e-9, static_cast<double>(exact)) << "seed " << seed;
    EXPECT_LE(agg.count - agg.boundary_count, static_cast<double>(exact) + 1e-9)
        << "interior-only count must under-count";
  }
}

TEST(PointIndexTest, ResultRangeAlwaysContainsExact) {
  const PiSetup s = MakeSetup(30000, 3);
  const PointIndex index(s.pts.data(), s.attrs.data(), s.pts.size(), s.grid);
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const geom::Polygon poly =
        dbsa::testing::MakeStarPolygon({200 + 10.0 * seed, 256}, 50, 140, 16, seed);
    size_t exact_count = 0;
    double exact_sum = 0;
    for (size_t i = 0; i < s.pts.size(); ++i) {
      if (poly.bounds().Contains(s.pts[i]) && poly.Contains(s.pts[i])) {
        ++exact_count;
        exact_sum += s.attrs[i];
      }
    }
    const raster::HierarchicalRaster hr =
        raster::HierarchicalRaster::BuildEpsilon(poly, s.grid, 8.0);
    const CellAggregate agg = index.QueryCells(hr, SearchStrategy::kBinarySearch);
    const ResultRange count_range = CountRange(agg);
    const ResultRange sum_range = SumRange(agg);
    EXPECT_TRUE(count_range.Contains(static_cast<double>(exact_count)))
        << "seed " << seed << " range [" << count_range.lo << "," << count_range.hi
        << "] exact " << exact_count;
    EXPECT_TRUE(sum_range.Contains(exact_sum)) << "seed " << seed;
    // The beta estimate lands inside the guaranteed interval.
    EXPECT_GE(count_range.estimate, count_range.lo - 1e-9);
    EXPECT_LE(count_range.estimate, count_range.hi + 1e-9);
  }
}

TEST(PointIndexTest, TighterEpsilonShrinksRange) {
  const PiSetup s = MakeSetup(30000, 4);
  const PointIndex index(s.pts.data(), s.attrs.data(), s.pts.size(), s.grid);
  const geom::Polygon poly = dbsa::testing::MakeStarPolygon({256, 256}, 60, 150, 18, 5);
  double prev_width = 1e300;
  for (const double eps : {32.0, 8.0, 2.0}) {
    const raster::HierarchicalRaster hr =
        raster::HierarchicalRaster::BuildEpsilon(poly, s.grid, eps);
    const CellAggregate agg = index.QueryCells(hr, SearchStrategy::kBinarySearch);
    const ResultRange range = CountRange(agg);
    EXPECT_LT(range.Width(), prev_width) << "eps " << eps;
    prev_width = range.Width();
  }
}

TEST(PointIndexTest, BudgetQueryPolygonPath) {
  const PiSetup s = MakeSetup(10000, 5);
  const PointIndex index(s.pts.data(), s.attrs.data(), s.pts.size(), s.grid);
  const geom::Polygon poly = dbsa::testing::MakeStarPolygon({256, 256}, 60, 150, 18, 6);
  size_t prev_cells = 0;
  double prev_err = 1e300;
  size_t exact = 0;
  for (const geom::Point& p : s.pts) {
    if (poly.bounds().Contains(p) && poly.Contains(p)) ++exact;
  }
  for (const size_t budget : {32u, 128u, 512u}) {
    const CellAggregate agg =
        index.QueryPolygon(poly, budget, SearchStrategy::kRadixSpline);
    EXPECT_LE(agg.query_cells, budget);
    EXPECT_GT(agg.query_cells, prev_cells);
    prev_cells = agg.query_cells;
    const double err = std::fabs(agg.count - static_cast<double>(exact));
    EXPECT_LE(err, prev_err + 1.0) << "budget " << budget;
    prev_err = err;
  }
  // At 512 cells the count is close to exact (Figure 4(b)'s message).
  EXPECT_LT(prev_err / static_cast<double>(exact), 0.12);
}

TEST(PointIndexTest, MemoryAccounting) {
  const PiSetup s = MakeSetup(5000, 6);
  const PointIndex index(s.pts.data(), s.attrs.data(), s.pts.size(), s.grid);
  const size_t bs = index.MemoryBytes(SearchStrategy::kBinarySearch);
  const size_t rs = index.MemoryBytes(SearchStrategy::kRadixSpline);
  const size_t bt = index.MemoryBytes(SearchStrategy::kBTree);
  EXPECT_GT(bs, 0u);
  EXPECT_GT(rs, bs);  // Spline + radix table on top of the keys.
  EXPECT_GT(bt, bs);
}

}  // namespace
}  // namespace dbsa::join
