// Tests for the canvas plan layer: alternative operator trees for the
// same query must produce identical aggregates (Section 4's optimizer
// premise), and the fused mask-reduce must equal the materialized path.

#include <gtest/gtest.h>

#include "canvas/plan.h"
#include "test_util.h"

namespace dbsa::canvas {
namespace {

struct PlanFixture {
  std::vector<geom::Point> pts;
  std::vector<double> weights;
  geom::Polygon poly;
  geom::Box viewport{0, 0, 256, 256};

  explicit PlanFixture(uint64_t seed) {
    pts = dbsa::testing::RandomPoints(geom::Box(10, 10, 246, 246), 5000, seed);
    Rng rng(seed + 5);
    for (size_t i = 0; i < pts.size(); ++i) weights.push_back(rng.Uniform(1, 3));
    poly = dbsa::testing::MakeStarPolygon({128, 128}, 40, 90, 16, seed);
  }
};

TEST(CanvasPlanTest, LeafExecutionMatchesDirectRender) {
  const PlanFixture f(1);
  const auto plan = CanvasPlan::RenderPoints(f.pts.data(), f.weights.data(),
                                             f.pts.size());
  const Canvas via_plan = plan->Execute(128, 128, f.viewport);
  Canvas direct(128, 128, f.viewport);
  ScatterPoints(&direct, f.pts.data(), f.weights.data(), f.pts.size());
  for (size_t i = 0; i < direct.data().size(); ++i) {
    ASSERT_FLOAT_EQ(via_plan.data()[i].r, direct.data()[i].r);
    ASSERT_FLOAT_EQ(via_plan.data()[i].g, direct.data()[i].g);
  }
}

TEST(CanvasPlanTest, AlternativePlansAgree) {
  // Section 4: the mask-based and the multiply-blend-based trees answer
  // the same aggregation.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const PlanFixture f(seed);
    const auto plan_mask =
        AggregationPlanMask(f.pts.data(), f.weights.data(), f.pts.size(), f.poly);
    const auto plan_blend =
        AggregationPlanBlend(f.pts.data(), f.weights.data(), f.pts.size(), f.poly);
    const Rgba a = plan_mask->ExecuteAndReduce(256, 256, f.viewport);
    const Rgba b = plan_blend->ExecuteAndReduce(256, 256, f.viewport);
    ASSERT_FLOAT_EQ(a.r, b.r) << "seed " << seed;  // Counts.
    ASSERT_NEAR(a.g, b.g, 1e-2) << "seed " << seed;  // Weight sums.
  }
}

TEST(CanvasPlanTest, FusedReduceEqualsMaterialized) {
  const PlanFixture f(7);
  const auto plan =
      AggregationPlanMask(f.pts.data(), f.weights.data(), f.pts.size(), f.poly);
  // Fused path.
  const Rgba fused = plan->ExecuteAndReduce(200, 200, f.viewport);
  // Materialized path: execute the tree, reduce the canvas.
  const Canvas materialized = plan->Execute(200, 200, f.viewport);
  const Rgba direct = Reduce(materialized);
  EXPECT_FLOAT_EQ(fused.r, direct.r);
  EXPECT_NEAR(fused.g, direct.g, 1e-2);
}

TEST(CanvasPlanTest, PlanCountsMatchScanline) {
  // The plan result equals the fused scanline computation BRJ uses.
  const PlanFixture f(3);
  const auto plan =
      AggregationPlanMask(f.pts.data(), f.weights.data(), f.pts.size(), f.poly);
  const Rgba agg = plan->ExecuteAndReduce(256, 256, f.viewport);

  Canvas points_canvas(256, 256, f.viewport);
  ScatterPoints(&points_canvas, f.pts.data(), f.weights.data(), f.pts.size());
  double count = 0;
  ScanPolygon(points_canvas, f.poly, [&](int y, int x0, int x1) {
    for (int x = x0; x <= x1; ++x) count += points_canvas.At(x, y).r;
  });
  EXPECT_FLOAT_EQ(agg.r, static_cast<float>(count));
}

TEST(CanvasPlanTest, BlendTreeComposition) {
  // blend(render(A), render(B), ADD) == scatter A then B into one canvas.
  const PlanFixture f1(11), f2(12);
  const auto plan = CanvasPlan::Blend(
      CanvasPlan::RenderPoints(f1.pts.data(), nullptr, f1.pts.size()),
      CanvasPlan::RenderPoints(f2.pts.data(), nullptr, f2.pts.size()), BlendFn::kAdd);
  const Canvas combined = plan->Execute(64, 64, f1.viewport);
  Canvas direct(64, 64, f1.viewport);
  ScatterPoints(&direct, f1.pts.data(), nullptr, f1.pts.size());
  ScatterPoints(&direct, f2.pts.data(), nullptr, f2.pts.size());
  for (size_t i = 0; i < direct.data().size(); ++i) {
    ASSERT_FLOAT_EQ(combined.data()[i].r, direct.data()[i].r);
  }
}

TEST(CanvasPlanTest, AffineNodeIsIdentityAtSameGeometry) {
  const PlanFixture f(13);
  const auto base = CanvasPlan::RenderPolygon(f.poly);
  const auto wrapped = CanvasPlan::Affine(base);
  const Canvas a = base->Execute(100, 100, f.viewport);
  const Canvas b = wrapped->Execute(100, 100, f.viewport);
  for (size_t i = 0; i < a.data().size(); ++i) {
    ASSERT_FLOAT_EQ(a.data()[i].a, b.data()[i].a);
  }
}

TEST(CanvasPlanTest, DescribePrintsTree) {
  const PlanFixture f(17);
  const auto plan =
      AggregationPlanMask(f.pts.data(), f.weights.data(), f.pts.size(), f.poly);
  const std::string explain = plan->Describe();
  EXPECT_NE(explain.find("MaskWhere"), std::string::npos);
  EXPECT_NE(explain.find("RenderPoints"), std::string::npos);
  EXPECT_NE(explain.find("RenderPolygon"), std::string::npos);
}

}  // namespace
}  // namespace dbsa::canvas
