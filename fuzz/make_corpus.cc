// Regenerates the checked-in seed corpus for fuzz_parse_frame: one valid
// v5 frame per message type/variant, written into the directory given as
// argv[1] (default fuzz/corpus/parse_frame). Run from the repo root after
// any wire change, and commit the result — the fuzzer starts from real
// frames, not from zero.
//
//   cmake -B build -S . -DDBSA_FUZZ=ON && cmake --build build --target make_corpus
//   ./build/make_corpus fuzz/corpus/parse_frame

#include <cstdio>
#include <fstream>
#include <string>

#include "service/approx_cache.h"
#include "service/transport.h"

namespace {

using dbsa::service::GatherPartial;
using dbsa::service::ObjectKey;
using dbsa::service::ScatterRequest;
using dbsa::service::StatsReply;
using dbsa::service::StatsRequest;

bool WriteFile(const std::string& dir, const char* name,
               const std::string& bytes) {
  const std::string path = dir + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) {
    std::fprintf(stderr, "make_corpus: cannot write %s\n", path.c_str());
    return false;
  }
  std::printf("%s: %zu bytes\n", path.c_str(), bytes.size());
  return true;
}

ScatterRequest BaseScatter() {
  ScatterRequest request;
  request.bound_kind = dbsa::query::BoundKind::kAbsoluteDistance;
  request.bound_epsilon = 125.0;
  request.level = 9;
  request.checksum = 0x0123456789abcdefULL;
  request.trace_hi = 0xc0ffee00c0ffee00ULL;
  request.trace_lo = 0xdeadbeefdeadbeefULL;
  request.span_id = 42;
  request.epoch = 9;  // Pinned to a snapshot generation (v5 epoch field).
  request.has_object = true;
  request.object = ObjectKey(0x8000000000000001ULL, 7);
  request.has_cells = true;
  for (uint64_t i = 1; i <= 4; ++i) {
    dbsa::raster::HrCell cell;
    cell.id = dbsa::raster::CellId(i * 21);
    cell.boundary = (i % 2) == 0;
    request.cells.push_back(cell);
  }
  return request;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "fuzz/corpus/parse_frame";
  bool ok = true;

  ScatterRequest aggregate = BaseScatter();
  aggregate.kind = ScatterRequest::Kind::kAggregateCells;
  ok &= WriteFile(dir, "scatter_aggregate.bin", aggregate.Encode());

  ScatterRequest select = BaseScatter();
  select.kind = ScatterRequest::Kind::kSelectIds;
  ok &= WriteFile(dir, "scatter_select.bin", select.Encode());

  ScatterRequest warm = BaseScatter();
  warm.kind = ScatterRequest::Kind::kWarm;
  ok &= WriteFile(dir, "scatter_warm.bin", warm.Encode());

  ScatterRequest reference = BaseScatter();
  reference.has_cells = false;  // Cache-reference request: no cell payload.
  reference.cells.clear();
  ok &= WriteFile(dir, "scatter_reference.bin", reference.Encode());

  GatherPartial gather_aggregate;
  gather_aggregate.kind = ScatterRequest::Kind::kAggregateCells;
  gather_aggregate.epoch = 9;  // Serving epoch rides every partial (v5).
  gather_aggregate.aggregate.count = 128.0;
  gather_aggregate.aggregate.sum = 3.25;
  gather_aggregate.aggregate.sum_comp = -1e-17;
  gather_aggregate.aggregate.boundary_count = 16.0;
  gather_aggregate.aggregate.boundary_sum = 0.5;
  gather_aggregate.aggregate.query_cells = 4;
  gather_aggregate.aggregate.searches = 4;
  ok &= WriteFile(dir, "gather_aggregate.bin", gather_aggregate.Encode());

  GatherPartial gather_select;
  gather_select.kind = ScatterRequest::Kind::kSelectIds;
  gather_select.probe_cells = 4;
  gather_select.keyed_ids = {{100, 1}, {200, 2}, {300, 3}};
  ok &= WriteFile(dir, "gather_select.bin", gather_select.Encode());

  const GatherPartial gather_error = GatherPartial::FromStatus(
      ScatterRequest::Kind::kAggregateCells,
      GatherPartial::Disposition::kError,
      dbsa::Status::InvalidArgument("corpus seed error partial"));
  ok &= WriteFile(dir, "gather_error.bin", gather_error.Encode());

  const GatherPartial gather_not_cached = GatherPartial::FromStatus(
      ScatterRequest::Kind::kSelectIds, GatherPartial::Disposition::kNotCached,
      dbsa::Status::NotFound("slice not cached"));
  ok &= WriteFile(dir, "gather_not_cached.bin", gather_not_cached.Encode());

  ok &= WriteFile(dir, "stats_request.bin", StatsRequest().Encode());

  StatsReply stats_reply;
  stats_reply.text = "# TYPE dbsa_queries_total counter\ndbsa_queries_total 1\n";
  ok &= WriteFile(dir, "stats_reply.bin", stats_reply.Encode());

  return ok ? 0 : 1;
}
