// Fuzz harness for the snapshot reader (src/snapshot/snapshot.h). The
// reader's contract is TOTAL — any byte string resolves to OK or a
// typed Status (corruption -> kInvalidArgument, version skew ->
// kUnimplemented), never UB — and a snapshot file is exactly the kind
// of input an operator restores from disk they do not control.
//
// Same two build modes as fuzz_parse_frame.cc (CMake option DBSA_FUZZ):
// clang gets -fsanitize=fuzzer coverage-guided mutation, everything
// else gets the standalone corpus-replay + random-mutation main below.
// On top of the generic byte mutations, the standalone driver knows the
// container format (directory offsets, FNV-1a section checksums) and
// fixes the checksum up after corrupting section bytes — the mutation
// class that penetrates past the checksum gate into the section
// decoders, where the interesting bugs live.
//
// Seed corpus: the checked-in golden fixture (tests/golden/snapshot/
// *.snapshot) plus the deliberately corrupted negative fixture —
// scripts/check_snapshot_golden.sh already keeps the seeds fresh, so
// there is no second corpus directory to drift.

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "snapshot/snapshot.h"
#include "util/check.h"
#include "util/determinism.h"

namespace {

using dbsa::Status;
using dbsa::StatusCode;
using dbsa::StatusOr;
using dbsa::snapshot::SnapshotReader;

void CheckOneInput(const uint8_t* data, size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data),  // lint-allow-reinterpret: libFuzzer ABI hands uint8_t*, Parse wants chars.
                          size);

  StatusOr<SnapshotReader> reader = SnapshotReader::Parse(bytes);
  if (!reader.ok()) {
    // The only rejections the format defines: corruption and version
    // skew. Anything else (or a crash before we get here) is a bug.
    DBSA_CHECK(reader.status().code() == StatusCode::kInvalidArgument ||
               reader.status().code() == StatusCode::kUnimplemented);
    return;
  }

  // Parser-accepted invariants: the epoch is never the wire wildcard and
  // the section count fits the directory the geometry checks walked.
  DBSA_CHECK(reader->meta().epoch != 0);

  // Everything downstream of Parse must be total too: a well-formed
  // container can still hold garbage sections (the checksum-fixup
  // mutation below manufactures exactly that).
  StatusOr<std::shared_ptr<const dbsa::core::EngineState>> state =
      reader->AssembleEngineState();
  if (!state.ok()) {
    DBSA_CHECK(state.status().code() == StatusCode::kInvalidArgument);
  }
  StatusOr<std::vector<uint32_t>> ids = reader->DecodeShardIds();
  if (!ids.ok()) {
    DBSA_CHECK(ids.status().code() == StatusCode::kInvalidArgument);
  }
  if (state.ok()) {
    StatusOr<std::shared_ptr<const dbsa::core::ShardedState>> routing =
        reader->AssembleRoutingState(state.value());
    if (!routing.ok()) {
      DBSA_CHECK(routing.status().code() == StatusCode::kInvalidArgument);
    }
  }

  // Readers are copyable (copies share the backing buffer): a copy must
  // see the same metadata and sections.
  const SnapshotReader copy = *reader;
  DBSA_CHECK(copy.meta().epoch == reader->meta().epoch);
  DBSA_CHECK(copy.meta().shard_index == reader->meta().shard_index);
  for (int id = 1; id <= dbsa::snapshot::kSectionIdCount; ++id) {
    DBSA_CHECK(copy.HasSection(static_cast<dbsa::snapshot::SectionId>(id)) ==
               reader->HasSection(static_cast<dbsa::snapshot::SectionId>(id)));
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  CheckOneInput(data, size);
  return 0;
}

#ifndef DBSA_USE_LIBFUZZER

// ---------------------------------------------------------------------
// Standalone driver (no libFuzzer): replay every corpus file passed on
// the command line, then mutate them randomly for a time budget.
//
//   fuzz_snapshot_reader [-seconds N] corpus_file...
//
// Deterministic per (seed corpus, N, DBSA_FUZZ_SEED): mutations come
// from one seeded mt19937, so a CI failure reproduces locally.

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <random>

namespace {

using dbsa::snapshot::SnapshotChecksum;
using dbsa::snapshot::kSnapshotDirEntrySize;
using dbsa::snapshot::kSnapshotHeaderSize;

bool ReadFile(const char* path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

uint32_t LoadU32(const std::string& b, size_t at) {
  return dbsa::util::LoadWire<uint32_t>(b.data() + at);
}

uint64_t LoadU64(const std::string& b, size_t at) {
  return dbsa::util::LoadWire<uint64_t>(b.data() + at);
}

void StoreU64(std::string* b, size_t at, uint64_t v) {
  dbsa::util::StoreWire(b->data() + at, v);
}

/// Corrupts bytes INSIDE a random section, then recomputes that
/// section's directory checksum so the mutation survives the checksum
/// gate and reaches the section decoders. Falls back to a plain flip
/// when the container geometry does not parse far enough to target.
std::string CorruptSectionChecksumFixed(std::string m, std::mt19937* rng) {
  if (m.size() < kSnapshotHeaderSize + kSnapshotDirEntrySize) return m;
  const uint32_t section_count = LoadU32(m, 28);
  if (section_count == 0 || section_count > 64) return m;
  const size_t entry =
      kSnapshotHeaderSize + ((*rng)() % section_count) * kSnapshotDirEntrySize;
  if (entry + kSnapshotDirEntrySize > m.size()) return m;
  const uint64_t offset = LoadU64(m, entry + 8);
  const uint64_t length = LoadU64(m, entry + 16);
  if (length == 0 || offset > m.size() || length > m.size() - offset) return m;
  const size_t edits = 1 + (*rng)() % 8;
  for (size_t i = 0; i < edits; ++i) {
    m[offset + (*rng)() % length] = static_cast<char>((*rng)());
  }
  StoreU64(&m, entry + 24, SnapshotChecksum(m.data() + offset, length));
  return m;
}

std::string Mutate(const std::vector<std::string>& seeds, std::mt19937* rng) {
  std::string m = seeds[(*rng)() % seeds.size()];
  switch ((*rng)() % 7) {
    case 0:  // Flip bytes (the checksum gate catches these; cheap smoke).
      if (!m.empty()) {
        const size_t edits = 1 + (*rng)() % 8;
        for (size_t i = 0; i < edits; ++i) {
          m[(*rng)() % m.size()] = static_cast<char>((*rng)());
        }
      }
      break;
    case 1:  // Truncate.
      m.resize(m.empty() ? 0 : (*rng)() % m.size());
      break;
    case 2: {  // Extend with noise (trailing bytes must be rejected).
      const size_t extra = 1 + (*rng)() % 64;
      for (size_t i = 0; i < extra; ++i) m.push_back(static_cast<char>((*rng)()));
      break;
    }
    case 3:  // Fresh garbage, header-sized neighborhood.
      m.resize((*rng)() % 96);
      for (char& c : m) c = static_cast<char>((*rng)());
      break;
    case 4: {  // Section splice: graft a random range from ANOTHER seed.
      const std::string& other = seeds[(*rng)() % seeds.size()];
      if (!m.empty() && !other.empty()) {
        const size_t at = (*rng)() % m.size();
        const size_t from = (*rng)() % other.size();
        const size_t n =
            std::min({size_t{1} + (*rng)() % 512, m.size() - at,
                      other.size() - from});
        // dbsa-lint-allow(memcpy): fuzz mutation splices raw bytes between
        // seed corpora — there is no field structure to encode field-wise.
        std::memcpy(m.data() + at, other.data() + from, n);
      }
      break;
    }
    case 5:  // Bad checksum bytes in a directory entry.
      if (m.size() >= kSnapshotHeaderSize + kSnapshotDirEntrySize) {
        const size_t at = kSnapshotHeaderSize + kSnapshotDirEntrySize - 8 +
                          (*rng)() % 8;
        m[at] = static_cast<char>((*rng)());
      }
      break;
    default:  // Corrupt section bytes, then FIX the checksum up.
      m = CorruptSectionChecksumFixed(std::move(m), rng);
      break;
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  int seconds = 5;
  std::vector<std::string> seeds;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-seconds") == 0 && i + 1 < argc) {
      seconds = std::atoi(argv[++i]);
      continue;
    }
    std::string bytes;
    if (!ReadFile(argv[i], &bytes)) {
      std::fprintf(stderr, "fuzz_snapshot_reader: cannot read %s\n", argv[i]);
      return 2;
    }
    seeds.push_back(std::move(bytes));
  }
  for (const std::string& seed : seeds) {
    CheckOneInput(reinterpret_cast<const uint8_t*>(seed.data()),  // lint-allow-reinterpret: inverse of the ABI cast above.
                  seed.size());
  }
  std::fprintf(stderr, "fuzz_snapshot_reader: %zu corpus seeds replayed\n",
               seeds.size());
  if (seeds.empty()) seeds.push_back(std::string());

  uint32_t seed_value = 0x5eed;
  if (const char* env = std::getenv("DBSA_FUZZ_SEED")) {
    seed_value = static_cast<uint32_t>(std::strtoul(env, nullptr, 0));
  }
  std::mt19937 rng(seed_value);
  const auto stop =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  uint64_t iterations = 0;
  while (std::chrono::steady_clock::now() < stop) {
    for (int burst = 0; burst < 256; ++burst) {
      const std::string input = Mutate(seeds, &rng);
      CheckOneInput(reinterpret_cast<const uint8_t*>(input.data()),  // lint-allow-reinterpret: inverse of the ABI cast above.
                    input.size());
      ++iterations;
    }
  }
  std::fprintf(stderr,
               "fuzz_snapshot_reader: %llu mutated inputs, no failures\n",
               static_cast<unsigned long long>(iterations));
  return 0;
}

#endif  // !DBSA_USE_LIBFUZZER
