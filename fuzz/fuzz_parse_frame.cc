// Fuzz harness for the wire decoders: ParseFrame and the four message
// Decode functions (service/transport.h). The decoders' contract is
// TOTAL — any byte string yields OK or a typed Status, never UB — and
// this harness is where that contract meets adversarial input: a shard
// listener feeds whatever arrives on a TCP socket straight into these
// functions.
//
// Two build modes (CMake option DBSA_FUZZ):
//   * clang: -fsanitize=fuzzer defines DBSA_USE_LIBFUZZER and libFuzzer
//     drives LLVMFuzzerTestOneInput with coverage-guided mutation.
//   * anything else: the standalone main() below replays the seed corpus
//     and then runs a time-boxed random-mutation loop over it — no
//     coverage guidance, but the same harness body, so the ASan/UBSan CI
//     smoke works on any toolchain.
//
// Seed corpus: fuzz/corpus/parse_frame/ holds one valid v4 frame of
// every message type (regenerate with fuzz/make_corpus.cc).

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "service/transport.h"
#include "util/check.h"

namespace {

using dbsa::service::GatherPartial;
using dbsa::service::MessageType;
using dbsa::service::ParseFrame;
using dbsa::service::PatchCorrelation;
using dbsa::service::PeekCorrelation;
using dbsa::service::ScatterRequest;
using dbsa::service::StatsReply;
using dbsa::service::StatsRequest;
using dbsa::service::kWireEnvelopeSize;

void CheckOneInput(const uint8_t* data, size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data),  // lint-allow-reinterpret: libFuzzer ABI hands uint8_t*, ParseFrame wants chars.
                          size);

  MessageType type = MessageType::kScatterRequest;
  const char* payload = nullptr;
  size_t payload_size = 0;
  uint64_t correlation = 0;
  const dbsa::Status parsed =
      ParseFrame(bytes, &type, &payload, &payload_size, &correlation);
  if (parsed.ok()) {
    // A parsed payload must lie entirely inside the input buffer.
    DBSA_CHECK(payload >= bytes.data() + kWireEnvelopeSize);
    DBSA_CHECK(payload + payload_size == bytes.data() + bytes.size());
    // The correlation field must round-trip through peek and patch.
    DBSA_CHECK(PeekCorrelation(bytes) == correlation);
    std::string restamped = bytes;
    PatchCorrelation(&restamped, correlation ^ 0x5a5a5a5a5a5a5a5aULL);
    DBSA_CHECK(PeekCorrelation(restamped) ==
               (correlation ^ 0x5a5a5a5a5a5a5a5aULL));
  }

  // Every decoder over every input: total by contract. A frame that
  // decodes OK must also re-encode without tripping the encoder.
  ScatterRequest scatter;
  if (ScatterRequest::Decode(bytes, &scatter).ok()) (void)scatter.Encode();
  GatherPartial gather;
  if (GatherPartial::Decode(bytes, &gather).ok()) (void)gather.Encode();
  StatsRequest stats_request;
  if (StatsRequest::Decode(bytes, &stats_request).ok()) {
    (void)stats_request.Encode();
  }
  StatsReply stats_reply;
  if (StatsReply::Decode(bytes, &stats_reply).ok()) (void)stats_reply.Encode();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  CheckOneInput(data, size);
  return 0;
}

#ifndef DBSA_USE_LIBFUZZER

// ---------------------------------------------------------------------
// Standalone driver (no libFuzzer): replay every corpus file passed on
// the command line, then mutate them randomly for a time budget.
//
//   fuzz_parse_frame [-seconds N] corpus_file...
//
// Deterministic per (seed corpus, N, DBSA_FUZZ_SEED): mutations come
// from one seeded mt19937, so a CI failure reproduces locally.

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <random>
#include <vector>

namespace {

bool ReadFile(const char* path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  out->assign(std::istreambuf_iterator<char>(in),
              std::istreambuf_iterator<char>());
  return true;
}

std::string Mutate(const std::string& seed, std::mt19937* rng) {
  std::string m = seed;
  switch ((*rng)() % 5) {
    case 0:  // Flip bytes.
      if (!m.empty()) {
        const size_t edits = 1 + (*rng)() % 8;
        for (size_t i = 0; i < edits; ++i) {
          m[(*rng)() % m.size()] = static_cast<char>((*rng)());
        }
      }
      break;
    case 1:  // Truncate.
      m.resize(m.empty() ? 0 : (*rng)() % m.size());
      break;
    case 2: {  // Extend with noise.
      const size_t extra = 1 + (*rng)() % 64;
      for (size_t i = 0; i < extra; ++i) m.push_back(static_cast<char>((*rng)()));
      break;
    }
    case 3:  // Fresh garbage, envelope-sized neighborhood.
      m.resize((*rng)() % 64);
      for (char& c : m) c = static_cast<char>((*rng)());
      break;
    default:  // Splice two halves at a random pivot.
      if (m.size() >= 2) {
        const size_t pivot = (*rng)() % m.size();
        m = m.substr(pivot) + m.substr(0, pivot);
      }
      break;
  }
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  int seconds = 5;
  std::vector<std::string> seeds;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-seconds") == 0 && i + 1 < argc) {
      seconds = std::atoi(argv[++i]);
      continue;
    }
    std::string bytes;
    if (!ReadFile(argv[i], &bytes)) {
      std::fprintf(stderr, "fuzz_parse_frame: cannot read %s\n", argv[i]);
      return 2;
    }
    seeds.push_back(std::move(bytes));
  }
  for (const std::string& seed : seeds) {
    CheckOneInput(reinterpret_cast<const uint8_t*>(seed.data()),  // lint-allow-reinterpret: inverse of the ABI cast above.
                  seed.size());
  }
  std::fprintf(stderr, "fuzz_parse_frame: %zu corpus seeds replayed\n",
               seeds.size());
  if (seeds.empty()) seeds.push_back(std::string());

  uint32_t seed_value = 0x5eed;
  if (const char* env = std::getenv("DBSA_FUZZ_SEED")) {
    seed_value = static_cast<uint32_t>(std::strtoul(env, nullptr, 0));
  }
  std::mt19937 rng(seed_value);
  const auto stop =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  uint64_t iterations = 0;
  while (std::chrono::steady_clock::now() < stop) {
    for (int burst = 0; burst < 256; ++burst) {
      const std::string input = Mutate(seeds[rng() % seeds.size()], &rng);
      CheckOneInput(reinterpret_cast<const uint8_t*>(input.data()),  // lint-allow-reinterpret: inverse of the ABI cast above.
                    input.size());
      ++iterations;
    }
  }
  std::fprintf(stderr, "fuzz_parse_frame: %llu mutated inputs, no failures\n",
               static_cast<unsigned long long>(iterations));
  return 0;
}

#endif  // !DBSA_USE_LIBFUZZER
