// Software stand-in for the GPU render passes: scattering points into a
// canvas with additive blending, and filling polygons with center-sampled
// rasterization (the sampling rule of the graphics pipeline). See
// DESIGN.md for the GPU -> software substitution argument.

#ifndef DBSA_CANVAS_RENDER_H_
#define DBSA_CANVAS_RENDER_H_

#include <functional>

#include "canvas/canvas.h"
#include "geom/polygon.h"

namespace dbsa::canvas {

/// Scatters points: each point inside the viewport adds (1, weight, 0, 1)
/// to its pixel — r accumulates counts, g accumulates the attribute.
/// weights may be null (then g accumulates 0).
void ScatterPoints(Canvas* c, const geom::Point* points, const double* weights,
                   size_t n);

/// Fills a polygon using center sampling, exactly like GPU rasterization:
/// a pixel is covered iff its center is inside. Covered pixels are
/// overwritten with `fill` (default: a pure stencil, a = 1). Only pixels
/// within the polygon's bbox are touched.
void FillPolygon(Canvas* c, const geom::Polygon& poly,
                 const Rgba& fill = Rgba{0.f, 0.f, 0.f, 1.f});

/// Visits the pixel-x intervals covered by the polygon per row (the fused
/// form of FillPolygon + masked reduction used by BRJ). fn(y, x0, x1)
/// receives inclusive pixel bounds.
void ScanPolygon(const Canvas& c, const geom::Polygon& poly,
                 const std::function<void(int, int, int)>& fn);

}  // namespace dbsa::canvas

#endif  // DBSA_CANVAS_RENDER_H_
