// The canvas operator algebra of Section 4 (after Doraiswamy & Freire's
// GPU-friendly geometric data model): blend, mask and affine transforms.
// Spatial query classes are realized by composing these operators; the
// optimizer (src/query) picks among compositions.

#ifndef DBSA_CANVAS_OPS_H_
#define DBSA_CANVAS_OPS_H_

#include <functional>

#include "canvas/canvas.h"

namespace dbsa::canvas {

/// Blend functions (the paper's circled-dot parameter).
enum class BlendFn {
  kAdd,      ///< Channel-wise sum (partial aggregates).
  kMin,      ///< Channel-wise min.
  kMax,      ///< Channel-wise max.
  kOver,     ///< Source-over: src wins where src.a > 0.
  kMultiply, ///< Channel-wise product (stencil intersection).
};

/// dst = blend(dst, src). Dimensions must match.
void BlendInto(Canvas* dst, const Canvas& src, BlendFn fn);

/// Pure version: returns blend(a, b).
Canvas Blend(const Canvas& a, const Canvas& b, BlendFn fn);

/// Mask predicate over a pixel.
using MaskPredicate = std::function<bool(const Rgba&)>;

/// Keeps pixels satisfying the predicate, zeroes the rest.
Canvas Mask(const Canvas& src, const MaskPredicate& pred);

/// In-place mask.
void MaskInPlace(Canvas* c, const MaskPredicate& pred);

/// Affine transform: resamples src into a canvas with the given viewport
/// and dimensions (nearest-neighbour, as GPU texture fetch would).
Canvas AffineResample(const Canvas& src, int width, int height,
                      const geom::Box& viewport);

/// Channel-wise sums over all pixels (the final aggregation reduce).
Rgba Reduce(const Canvas& c);

/// Channel-wise sums over pixels where the stencil's alpha is > 0 — the
/// fused mask-then-reduce used by joins.
Rgba ReduceWhere(const Canvas& values, const Canvas& stencil);

}  // namespace dbsa::canvas

#endif  // DBSA_CANVAS_OPS_H_
