#include "canvas/canvas.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace dbsa::canvas {

Canvas::Canvas(int width, int height, const geom::Box& viewport)
    : w_(width), h_(height), viewport_(viewport) {
  DBSA_CHECK(width > 0 && height > 0);
  DBSA_CHECK(!viewport.IsEmpty());
  pw_ = viewport_.Width() / w_;
  ph_ = viewport_.Height() / h_;
  data_.resize(static_cast<size_t>(w_) * h_);
}

bool Canvas::WorldToPixel(const geom::Point& p, int* px, int* py) const {
  const double fx = (p.x - viewport_.min.x) / pw_;
  const double fy = (p.y - viewport_.min.y) / ph_;
  if (fx < 0 || fy < 0) return false;
  const int x = static_cast<int>(fx);
  const int y = static_cast<int>(fy);
  if (x >= w_ || y >= h_) return false;
  *px = x;
  *py = y;
  return true;
}

geom::Point Canvas::PixelCenter(int x, int y) const {
  return {viewport_.min.x + (x + 0.5) * pw_, viewport_.min.y + (y + 0.5) * ph_};
}

geom::Box Canvas::PixelBox(int x, int y) const {
  const double x0 = viewport_.min.x + x * pw_;
  const double y0 = viewport_.min.y + y * ph_;
  return geom::Box(x0, y0, x0 + pw_, y0 + ph_);
}

void Canvas::Clear(const Rgba& value) {
  std::fill(data_.begin(), data_.end(), value);
}

}  // namespace dbsa::canvas
