#include "canvas/brj.h"

#include <algorithm>
#include <cmath>

#include "canvas/ops.h"
#include "canvas/render.h"
#include "util/check.h"
#include "util/timer.h"

namespace dbsa::canvas {

BrjResult BoundedRasterJoin(const geom::Point* points, const double* attrs, size_t n,
                            const std::vector<geom::Polygon>& polys,
                            const std::vector<uint32_t>& region_of,
                            size_t num_regions, const geom::Box& universe,
                            const BrjOptions& opts) {
  DBSA_CHECK(opts.epsilon > 0.0);
  DBSA_CHECK(region_of.size() == polys.size());
  BrjResult result;
  result.count.assign(num_regions, 0.0);
  result.sum.assign(num_regions, 0.0);

  // Pixel side so that the pixel diagonal equals the distance bound.
  const double pixel = opts.epsilon / 1.4142135623730951;
  const double extent = std::max(universe.Width(), universe.Height());
  const int full_res = std::max(1, static_cast<int>(std::ceil(extent / pixel)));
  result.canvas_side = full_res;

  const int max_side = std::max(64, opts.device.max_canvas_side);
  const int tiles_per_dim = (full_res + max_side - 1) / max_side;

  dbsa::Timer timer;
  for (int ty = 0; ty < tiles_per_dim; ++ty) {
    for (int tx = 0; tx < tiles_per_dim; ++tx) {
      const int px0 = tx * max_side;
      const int py0 = ty * max_side;
      const int w = std::min(max_side, full_res - px0);
      const int h = std::min(max_side, full_res - py0);
      if (w <= 0 || h <= 0) continue;
      const geom::Box viewport(
          universe.min.x + px0 * pixel, universe.min.y + py0 * pixel,
          universe.min.x + (px0 + w) * pixel, universe.min.y + (py0 + h) * pixel);
      ++result.tiles;

      // Points pass: stream all points through the tile (the paper streams
      // batches to the GPU per aggregation pass).
      timer.Reset();
      Canvas point_canvas(w, h, viewport);
      ScatterPoints(&point_canvas, points, attrs, n);
      result.points_pass_ms += timer.Millis();

      // Polygons pass: mask + reduce per polygon.
      timer.Reset();
      for (size_t pi = 0; pi < polys.size(); ++pi) {
        const geom::Polygon& poly = polys[pi];
        if (!poly.bounds().Intersects(viewport)) continue;
        const uint32_t region = region_of[pi];
        if (opts.use_physical_operators) {
          // Literal operator pipeline: stencil canvas, blend-mask, reduce.
          Canvas stencil(w, h, viewport);
          FillPolygon(&stencil, poly);
          const Rgba agg = ReduceWhere(point_canvas, stencil);
          result.count[region] += agg.r;
          result.sum[region] += agg.g;
        } else {
          // Fused scanline reduction (same semantics, no materialization).
          double cnt = 0.0, sum = 0.0;
          ScanPolygon(point_canvas, poly, [&](int y, int x0, int x1) {
            for (int x = x0; x <= x1; ++x) {
              const Rgba& px = point_canvas.At(x, y);
              cnt += px.r;
              sum += px.g;
            }
          });
          result.count[region] += cnt;
          result.sum[region] += sum;
        }
      }
      result.polygons_pass_ms += timer.Millis();
    }
  }
  return result;
}

}  // namespace dbsa::canvas
