#include "canvas/render.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace dbsa::canvas {

void ScatterPoints(Canvas* c, const geom::Point* points, const double* weights,
                   size_t n) {
  for (size_t i = 0; i < n; ++i) {
    int px, py;
    if (!c->WorldToPixel(points[i], &px, &py)) continue;
    Rgba& dst = c->At(px, py);
    dst.r += 1.f;
    if (weights != nullptr) dst.g += static_cast<float>(weights[i]);
    dst.a = 1.f;
  }
}

void ScanPolygon(const Canvas& c, const geom::Polygon& poly,
                 const std::function<void(int, int, int)>& fn) {
  const geom::Box& vp = c.viewport();
  const geom::Box& bb = poly.bounds();
  if (!vp.Intersects(bb)) return;
  const double ph = c.pixel_height();
  const double pw = c.pixel_width();

  int y0 = static_cast<int>(std::floor((bb.min.y - vp.min.y) / ph));
  int y1 = static_cast<int>(std::floor((bb.max.y - vp.min.y) / ph));
  y0 = std::max(y0, 0);
  y1 = std::min(y1, c.height() - 1);

  std::vector<double> xs;
  for (int y = y0; y <= y1; ++y) {
    const double wy = vp.min.y + (y + 0.5) * ph;
    xs.clear();
    poly.ForEachEdge([&](const geom::Point& a, const geom::Point& b) {
      if ((a.y > wy) != (b.y > wy)) {
        xs.push_back(a.x + (wy - a.y) / (b.y - a.y) * (b.x - a.x));
      }
    });
    if (xs.size() < 2) continue;
    std::sort(xs.begin(), xs.end());
    for (size_t k = 0; k + 1 < xs.size(); k += 2) {
      // Pixels whose center-x lies in (xs[k], xs[k+1]).
      int x0 = static_cast<int>(std::ceil((xs[k] - vp.min.x) / pw - 0.5));
      int x1 = static_cast<int>(std::floor((xs[k + 1] - vp.min.x) / pw - 0.5));
      x0 = std::max(x0, 0);
      x1 = std::min(x1, c.width() - 1);
      if (x0 <= x1) fn(y, x0, x1);
    }
  }
}

void FillPolygon(Canvas* c, const geom::Polygon& poly, const Rgba& fill) {
  ScanPolygon(*c, poly, [c, &fill](int y, int x0, int x1) {
    for (int x = x0; x <= x1; ++x) c->At(x, y) = fill;
  });
}

}  // namespace dbsa::canvas
