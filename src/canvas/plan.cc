#include "canvas/plan.h"

#include "util/check.h"

namespace dbsa::canvas {

CanvasPlan::Ptr CanvasPlan::RenderPoints(const geom::Point* points,
                                         const double* weights, size_t n) {
  auto plan = std::shared_ptr<CanvasPlan>(new CanvasPlan(Kind::kRenderPoints));
  plan->points_ = points;
  plan->weights_ = weights;
  plan->num_points_ = n;
  return plan;
}

CanvasPlan::Ptr CanvasPlan::RenderPolygon(geom::Polygon poly, const Rgba& fill) {
  auto plan = std::shared_ptr<CanvasPlan>(new CanvasPlan(Kind::kRenderPolygon));
  plan->poly_ = std::move(poly);
  plan->fill_ = fill;
  return plan;
}

CanvasPlan::Ptr CanvasPlan::Blend(Ptr a, Ptr b, BlendFn fn) {
  DBSA_CHECK(a != nullptr && b != nullptr);
  auto plan = std::shared_ptr<CanvasPlan>(new CanvasPlan(Kind::kBlend));
  plan->left_ = std::move(a);
  plan->right_ = std::move(b);
  plan->blend_fn_ = fn;
  return plan;
}

CanvasPlan::Ptr CanvasPlan::MaskWhere(Ptr value, Ptr stencil) {
  DBSA_CHECK(value != nullptr && stencil != nullptr);
  auto plan = std::shared_ptr<CanvasPlan>(new CanvasPlan(Kind::kMaskWhere));
  plan->left_ = std::move(value);
  plan->right_ = std::move(stencil);
  return plan;
}

CanvasPlan::Ptr CanvasPlan::Affine(Ptr child) {
  DBSA_CHECK(child != nullptr);
  auto plan = std::shared_ptr<CanvasPlan>(new CanvasPlan(Kind::kAffine));
  plan->left_ = std::move(child);
  return plan;
}

Canvas CanvasPlan::Execute(int width, int height, const geom::Box& viewport) const {
  switch (kind_) {
    case Kind::kRenderPoints: {
      Canvas c(width, height, viewport);
      ScatterPoints(&c, points_, weights_, num_points_);
      return c;
    }
    case Kind::kRenderPolygon: {
      Canvas c(width, height, viewport);
      FillPolygon(&c, poly_, fill_);
      return c;
    }
    case Kind::kBlend: {
      Canvas a = left_->Execute(width, height, viewport);
      const Canvas b = right_->Execute(width, height, viewport);
      BlendInto(&a, b, blend_fn_);
      return a;
    }
    case Kind::kMaskWhere: {
      Canvas value = left_->Execute(width, height, viewport);
      const Canvas stencil = right_->Execute(width, height, viewport);
      auto& data = value.data();
      const auto& mask = stencil.data();
      for (size_t i = 0; i < data.size(); ++i) {
        if (mask[i].a <= 0.f) data[i] = Rgba();
      }
      return value;
    }
    case Kind::kAffine: {
      // Identity-geometry resample (the general form re-targets
      // viewports; the executor's geometry is the target).
      const Canvas child = left_->Execute(width, height, viewport);
      return AffineResample(child, width, height, viewport);
    }
  }
  return Canvas(width, height, viewport);
}

Rgba CanvasPlan::ExecuteAndReduce(int width, int height,
                                  const geom::Box& viewport) const {
  // Fusion opportunity: mask-then-reduce avoids materializing the masked
  // canvas (the optimization BRJ applies).
  if (kind_ == Kind::kMaskWhere) {
    const Canvas value = left_->Execute(width, height, viewport);
    const Canvas stencil = right_->Execute(width, height, viewport);
    return ReduceWhere(value, stencil);
  }
  return Reduce(Execute(width, height, viewport));
}

void CanvasPlan::DescribeRec(int depth, std::string* out) const {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  switch (kind_) {
    case Kind::kRenderPoints:
      out->append("RenderPoints(n=" + std::to_string(num_points_) + ")\n");
      break;
    case Kind::kRenderPolygon:
      out->append("RenderPolygon(vertices=" +
                  std::to_string(poly_.NumVertices()) + ")\n");
      break;
    case Kind::kBlend: {
      const char* fn = "?";
      switch (blend_fn_) {
        case BlendFn::kAdd:
          fn = "ADD";
          break;
        case BlendFn::kMin:
          fn = "MIN";
          break;
        case BlendFn::kMax:
          fn = "MAX";
          break;
        case BlendFn::kOver:
          fn = "OVER";
          break;
        case BlendFn::kMultiply:
          fn = "MULTIPLY";
          break;
      }
      out->append(std::string("Blend(") + fn + ")\n");
      left_->DescribeRec(depth + 1, out);
      right_->DescribeRec(depth + 1, out);
      break;
    }
    case Kind::kMaskWhere:
      out->append("MaskWhere\n");
      left_->DescribeRec(depth + 1, out);
      right_->DescribeRec(depth + 1, out);
      break;
    case Kind::kAffine:
      out->append("Affine\n");
      left_->DescribeRec(depth + 1, out);
      break;
  }
}

std::string CanvasPlan::Describe() const {
  std::string out;
  DescribeRec(0, &out);
  return out;
}

CanvasPlan::Ptr AggregationPlanMask(const geom::Point* points, const double* weights,
                                    size_t n, const geom::Polygon& poly) {
  return CanvasPlan::MaskWhere(CanvasPlan::RenderPoints(points, weights, n),
                               CanvasPlan::RenderPolygon(poly));
}

CanvasPlan::Ptr AggregationPlanBlend(const geom::Point* points, const double* weights,
                                     size_t n, const geom::Polygon& poly) {
  // Promote the stencil to all-ones on covered pixels; a MULTIPLY blend
  // then zeroes every value channel outside the polygon and passes the
  // inside through — intersection expressed purely with blend.
  return CanvasPlan::Blend(CanvasPlan::RenderPoints(points, weights, n),
                           CanvasPlan::RenderPolygon(poly, Rgba{1.f, 1.f, 1.f, 1.f}),
                           BlendFn::kMultiply);
}

}  // namespace dbsa::canvas
