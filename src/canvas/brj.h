// Bounded Raster Join (Tzirita Zacharatou et al., PVLDB'17; Section 5.2 of
// the paper): the canvas-algebra evaluation of spatial aggregation. Points
// are blended into a partial-aggregate canvas; each polygon is rasterized
// and the masked pixels are reduced into its aggregate. The pixel size is
// derived from the distance bound; when the implied resolution exceeds the
// device limit, the canvas is subdivided and the passes repeat per tile —
// the effect that makes BRJ slower than the baseline at 1 m in Figure 7.

#ifndef DBSA_CANVAS_BRJ_H_
#define DBSA_CANVAS_BRJ_H_

#include <cstdint>
#include <vector>

#include "canvas/canvas.h"
#include "geom/polygon.h"

namespace dbsa::canvas {

/// Simulated GPU constraints (the paper used a GTX 1060 with 3 GB usable
/// and a bounded off-screen buffer size).
struct DeviceLimits {
  int max_canvas_side = 2048;  ///< Max texture side in pixels.
};

struct BrjOptions {
  double epsilon = 10.0;  ///< Distance bound; pixel diagonal = epsilon.
  DeviceLimits device;
  /// Use the physical operator pipeline (materialized mask canvases +
  /// ReduceWhere) instead of the fused scanline reduction. Semantically
  /// identical; the fused path is what a tuned GPU shader would do.
  bool use_physical_operators = false;
};

/// Per-region partial aggregates plus execution statistics.
struct BrjResult {
  std::vector<double> count;  ///< Per region.
  std::vector<double> sum;    ///< Per region (of the point attribute).
  int canvas_side = 0;        ///< Full-resolution pixels per side.
  int tiles = 0;              ///< Number of canvas subdivisions executed.
  double points_pass_ms = 0.0;
  double polygons_pass_ms = 0.0;
};

/// Runs BRJ joining `n` points (with optional per-point attribute values)
/// against the regions. region_of[i] maps polygon i to its output slot;
/// pass an identity mapping for simple region sets.
BrjResult BoundedRasterJoin(const geom::Point* points, const double* attrs, size_t n,
                            const std::vector<geom::Polygon>& polys,
                            const std::vector<uint32_t>& region_of,
                            size_t num_regions, const geom::Box& universe,
                            const BrjOptions& opts);

}  // namespace dbsa::canvas

#endif  // DBSA_CANVAS_BRJ_H_
