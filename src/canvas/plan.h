// Composable canvas query plans — Section 4's central claim: with a
// uniform rasterized representation and a small operator algebra (render,
// blend, mask), one ad-hoc spatial query can be expressed as several
// alternative operator trees, giving the optimizer real choices. This
// module provides the operator tree, an executor, and an EXPLAIN-style
// printer; tests verify that alternative plans for the aggregation query
// produce identical canvases.

#ifndef DBSA_CANVAS_PLAN_H_
#define DBSA_CANVAS_PLAN_H_

#include <memory>
#include <string>
#include <vector>

#include "canvas/ops.h"
#include "canvas/render.h"

namespace dbsa::canvas {

/// An immutable canvas-algebra expression. Build with the factory
/// functions; execute against any canvas geometry (resolution follows the
/// distance bound, per Section 4).
class CanvasPlan {
 public:
  using Ptr = std::shared_ptr<const CanvasPlan>;

  /// Leaf: scatter points (r = count, g = weight sum, a = occupancy).
  /// The arrays are borrowed and must outlive execution.
  static Ptr RenderPoints(const geom::Point* points, const double* weights, size_t n);

  /// Leaf: rasterize a polygon stencil; covered pixels get `fill`
  /// (default: pure stencil with a = 1).
  static Ptr RenderPolygon(geom::Polygon poly,
                           const Rgba& fill = Rgba{0.f, 0.f, 0.f, 1.f});

  /// Binary blend with the given blend function.
  static Ptr Blend(Ptr a, Ptr b, BlendFn fn);

  /// Keeps the value canvas's pixels where the stencil's alpha > 0.
  static Ptr MaskWhere(Ptr value, Ptr stencil);

  /// Resamples the child into the target geometry (affine transform).
  static Ptr Affine(Ptr child);

  /// Executes the tree into a canvas of the given geometry.
  Canvas Execute(int width, int height, const geom::Box& viewport) const;

  /// Execute + channel-wise reduction (the aggregation sink).
  Rgba ExecuteAndReduce(int width, int height, const geom::Box& viewport) const;

  /// EXPLAIN-style indented tree.
  std::string Describe() const;

 private:
  enum class Kind { kRenderPoints, kRenderPolygon, kBlend, kMaskWhere, kAffine };

  explicit CanvasPlan(Kind kind) : kind_(kind) {}

  void DescribeRec(int depth, std::string* out) const;

  Kind kind_;
  // Leaf payloads.
  const geom::Point* points_ = nullptr;
  const double* weights_ = nullptr;
  size_t num_points_ = 0;
  geom::Polygon poly_;
  Rgba fill_{0.f, 0.f, 0.f, 1.f};
  // Inner payloads.
  Ptr left_;
  Ptr right_;
  BlendFn blend_fn_ = BlendFn::kAdd;
};

/// The two alternative operator trees for the spatial aggregation query
/// that Section 4 sketches (count points inside a polygon):
///   plan A: reduce( maskWhere( renderPoints(P), renderPolygon(R) ) )
///   plan B: reduce( blend( renderPoints(P),
///                          renderPolygon(R, fill=(1,1,1,1)), MULTIPLY ) )
/// Both return the same aggregates; their costs differ (A fuses
/// mask-and-reduce; B composes through the generic blend operator).
CanvasPlan::Ptr AggregationPlanMask(const geom::Point* points, const double* weights,
                                    size_t n, const geom::Polygon& poly);
CanvasPlan::Ptr AggregationPlanBlend(const geom::Point* points, const double* weights,
                                     size_t n, const geom::Polygon& poly);

}  // namespace dbsa::canvas

#endif  // DBSA_CANVAS_PLAN_H_
