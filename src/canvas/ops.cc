#include "canvas/ops.h"

#include <algorithm>

#include "util/check.h"

namespace dbsa::canvas {

namespace {

inline Rgba ApplyBlend(const Rgba& d, const Rgba& s, BlendFn fn) {
  switch (fn) {
    case BlendFn::kAdd:
      return {d.r + s.r, d.g + s.g, d.b + s.b, d.a + s.a};
    case BlendFn::kMin:
      return {std::min(d.r, s.r), std::min(d.g, s.g), std::min(d.b, s.b),
              std::min(d.a, s.a)};
    case BlendFn::kMax:
      return {std::max(d.r, s.r), std::max(d.g, s.g), std::max(d.b, s.b),
              std::max(d.a, s.a)};
    case BlendFn::kOver:
      return s.a > 0.f ? s : d;
    case BlendFn::kMultiply:
      return {d.r * s.r, d.g * s.g, d.b * s.b, d.a * s.a};
  }
  return d;
}

}  // namespace

void BlendInto(Canvas* dst, const Canvas& src, BlendFn fn) {
  DBSA_CHECK(dst->width() == src.width() && dst->height() == src.height());
  auto& d = dst->data();
  const auto& s = src.data();
  for (size_t i = 0; i < d.size(); ++i) d[i] = ApplyBlend(d[i], s[i], fn);
}

Canvas Blend(const Canvas& a, const Canvas& b, BlendFn fn) {
  Canvas out = a;
  BlendInto(&out, b, fn);
  return out;
}

Canvas Mask(const Canvas& src, const MaskPredicate& pred) {
  Canvas out = src;
  MaskInPlace(&out, pred);
  return out;
}

void MaskInPlace(Canvas* c, const MaskPredicate& pred) {
  for (Rgba& px : c->data()) {
    if (!pred(px)) px = Rgba();
  }
}

Canvas AffineResample(const Canvas& src, int width, int height,
                      const geom::Box& viewport) {
  Canvas out(width, height, viewport);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const geom::Point world = out.PixelCenter(x, y);
      int sx, sy;
      if (src.WorldToPixel(world, &sx, &sy)) {
        out.At(x, y) = src.At(sx, sy);
      }
    }
  }
  return out;
}

Rgba Reduce(const Canvas& c) {
  Rgba acc;
  for (const Rgba& px : c.data()) {
    acc.r += px.r;
    acc.g += px.g;
    acc.b += px.b;
    acc.a += px.a;
  }
  return acc;
}

Rgba ReduceWhere(const Canvas& values, const Canvas& stencil) {
  DBSA_CHECK(values.width() == stencil.width() &&
             values.height() == stencil.height());
  Rgba acc;
  const auto& v = values.data();
  const auto& m = stencil.data();
  for (size_t i = 0; i < v.size(); ++i) {
    if (m[i].a > 0.f) {
      acc.r += v[i].r;
      acc.g += v[i].g;
      acc.b += v[i].b;
      acc.a += v[i].a;
    }
  }
  return acc;
}

}  // namespace dbsa::canvas
