// The rasterized-canvas data model of Section 4: a uniform pixel image
// whose pixel size is derived from the distance bound, with four float
// channels (mirroring the GPU color channels r,g,b,a the paper stores
// partial aggregates in). This software implementation reproduces the
// graphics-pipeline semantics: center sampling for polygon fill, additive
// blending for point scattering.

#ifndef DBSA_CANVAS_CANVAS_H_
#define DBSA_CANVAS_CANVAS_H_

#include <cstdint>
#include <vector>

#include "geom/box.h"
#include "geom/point.h"

namespace dbsa::canvas {

/// One pixel's channels. BRJ convention: r = point count, g = attribute
/// sum, b/a free (used by min/max blends and masks).
struct Rgba {
  float r = 0.f;
  float g = 0.f;
  float b = 0.f;
  float a = 0.f;
};

/// A W x H pixel raster mapped onto a world-space viewport.
class Canvas {
 public:
  Canvas(int width, int height, const geom::Box& viewport);

  int width() const { return w_; }
  int height() const { return h_; }
  const geom::Box& viewport() const { return viewport_; }
  double pixel_width() const { return pw_; }
  double pixel_height() const { return ph_; }

  Rgba& At(int x, int y) { return data_[static_cast<size_t>(y) * w_ + x]; }
  const Rgba& At(int x, int y) const { return data_[static_cast<size_t>(y) * w_ + x]; }

  std::vector<Rgba>& data() { return data_; }
  const std::vector<Rgba>& data() const { return data_; }

  /// Pixel containing a world point; false if outside the viewport.
  bool WorldToPixel(const geom::Point& p, int* px, int* py) const;

  /// World-space center of a pixel.
  geom::Point PixelCenter(int x, int y) const;

  /// World-space box of a pixel.
  geom::Box PixelBox(int x, int y) const;

  void Clear(const Rgba& value = Rgba());

  size_t MemoryBytes() const { return data_.size() * sizeof(Rgba); }

 private:
  int w_;
  int h_;
  geom::Box viewport_;
  double pw_, ph_;
  std::vector<Rgba> data_;
};

}  // namespace dbsa::canvas

#endif  // DBSA_CANVAS_CANVAS_H_
