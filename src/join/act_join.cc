#include "join/act_join.h"

#include <algorithm>

#include "raster/hierarchical_raster.h"
#include "util/timer.h"

namespace dbsa::join {

ActJoinIndex::ActJoinIndex(const JoinInput& in, const raster::Grid& grid,
                           const ActJoinOptions& opts)
    : grid_(grid), in_(in), act_(opts.levels_per_node) {
  for (size_t j = 0; j < in.polys->size(); ++j) {
    const geom::Polygon& poly = (*in.polys)[j];
    const raster::HierarchicalRaster hr =
        raster::HierarchicalRaster::BuildEpsilon(poly, grid, opts.epsilon);
    achieved_epsilon_ = std::max(achieved_epsilon_, hr.AchievedEpsilon(grid));
    for (const raster::HrCell& cell : hr.cells()) {
      if (cell.boundary && opts.assign == BoundaryAssign::kCenter) {
        // Assign the cell to this polygon only if the cell center lies
        // inside it; for tiling region sets exactly one neighbour claims
        // each boundary cell, yielding a partition.
        const geom::Point center = grid.CellBox(cell.id).Center();
        if (!poly.Contains(center)) continue;
      }
      act_.Insert(cell.id, static_cast<uint32_t>(j), cell.boundary);
      ++num_cells_;
    }
  }
}

int64_t ActJoinIndex::FindPolygon(const geom::Point& p) const {
  bool boundary_unused;
  return FindPolygon(p, &boundary_unused);
}

int64_t ActJoinIndex::FindPolygon(const geom::Point& p, bool* boundary) const {
  index::ActMatch match;
  if (act_.LookupFirst(grid_.LeafKey(p), &match)) {
    *boundary = match.boundary;
    return match.value;
  }
  return -1;
}

int64_t ActJoinIndex::FindPolygonExact(const geom::Point& p,
                                       size_t* pip_tests) const {
  act_.Lookup(grid_.LeafKey(p), &scratch_);
  for (const index::ActMatch& m : scratch_) {
    if (!m.boundary) return m.value;  // Interior cells are certain.
    ++*pip_tests;
    if ((*in_.polys)[m.value].Contains(p)) return m.value;
  }
  return -1;
}

JoinStats ActJoin(const JoinInput& in, AggKind agg, const raster::Grid& grid,
                  const ActJoinOptions& opts) {
  JoinStats stats;
  Timer timer;
  ActJoinOptions build_opts = opts;
  if (opts.exact_refine) build_opts.assign = BoundaryAssign::kConservative;
  ActJoinIndex index(in, grid, build_opts);
  stats.build_ms = timer.Millis();
  stats.index_bytes = index.MemoryBytes();
  stats.index_cells = index.NumCells();

  timer.Reset();
  std::vector<Accumulator> accs(in.num_regions);
  for (size_t i = 0; i < in.num_points; ++i) {
    const int64_t j = opts.exact_refine
                          ? index.FindPolygonExact(in.points[i], &stats.pip_tests)
                          : index.FindPolygon(in.points[i]);
    if (j >= 0) {
      accs[in.RegionOf(static_cast<size_t>(j))].Add(in.attrs ? in.attrs[i] : 0.0);
    }
  }
  stats.probe_ms = timer.Millis();
  // Without exact_refine, pip_tests stays 0: the paper's approximate mode.
  stats.value = Finalize(accs, agg);
  return stats;
}

}  // namespace dbsa::join
