// Aggregate functions for the spatial aggregation query of Section 5:
//   SELECT AGG(a_i) FROM P, R WHERE P.loc INSIDE R.geometry GROUP BY R.id
// COUNT and SUM are distributive, AVG is algebraic (both combine from
// per-cell partials, which is what makes cell-parallel evaluation work).

#ifndef DBSA_JOIN_AGG_H_
#define DBSA_JOIN_AGG_H_

#include <limits>
#include <string>
#include <vector>

namespace dbsa::join {

enum class AggKind { kCount, kSum, kAvg, kMin, kMax };

const char* AggKindName(AggKind kind);

/// Streaming accumulator for one group.
struct Accumulator {
  double count = 0.0;
  double sum = 0.0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void Add(double value) {
    count += 1.0;
    sum += value;
    if (value < min) min = value;
    if (value > max) max = value;
  }

  /// Merges a distributive partial (e.g. one cell's sub-aggregate).
  void Merge(const Accumulator& o) {
    count += o.count;
    sum += o.sum;
    if (o.min < min) min = o.min;
    if (o.max > max) max = o.max;
  }

  /// Adds a precomputed (count, sum) partial (prefix-sum path).
  void AddPartial(double partial_count, double partial_sum) {
    count += partial_count;
    sum += partial_sum;
  }

  double Result(AggKind kind) const;
};

/// Extracts final values for all groups.
std::vector<double> Finalize(const std::vector<Accumulator>& accs, AggKind kind);

}  // namespace dbsa::join

#endif  // DBSA_JOIN_AGG_H_
