// Section 3's point-indexing pipeline: points are linearized to finest-
// level cell keys and stored sorted with prefix sums; a query polygon is
// approximated by hierarchical-raster query cells; each query cell turns
// into one contiguous key range answered by two searches. The search
// strategy is pluggable — binary search, RadixSpline (learned) or a
// B+-tree — which is exactly the comparison of Figure 4.

#ifndef DBSA_JOIN_POINT_INDEX_JOIN_H_
#define DBSA_JOIN_POINT_INDEX_JOIN_H_

#include <cstdint>
#include <vector>

#include "index/btree.h"
#include "index/radix_spline.h"
#include "index/sorted_array.h"
#include "join/agg.h"
#include "raster/grid.h"
#include "raster/hierarchical_raster.h"
#include "util/compensated.h"

namespace dbsa::join {

/// Which structure answers the lower/upper-bound searches.
enum class SearchStrategy { kBinarySearch, kRadixSpline, kBTree };

const char* SearchStrategyName(SearchStrategy s);

/// Aggregates returned for one query polygon. SUMs are carried as
/// Neumaier-compensated (error-free transformation) pairs — (sum,
/// sum_comp) is the unevaluated double-double total — so accumulating
/// per-cell range sums and merging shard partials never rounds: as long
/// as the running totals fit the pair's ~106-bit window (any realistic
/// attribute column), the merged total is EXACT and therefore identical
/// under every association order. This is what makes the sharded
/// byte-identity contract of core/sharded_state.h hold for non-dyadic
/// attributes, not just dyadic ones. Read totals through SumValue() /
/// BoundarySumValue(), never `sum` alone.
struct CellAggregate {
  double count = 0.0;
  double sum = 0.0;             ///< Leading part of the compensated SUM.
  double sum_comp = 0.0;        ///< Trailing (compensation) part.
  double boundary_count = 0.0;  ///< Partial restricted to boundary cells.
  double boundary_sum = 0.0;
  double boundary_sum_comp = 0.0;
  size_t query_cells = 0;
  size_t searches = 0;

  double SumValue() const { return TwoDouble{sum, sum_comp}.Rounded(); }
  double BoundarySumValue() const {
    return TwoDouble{boundary_sum, boundary_sum_comp}.Rounded();
  }

  /// Folds another partial into this one (multi-part regions, shard
  /// gathers). Counts are exact integers; sums merge pairwise through
  /// error-free transformations (see struct comment).
  void Merge(const CellAggregate& other) {
    count += other.count;
    boundary_count += other.boundary_count;
    const TwoDouble s = AddPair({sum, sum_comp}, {other.sum, other.sum_comp});
    sum = s.hi;
    sum_comp = s.lo;
    const TwoDouble b = AddPair({boundary_sum, boundary_sum_comp},
                                {other.boundary_sum, other.boundary_sum_comp});
    boundary_sum = b.hi;
    boundary_sum_comp = b.lo;
    query_cells += other.query_cells;
    searches += other.searches;
  }
};

/// Sorted linearized point index with prefix-sum aggregates and three
/// interchangeable search strategies.
class PointIndex {
 public:
  struct Options {
    int radix_bits = 18;       ///< Paper: 25 at 1.2B keys; scale with data.
    size_t spline_error = 32;  ///< Paper: 32.
  };

  PointIndex(const geom::Point* points, const double* attrs, size_t n,
             const raster::Grid& grid, const Options& opts);
  PointIndex(const geom::Point* points, const double* attrs, size_t n,
             const raster::Grid& grid)
      : PointIndex(points, attrs, n, grid, Options{}) {}

  /// Reassembles an index from a frozen PrefixSumIndex (snapshot load,
  /// src/snapshot/). The spline and B+-tree are deterministic functions
  /// of the sorted key array, so they are REBUILT here rather than
  /// serialized — byte-identity of query answers needs the keys, prefix
  /// pairs and id permutation exactly, nothing more. `grid` must be the
  /// grid the keys were linearized against.
  static PointIndex FromParts(const raster::Grid& grid,
                              index::PrefixSumIndex index, const Options& opts);
  static PointIndex FromParts(const raster::Grid& grid,
                              index::PrefixSumIndex index);

  /// Answers a query polygon given its precomputed HR approximation.
  CellAggregate QueryCells(const raster::HierarchicalRaster& hr,
                           SearchStrategy strategy) const;

  /// Same, over an explicit cell subset — the scatter half of sharded
  /// execution, where each shard answers only the query cells that
  /// intersect its bounds (core/sharded_state.h).
  CellAggregate QueryCells(const raster::HrCell* cells, size_t num_cells,
                           SearchStrategy strategy) const;

  /// Convenience: approximates the polygon with a budget-driven HR first.
  CellAggregate QueryPolygon(const geom::Polygon& poly, size_t cells_budget,
                             SearchStrategy strategy) const;

  /// Aggregates over a single cell's key range (micro-bench / building
  /// block for custom query shapes).
  CellAggregate QueryCellRange(const raster::CellId& cell,
                               SearchStrategy strategy) const;

  /// Approximate SELECTION: ids of all points covered by the query
  /// approximation (no exact tests; epsilon semantics as usual). Appends
  /// to `out`; returns the number of ids added.
  size_t SelectIds(const raster::HierarchicalRaster& hr, SearchStrategy strategy,
                   std::vector<uint32_t>* out) const;

  /// Selection over an explicit cell subset (sharded execution).
  size_t SelectIds(const raster::HrCell* cells, size_t num_cells,
                   SearchStrategy strategy, std::vector<uint32_t>* out) const;

  const raster::Grid& grid() const { return grid_; }
  size_t size() const { return index_.size(); }
  /// Frozen representation, exposed for serialization (src/snapshot/):
  /// together with grid() this fully determines the index — FromParts
  /// rebuilds the spline and B+-tree from it bit-identically.
  const index::PrefixSumIndex& prefix_index() const { return index_; }
  size_t MemoryBytes(SearchStrategy strategy) const;

 private:
  /// FromParts backdoor: members are assigned after construction.
  explicit PointIndex(const raster::Grid& grid) : grid_(grid) {}

  // Positions of the first key >= key under the chosen strategy.
  size_t LowerBound(uint64_t key, SearchStrategy s) const;
  size_t UpperBound(uint64_t key, SearchStrategy s) const;

  raster::Grid grid_;
  index::PrefixSumIndex index_;
  index::RadixSpline spline_;
  index::StaticBTree btree_;
};

}  // namespace dbsa::join

#endif  // DBSA_JOIN_POINT_INDEX_JOIN_H_
