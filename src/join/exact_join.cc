#include "join/exact_join.h"

#include "geom/polygon_ops.h"
#include "spatial/grid_index.h"
#include "spatial/rstar_tree.h"
#include "util/check.h"
#include "util/timer.h"

namespace dbsa::join {

namespace {

double AttrOf(const JoinInput& in, size_t i) {
  return in.attrs ? in.attrs[i] : 0.0;
}

}  // namespace

JoinStats BruteForceJoin(const JoinInput& in, AggKind agg) {
  DBSA_CHECK(in.polys != nullptr);
  JoinStats stats;
  std::vector<Accumulator> accs(in.num_regions);
  Timer timer;
  for (size_t i = 0; i < in.num_points; ++i) {
    const geom::Point& p = in.points[i];
    for (size_t j = 0; j < in.polys->size(); ++j) {
      const geom::Polygon& poly = (*in.polys)[j];
      if (!poly.bounds().Contains(p)) continue;
      ++stats.pip_tests;
      if (poly.Contains(p)) {
        accs[in.RegionOf(j)].Add(AttrOf(in, i));
        break;  // Region sets tile; one match per point.
      }
    }
  }
  stats.probe_ms = timer.Millis();
  stats.value = Finalize(accs, agg);
  return stats;
}

JoinStats RStarMbrJoin(const JoinInput& in, AggKind agg) {
  DBSA_CHECK(in.polys != nullptr);
  JoinStats stats;
  Timer timer;
  spatial::RStarTree tree;
  for (size_t j = 0; j < in.polys->size(); ++j) {
    tree.Insert((*in.polys)[j].bounds(), static_cast<uint32_t>(j));
  }
  stats.build_ms = timer.Millis();
  stats.index_bytes = tree.MemoryBytes();

  timer.Reset();
  std::vector<Accumulator> accs(in.num_regions);
  for (size_t i = 0; i < in.num_points; ++i) {
    const geom::Point& p = in.points[i];
    const geom::Box point_box(p, p);
    bool matched = false;
    tree.VisitBox(point_box, [&](uint32_t j) {
      if (matched) return;  // Tiling: first containing polygon wins.
      ++stats.pip_tests;
      if ((*in.polys)[j].Contains(p)) {
        accs[in.RegionOf(j)].Add(AttrOf(in, i));
        matched = true;
      }
    });
  }
  stats.probe_ms = timer.Millis();
  stats.value = Finalize(accs, agg);
  return stats;
}

JoinStats GridPipJoin(const JoinInput& in, AggKind agg, uint32_t resolution,
                      bool interior_shortcut) {
  DBSA_CHECK(in.polys != nullptr);
  JoinStats stats;
  Timer timer;
  // Universe = bbox of both inputs.
  geom::Box universe;
  for (size_t i = 0; i < in.num_points; ++i) universe.Extend(in.points[i]);
  for (const geom::Polygon& poly : *in.polys) universe.Extend(poly.bounds());
  spatial::GridIndex grid(in.points, in.num_points, universe, resolution);
  stats.build_ms = timer.Millis();
  stats.index_bytes = grid.MemoryBytes();

  timer.Reset();
  std::vector<Accumulator> accs(in.num_regions);
  for (size_t j = 0; j < in.polys->size(); ++j) {
    const geom::Polygon& poly = (*in.polys)[j];
    Accumulator& acc = accs[in.RegionOf(j)];
    uint32_t x0, y0, x1, y1;
    grid.CellRange(poly.bounds(), &x0, &y0, &x1, &y1);
    for (uint32_t cy = y0; cy <= y1; ++cy) {
      for (uint32_t cx = x0; cx <= x1; ++cx) {
        if (grid.CellCount(cx, cy) == 0) continue;
        if (interior_shortcut) {
          const geom::BoxRelation rel = geom::ClassifyBox(poly, grid.CellBox(cx, cy));
          if (rel == geom::BoxRelation::kOutside) continue;
          if (rel == geom::BoxRelation::kInside) {
            grid.VisitCell(cx, cy, [&](uint32_t id) { acc.Add(AttrOf(in, id)); });
            continue;
          }
        }
        grid.VisitCell(cx, cy, [&](uint32_t id) {
          ++stats.pip_tests;
          if (poly.Contains(in.points[id])) acc.Add(AttrOf(in, id));
        });
      }
    }
  }
  stats.probe_ms = timer.Millis();
  stats.value = Finalize(accs, agg);
  return stats;
}

}  // namespace dbsa::join
