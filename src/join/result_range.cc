#include "join/result_range.h"

#include <algorithm>

namespace dbsa::join {

ResultRange MakeResultRange(double total, double boundary_partial, double beta) {
  ResultRange r;
  r.approx = total;
  r.hi = total;
  r.lo = total - boundary_partial;
  r.estimate = total - (1.0 - beta) * boundary_partial;
  r.lo = std::min(r.lo, r.hi);
  return r;
}

ResultRange CountRange(const CellAggregate& agg, double beta) {
  return MakeResultRange(agg.count, agg.boundary_count, beta);
}

ResultRange SumRange(const CellAggregate& agg, double beta) {
  // Round the compensated pairs once, here — the partials merged exactly.
  return MakeResultRange(agg.SumValue(), agg.BoundarySumValue(), beta);
}

}  // namespace dbsa::join
