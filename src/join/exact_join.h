// Exact spatial-aggregation joins — the filter-and-refine baselines the
// paper measures against: brute force (test reference), R*-tree over
// polygon MBRs with PIP refinement (the Boost R*-tree baseline of
// Section 5.1), and the grid-index + PIP "GPU Baseline" of Section 5.2.

#ifndef DBSA_JOIN_EXACT_JOIN_H_
#define DBSA_JOIN_EXACT_JOIN_H_

#include <cstdint>
#include <vector>

#include "geom/polygon.h"
#include "join/agg.h"

namespace dbsa::join {

/// Input tables: points P(loc, attr) and regions R(id, geometry). Regions
/// may be multi-part: polygon i belongs to region region_of[i].
struct JoinInput {
  const geom::Point* points = nullptr;
  const double* attrs = nullptr;  ///< May be null (COUNT-only workloads).
  size_t num_points = 0;
  const std::vector<geom::Polygon>* polys = nullptr;
  const std::vector<uint32_t>* region_of = nullptr;  ///< Null = identity.
  size_t num_regions = 0;

  uint32_t RegionOf(size_t poly_idx) const {
    return region_of ? (*region_of)[poly_idx] : static_cast<uint32_t>(poly_idx);
  }
};

/// Result of any join strategy, with execution statistics.
struct JoinStats {
  std::vector<double> value;  ///< Per region, finalized for the AggKind.
  double build_ms = 0.0;
  double probe_ms = 0.0;
  size_t pip_tests = 0;       ///< Exact point-in-polygon refinements done.
  size_t index_bytes = 0;
  size_t index_cells = 0;     ///< Raster cells in the index (if raster-based).
};

/// Reference implementation: PIP test of every point against every
/// (bbox-matching) polygon. Exact; O(n * m).
JoinStats BruteForceJoin(const JoinInput& in, AggKind agg);

/// Boost-R*-style baseline: R*-tree over polygon MBRs; for each point,
/// query the tree and refine candidates with exact PIP tests.
JoinStats RStarMbrJoin(const JoinInput& in, AggKind agg);

/// Section 5.2's accurate GPU baseline: uniform grid index (resolution^2
/// cells) over the points; for each polygon, PIP-test the points of every
/// cell intersecting it. With interior_shortcut, cells fully inside the
/// polygon skip their PIP tests (a common grid-join optimization, off by
/// default to match the paper's description).
JoinStats GridPipJoin(const JoinInput& in, AggKind agg, uint32_t resolution,
                      bool interior_shortcut = false);

}  // namespace dbsa::join

#endif  // DBSA_JOIN_EXACT_JOIN_H_
