// The paper's approximate main-memory join (Section 5.1): polygons are
// approximated with epsilon-bounded hierarchical rasters and indexed in
// ACT; every point probes the trie and is aggregated WITHOUT any exact
// geometric test. All join errors are within epsilon of the true region
// boundaries (the property tests verify this).

#ifndef DBSA_JOIN_ACT_JOIN_H_
#define DBSA_JOIN_ACT_JOIN_H_

#include "index/act.h"
#include "join/exact_join.h"
#include "raster/grid.h"

namespace dbsa::join {

/// How boundary cells are assigned to regions.
enum class BoundaryAssign {
  /// A boundary cell belongs to the polygon whose interior contains the
  /// cell center. For tiling region sets this yields a partition (each
  /// point maps to exactly one region) and keeps the distance bound.
  kCenter,
  /// Conservative: every polygon overlapping the cell indexes it; lookups
  /// resolve multi-matches by first match. Enables result-range bounds.
  kConservative,
};

struct ActJoinOptions {
  double epsilon = 4.0;  ///< The paper's Section 5.1 run uses 4 m.
  BoundaryAssign assign = BoundaryAssign::kCenter;
  int levels_per_node = 3;  ///< ACT radix width (quad levels per node).
  /// Refine boundary-cell hits with an exact PIP test (and fall through
  /// to the true owner). Interior hits stay test-free, so this gives
  /// EXACT results with only a residual fraction of PIP tests — the
  /// filter-and-refine mode of the ACT line of work (Kipf et al.,
  /// EDBT'20) that the vision paper proposes dropping. Requires
  /// BoundaryAssign::kConservative to be meaningful (a center-assigned
  /// cell may hide the true owner).
  bool exact_refine = false;
};

/// Epsilon-bounded ACT over a region set; probe-only approximate lookups.
class ActJoinIndex {
 public:
  ActJoinIndex(const JoinInput& in, const raster::Grid& grid,
               const ActJoinOptions& opts);

  /// Approximate region of p: first matching cell's polygon, or -1.
  /// Never performs a PIP test.
  int64_t FindPolygon(const geom::Point& p) const;

  /// Like FindPolygon but also reports whether the match was a boundary
  /// cell (drives result-range estimation).
  int64_t FindPolygon(const geom::Point& p, bool* boundary) const;

  /// Exact containment: interior-cell hits are accepted test-free,
  /// boundary-cell candidates are PIP-refined. Only meaningful when the
  /// index was built with BoundaryAssign::kConservative.
  int64_t FindPolygonExact(const geom::Point& p, size_t* pip_tests) const;

  size_t MemoryBytes() const { return act_.MemoryBytes(); }
  size_t NumCells() const { return num_cells_; }
  double achieved_epsilon() const { return achieved_epsilon_; }

 private:
  const raster::Grid& grid_;
  const JoinInput& in_;
  index::ActIndex act_;
  size_t num_cells_ = 0;
  double achieved_epsilon_ = 0.0;
  mutable std::vector<index::ActMatch> scratch_;
};

/// Full approximate aggregation join (index-nested-loop, zero PIP tests).
JoinStats ActJoin(const JoinInput& in, AggKind agg, const raster::Grid& grid,
                  const ActJoinOptions& opts = {});

}  // namespace dbsa::join

#endif  // DBSA_JOIN_ACT_JOIN_H_
