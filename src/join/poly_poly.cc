#include "join/poly_poly.h"

#include <algorithm>

#include "geom/segment.h"

namespace dbsa::join {

const char* IntersectVerdictName(IntersectVerdict verdict) {
  switch (verdict) {
    case IntersectVerdict::kNo:
      return "NO";
    case IntersectVerdict::kWithinBound:
      return "WITHIN-BOUND";
    case IntersectVerdict::kYes:
      return "YES";
  }
  return "?";
}

IntersectVerdict ApproxIntersects(const raster::HierarchicalRaster& a,
                                  const raster::HierarchicalRaster& b) {
  // Two sorted sequences of disjoint leaf-key ranges: sweep both.
  const auto& ca = a.cells();
  const auto& cb = b.cells();
  size_t i = 0, j = 0;
  bool boundary_overlap = false;
  while (i < ca.size() && j < cb.size()) {
    const uint64_t a_lo = ca[i].id.LeafKeyMin();
    const uint64_t a_hi = ca[i].id.LeafKeyMax();
    const uint64_t b_lo = cb[j].id.LeafKeyMin();
    const uint64_t b_hi = cb[j].id.LeafKeyMax();
    if (a_hi < b_lo) {
      ++i;
      continue;
    }
    if (b_hi < a_lo) {
      ++j;
      continue;
    }
    // Ranges overlap: a shared cell region.
    if (!ca[i].boundary && !cb[j].boundary) {
      // Interior-interior: both solids certainly cover this area.
      return IntersectVerdict::kYes;
    }
    boundary_overlap = true;
    // Advance the range that ends first.
    if (a_hi <= b_hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return boundary_overlap ? IntersectVerdict::kWithinBound : IntersectVerdict::kNo;
}

bool ExactIntersects(const geom::Polygon& a, const geom::Polygon& b) {
  if (!a.bounds().Intersects(b.bounds())) return false;
  // Any edge crossing?
  bool crossing = false;
  a.ForEachEdge([&](const geom::Point& a1, const geom::Point& a2) {
    if (crossing) return;
    if (!b.bounds().Intersects(geom::Segment(a1, a2).Bounds())) return;
    b.ForEachEdge([&](const geom::Point& b1, const geom::Point& b2) {
      if (!crossing && geom::SegmentsIntersect(a1, a2, b1, b2)) crossing = true;
    });
  });
  if (crossing) return true;
  // No edge crossing: containment one way or the other.
  return a.Contains(b.outer().front()) || b.Contains(a.outer().front());
}

double ApproxOverlapArea(const raster::HierarchicalRaster& a,
                         const raster::HierarchicalRaster& b,
                         const raster::Grid& grid) {
  const auto& ca = a.cells();
  const auto& cb = b.cells();
  // Leaf cells have side = universe/2^kMaxLevel; each leaf key covers one
  // such cell, so range overlap length converts directly to area.
  const double leaf_side = grid.CellSize(raster::CellId::kMaxLevel);
  const double leaf_area = leaf_side * leaf_side;
  size_t i = 0, j = 0;
  double overlap_leaves = 0.0;
  while (i < ca.size() && j < cb.size()) {
    const uint64_t a_lo = ca[i].id.LeafKeyMin();
    const uint64_t a_hi = ca[i].id.LeafKeyMax();
    const uint64_t b_lo = cb[j].id.LeafKeyMin();
    const uint64_t b_hi = cb[j].id.LeafKeyMax();
    if (a_hi < b_lo) {
      ++i;
      continue;
    }
    if (b_hi < a_lo) {
      ++j;
      continue;
    }
    const uint64_t lo = std::max(a_lo, b_lo);
    const uint64_t hi = std::min(a_hi, b_hi);
    overlap_leaves += static_cast<double>(hi - lo + 1);
    if (a_hi <= b_hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return overlap_leaves * leaf_area;
}

}  // namespace dbsa::join
