// S2ShapeIndex-style join baseline (Section 5.1's "SI"): polygons are
// indexed with a coarse, budget-driven hierarchical raster; lookups accept
// interior-cell hits without any geometric test and refine boundary-cell
// hits with an exact PIP. Exact results, like S2ShapeIndex — but, unlike
// ACT, the approximation is not distance-bounded (the budget, not an
// epsilon, dictates cell sizes), so residual PIP tests remain.

#ifndef DBSA_JOIN_SI_JOIN_H_
#define DBSA_JOIN_SI_JOIN_H_

#include "index/act.h"
#include "join/exact_join.h"
#include "raster/grid.h"

namespace dbsa::join {

/// Coarse-HR polygon index with exact refinement.
class SiIndex {
 public:
  /// cells_per_poly is the HR refinement budget (S2ShapeIndex tunes an
  /// analogous max-cells knob).
  SiIndex(const JoinInput& in, const raster::Grid& grid, size_t cells_per_poly);

  /// Exact containment probe: returns the polygon index containing p, or
  /// -1. pip_tests is incremented per refinement performed.
  int64_t FindPolygon(const geom::Point& p, size_t* pip_tests) const;

  size_t MemoryBytes() const { return act_.MemoryBytes(); }
  size_t NumCells() const { return num_cells_; }

 private:
  const JoinInput& in_;
  const raster::Grid& grid_;
  index::ActIndex act_;
  size_t num_cells_ = 0;
  mutable std::vector<index::ActMatch> scratch_;
};

/// Full aggregation join through an SiIndex.
JoinStats SiJoin(const JoinInput& in, AggKind agg, const raster::Grid& grid,
                 size_t cells_per_poly = 64);

}  // namespace dbsa::join

#endif  // DBSA_JOIN_SI_JOIN_H_
