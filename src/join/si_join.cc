#include "join/si_join.h"

#include "raster/hierarchical_raster.h"
#include "util/timer.h"

namespace dbsa::join {

SiIndex::SiIndex(const JoinInput& in, const raster::Grid& grid,
                 size_t cells_per_poly)
    : in_(in), grid_(grid) {
  for (size_t j = 0; j < in.polys->size(); ++j) {
    const raster::HierarchicalRaster hr =
        raster::HierarchicalRaster::BuildBudget((*in.polys)[j], grid, cells_per_poly);
    for (const raster::HrCell& cell : hr.cells()) {
      act_.Insert(cell.id, static_cast<uint32_t>(j), cell.boundary);
    }
    num_cells_ += hr.NumCells();
  }
}

int64_t SiIndex::FindPolygon(const geom::Point& p, size_t* pip_tests) const {
  const uint64_t key = grid_.LeafKey(p);
  act_.Lookup(key, &scratch_);
  for (const index::ActMatch& m : scratch_) {
    if (!m.boundary) return m.value;  // Interior cell: no test needed.
    ++*pip_tests;
    if ((*in_.polys)[m.value].Contains(p)) return m.value;
  }
  return -1;
}

JoinStats SiJoin(const JoinInput& in, AggKind agg, const raster::Grid& grid,
                 size_t cells_per_poly) {
  JoinStats stats;
  Timer timer;
  SiIndex si(in, grid, cells_per_poly);
  stats.build_ms = timer.Millis();
  stats.index_bytes = si.MemoryBytes();
  stats.index_cells = si.NumCells();

  timer.Reset();
  std::vector<Accumulator> accs(in.num_regions);
  for (size_t i = 0; i < in.num_points; ++i) {
    const int64_t j = si.FindPolygon(in.points[i], &stats.pip_tests);
    if (j >= 0) {
      accs[in.RegionOf(static_cast<size_t>(j))].Add(in.attrs ? in.attrs[i] : 0.0);
    }
  }
  stats.probe_ms = timer.Millis();
  stats.value = Finalize(accs, agg);
  return stats;
}

}  // namespace dbsa::join
