// Distance-bounded polygon-polygon predicates — Section 4's point that
// the raster representation is geometry-type-agnostic: with both inputs
// as cell sets, intersection tests become cell-range overlap instead of
// type-specific edge arithmetic. Semantics under a conservative epsilon
// raster:
//
//   * kNo  -> the exact geometries definitely do not intersect,
//   * kYes -> interiors overlap on at least one fully-interior cell, so
//             they definitely intersect,
//   * kWithinBound -> only boundary cells overlap: the geometries are
//             within 2*epsilon of each other (and may or may not
//             intersect) — the distance-bounded "maybe".

#ifndef DBSA_JOIN_POLY_POLY_H_
#define DBSA_JOIN_POLY_POLY_H_

#include "geom/polygon.h"
#include "raster/hierarchical_raster.h"

namespace dbsa::join {

enum class IntersectVerdict { kNo, kWithinBound, kYes };

const char* IntersectVerdictName(IntersectVerdict verdict);

/// Cell-level intersection of two HR approximations (sorted range merge;
/// no geometry touched).
IntersectVerdict ApproxIntersects(const raster::HierarchicalRaster& a,
                                  const raster::HierarchicalRaster& b);

/// Exact polygon-polygon intersection test (edge intersection or mutual
/// containment) — the baseline the raster test replaces.
bool ExactIntersects(const geom::Polygon& a, const geom::Polygon& b);

/// Approximate overlap area: total area of cells claimed by both rasters
/// (interior-interior overlaps are exact contributions; boundary overlaps
/// carry the epsilon error).
double ApproxOverlapArea(const raster::HierarchicalRaster& a,
                         const raster::HierarchicalRaster& b,
                         const raster::Grid& grid);

}  // namespace dbsa::join

#endif  // DBSA_JOIN_POLY_POLY_H_
