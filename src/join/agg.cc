#include "join/agg.h"

namespace dbsa::join {

const char* AggKindName(AggKind kind) {
  switch (kind) {
    case AggKind::kCount:
      return "COUNT";
    case AggKind::kSum:
      return "SUM";
    case AggKind::kAvg:
      return "AVG";
    case AggKind::kMin:
      return "MIN";
    case AggKind::kMax:
      return "MAX";
  }
  return "?";
}

double Accumulator::Result(AggKind kind) const {
  switch (kind) {
    case AggKind::kCount:
      return count;
    case AggKind::kSum:
      return sum;
    case AggKind::kAvg:
      return count > 0 ? sum / count : 0.0;
    case AggKind::kMin:
      return count > 0 ? min : 0.0;
    case AggKind::kMax:
      return count > 0 ? max : 0.0;
  }
  return 0.0;
}

std::vector<double> Finalize(const std::vector<Accumulator>& accs, AggKind kind) {
  std::vector<double> out;
  out.reserve(accs.size());
  for (const Accumulator& a : accs) out.push_back(a.Result(kind));
  return out;
}

}  // namespace dbsa::join
