// Result-range estimation (Section 6, "Result Range Estimation"): with a
// conservative raster, errors can only come from boundary cells, so the
// exact COUNT lies in [alpha - eps_b, alpha] with 100% confidence, where
// alpha is the approximate count and eps_b the partial count over
// boundary cells. A coverage assumption tightens the interval (without
// the guarantee).

#ifndef DBSA_JOIN_RESULT_RANGE_H_
#define DBSA_JOIN_RESULT_RANGE_H_

#include "join/point_index_join.h"

namespace dbsa::join {

/// A guaranteed interval plus a point estimate for an aggregate computed
/// on a conservative raster approximation.
struct ResultRange {
  double approx = 0.0;    ///< The raw approximate answer (alpha).
  double lo = 0.0;        ///< Guaranteed lower bound (alpha - eps_b).
  double hi = 0.0;        ///< Guaranteed upper bound (alpha).
  double estimate = 0.0;  ///< Heuristic: alpha - (1 - beta) * eps_b.

  double Width() const { return hi - lo; }
  bool Contains(double exact) const { return exact >= lo - 1e-9 && exact <= hi + 1e-9; }
};

/// Builds the interval from total and boundary partial aggregates.
/// beta is the assumed fraction of boundary-cell results that are true
/// positives (0.5 = half the boundary mass inside, the paper's
/// "assumptions about the distribution of points at the boundary").
ResultRange MakeResultRange(double total, double boundary_partial, double beta = 0.5);

/// Interval for a CellAggregate (count or sum of a conservative query).
ResultRange CountRange(const CellAggregate& agg, double beta = 0.5);
ResultRange SumRange(const CellAggregate& agg, double beta = 0.5);

}  // namespace dbsa::join

#endif  // DBSA_JOIN_RESULT_RANGE_H_
