#include "join/point_index_join.h"

namespace dbsa::join {

const char* SearchStrategyName(SearchStrategy s) {
  switch (s) {
    case SearchStrategy::kBinarySearch:
      return "BS";
    case SearchStrategy::kRadixSpline:
      return "RS";
    case SearchStrategy::kBTree:
      return "B+tree";
  }
  return "?";
}

PointIndex::PointIndex(const geom::Point* points, const double* attrs, size_t n,
                       const raster::Grid& grid, const Options& opts)
    : grid_(grid) {
  std::vector<uint64_t> keys(n);
  for (size_t i = 0; i < n; ++i) keys[i] = grid_.LeafKey(points[i]);
  std::vector<double> values(n, 0.0);
  if (attrs != nullptr) values.assign(attrs, attrs + n);
  index_ = index::PrefixSumIndex::Build(std::move(keys), std::move(values));
  spline_ = index::RadixSpline::Build(index_.keys().keys(), opts.radix_bits,
                                      opts.spline_error);
  btree_ = index::StaticBTree::Build(index_.keys().keys());
}

PointIndex PointIndex::FromParts(const raster::Grid& grid,
                                 index::PrefixSumIndex index) {
  return FromParts(grid, std::move(index), Options{});
}

PointIndex PointIndex::FromParts(const raster::Grid& grid,
                                 index::PrefixSumIndex index,
                                 const Options& opts) {
  PointIndex idx(grid);
  idx.index_ = std::move(index);
  idx.spline_ = index::RadixSpline::Build(idx.index_.keys().keys(),
                                          opts.radix_bits, opts.spline_error);
  idx.btree_ = index::StaticBTree::Build(idx.index_.keys().keys());
  return idx;
}

size_t PointIndex::LowerBound(uint64_t key, SearchStrategy s) const {
  switch (s) {
    case SearchStrategy::kBinarySearch:
      return index_.keys().LowerBound(key);
    case SearchStrategy::kRadixSpline: {
      const index::SearchBound b = spline_.Lookup(key);
      size_t pos = index_.keys().LowerBoundFrom(key, b.begin, b.end);
      if (pos == b.end && pos < index_.size()) {
        // Duplicate run pushed the answer past the window (rare): finish
        // with an unbounded search from the window end.
        pos = index_.keys().LowerBoundFrom(key, pos, index_.size());
      }
      return pos;
    }
    case SearchStrategy::kBTree:
      return btree_.LowerBoundRank(key);
  }
  return 0;
}

size_t PointIndex::UpperBound(uint64_t key, SearchStrategy s) const {
  if (key == UINT64_MAX) return index_.size();
  return LowerBound(key + 1, s);
}

CellAggregate PointIndex::QueryCells(const raster::HierarchicalRaster& hr,
                                     SearchStrategy strategy) const {
  return QueryCells(hr.cells().data(), hr.cells().size(), strategy);
}

CellAggregate PointIndex::QueryCells(const raster::HrCell* cells, size_t num_cells,
                                     SearchStrategy strategy) const {
  CellAggregate agg;
  for (size_t c = 0; c < num_cells; ++c) {
    const raster::HrCell& cell = cells[c];
    const uint64_t lo_key = cell.id.LeafKeyMin();
    const uint64_t hi_key = cell.id.LeafKeyMax();
    const size_t lo = LowerBound(lo_key, strategy);
    const size_t hi = UpperBound(hi_key, strategy);
    agg.searches += 2;
    ++agg.query_cells;
    const double cnt = static_cast<double>(index_.CountBetween(lo, hi));
    const TwoDouble sum = index_.SumPairBetween(lo, hi);
    agg.count += cnt;
    const TwoDouble s = AddPair({agg.sum, agg.sum_comp}, sum);
    agg.sum = s.hi;
    agg.sum_comp = s.lo;
    if (cell.boundary) {
      agg.boundary_count += cnt;
      const TwoDouble b = AddPair({agg.boundary_sum, agg.boundary_sum_comp}, sum);
      agg.boundary_sum = b.hi;
      agg.boundary_sum_comp = b.lo;
    }
  }
  return agg;
}

CellAggregate PointIndex::QueryCellRange(const raster::CellId& cell,
                                         SearchStrategy strategy) const {
  CellAggregate agg;
  const size_t lo = LowerBound(cell.LeafKeyMin(), strategy);
  const size_t hi = UpperBound(cell.LeafKeyMax(), strategy);
  agg.searches = 2;
  agg.query_cells = 1;
  agg.count = static_cast<double>(index_.CountBetween(lo, hi));
  const TwoDouble sum = index_.SumPairBetween(lo, hi);
  agg.sum = sum.hi;
  agg.sum_comp = sum.lo;
  return agg;
}

size_t PointIndex::SelectIds(const raster::HierarchicalRaster& hr,
                             SearchStrategy strategy,
                             std::vector<uint32_t>* out) const {
  return SelectIds(hr.cells().data(), hr.cells().size(), strategy, out);
}

size_t PointIndex::SelectIds(const raster::HrCell* cells, size_t num_cells,
                             SearchStrategy strategy,
                             std::vector<uint32_t>* out) const {
  const size_t before = out->size();
  for (size_t c = 0; c < num_cells; ++c) {
    const size_t lo = LowerBound(cells[c].id.LeafKeyMin(), strategy);
    const size_t hi = UpperBound(cells[c].id.LeafKeyMax(), strategy);
    index_.CollectIds(lo, hi, out);
  }
  return out->size() - before;
}

CellAggregate PointIndex::QueryPolygon(const geom::Polygon& poly, size_t cells_budget,
                                       SearchStrategy strategy) const {
  const raster::HierarchicalRaster hr =
      raster::HierarchicalRaster::BuildBudget(poly, grid_, cells_budget);
  return QueryCells(hr, strategy);
}

size_t PointIndex::MemoryBytes(SearchStrategy strategy) const {
  size_t bytes = index_.MemoryBytes();
  switch (strategy) {
    case SearchStrategy::kBinarySearch:
      break;
    case SearchStrategy::kRadixSpline:
      bytes += spline_.MemoryBytes();
      break;
    case SearchStrategy::kBTree:
      bytes += btree_.MemoryBytes();
      break;
  }
  return bytes;
}

}  // namespace dbsa::join
