// The Section 4 optimization layer: the rasterized-canvas model and the
// cell indexes give several physically different plans for the same
// distance-bounded aggregation query; a simple cost model picks one from
// the query parameters (distance bound, estimated selectivity, input
// cardinalities) and explains its choice.

#ifndef DBSA_QUERY_OPTIMIZER_H_
#define DBSA_QUERY_OPTIMIZER_H_

#include <string>

#include "query/selectivity.h"

namespace dbsa::query {

/// Physical strategies for the spatial aggregation query.
enum class PlanKind {
  kActJoin,         ///< Epsilon-bounded ACT, index-nested-loop (Sec. 5.1).
  kPointIndexJoin,  ///< Linearized point index + HR query cells (Sec. 3).
  kCanvasBrj,       ///< Bounded Raster Join on the canvas model (Sec. 5.2).
  kExactRStar,      ///< Exact filter-and-refine (baseline).
};

const char* PlanKindName(PlanKind kind);

/// Workload description handed to the optimizer.
struct QueryProfile {
  size_t num_points = 0;
  size_t num_polygons = 0;
  double avg_vertices = 0.0;       ///< Polygon complexity drives PIP cost.
  double epsilon = 0.0;            ///< 0 = exact required.
  double universe_extent = 0.0;    ///< Side of the universe square.
  double total_perimeter = 0.0;    ///< Sum over polygons (boundary cells).
  double total_polygon_area = 0.0;
  bool point_index_available = false;  ///< Amortized across queries?
  /// True when a serving layer caches HR approximations of the region
  /// table, making the per-query HR construction of the point-index plan
  /// (nearly) free after the first execution.
  bool hr_cache_available = false;
  /// Spatially-partitioned shards the point-index plan fans its probes
  /// out across (core::ShardedState). The modeled probe cost divides by
  /// this number — an optimistic discount: it is realized when a query's
  /// cells scatter across all shards on enough cores, and overstated when
  /// pruning leaves fewer survivors (selective queries) or cores are
  /// scarce. 1 = unsharded.
  double parallel_shards = 1.0;
  /// Abstract cost units charged per shard probe message round-trip when
  /// the shards sit behind a transport (service/shard_server.h): each
  /// repetition of the point-index plan pays `parallel_shards *
  /// transport_overhead` on top of the divided probe cost, so the fan-out
  /// discount no longer looks free once serialization (loopback) or a
  /// network (RPC) is in the loop. 0 = in-process shards.
  double transport_overhead = 0.0;
  int repetitions = 1;                 ///< Expected executions of the plan.
};

/// A costed plan choice.
struct PlanChoice {
  PlanKind kind = PlanKind::kExactRStar;
  double est_cost = 0.0;       ///< Abstract cost units.
  std::string explain;         ///< EXPLAIN-style text for all options.
};

/// Per-plan cost estimates (exposed for tests and the EXPLAIN output).
struct PlanCosts {
  double act = 0.0;
  double point_index = 0.0;
  double brj = 0.0;
  double exact = 0.0;
};

/// Estimates abstract costs for every plan.
PlanCosts EstimateCosts(const QueryProfile& profile);

/// Picks the cheapest applicable plan. If epsilon == 0 only exact plans
/// qualify.
PlanChoice ChoosePlan(const QueryProfile& profile);

}  // namespace dbsa::query

#endif  // DBSA_QUERY_OPTIMIZER_H_
