#include "query/optimizer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace dbsa::query {

const char* PlanKindName(PlanKind kind) {
  switch (kind) {
    case PlanKind::kActJoin:
      return "ACT-JOIN";
    case PlanKind::kPointIndexJoin:
      return "POINT-INDEX-JOIN";
    case PlanKind::kCanvasBrj:
      return "CANVAS-BRJ";
    case PlanKind::kExactRStar:
      return "EXACT-RSTAR";
  }
  return "?";
}

PlanCosts EstimateCosts(const QueryProfile& p) {
  PlanCosts c;
  const double n = static_cast<double>(p.num_points);
  const double m = static_cast<double>(std::max<size_t>(p.num_polygons, 1));
  const double reps = static_cast<double>(std::max(p.repetitions, 1));
  const double eps = std::max(p.epsilon, 1e-9);
  const double cell = eps / 1.4142135623730951;

  // Boundary cells per polygon set ~ total perimeter / cell side; interior
  // cells collapse logarithmically in the HR.
  const double boundary_cells = p.total_perimeter / cell;
  const double interior_cells =
      p.total_polygon_area > 0 ? p.total_polygon_area / (cell * cell) : 0.0;
  const double hr_cells = boundary_cells + std::max(1.0, std::log2(interior_cells + 2));

  // Abstract unit = one simple memory/compare operation.
  constexpr double kTrieHop = 4.0;
  constexpr double kSearch = 2.0;      // Per log2 step of a bounded search.
  constexpr double kPixel = 0.6;       // Canvas pixel touch.
  constexpr double kPipPerVertex = 1.5;

  // ACT join: build (insert hr cells) + n probes * trie depth.
  const double act_depth = 8.0;  // kMaxLevel / levels_per_node.
  c.act = hr_cells * kTrieHop * 8.0 + reps * n * act_depth * kTrieHop;

  // Point-index join: (amortized) sort build + per query cell two bounded
  // searches. Query cells come from budget/epsilon HR of the query polys.
  const double build = p.point_index_available ? 0.0 : n * std::log2(n + 2) * 0.5;
  const double searches = 2.0 * hr_cells;
  // Rasterizing the query polygons dominates the probe for small point
  // sets; a serving-layer approximation cache amortizes it away.
  const double hr_build = p.hr_cache_available ? 0.0 : hr_cells * kTrieHop;
  // Sharded execution scatters the probes across spatially-local slices:
  // wall-clock probe cost divides by the surviving shards, and each
  // shard's searches run over an index 1/shards the size.
  const double shards = std::max(p.parallel_shards, 1.0);
  // Message-seam shards charge one round-trip per shard per execution
  // (scatter request + gather partial) on top of the divided probe work.
  const double transport = shards * std::max(p.transport_overhead, 0.0);
  c.point_index =
      build +
      reps * (hr_build + transport +
              searches * kSearch * std::log2(n / shards + 2) / shards);

  // BRJ: points pass + polygon fill per tile.
  const double res = p.universe_extent / cell;
  const double tiles = std::pow(std::ceil(res / 2048.0), 2.0);
  const double fill_pixels =
      p.total_polygon_area > 0 ? p.total_polygon_area / (cell * cell) : res * res;
  c.brj = reps * (n * std::max(tiles, 1.0) + fill_pixels * kPixel + res * res * 0.1);

  // Exact filter-and-refine: every point PIP-tested against candidate
  // polygons (~1.3 candidates with an R* over MBRs of a tiling set).
  c.exact = reps * n * (std::log2(m + 2) * kSearch +
                        1.3 * p.avg_vertices * kPipPerVertex);
  return c;
}

PlanChoice ChoosePlan(const QueryProfile& p) {
  const PlanCosts c = EstimateCosts(p);
  PlanChoice choice;
  char buf[512];

  if (p.epsilon <= 0.0) {
    choice.kind = PlanKind::kExactRStar;
    choice.est_cost = c.exact;
    std::snprintf(buf, sizeof(buf),
                  "epsilon=0 (exact required) -> %s (cost %.3g); approximate plans "
                  "not applicable",
                  PlanKindName(choice.kind), c.exact);
    choice.explain = buf;
    return choice;
  }

  choice.kind = PlanKind::kActJoin;
  choice.est_cost = c.act;
  if (c.point_index < choice.est_cost) {
    choice.kind = PlanKind::kPointIndexJoin;
    choice.est_cost = c.point_index;
  }
  if (c.brj < choice.est_cost) {
    choice.kind = PlanKind::kCanvasBrj;
    choice.est_cost = c.brj;
  }
  if (c.exact < choice.est_cost) {
    choice.kind = PlanKind::kExactRStar;
    choice.est_cost = c.exact;
  }
  std::snprintf(buf, sizeof(buf),
                "candidates: ACT=%.3g POINT-INDEX=%.3g BRJ=%.3g EXACT=%.3g "
                "(n=%zu, polys=%zu, avg_vertices=%.1f, eps=%.3g, reps=%d, "
                "shards=%.0f, transport=%.3g) -> %s",
                c.act, c.point_index, c.brj, c.exact, p.num_points, p.num_polygons,
                p.avg_vertices, p.epsilon, p.repetitions,
                std::max(p.parallel_shards, 1.0),
                std::max(p.transport_overhead, 0.0), PlanKindName(choice.kind));
  choice.explain = buf;
  return choice;
}

}  // namespace dbsa::query
