// Grid-histogram selectivity estimation — the statistic the Section 4
// optimizer consults to choose among canvas/index plans.

#ifndef DBSA_QUERY_SELECTIVITY_H_
#define DBSA_QUERY_SELECTIVITY_H_

#include <cstdint>
#include <vector>

#include "geom/polygon.h"

namespace dbsa::query {

/// Equi-width 2-D histogram of point counts.
class SelectivityHistogram {
 public:
  SelectivityHistogram(const geom::Point* points, size_t n,
                       const geom::Box& universe, uint32_t resolution = 128);

  /// Estimated number of points inside the box (fractional cell coverage).
  double EstimateBox(const geom::Box& box) const;

  /// Estimated number of points inside the polygon (coarse cell
  /// classification; boundary cells contribute half their mass).
  double EstimatePolygon(const geom::Polygon& poly) const;

  size_t total() const { return total_; }
  size_t MemoryBytes() const { return counts_.size() * sizeof(uint32_t); }

 private:
  geom::Box CellBox(uint32_t cx, uint32_t cy) const;

  geom::Box universe_;
  uint32_t resolution_;
  /// True when the universe has zero extent on the axis (e.g. collinear
  /// points): the axis collapses to one synthetic unit cell and any query
  /// overlap on it counts as full coverage (no 0-sized cells, no NaN).
  bool degenerate_w_ = false, degenerate_h_ = false;
  double cell_w_, cell_h_;
  size_t total_ = 0;
  std::vector<uint32_t> counts_;
};

}  // namespace dbsa::query

#endif  // DBSA_QUERY_SELECTIVITY_H_
