#include "query/selectivity.h"

#include <algorithm>
#include <cmath>

#include "geom/polygon_ops.h"
#include "util/check.h"

namespace dbsa::query {

namespace {

/// Histogram column/row of a coordinate. `cell` is always > 0 (degenerate
/// axes are given a synthetic unit cell), so the division can produce
/// neither NaN nor infinity for in-universe coordinates; the clamp keeps
/// out-of-universe and rounding stragglers in range — the uint32_t cast
/// is only ever applied to a value in [0, resolution - 1].
uint32_t AxisIndex(double v, double origin, double cell, uint32_t resolution) {
  const double f = std::floor((v - origin) / cell);
  return static_cast<uint32_t>(
      std::clamp(f, 0.0, static_cast<double>(resolution - 1)));
}

/// Fraction of the cell interval [cell_lo, cell_hi] covered by the query
/// interval [q_lo, q_hi], clamped to [0, 1].
double AxisFraction(double q_lo, double q_hi, double cell_lo, double cell_hi) {
  const double width = cell_hi - cell_lo;
  const double overlap = std::min(q_hi, cell_hi) - std::max(q_lo, cell_lo);
  return std::clamp(overlap / width, 0.0, 1.0);
}

}  // namespace

SelectivityHistogram::SelectivityHistogram(const geom::Point* points, size_t n,
                                           const geom::Box& universe,
                                           uint32_t resolution)
    : universe_(universe), resolution_(resolution) {
  DBSA_CHECK(resolution >= 1);
  // A degenerate universe (all points collinear, or a single point) has
  // zero extent on one or both axes. Zero-sized cells would turn the
  // index computation into NaN (undefined behaviour on the uint32_t
  // cast) and the coverage fraction into 0/0 — instead the degenerate
  // axis collapses to a single synthetic unit cell: every point lands in
  // row/column 0 and any query touching the axis counts as full overlap.
  degenerate_w_ = !(universe_.Width() > 0.0);
  degenerate_h_ = !(universe_.Height() > 0.0);
  cell_w_ = degenerate_w_ ? 1.0 : universe_.Width() / resolution_;
  cell_h_ = degenerate_h_ ? 1.0 : universe_.Height() / resolution_;
  counts_.assign(static_cast<size_t>(resolution_) * resolution_, 0);
  for (size_t i = 0; i < n; ++i) {
    const uint32_t cx = AxisIndex(points[i].x, universe_.min.x, cell_w_, resolution_);
    const uint32_t cy = AxisIndex(points[i].y, universe_.min.y, cell_h_, resolution_);
    ++counts_[static_cast<size_t>(cy) * resolution_ + cx];
  }
  total_ = n;
}

geom::Box SelectivityHistogram::CellBox(uint32_t cx, uint32_t cy) const {
  const double x0 = universe_.min.x + cell_w_ * cx;
  const double y0 = universe_.min.y + cell_h_ * cy;
  return geom::Box(x0, y0, x0 + cell_w_, y0 + cell_h_);
}

double SelectivityHistogram::EstimateBox(const geom::Box& box) const {
  const geom::Box q = box.Intersection(universe_);
  if (q.IsEmpty()) return 0.0;
  double estimate = 0.0;
  const uint32_t x0 = AxisIndex(q.min.x, universe_.min.x, cell_w_, resolution_);
  const uint32_t y0 = AxisIndex(q.min.y, universe_.min.y, cell_h_, resolution_);
  const uint32_t x1 = AxisIndex(q.max.x, universe_.min.x, cell_w_, resolution_);
  const uint32_t y1 = AxisIndex(q.max.y, universe_.min.y, cell_h_, resolution_);
  for (uint32_t cy = y0; cy <= y1; ++cy) {
    for (uint32_t cx = x0; cx <= x1; ++cx) {
      const geom::Box cell = CellBox(cx, cy);
      // Per-axis coverage: the product equals intersection area over cell
      // area on a regular grid, and a degenerate axis (zero-extent query
      // interval inside a synthetic cell) counts as fully covered rather
      // than 0/0.
      const double fx =
          degenerate_w_ ? 1.0 : AxisFraction(q.min.x, q.max.x, cell.min.x, cell.max.x);
      const double fy =
          degenerate_h_ ? 1.0 : AxisFraction(q.min.y, q.max.y, cell.min.y, cell.max.y);
      estimate += fx * fy * counts_[static_cast<size_t>(cy) * resolution_ + cx];
    }
  }
  return estimate;
}

double SelectivityHistogram::EstimatePolygon(const geom::Polygon& poly) const {
  const geom::Box q = poly.bounds().Intersection(universe_);
  if (q.IsEmpty()) return 0.0;
  double estimate = 0.0;
  const uint32_t x0 = AxisIndex(q.min.x, universe_.min.x, cell_w_, resolution_);
  const uint32_t y0 = AxisIndex(q.min.y, universe_.min.y, cell_h_, resolution_);
  const uint32_t x1 = AxisIndex(q.max.x, universe_.min.x, cell_w_, resolution_);
  const uint32_t y1 = AxisIndex(q.max.y, universe_.min.y, cell_h_, resolution_);
  for (uint32_t cy = y0; cy <= y1; ++cy) {
    for (uint32_t cx = x0; cx <= x1; ++cx) {
      const geom::Box cell = CellBox(cx, cy);
      const geom::BoxRelation rel = geom::ClassifyBox(poly, cell);
      if (rel == geom::BoxRelation::kOutside) continue;
      const double weight = rel == geom::BoxRelation::kInside ? 1.0 : 0.5;
      estimate += weight * counts_[static_cast<size_t>(cy) * resolution_ + cx];
    }
  }
  return estimate;
}

}  // namespace dbsa::query
