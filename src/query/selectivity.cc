#include "query/selectivity.h"

#include <algorithm>
#include <cmath>

#include "geom/polygon_ops.h"
#include "util/check.h"

namespace dbsa::query {

SelectivityHistogram::SelectivityHistogram(const geom::Point* points, size_t n,
                                           const geom::Box& universe,
                                           uint32_t resolution)
    : universe_(universe), resolution_(resolution) {
  DBSA_CHECK(resolution >= 1);
  cell_w_ = universe_.Width() / resolution_;
  cell_h_ = universe_.Height() / resolution_;
  counts_.assign(static_cast<size_t>(resolution_) * resolution_, 0);
  const double max_idx = static_cast<double>(resolution_ - 1);
  for (size_t i = 0; i < n; ++i) {
    const double fx = (points[i].x - universe_.min.x) / cell_w_;
    const double fy = (points[i].y - universe_.min.y) / cell_h_;
    const uint32_t cx = static_cast<uint32_t>(std::clamp(std::floor(fx), 0.0, max_idx));
    const uint32_t cy = static_cast<uint32_t>(std::clamp(std::floor(fy), 0.0, max_idx));
    ++counts_[static_cast<size_t>(cy) * resolution_ + cx];
  }
  total_ = n;
}

geom::Box SelectivityHistogram::CellBox(uint32_t cx, uint32_t cy) const {
  const double x0 = universe_.min.x + cell_w_ * cx;
  const double y0 = universe_.min.y + cell_h_ * cy;
  return geom::Box(x0, y0, x0 + cell_w_, y0 + cell_h_);
}

double SelectivityHistogram::EstimateBox(const geom::Box& box) const {
  const geom::Box q = box.Intersection(universe_);
  if (q.IsEmpty()) return 0.0;
  double estimate = 0.0;
  const double max_idx = static_cast<double>(resolution_ - 1);
  const uint32_t x0 = static_cast<uint32_t>(
      std::clamp(std::floor((q.min.x - universe_.min.x) / cell_w_), 0.0, max_idx));
  const uint32_t y0 = static_cast<uint32_t>(
      std::clamp(std::floor((q.min.y - universe_.min.y) / cell_h_), 0.0, max_idx));
  const uint32_t x1 = static_cast<uint32_t>(
      std::clamp(std::floor((q.max.x - universe_.min.x) / cell_w_), 0.0, max_idx));
  const uint32_t y1 = static_cast<uint32_t>(
      std::clamp(std::floor((q.max.y - universe_.min.y) / cell_h_), 0.0, max_idx));
  for (uint32_t cy = y0; cy <= y1; ++cy) {
    for (uint32_t cx = x0; cx <= x1; ++cx) {
      const geom::Box cell = CellBox(cx, cy);
      const double frac = cell.Intersection(q).Area() / cell.Area();
      estimate += frac * counts_[static_cast<size_t>(cy) * resolution_ + cx];
    }
  }
  return estimate;
}

double SelectivityHistogram::EstimatePolygon(const geom::Polygon& poly) const {
  const geom::Box q = poly.bounds().Intersection(universe_);
  if (q.IsEmpty()) return 0.0;
  double estimate = 0.0;
  const double max_idx = static_cast<double>(resolution_ - 1);
  const uint32_t x0 = static_cast<uint32_t>(
      std::clamp(std::floor((q.min.x - universe_.min.x) / cell_w_), 0.0, max_idx));
  const uint32_t y0 = static_cast<uint32_t>(
      std::clamp(std::floor((q.min.y - universe_.min.y) / cell_h_), 0.0, max_idx));
  const uint32_t x1 = static_cast<uint32_t>(
      std::clamp(std::floor((q.max.x - universe_.min.x) / cell_w_), 0.0, max_idx));
  const uint32_t y1 = static_cast<uint32_t>(
      std::clamp(std::floor((q.max.y - universe_.min.y) / cell_h_), 0.0, max_idx));
  for (uint32_t cy = y0; cy <= y1; ++cy) {
    for (uint32_t cx = x0; cx <= x1; ++cx) {
      const geom::Box cell = CellBox(cx, cy);
      const geom::BoxRelation rel = geom::ClassifyBox(poly, cell);
      if (rel == geom::BoxRelation::kOutside) continue;
      const double weight = rel == geom::BoxRelation::kInside ? 1.0 : 0.5;
      estimate += weight * counts_[static_cast<size_t>(cy) * resolution_ + cx];
    }
  }
  return estimate;
}

}  // namespace dbsa::query
