// The paper's distance bound as a first-class, typed contract. A query
// no longer carries a raw `double epsilon`: it carries an ErrorBound that
// says WHICH error regime the caller is in —
//
//   kAbsoluteDistance  "answer within Hausdorff distance epsilon" — the
//                      paper's native contract. The engine snaps to the
//                      coarsest grid level whose cell diagonal still
//                      honors the bound (Grid::LevelForEpsilon);
//   kGridLevel         "serve exactly hierarchical-raster level L" — the
//                      caller pins the approximation resolution (zoom
//                      levels, cache-key stability across clients);
//   kExact             "no approximation at all" — exact plans only,
//                      brute-force point-in-polygon for ad-hoc queries.
//
// The absolute/relative regime split follows Har-Peled & Sharir's
// distinction between absolute and relative (p,eps)-approximations: the
// engine can serve either under one API because the bound, not the call
// site, names the contract. The achieved side of the contract travels
// back on service::Result (epsilon actually guaranteed, level served).

#ifndef DBSA_QUERY_ERROR_BOUND_H_
#define DBSA_QUERY_ERROR_BOUND_H_

#include <cmath>
#include <cstdint>
#include <string>

#include "raster/cell_id.h"
#include "raster/grid.h"
#include "util/status.h"

namespace dbsa::query {

/// Stable wire values (transport.h ships the kind as u8): append only.
enum class BoundKind : uint8_t {
  kAbsoluteDistance = 0,
  kGridLevel = 1,
  kExact = 2,
};

/// Number of BoundKind values; non-switch dispatch sites (wire
/// validation in transport.cc) pin this with an adjacent static_assert
/// so a new bound regime is a compile error at every handling site.
inline constexpr int kBoundKindCount = 3;
static_assert(static_cast<int>(BoundKind::kExact) + 1 == kBoundKindCount,
              "BoundKind grew: bump kBoundKindCount, then fix every "
              "static_assert(kBoundKindCount == ...) handling site");

inline const char* BoundKindName(BoundKind kind) {
  switch (kind) {
    case BoundKind::kAbsoluteDistance:
      return "absolute-distance";
    case BoundKind::kGridLevel:
      return "grid-level";
    case BoundKind::kExact:
      return "exact";
  }
  return "?";
}

/// The distance-bound contract of one query. Construct through the
/// factories; `epsilon` is meaningful only under kAbsoluteDistance and
/// `level` only under kGridLevel.
struct ErrorBound {
  BoundKind kind = BoundKind::kExact;
  double epsilon = 0.0;
  int level = 0;

  static ErrorBound Absolute(double epsilon) {
    return ErrorBound{BoundKind::kAbsoluteDistance, epsilon, 0};
  }
  static ErrorBound AtLevel(int level) {
    return ErrorBound{BoundKind::kGridLevel, 0.0, level};
  }
  static ErrorBound Exact() { return ErrorBound{BoundKind::kExact, 0.0, 0}; }

  /// True iff this bound demands exact answers: kExact, or an absolute
  /// bound of zero (or less) — the engine-wide "epsilon <= 0 means exact"
  /// convention, now spelled once.
  bool exact() const {
    return kind == BoundKind::kExact ||
           (kind == BoundKind::kAbsoluteDistance && epsilon <= 0.0);
  }

  /// Structural validity, independent of any grid.
  Status Validate() const {
    switch (kind) {
      case BoundKind::kAbsoluteDistance:
        if (std::isnan(epsilon)) {
          return Status::InvalidArgument("absolute bound epsilon must not be NaN");
        }
        return Status::OK();
      case BoundKind::kGridLevel:
        if (level < 0 || level > raster::CellId::kMaxLevel) {
          return Status::InvalidArgument(
              "grid level " + std::to_string(level) + " outside [0, " +
              std::to_string(raster::CellId::kMaxLevel) + "]");
        }
        return Status::OK();
      case BoundKind::kExact:
        return Status::OK();
    }
    return Status::InvalidArgument("unknown bound kind");
  }

  /// The epsilon the approximate execution path runs with. For kGridLevel
  /// this is grid.AchievedEpsilon(level), which LevelForEpsilon maps back
  /// to exactly `level` (the diagonal halves per level, so the snap
  /// relation round-trips bit-for-bit — tested in query_envelope_test) —
  /// pinning the HR level without widening every executor signature.
  /// Exact bounds yield 0. Callers must not feed 0 to LevelForEpsilon;
  /// use exact() to branch first.
  double EffectiveEpsilon(const raster::Grid& grid) const {
    switch (kind) {
      case BoundKind::kAbsoluteDistance:
        return epsilon;
      case BoundKind::kGridLevel:
        return grid.AchievedEpsilon(level);
      case BoundKind::kExact:
        return 0.0;
    }
    return 0.0;
  }

  /// The HR level an approximate execution serves under this bound
  /// (-1 when the bound demands exactness).
  int ServedLevel(const raster::Grid& grid) const {
    if (exact()) return -1;
    return kind == BoundKind::kGridLevel ? level
                                         : grid.LevelForEpsilon(epsilon);
  }

  bool operator==(const ErrorBound& o) const {
    if (kind != o.kind) return false;
    switch (kind) {
      case BoundKind::kAbsoluteDistance:
        return epsilon == o.epsilon;
      case BoundKind::kGridLevel:
        return level == o.level;
      case BoundKind::kExact:
        return true;
    }
    return false;
  }
  bool operator!=(const ErrorBound& o) const { return !(*this == o); }

  std::string ToString() const {
    switch (kind) {
      case BoundKind::kAbsoluteDistance:
        return "d_H<=" + std::to_string(epsilon);
      case BoundKind::kGridLevel:
        return "level=" + std::to_string(level);
      case BoundKind::kExact:
        return "exact";
    }
    return "?";
  }
};

}  // namespace dbsa::query

#endif  // DBSA_QUERY_ERROR_BOUND_H_
