#include "service/query.h"

namespace dbsa::service {

const char* QueryKindName(QueryKind kind) {
  static_assert(kQueryKindCount == 3, "new query kind: name it below");
  switch (kind) {
    case QueryKind::kAggregate:
      return "aggregate";
    case QueryKind::kCount:
      return "count";
    case QueryKind::kSelect:
      return "select";
  }
  return "?";
}

const char* ExecPathName(ExecPath path) {
  static_assert(kExecPathCount == 3, "new execution path: name it below");
  switch (path) {
    case ExecPath::kLocal:
      return "local";
    case ExecPath::kSharded:
      return "sharded";
    case ExecPath::kTransport:
      return "transport";
  }
  return "?";
}

namespace {

struct SpecValidator {
  Status operator()(const AggregateSpec& spec) const {
    if ((spec.agg == join::AggKind::kSum || spec.agg == join::AggKind::kAvg) &&
        spec.attr == core::Attr::kNone) {
      return Status::InvalidArgument("SUM/AVG require an attribute column");
    }
    return Status::OK();
  }
  Status operator()(const CountSpec& spec) const { return ValidPoly(spec.poly); }
  Status operator()(const SelectSpec& spec) const { return ValidPoly(spec.poly); }

  static Status ValidPoly(const geom::Polygon& poly) {
    if (poly.outer().size() < 3) {
      return Status::InvalidArgument("query polygon needs at least 3 vertices");
    }
    return Status::OK();
  }
};

}  // namespace

Status ValidateQuery(const Query& query, const ExecOptions& options) {
  const Status bound = options.bound.Validate();
  if (!bound.ok()) return bound;
  return query.Visit(SpecValidator{});
}

}  // namespace dbsa::service
