#include "service/query_service.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <exception>

#include "util/check.h"
#include "util/timer.h"

namespace dbsa::service {

QueryService::QueryService(std::shared_ptr<const core::EngineState> state,
                           const ServiceOptions& options)
    : QueryService(std::move(state), nullptr, options) {}

QueryService::QueryService(std::shared_ptr<const core::ShardedState> sharded,
                           const ServiceOptions& options)
    // `sharded` is COPIED into the delegate, not moved: argument
    // evaluation order is unspecified, and a move could empty it before
    // the base_ptr() argument reads it.
    : QueryService(sharded != nullptr ? sharded->base_ptr() : nullptr, sharded,
                   options) {}

QueryService::QueryService(std::shared_ptr<const core::EngineState> state,
                           std::shared_ptr<const core::ShardedState> preassembled,
                           const ServiceOptions& options)
    : state_(std::move(state)),
      options_(options),
      registry_(options.registry ? options.registry
                                 : std::make_shared<telemetry::MetricRegistry>()),
      cache_(options.cache_budget_bytes, registry_),
      pool_(options.num_threads) {
  DBSA_CHECK(state_ != nullptr);
  // Per-kind query metrics, resolved once so recording never takes the
  // registry lock on the query path.
  for (const QueryKind kind :
       {QueryKind::kAggregate, QueryKind::kCount, QueryKind::kSelect}) {
    const std::string label = std::string("{kind=\"") + QueryKindName(kind) + "\"}";
    const size_t k = static_cast<size_t>(kind);
    queries_total_[k] = registry_->GetCounter("dbsa_queries_total" + label);
    query_latency_ms_[k] =
        registry_->GetHistogram("dbsa_query_latency_ms" + label);
  }
  slow_queries_total_ = registry_->GetCounter("dbsa_slow_queries_total");
  inflight_depth_gauge_ = registry_->GetGauge("dbsa_inflight_depth");
  shed_total_ = registry_->GetCounter("dbsa_shed_total");
  const bool socket_mode =
      options.use_transport && options.transport_kind == TransportKind::kSocket;
  if (!options.use_transport) {
    // A socket transport_kind without use_transport would otherwise be
    // silently ignored: the service would build the full local engine
    // and answer every query in-process while the external cluster sits
    // idle. Reject the misconfiguration at construction.
    DBSA_CHECK(options.transport_kind == TransportKind::kLoopback);
  }
  if (!socket_mode) {
    // Same trap one notch later: a placement with use_transport but the
    // default kLoopback transport_kind would be ignored too.
    DBSA_CHECK(options.placement.num_shards() == 0);
  }
  size_t num_shards = std::max<size_t>(options.num_shards, 1);
  if (socket_mode) {
    DBSA_CHECK(options.placement.num_shards() > 0);
    if (options.num_shards <= 1) {
      // Unspecified shard count: the placement is the deployment truth.
      num_shards = options.placement.num_shards();
    } else {
      DBSA_CHECK(num_shards == options.placement.num_shards());
    }
    // A placement larger than the point table can never be served:
    // ShardedState::Build would silently clamp K and the router would
    // then abort on an opaque shard-count mismatch. Fail here, where
    // the cause is nameable.
    DBSA_CHECK(num_shards <= state_->points->locs.size());
  }
  if (preassembled != nullptr) {
    // Snapshot deployment: adopt the assembled state instead of
    // re-partitioning. The same misconfigurations the build path rejects
    // are rejected here — and loopback servers below need slices.
    DBSA_CHECK(num_shards <= 1 || preassembled->num_shards() == num_shards);
    if (socket_mode) {
      DBSA_CHECK(preassembled->num_shards() == options.placement.num_shards());
    } else {
      DBSA_CHECK(options.use_transport);  // preassembly exists to serve a seam
      DBSA_CHECK(preassembled->has_slices());
    }
    sharded_ = std::move(preassembled);
  } else if (num_shards > 1 || options.use_transport) {
    core::ShardingOptions sharding;
    sharding.num_shards = num_shards;
    sharding.hilbert_level = options.shard_hilbert_level;
    // A socket client routes and prunes but never executes shard-locally:
    // skip the slice copies and per-shard index builds entirely.
    sharding.build_slices = !socket_mode;
    sharded_ = core::ShardedState::Build(state_, sharding);
  }
  if (socket_mode) {
    // Real RPC deployment: the service is a pure client — it keeps only
    // the routing metadata (sharded_ is a routing-only build: curve
    // runs, key ranges, bounds; no slice states) and a socket transport
    // to the external shard servers named by the placement. The shard
    // slices live in those processes (shard_server_main), not here.
    SocketTransport::Options socket_options = options.socket_options;
    socket_options.registry = registry_;
    if (options.rewarm_on_failover) {
      // Demux thread -> pool task: the rewarm sends warm requests over
      // THIS transport, so it must not run on the demux thread itself.
      socket_options.on_failover = [this](size_t shard) {
        pool_.Submit([this, shard]() { RewarmShard(shard); });
      };
    }
    socket_ = std::make_shared<SocketTransport>(options.placement, socket_options);
    router_ = std::make_unique<ShardRouter>(sharded_, socket_);
  } else if (options.use_transport) {
    // The distribution rehearsal: one ShardServer per shard (each owning
    // its slice, id map and per-shard cell cache) behind a loopback
    // transport; every shard probe crosses the serialized wire format.
    // All shards record into the service registry, distinguished by their
    // {shard="N"} label.
    ShardServer::Options server_options;
    server_options.cell_cache_budget_bytes = options.shard_cache_budget_bytes;
    server_options.registry = registry_;
    server_options.serving_epoch = options.serving_epoch;
    std::vector<LoopbackTransport::Handler> handlers;
    servers_.reserve(sharded_->num_shards());
    handlers.reserve(sharded_->num_shards());
    for (size_t s = 0; s < sharded_->num_shards(); ++s) {
      const core::ShardedState::Shard& shard = sharded_->shard(s);
      server_options.shard_index = s;
      servers_.push_back(std::make_shared<ShardServer>(
          shard.state, shard.global_ids, server_options));
      handlers.push_back(
          [server = servers_.back()](const std::string& request) {
            return server->Handle(request);
          });
    }
    loopback_ = std::make_shared<LoopbackTransport>(std::move(handlers), registry_);
    router_ = std::make_unique<ShardRouter>(sharded_, loopback_);
  }
  // Pin every outgoing scatter to the serving generation (wire v5 epoch;
  // 0 stays the wildcard for epoch-less deployments).
  if (router_ != nullptr) router_->set_epoch(options.serving_epoch);
}

QueryService::QueryService(data::PointSet points, data::RegionSet regions,
                           const ServiceOptions& options)
    : QueryService(core::BuildEngineState(std::move(points), std::move(regions)),
                   options) {}

QueryService::~QueryService() = default;

ExecPath QueryService::exec_path() const {
  if (router_ != nullptr) return ExecPath::kTransport;
  if (sharded_ != nullptr) return ExecPath::kSharded;
  return ExecPath::kLocal;
}

core::ExecHooks QueryService::MakeHooks(const ExecOptions& options,
                                        std::atomic<size_t>* query_hits,
                                        std::atomic<size_t>* query_misses,
                                        telemetry::QueryTrace* trace) {
  core::ExecHooks hooks;
  hooks.max_fanout = options.max_shard_fanout;
  hooks.trace = trace;
  hooks.hr_provider = [this, query_hits, query_misses, trace](
                          size_t poly_index, const geom::Polygon& poly,
                          double epsilon) {
    // Span stage depends on the OUTCOME (hit -> cache_lookup, miss ->
    // hr_build), so the span is recorded manually after the call.
    const double span_start_ms = trace != nullptr ? trace->ElapsedMs() : 0.0;
    const int level = state_->grid.LevelForEpsilon(epsilon);
    const bool ad_hoc = poly_index == core::kAdHocPolygon;
    const ObjectKey object_id =
        ad_hoc ? PolygonFingerprint(poly) : ObjectKey(static_cast<uint64_t>(poly_index));
    bool built = false;
    // Ad-hoc polygons are identified only by their fingerprint, so their
    // hits are verified against the geometry; region-table entries are
    // keyed by table index and cannot collide.
    ApproxCache::HrPtr hr = cache_.GetOrBuild(
        object_id, level,
        [&]() {
          return raster::HierarchicalRaster::BuildLevel(poly, state_->grid, level);
        },
        &built, ad_hoc ? &poly : nullptr);
    if (query_hits != nullptr && query_misses != nullptr) {
      (built ? *query_misses : *query_hits).fetch_add(1, std::memory_order_relaxed);
    }
    if (trace != nullptr) {
      trace->Record(built ? "hr_build" : "cache_lookup", span_start_ms,
                    trace->ElapsedMs() - span_start_ms);
    }
    return hr;
  };
  if (options_.parallel_regions && pool_.size() > 1) {
    hooks.parallel_for = [this](size_t n, const std::function<void(size_t)>& fn) {
      pool_.ParallelFor(n, fn);
    };
  }
  return hooks;
}

namespace {

/// The achieved side of the contract, lifted off the execution report
/// (BoundReport::requested and ::path are set by RunQuery).
void FillBoundReport(const core::ExecStats& stats, Result* result) {
  result->bound.epsilon_achieved = stats.achieved_epsilon;
  result->bound.hr_level = stats.hr_level;
  result->bound.cells_touched = stats.query_cells;
  result->bound.hr_cache_hits = stats.hr_cache_hits;
  result->bound.hr_cache_misses = stats.hr_cache_misses;
  result->bound.shards_probed = stats.shards_probed;
}

}  // namespace

template <typename RunFn>
auto QueryService::RunWithStats(const ExecOptions& options,
                                telemetry::QueryTrace* trace, Result* result,
                                RunFn&& run) {
  std::atomic<size_t> query_hits{0};
  std::atomic<size_t> query_misses{0};
  const core::ExecHooks hooks =
      MakeHooks(options, &query_hits, &query_misses, trace);
  auto answer = [&]() {
    telemetry::SpanTimer span(trace, "execute");
    return run(hooks);
  }();
  answer.stats.hr_cache_hits = query_hits.load(std::memory_order_relaxed);
  answer.stats.hr_cache_misses = query_misses.load(std::memory_order_relaxed);
  FillBoundReport(answer.stats, result);
  return answer;
}

void QueryService::RunSpec(const AggregateSpec& spec, const ExecOptions& options,
                           telemetry::QueryTrace* trace, Result* result) {
  result->aggregate =
      RunWithStats(options, trace, result, [&](const core::ExecHooks& hooks) {
        return router_ != nullptr
                   ? ExecuteAggregate(*router_, spec.agg, spec.attr,
                                      options.bound, options.mode, hooks)
                   : (sharded_ != nullptr
                          ? core::ExecuteAggregate(*sharded_, spec.agg, spec.attr,
                                                   options.bound, options.mode,
                                                   hooks)
                          : core::ExecuteAggregate(*state_, spec.agg, spec.attr,
                                                   options.bound, options.mode,
                                                   hooks));
      });
}

void QueryService::RunSpec(const CountSpec& spec, const ExecOptions& options,
                           telemetry::QueryTrace* trace, Result* result) {
  result->range =
      RunWithStats(options, trace, result, [&](const core::ExecHooks& hooks) {
        return router_ != nullptr
                   ? ExecuteCount(*router_, spec.poly, options.bound, hooks)
                   : (sharded_ != nullptr
                          ? core::ExecuteCount(*sharded_, spec.poly,
                                               options.bound, hooks)
                          : core::ExecuteCount(*state_, spec.poly, options.bound,
                                               hooks));
      }).range;
}

void QueryService::RunSpec(const SelectSpec& spec, const ExecOptions& options,
                           telemetry::QueryTrace* trace, Result* result) {
  result->ids = std::move(
      RunWithStats(options, trace, result, [&](const core::ExecHooks& hooks) {
        return router_ != nullptr
                   ? ExecuteSelect(*router_, spec.poly, options.bound, hooks)
                   : (sharded_ != nullptr
                          ? core::ExecuteSelect(*sharded_, spec.poly,
                                                options.bound, hooks)
                          : core::ExecuteSelect(*state_, spec.poly, options.bound,
                                                hooks));
      }).ids);
}

void QueryService::FinishQueryTelemetry(const Result& result,
                                        telemetry::QueryTrace* trace,
                                        double total_ms) {
  const size_t k = static_cast<size_t>(result.kind);
  queries_total_[k]->Add(1);
  query_latency_ms_[k]->Record(total_ms);
  std::vector<telemetry::TraceSpan> spans;
  if (trace != nullptr) {
    spans = trace->spans();
    // Per-stage latency distributions: one histogram family keyed by the
    // stage label. The stage set is tiny and closed, so the registry
    // lookups here (post-query, not on the execution path) stay cheap.
    for (const telemetry::TraceSpan& s : spans) {
      registry_->GetHistogram("dbsa_stage_ms{stage=\"" + s.stage + "\"}")
          ->Record(s.duration_ms);
    }
  }
  if (options_.slow_query_ms > 0.0 && total_ms > options_.slow_query_ms) {
    slow_queries_total_->Add(1);
    const telemetry::TraceContext ctx =
        trace != nullptr ? trace->ctx() : telemetry::TraceContext{};
    const std::string line = telemetry::FormatSlowQueryLine(
        ctx, QueryKindName(result.kind), result.bound.requested.ToString(),
        result.bound.epsilon_achieved, result.status.ToString(), total_ms,
        std::move(spans));
    if (options_.slow_query_sink) {
      options_.slow_query_sink(line);
    } else {
      std::fprintf(stderr, "%s\n", line.c_str());
    }
  }
}

Result QueryService::RunQuery(uint64_t ticket, const Query& query,
                              const ExecOptions& options,
                              Clock::time_point submitted) {
  Timer timer;
  std::unique_ptr<telemetry::QueryTrace> trace;
  if (options_.enable_tracing) {
    trace = std::make_unique<telemetry::QueryTrace>(telemetry::NewTraceContext());
  }
  Result result;
  result.ticket = ticket;
  result.kind = query.kind();
  result.bound.requested = options.bound;
  result.bound.path = exec_path();
  if (trace != nullptr) {
    result.bound.trace_hi = trace->ctx().trace_hi;
    result.bound.trace_lo = trace->ctx().trace_lo;
  }

  // Admission: a cancelled or deadline-expired query never starts. Both
  // checks run HERE, on the worker, so time spent queued counts against
  // the deadline — the common case a deadline exists for.
  const Status admitted = [&]() -> Status {
    telemetry::SpanTimer span(trace.get(), "admission");
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      return Status::Cancelled("query cancelled before execution");
    }
    if (options.deadline_ms > 0.0) {
      const double waited_ms =
          std::chrono::duration<double, std::milli>(Clock::now() - submitted)
              .count();
      if (waited_ms > options.deadline_ms) {
        return Status::DeadlineExceeded(
            "deadline of " + std::to_string(options.deadline_ms) +
            " ms exceeded before execution");
      }
    }
    return ValidateQuery(query, options);
  }();
  if (!admitted.ok()) {
    result.status = admitted;
    FinishQueryTelemetry(result, trace.get(), timer.Millis());
    return result;
  }

  // Failures become Status results HERE: the batched path never stores an
  // exception in a future, so one poisoned query can neither abort a
  // Drain nor share exception state across threads.
  try {
    // The service's ONE spec dispatch: the generic lambda resolves to the
    // RunSpec overload set, so a new variant alternative without its
    // RunSpec overload fails right here — the assert makes the failure a
    // named instruction instead of an overload-resolution spew.
    static_assert(std::variant_size_v<QuerySpec> == kQueryKindCount,
                  "new query kind: add a RunSpec overload, then audit the "
                  "shard seam (ScatterRequest::Kind) and BaselineSpec in "
                  "the envelope tests");
    query.Visit(
        [&](const auto& spec) { RunSpec(spec, options, trace.get(), &result); });
    result.status = Status::OK();
  } catch (const StatusException& e) {
    result.status = e.status();  // Typed codes survive (wire errors etc.).
  } catch (const std::exception& e) {
    result.status =
        Status::Internal(e.what()[0] != '\0' ? e.what() : "query failed");
  } catch (...) {
    result.status = Status::Internal("query failed with a non-standard exception");
  }
  FinishQueryTelemetry(result, trace.get(), timer.Millis());
  return result;
}

bool QueryService::AdmitQuery(uint64_t ticket, QueryKind kind, Result* shed) {
  dbsa::MutexLock lock(inflight_mu_);
  // Shedding comes first: at or past the threshold the query is turned
  // away with a cheap, typed answer BEFORE the pool, the cache or any
  // HR build sees it — an overloaded service must get cheaper per
  // request, not more expensive.
  if (options_.shed_inflight_threshold > 0 &&
      inflight_depth_ >= options_.shed_inflight_threshold) {
    shed_total_->Add(1);
    shed->ticket = ticket;
    shed->kind = kind;
    shed->bound.path = exec_path();
    shed->status = Status::Unavailable(
        "service overloaded: " + std::to_string(inflight_depth_) +
        " queries in flight (shed threshold " +
        std::to_string(options_.shed_inflight_threshold) + ")");
    return false;
  }
  // Backpressure: at the hard cap the SUBMITTING thread waits — bounded
  // in-flight depth instead of an unbounded pool queue.
  if (options_.max_inflight > 0) {
    while (inflight_depth_ >= options_.max_inflight) inflight_cv_.Wait(lock);
  }
  ++inflight_depth_;
  inflight_depth_gauge_->Set(static_cast<double>(inflight_depth_));
  return true;
}

void QueryService::FinishInflight() {
  {
    dbsa::MutexLock lock(inflight_mu_);
    --inflight_depth_;
    inflight_depth_gauge_->Set(static_cast<double>(inflight_depth_));
  }
  inflight_cv_.NotifyOne();
}

std::future<Result> QueryService::Execute(Query query, ExecOptions options) {
  const Clock::time_point submitted = Clock::now();
  Result shed;
  shed.bound.requested = options.bound;
  if (!AdmitQuery(0, query.kind(), &shed)) {
    std::promise<Result> ready;
    ready.set_value(std::move(shed));
    return ready.get_future();
  }
  return pool_.Async([this, query = std::move(query), options = std::move(options),
                      submitted]() {
    Result result = RunQuery(0, query, options, submitted);
    FinishInflight();
    return result;
  });
}

uint64_t QueryService::Submit(Query query, ExecOptions options) {
  const Clock::time_point submitted = Clock::now();
  const QueryKind kind = query.kind();
  // Admission runs OUTSIDE pending_mu_: backpressure may block, and a
  // blocked Submit must not stall Drain (which takes pending_mu_).
  uint64_t ticket;
  {
    dbsa::MutexLock lock(pending_mu_);
    ticket = next_ticket_++;
  }
  Result shed;
  shed.bound.requested = options.bound;
  if (!AdmitQuery(ticket, kind, &shed)) {
    std::promise<Result> ready;
    ready.set_value(std::move(shed));
    dbsa::MutexLock lock(pending_mu_);
    pending_.push_back(Pending{ticket, kind, ready.get_future()});
    return ticket;
  }
  std::future<Result> future =
      pool_.Async([this, ticket, query = std::move(query),
                   options = std::move(options), submitted]() {
        Result result = RunQuery(ticket, query, options, submitted);
        FinishInflight();
        return result;
      });
  dbsa::MutexLock lock(pending_mu_);
  pending_.push_back(Pending{ticket, kind, std::move(future)});
  return ticket;
}

std::vector<Result> QueryService::Drain() {
  std::vector<Pending> pending;
  {
    dbsa::MutexLock lock(pending_mu_);
    pending.swap(pending_);
  }
  std::vector<Result> results;
  results.reserve(pending.size());
  for (Pending& p : pending) {
    // RunQuery never throws, but one misbehaving future must still not
    // abort the drain: every later future gets consumed and the failed
    // ticket surfaces as a Status in its submission slot.
    try {
      results.push_back(p.future.get());
    } catch (const StatusException& e) {
      Result error;
      error.ticket = p.ticket;
      error.kind = p.kind;
      error.status = e.status();
      results.push_back(std::move(error));
    } catch (const std::exception& e) {
      Result error;
      error.ticket = p.ticket;
      error.kind = p.kind;
      error.status =
          Status::Internal(e.what()[0] != '\0' ? e.what() : "query failed");
      results.push_back(std::move(error));
    } catch (...) {
      Result error;
      error.ticket = p.ticket;
      error.kind = p.kind;
      error.status = Status::Internal("query failed with a non-standard exception");
      results.push_back(std::move(error));
    }
  }
  std::sort(results.begin(), results.end(),
            [](const Result& a, const Result& b) { return a.ticket < b.ticket; });
  return results;
}

void QueryService::WarmCache(double epsilon) {
  const core::ExecHooks hooks = MakeHooks(ExecOptions{});
  const std::vector<geom::Polygon>& polys = state_->regions->polys;
  const int level = state_->grid.LevelForEpsilon(epsilon);
  pool_.ParallelFor(polys.size(), [&](size_t j) {
    const ApproxCache::HrPtr hr = hooks.hr_provider(j, polys[j], epsilon);
    if (router_ != nullptr) {
      // Shard-aware warm: ship each region's routed cell slice to exactly
      // the shards its cells route to — every other shard's cache stays
      // untouched by this region.
      router_->WarmObject(ObjectKey(static_cast<uint64_t>(j)), level, *hr);
    }
  });
  // Remember the working set's epsilon so a post-failover rewarm replays
  // exactly this warm for the promoted endpoint.
  dbsa::MutexLock lock(warm_mu_);
  last_warm_epsilon_ = epsilon;
}

void QueryService::RewarmShard(size_t shard) {
  double epsilon = 0.0;
  {
    dbsa::MutexLock lock(warm_mu_);
    epsilon = last_warm_epsilon_;
  }
  if (epsilon <= 0.0 || router_ == nullptr) return;  // Never warmed: nothing to replay.
  if (shard >= sharded_->num_shards()) return;
  const core::ExecHooks hooks = MakeHooks(ExecOptions{});
  const std::vector<geom::Polygon>& polys = state_->regions->polys;
  const int level = state_->grid.LevelForEpsilon(epsilon);
  // Serial over regions: this runs on one pool worker already, and the
  // warm traffic of a single shard should not crowd out query fan-outs.
  for (size_t j = 0; j < polys.size(); ++j) {
    const ApproxCache::HrPtr hr = hooks.hr_provider(j, polys[j], epsilon);
    router_->WarmShard(shard, ObjectKey(static_cast<uint64_t>(j)), level, *hr);
  }
}

// ---- FROZEN v1 shims (conversion only; see service/v1_compat.h) --------

std::future<core::AggregateAnswer> QueryService::Aggregate(join::AggKind agg,
                                                           core::Attr attr,
                                                           double epsilon,
                                                           core::Mode mode) {
  // Convert BEFORE capturing so geometry moves into the closure once.
  const Request request = Request::MakeAggregate(agg, attr, epsilon, mode);
  Query query = QueryFromV1(request);
  ExecOptions options = OptionsFromV1(request);
  const Clock::time_point submitted = Clock::now();
  return pool_.Async([this, query = std::move(query),
                      options = std::move(options), submitted]() {
    Result result = RunQuery(0, query, options, submitted);
    if (!result.ok()) ThrowLegacy(result.status);  // v1 exception contract.
    return std::move(result.aggregate);
  });
}

std::future<join::ResultRange> QueryService::CountInPolygon(geom::Polygon poly,
                                                            double epsilon) {
  Query query = Query::Count(std::move(poly));
  ExecOptions options;
  options.bound = query::ErrorBound::Absolute(epsilon);
  const Clock::time_point submitted = Clock::now();
  return pool_.Async(
      [this, query = std::move(query), options = std::move(options), submitted]() {
        Result result = RunQuery(0, query, options, submitted);
        if (!result.ok()) ThrowLegacy(result.status);
        return result.range;
      });
}

std::future<std::vector<uint32_t>> QueryService::SelectInPolygon(geom::Polygon poly,
                                                                 double epsilon) {
  Query query = Query::Select(std::move(poly));
  ExecOptions options;
  options.bound = query::ErrorBound::Absolute(epsilon);
  const Clock::time_point submitted = Clock::now();
  return pool_.Async(
      [this, query = std::move(query), options = std::move(options), submitted]() {
        Result result = RunQuery(0, query, options, submitted);
        if (!result.ok()) ThrowLegacy(result.status);
        return std::move(result.ids);
      });
}

uint64_t QueryService::Submit(Request request) {
  ExecOptions options = OptionsFromV1(request);
  return Submit(QueryFromV1(request), std::move(options));
}

std::vector<Response> QueryService::DrainResponses() {
  std::vector<Result> results = Drain();
  std::vector<Response> responses;
  responses.reserve(results.size());
  for (Result& result : results) {
    responses.push_back(ResponseFromResult(std::move(result)));
  }
  return responses;
}

}  // namespace dbsa::service
