#include "service/query_service.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <stdexcept>

#include "util/check.h"

namespace dbsa::service {

namespace {

// Request validation: contract violations that would otherwise abort the
// process deep in the engine (DBSA_CHECK) or poison a batch are rejected
// with std::invalid_argument here; Drain converts the exception into an
// error Response for the offending ticket only.

void ValidateEpsilon(double epsilon) {
  if (std::isnan(epsilon)) {
    throw std::invalid_argument("epsilon must not be NaN");
  }
}

void ValidateAggregate(const Request& request) {
  ValidateEpsilon(request.epsilon);
  if ((request.agg == join::AggKind::kSum || request.agg == join::AggKind::kAvg) &&
      request.attr == core::Attr::kNone) {
    throw std::invalid_argument("SUM/AVG require an attribute column");
  }
}

void ValidatePolygonQuery(const geom::Polygon& poly, double epsilon) {
  ValidateEpsilon(epsilon);
  if (poly.outer().size() < 3) {
    throw std::invalid_argument("query polygon needs at least 3 vertices");
  }
}

}  // namespace

Request Request::MakeAggregate(join::AggKind agg, core::Attr attr, double epsilon,
                               core::Mode mode) {
  Request r;
  r.kind = Kind::kAggregate;
  r.agg = agg;
  r.attr = attr;
  r.epsilon = epsilon;
  r.mode = mode;
  return r;
}

Request Request::MakeCount(geom::Polygon poly, double epsilon) {
  Request r;
  r.kind = Kind::kCountInPolygon;
  r.poly = std::move(poly);
  r.epsilon = epsilon;
  return r;
}

Request Request::MakeSelect(geom::Polygon poly, double epsilon) {
  Request r;
  r.kind = Kind::kSelectInPolygon;
  r.poly = std::move(poly);
  r.epsilon = epsilon;
  return r;
}

QueryService::QueryService(std::shared_ptr<const core::EngineState> state,
                           const ServiceOptions& options)
    : state_(std::move(state)),
      options_(options),
      cache_(options.cache_budget_bytes),
      pool_(options.num_threads) {
  DBSA_CHECK(state_ != nullptr);
  if (options.num_shards > 1 || options.use_transport) {
    core::ShardingOptions sharding;
    sharding.num_shards = std::max<size_t>(options.num_shards, 1);
    sharding.hilbert_level = options.shard_hilbert_level;
    sharded_ = core::ShardedState::Build(state_, sharding);
  }
  if (options.use_transport) {
    // The distribution rehearsal: one ShardServer per shard (each owning
    // its slice, id map and per-shard cell cache) behind a loopback
    // transport; every shard probe crosses the serialized wire format.
    ShardServer::Options server_options;
    server_options.cell_cache_budget_bytes = options.shard_cache_budget_bytes;
    std::vector<LoopbackTransport::Handler> handlers;
    servers_.reserve(sharded_->num_shards());
    handlers.reserve(sharded_->num_shards());
    for (size_t s = 0; s < sharded_->num_shards(); ++s) {
      const core::ShardedState::Shard& shard = sharded_->shard(s);
      servers_.push_back(std::make_shared<ShardServer>(
          shard.state, shard.global_ids, server_options));
      handlers.push_back(
          [server = servers_.back()](const std::string& request) {
            return server->Handle(request);
          });
    }
    loopback_ = std::make_shared<LoopbackTransport>(std::move(handlers));
    router_ = std::make_unique<ShardRouter>(sharded_, loopback_);
  }
}

QueryService::QueryService(data::PointSet points, data::RegionSet regions,
                           const ServiceOptions& options)
    : QueryService(core::BuildEngineState(std::move(points), std::move(regions)),
                   options) {}

QueryService::~QueryService() = default;

core::ExecHooks QueryService::MakeHooks(std::atomic<size_t>* query_hits,
                                        std::atomic<size_t>* query_misses) {
  core::ExecHooks hooks;
  hooks.hr_provider = [this, query_hits, query_misses](
                          size_t poly_index, const geom::Polygon& poly,
                          double epsilon) {
    const int level = state_->grid.LevelForEpsilon(epsilon);
    const bool ad_hoc = poly_index == core::kAdHocPolygon;
    const ObjectKey object_id =
        ad_hoc ? PolygonFingerprint(poly) : ObjectKey(static_cast<uint64_t>(poly_index));
    bool built = false;
    // Ad-hoc polygons are identified only by their fingerprint, so their
    // hits are verified against the geometry; region-table entries are
    // keyed by table index and cannot collide.
    ApproxCache::HrPtr hr = cache_.GetOrBuild(
        object_id, level,
        [&]() {
          return raster::HierarchicalRaster::BuildLevel(poly, state_->grid, level);
        },
        &built, ad_hoc ? &poly : nullptr);
    if (query_hits != nullptr && query_misses != nullptr) {
      (built ? *query_misses : *query_hits).fetch_add(1, std::memory_order_relaxed);
    }
    return hr;
  };
  if (options_.parallel_regions && pool_.size() > 1) {
    hooks.parallel_for = [this](size_t n, const std::function<void(size_t)>& fn) {
      pool_.ParallelFor(n, fn);
    };
  }
  return hooks;
}

core::AggregateAnswer QueryService::RunAggregate(const Request& request) {
  ValidateAggregate(request);
  std::atomic<size_t> query_hits{0};
  std::atomic<size_t> query_misses{0};
  const core::ExecHooks hooks = MakeHooks(&query_hits, &query_misses);
  core::AggregateAnswer answer =
      router_ != nullptr
          ? ExecuteAggregate(*router_, request.agg, request.attr, request.epsilon,
                             request.mode, hooks)
          : (sharded_ != nullptr
                 ? core::ExecuteAggregate(*sharded_, request.agg, request.attr,
                                          request.epsilon, request.mode, hooks)
                 : core::ExecuteAggregate(*state_, request.agg, request.attr,
                                          request.epsilon, request.mode, hooks));
  answer.stats.hr_cache_hits = query_hits.load(std::memory_order_relaxed);
  answer.stats.hr_cache_misses = query_misses.load(std::memory_order_relaxed);
  return answer;
}

join::ResultRange QueryService::RunCount(const geom::Polygon& poly, double epsilon) {
  ValidatePolygonQuery(poly, epsilon);
  if (router_ != nullptr) {
    return ExecuteCountInPolygon(*router_, poly, epsilon, MakeHooks());
  }
  return sharded_ != nullptr
             ? core::ExecuteCountInPolygon(*sharded_, poly, epsilon, MakeHooks())
             : core::ExecuteCountInPolygon(*state_, poly, epsilon, MakeHooks());
}

std::vector<uint32_t> QueryService::RunSelect(const geom::Polygon& poly,
                                              double epsilon) {
  ValidatePolygonQuery(poly, epsilon);
  if (router_ != nullptr) {
    return ExecuteSelectInPolygon(*router_, poly, epsilon, MakeHooks());
  }
  return sharded_ != nullptr
             ? core::ExecuteSelectInPolygon(*sharded_, poly, epsilon, MakeHooks())
             : core::ExecuteSelectInPolygon(*state_, poly, epsilon, MakeHooks());
}

Response QueryService::Run(uint64_t ticket, const Request& request) {
  Response response;
  response.ticket = ticket;
  response.kind = request.kind;
  // Failures become error responses HERE, on the worker: the batched
  // path never stores an exception in a future, so one poisoned query
  // can neither abort a Drain nor share exception state across threads.
  try {
    switch (request.kind) {
      case Request::Kind::kAggregate:
        response.aggregate = RunAggregate(request);
        break;
      case Request::Kind::kCountInPolygon:
        response.range = RunCount(request.poly, request.epsilon);
        break;
      case Request::Kind::kSelectInPolygon:
        response.ids = RunSelect(request.poly, request.epsilon);
        break;
    }
  } catch (const std::exception& e) {
    response.error = e.what()[0] != '\0' ? e.what() : "query failed";
  } catch (...) {
    response.error = "query failed with a non-standard exception";
  }
  return response;
}

std::future<core::AggregateAnswer> QueryService::Aggregate(join::AggKind agg,
                                                           core::Attr attr,
                                                           double epsilon,
                                                           core::Mode mode) {
  Request request = Request::MakeAggregate(agg, attr, epsilon, mode);
  return pool_.Async(
      [this, request = std::move(request)]() { return RunAggregate(request); });
}

std::future<join::ResultRange> QueryService::CountInPolygon(geom::Polygon poly,
                                                            double epsilon) {
  return pool_.Async([this, poly = std::move(poly), epsilon]() {
    return RunCount(poly, epsilon);
  });
}

std::future<std::vector<uint32_t>> QueryService::SelectInPolygon(geom::Polygon poly,
                                                                 double epsilon) {
  return pool_.Async([this, poly = std::move(poly), epsilon]() {
    return RunSelect(poly, epsilon);
  });
}

uint64_t QueryService::Submit(Request request) {
  std::lock_guard<std::mutex> lock(pending_mu_);
  const uint64_t ticket = next_ticket_++;
  const Request::Kind kind = request.kind;
  pending_.push_back(Pending{
      ticket, kind, pool_.Async([this, ticket, request = std::move(request)]() {
        return Run(ticket, request);
      })});
  return ticket;
}

std::vector<Response> QueryService::Drain() {
  std::vector<Pending> pending;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending.swap(pending_);
  }
  std::vector<Response> responses;
  responses.reserve(pending.size());
  for (Pending& p : pending) {
    // One throwing query must not abort the drain: every later future
    // still gets consumed (abandoning them would lose their responses
    // and leave the batch blocked on destruction), and the failed ticket
    // surfaces as an error Response in its submission slot.
    try {
      responses.push_back(p.future.get());
    } catch (const std::exception& e) {
      Response error;
      error.ticket = p.ticket;
      error.kind = p.kind;
      error.error = e.what()[0] != '\0' ? e.what() : "query failed";
      responses.push_back(std::move(error));
    } catch (...) {
      Response error;
      error.ticket = p.ticket;
      error.kind = p.kind;
      error.error = "query failed with a non-standard exception";
      responses.push_back(std::move(error));
    }
  }
  std::sort(responses.begin(), responses.end(),
            [](const Response& a, const Response& b) { return a.ticket < b.ticket; });
  return responses;
}

void QueryService::WarmCache(double epsilon) {
  const core::ExecHooks hooks = MakeHooks();
  const std::vector<geom::Polygon>& polys = state_->regions->polys;
  const int level = state_->grid.LevelForEpsilon(epsilon);
  pool_.ParallelFor(polys.size(), [&](size_t j) {
    const ApproxCache::HrPtr hr = hooks.hr_provider(j, polys[j], epsilon);
    if (router_ != nullptr) {
      // Shard-aware warm: ship each region's routed cell slice to exactly
      // the shards its cells route to — every other shard's cache stays
      // untouched by this region.
      router_->WarmObject(ObjectKey(static_cast<uint64_t>(j)), level, *hr);
    }
  });
}

}  // namespace dbsa::service
