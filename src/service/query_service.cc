#include "service/query_service.h"

#include <algorithm>
#include <atomic>

#include "util/check.h"

namespace dbsa::service {

Request Request::MakeAggregate(join::AggKind agg, core::Attr attr, double epsilon,
                               core::Mode mode) {
  Request r;
  r.kind = Kind::kAggregate;
  r.agg = agg;
  r.attr = attr;
  r.epsilon = epsilon;
  r.mode = mode;
  return r;
}

Request Request::MakeCount(geom::Polygon poly, double epsilon) {
  Request r;
  r.kind = Kind::kCountInPolygon;
  r.poly = std::move(poly);
  r.epsilon = epsilon;
  return r;
}

Request Request::MakeSelect(geom::Polygon poly, double epsilon) {
  Request r;
  r.kind = Kind::kSelectInPolygon;
  r.poly = std::move(poly);
  r.epsilon = epsilon;
  return r;
}

QueryService::QueryService(std::shared_ptr<const core::EngineState> state,
                           const ServiceOptions& options)
    : state_(std::move(state)),
      options_(options),
      cache_(options.cache_budget_bytes),
      pool_(options.num_threads) {
  DBSA_CHECK(state_ != nullptr);
  if (options.num_shards > 1) {
    core::ShardingOptions sharding;
    sharding.num_shards = options.num_shards;
    sharding.hilbert_level = options.shard_hilbert_level;
    sharded_ = core::ShardedState::Build(state_, sharding);
  }
}

QueryService::QueryService(data::PointSet points, data::RegionSet regions,
                           const ServiceOptions& options)
    : QueryService(core::BuildEngineState(std::move(points), std::move(regions)),
                   options) {}

QueryService::~QueryService() = default;

core::ExecHooks QueryService::MakeHooks(std::atomic<size_t>* query_hits,
                                        std::atomic<size_t>* query_misses) {
  core::ExecHooks hooks;
  hooks.hr_provider = [this, query_hits, query_misses](
                          size_t poly_index, const geom::Polygon& poly,
                          double epsilon) {
    const int level = state_->grid.LevelForEpsilon(epsilon);
    const bool ad_hoc = poly_index == core::kAdHocPolygon;
    const ObjectKey object_id =
        ad_hoc ? PolygonFingerprint(poly) : ObjectKey(static_cast<uint64_t>(poly_index));
    bool built = false;
    // Ad-hoc polygons are identified only by their fingerprint, so their
    // hits are verified against the geometry; region-table entries are
    // keyed by table index and cannot collide.
    ApproxCache::HrPtr hr = cache_.GetOrBuild(
        object_id, level,
        [&]() {
          return raster::HierarchicalRaster::BuildLevel(poly, state_->grid, level);
        },
        &built, ad_hoc ? &poly : nullptr);
    if (query_hits != nullptr && query_misses != nullptr) {
      (built ? *query_misses : *query_hits).fetch_add(1, std::memory_order_relaxed);
    }
    return hr;
  };
  if (options_.parallel_regions && pool_.size() > 1) {
    hooks.parallel_for = [this](size_t n, const std::function<void(size_t)>& fn) {
      pool_.ParallelFor(n, fn);
    };
  }
  return hooks;
}

core::AggregateAnswer QueryService::RunAggregate(const Request& request) {
  std::atomic<size_t> query_hits{0};
  std::atomic<size_t> query_misses{0};
  const core::ExecHooks hooks = MakeHooks(&query_hits, &query_misses);
  core::AggregateAnswer answer =
      sharded_ != nullptr
          ? core::ExecuteAggregate(*sharded_, request.agg, request.attr,
                                   request.epsilon, request.mode, hooks)
          : core::ExecuteAggregate(*state_, request.agg, request.attr,
                                   request.epsilon, request.mode, hooks);
  answer.stats.hr_cache_hits = query_hits.load(std::memory_order_relaxed);
  answer.stats.hr_cache_misses = query_misses.load(std::memory_order_relaxed);
  return answer;
}

join::ResultRange QueryService::RunCount(const geom::Polygon& poly, double epsilon) {
  return sharded_ != nullptr
             ? core::ExecuteCountInPolygon(*sharded_, poly, epsilon, MakeHooks())
             : core::ExecuteCountInPolygon(*state_, poly, epsilon, MakeHooks());
}

std::vector<uint32_t> QueryService::RunSelect(const geom::Polygon& poly,
                                              double epsilon) {
  return sharded_ != nullptr
             ? core::ExecuteSelectInPolygon(*sharded_, poly, epsilon, MakeHooks())
             : core::ExecuteSelectInPolygon(*state_, poly, epsilon, MakeHooks());
}

Response QueryService::Run(uint64_t ticket, const Request& request) {
  Response response;
  response.ticket = ticket;
  response.kind = request.kind;
  switch (request.kind) {
    case Request::Kind::kAggregate:
      response.aggregate = RunAggregate(request);
      break;
    case Request::Kind::kCountInPolygon:
      response.range = RunCount(request.poly, request.epsilon);
      break;
    case Request::Kind::kSelectInPolygon:
      response.ids = RunSelect(request.poly, request.epsilon);
      break;
  }
  return response;
}

std::future<core::AggregateAnswer> QueryService::Aggregate(join::AggKind agg,
                                                           core::Attr attr,
                                                           double epsilon,
                                                           core::Mode mode) {
  Request request = Request::MakeAggregate(agg, attr, epsilon, mode);
  return pool_.Async(
      [this, request = std::move(request)]() { return RunAggregate(request); });
}

std::future<join::ResultRange> QueryService::CountInPolygon(geom::Polygon poly,
                                                            double epsilon) {
  return pool_.Async([this, poly = std::move(poly), epsilon]() {
    return RunCount(poly, epsilon);
  });
}

std::future<std::vector<uint32_t>> QueryService::SelectInPolygon(geom::Polygon poly,
                                                                 double epsilon) {
  return pool_.Async([this, poly = std::move(poly), epsilon]() {
    return RunSelect(poly, epsilon);
  });
}

uint64_t QueryService::Submit(Request request) {
  std::lock_guard<std::mutex> lock(pending_mu_);
  const uint64_t ticket = next_ticket_++;
  pending_.emplace_back(ticket, pool_.Async([this, ticket,
                                             request = std::move(request)]() {
                          return Run(ticket, request);
                        }));
  return ticket;
}

std::vector<Response> QueryService::Drain() {
  std::vector<std::pair<uint64_t, std::future<Response>>> pending;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending.swap(pending_);
  }
  std::vector<Response> responses;
  responses.reserve(pending.size());
  for (auto& [ticket, future] : pending) {
    (void)ticket;
    responses.push_back(future.get());
  }
  std::sort(responses.begin(), responses.end(),
            [](const Response& a, const Response& b) { return a.ticket < b.ticket; });
  return responses;
}

void QueryService::WarmCache(double epsilon) {
  const core::ExecHooks hooks = MakeHooks();
  const std::vector<geom::Polygon>& polys = state_->regions->polys;
  pool_.ParallelFor(polys.size(), [&](size_t j) {
    hooks.hr_provider(j, polys[j], epsilon);
  });
}

}  // namespace dbsa::service
