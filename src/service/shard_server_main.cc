// shard_server_main — one shard of a socket cluster, as a process.
//
// Builds the deterministic demo dataset (data/cluster_demo.h), shards it
// exactly like the client will (core::ShardedState::Build), keeps ONLY
// its own shard's slice behind a ShardServer, and serves wire-v5 frames
// on the endpoint the placement file assigns it. Every dataset flag must
// match across the cluster and the client — see docs/operations.md for
// the full walkthrough and scripts/run_socket_cluster_smoke.sh for a
// scripted 4-shard cluster.
//
// Alternatively --snapshot=FILE loads an epoch-stamped slice emitted by
// snapshot_write (src/snapshot/) instead of rebuilding: startup skips
// the dataset build entirely and the server pins its serving epoch to
// the file's, rejecting requests pinned to any other epoch with a typed
// kFailedPrecondition partial (docs/snapshot-format.md).
//
//   ./build/shard_server_main --placement=cluster.placement --shard=2
//   ./build/shard_server_main --placement=cluster.placement --shard=2
//       --endpoint=replica         (the same slice, on the failover port)
//   ./build/shard_server_main --placement=cluster.placement --shard=2
//       --snapshot=snap/shard-2.snapshot     (load, don't rebuild)
//
// Stops cleanly on SIGINT/SIGTERM (prints final serve stats).

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/engine_state.h"
#include "core/sharded_state.h"
#include "data/cluster_demo.h"
#include "service/placement.h"
#include "service/shard_server.h"
#include "service/socket_transport.h"
#include "snapshot/snapshot.h"
#include "util/flags.h"

namespace {

using dbsa::util::FlagValue;

std::atomic<bool> g_stop{false};

void OnSignal(int /*signum*/) { g_stop.store(true); }

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s --placement=FILE --shard=N [--endpoint=primary|replica]\n"
      "          [--snapshot=FILE]\n"
      "          [--points=20000] [--regions=24] [--universe=4096]\n"
      "          [--seed=20210111] [--hilbert_level=16] [--cache_budget_mb=8]\n"
      "          [--slow_handle_ms=0]\n"
      "\n"
      "Serves one shard of the demo-city dataset over the wire-v5 socket\n"
      "protocol (kStatsRequest frames answer with the server's metrics).\n"
      "With --snapshot the slice is LOADED from an epoch-stamped snapshot\n"
      "file (snapshot_write emits them) instead of rebuilding the dataset;\n"
      "the server then pins its serving epoch to the file's and rejects\n"
      "requests of other epochs typed. Without it, dataset flags must\n"
      "match on every server and the client.\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dbsa;

  if (!util::KnownFlagsOnly(argc, argv,
                            {"placement", "shard", "endpoint", "snapshot",
                             "points", "regions", "universe", "seed",
                             "hilbert_level", "cache_budget_mb",
                             "slow_handle_ms"})) {
    return Usage(argv[0]);
  }
  std::string placement_path;
  if (!FlagValue(argc, argv, "placement", &placement_path)) return Usage(argv[0]);
  std::string shard_str;
  if (!FlagValue(argc, argv, "shard", &shard_str)) return Usage(argv[0]);
  // Presence checked above; UintFlag re-finds the value and applies the
  // same strict digits-only parsing as every other numeric flag.
  const size_t shard =
      static_cast<size_t>(util::UintFlag(argc, argv, "shard", 0));
  std::string endpoint_role = "primary";
  FlagValue(argc, argv, "endpoint", &endpoint_role);
  if (endpoint_role != "primary" && endpoint_role != "replica") {
    return Usage(argv[0]);
  }

  StatusOr<service::ShardPlacement> placement =
      service::ShardPlacement::Load(placement_path);
  if (!placement.ok()) {
    std::fprintf(stderr, "error: %s\n", placement.status().ToString().c_str());
    return 1;
  }
  if (shard >= placement->num_shards()) {
    std::fprintf(stderr, "error: shard %zu out of range (placement has %zu)\n",
                 shard, placement->num_shards());
    return 1;
  }
  const service::ShardPlacement::Entry& entry = placement->shards[shard];
  if (endpoint_role == "replica" && !entry.has_replica) {
    std::fprintf(stderr, "error: shard %zu has no replica endpoint\n", shard);
    return 1;
  }
  const service::Endpoint endpoint =
      endpoint_role == "replica" ? entry.replica : entry.primary;

  std::string snapshot_path;
  const bool from_snapshot = FlagValue(argc, argv, "snapshot", &snapshot_path);

  std::shared_ptr<const core::EngineState> slice_state;
  std::vector<uint32_t> slice_ids;
  uint64_t serving_epoch = 0;
  if (from_snapshot) {
    // The slice arrives prebuilt and epoch-stamped: no dataset rebuild,
    // no dataset flags to keep in sync across the cluster. The file
    // itself says which shard of which topology it is — mismatches with
    // the placement are refused here, before a single frame is served.
    StatusOr<snapshot::SnapshotReader> reader =
        snapshot::SnapshotReader::Load(snapshot_path);
    if (!reader.ok()) {
      std::fprintf(stderr, "error: %s\n", reader.status().ToString().c_str());
      return 1;
    }
    if (reader->meta().shard_index != static_cast<int32_t>(shard)) {
      std::fprintf(stderr,
                   "error: %s is the slice for shard %d, not shard %zu\n",
                   snapshot_path.c_str(), reader->meta().shard_index, shard);
      return 1;
    }
    if (reader->meta().num_shards != placement->num_shards()) {
      std::fprintf(stderr,
                   "error: %s was cut for %u shards, placement has %zu\n",
                   snapshot_path.c_str(), reader->meta().num_shards,
                   placement->num_shards());
      return 1;
    }
    StatusOr<std::shared_ptr<const core::EngineState>> state =
        reader->AssembleEngineState();
    if (!state.ok()) {
      std::fprintf(stderr, "error: %s\n", state.status().ToString().c_str());
      return 1;
    }
    StatusOr<std::vector<uint32_t>> ids = reader->DecodeShardIds();
    if (!ids.ok()) {
      std::fprintf(stderr, "error: %s\n", ids.status().ToString().c_str());
      return 1;
    }
    slice_state = *std::move(state);
    slice_ids = *std::move(ids);
    serving_epoch = reader->meta().epoch;
    std::printf("shard %zu (%s): loaded %s (epoch %llu, %zu points)\n", shard,
                endpoint_role.c_str(), snapshot_path.c_str(),
                static_cast<unsigned long long>(serving_epoch),
                slice_ids.size());
    std::fflush(stdout);
  } else {
    const data::ClusterDemoConfig dataset =
        data::ClusterDemoConfigFromFlags(argc, argv);
    if (dataset.num_points < placement->num_shards()) {
      // ShardedState::Build clamps the shard count to the point count, so
      // this placement could never be served consistently.
      std::fprintf(
          stderr,
          "error: --points=%zu is fewer than the placement's %zu shards\n",
          dataset.num_points, placement->num_shards());
      return 1;
    }

    std::printf("shard %zu (%s): building demo city (%zu points, %zu regions, "
                "universe %.0f, seed %llu)...\n",
                shard, endpoint_role.c_str(), dataset.num_points,
                dataset.num_regions, dataset.universe_side,
                static_cast<unsigned long long>(dataset.seed));
    std::fflush(stdout);

    // Build in an inner scope and keep ONLY this process's slice (the
    // other K-1 are never materialized — only_slice below); the base
    // snapshot frees before the serve loop starts, so a server's resident
    // set is ~one shard regardless of cluster size.
    const auto base = core::BuildEngineState(data::ClusterDemoPoints(dataset),
                                             data::ClusterDemoRegions(dataset));
    core::ShardingOptions sharding;
    sharding.num_shards = placement->num_shards();
    sharding.hilbert_level = dataset.hilbert_level;
    // Only this process's slice gets materialized (same cuts, same
    // routing metadata): startup stays O(1) in cluster size instead of
    // every server copying and indexing all K slices to keep one.
    sharding.only_slice = static_cast<int>(shard);
    const auto sharded = core::ShardedState::Build(base, sharding);
    slice_state = sharded->shard(shard).state;
    slice_ids = sharded->shard(shard).global_ids;
  }

  service::ShardServer::Options server_options;
  server_options.serving_epoch = serving_epoch;
  server_options.cell_cache_budget_bytes =
      static_cast<size_t>(util::UintFlag(argc, argv, "cache_budget_mb", 8)) << 20;
  // One registry for the whole process: the server's shard metrics and
  // the listener's scrape endpoint share it, so one kStatsRequest frame
  // returns everything this process measures.
  server_options.registry = std::make_shared<telemetry::MetricRegistry>();
  server_options.shard_index = shard;
  server_options.slow_handle_ms = static_cast<double>(
      util::UintFlag(argc, argv, "slow_handle_ms", 0));
  service::ShardServer server(std::move(slice_state), std::move(slice_ids),
                              server_options);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);

  service::ShardListener::Options listen_options;
  listen_options.host = endpoint.host;
  listen_options.port = endpoint.port;
  listen_options.registry = server.registry();
  try {
    const service::ShardListener::Stats stats = service::ServeShard(
        [&server](const std::string& request) { return server.Handle(request); },
        listen_options, g_stop, [&](const service::Endpoint& bound) {
          std::printf("shard %zu (%s): listening on %s (%zu points)\n", shard,
                      endpoint_role.c_str(), bound.ToString().c_str(),
                      server.num_points());
          std::fflush(stdout);
        });
    std::printf("shard %zu (%s): stopped after %llu frames "
                "(%llu connections, %llu bad frames)\n",
                shard, endpoint_role.c_str(),
                static_cast<unsigned long long>(stats.frames),
                static_cast<unsigned long long>(stats.accepted),
                static_cast<unsigned long long>(stats.bad_frames));
  } catch (const dbsa::StatusException& e) {
    std::fprintf(stderr, "error: %s\n", e.status().ToString().c_str());
    return 1;
  }
  return 0;
}
