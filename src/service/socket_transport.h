// The real RPC leg of the shard seam: the wire-v4 frames of
// service/transport.h (normative byte spec: docs/wire-format.md) carried
// over TCP sockets instead of in-process function calls.
//
// Both halves live here because they share the framing and socket code:
//
//   SocketTransport  the client — an asynchronous multiplexed Transport.
//                    Each shard gets ONE persistent connection per
//                    endpoint driven by a per-shard demux thread: Send
//                    stamps a unique correlation id into the frame,
//                    enqueues it, and returns; the demux loop writes
//                    pending requests, reads replies (which may arrive
//                    in ANY order), pairs each reply with its request by
//                    correlation id, and fires the completion callback.
//                    Many requests ride one connection concurrently —
//                    K shards × Q queries no longer pin K×Q blocked
//                    threads, just K demux threads.
//
//                    Failure policy per request: a connection that dies
//                    redials the same endpoint with exponential backoff
//                    and resends (requests are idempotent — see below);
//                    an endpoint whose fresh dials are exhausted fails
//                    over ONCE to the shard's other endpoint; a request
//                    with no reply after the hedge budget fires a
//                    DUPLICATE to the untried endpoint and the first
//                    reply wins (tail-latency hedging — the stall case
//                    of PR 5's connect-time hedge, generalized). The
//                    per-request deadline maps to a typed
//                    kDeadlineExceeded; exhausting every endpoint maps
//                    to kUnavailable — a request never hangs forever
//                    (with a finite timeout) and never completes with
//                    garbage bytes as a frame. Name resolution is cached
//                    per endpoint after the first dial, so redial storms
//                    and steady-state reconnects never re-enter
//                    getaddrinfo (the one blocking call a deadline
//                    cannot interrupt); the cache drops on total dial
//                    failure so a moved host is re-resolved.
//
//   ShardListener    the server — a blocking accept loop (one thread per
//                    connection) that reassembles length-prefixed frames
//                    from the byte stream and dispatches each to a small
//                    worker pool; responses are written back under a
//                    per-connection write lock IN COMPLETION ORDER, each
//                    carrying the correlation id of the request it
//                    answers (out-of-order replies are the point of the
//                    multiplexed wire). The listener is total over
//                    hostile input: a frame whose length prefix is out
//                    of range drops the connection; garbage INSIDE a
//                    well-framed payload is the handler's problem
//                    (ShardServer answers a typed error partial) — the
//                    listener itself never crashes and never stops
//                    accepting.
//
//   ServeShard       the library-level blocking server entry point
//                    (shard_server_main.cc wraps it in a process; tests
//                    spawn it — or ShardListener directly — on threads).
//
// Retry semantics: every ScatterRequest is read-only or idempotent
// (queries touch nothing; warms overwrite the same cache slot), so the
// client may safely resend — or hedge-duplicate — a request whose reply
// has not landed; the reconnect, failover and hedging paths below rely
// on this. Non-idempotent message kinds must not be added to the wire
// without revisiting the demux engine's resend policy.
//
// Everything here is localhost-tested and deployment-shaped; remote
// placement (hosts beyond 127.0.0.1) goes through the same code path —
// see docs/operations.md for running a cluster.

#ifndef DBSA_SERVICE_SOCKET_TRANSPORT_H_
#define DBSA_SERVICE_SOCKET_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "service/placement.h"
#include "service/transport.h"
#include "telemetry/metrics.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace dbsa::service {

/// A point on the monotonic clock after which socket operations give up
/// with kDeadlineExceeded. `Infinite()` never expires.
struct Deadline {
  std::chrono::steady_clock::time_point at =
      std::chrono::steady_clock::time_point::max();

  static Deadline Infinite() { return Deadline{}; }
  static Deadline After(int ms) {
    if (ms <= 0) return Infinite();
    return Deadline{std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(ms)};
  }

  bool infinite() const {
    return at == std::chrono::steady_clock::time_point::max();
  }
  bool expired() const {
    return !infinite() && std::chrono::steady_clock::now() >= at;
  }
  /// Milliseconds left, clamped to >= 0; -1 when infinite (poll() idiom).
  int RemainingMs() const;
};

// ---- low-level socket helpers (shared by client and server) ----------
// All fds are non-blocking with CLOEXEC; progress waits go through
// poll() bounded by the deadline, so a peer that stalls mid-frame maps
// to kDeadlineExceeded and a peer that vanishes maps to kUnavailable.

/// Dials `endpoint` (name resolution included). kUnavailable on refusal
/// or resolution failure, kDeadlineExceeded on connect timeout.
StatusOr<int> DialTcp(const Endpoint& endpoint, const Deadline& deadline);

/// Writes all of `data`. kUnavailable on EPIPE/ECONNRESET (SIGPIPE is
/// suppressed), kDeadlineExceeded on timeout.
Status SendAll(int fd, const char* data, size_t n, const Deadline& deadline);

/// Reads one complete length-prefixed frame ([u32 len][len bytes]) and
/// returns it INCLUDING the prefix (transport.h decoders take the full
/// frame). A length prefix outside [4, max_frame_bytes] is rejected with
/// kInvalidArgument without reading further — the stream is then
/// unsynchronized and the caller must drop the connection. When
/// `first_byte_deadline` is set, only the wait for the frame's FIRST
/// byte is bounded by it; the rest of the frame runs under `deadline`.
StatusOr<std::string> ReadFrame(int fd, size_t max_frame_bytes,
                                const Deadline& deadline,
                                const Deadline* first_byte_deadline = nullptr);

// ------------------------------------------------------------- client

/// Asynchronous multiplexed transport over per-shard TCP connections,
/// per the constructor's ShardPlacement. Thread-safe: Send may be called
/// from any thread; completions fire on the shard's demux thread.
class SocketTransport : public Transport {
 public:
  struct Options {
    /// Budget for establishing one TCP connection (also bounded by the
    /// pending requests' deadlines, whichever is sooner).
    int connect_timeout_ms = 2000;
    /// Budget for one request end to end: every dial, send, recv,
    /// reconnect, hedge and failover on its behalf shares this deadline.
    /// <= 0 means no timeout (tests only — production callers should
    /// always bound).
    int roundtrip_timeout_ms = 10000;
    /// Base reconnect backoff; doubles per consecutive failed dial to
    /// the same endpoint (25, 50, 100, ... ms, saturating at 10 s).
    int reconnect_backoff_ms = 25;
    /// Tail-latency hedge: a request with no reply after this budget
    /// whose shard has an untried second endpoint sends a DUPLICATE
    /// there; the first reply wins and the loser is dropped by
    /// correlation id. Fires on any cause of tail latency — wedged peer,
    /// dead connection, genuinely slow server — not just connect
    /// failure. < 0 = half of roundtrip_timeout_ms (default); 0 disables
    /// (a wedged first endpoint may then consume the whole deadline).
    /// Tradeoff inherent to hedging: a healthy endpoint whose query
    /// legitimately computes longer than the hedge does the work twice —
    /// size it above the workload's worst-case server latency.
    int hedge_timeout_ms = -1;
    /// Fresh dial attempts per endpoint per request (>= 1). Discovering
    /// that the established connection died costs no attempt; only
    /// dials made while this request waits are charged to it.
    int max_dial_attempts = 2;
    /// Frames larger than this are rejected (stream desync guard).
    size_t max_frame_bytes = size_t{64} << 20;
    /// Cap on requests in flight per connection; further requests queue
    /// client-side. 0 = unlimited (multiplex freely). 1 reproduces the
    /// retired one-blocking-call-per-message discipline — the bench's
    /// baseline arm.
    size_t max_inflight_per_connection = 0;
    /// Optimizer cost units per message (QueryProfile::transport_overhead)
    /// — see kDefaultCostPerMessage.
    double cost_per_message = kDefaultCostPerMessage;
    /// Registry the transport's dbsa_socket_* metrics live in (shared
    /// with the owning QueryService so one scrape covers the whole
    /// client); null gets a private one.
    std::shared_ptr<telemetry::MetricRegistry> registry;
    /// Fired (from the shard's demux thread, outside every transport
    /// lock) when the shard's PREFERRED endpoint changes — a reply
    /// arrived from a different endpoint than the one serving until now,
    /// i.e. a failover (or failback). The newly preferred endpoint may
    /// have a cold cache: QueryService wires its post-failover replica
    /// rewarm here (ServiceOptions::rewarm_on_failover). Must not call
    /// back into the transport synchronously with work that blocks on
    /// THIS shard's replies (it runs on the demux thread) — enqueue
    /// instead.
    std::function<void(size_t shard)> on_failover;
  };

  /// A real network roundtrip in optimizer cost units (one simple memory
  /// op = 1): ~64x the loopback seam's serialization-only figure, so the
  /// planner weighs shard fan-out against genuine per-message latency.
  /// Honest by construction rather than measurement — operators can
  /// calibrate Options::cost_per_message from bench_service_throughput.
  static constexpr double kDefaultCostPerMessage = 4096.0;

  SocketTransport(ShardPlacement placement, const Options& options);
  explicit SocketTransport(ShardPlacement placement);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  size_t num_shards() const override { return placement_.num_shards(); }
  /// Completes with: kDeadlineExceeded when the request deadline
  /// expires, kUnavailable when every endpoint of the shard is
  /// exhausted (or the transport is destroyed), kInvalidArgument for a
  /// malformed response stream.
  uint64_t Send(size_t shard, std::string request, Done done) override;
  double CostPerMessage() const override { return options_.cost_per_message; }

  const ShardPlacement& placement() const { return placement_; }
  const Options& options() const { return options_; }

  struct Stats {
    uint64_t messages = 0;        ///< Successfully completed requests.
    uint64_t request_bytes = 0;   ///< Of successful requests.
    uint64_t response_bytes = 0;
    uint64_t dials = 0;           ///< TCP connections established.
    uint64_t reconnects = 0;      ///< Dials replacing a previous connection.
    uint64_t failovers = 0;       ///< Requests served by a replica.
    uint64_t timeouts = 0;        ///< Requests that died on the deadline.
    uint64_t transport_errors = 0;///< Requests that exhausted all endpoints.
    uint64_t hedges = 0;          ///< Duplicate sends fired on hedge expiry.
    uint64_t hedge_wins = 0;      ///< Requests won by the hedged duplicate.
    uint64_t resolves = 0;        ///< getaddrinfo calls (cache misses).
  };
  /// Thin read of the registry counters.
  Stats stats() const;

  /// The registry the transport records into (private if Options carried
  /// none).
  const std::shared_ptr<telemetry::MetricRegistry>& registry() const {
    return registry_;
  }

  /// Drops every established connection that has no request in flight
  /// (the next Send redials). Lets tests and operators force
  /// reconnection; never affects in-flight requests.
  void CloseIdleConnections();

 private:
  /// Endpoint index within a shard's placement entry.
  enum : int { kPrimary = 0, kReplica = 1 };

  /// One pending request, owned by the shard's demux loop.
  struct Op {
    uint64_t corr = 0;
    std::string request;
    Done done;
    Deadline deadline;
    Deadline hedge_at;  ///< Infinite when hedging is off for this op.
    std::chrono::steady_clock::time_point start;
    bool inflight[2] = {false, false};  ///< Copy outstanding per endpoint.
    int dials[2] = {0, 0};              ///< Fresh dials charged per endpoint.
    bool hedged = false;                ///< Hedge already fired (once).
    int first_endpoint = -1;            ///< Endpoint of the first send.
    int where = kPrimary;               ///< Endpoint currently responsible.
  };

  /// One endpoint's connection state, owned by the demux loop.
  struct Conn {
    int fd = -1;
    std::string inbuf;
    std::string outbuf;
    size_t inflight = 0;  ///< Ops with a copy outstanding here.
    bool ever_connected = false;
    int dial_failures = 0;  ///< Consecutive, drives backoff.
    Deadline backoff_until = Deadline{std::chrono::steady_clock::time_point::min()};
    Status last_error = Status::OK();  ///< For endpoint-exhaustion messages.
  };

  /// Per-shard demux engine: Send enqueues under `mu` and pokes the wake
  /// pipe; everything below the lock comment is loop-thread-owned (the
  /// analysis has no capability for thread confinement, so those fields
  /// stay unannotated — MuxLoop is their only reader and writer).
  struct Mux {
    dbsa::Mutex mu;
    std::deque<Op> submitted DBSA_GUARDED_BY(mu);
    bool stop DBSA_GUARDED_BY(mu) = false;
    bool close_idle DBSA_GUARDED_BY(mu) = false;
    bool thread_started DBSA_GUARDED_BY(mu) = false;
    std::thread thread;
    int wake_fd[2] = {-1, -1};
    // ---- demux-loop-owned state (no lock) ----
    std::unordered_map<uint64_t, Op> ops;
    std::deque<uint64_t> queue[2];  ///< Per-endpoint, awaiting send.
    Conn conns[2];
    int preferred = kPrimary;
  };

  const Endpoint& EndpointOf(size_t shard, int which) const;
  bool HasEndpoint(size_t shard, int which) const;
  /// Dials with the per-endpoint resolver cache (satellite of the async
  /// work: steady-state redials never re-enter getaddrinfo).
  StatusOr<int> DialCached(const Endpoint& endpoint, const Deadline& deadline);
  void MuxLoop(size_t shard);
  void EnsureThread(size_t shard);

  ShardPlacement placement_;
  Options options_;
  std::vector<std::unique_ptr<Mux>> muxes_;
  std::atomic<uint64_t> next_correlation_{1};

  dbsa::Mutex resolve_mu_;
  struct ResolvedAddrs;
  std::unordered_map<std::string, std::shared_ptr<ResolvedAddrs>> resolve_cache_
      DBSA_GUARDED_BY(resolve_mu_);

  std::shared_ptr<telemetry::MetricRegistry> registry_;
  telemetry::Counter* messages_;
  telemetry::Counter* request_bytes_;
  telemetry::Counter* response_bytes_;
  telemetry::Counter* dials_;
  telemetry::Counter* reconnects_;
  telemetry::Counter* failovers_;
  telemetry::Counter* timeouts_;
  telemetry::Counter* transport_errors_;
  telemetry::Counter* hedges_;
  telemetry::Counter* hedge_wins_;
  telemetry::Counter* resolves_;
  /// Per shard: dbsa_socket_roundtrip_ms{shard="N"} — wall clock of each
  /// successful request, the client-observed network+server latency.
  std::vector<telemetry::Histogram*> roundtrip_ms_;
};

// ------------------------------------------------------------- server

/// Serves `handler` over TCP: accepts connections on host:port,
/// reassembles frames (one OS thread per live connection — shard fan-in
/// is a handful of routers, not a public web tier) and dispatches each
/// request to a small shared worker pool. Responses are written in
/// COMPLETION order, each echoing its request's correlation id, so a
/// multiplexing client is never head-of-line blocked behind a slow
/// request. Destruction stops and joins everything.
class ShardListener {
 public:
  /// Maps one full request frame to one full response frame (both
  /// include the length prefix). Returning an EMPTY string drops the
  /// connection without answering — the fault-injection hook the
  /// socket tests use to simulate a mid-query connection kill.
  using Handler = std::function<std::string(const std::string&)>;

  struct Options {
    std::string host = "127.0.0.1";
    /// 0 = ephemeral: the OS picks, port() reports the real one.
    uint16_t port = 0;
    int backlog = 64;
    size_t max_frame_bytes = size_t{64} << 20;
    /// Budget for writing one response back to the client. A client
    /// that stops draining its socket would otherwise pin a worker (and
    /// the response buffer) in an unbounded send — the connection is
    /// dropped instead. <= 0 means no timeout.
    int write_timeout_ms = 30000;
    /// Cap on simultaneously served connections (thread-per-connection:
    /// this bounds the thread count). Connections accepted past the cap
    /// are closed immediately; the listener keeps serving the rest.
    size_t max_connections = 256;
    /// Worker threads running `handler` (shared across connections).
    /// This is the server-side concurrency of one listener: multiplexed
    /// requests on one connection execute on up to this many cores, and
    /// replies overtake slower requests (out-of-order completion).
    size_t handler_threads = 4;
    /// When non-null, the listener answers kStatsRequest frames itself
    /// with a kStatsReply carrying this registry's RenderText() — the
    /// wire-level scrape endpoint (scripts/scrape_cluster_stats.sh).
    /// Null: stats frames fall through to `handler` like any other type
    /// (ShardServer answers a typed kError partial). Served inline on
    /// the connection thread, never queued behind query handling.
    std::shared_ptr<telemetry::MetricRegistry> registry;
  };

  /// Binds and starts accepting immediately; throws StatusException
  /// (kUnavailable) if the address cannot be bound.
  ShardListener(Handler handler, const Options& options);
  explicit ShardListener(Handler handler);
  ~ShardListener();

  ShardListener(const ShardListener&) = delete;
  ShardListener& operator=(const ShardListener&) = delete;

  uint16_t port() const { return port_; }
  Endpoint endpoint() const { return Endpoint{options_.host, port_}; }

  /// Stops accepting, severs every live connection and joins all
  /// threads (the worker pool included). Idempotent; the destructor
  /// calls it.
  void Stop();

  /// Fault injection / connection management: shuts down every LIVE
  /// connection (in-flight reads see EOF) but keeps accepting new ones.
  void CloseConnections();

  struct Stats {
    uint64_t accepted = 0;
    uint64_t frames = 0;      ///< Well-framed requests dispatched.
    uint64_t bad_frames = 0;  ///< Length-prefix violations (conn dropped).
    uint64_t dropped = 0;     ///< Connections dropped by the handler hook.
  };
  Stats stats() const;

 private:
  /// Shared connection state: workers write responses under `write_mu`
  /// while the connection thread keeps reading. The fd is closed by the
  /// LAST owner (worker or connection thread) via the destructor, so a
  /// queued response can never write into a recycled fd number.
  struct Conn {
    explicit Conn(int fd) : fd(fd) {}
    ~Conn();
    const int fd;
    dbsa::Mutex write_mu;  ///< Serializes whole response frames onto fd.
    std::atomic<bool> open{true};
  };
  struct Work {
    std::shared_ptr<Conn> conn;
    std::string frame;
  };

  void AcceptLoop();
  void ConnectionLoop(std::shared_ptr<Conn> conn);
  void WorkerLoop();
  void RegisterConn(int fd);
  void UnregisterConn(int fd);

  Handler handler_;
  Options options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  dbsa::Mutex stop_mu_;  ///< Serializes concurrent Stop() calls (join is not).
  std::thread accept_thread_;

  dbsa::Mutex conns_mu_;
  dbsa::CondVar conns_cv_;  ///< Signals: a connection thread retired.
  std::unordered_set<int> live_fds_ DBSA_GUARDED_BY(conns_mu_);
  size_t live_threads_ DBSA_GUARDED_BY(conns_mu_) = 0;

  /// Handler dispatch queue (bounded: a flooding client blocks its
  /// connection thread, not the process).
  dbsa::Mutex work_mu_;
  dbsa::CondVar work_cv_;   ///< Workers wait here.
  dbsa::CondVar space_cv_;  ///< Connection threads wait here.
  std::deque<Work> work_ DBSA_GUARDED_BY(work_mu_);
  bool workers_stop_ DBSA_GUARDED_BY(work_mu_) = false;
  std::vector<std::thread> workers_;
  static constexpr size_t kMaxQueuedWork = 1024;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> frames_{0};
  std::atomic<uint64_t> bad_frames_{0};
  std::atomic<uint64_t> dropped_{0};
};

/// Blocking server entry point: serves `handler` on `options` until
/// `*stop` becomes true (polled ~10 Hz). `on_listening`, when non-null,
/// receives the bound endpoint once the socket is accepting (the
/// "listening on ..." line of shard_server_main, a port-handoff for
/// tests). Returns the final stats. Throws StatusException if the
/// address cannot be bound.
ShardListener::Stats ServeShard(
    ShardListener::Handler handler, const ShardListener::Options& options,
    const std::atomic<bool>& stop,
    const std::function<void(const Endpoint&)>& on_listening = nullptr);

}  // namespace dbsa::service

#endif  // DBSA_SERVICE_SOCKET_TRANSPORT_H_
