// The real RPC leg of the shard seam: the wire-v3 frames of
// service/transport.h (normative byte spec: docs/wire-format.md) carried
// over TCP sockets instead of in-process function calls.
//
// Both halves live here because they share the framing and socket code:
//
//   SocketTransport  the client — a Transport whose Roundtrip writes one
//                    framed ScatterRequest to the shard's endpoint
//                    (service/placement.h) and blocks for the framed
//                    GatherPartial. Connections are lazy, persistent and
//                    pooled per shard; a broken connection reconnects
//                    with exponential backoff, and when a shard's
//                    primary endpoint stays down the call fails over
//                    ONCE to the shard's replica (single-hop failover).
//                    The whole roundtrip runs under one deadline; when
//                    the shard has an untried second endpoint, the first
//                    hop's connect and first-response-byte waits are
//                    capped at half the budget so a wedged-but-accepting
//                    peer cannot starve a healthy replica (a response
//                    that has started flowing keeps the full deadline).
//                    Timing out raises a typed kDeadlineExceeded,
//                    exhausting every endpoint raises kUnavailable — a
//                    Roundtrip
//                    never hangs forever (with a finite timeout) and
//                    never returns garbage bytes as a frame. One caveat:
//                    name resolution (getaddrinfo) is a blocking call
//                    the deadline cannot interrupt — numeric addresses
//                    (the localhost walkthrough) never block, but a
//                    placement naming a host behind a dead resolver can
//                    stall a dial for the resolver's own timeout. A
//                    deadline-bounded resolver rides with the async
//                    transport work (see ROADMAP "Async / pipelined
//                    transport").
//
//   ShardListener    the server — a blocking accept loop (one thread per
//                    connection) that reassembles length-prefixed frames
//                    from the byte stream and answers each with
//                    handler(frame) (ShardServer::Handle in production).
//                    The listener is total over hostile input: a frame
//                    whose length prefix is out of range drops the
//                    connection; garbage INSIDE a well-framed payload is
//                    the handler's problem (ShardServer answers a typed
//                    error partial) — the listener itself never crashes
//                    and never stops accepting.
//
//   ServeShard       the library-level blocking server entry point
//                    (shard_server_main.cc wraps it in a process; tests
//                    spawn it — or ShardListener directly — on threads).
//
// Retry semantics: every ScatterRequest is read-only or idempotent
// (queries touch nothing; warms overwrite the same cache slot), so the
// client may safely resend a request whose connection died after the
// bytes left — the reconnect and failover paths below rely on this.
// Non-idempotent message kinds must not be added to the wire without
// revisiting SocketTransport::Roundtrip.
//
// Everything here is localhost-tested and deployment-shaped; remote
// placement (hosts beyond 127.0.0.1) goes through the same code path —
// see docs/operations.md for running a cluster.

#ifndef DBSA_SERVICE_SOCKET_TRANSPORT_H_
#define DBSA_SERVICE_SOCKET_TRANSPORT_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "service/placement.h"
#include "service/transport.h"
#include "telemetry/metrics.h"
#include "util/status.h"

namespace dbsa::service {

/// A point on the monotonic clock after which socket operations give up
/// with kDeadlineExceeded. `Infinite()` never expires.
struct Deadline {
  std::chrono::steady_clock::time_point at =
      std::chrono::steady_clock::time_point::max();

  static Deadline Infinite() { return Deadline{}; }
  static Deadline After(int ms) {
    if (ms <= 0) return Infinite();
    return Deadline{std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(ms)};
  }

  bool infinite() const {
    return at == std::chrono::steady_clock::time_point::max();
  }
  bool expired() const {
    return !infinite() && std::chrono::steady_clock::now() >= at;
  }
  /// Milliseconds left, clamped to >= 0; -1 when infinite (poll() idiom).
  int RemainingMs() const;
};

// ---- low-level socket helpers (shared by client and server) ----------
// All fds are non-blocking with CLOEXEC; progress waits go through
// poll() bounded by the deadline, so a peer that stalls mid-frame maps
// to kDeadlineExceeded and a peer that vanishes maps to kUnavailable.

/// Dials `endpoint` (name resolution included). kUnavailable on refusal
/// or resolution failure, kDeadlineExceeded on connect timeout.
StatusOr<int> DialTcp(const Endpoint& endpoint, const Deadline& deadline);

/// Writes all of `data`. kUnavailable on EPIPE/ECONNRESET (SIGPIPE is
/// suppressed), kDeadlineExceeded on timeout.
Status SendAll(int fd, const char* data, size_t n, const Deadline& deadline);

/// Reads one complete length-prefixed frame ([u32 len][len bytes]) and
/// returns it INCLUDING the prefix (transport.h decoders take the full
/// frame). A length prefix outside [4, max_frame_bytes] is rejected with
/// kInvalidArgument without reading further — the stream is then
/// unsynchronized and the caller must drop the connection. When
/// `first_byte_deadline` is set, only the wait for the frame's FIRST
/// byte is bounded by it (failover hedging); the rest of the frame runs
/// under `deadline`.
StatusOr<std::string> ReadFrame(int fd, size_t max_frame_bytes,
                                const Deadline& deadline,
                                const Deadline* first_byte_deadline = nullptr);

// ------------------------------------------------------------- client

/// Transport over per-shard TCP connections, per the constructor's
/// ShardPlacement. Thread-safe: concurrent Roundtrips to the same shard
/// each check a connection out of the shard's idle pool (or dial a new
/// one) — they never share a socket mid-flight.
class SocketTransport : public Transport {
 public:
  struct Options {
    /// Budget for establishing one TCP connection (also bounded by the
    /// roundtrip deadline, whichever is sooner).
    int connect_timeout_ms = 2000;
    /// Budget for one Roundtrip call end to end: every dial, send, recv,
    /// reconnect and failover inside it shares this deadline. <= 0 means
    /// no timeout (tests only — production callers should always bound).
    int roundtrip_timeout_ms = 10000;
    /// Base reconnect backoff; doubles per fresh dial to the same
    /// endpoint within one Roundtrip (25, 50, 100, ... ms).
    int reconnect_backoff_ms = 25;
    /// Failover hedge: when the shard has an untried second endpoint,
    /// the first hop's connect/send/first-response-byte waits are capped
    /// at this budget so a wedged-but-accepting peer cannot starve a
    /// healthy replica. < 0 = half of roundtrip_timeout_ms (default);
    /// 0 disables hedging (a wedged first endpoint may then consume the
    /// whole deadline). Tradeoff inherent to hedging: a healthy endpoint
    /// whose query legitimately computes longer than the hedge is
    /// abandoned and the work repeats on the replica — size it above the
    /// workload's worst-case server latency.
    int hedge_timeout_ms = -1;
    /// Fresh dial attempts per endpoint per Roundtrip (>= 1). A reused
    /// idle connection that turns out dead does not count: finding out a
    /// pooled socket is stale costs no dial.
    int max_dial_attempts = 2;
    /// Frames larger than this are rejected (stream desync guard).
    size_t max_frame_bytes = size_t{64} << 20;
    /// Idle connections kept per shard beyond which sockets are closed
    /// after use instead of pooled.
    size_t max_idle_connections_per_shard = 8;
    /// Optimizer cost units per message (QueryProfile::transport_overhead)
    /// — see kDefaultCostPerMessage.
    double cost_per_message = kDefaultCostPerMessage;
    /// Registry the transport's dbsa_socket_* metrics live in (shared
    /// with the owning QueryService so one scrape covers the whole
    /// client); null gets a private one.
    std::shared_ptr<telemetry::MetricRegistry> registry;
  };

  /// A real network roundtrip in optimizer cost units (one simple memory
  /// op = 1): ~64x the loopback seam's serialization-only figure, so the
  /// planner weighs shard fan-out against genuine per-message latency.
  /// Honest by construction rather than measurement — operators can
  /// calibrate Options::cost_per_message from bench_service_throughput.
  static constexpr double kDefaultCostPerMessage = 4096.0;

  SocketTransport(ShardPlacement placement, const Options& options);
  explicit SocketTransport(ShardPlacement placement);
  ~SocketTransport() override;

  SocketTransport(const SocketTransport&) = delete;
  SocketTransport& operator=(const SocketTransport&) = delete;

  size_t num_shards() const override { return placement_.num_shards(); }
  /// Throws StatusException: kDeadlineExceeded when the roundtrip
  /// deadline expires, kUnavailable when every endpoint of the shard is
  /// exhausted, kInvalidArgument for a malformed response frame.
  std::string Roundtrip(size_t shard, const std::string& request) override;
  double CostPerMessage() const override { return options_.cost_per_message; }

  const ShardPlacement& placement() const { return placement_; }
  const Options& options() const { return options_; }

  struct Stats {
    uint64_t messages = 0;        ///< Successful roundtrips.
    uint64_t request_bytes = 0;   ///< Of successful roundtrips.
    uint64_t response_bytes = 0;
    uint64_t dials = 0;           ///< TCP connections established.
    uint64_t reconnects = 0;      ///< Dials after a dead pooled/primary conn.
    uint64_t failovers = 0;       ///< Roundtrips served by a replica.
    uint64_t timeouts = 0;        ///< Roundtrips that died on the deadline.
    uint64_t transport_errors = 0;///< Roundtrips that exhausted all endpoints.
  };
  /// Thin read of the registry counters.
  Stats stats() const;

  /// The registry the transport records into (private if Options carried
  /// none).
  const std::shared_ptr<telemetry::MetricRegistry>& registry() const {
    return registry_;
  }

  /// Drops every pooled idle connection (the next Roundtrip redials).
  /// Lets tests and operators force reconnection; never affects
  /// in-flight roundtrips, which own their sockets.
  void CloseIdleConnections();

 private:
  /// Endpoint index within a shard's placement entry.
  enum : int { kPrimary = 0, kReplica = 1 };

  struct PooledConn {
    int fd = -1;
    int endpoint = kPrimary;
  };
  struct ShardConns {
    std::mutex mu;
    std::vector<PooledConn> idle;
    /// Endpoint that last completed a roundtrip — tried first, so a
    /// failed-over shard does not re-pay the dead primary's connect
    /// timeout on every call.
    int preferred = kPrimary;
  };

  const Endpoint& EndpointOf(size_t shard, int which) const;
  bool HasEndpoint(size_t shard, int which) const;
  /// Pops an idle connection to (shard, endpoint); fd -1 if none.
  int PopIdle(size_t shard, int endpoint);
  void PushIdle(size_t shard, int endpoint, int fd);
  /// One request/response exchange on an open connection. The optional
  /// first_byte_deadline caps only the wait for the first response byte
  /// (failover hedging, see Roundtrip).
  Status Exchange(int fd, const std::string& request, std::string* response,
                  const Deadline& deadline,
                  const Deadline* first_byte_deadline = nullptr);

  ShardPlacement placement_;
  Options options_;
  std::vector<std::unique_ptr<ShardConns>> conns_;

  std::shared_ptr<telemetry::MetricRegistry> registry_;
  telemetry::Counter* messages_;
  telemetry::Counter* request_bytes_;
  telemetry::Counter* response_bytes_;
  telemetry::Counter* dials_;
  telemetry::Counter* reconnects_;
  telemetry::Counter* failovers_;
  telemetry::Counter* timeouts_;
  telemetry::Counter* transport_errors_;
  /// Per shard: dbsa_socket_roundtrip_ms{shard="N"} — wall clock of each
  /// successful Roundtrip, the client-observed network+server latency.
  std::vector<telemetry::Histogram*> roundtrip_ms_;
};

// ------------------------------------------------------------- server

/// Serves `handler` over TCP: accepts connections on host:port and
/// answers each well-framed request with handler(frame). One OS thread
/// per live connection (shard fan-in is a handful of routers, not a
/// public web tier). Destruction stops and joins everything.
class ShardListener {
 public:
  /// Maps one full request frame to one full response frame (both
  /// include the length prefix). Returning an EMPTY string drops the
  /// connection without answering — the fault-injection hook the
  /// socket tests use to simulate a mid-query connection kill.
  using Handler = std::function<std::string(const std::string&)>;

  struct Options {
    std::string host = "127.0.0.1";
    /// 0 = ephemeral: the OS picks, port() reports the real one.
    uint16_t port = 0;
    int backlog = 64;
    size_t max_frame_bytes = size_t{64} << 20;
    /// Budget for writing one response back to the client. A client
    /// that stops draining its socket would otherwise pin this
    /// connection's thread (and the response buffer) in an unbounded
    /// send — the connection is dropped instead. <= 0 means no timeout.
    int write_timeout_ms = 30000;
    /// Cap on simultaneously served connections (thread-per-connection:
    /// this bounds the thread count). Connections accepted past the cap
    /// are closed immediately; the listener keeps serving the rest.
    size_t max_connections = 256;
    /// When non-null, the listener answers kStatsRequest frames itself
    /// with a kStatsReply carrying this registry's RenderText() — the
    /// wire-level scrape endpoint (scripts/scrape_cluster_stats.sh).
    /// Null: stats frames fall through to `handler` like any other type
    /// (ShardServer answers a typed kError partial).
    std::shared_ptr<telemetry::MetricRegistry> registry;
  };

  /// Binds and starts accepting immediately; throws StatusException
  /// (kUnavailable) if the address cannot be bound.
  ShardListener(Handler handler, const Options& options);
  explicit ShardListener(Handler handler);
  ~ShardListener();

  ShardListener(const ShardListener&) = delete;
  ShardListener& operator=(const ShardListener&) = delete;

  uint16_t port() const { return port_; }
  Endpoint endpoint() const { return Endpoint{options_.host, port_}; }

  /// Stops accepting, severs every live connection and joins all
  /// threads. Idempotent; the destructor calls it.
  void Stop();

  /// Fault injection / connection management: shuts down every LIVE
  /// connection (in-flight reads see EOF) but keeps accepting new ones.
  void CloseConnections();

  struct Stats {
    uint64_t accepted = 0;
    uint64_t frames = 0;      ///< Well-framed requests answered.
    uint64_t bad_frames = 0;  ///< Length-prefix violations (conn dropped).
    uint64_t dropped = 0;     ///< Connections dropped by the handler hook.
  };
  Stats stats() const;

 private:
  void AcceptLoop();
  void ConnectionLoop(int fd);
  void RegisterConn(int fd);
  void UnregisterConn(int fd);

  Handler handler_;
  Options options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::mutex stop_mu_;  ///< Serializes concurrent Stop() calls (join is not).
  std::thread accept_thread_;

  std::mutex conns_mu_;
  std::condition_variable conns_cv_;
  std::unordered_set<int> live_fds_;
  size_t live_threads_ = 0;

  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> frames_{0};
  std::atomic<uint64_t> bad_frames_{0};
  std::atomic<uint64_t> dropped_{0};
};

/// Blocking server entry point: serves `handler` on `options` until
/// `*stop` becomes true (polled ~10 Hz). `on_listening`, when non-null,
/// receives the bound endpoint once the socket is accepting (the
/// "listening on ..." line of shard_server_main, a port-handoff for
/// tests). Returns the final stats. Throws StatusException if the
/// address cannot be bound.
ShardListener::Stats ServeShard(
    ShardListener::Handler handler, const ShardListener::Options& options,
    const std::atomic<bool>& stop,
    const std::function<void(const Endpoint&)>& on_listening = nullptr);

}  // namespace dbsa::service

#endif  // DBSA_SERVICE_SOCKET_TRANSPORT_H_
