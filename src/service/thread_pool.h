// Fixed-size thread pool for the query service. Two entry points:
//
//   * Submit / Async — fire-and-forget tasks and future-returning tasks,
//     the service's one-task-per-query execution model;
//   * ParallelFor — intra-task data parallelism (the cache-miss HR build
//     fan-out). The calling thread participates, so a pool worker may
//     nest a ParallelFor without risking deadlock: even if every other
//     worker is busy, the caller drains the iteration space alone.

#ifndef DBSA_SERVICE_THREAD_POOL_H_
#define DBSA_SERVICE_THREAD_POOL_H_

#include <atomic>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/thread_annotations.h"

namespace dbsa::service {

class ThreadPool {
 public:
  /// num_threads == 0 picks std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains nothing: outstanding tasks are finished, queued tasks are
  /// still executed, then the workers exit.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return threads_.size(); }

  /// Enqueues a task. Never blocks (unbounded queue).
  void Submit(std::function<void()> task);

  /// Enqueues a callable and returns a future for its result.
  template <typename F>
  auto Async(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    Submit([task]() { (*task)(); });
    return future;
  }

  /// Runs fn(0..n-1) across the pool and the calling thread; returns when
  /// every iteration has finished. Iterations must be independent — the
  /// execution order is unspecified. Safe to call from a pool worker.
  ///
  /// Exceptions: if any iteration throws, the first exception (by capture
  /// order) is rethrown on the calling thread after the loop completes;
  /// iterations not yet started by then are skipped. The pool stays fully
  /// usable afterwards.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;  ///< Written only in the constructor.
  dbsa::Mutex mu_;
  dbsa::CondVar cv_;  ///< Signals: task enqueued, or stop.
  std::deque<std::function<void()>> queue_ DBSA_GUARDED_BY(mu_);
  bool stop_ DBSA_GUARDED_BY(mu_) = false;
};

}  // namespace dbsa::service

#endif  // DBSA_SERVICE_THREAD_POOL_H_
