// Memory-budgeted LRU cache of hierarchical-raster approximations, keyed
// by (object id, epsilon level). This is what turns the paper's "compute
// approximations on the fly" story into a serving-layer amortization:
// the HR of a region at a given distance-bound level is built once —
// by whichever query first needs it — and every later query, session or
// thread reuses the shared immutable structure.
//
// Concurrency: all operations are thread-safe. Concurrent requests for
// the same missing key are single-flighted — one thread builds, the rest
// wait on a shared future — so a burst of identical queries costs one
// construction, not N.

#ifndef DBSA_SERVICE_APPROX_CACHE_H_
#define DBSA_SERVICE_APPROX_CACHE_H_

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "geom/polygon.h"
#include "raster/hierarchical_raster.h"

namespace dbsa::service {

/// Stable 64-bit fingerprint of a polygon's geometry (FNV-1a over the
/// vertex coordinates' bit patterns). Lets ad-hoc query polygons share
/// cache entries across repeated submissions — e.g. a dashboard viewport
/// re-requested at every refresh. The high bit is set so fingerprints
/// never collide with region-table polygon indexes used as object ids.
uint64_t PolygonFingerprint(const geom::Polygon& poly);

class ApproxCache {
 public:
  using HrPtr = std::shared_ptr<const raster::HierarchicalRaster>;
  /// Invoked on a miss to construct the approximation. Must be pure: the
  /// same (object id, level) must always produce the same structure.
  using Builder = std::function<raster::HierarchicalRaster()>;

  struct Stats {
    size_t hits = 0;
    size_t misses = 0;      ///< Builder invocations.
    size_t evictions = 0;   ///< Entries dropped to respect the budget.
    size_t entries = 0;
    size_t bytes_used = 0;
    size_t budget_bytes = 0;

    double HitRatio() const {
      const size_t total = hits + misses;
      return total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
    }
  };

  /// budget_bytes bounds the summed HierarchicalRaster::MemoryBytes() of
  /// the cached entries. An entry larger than the whole budget is built
  /// and returned but never cached.
  explicit ApproxCache(size_t budget_bytes);

  /// Returns the cached approximation for (object_id, level), building it
  /// with `build` on a miss. Waiters on an in-flight build count as hits
  /// (they performed no construction). If `built` is non-null it reports
  /// whether THIS call ran the builder (per-query miss accounting).
  HrPtr GetOrBuild(uint64_t object_id, int level, const Builder& build,
                   bool* built = nullptr);

  /// Lookup without building or LRU promotion (tests, introspection).
  HrPtr Peek(uint64_t object_id, int level) const;

  Stats stats() const;

  /// Drops every entry (in-flight builds complete and are then dropped).
  void Clear();

 private:
  struct Key {
    uint64_t object_id = 0;
    int level = 0;
    bool operator==(const Key& o) const {
      return object_id == o.object_id && level == o.level;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      // Splitmix-style finalizer over the two fields.
      uint64_t x = k.object_id ^ (static_cast<uint64_t>(k.level) * 0x9e3779b97f4a7c15ULL);
      x ^= x >> 30;
      x *= 0xbf58476d1ce4e5b9ULL;
      x ^= x >> 27;
      x *= 0x94d049bb133111ebULL;
      x ^= x >> 31;
      return static_cast<size_t>(x);
    }
  };
  struct Entry {
    Key key;
    HrPtr hr;
    size_t bytes = 0;
  };
  using LruList = std::list<Entry>;

  void EvictToBudgetLocked();

  const size_t budget_bytes_;
  mutable std::mutex mu_;
  LruList lru_;  ///< Front = most recently used.
  std::unordered_map<Key, LruList::iterator, KeyHash> map_;
  std::unordered_map<Key, std::shared_future<HrPtr>, KeyHash> inflight_;
  size_t bytes_used_ = 0;
  uint64_t generation_ = 0;  ///< Bumped by Clear(); stale builds not cached.
  size_t hits_ = 0;
  size_t misses_ = 0;
  size_t evictions_ = 0;
};

}  // namespace dbsa::service

#endif  // DBSA_SERVICE_APPROX_CACHE_H_
