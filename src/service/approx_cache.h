// Memory-budgeted LRU cache of hierarchical-raster approximations, keyed
// by (object id, epsilon level). This is what turns the paper's "compute
// approximations on the fly" story into a serving-layer amortization:
// the HR of a region at a given distance-bound level is built once —
// by whichever query first needs it — and every later query, session or
// thread reuses the shared immutable structure.
//
// Concurrency: all operations are thread-safe. Concurrent requests for
// the same missing key are single-flighted — one thread builds, the rest
// wait on a shared future — so a burst of identical queries costs one
// construction, not N.
//
// Collision safety: ad-hoc polygons are identified by a 128-bit geometry
// fingerprint, and callers may additionally pass the polygon itself so a
// hit is verified against a structural summary of the geometry that
// produced the entry. A fingerprint collision is then detected instead of
// silently serving the wrong approximation (see Stats::collisions).

#ifndef DBSA_SERVICE_APPROX_CACHE_H_
#define DBSA_SERVICE_APPROX_CACHE_H_

#include <cstdint>
#include <functional>
#include <future>
#include <list>
#include <memory>
#include <unordered_map>

#include "geom/polygon.h"
#include "raster/hierarchical_raster.h"
#include "telemetry/metrics.h"
#include "util/thread_annotations.h"

namespace dbsa::service {

/// 128-bit cache object identity. Region-table polygons use {0, index};
/// ad-hoc polygons use PolygonFingerprint, which sets the top bit of `hi`
/// so the two namespaces can never collide. The implicit constructor from
/// a plain integer covers the table-index case.
struct ObjectKey {
  uint64_t hi = 0;
  uint64_t lo = 0;

  constexpr ObjectKey() = default;
  constexpr ObjectKey(uint64_t object_id) : hi(0), lo(object_id) {}  // NOLINT
  constexpr ObjectKey(uint64_t hi_word, uint64_t lo_word)
      : hi(hi_word), lo(lo_word) {}

  bool operator==(const ObjectKey& o) const { return hi == o.hi && lo == o.lo; }
  bool operator!=(const ObjectKey& o) const { return !(*this == o); }
};

/// (object, epsilon level) — the key domain shared by the central
/// ApproxCache, the per-shard slice caches (service/shard_server.h) and
/// the router's cache bookkeeping. One definition so the hash/equality
/// can never diverge between the layers.
struct ObjectLevelKey {
  ObjectKey object;
  int level = 0;

  bool operator==(const ObjectLevelKey& o) const {
    return object == o.object && level == o.level;
  }
};

struct ObjectLevelKeyHash {
  size_t operator()(const ObjectLevelKey& k) const {
    // Splitmix-style finalizer over the three fields.
    uint64_t x = k.object.lo ^ (k.object.hi * 0xff51afd7ed558ccdULL) ^
                 (static_cast<uint64_t>(k.level) * 0x9e3779b97f4a7c15ULL);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

/// Stable 128-bit fingerprint of a polygon's geometry: two independent
/// FNV-1a streams over the vertex coordinates' bit patterns, mixed with
/// the ring/vertex structure (ring count and per-ring lengths), so rings
/// that merely re-chunk the same byte stream hash differently. Lets
/// ad-hoc query polygons share cache entries across repeated submissions
/// — e.g. a dashboard viewport re-requested at every refresh. The top bit
/// of `hi` is always set (the ad-hoc namespace marker).
ObjectKey PolygonFingerprint(const geom::Polygon& poly);

/// Cheap structural summary of a polygon, stored with each cache entry
/// and compared on every verified hit: a fingerprint collision between
/// distinct geometries is caught unless the geometries also agree on ring
/// count, vertex count, bounding box and first vertex — at which point
/// they are the same polygon for any practical purpose.
struct GeometrySummary {
  uint64_t num_rings = 0;
  uint64_t num_vertices = 0;
  geom::Box bounds;
  geom::Point first_vertex;

  static GeometrySummary Of(const geom::Polygon& poly);
  bool Matches(const GeometrySummary& o) const;
};

class ApproxCache {
 public:
  using HrPtr = std::shared_ptr<const raster::HierarchicalRaster>;
  /// Invoked on a miss to construct the approximation. Must be pure: the
  /// same (object id, level) must always produce the same structure.
  using Builder = std::function<raster::HierarchicalRaster()>;

  struct Stats {
    size_t hits = 0;
    size_t misses = 0;      ///< Builder invocations.
    size_t evictions = 0;   ///< Entries dropped to respect the budget.
    size_t collisions = 0;  ///< Hits rejected by geometry verification.
    size_t entries = 0;
    size_t bytes_used = 0;
    size_t budget_bytes = 0;

    double HitRatio() const {
      const size_t total = hits + misses;
      return total ? static_cast<double>(hits) / static_cast<double>(total) : 0.0;
    }
  };

  /// budget_bytes bounds the summed HierarchicalRaster::MemoryBytes() of
  /// the cached entries. An entry larger than the whole budget is built
  /// and returned but never cached. Counters/gauges live in `registry`
  /// under dbsa_approx_cache_* names (Stats is a thin read of them); a
  /// null registry gets a private one so standalone construction keeps
  /// working.
  explicit ApproxCache(size_t budget_bytes,
                       std::shared_ptr<telemetry::MetricRegistry> registry = nullptr);

  /// Returns the cached approximation for (object_id, level), building it
  /// with `build` on a miss. Waiters on an in-flight build count as hits
  /// (they performed no construction). If `built` is non-null it reports
  /// whether THIS call ran the builder (per-query miss accounting).
  ///
  /// When `geometry` is non-null the hit is verified: if the cached entry
  /// was built from a polygon whose structural summary differs (an id
  /// collision), the stale entry is discarded and the approximation is
  /// rebuilt from `build` — the wrong approximation is never returned.
  HrPtr GetOrBuild(const ObjectKey& object_id, int level, const Builder& build,
                   bool* built = nullptr, const geom::Polygon* geometry = nullptr);

  /// Lookup without building or LRU promotion (tests, introspection).
  HrPtr Peek(const ObjectKey& object_id, int level) const;

  Stats stats() const;

  /// Drops every entry (in-flight builds complete and are then dropped).
  void Clear();

 private:
  using Key = ObjectLevelKey;
  using KeyHash = ObjectLevelKeyHash;
  struct Entry {
    Key key;
    HrPtr hr;
    size_t bytes = 0;
    bool has_summary = false;
    GeometrySummary summary;
  };
  using LruList = std::list<Entry>;
  struct Inflight {
    std::shared_future<HrPtr> future;
    bool has_summary = false;
    GeometrySummary summary;
  };

  void EvictToBudgetLocked() DBSA_REQUIRES(mu_);
  void EraseEntryLocked(LruList::iterator it) DBSA_REQUIRES(mu_);
  /// Mirrors entries/bytes_used into the registry gauges after any
  /// mutation of map_/bytes_used_.
  void UpdateGaugesLocked() DBSA_REQUIRES(mu_);

  const size_t budget_bytes_;
  std::shared_ptr<telemetry::MetricRegistry> registry_;
  telemetry::Counter* hits_;
  telemetry::Counter* misses_;
  telemetry::Counter* evictions_;
  telemetry::Counter* collisions_;
  telemetry::Gauge* entries_gauge_;
  telemetry::Gauge* bytes_gauge_;
  mutable dbsa::Mutex mu_;
  /// Front = most recently used.
  LruList lru_ DBSA_GUARDED_BY(mu_);
  std::unordered_map<Key, LruList::iterator, KeyHash> map_ DBSA_GUARDED_BY(mu_);
  std::unordered_map<Key, Inflight, KeyHash> inflight_ DBSA_GUARDED_BY(mu_);
  size_t bytes_used_ DBSA_GUARDED_BY(mu_) = 0;
  /// Bumped by Clear(); stale builds not cached.
  uint64_t generation_ DBSA_GUARDED_BY(mu_) = 0;
};

}  // namespace dbsa::service

#endif  // DBSA_SERVICE_APPROX_CACHE_H_
