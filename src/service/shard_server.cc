#include "service/shard_server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "join/result_range.h"
#include "telemetry/trace.h"
#include "util/check.h"
#include "util/timer.h"

namespace dbsa::service {

uint64_t ApproxChecksum(const raster::HrCell* cells, size_t num_cells) {
  // FNV-1a over the cell ids and boundary flags: order-sensitive, so any
  // structural difference between two approximations changes it.
  uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  mix(num_cells);
  for (size_t i = 0; i < num_cells; ++i) {
    mix(cells[i].id.id() | (cells[i].boundary ? (uint64_t{1} << 63) : 0));
  }
  return h;
}

// ------------------------------------------------------------ ShardServer

namespace {

/// dbsa_<family>{shard="N"} — the per-shard label scheme of every shard
/// metric, so loopback servers sharing a registry stay distinguishable.
std::string ShardMetric(const char* family, size_t shard) {
  return std::string(family) + "{shard=\"" + std::to_string(shard) + "\"}";
}

}  // namespace

ShardServer::ShardServer(std::shared_ptr<const core::EngineState> state,
                         std::vector<uint32_t> global_ids, const Options& options)
    : state_(std::move(state)),
      global_ids_(std::move(global_ids)),
      cache_budget_bytes_(options.cell_cache_budget_bytes),
      options_(options),
      registry_(options.registry
                    ? options.registry
                    : std::make_shared<telemetry::MetricRegistry>()),
      requests_(registry_->GetCounter(
          ShardMetric("dbsa_shard_scatter_requests_total", options.shard_index))),
      parse_errors_(registry_->GetCounter(
          ShardMetric("dbsa_shard_parse_errors_total", options.shard_index))),
      epoch_rejects_(registry_->GetCounter(
          ShardMetric("dbsa_shard_epoch_rejects_total", options.shard_index))),
      cache_hits_(registry_->GetCounter(
          ShardMetric("dbsa_shard_cache_hits_total", options.shard_index))),
      cache_misses_(registry_->GetCounter(
          ShardMetric("dbsa_shard_cache_misses_total", options.shard_index))),
      cache_evictions_(registry_->GetCounter(
          ShardMetric("dbsa_shard_cache_evictions_total", options.shard_index))),
      cache_entries_gauge_(registry_->GetGauge(
          ShardMetric("dbsa_shard_cache_entries", options.shard_index))),
      cache_bytes_gauge_(registry_->GetGauge(
          ShardMetric("dbsa_shard_cache_bytes", options.shard_index))),
      handle_ms_(registry_->GetHistogram(
          ShardMetric("dbsa_shard_handle_ms", options.shard_index))) {
  DBSA_CHECK(state_ == nullptr || state_->points->size() == global_ids_.size());
}

ShardServer::ShardServer(std::shared_ptr<const core::EngineState> state,
                         std::vector<uint32_t> global_ids)
    : ShardServer(std::move(state), std::move(global_ids), Options()) {}

std::string ShardServer::Handle(const std::string& request_bytes) {
  Timer timer;
  requests_->Add(1);
  ScatterRequest request;
  GatherPartial partial;
  const Status parsed = ScatterRequest::Decode(request_bytes, &request);
  if (!parsed.ok()) {
    // The decoder's code travels back typed: a version-skewed frame
    // answers kUnimplemented, corruption answers kInvalidArgument.
    parse_errors_->Add(1);
    partial = GatherPartial::FromStatus(
        ScatterRequest::Kind::kAggregateCells, GatherPartial::Disposition::kError,
        Status(parsed.code(), "bad request: " + parsed.message()));
  } else if (options_.serving_epoch != 0 && request.epoch != 0 &&
             request.epoch != options_.serving_epoch) {
    // Read-your-epoch: a request pinned to another dataset generation is
    // rejected typed, never answered from the wrong data. The rejection
    // still echoes OUR serving epoch (below), so the client can tell
    // which generation this server holds.
    epoch_rejects_->Add(1);
    partial = GatherPartial::FromStatus(
        request.kind, GatherPartial::Disposition::kError,
        Status::FailedPrecondition(
            "epoch mismatch: request pinned to epoch " +
            std::to_string(request.epoch) + ", serving epoch " +
            std::to_string(options_.serving_epoch)));
  } else {
    partial = Dispatch(request);
  }
  // EVERY partial — ok, error, not-cached — carries the serving epoch.
  partial.epoch = options_.serving_epoch;
  std::string encoded = partial.Encode();
  // Echo the request's correlation id: on a multiplexed connection the
  // id — not stream position — pairs this reply with its request.
  PatchCorrelation(&encoded, PeekCorrelation(request_bytes));
  const double elapsed_ms = timer.Millis();
  handle_ms_->Record(elapsed_ms);
  if (options_.slow_handle_ms > 0.0 && elapsed_ms > options_.slow_handle_ms) {
    // The server-side half of the distributed trace: one line keyed by
    // the WIRE trace id, so it joins the client's slow-query record.
    char buf[192];
    std::snprintf(
        buf, sizeof(buf), "SLOW_SHARD trace=%s shard=%zu kind=%u ms=%.3f",
        telemetry::TraceIdHex(request.trace_hi, request.trace_lo).c_str(),
        options_.shard_index, static_cast<unsigned>(request.kind), elapsed_ms);
    if (options_.slow_handle_sink) {
      options_.slow_handle_sink(buf);
    } else {
      std::fprintf(stderr, "%s\n", buf);
    }
  }
  return encoded;
}

GatherPartial ShardServer::Dispatch(const ScatterRequest& request) {
  GatherPartial out;
  out.kind = request.kind;

  if (request.kind == ScatterRequest::Kind::kWarm) {
    if (!request.has_object || !request.has_cells) {
      return GatherPartial::FromStatus(
          request.kind, GatherPartial::Disposition::kError,
          Status::InvalidArgument("warm request needs an object key and cells"));
    }
    out.cells_cached = request.cells.size();
    CachePut({request.object, request.level}, request.checksum, request.cells);
    return out;
  }

  // Resolve the cell slice: shipped inline (and cached under the object
  // key for later reference requests), or referenced from the cache.
  CellsPtr cached;
  const raster::HrCell* cells = nullptr;
  size_t num_cells = 0;
  if (request.has_cells) {
    cells = request.cells.data();
    num_cells = request.cells.size();
    if (request.has_object) {
      CachePut({request.object, request.level}, request.checksum, request.cells);
    }
  } else if (request.has_object) {
    cached = CacheGet({request.object, request.level}, request.checksum);
    if (cached == nullptr) {
      return GatherPartial::FromStatus(request.kind,
                                       GatherPartial::Disposition::kNotCached,
                                       Status::NotFound("slice not cached"));
    }
    cells = cached->data();
    num_cells = cached->size();
  } else {
    return GatherPartial::FromStatus(
        request.kind, GatherPartial::Disposition::kError,
        Status::InvalidArgument(
            "request carries neither cells nor an object reference"));
  }

  if (state_ == nullptr || !state_->point_index.has_value() || num_cells == 0) {
    return out;  // Empty shard or empty slice: zero partial.
  }
  static_assert(ScatterRequest::kKindCount == 3,
                "new scatter kind: execute it against the shard slice below");
  switch (request.kind) {
    case ScatterRequest::Kind::kAggregateCells: {
      out.aggregate = state_->point_index->QueryCells(
          cells, num_cells, join::SearchStrategy::kRadixSpline);
      break;
    }
    case ScatterRequest::Kind::kSelectIds: {
      out.probe_cells = num_cells;
      std::vector<uint32_t> local;
      state_->point_index->SelectIds(cells, num_cells,
                                     join::SearchStrategy::kRadixSpline, &local);
      out.keyed_ids.reserve(local.size());
      // Keys computed from the shard's own copy of the point (identical
      // bits to the base table row), ids remapped to base rows: the
      // router needs no point data to canonicalize the gather.
      for (const uint32_t l : local) {
        out.keyed_ids.emplace_back(state_->grid.LeafKey(state_->points->locs[l]),
                                   global_ids_[l]);
      }
      break;
    }
    case ScatterRequest::Kind::kWarm:
      break;  // Handled above.
  }
  return out;
}

void ShardServer::CachePut(const CacheKey& key, uint64_t checksum,
                           std::vector<raster::HrCell> cells) {
  const size_t bytes = cells.size() * sizeof(raster::HrCell) + sizeof(CacheEntry);
  if (bytes > cache_budget_bytes_) return;  // Never cache a budget-buster.
  CellsPtr shared =
      std::make_shared<const std::vector<raster::HrCell>>(std::move(cells));
  dbsa::MutexLock lock(mu_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    cache_bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    map_.erase(it);
  }
  lru_.push_front(CacheEntry{key, checksum, std::move(shared), bytes});
  map_[key] = lru_.begin();
  cache_bytes_ += bytes;
  while (cache_bytes_ > cache_budget_bytes_ && lru_.size() > 1) {
    const CacheEntry& victim = lru_.back();
    cache_bytes_ -= victim.bytes;
    map_.erase(victim.key);
    lru_.pop_back();
    cache_evictions_->Add(1);
  }
  cache_entries_gauge_->Set(static_cast<double>(map_.size()));
  cache_bytes_gauge_->Set(static_cast<double>(cache_bytes_));
}

ShardServer::CellsPtr ShardServer::CacheGet(const CacheKey& key,
                                            uint64_t checksum) {
  dbsa::MutexLock lock(mu_);
  auto it = map_.find(key);
  if (it == map_.end() || it->second->checksum != checksum) {
    // A checksum mismatch means the key now identifies a different
    // approximation (fingerprint collision or level re-use); drop the
    // stale slice so the router's re-ship replaces it.
    if (it != map_.end()) {
      cache_bytes_ -= it->second->bytes;
      lru_.erase(it->second);
      map_.erase(it);
      cache_entries_gauge_->Set(static_cast<double>(map_.size()));
      cache_bytes_gauge_->Set(static_cast<double>(cache_bytes_));
    }
    cache_misses_->Add(1);
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // Promote.
  cache_hits_->Add(1);
  return it->second->cells;  // Shared, immutable: no copy under the lock.
}

ShardServer::Stats ShardServer::stats() const {
  Stats s;
  s.requests = requests_->Value();
  s.parse_errors = parse_errors_->Value();
  s.epoch_rejects = epoch_rejects_->Value();
  s.cache_hits = cache_hits_->Value();
  s.cache_misses = cache_misses_->Value();
  s.cache_evictions = cache_evictions_->Value();
  dbsa::MutexLock lock(mu_);
  s.cache_entries = map_.size();
  s.cache_bytes = cache_bytes_;
  return s;
}

std::vector<std::pair<ObjectKey, int>> ShardServer::CachedKeys() const {
  dbsa::MutexLock lock(mu_);
  std::vector<std::pair<ObjectKey, int>> keys;
  keys.reserve(map_.size());
  for (const CacheEntry& entry : lru_) {
    keys.emplace_back(entry.key.object, entry.key.level);
  }
  return keys;
}

// ------------------------------------------------------------ ShardRouter

ShardRouter::ShardRouter(std::shared_ptr<const core::ShardedState> sharded,
                         std::shared_ptr<Transport> transport)
    : sharded_(std::move(sharded)), transport_(std::move(transport)) {
  DBSA_CHECK(sharded_ != nullptr && transport_ != nullptr);
  DBSA_CHECK(transport_->num_shards() == sharded_->num_shards());
  known_.resize(sharded_->num_shards());
}

bool ShardRouter::KnownCached(size_t shard, const Key& key) const {
  dbsa::MutexLock lock(known_mu_);
  return known_[shard].count(key) != 0;
}

void ShardRouter::MarkCached(size_t shard, const Key& key, bool cached) {
  dbsa::MutexLock lock(known_mu_);
  if (cached) {
    auto& keys = known_[shard];
    if (keys.size() >= kMaxKnownKeysPerShard && keys.count(key) == 0) {
      // Bounded in sympathy with the server-side LRU: drop an arbitrary
      // entry (the hint is advisory — at worst one extra inline ship).
      keys.erase(keys.begin());
    }
    keys[key] = 1;
  } else {
    known_[shard].erase(key);
  }
}

namespace {

/// Decodes and validates one shard's framed reply into a GatherPartial.
/// kError partials become a typed StatusException (the shard's code
/// survives the hop to the serving layer's Result.status unchanged);
/// kNotCached passes through for the caller's fallback policy.
GatherPartial DecodePartial(size_t shard, ScatterRequest::Kind kind,
                            const std::string& response) {
  GatherPartial partial;
  const Status decoded = GatherPartial::Decode(response, &partial);
  if (!decoded.ok()) {
    throw StatusException(Status(
        decoded.code(), "shard " + std::to_string(shard) +
                            ": undecodable response: " + decoded.message()));
  }
  if (partial.status == GatherPartial::Disposition::kError) {
    const Status status = partial.ToStatus();
    throw StatusException(Status(
        status.code(), "shard " + std::to_string(shard) + ": " + status.message()));
  }
  if (partial.status == GatherPartial::Disposition::kOk && partial.kind != kind) {
    throw StatusException(Status::Internal("shard " + std::to_string(shard) +
                                           ": response kind mismatch"));
  }
  return partial;
}

GatherPartial RoundtripDecode(Transport& transport, size_t shard,
                              const ScatterRequest& request) {
  return DecodePartial(shard, request.kind,
                       Roundtrip(transport, shard, request.Encode()));
}

/// One shard's slot in an in-flight scatter wave.
struct ShardCall {
  bool active = false;           ///< Has a request in this wave.
  std::string request;           ///< Encoded frame to send.
  Status status = Status::OK();  ///< Transport status of the completion.
  std::string frame;             ///< Framed reply when status is OK.
  uint64_t correlation = 0;
  double start_ms = 0.0;         ///< Trace-epoch offset at Send.
  double duration_ms = 0.0;
};

/// Starts every active slot's request through Transport::Send and blocks
/// until every completion lands — unconditionally, so no callback can
/// outlive the wave. Issuing runs under the caller's RunMaybeParallel
/// policy when `parallel_issue` is set: for an inline-completing
/// transport (loopback) that IS the shard-execution parallelism, for an
/// async transport the issue loop merely enqueues and the per-shard
/// demux engines overlap the work. Completions land in any order; slots
/// keep wave results positionally, so completion order never reaches the
/// merge. Per-call wall time and correlation ids are captured for span
/// recording on the gathering thread.
void SendWave(Transport& transport, const core::ExecHooks& hooks,
              bool parallel_issue, const std::vector<uint32_t>& shards,
              telemetry::QueryTrace* trace, std::vector<ShardCall>* calls) {
  struct WaveState {
    dbsa::Mutex mu;
    dbsa::CondVar cv;
    size_t remaining DBSA_GUARDED_BY(mu) = 0;
  };
  size_t active = 0;
  for (const ShardCall& call : *calls) active += call.active ? 1 : 0;
  if (active == 0) return;
  auto state = std::make_shared<WaveState>();
  {
    dbsa::MutexLock lock(state->mu);
    state->remaining = active;
  }
  const auto issue_one = [&](size_t t) {
    ShardCall& call = (*calls)[t];
    if (!call.active) return;
    call.start_ms = trace != nullptr ? trace->ElapsedMs() : 0.0;
    const auto sent = std::chrono::steady_clock::now();
    call.correlation = transport.Send(
        shards[t], std::move(call.request),
        [state, &call, sent](StatusOr<std::string> result) {
          call.duration_ms = std::chrono::duration<double, std::milli>(
                                 std::chrono::steady_clock::now() - sent)
                                 .count();
          if (result.ok()) {
            call.frame = std::move(result).value();
          } else {
            call.status = result.status();
          }
          {
            dbsa::MutexLock lock(state->mu);
            --state->remaining;
          }
          state->cv.NotifyOne();
        });
  };
  // RunMaybeParallel is a barrier: every Send (and its correlation-id
  // write) has returned before the wait below starts.
  if (parallel_issue) {
    core::RunMaybeParallel(hooks, calls->size(), issue_one);
  } else {
    for (size_t t = 0; t < calls->size(); ++t) issue_one(t);
  }
  dbsa::MutexLock lock(state->mu);
  while (state->remaining != 0) state->cv.Wait(lock);
}

}  // namespace

std::vector<GatherPartial> ShardRouter::GatherFromShards(
    ScatterRequest::Kind kind, const ObjectKey* object, int level,
    const query::ErrorBound& bound, uint64_t checksum,
    const raster::HrCell* cells, const core::ShardedState::CellRoute* routes,
    size_t num_cells, const core::ExecHooks& hooks,
    const std::vector<uint32_t>& surviving) {
  telemetry::QueryTrace* trace = hooks.trace;
  const size_t n = surviving.size();
  // Same fan-out threshold as the in-process executor: scheduling (not
  // results) is all that changes with it.
  const bool parallel_issue = num_cells >= core::kShardFanOutMinCells;
  const Key key{object != nullptr ? *object : ObjectKey(), level};

  ScatterRequest base;
  base.kind = kind;
  base.bound_kind = bound.kind;
  base.bound_epsilon = bound.epsilon;
  base.level = level;
  base.checksum = checksum;
  base.epoch = epoch_;
  if (trace != nullptr) {
    base.trace_hi = trace->ctx().trace_hi;
    base.trace_lo = trace->ctx().trace_lo;
    base.span_id = trace->ctx().span_id;
  }
  if (object != nullptr) {
    base.has_object = true;
    base.object = *object;
  }

  // Wave 1: reference-only where the shard is believed to hold the key
  // (no cell payload — the per-shard HR cache hit path), inline cells
  // otherwise.
  std::vector<ShardCall> calls(n);
  std::vector<char> referenced(n, 0);
  for (size_t t = 0; t < n; ++t) {
    ScatterRequest request = base;
    if (object != nullptr && KnownCached(surviving[t], key)) {
      referenced[t] = 1;
    } else {
      request.has_cells = true;
      request.cells =
          sharded_->PruneCellsForShard(surviving[t], cells, routes, num_cells);
    }
    calls[t].active = true;
    calls[t].request = request.Encode();
  }
  SendWave(*transport_, hooks, parallel_issue, surviving, trace, &calls);

  // Harvest on the gathering thread: spans, fallbacks, errors. Every
  // completion has landed, so throwing from here leaves nothing in
  // flight. The first failing shard (ascending) wins — deterministic
  // regardless of completion order.
  const auto record_span = [&](size_t t) {
    if (trace != nullptr) {
      trace->Record("shard_roundtrip", calls[t].start_ms, calls[t].duration_ms,
                    static_cast<int>(surviving[t]), calls[t].correlation);
    }
  };
  std::vector<GatherPartial> partials(n);
  bool any_fallback = false;
  for (size_t t = 0; t < n; ++t) {
    record_span(t);
    calls[t].active = false;  // Only fallback slots re-enter wave 2.
    if (!calls[t].status.ok()) {
      throw StatusException(Status(calls[t].status.code(),
                                   "shard " + std::to_string(surviving[t]) +
                                       ": " + calls[t].status.message()));
    }
    partials[t] = DecodePartial(surviving[t], kind, calls[t].frame);
    if (partials[t].status == GatherPartial::Disposition::kOk) {
      if (object != nullptr && !referenced[t]) {
        MarkCached(surviving[t], key, true);
      }
      continue;
    }
    // kNotCached. A reference miss falls back to shipping the cells; a
    // shard rejecting an INLINE slice this way is a protocol violation.
    if (!referenced[t]) {
      throw StatusException(
          Status::Internal("shard " + std::to_string(surviving[t]) +
                           ": rejected inline slice: " + partials[t].error));
    }
    MarkCached(surviving[t], key, false);
    calls[t] = ShardCall();
    calls[t].active = true;
    any_fallback = true;
  }
  if (!any_fallback) return partials;

  // Wave 2: re-send with inline cells to the shards that evicted or
  // replaced the referenced slice.
  for (size_t t = 0; t < n; ++t) {
    if (!calls[t].active) continue;
    ScatterRequest request = base;
    request.has_cells = true;
    request.cells =
        sharded_->PruneCellsForShard(surviving[t], cells, routes, num_cells);
    calls[t].request = request.Encode();
  }
  SendWave(*transport_, hooks, parallel_issue, surviving, trace, &calls);
  for (size_t t = 0; t < n; ++t) {
    if (!calls[t].active) continue;
    record_span(t);
    if (!calls[t].status.ok()) {
      throw StatusException(Status(calls[t].status.code(),
                                   "shard " + std::to_string(surviving[t]) +
                                       ": " + calls[t].status.message()));
    }
    partials[t] = DecodePartial(surviving[t], kind, calls[t].frame);
    if (partials[t].status != GatherPartial::Disposition::kOk) {
      throw StatusException(
          Status::Internal("shard " + std::to_string(surviving[t]) +
                           ": rejected inline slice: " + partials[t].error));
    }
    if (object != nullptr) MarkCached(surviving[t], key, true);
  }
  return partials;
}

join::CellAggregate ShardRouter::ScatterGather(
    const raster::HierarchicalRaster& hr, const ObjectKey* object, int level,
    const query::ErrorBound& bound, const core::ExecHooks& hooks,
    std::atomic<uint32_t>* touched, size_t* num_surviving) {
  const raster::HrCell* cells = hr.cells().data();
  const size_t num_cells = hr.cells().size();
  telemetry::QueryTrace* trace = hooks.trace;
  std::vector<core::ShardedState::CellRoute> routes;
  std::vector<uint32_t> surviving;
  {
    telemetry::SpanTimer route_span(trace, "route");
    routes = sharded_->MakeRoutes(cells, num_cells);
    surviving = sharded_->SurvivingShards(routes.data(), num_cells);
  }
  if (touched != nullptr) {
    for (const uint32_t s : surviving) {
      touched[s].store(1, std::memory_order_relaxed);
    }
  }
  if (num_surviving != nullptr) *num_surviving = surviving.size();
  const uint64_t checksum = ApproxChecksum(cells, num_cells);
  const std::vector<GatherPartial> partials =
      GatherFromShards(ScatterRequest::Kind::kAggregateCells, object, level,
                       bound, checksum, cells, routes.data(), num_cells, hooks,
                       surviving);
  // Completion order was whatever the wire delivered; the fold below is
  // the canonical ascending-shard merge (partials are positional in
  // `surviving`), preserving byte identity with the in-process engine.
  telemetry::SpanTimer merge_span(trace, "merge");
  join::CellAggregate agg;
  for (const GatherPartial& partial : partials) agg.Merge(partial.aggregate);
  return agg;
}

std::vector<std::pair<uint64_t, uint32_t>> ShardRouter::SelectKeyed(
    const raster::HierarchicalRaster& hr, const ObjectKey* object, int level,
    const query::ErrorBound& bound, const core::ExecHooks& hooks,
    size_t* num_surviving, size_t* probe_cells) {
  const raster::HrCell* cells = hr.cells().data();
  const size_t num_cells = hr.cells().size();
  telemetry::QueryTrace* trace = hooks.trace;
  std::vector<core::ShardedState::CellRoute> routes;
  std::vector<uint32_t> surviving;
  {
    telemetry::SpanTimer route_span(trace, "route");
    routes = sharded_->MakeRoutes(cells, num_cells);
    surviving = sharded_->SurvivingShards(routes.data(), num_cells);
  }
  if (num_surviving != nullptr) *num_surviving = surviving.size();
  const uint64_t checksum = ApproxChecksum(cells, num_cells);
  std::vector<GatherPartial> partials =
      GatherFromShards(ScatterRequest::Kind::kSelectIds, object, level, bound,
                       checksum, cells, routes.data(), num_cells, hooks,
                       surviving);
  telemetry::SpanTimer gather_span(trace, "gather");
  if (probe_cells != nullptr) {
    *probe_cells = 0;
    for (const GatherPartial& partial : partials) {
      *probe_cells += partial.probe_cells;
    }
  }
  std::vector<std::pair<uint64_t, uint32_t>> keyed;
  for (GatherPartial& partial : partials) {
    keyed.insert(keyed.end(), partial.keyed_ids.begin(),
                 partial.keyed_ids.end());
  }
  return keyed;
}

size_t ShardRouter::WarmObject(const ObjectKey& object, int level,
                               const raster::HierarchicalRaster& hr) {
  const raster::HrCell* cells = hr.cells().data();
  const size_t num_cells = hr.cells().size();
  const std::vector<core::ShardedState::CellRoute> routes =
      sharded_->MakeRoutes(cells, num_cells);
  const std::vector<uint32_t> surviving =
      sharded_->SurvivingShards(routes.data(), num_cells);
  const uint64_t checksum = ApproxChecksum(cells, num_cells);
  for (const uint32_t s : surviving) {
    ScatterRequest request;
    request.kind = ScatterRequest::Kind::kWarm;
    request.bound_kind = query::BoundKind::kGridLevel;
    request.level = level;
    request.checksum = checksum;
    request.epoch = epoch_;
    request.has_object = true;
    request.object = object;
    request.has_cells = true;
    request.cells = sharded_->PruneCellsForShard(s, cells, routes.data(), num_cells);
    RoundtripDecode(*transport_, s, request);
    MarkCached(s, Key{object, level}, true);
  }
  return surviving.size();
}

bool ShardRouter::WarmShard(size_t shard, const ObjectKey& object, int level,
                            const raster::HierarchicalRaster& hr) {
  const raster::HrCell* cells = hr.cells().data();
  const size_t num_cells = hr.cells().size();
  const std::vector<core::ShardedState::CellRoute> routes =
      sharded_->MakeRoutes(cells, num_cells);
  if (!sharded_->ShardIntersects(shard, routes.data(), num_cells)) return false;
  ScatterRequest request;
  request.kind = ScatterRequest::Kind::kWarm;
  request.bound_kind = query::BoundKind::kGridLevel;
  request.level = level;
  request.checksum = ApproxChecksum(cells, num_cells);
  request.epoch = epoch_;
  request.has_object = true;
  request.object = object;
  request.has_cells = true;
  request.cells = sharded_->PruneCellsForShard(shard, cells, routes.data(), num_cells);
  RoundtripDecode(*transport_, shard, request);
  MarkCached(shard, Key{object, level}, true);
  return true;
}

// ------------------------------------------- transport-backed executors

core::AggregateAnswer ExecuteAggregate(ShardRouter& router, join::AggKind agg,
                                       core::Attr attr,
                                       const query::ErrorBound& bound,
                                       core::Mode mode,
                                       const core::ExecHooks& hooks) {
  const core::ShardedState& sharded = router.sharded();
  const core::EngineState& base = sharded.base();
  DBSA_CHECK(!base.regions->polys.empty());
  const double epsilon = bound.EffectiveEpsilon(base.grid);

  // Same shared plan-selection helpers as the in-process executors, plus
  // the transport-cost term: each shard probe now costs a message
  // round-trip, which the optimizer weighs against the fan-out discount.
  query::QueryProfile profile = core::MakeAggregateProfile(base, epsilon, hooks);
  profile.parallel_shards = static_cast<double>(sharded.num_shards());
  profile.transport_overhead = router.transport().CostPerMessage();
  const query::PlanChoice choice = query::ChoosePlan(profile);
  const query::PlanKind plan = core::ResolveAggregatePlan(
      choice.kind, agg, attr, epsilon, bound.exact() ? core::Mode::kExact : mode);

  if (plan != query::PlanKind::kPointIndexJoin) {
    // Non-sharded plans never cross the seam: they execute against the
    // base snapshot exactly as the in-process sharded engine delegates.
    core::AggregateAnswer answer = core::ExecuteAggregate(
        base, agg, attr, epsilon,
        epsilon <= 0.0 ? core::Mode::kExact : core::ModeForPlan(plan), hooks);
    answer.stats.explain = choice.explain;
    return answer;
  }

  core::AggregateAnswer answer;
  answer.stats.plan = plan;
  answer.stats.explain = choice.explain;

  Timer timer;
  DBSA_CHECK(agg == join::AggKind::kCount || agg == join::AggKind::kSum ||
             agg == join::AggKind::kAvg);
  const int level = base.grid.LevelForEpsilon(epsilon);
  answer.stats.hr_level = level;
  answer.stats.achieved_epsilon = base.grid.AchievedEpsilon(level);

  const std::vector<geom::Polygon>& polys = base.regions->polys;
  std::vector<join::CellAggregate> per_poly(polys.size());
  std::unique_ptr<std::atomic<uint32_t>[]> touched(
      new std::atomic<uint32_t>[sharded.num_shards()]);
  for (size_t s = 0; s < sharded.num_shards(); ++s) touched[s].store(0);
  const auto one_poly = [&](size_t j) {
    const std::shared_ptr<const raster::HierarchicalRaster> hr =
        core::HrForPolygon(base, hooks, j, polys[j], epsilon);
    const ObjectKey object(static_cast<uint64_t>(j));
    per_poly[j] =
        router.ScatterGather(*hr, &object, level, bound, hooks, touched.get());
  };
  core::RunMaybeParallel(hooks, polys.size(), one_poly);

  // Gather: canonical — serial in polygon order, ascending-shard merges
  // already folded inside ScatterGather. Identical to the in-process
  // sharded executor, hence (per pinned plan) to the unsharded engine.
  std::vector<join::CellAggregate> per_region(base.regions->num_regions);
  for (size_t j = 0; j < polys.size(); ++j) {
    answer.stats.query_cells += per_poly[j].query_cells;
    per_region[base.regions->region_of[j]].Merge(per_poly[j]);
  }
  answer.stats.index_bytes = sharded.IndexBytes();
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    answer.stats.shards_probed += touched[s].load(std::memory_order_relaxed);
  }
  core::RowsFromRegionAggregates(per_region, agg, &answer.rows);
  answer.stats.elapsed_ms = timer.Millis();
  return answer;
}

core::CountAnswer ExecuteCount(ShardRouter& router, const geom::Polygon& poly,
                               const query::ErrorBound& bound,
                               const core::ExecHooks& hooks) {
  const core::EngineState& base = router.sharded().base();
  if (bound.exact()) return core::ExecuteCount(base, poly, bound, hooks);
  core::CountAnswer out;
  Timer timer;
  const double epsilon = bound.EffectiveEpsilon(base.grid);
  const std::shared_ptr<const raster::HierarchicalRaster> hr =
      core::HrForPolygon(base, hooks, core::kAdHocPolygon, poly, epsilon);
  const ObjectKey object = PolygonFingerprint(poly);
  const int level = base.grid.LevelForEpsilon(epsilon);
  const join::CellAggregate agg = router.ScatterGather(
      *hr, &object, level, bound, hooks, nullptr, &out.stats.shards_probed);
  out.range = join::CountRange(agg);
  out.stats.plan = query::PlanKind::kPointIndexJoin;
  out.stats.hr_level = level;
  out.stats.achieved_epsilon = base.grid.AchievedEpsilon(level);
  out.stats.query_cells = agg.query_cells;
  out.stats.index_bytes = router.sharded().IndexBytes();
  out.stats.elapsed_ms = timer.Millis();
  return out;
}

core::SelectAnswer ExecuteSelect(ShardRouter& router, const geom::Polygon& poly,
                                 const query::ErrorBound& bound,
                                 const core::ExecHooks& hooks) {
  const core::EngineState& base = router.sharded().base();
  if (bound.exact()) return core::ExecuteSelect(base, poly, bound, hooks);
  core::SelectAnswer out;
  Timer timer;
  const double epsilon = bound.EffectiveEpsilon(base.grid);
  const std::shared_ptr<const raster::HierarchicalRaster> hr =
      core::HrForPolygon(base, hooks, core::kAdHocPolygon, poly, epsilon);
  const ObjectKey object = PolygonFingerprint(poly);
  const int level = base.grid.LevelForEpsilon(epsilon);
  std::vector<std::pair<uint64_t, uint32_t>> keyed =
      router.SelectKeyed(*hr, &object, level, bound, hooks,
                         &out.stats.shards_probed, &out.stats.query_cells);
  // Canonicalize exactly like the in-process gather: the unsharded index
  // emits (leaf key, row id) ascending, and re-sorting the shard union by
  // the same key restores that order bit-for-bit.
  std::sort(keyed.begin(), keyed.end());
  out.ids.reserve(keyed.size());
  for (const auto& [key, id] : keyed) out.ids.push_back(id);
  out.stats.plan = query::PlanKind::kPointIndexJoin;
  out.stats.hr_level = level;
  out.stats.achieved_epsilon = base.grid.AchievedEpsilon(level);
  out.stats.index_bytes = router.sharded().IndexBytes();
  out.stats.elapsed_ms = timer.Millis();
  return out;
}

core::AggregateAnswer ExecuteAggregate(ShardRouter& router, join::AggKind agg,
                                       core::Attr attr, double epsilon,
                                       core::Mode mode,
                                       const core::ExecHooks& hooks) {
  return ExecuteAggregate(router, agg, attr, query::ErrorBound::Absolute(epsilon),
                          mode, hooks);
}

join::ResultRange ExecuteCountInPolygon(ShardRouter& router,
                                        const geom::Polygon& poly, double epsilon,
                                        const core::ExecHooks& hooks) {
  return ExecuteCount(router, poly, query::ErrorBound::Absolute(epsilon), hooks)
      .range;
}

std::vector<uint32_t> ExecuteSelectInPolygon(ShardRouter& router,
                                             const geom::Polygon& poly,
                                             double epsilon,
                                             const core::ExecHooks& hooks) {
  return ExecuteSelect(router, poly, query::ErrorBound::Absolute(epsilon), hooks)
      .ids;
}

}  // namespace dbsa::service
