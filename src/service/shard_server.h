// The shard-server layer: each spatial shard of a ShardedState runs
// behind a ShardServer that speaks ONLY the serialized wire format of
// service/transport.h — the single-process rehearsal of a multi-node
// deployment. A ShardServer owns one shard's EngineState slice (points,
// attribute columns, point index), the local→base row id map, and a
// per-shard HR cache of routed cell slices, and knows nothing about the
// other shards or the router.
//
// The client half is ShardRouter: it keeps the routing metadata (the
// ShardedState — curve-run key ranges and leaf bounds are a few dozen
// integers per shard), prunes each query approximation per shard, and
// executes scatter/gather over a Transport. Per pinned plan the results
// are BYTE-IDENTICAL to the in-process sharded engine: cell aggregates
// travel as IEEE-754 bit patterns and merge in ascending shard order;
// selections travel as (leaf key, base row id) pairs and re-sort to the
// canonical (key, row) order (see core/sharded_state.h for the merge
// identity; tested in shard_server_test.cc).
//
// Per-shard HR cache: a shard caches the routed cell slice of each
// approximation it has seen, keyed by (ApproxCache object key, epsilon
// level) — region polygons by table index, ad-hoc polygons by geometry
// fingerprint. The router remembers which shard holds which key and
// sends a reference-only ScatterRequest (no cell payload) on repeat
// queries; a shard that evicted the entry answers kNotCached and the
// router falls back to shipping the cells. Reference requests carry a
// checksum of the full approximation, so a stale or fingerprint-colliding
// entry is detected and re-shipped instead of silently reused.
// QueryService::WarmCache uses the same machinery to pre-warm each
// shard's cache with exactly the regions whose cells route to it.

#ifndef DBSA_SERVICE_SHARD_SERVER_H_
#define DBSA_SERVICE_SHARD_SERVER_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/sharded_state.h"
#include "service/transport.h"
#include "util/thread_annotations.h"

namespace dbsa::service {

/// One shard behind the message seam. Thread-safe: Handle may be called
/// concurrently (the router fans requests out across the service pool).
class ShardServer {
 public:
  struct Options {
    /// Budget for the per-shard cache of routed cell slices.
    size_t cell_cache_budget_bytes = size_t{8} << 20;
    /// Registry the server's dbsa_shard_* metrics live in (labelled with
    /// `shard_index` so several servers share one registry — the loopback
    /// deployment); null gets a private one.
    std::shared_ptr<telemetry::MetricRegistry> registry;
    size_t shard_index = 0;
    /// > 0: a Handle() call exceeding this wall-clock budget emits one
    /// SLOW_SHARD line (with the request's wire trace id) to the sink.
    double slow_handle_ms = 0.0;
    /// Destination of SLOW_SHARD lines; null -> stderr.
    std::function<void(const std::string&)> slow_handle_sink;
    /// Dataset generation this server serves (the snapshot's epoch stamp;
    /// see src/snapshot/). Non-zero: a request pinned to a DIFFERENT
    /// non-zero epoch is rejected with a typed kFailedPrecondition kError
    /// partial — the read-your-epoch guarantee across failover. Zero (the
    /// default) serves any epoch — the in-process/test configuration
    /// where no snapshot defines a generation. Every partial this server
    /// emits echoes this value in GatherPartial::epoch.
    uint64_t serving_epoch = 0;
  };

  /// Serves one shard slice. `state` may be null (an empty shard): every
  /// query then answers zeros. `global_ids[local row] = base row`.
  ShardServer(std::shared_ptr<const core::EngineState> state,
              std::vector<uint32_t> global_ids, const Options& options);
  ShardServer(std::shared_ptr<const core::EngineState> state,
              std::vector<uint32_t> global_ids);

  /// Handles one framed ScatterRequest; always returns a framed
  /// GatherPartial (malformed input yields a kError partial carrying the
  /// decoder's typed StatusCode — kUnimplemented for version-skewed (e.g.
  /// v1) frames, kInvalidArgument for corruption — never UB).
  std::string Handle(const std::string& request_bytes);

  struct Stats {
    uint64_t requests = 0;
    uint64_t parse_errors = 0;
    uint64_t epoch_rejects = 0;  ///< Requests pinned to another epoch.
    size_t cache_entries = 0;
    size_t cache_bytes = 0;
    uint64_t cache_hits = 0;      ///< Reference requests served from cache.
    uint64_t cache_misses = 0;    ///< Reference requests answered kNotCached.
    uint64_t cache_evictions = 0;
  };
  /// Thin read of the registry counters (plus the mutex-guarded cache
  /// directory sizes).
  Stats stats() const;

  /// (object, level) keys currently cached (test introspection).
  std::vector<std::pair<ObjectKey, int>> CachedKeys() const;

  size_t num_points() const { return global_ids_.size(); }

  /// The registry the server records into (the process registry a
  /// scraping listener renders; private if Options carried none).
  const std::shared_ptr<telemetry::MetricRegistry>& registry() const {
    return registry_;
  }

 private:
  using CacheKey = ObjectLevelKey;
  /// Slices are shared, never copied: a hit hands out the pointer under
  /// the lock, so concurrent reference requests do not serialize on a
  /// multi-kilobyte copy.
  using CellsPtr = std::shared_ptr<const std::vector<raster::HrCell>>;
  struct CacheEntry {
    CacheKey key;
    uint64_t checksum = 0;  ///< Of the full approximation (see header).
    CellsPtr cells;
    size_t bytes = 0;
  };
  using LruList = std::list<CacheEntry>;

  GatherPartial Dispatch(const ScatterRequest& request);
  void CachePut(const CacheKey& key, uint64_t checksum,
                std::vector<raster::HrCell> cells);
  CellsPtr CacheGet(const CacheKey& key, uint64_t checksum);

  std::shared_ptr<const core::EngineState> state_;
  std::vector<uint32_t> global_ids_;
  const size_t cache_budget_bytes_;
  Options options_;

  std::shared_ptr<telemetry::MetricRegistry> registry_;
  telemetry::Counter* requests_;
  telemetry::Counter* parse_errors_;
  telemetry::Counter* epoch_rejects_;
  telemetry::Counter* cache_hits_;
  telemetry::Counter* cache_misses_;
  telemetry::Counter* cache_evictions_;
  telemetry::Gauge* cache_entries_gauge_;
  telemetry::Gauge* cache_bytes_gauge_;
  telemetry::Histogram* handle_ms_;

  mutable dbsa::Mutex mu_;
  /// Front = most recently used.
  LruList lru_ DBSA_GUARDED_BY(mu_);
  std::unordered_map<CacheKey, LruList::iterator, ObjectLevelKeyHash> map_
      DBSA_GUARDED_BY(mu_);
  size_t cache_bytes_ DBSA_GUARDED_BY(mu_) = 0;
};

/// Cheap order-sensitive checksum of an approximation's cell list; shipped
/// with cache-reference requests so a shard never serves a cached slice
/// that was pruned from a different approximation.
uint64_t ApproxChecksum(const raster::HrCell* cells, size_t num_cells);

/// The client half of the seam: prunes per shard, scatters serialized
/// requests over the transport, and gathers partials in canonical order.
class ShardRouter {
 public:
  ShardRouter(std::shared_ptr<const core::ShardedState> sharded,
              std::shared_ptr<Transport> transport);

  const core::ShardedState& sharded() const { return *sharded_; }
  Transport& transport() const { return *transport_; }

  /// Pins every outgoing ScatterRequest to dataset generation `epoch`
  /// (stamped into the wire's epoch field): servers of another non-zero
  /// generation reject typed instead of answering from the wrong data.
  /// Zero (the default) is the wildcard — requests accept any serving
  /// epoch. Set once at router construction time (snapshot-loaded
  /// deployments), before queries flow; not synchronized for mid-flight
  /// repinning.
  void set_epoch(uint64_t epoch) { epoch_ = epoch; }
  uint64_t epoch() const { return epoch_; }

  /// Scatter-gather of one approximation over the surviving shards;
  /// byte-identical to the in-process ScatterGatherCells. `object`, when
  /// non-null, keys the per-shard caches. `bound` is the query's contract
  /// as submitted (travels on every ScatterRequest). `touched`, when
  /// non-null, has one flag per shard (multi-polygon callers union them
  /// into ExecStats::shards_probed); `num_surviving`, when non-null,
  /// receives this approximation's surviving-shard count directly.
  join::CellAggregate ScatterGather(const raster::HierarchicalRaster& hr,
                                    const ObjectKey* object, int level,
                                    const query::ErrorBound& bound,
                                    const core::ExecHooks& hooks,
                                    std::atomic<uint32_t>* touched,
                                    size_t* num_surviving = nullptr);

  /// Scatter of a selection: the union of the shards' (leaf key, base
  /// row id) pairs, unsorted (the caller canonicalizes). `num_surviving`
  /// as in ScatterGather; `probe_cells`, when non-null, receives the
  /// total slice cells the shards probed (per-shard-slice accounting,
  /// exact even on cache-reference hits — the partials report it).
  std::vector<std::pair<uint64_t, uint32_t>> SelectKeyed(
      const raster::HierarchicalRaster& hr, const ObjectKey* object, int level,
      const query::ErrorBound& bound, const core::ExecHooks& hooks,
      size_t* num_surviving = nullptr, size_t* probe_cells = nullptr);

  /// Warms the per-shard caches of exactly the shards `hr` routes to with
  /// their pruned slices. Returns the number of shards warmed.
  size_t WarmObject(const ObjectKey& object, int level,
                    const raster::HierarchicalRaster& hr);

  /// Warms ONLY `shard` with its pruned slice of `hr`, iff the
  /// approximation routes there (returns false otherwise). The
  /// post-failover rewarm path: one shard's newly serving endpoint gets
  /// its cache back without re-shipping to the healthy ones.
  bool WarmShard(size_t shard, const ObjectKey& object, int level,
                 const raster::HierarchicalRaster& hr);

 private:
  using Key = ObjectLevelKey;

  /// Completion-driven scatter over `surviving`: every shard's request is
  /// started through Transport::Send (reference-only when the shard is
  /// known to hold the key, inline cells otherwise), the gather blocks
  /// until EVERY completion has landed, then a second wave re-sends
  /// inline cells to the shards that answered kNotCached. Replies land in
  /// any order; the returned partials are indexed by position in
  /// `surviving`, so the caller's ascending-shard fold — and hence byte
  /// identity — is untouched by completion order. Throws StatusException
  /// (first failing shard in ascending order) only after all in-flight
  /// completions have drained. Each wire request records one
  /// "shard_roundtrip" span tagged with its shard and correlation id.
  std::vector<GatherPartial> GatherFromShards(
      ScatterRequest::Kind kind, const ObjectKey* object, int level,
      const query::ErrorBound& bound, uint64_t checksum,
      const raster::HrCell* cells,
      const core::ShardedState::CellRoute* routes, size_t num_cells,
      const core::ExecHooks& hooks, const std::vector<uint32_t>& surviving);

  bool KnownCached(size_t shard, const Key& key) const;
  void MarkCached(size_t shard, const Key& key, bool cached);

  std::shared_ptr<const core::ShardedState> sharded_;
  std::shared_ptr<Transport> transport_;
  uint64_t epoch_ = 0;

  /// Per-shard cap on the advisory key set below — it mirrors the
  /// server-side LRU (which is byte-bounded), so it must not outgrow it:
  /// without a bound, a long-running service streaming distinct ad-hoc
  /// polygons would accumulate fingerprint keys forever.
  static constexpr size_t kMaxKnownKeysPerShard = 4096;

  mutable dbsa::Mutex known_mu_;
  /// Advisory: keys each shard is believed to hold (server eviction or
  /// the cap makes this stale, which only costs a kNotCached round-trip
  /// or an unnecessary inline ship).
  std::vector<std::unordered_map<Key, char, ObjectLevelKeyHash>> known_
      DBSA_GUARDED_BY(known_mu_);
};

// ---- transport-backed executors ---------------------------------------
// Mirrors of the core executors over a ShardedState, with the shard
// probes crossing the message seam. Per pinned plan, results are
// byte-identical to the in-process sharded executors (and hence to the
// unsharded engine). Plan choice feeds the transport's CostPerMessage
// into query::QueryProfile::transport_overhead, so under Mode::kAuto the
// optimizer may legitimately resolve differently than in-process — pin
// the mode to compare executions (same caveat as sharding itself).
// Exact bounds never cross the seam: they execute against the base
// snapshot, identical on every deployment path by construction. Shard
// failures surface as StatusException carrying the wire's typed code.

core::AggregateAnswer ExecuteAggregate(ShardRouter& router, join::AggKind agg,
                                       core::Attr attr,
                                       const query::ErrorBound& bound,
                                       core::Mode mode = core::Mode::kAuto,
                                       const core::ExecHooks& hooks = {});

core::CountAnswer ExecuteCount(ShardRouter& router, const geom::Polygon& poly,
                               const query::ErrorBound& bound,
                               const core::ExecHooks& hooks = {});

core::SelectAnswer ExecuteSelect(ShardRouter& router, const geom::Polygon& poly,
                                 const query::ErrorBound& bound,
                                 const core::ExecHooks& hooks = {});

// Double-epsilon shims (the Absolute(epsilon) case).
core::AggregateAnswer ExecuteAggregate(ShardRouter& router, join::AggKind agg,
                                       core::Attr attr, double epsilon,
                                       core::Mode mode = core::Mode::kAuto,
                                       const core::ExecHooks& hooks = {});

join::ResultRange ExecuteCountInPolygon(ShardRouter& router,
                                        const geom::Polygon& poly, double epsilon,
                                        const core::ExecHooks& hooks = {});

std::vector<uint32_t> ExecuteSelectInPolygon(ShardRouter& router,
                                             const geom::Polygon& poly,
                                             double epsilon,
                                             const core::ExecHooks& hooks = {});

}  // namespace dbsa::service

#endif  // DBSA_SERVICE_SHARD_SERVER_H_
