// The v2 query envelope: what a client hands the serving layer and what
// it gets back.
//
//   Query        WHAT to compute — a closed set of typed descriptors
//                (AggregateSpec / CountSpec / SelectSpec) behind a
//                variant. Adding a query kind means adding a spec type
//                and one visitor branch in the service, not editing an
//                enum switch scattered across five files.
//   ExecOptions  HOW to compute it — the per-query contract: a typed
//                distance bound (query::ErrorBound), an execution-mode
//                hint, a deadline, a cancellation token, and a cap on
//                concurrent shard fan-out.
//   Result       the answer PLUS the achieved side of the contract
//                (BoundReport: epsilon requested vs. grid epsilon
//                actually served, HR level, cells touched, cache and
//                deployment provenance) and a typed Status instead of a
//                string error.
//
// The same envelope runs on every execution path — single-threaded
// engine, pooled service, in-process sharded, shard-server transport
// seam — with byte-identical payloads per pinned plan (the contract
// restated and tested over v2 in tests/query_envelope_test.cc).
//
// The v1 Request/Response surface lives on as a frozen shim in
// service/v1_compat.h.

#ifndef DBSA_SERVICE_QUERY_H_
#define DBSA_SERVICE_QUERY_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <utility>
#include <variant>
#include <vector>

#include "core/engine_state.h"
#include "geom/polygon.h"
#include "join/agg.h"
#include "join/result_range.h"
#include "query/error_bound.h"
#include "util/status.h"

namespace dbsa::service {

// ------------------------------------------------------------ the query

/// SELECT AGG(attr) FROM points, regions GROUP BY region.
struct AggregateSpec {
  join::AggKind agg = join::AggKind::kCount;
  core::Attr attr = core::Attr::kNone;
};

/// COUNT points inside an ad-hoc polygon, with a guaranteed range.
struct CountSpec {
  geom::Polygon poly;
};

/// SELECT ids of points inside an ad-hoc polygon.
struct SelectSpec {
  geom::Polygon poly;
};

/// The open descriptor union. New query kinds extend this variant (and
/// the service's visitor) without touching existing specs.
using QuerySpec = std::variant<AggregateSpec, CountSpec, SelectSpec>;

/// Reporting tag of a spec (Result::kind); tracks the variant order.
enum class QueryKind : uint8_t { kAggregate = 0, kCount = 1, kSelect = 2 };

/// Number of query kinds — pinned to the variant arity so the tag enum
/// and the descriptor union cannot drift apart. Every visitor dispatch
/// site carries an adjacent `static_assert(std::variant_size_v<QuerySpec>
/// == kQueryKindCount)`: adding a query kind is then a compile error at
/// each site that must learn to handle it, not a silent std::visit
/// fallthrough into generic-lambda behaviour.
inline constexpr int kQueryKindCount = 3;
static_assert(std::variant_size_v<QuerySpec> == kQueryKindCount,
              "QuerySpec grew: bump kQueryKindCount, extend QueryKind, then "
              "fix every static_assert(kQueryKindCount == ...) dispatch site");
static_assert(static_cast<int>(QueryKind::kSelect) + 1 == kQueryKindCount,
              "QueryKind must track the variant order and arity");

const char* QueryKindName(QueryKind kind);

/// One query, built from a typed descriptor.
class Query {
 public:
  Query() : spec_(AggregateSpec{}) {}
  explicit Query(QuerySpec spec) : spec_(std::move(spec)) {}

  static Query Aggregate(join::AggKind agg, core::Attr attr = core::Attr::kNone) {
    return Query(AggregateSpec{agg, attr});
  }
  static Query Count(geom::Polygon poly) {
    return Query(CountSpec{std::move(poly)});
  }
  static Query Select(geom::Polygon poly) {
    return Query(SelectSpec{std::move(poly)});
  }

  const QuerySpec& spec() const { return spec_; }
  QueryKind kind() const { return static_cast<QueryKind>(spec_.index()); }

  template <typename Visitor>
  decltype(auto) Visit(Visitor&& visitor) const {
    return std::visit(std::forward<Visitor>(visitor), spec_);
  }

 private:
  QuerySpec spec_;
};

// ---------------------------------------------------------- the options

/// Cooperative cancellation flag, shared between the submitter and the
/// worker. Cancel() any time; the query observes it when it starts
/// executing (queued queries are the common win — a cancelled query that
/// already runs completes normally).
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Per-query execution contract.
struct ExecOptions {
  /// The distance-bound contract (defaults to exact — approximation is
  /// opt-in, exactly as the paper frames it).
  query::ErrorBound bound = query::ErrorBound::Exact();
  /// Plan override hint for aggregations (kAuto = optimizer's choice).
  core::Mode mode = core::Mode::kAuto;
  /// Wall-clock budget measured from Submit; 0 = none. Enforced at
  /// execution start: a query still queued past its deadline answers
  /// kDeadlineExceeded instead of running.
  double deadline_ms = 0.0;
  /// Optional cooperative cancellation (see CancelToken).
  std::shared_ptr<const CancelToken> cancel;
  /// Cap on concurrently in-flight shard probes (and pool fan-out) for
  /// this query; 0 = unlimited. Scheduling only — results are identical
  /// at any cap.
  size_t max_shard_fanout = 0;
};

// ----------------------------------------------------------- the result

/// Which deployment path executed the query (provenance, not semantics —
/// payloads are byte-identical across paths per pinned plan).
enum class ExecPath : uint8_t {
  kLocal = 0,      ///< Unsharded snapshot execution.
  kSharded = 1,    ///< In-process scatter-gather across spatial shards.
  kTransport = 2,  ///< Shard servers behind the serialized message seam.
};

/// Number of ExecPath values (see kQueryKindCount for the convention).
inline constexpr int kExecPathCount = 3;
static_assert(static_cast<int>(ExecPath::kTransport) + 1 == kExecPathCount,
              "ExecPath grew: bump kExecPathCount and fix the asserting "
              "dispatch sites");

const char* ExecPathName(ExecPath path);

/// The achieved side of the distance-bound contract, reported with every
/// successful Result: what was asked, what the grid actually guaranteed,
/// and where the answer came from.
struct BoundReport {
  query::ErrorBound requested;
  /// Hausdorff bound actually guaranteed (cell diagonal of the served
  /// level; 0 for exact answers). <= requested epsilon except when the
  /// request was finer than the finest grid level.
  double epsilon_achieved = 0.0;
  /// Hierarchical-raster level served (-1: no raster involved).
  int hr_level = -1;
  /// Approximation cells probed (per shard slice on scattered paths).
  size_t cells_touched = 0;
  size_t hr_cache_hits = 0;
  size_t hr_cache_misses = 0;
  /// Distinct shards that survived pruning (0 on unscattered paths).
  size_t shards_probed = 0;
  ExecPath path = ExecPath::kLocal;
  /// 128-bit trace id of this query (telemetry/trace.h) — correlate the
  /// Result with its slow-query line or scraped spans. Zero when the
  /// service ran with tracing disabled. Provenance only, like `path`:
  /// payloads are byte-identical traced or not.
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
};

/// Response to one query: the payload field matching `kind`, the achieved
/// bound, and a typed status. A failed query carries its Status (never a
/// loose string) and default payloads — Drain still never loses a ticket.
struct Result {
  uint64_t ticket = 0;
  QueryKind kind = QueryKind::kAggregate;
  Status status;

  core::AggregateAnswer aggregate;  ///< kAggregate.
  join::ResultRange range;          ///< kCount.
  std::vector<uint32_t> ids;        ///< kSelect.

  BoundReport bound;

  bool ok() const { return status.ok(); }
};

/// Structural validation shared by every submission path: the bound's own
/// Validate() plus per-spec rules (SUM/AVG need a column, polygons need
/// >= 3 vertices). OK does not mean the execution cannot fail — it means
/// the envelope is well-formed.
Status ValidateQuery(const Query& query, const ExecOptions& options);

}  // namespace dbsa::service

#endif  // DBSA_SERVICE_QUERY_H_
