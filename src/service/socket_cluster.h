// In-process socket-cluster scaffolding: the Build-sharded ->
// ShardServer-per-shard -> ShardListener-per-endpoint -> ShardPlacement
// bootstrap shared by the bench (service_throughput RunSocket), the demo
// client (examples/socket_cluster_demo.cpp) and the transport tests.
// One definition so every consumer stands up the SAME cluster shape —
// drift here would silently bench or test a different deployment than
// the one docs/operations.md documents. Real deployments use one
// shard_server_main process per endpoint instead (same seam, external
// processes).

#ifndef DBSA_SERVICE_SOCKET_CLUSTER_H_
#define DBSA_SERVICE_SOCKET_CLUSTER_H_

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/sharded_state.h"
#include "service/placement.h"
#include "service/shard_server.h"
#include "service/socket_transport.h"

namespace dbsa::service {

/// A complete in-process cluster: shard servers behind real TCP
/// listeners on ephemeral localhost ports (optionally with a replica
/// listener per shard serving the same slice) and a placement naming
/// them. Destruction stops every listener.
struct InProcessShardCluster {
  std::shared_ptr<const core::ShardedState> sharded;
  std::vector<std::unique_ptr<ShardServer>> servers;
  std::vector<std::unique_ptr<ShardListener>> primaries;
  /// Empty unless with_replicas was set.
  std::vector<std::unique_ptr<ShardListener>> replicas;
  ShardPlacement placement;
};

struct InProcessShardClusterOptions {
  /// Add a replica listener per shard (same server, failover port).
  bool with_replicas = false;
  /// Hilbert ordering granularity for the shard cuts (must match the
  /// client's routing build — ShardingOptions::hilbert_level).
  int hilbert_level = 16;
  /// Optional wrapper around shard s's PRIMARY handler — the fault
  /// injection seam (tests drop connections / stall shards through it).
  /// Replicas always get the plain handler.
  std::function<ShardListener::Handler(size_t, ShardListener::Handler)>
      wrap_primary;
};

inline InProcessShardCluster MakeInProcessShardCluster(
    const std::shared_ptr<const core::EngineState>& base, size_t num_shards,
    const InProcessShardClusterOptions& options = {}) {
  InProcessShardCluster cluster;
  core::ShardingOptions sharding;
  sharding.num_shards = num_shards;
  sharding.hilbert_level = options.hilbert_level;
  cluster.sharded = core::ShardedState::Build(base, sharding);
  for (size_t s = 0; s < cluster.sharded->num_shards(); ++s) {
    const core::ShardedState::Shard& shard = cluster.sharded->shard(s);
    // One registry per server, served by its listener's kStatsRequest
    // path — the same shape as a real shard_server_main process, so a
    // wire-level scrape of this cluster exercises the production seam.
    ShardServer::Options server_options;
    server_options.shard_index = s;
    cluster.servers.push_back(std::make_unique<ShardServer>(
        shard.state, shard.global_ids, server_options));
    ShardServer* server = cluster.servers.back().get();
    const ShardListener::Handler handler =
        [server](const std::string& request) { return server->Handle(request); };
    ShardListener::Options listen_options;
    listen_options.registry = server->registry();
    cluster.primaries.push_back(std::make_unique<ShardListener>(
        options.wrap_primary ? options.wrap_primary(s, handler) : handler,
        listen_options));
    if (options.with_replicas) {
      cluster.replicas.push_back(
          std::make_unique<ShardListener>(handler, listen_options));
      cluster.placement.Add(cluster.primaries.back()->endpoint(),
                            cluster.replicas.back()->endpoint());
    } else {
      cluster.placement.Add(cluster.primaries.back()->endpoint());
    }
  }
  return cluster;
}

}  // namespace dbsa::service

#endif  // DBSA_SERVICE_SOCKET_CLUSTER_H_
