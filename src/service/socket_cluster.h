// In-process socket-cluster scaffolding: the Build-sharded ->
// ShardServer-per-shard -> ShardListener-per-endpoint -> ShardPlacement
// bootstrap shared by the bench (service_throughput RunSocket), the demo
// client (examples/socket_cluster_demo.cpp) and the transport tests.
// One definition so every consumer stands up the SAME cluster shape —
// drift here would silently bench or test a different deployment than
// the one docs/operations.md documents. Real deployments use one
// shard_server_main process per endpoint instead (same seam, external
// processes).

#ifndef DBSA_SERVICE_SOCKET_CLUSTER_H_
#define DBSA_SERVICE_SOCKET_CLUSTER_H_

#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "core/sharded_state.h"
#include "service/placement.h"
#include "service/shard_server.h"
#include "service/socket_transport.h"

namespace dbsa::service {

/// A complete in-process cluster: shard servers behind real TCP
/// listeners on ephemeral localhost ports (optionally with a replica
/// listener per shard serving the same slice) and a placement naming
/// them. Destruction stops every listener.
struct InProcessShardCluster {
  std::shared_ptr<const core::ShardedState> sharded;
  std::vector<std::unique_ptr<ShardServer>> servers;
  std::vector<std::unique_ptr<ShardListener>> primaries;
  /// Empty unless with_replicas was set.
  std::vector<std::unique_ptr<ShardListener>> replicas;
  /// Empty unless replica_own_server was set (the replica's servers,
  /// indexed by shard; otherwise replicas share `servers`).
  std::vector<std::unique_ptr<ShardServer>> replica_servers;
  ShardPlacement placement;
};

struct InProcessShardClusterOptions {
  /// Add a replica listener per shard (same server, failover port).
  bool with_replicas = false;
  /// Give each replica listener its OWN ShardServer (own slice cache,
  /// own registry) instead of sharing the primary's — the faithful
  /// model of a real deployment, where the replica is a separate
  /// process and fails over COLD. Leave false where the replica's
  /// cache temperature does not matter (most tests).
  bool replica_own_server = false;
  /// Hilbert ordering granularity for the shard cuts (must match the
  /// client's routing build — ShardingOptions::hilbert_level).
  int hilbert_level = 16;
  /// Every server's ShardServer::Options::serving_epoch: 0 serves any
  /// request; nonzero pins the cluster to one dataset generation (the
  /// snapshot-loaded shape — src/snapshot/snapshot.h).
  uint64_t serving_epoch = 0;
  /// Optional wrapper around shard s's PRIMARY handler — the fault
  /// injection seam (tests drop connections / stall shards through it).
  /// Replicas always get the plain handler.
  std::function<ShardListener::Handler(size_t, ShardListener::Handler)>
      wrap_primary;
};

/// Stands the cluster up over an ALREADY-BUILT sharded state (slices
/// materialized) — the seam for snapshot-loaded clusters, where the
/// state comes from snapshot::AssembleClusterState instead of a build.
inline InProcessShardCluster MakeInProcessShardClusterFromState(
    std::shared_ptr<const core::ShardedState> sharded,
    const InProcessShardClusterOptions& options = {}) {
  InProcessShardCluster cluster;
  cluster.sharded = std::move(sharded);
  for (size_t s = 0; s < cluster.sharded->num_shards(); ++s) {
    const core::ShardedState::Shard& shard = cluster.sharded->shard(s);
    // One registry per server, served by its listener's kStatsRequest
    // path — the same shape as a real shard_server_main process, so a
    // wire-level scrape of this cluster exercises the production seam.
    ShardServer::Options server_options;
    server_options.shard_index = s;
    server_options.serving_epoch = options.serving_epoch;
    cluster.servers.push_back(std::make_unique<ShardServer>(
        shard.state, shard.global_ids, server_options));
    ShardServer* server = cluster.servers.back().get();
    const ShardListener::Handler handler =
        [server](const std::string& request) { return server->Handle(request); };
    ShardListener::Options listen_options;
    listen_options.registry = server->registry();
    cluster.primaries.push_back(std::make_unique<ShardListener>(
        options.wrap_primary ? options.wrap_primary(s, handler) : handler,
        listen_options));
    if (options.with_replicas) {
      ShardListener::Handler replica_handler = handler;
      ShardListener::Options replica_listen_options = listen_options;
      if (options.replica_own_server) {
        cluster.replica_servers.push_back(std::make_unique<ShardServer>(
            shard.state, shard.global_ids, server_options));
        ShardServer* replica_server = cluster.replica_servers.back().get();
        replica_handler = [replica_server](const std::string& request) {
          return replica_server->Handle(request);
        };
        replica_listen_options.registry = replica_server->registry();
      }
      cluster.replicas.push_back(std::make_unique<ShardListener>(
          replica_handler, replica_listen_options));
      cluster.placement.Add(cluster.primaries.back()->endpoint(),
                            cluster.replicas.back()->endpoint());
    } else {
      cluster.placement.Add(cluster.primaries.back()->endpoint());
    }
  }
  return cluster;
}

inline InProcessShardCluster MakeInProcessShardCluster(
    const std::shared_ptr<const core::EngineState>& base, size_t num_shards,
    const InProcessShardClusterOptions& options = {}) {
  core::ShardingOptions sharding;
  sharding.num_shards = num_shards;
  sharding.hilbert_level = options.hilbert_level;
  return MakeInProcessShardClusterFromState(
      core::ShardedState::Build(base, sharding), options);
}

}  // namespace dbsa::service

#endif  // DBSA_SERVICE_SOCKET_CLUSTER_H_
