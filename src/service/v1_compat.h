// FROZEN v1 serving surface — thin shims over the v2 envelope
// (service/query.h). Request/Response and the Submit/Drain/typed-future
// entry points they feed keep one release of source compatibility while
// callers migrate (see the README's v1 -> v2 table).
//
// Do not grow this surface: scripts/check_v1_freeze.sh fails CI if this
// header or v1_compat.cc gains lines. New capabilities belong on the
// envelope, not here.

#ifndef DBSA_SERVICE_V1_COMPAT_H_
#define DBSA_SERVICE_V1_COMPAT_H_

#include <string>
#include <vector>

#include "service/query.h"

namespace dbsa::service {

/// v1: one queued request. kind selects which fields matter.
struct Request {
  enum class Kind { kAggregate, kCountInPolygon, kSelectInPolygon };

  Kind kind = Kind::kAggregate;
  // kAggregate:
  join::AggKind agg = join::AggKind::kCount;
  core::Attr attr = core::Attr::kNone;
  core::Mode mode = core::Mode::kAuto;
  // All kinds:
  double epsilon = 0.0;
  // kCountInPolygon / kSelectInPolygon:
  geom::Polygon poly;

  static Request MakeAggregate(join::AggKind agg, core::Attr attr, double epsilon,
                               core::Mode mode = core::Mode::kAuto);
  static Request MakeCount(geom::Polygon poly, double epsilon);
  static Request MakeSelect(geom::Polygon poly, double epsilon);
};

/// v1: response to one request; `error` is the stringly-typed failure
/// channel the v2 Result replaces with a Status.
struct Response {
  uint64_t ticket = 0;
  Request::Kind kind = Request::Kind::kAggregate;
  core::AggregateAnswer aggregate;
  join::ResultRange range;
  std::vector<uint32_t> ids;
  std::string error;  ///< Empty iff the query succeeded.

  bool ok() const { return error.empty(); }
};

/// v1 -> v2: the request's payload as an envelope Query.
Query QueryFromV1(const Request& request);

/// v1 -> v2: epsilon becomes an absolute distance bound, mode rides
/// along; no deadline, no cancellation, unlimited fan-out.
ExecOptions OptionsFromV1(const Request& request);

/// v2 -> v1: payloads move over; a non-OK status collapses to its
/// message text (code dropped — v1 never had one).
Response ResponseFromResult(Result result);

/// v2 -> v1 exception behavior for the typed-future shims: v1 validation
/// failures threw std::invalid_argument, so kInvalidArgument must keep
/// throwing it (a frozen caller's catch handlers still work); every
/// other code throws StatusException.
[[noreturn]] void ThrowLegacy(const Status& status);

}  // namespace dbsa::service

#endif  // DBSA_SERVICE_V1_COMPAT_H_
