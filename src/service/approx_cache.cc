#include "service/approx_cache.h"

#include <utility>

#include "util/determinism.h"

namespace dbsa::service {

namespace {

inline uint64_t FnvMixBits(uint64_t h, uint64_t bits) {
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (bits >> shift) & 0xffu;
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t FnvMix(uint64_t h, double v) {
  return FnvMixBits(h, util::BitCast<uint64_t>(v));
}

/// One FNV-1a stream over a ring's vertex bytes plus a separator, so
/// ((a), (b)) and ((a, b)) hash differently.
inline uint64_t FnvRing(uint64_t h, const geom::Ring& ring) {
  for (const geom::Point& p : ring) {
    h = FnvMix(h, p.x);
    h = FnvMix(h, p.y);
  }
  h ^= 0x1fu;
  h *= 0x100000001b3ULL;
  return h;
}

}  // namespace

ObjectKey PolygonFingerprint(const geom::Polygon& poly) {
  // Two independent streams: `lo` is FNV-1a over the raw vertex bytes,
  // `hi` runs over the same bytes from a different offset basis and mixes
  // in the ring/vertex structure, so the two words never degenerate into
  // one 64-bit quantity with a constant offset.
  uint64_t lo = 0xcbf29ce484222325ULL;  // FNV-1a offset basis.
  lo = FnvRing(lo, poly.outer());
  for (const geom::Ring& hole : poly.holes()) lo = FnvRing(lo, hole);

  uint64_t hi = 0x84222325cbf29ce4ULL;  // Rotated basis: independent stream.
  hi = FnvMixBits(hi, poly.outer().size());
  for (const geom::Point& p : poly.outer()) {
    hi = FnvMix(hi, p.y);  // Swapped coordinate order vs the `lo` stream.
    hi = FnvMix(hi, p.x);
  }
  hi = FnvMixBits(hi, poly.holes().size());
  for (const geom::Ring& hole : poly.holes()) {
    hi = FnvMixBits(hi, hole.size());
    for (const geom::Point& p : hole) {
      hi = FnvMix(hi, p.y);
      hi = FnvMix(hi, p.x);
    }
  }
  return ObjectKey(hi | (1ULL << 63), lo);
}

GeometrySummary GeometrySummary::Of(const geom::Polygon& poly) {
  GeometrySummary s;
  s.num_rings = 1 + poly.holes().size();
  s.num_vertices = poly.NumVertices();
  s.bounds = poly.bounds();
  if (!poly.outer().empty()) s.first_vertex = poly.outer().front();
  return s;
}

bool GeometrySummary::Matches(const GeometrySummary& o) const {
  return num_rings == o.num_rings && num_vertices == o.num_vertices &&
         bounds.min.x == o.bounds.min.x && bounds.min.y == o.bounds.min.y &&
         bounds.max.x == o.bounds.max.x && bounds.max.y == o.bounds.max.y &&
         first_vertex.x == o.first_vertex.x && first_vertex.y == o.first_vertex.y;
}

ApproxCache::ApproxCache(size_t budget_bytes,
                         std::shared_ptr<telemetry::MetricRegistry> registry)
    : budget_bytes_(budget_bytes),
      registry_(registry ? std::move(registry)
                         : std::make_shared<telemetry::MetricRegistry>()),
      hits_(registry_->GetCounter("dbsa_approx_cache_hits_total")),
      misses_(registry_->GetCounter("dbsa_approx_cache_misses_total")),
      evictions_(registry_->GetCounter("dbsa_approx_cache_evictions_total")),
      collisions_(registry_->GetCounter("dbsa_approx_cache_collisions_total")),
      entries_gauge_(registry_->GetGauge("dbsa_approx_cache_entries")),
      bytes_gauge_(registry_->GetGauge("dbsa_approx_cache_bytes_used")) {
  registry_->GetGauge("dbsa_approx_cache_budget_bytes")
      ->Set(static_cast<double>(budget_bytes_));
}

void ApproxCache::UpdateGaugesLocked() {
  entries_gauge_->Set(static_cast<double>(map_.size()));
  bytes_gauge_->Set(static_cast<double>(bytes_used_));
}

ApproxCache::HrPtr ApproxCache::GetOrBuild(const ObjectKey& object_id, int level,
                                           const Builder& build, bool* built,
                                           const geom::Polygon* geometry) {
  if (built != nullptr) *built = false;
  const Key key{object_id, level};
  GeometrySummary summary;
  const bool verify = geometry != nullptr;
  if (verify) summary = GeometrySummary::Of(*geometry);

  std::shared_future<HrPtr> wait_on;
  std::promise<HrPtr> promise;
  uint64_t my_generation = 0;
  bool build_uncached = false;
  {
    dbsa::MutexLock lock(mu_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      if (verify && it->second->has_summary && !summary.Matches(it->second->summary)) {
        // Fingerprint collision: the cached entry was built from different
        // geometry. Drop it and fall through to a fresh build under the
        // same key (last writer wins; both geometries stay correct).
        collisions_->Add(1);
        EraseEntryLocked(it->second);
        map_.erase(it);
        UpdateGaugesLocked();
      } else {
        hits_->Add(1);
        lru_.splice(lru_.begin(), lru_, it->second);  // Promote.
        return it->second->hr;
      }
    }
    const auto flight = inflight_.find(key);
    if (flight != inflight_.end()) {
      if (verify && flight->second.has_summary &&
          !summary.Matches(flight->second.summary)) {
        // Collision against an in-flight build of different geometry: do
        // not wait on (or poison) the other build — construct our own
        // uncached result after dropping the lock.
        collisions_->Add(1);
        misses_->Add(1);
        build_uncached = true;
      } else {
        hits_->Add(1);  // No construction on this thread.
        wait_on = flight->second.future;
      }
    } else {
      misses_->Add(1);
      my_generation = generation_;
      Inflight flight_entry;
      flight_entry.future = promise.get_future().share();
      flight_entry.has_summary = verify;
      flight_entry.summary = summary;
      inflight_.emplace(key, std::move(flight_entry));
    }
  }
  if (build_uncached) {
    if (built != nullptr) *built = true;
    return std::make_shared<const raster::HierarchicalRaster>(build());
  }
  if (wait_on.valid()) return wait_on.get();
  if (built != nullptr) *built = true;

  // Build outside the lock — constructions of different keys proceed in
  // parallel, and waiting threads block on the future, not the mutex.
  HrPtr hr;
  try {
    hr = std::make_shared<const raster::HierarchicalRaster>(build());
  } catch (...) {
    {
      dbsa::MutexLock lock(mu_);
      inflight_.erase(key);  // The key stays retryable.
    }
    promise.set_exception(std::current_exception());
    throw;
  }
  const size_t bytes = hr->MemoryBytes();
  {
    dbsa::MutexLock lock(mu_);
    inflight_.erase(key);
    // A Clear() issued mid-build invalidates this generation: hand the
    // result to the waiters but do not resurrect it into the cache.
    if (generation_ == my_generation && bytes <= budget_bytes_ &&
        map_.find(key) == map_.end()) {
      Entry entry;
      entry.key = key;
      entry.hr = hr;
      entry.bytes = bytes;
      entry.has_summary = verify;
      entry.summary = summary;
      lru_.push_front(std::move(entry));
      map_.emplace(key, lru_.begin());
      bytes_used_ += bytes;
      EvictToBudgetLocked();
      UpdateGaugesLocked();
    }
  }
  promise.set_value(hr);
  return hr;
}

ApproxCache::HrPtr ApproxCache::Peek(const ObjectKey& object_id, int level) const {
  const Key key{object_id, level};
  dbsa::MutexLock lock(mu_);
  const auto it = map_.find(key);
  return it != map_.end() ? it->second->hr : nullptr;
}

ApproxCache::Stats ApproxCache::stats() const {
  dbsa::MutexLock lock(mu_);
  Stats s;
  s.hits = static_cast<size_t>(hits_->Value());
  s.misses = static_cast<size_t>(misses_->Value());
  s.evictions = static_cast<size_t>(evictions_->Value());
  s.collisions = static_cast<size_t>(collisions_->Value());
  s.entries = map_.size();
  s.bytes_used = bytes_used_;
  s.budget_bytes = budget_bytes_;
  return s;
}

void ApproxCache::Clear() {
  dbsa::MutexLock lock(mu_);
  map_.clear();
  lru_.clear();
  bytes_used_ = 0;
  ++generation_;
  UpdateGaugesLocked();
}

void ApproxCache::EraseEntryLocked(LruList::iterator it) {
  bytes_used_ -= it->bytes;
  lru_.erase(it);
}

void ApproxCache::EvictToBudgetLocked() {
  while (bytes_used_ > budget_bytes_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    bytes_used_ -= victim.bytes;
    map_.erase(victim.key);
    lru_.pop_back();
    evictions_->Add(1);
  }
}

}  // namespace dbsa::service
