#include "service/approx_cache.h"

#include <cstring>
#include <utility>

namespace dbsa::service {

namespace {

inline uint64_t FnvMix(uint64_t h, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int shift = 0; shift < 64; shift += 8) {
    h ^= (bits >> shift) & 0xffu;
    h *= 0x100000001b3ULL;
  }
  return h;
}

inline uint64_t FnvRing(uint64_t h, const geom::Ring& ring) {
  for (const geom::Point& p : ring) {
    h = FnvMix(h, p.x);
    h = FnvMix(h, p.y);
  }
  // Ring separator so ((a), (b)) and ((a, b)) hash differently.
  h ^= 0x1fu;
  h *= 0x100000001b3ULL;
  return h;
}

}  // namespace

uint64_t PolygonFingerprint(const geom::Polygon& poly) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis.
  h = FnvRing(h, poly.outer());
  for (const geom::Ring& hole : poly.holes()) h = FnvRing(h, hole);
  return h | (1ULL << 63);
}

ApproxCache::ApproxCache(size_t budget_bytes) : budget_bytes_(budget_bytes) {}

ApproxCache::HrPtr ApproxCache::GetOrBuild(uint64_t object_id, int level,
                                           const Builder& build, bool* built) {
  if (built != nullptr) *built = false;
  const Key key{object_id, level};
  std::shared_future<HrPtr> wait_on;
  std::promise<HrPtr> promise;
  uint64_t my_generation = 0;
  {
    std::unique_lock<std::mutex> lock(mu_);
    const auto it = map_.find(key);
    if (it != map_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);  // Promote.
      return it->second->hr;
    }
    const auto flight = inflight_.find(key);
    if (flight != inflight_.end()) {
      ++hits_;  // No construction on this thread.
      wait_on = flight->second;
    } else {
      ++misses_;
      my_generation = generation_;
      inflight_.emplace(key, promise.get_future().share());
    }
  }
  if (wait_on.valid()) return wait_on.get();
  if (built != nullptr) *built = true;

  // Build outside the lock — constructions of different keys proceed in
  // parallel, and waiting threads block on the future, not the mutex.
  HrPtr hr;
  try {
    hr = std::make_shared<const raster::HierarchicalRaster>(build());
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      inflight_.erase(key);  // The key stays retryable.
    }
    promise.set_exception(std::current_exception());
    throw;
  }
  const size_t bytes = hr->MemoryBytes();
  {
    std::unique_lock<std::mutex> lock(mu_);
    inflight_.erase(key);
    // A Clear() issued mid-build invalidates this generation: hand the
    // result to the waiters but do not resurrect it into the cache.
    if (generation_ == my_generation && bytes <= budget_bytes_) {
      lru_.push_front(Entry{key, hr, bytes});
      map_.emplace(key, lru_.begin());
      bytes_used_ += bytes;
      EvictToBudgetLocked();
    }
  }
  promise.set_value(hr);
  return hr;
}

ApproxCache::HrPtr ApproxCache::Peek(uint64_t object_id, int level) const {
  const Key key{object_id, level};
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = map_.find(key);
  return it != map_.end() ? it->second->hr : nullptr;
}

ApproxCache::Stats ApproxCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.entries = map_.size();
  s.bytes_used = bytes_used_;
  s.budget_bytes = budget_bytes_;
  return s;
}

void ApproxCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  map_.clear();
  lru_.clear();
  bytes_used_ = 0;
  ++generation_;
}

void ApproxCache::EvictToBudgetLocked() {
  while (bytes_used_ > budget_bytes_ && lru_.size() > 1) {
    const Entry& victim = lru_.back();
    bytes_used_ -= victim.bytes;
    map_.erase(victim.key);
    lru_.pop_back();
    ++evictions_;
  }
}

}  // namespace dbsa::service
