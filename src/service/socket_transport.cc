#include "service/socket_transport.h"

#include <errno.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <system_error>
#include <utility>

#include "util/check.h"
#include "util/determinism.h"

namespace dbsa::service {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

void SetNoDelay(int fd) {
  // Request/response RPC with small frames: without TCP_NODELAY the
  // Nagle + delayed-ACK interaction turns every roundtrip into ~40 ms.
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// poll() for `events` on fd within the deadline. OK when ready,
/// kDeadlineExceeded on timeout, kUnavailable on poll failure.
Status PollFor(int fd, short events, const Deadline& deadline, const char* op) {
  while (true) {
    struct pollfd p;
    p.fd = fd;
    p.events = events;
    p.revents = 0;
    const int timeout = deadline.RemainingMs();
    if (!deadline.infinite() && timeout <= 0) {
      return Status::DeadlineExceeded(std::string(op) + " timed out");
    }
    const int rc = poll(&p, 1, timeout);
    if (rc > 0) return Status::OK();  // Ready (POLLERR/HUP surface on the op).
    if (rc == 0) {
      return Status::DeadlineExceeded(std::string(op) + " timed out");
    }
    if (errno == EINTR) continue;
    return Status::Unavailable(Errno("poll"));
  }
}

/// Reads exactly n bytes. kUnavailable on EOF/reset, kDeadlineExceeded
/// on timeout.
Status RecvExactly(int fd, char* out, size_t n, const Deadline& deadline) {
  size_t off = 0;
  while (off < n) {
    const ssize_t r = recv(fd, out + off, n - off, 0);
    if (r > 0) {
      off += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) return Status::Unavailable("connection closed by peer");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const Status ready = PollFor(fd, POLLIN, deadline, "recv");
      if (!ready.ok()) return ready;
      continue;
    }
    return Status::Unavailable(Errno("recv"));
  }
  return Status::OK();
}

uint32_t LoadLe32(const char* p) {
  // Supported targets are little-endian (same convention as transport.cc).
  return dbsa::util::LoadWire<uint32_t>(p);
}

}  // namespace

int Deadline::RemainingMs() const {
  if (infinite()) return -1;
  const auto now = std::chrono::steady_clock::now();
  if (now >= at) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(at - now).count();
  // +1: round up so a sub-millisecond remainder still polls, not spins.
  return static_cast<int>(std::min<int64_t>(ms + 1, 1 << 30));
}

Status SendAll(int fd, const char* data, size_t n, const Deadline& deadline) {
  size_t off = 0;
  while (off < n) {
    // MSG_NOSIGNAL: a peer that died mid-write must yield EPIPE, not kill
    // the process with SIGPIPE.
    const ssize_t w = send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const Status ready = PollFor(fd, POLLOUT, deadline, "send");
      if (!ready.ok()) return ready;
      continue;
    }
    return Status::Unavailable(Errno("send"));
  }
  return Status::OK();
}

StatusOr<std::string> ReadFrame(int fd, size_t max_frame_bytes,
                                const Deadline& deadline,
                                const Deadline* first_byte_deadline) {
  char prefix[4];
  // The wait for the FIRST byte may be capped tighter than the rest of
  // the frame: once the peer has started answering, the transfer is
  // making progress and gets the full deadline.
  const Status got_first =
      RecvExactly(fd, prefix, 1,
                  first_byte_deadline != nullptr ? *first_byte_deadline : deadline);
  if (!got_first.ok()) return got_first;
  const Status got_prefix =
      RecvExactly(fd, prefix + 1, sizeof(prefix) - 1, deadline);
  if (!got_prefix.ok()) return got_prefix;
  const uint32_t length = LoadLe32(prefix);
  // A frame payload is at least magic+version+type (4 bytes, see
  // transport.h). Anything outside the window means the stream is not
  // speaking our framing at all — there is no way to resynchronize, so
  // the caller must drop the connection.
  if (length < 4 || static_cast<size_t>(length) > max_frame_bytes) {
    return Status::InvalidArgument("frame length " + std::to_string(length) +
                                   " outside [4, " +
                                   std::to_string(max_frame_bytes) + "]");
  }
  std::string frame;
  frame.resize(kWireLengthSize + static_cast<size_t>(length));
  // dbsa-lint-allow(memcpy): splicing the already-received length prefix
  // back onto the frame — char-to-char of bytes the peer sent, no struct
  // and no padding can be involved.
  std::copy(prefix, prefix + sizeof(prefix), &frame[0]);
  const Status got_body =
      RecvExactly(fd, &frame[4], static_cast<size_t>(length), deadline);
  if (!got_body.ok()) return got_body;
  return frame;
}

StatusOr<int> DialTcp(const Endpoint& endpoint, const Deadline& deadline) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string port = std::to_string(endpoint.port);
  const int rc = getaddrinfo(endpoint.host.c_str(), port.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::Unavailable("resolve " + endpoint.ToString() + ": " +
                               gai_strerror(rc));
  }
  Status last = Status::Unavailable("no addresses for " + endpoint.ToString());
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = socket(ai->ai_family, ai->ai_socktype | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          ai->ai_protocol);
    if (fd < 0) {
      last = Status::Unavailable(Errno("socket"));
      continue;
    }
    SetNoDelay(fd);
    if (connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      freeaddrinfo(res);
      return fd;
    }
    if (errno != EINPROGRESS) {
      last = Status::Unavailable(endpoint.ToString() + ": " + Errno("connect"));
      close(fd);
      continue;
    }
    const Status ready = PollFor(fd, POLLOUT, deadline, "connect");
    if (!ready.ok()) {
      close(fd);
      if (ready.code() == StatusCode::kDeadlineExceeded) {
        freeaddrinfo(res);
        return Status::DeadlineExceeded("connect to " + endpoint.ToString() +
                                        " timed out");
      }
      last = ready;
      continue;
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 || err != 0) {
      last = Status::Unavailable(endpoint.ToString() + ": connect: " +
                                 std::strerror(err != 0 ? err : errno));
      close(fd);
      continue;
    }
    freeaddrinfo(res);
    return fd;
  }
  freeaddrinfo(res);
  return last;
}

// ---------------------------------------------------------- SocketTransport

/// One resolved address list, cached per endpoint after the first dial.
/// getaddrinfo is the one blocking call a deadline cannot interrupt, so
/// steady-state reconnects and redial storms must not re-enter it; the
/// entry is dropped when every address fails (a moved host re-resolves).
struct SocketTransport::ResolvedAddrs {
  struct Addr {
    int family = 0;
    int socktype = 0;
    int protocol = 0;
    struct sockaddr_storage addr;
    socklen_t len = 0;
  };
  std::vector<Addr> addrs;
};

SocketTransport::SocketTransport(ShardPlacement placement)
    : SocketTransport(std::move(placement), Options()) {}

SocketTransport::SocketTransport(ShardPlacement placement, const Options& options)
    : placement_(std::move(placement)),
      options_(options),
      registry_(options.registry
                    ? options.registry
                    : std::make_shared<telemetry::MetricRegistry>()),
      messages_(registry_->GetCounter("dbsa_socket_messages_total")),
      request_bytes_(registry_->GetCounter("dbsa_socket_request_bytes_total")),
      response_bytes_(registry_->GetCounter("dbsa_socket_response_bytes_total")),
      dials_(registry_->GetCounter("dbsa_socket_dials_total")),
      reconnects_(registry_->GetCounter("dbsa_socket_reconnects_total")),
      failovers_(registry_->GetCounter("dbsa_socket_failovers_total")),
      timeouts_(registry_->GetCounter("dbsa_socket_timeouts_total")),
      transport_errors_(
          registry_->GetCounter("dbsa_socket_transport_errors_total")),
      hedges_(registry_->GetCounter("dbsa_socket_hedges_total")),
      hedge_wins_(registry_->GetCounter("dbsa_socket_hedge_wins_total")),
      resolves_(registry_->GetCounter("dbsa_socket_resolves_total")) {
  DBSA_CHECK(placement_.num_shards() > 0);
  DBSA_CHECK(options_.max_dial_attempts >= 1);
  muxes_.reserve(placement_.num_shards());
  roundtrip_ms_.reserve(placement_.num_shards());
  for (size_t s = 0; s < placement_.num_shards(); ++s) {
    muxes_.push_back(std::make_unique<Mux>());
    roundtrip_ms_.push_back(registry_->GetHistogram(
        "dbsa_socket_roundtrip_ms{shard=\"" + std::to_string(s) + "\"}"));
  }
}

namespace {
void WakeMux(const int* wake_fd) {
  const char byte = 'w';
  // EAGAIN (pipe full) is fine: a wake is already pending.
  (void)!write(wake_fd[1], &byte, 1);
}
}  // namespace

SocketTransport::~SocketTransport() {
  for (const std::unique_ptr<Mux>& mux : muxes_) {
    bool started;
    {
      dbsa::MutexLock lock(mux->mu);
      mux->stop = true;
      started = mux->thread_started;
    }
    if (!started) continue;
    WakeMux(mux->wake_fd);
    mux->thread.join();  // The loop fails every pending op on its way out.
    close(mux->wake_fd[0]);
    close(mux->wake_fd[1]);
  }
}

void SocketTransport::CloseIdleConnections() {
  for (const std::unique_ptr<Mux>& mux : muxes_) {
    bool started;
    {
      dbsa::MutexLock lock(mux->mu);
      mux->close_idle = true;
      started = mux->thread_started;
    }
    if (started) WakeMux(mux->wake_fd);
  }
}

const Endpoint& SocketTransport::EndpointOf(size_t shard, int which) const {
  const ShardPlacement::Entry& entry = placement_.shards[shard];
  return which == kPrimary ? entry.primary : entry.replica;
}

bool SocketTransport::HasEndpoint(size_t shard, int which) const {
  return which == kPrimary || placement_.shards[shard].has_replica;
}

StatusOr<int> SocketTransport::DialCached(const Endpoint& endpoint,
                                          const Deadline& deadline) {
  const std::string key = endpoint.ToString();
  std::shared_ptr<ResolvedAddrs> cached;
  {
    dbsa::MutexLock lock(resolve_mu_);
    auto it = resolve_cache_.find(key);
    if (it != resolve_cache_.end()) cached = it->second;
  }
  if (cached == nullptr) {
    struct addrinfo hints;
    std::memset(&hints, 0, sizeof(hints));
    hints.ai_family = AF_UNSPEC;
    hints.ai_socktype = SOCK_STREAM;
    struct addrinfo* res = nullptr;
    const std::string port = std::to_string(endpoint.port);
    resolves_->Add(1);
    const int rc = getaddrinfo(endpoint.host.c_str(), port.c_str(), &hints, &res);
    if (rc != 0) {
      return Status::Unavailable("resolve " + key + ": " + gai_strerror(rc));
    }
    cached = std::make_shared<ResolvedAddrs>();
    for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
      if (ai->ai_addrlen > sizeof(sockaddr_storage)) continue;
      ResolvedAddrs::Addr addr;
      addr.family = ai->ai_family;
      addr.socktype = ai->ai_socktype;
      addr.protocol = ai->ai_protocol;
      // dbsa-lint-allow(memcpy): POSIX sockaddr blob into sockaddr_storage —
      // runtime-sized kernel-owned bytes, never encoded onto the dbsa wire.
      std::memcpy(&addr.addr, ai->ai_addr, ai->ai_addrlen);
      addr.len = ai->ai_addrlen;
      cached->addrs.push_back(addr);
    }
    freeaddrinfo(res);
    if (cached->addrs.empty()) {
      return Status::Unavailable("no addresses for " + key);
    }
    dbsa::MutexLock lock(resolve_mu_);
    resolve_cache_[key] = cached;
  }

  Status last = Status::Unavailable("no addresses for " + key);
  for (const ResolvedAddrs::Addr& addr : cached->addrs) {
    const int fd = socket(addr.family, addr.socktype | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          addr.protocol);
    if (fd < 0) {
      last = Status::Unavailable(Errno("socket"));
      continue;
    }
    SetNoDelay(fd);
    if (connect(fd, reinterpret_cast<const struct sockaddr*>(&addr.addr),
                addr.len) == 0) {
      return fd;
    }
    if (errno != EINPROGRESS) {
      last = Status::Unavailable(key + ": " + Errno("connect"));
      close(fd);
      continue;
    }
    const Status ready = PollFor(fd, POLLOUT, deadline, "connect");
    if (!ready.ok()) {
      close(fd);
      if (ready.code() == StatusCode::kDeadlineExceeded) {
        // The host is there but slow — keep the resolution cached.
        return Status::DeadlineExceeded("connect to " + key + " timed out");
      }
      last = ready;
      continue;
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 || err != 0) {
      last = Status::Unavailable(key + ": connect: " +
                                 std::strerror(err != 0 ? err : errno));
      close(fd);
      continue;
    }
    return fd;
  }
  // Every cached address failed: the host may have moved. Forget the
  // entry so the next dial re-resolves.
  {
    dbsa::MutexLock lock(resolve_mu_);
    resolve_cache_.erase(key);
  }
  return last;
}

void SocketTransport::EnsureThread(size_t shard) {
  Mux& mux = *muxes_[shard];
  dbsa::MutexLock lock(mux.mu);
  if (mux.thread_started) return;
  if (pipe2(mux.wake_fd, O_NONBLOCK | O_CLOEXEC) != 0) {
    throw StatusException(Status::Unavailable(Errno("pipe2")));
  }
  mux.thread = std::thread([this, shard]() { MuxLoop(shard); });
  mux.thread_started = true;
}

uint64_t SocketTransport::Send(size_t shard, std::string request, Done done) {
  if (shard >= num_shards()) {
    done(Status::InvalidArgument("SocketTransport: no such shard " +
                                 std::to_string(shard)));
    return 0;
  }
  const uint64_t correlation =
      next_correlation_.fetch_add(1, std::memory_order_relaxed);
  PatchCorrelation(&request, correlation);
  Op op;
  op.corr = correlation;
  op.request = std::move(request);
  op.done = std::move(done);
  op.deadline = Deadline::After(options_.roundtrip_timeout_ms);
  op.start = std::chrono::steady_clock::now();
  const int hedge_ms = options_.hedge_timeout_ms < 0
                           ? options_.roundtrip_timeout_ms / 2
                           : options_.hedge_timeout_ms;
  if (HasEndpoint(shard, kReplica) && hedge_ms > 0 && !op.deadline.infinite() &&
      hedge_ms < options_.roundtrip_timeout_ms) {
    op.hedge_at = Deadline::After(hedge_ms);
  }
  EnsureThread(shard);
  Mux& mux = *muxes_[shard];
  {
    dbsa::MutexLock lock(mux.mu);
    mux.submitted.push_back(std::move(op));
  }
  WakeMux(mux.wake_fd);
  return correlation;
}

void SocketTransport::MuxLoop(size_t shard) {
  Mux& mux = *muxes_[shard];
  const int max_dials = options_.max_dial_attempts;

  // Completions are collected here and fired at the end of each
  // iteration, outside every lock and with the engine state consistent
  // (a done callback may re-enter Send from another op's continuation).
  struct Fired {
    Done done;
    StatusOr<std::string> result;
  };
  std::vector<Fired> fired;
  /// Set when a reply flips mux.preferred; drained (and the on_failover
  /// hook fired) at the end of the iteration, after the completions.
  bool preferred_switched = false;

  const auto queued_on = [&](int ep, uint64_t corr) {
    const auto& q = mux.queue[ep];
    return std::find(q.begin(), q.end(), corr) != q.end();
  };
  const auto unqueue = [&](uint64_t corr) {
    for (int ep = 0; ep < 2; ++ep) {
      auto& q = mux.queue[ep];
      auto it = std::find(q.begin(), q.end(), corr);
      if (it != q.end()) q.erase(it);
    }
  };
  const auto complete = [&](uint64_t corr, StatusOr<std::string> result) {
    auto it = mux.ops.find(corr);
    if (it == mux.ops.end()) return;
    Op& op = it->second;
    unqueue(corr);
    for (int ep = 0; ep < 2; ++ep) {
      if (op.inflight[ep] && mux.conns[ep].inflight > 0) {
        --mux.conns[ep].inflight;
      }
    }
    if (result.ok()) {
      messages_->Add(1);
      request_bytes_->Add(op.request.size());
      response_bytes_->Add(result.value().size());
      roundtrip_ms_[shard]->Record(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - op.start)
              .count());
    }
    fired.push_back(Fired{std::move(op.done), std::move(result)});
    mux.ops.erase(it);
  };
  const auto complete_unavailable = [&](uint64_t corr, const Status& last) {
    transport_errors_->Add(1);
    complete(corr,
             Status::Unavailable(
                 "shard " + std::to_string(shard) + " unreachable (primary " +
                 EndpointOf(shard, kPrimary).ToString() +
                 (HasEndpoint(shard, kReplica)
                      ? ", replica " + EndpointOf(shard, kReplica).ToString()
                      : std::string(", no replica")) +
                 "): " +
                 (last.ok() ? std::string("no endpoint answered")
                            : last.message())));
  };
  // Moves every op in queue[ep] whose fresh dials there are exhausted to
  // the other endpoint — or completes it kUnavailable when there is
  // nowhere left to go.
  const auto prune_queue = [&](int ep) {
    std::deque<uint64_t> keep;
    std::vector<uint64_t> exhausted;
    for (const uint64_t corr : mux.queue[ep]) {
      Op& op = mux.ops[corr];
      if (op.dials[ep] < max_dials) {
        keep.push_back(corr);
        continue;
      }
      const int other = 1 - ep;
      if (op.inflight[other]) continue;  // A hedged copy is still out there.
      if (HasEndpoint(shard, other) && op.dials[other] < max_dials &&
          !queued_on(other, corr)) {
        mux.queue[other].push_back(corr);
        op.where = other;
      } else {
        exhausted.push_back(corr);
      }
    }
    mux.queue[ep] = std::move(keep);
    for (const uint64_t corr : exhausted) {
      complete_unavailable(corr, mux.conns[ep].last_error);
    }
  };
  // Connection death: close, then requeue (same endpoint first — its
  // remaining dial budget — then failover) or fail each op that had its
  // only copy here. `protocol` marks a framing violation: those ops get
  // a typed kInvalidArgument and are never retried (a peer that answers
  // with garbage is a bug, not an availability problem).
  const auto conn_dead = [&](int ep, const Status& why, bool protocol) {
    Conn& conn = mux.conns[ep];
    if (conn.fd >= 0) close(conn.fd);
    conn.fd = -1;
    conn.inbuf.clear();
    conn.outbuf.clear();
    conn.inflight = 0;
    conn.last_error = why;
    std::vector<uint64_t> orphans;
    // dbsa-lint-allow(determinism): failure harvest — every collected op
    // completes with the SAME typed status; order never reaches a payload.
    for (auto& [corr, op] : mux.ops) {
      if (op.inflight[ep]) orphans.push_back(corr);
    }
    for (const uint64_t corr : orphans) {
      Op& op = mux.ops[corr];
      op.inflight[ep] = false;
      if (protocol) {
        complete(corr, Status::InvalidArgument("shard " + std::to_string(shard) +
                                               ": " + why.message()));
        continue;
      }
      const int other = 1 - ep;
      if (op.inflight[other]) continue;  // The hedged copy races on.
      if (op.dials[ep] < max_dials && !queued_on(ep, corr)) {
        mux.queue[ep].push_back(corr);  // Redial budget left: resend here.
        op.where = ep;
      } else if (HasEndpoint(shard, other) && op.dials[other] < max_dials &&
                 !queued_on(other, corr)) {
        mux.queue[other].push_back(corr);  // Fail over.
        op.where = other;
      } else if (!queued_on(ep, corr) && !queued_on(other, corr)) {
        complete_unavailable(corr, why);
      }
    }
  };

  while (true) {
    // ---- 1. Harvest control flags and freshly submitted ops.
    std::vector<Op> incoming;
    bool do_close_idle = false;
    bool do_stop = false;
    {
      dbsa::MutexLock lock(mux.mu);
      do_stop = mux.stop;
      while (!mux.submitted.empty()) {
        incoming.push_back(std::move(mux.submitted.front()));
        mux.submitted.pop_front();
      }
      do_close_idle = mux.close_idle;
      mux.close_idle = false;
    }
    if (do_stop) {
      // Fail everything still pending; the transport is going away.
      const Status bye =
          Status::Unavailable("SocketTransport destroyed with request in flight");
      for (Op& op : incoming) fired.push_back(Fired{std::move(op.done), bye});
      // dbsa-lint-allow(determinism): teardown — all pending ops fail with
      // the same kUnavailable; completion order carries no payload bytes.
      for (auto& [corr, op] : mux.ops) {
        fired.push_back(Fired{std::move(op.done), bye});
      }
      mux.ops.clear();
      mux.queue[0].clear();
      mux.queue[1].clear();
      for (Conn& conn : mux.conns) {
        if (conn.fd >= 0) close(conn.fd);
        conn.fd = -1;
      }
      for (Fired& f : fired) f.done(std::move(f.result));
      return;
    }
    for (Op& op : incoming) {
      const int ep = HasEndpoint(shard, mux.preferred) ? mux.preferred : kPrimary;
      const uint64_t corr = op.corr;
      op.where = ep;
      mux.queue[ep].push_back(corr);
      mux.ops.emplace(corr, std::move(op));
    }
    if (do_close_idle) {
      for (Conn& conn : mux.conns) {
        if (conn.fd >= 0 && conn.inflight == 0 && conn.outbuf.empty()) {
          close(conn.fd);
          conn.fd = -1;
          conn.inbuf.clear();  // ever_connected stays: the next dial is a reconnect.
        }
      }
    }

    // ---- 2. Timers: per-op deadlines, then hedges.
    {
      std::vector<uint64_t> expired;
      // dbsa-lint-allow(determinism): timer harvest — expiry is per-op and
      // each completes with its own typed timeout; order is observational.
      for (const auto& [corr, op] : mux.ops) {
        if (op.deadline.expired()) expired.push_back(corr);
      }
      for (const uint64_t corr : expired) {
        timeouts_->Add(1);
        const Status& why = mux.conns[mux.ops[corr].where].last_error;
        complete(corr,
                 Status::DeadlineExceeded(
                     "shard " + std::to_string(shard) + " roundtrip exceeded " +
                     std::to_string(options_.roundtrip_timeout_ms) + " ms (" +
                     (why.ok() ? std::string("no reply within deadline")
                               : why.message()) +
                     ")"));
      }
    }
    {
      std::vector<uint64_t> to_hedge;
      // dbsa-lint-allow(determinism): hedge-timer harvest — a hedge
      // duplicates a request verbatim; firing order cannot alter any reply.
      for (const auto& [corr, op] : mux.ops) {
        if (!op.hedged && !op.hedge_at.infinite() && op.hedge_at.expired()) {
          to_hedge.push_back(corr);
        }
      }
      for (const uint64_t corr : to_hedge) {
        Op& op = mux.ops[corr];
        op.hedged = true;
        const int other = 1 - op.where;
        if (!HasEndpoint(shard, other) || op.inflight[other] ||
            queued_on(other, corr) || op.dials[other] >= max_dials) {
          continue;
        }
        if (op.inflight[op.where]) {
          // True hedge: the original copy stays in flight, a DUPLICATE
          // races it on the other endpoint. First reply wins; the loser
          // lands as an unknown correlation id and is dropped.
          hedges_->Add(1);
          mux.queue[other].push_back(corr);
        } else {
          // Not sent anywhere yet (dial-blocked): a move, not a duplicate.
          unqueue(corr);
          mux.queue[other].push_back(corr);
          op.where = other;
        }
      }
    }

    // ---- 3. Connections: dial where needed, then fill output buffers.
    for (int ep = 0; ep < 2; ++ep) {
      if (!HasEndpoint(shard, ep)) continue;
      Conn& conn = mux.conns[ep];
      if (conn.fd < 0 && !mux.queue[ep].empty()) {
        prune_queue(ep);
        if (!mux.queue[ep].empty() && conn.backoff_until.expired()) {
          // Connect budget: the option, tightened by the nearest waiting
          // op's deadline or pending hedge (a blackholed endpoint must
          // not starve the hedge timer for the full connect timeout).
          Deadline connect_deadline = Deadline::After(options_.connect_timeout_ms);
          const auto tighten = [&](const Deadline& d) {
            if (!d.infinite() && (connect_deadline.infinite() ||
                                  d.at < connect_deadline.at)) {
              connect_deadline = d;
            }
          };
          for (const uint64_t corr : mux.queue[ep]) {
            const Op& op = mux.ops[corr];
            tighten(op.deadline);
            if (!op.hedged) tighten(op.hedge_at);
          }
          StatusOr<int> dialed = DialCached(EndpointOf(shard, ep), connect_deadline);
          // Every op that waited on this dial is charged one attempt,
          // success or not — that is the per-request dial budget.
          for (const uint64_t corr : mux.queue[ep]) ++mux.ops[corr].dials[ep];
          if (dialed.ok()) {
            conn.fd = dialed.value();
            dials_->Add(1);
            if (conn.ever_connected || conn.dial_failures > 0) {
              reconnects_->Add(1);
            }
            conn.ever_connected = true;
            conn.dial_failures = 0;
            conn.last_error = Status::OK();
          } else {
            conn.last_error = dialed.status();
            ++conn.dial_failures;
            // Saturating exponential backoff (see Options), capped at 10 s.
            const long long scaled =
                static_cast<long long>(options_.reconnect_backoff_ms)
                << std::min(conn.dial_failures - 1, 20);
            conn.backoff_until = Deadline::After(
                static_cast<int>(std::min<long long>(scaled, 10000)));
            prune_queue(ep);
          }
        }
      }
      if (conn.fd >= 0) {
        const size_t cap = options_.max_inflight_per_connection;
        while (!mux.queue[ep].empty() && (cap == 0 || conn.inflight < cap)) {
          const uint64_t corr = mux.queue[ep].front();
          mux.queue[ep].pop_front();
          Op& op = mux.ops[corr];
          if (op.inflight[ep]) continue;  // Already racing on this conn.
          conn.outbuf.append(op.request);
          op.inflight[ep] = true;
          op.where = ep;
          if (op.first_endpoint < 0) op.first_endpoint = ep;
          ++conn.inflight;
        }
      }
    }

    // ---- 4. Nearest timer = poll timeout.
    int timeout = -1;
    const auto nearer = [&](const Deadline& d) {
      const int r = d.RemainingMs();
      if (r >= 0 && (timeout < 0 || r < timeout)) timeout = r;
    };
    // dbsa-lint-allow(determinism): min-fold over deadlines — commutative,
    // order-insensitive by construction.
    for (const auto& [corr, op] : mux.ops) {
      nearer(op.deadline);
      if (!op.hedged) nearer(op.hedge_at);
    }
    for (int ep = 0; ep < 2; ++ep) {
      if (mux.conns[ep].fd < 0 && !mux.queue[ep].empty()) {
        nearer(mux.conns[ep].backoff_until);
      }
    }
    // Completions staged by the timer/dial steps above must not wait out
    // a poll: their ops are already erased, so nothing else would bound
    // the timeout (a dial-failure completion with otherwise-empty queues
    // would strand its callback behind an infinite poll).
    if (!fired.empty()) timeout = 0;

    // ---- 5. Wait for IO or a timer.
    struct pollfd fds[3];
    int nfds = 0;
    fds[nfds].fd = mux.wake_fd[0];
    fds[nfds].events = POLLIN;
    fds[nfds].revents = 0;
    ++nfds;
    int conn_idx[2] = {-1, -1};
    for (int ep = 0; ep < 2; ++ep) {
      const Conn& conn = mux.conns[ep];
      if (conn.fd < 0) continue;
      conn_idx[ep] = nfds;
      fds[nfds].fd = conn.fd;
      fds[nfds].events =
          static_cast<short>(POLLIN | (conn.outbuf.empty() ? 0 : POLLOUT));
      fds[nfds].revents = 0;
      ++nfds;
    }
    const int rc = poll(fds, static_cast<nfds_t>(nfds), timeout);
    if (rc < 0 && errno != EINTR) {
      // poll() itself failing is unrecoverable for this loop tick; a
      // short nap avoids a hot spin if the condition persists.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    if (fds[0].revents & POLLIN) {
      char drain[256];
      while (read(mux.wake_fd[0], drain, sizeof(drain)) > 0) {
      }
    }

    // ---- 6. Move bytes and pair replies to requests by correlation id.
    for (int ep = 0; ep < 2; ++ep) {
      Conn& conn = mux.conns[ep];
      if (conn.fd < 0 || conn_idx[ep] < 0) continue;
      const short revents = fds[conn_idx[ep]].revents;
      if ((revents & POLLOUT) && !conn.outbuf.empty()) {
        size_t off = 0;
        bool dead = false;
        while (off < conn.outbuf.size()) {
          const ssize_t w = send(conn.fd, conn.outbuf.data() + off,
                                 conn.outbuf.size() - off, MSG_NOSIGNAL);
          if (w > 0) {
            off += static_cast<size_t>(w);
            continue;
          }
          if (w < 0 && errno == EINTR) continue;
          if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
          conn_dead(ep, Status::Unavailable(Errno("send")), /*protocol=*/false);
          dead = true;
          break;
        }
        if (dead) continue;
        conn.outbuf.erase(0, off);
      }
      if (revents & (POLLIN | POLLERR | POLLHUP)) {
        bool dead = false;
        char chunk[64 * 1024];
        while (true) {
          const ssize_t n = recv(conn.fd, chunk, sizeof(chunk), 0);
          if (n > 0) {
            conn.inbuf.append(chunk, static_cast<size_t>(n));
            continue;
          }
          if (n == 0) {
            conn_dead(ep, Status::Unavailable("connection closed by peer"),
                      /*protocol=*/false);
            dead = true;
            break;
          }
          if (errno == EINTR) continue;
          if (errno == EAGAIN || errno == EWOULDBLOCK) break;
          conn_dead(ep, Status::Unavailable(Errno("recv")), /*protocol=*/false);
          dead = true;
          break;
        }
        if (dead) continue;
        while (conn.inbuf.size() >= kWireLengthSize) {
          const uint32_t length = LoadLe32(conn.inbuf.data());
          if (length < 4 ||
              static_cast<size_t>(length) > options_.max_frame_bytes) {
            conn_dead(ep,
                      Status::InvalidArgument(
                          "frame length " + std::to_string(length) +
                          " outside [4, " +
                          std::to_string(options_.max_frame_bytes) + "]"),
                      /*protocol=*/true);
            break;
          }
          const size_t frame_size = kWireLengthSize + static_cast<size_t>(length);
          if (conn.inbuf.size() < frame_size) break;
          std::string frame;
          if (conn.inbuf.size() == frame_size) {
            frame = std::move(conn.inbuf);
            conn.inbuf.clear();
          } else {
            frame = conn.inbuf.substr(0, frame_size);
            conn.inbuf.erase(0, frame_size);
          }
          const uint64_t corr = PeekCorrelation(frame);
          auto it = mux.ops.find(corr);
          if (it == mux.ops.end()) continue;  // Hedge loser / expired op.
          Op& op = it->second;
          if (ep == kReplica) failovers_->Add(1);
          if (op.hedged && op.first_endpoint >= 0 && ep != op.first_endpoint) {
            hedge_wins_->Add(1);
          }
          if (ep != mux.preferred) preferred_switched = true;
          mux.preferred = ep;  // Sticky: the endpoint that answered serves next.
          complete(corr, std::move(frame));
        }
      }
    }

    // ---- 7. Fire completions with the engine consistent again.
    for (Fired& f : fired) f.done(std::move(f.result));
    fired.clear();
    if (preferred_switched) {
      // The serving endpoint changed (failover or failback): notify after
      // the completions so the observer sees a consistent engine. Same
      // deferred discipline as `fired`.
      preferred_switched = false;
      if (options_.on_failover) options_.on_failover(shard);
    }
  }
}

SocketTransport::Stats SocketTransport::stats() const {
  Stats s;
  s.messages = messages_->Value();
  s.request_bytes = request_bytes_->Value();
  s.response_bytes = response_bytes_->Value();
  s.dials = dials_->Value();
  s.reconnects = reconnects_->Value();
  s.failovers = failovers_->Value();
  s.timeouts = timeouts_->Value();
  s.transport_errors = transport_errors_->Value();
  s.hedges = hedges_->Value();
  s.hedge_wins = hedge_wins_->Value();
  s.resolves = resolves_->Value();
  return s;
}

// ----------------------------------------------------------- ShardListener

namespace {

/// Binds a listening socket on host:port (0 = ephemeral). Returns the fd;
/// `bound_port` receives the actual port.
StatusOr<int> BindListener(const std::string& host, uint16_t port, int backlog,
                           uint16_t* bound_port) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  struct addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  const int rc = getaddrinfo(host.empty() ? nullptr : host.c_str(),
                             port_str.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::Unavailable("resolve " + host + ": " + gai_strerror(rc));
  }
  Status last = Status::Unavailable("no addresses for " + host);
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = socket(ai->ai_family, ai->ai_socktype | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          ai->ai_protocol);
    if (fd < 0) {
      last = Status::Unavailable(Errno("socket"));
      continue;
    }
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 || listen(fd, backlog) != 0) {
      last = Status::Unavailable(host + ":" + port_str + ": " + Errno("bind/listen"));
      close(fd);
      continue;
    }
    struct sockaddr_storage addr;
    socklen_t addr_len = sizeof(addr);
    if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &addr_len) == 0) {
      if (addr.ss_family == AF_INET) {
        *bound_port = ntohs(reinterpret_cast<struct sockaddr_in*>(&addr)->sin_port);
      } else if (addr.ss_family == AF_INET6) {
        *bound_port = ntohs(reinterpret_cast<struct sockaddr_in6*>(&addr)->sin6_port);
      }
    }
    freeaddrinfo(res);
    return fd;
  }
  freeaddrinfo(res);
  return last;
}

}  // namespace

ShardListener::Conn::~Conn() { close(fd); }

ShardListener::ShardListener(Handler handler)
    : ShardListener(std::move(handler), Options()) {}

ShardListener::ShardListener(Handler handler, const Options& options)
    : handler_(std::move(handler)), options_(options) {
  DBSA_CHECK(handler_ != nullptr);
  StatusOr<int> bound =
      BindListener(options_.host, options_.port, options_.backlog, &port_);
  if (!bound.ok()) throw StatusException(bound.status());
  listen_fd_ = bound.value();
  const size_t n_workers = std::max<size_t>(1, options_.handler_threads);
  workers_.reserve(n_workers);
  for (size_t i = 0; i < n_workers; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this]() { AcceptLoop(); });
}

ShardListener::~ShardListener() { Stop(); }

void ShardListener::RegisterConn(int fd) {
  dbsa::MutexLock lock(conns_mu_);
  live_fds_.insert(fd);
  ++live_threads_;
}

void ShardListener::UnregisterConn(int fd) {
  dbsa::MutexLock lock(conns_mu_);
  live_fds_.erase(fd);
  // shutdown, not close: queued responses may still hold the Conn. The
  // fd number stays allocated (so Stop/CloseConnections cannot hit a
  // recycled descriptor) until the LAST Conn owner closes it.
  shutdown(fd, SHUT_RDWR);
  --live_threads_;
  conns_cv_.NotifyAll();
}

void ShardListener::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    struct pollfd p;
    p.fd = listen_fd_;
    p.events = POLLIN;
    p.revents = 0;
    const int rc = poll(&p, 1, /*timeout_ms=*/50);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) continue;
    const int fd = accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) continue;
    SetNoDelay(fd);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    {
      // Thread-per-connection needs a cap: past it, refuse THIS
      // connection (close; the client sees a reset and may retry) and
      // keep serving the live ones. Only this thread registers
      // connections, so the check cannot race RegisterConn.
      dbsa::MutexLock lock(conns_mu_);
      if (live_fds_.size() >= options_.max_connections) {
        close(fd);
        continue;
      }
    }
    auto conn = std::make_shared<Conn>(fd);
    RegisterConn(fd);
    // Detached: Stop() joins by waiting for live_threads_ to reach zero
    // (the thread's last touch of this object is the notify in
    // UnregisterConn, made while Stop still holds the object alive).
    try {
      std::thread([this, conn]() { ConnectionLoop(conn); }).detach();
    } catch (const std::system_error&) {
      // Thread creation failed (RLIMIT_NPROC, memory pressure): refuse
      // the one connection instead of letting the exception escape this
      // thread and terminate the whole server. UnregisterConn rebalances
      // live_threads_ for Stop(); the Conn destructor closes the fd.
      UnregisterConn(fd);
    }
  }
}

void ShardListener::ConnectionLoop(std::shared_ptr<Conn> conn) {
  const int fd = conn->fd;
  std::string buf;
  char chunk[64 * 1024];
  bool open = true;
  while (open && conn->open.load(std::memory_order_acquire) &&
         !stopping_.load(std::memory_order_acquire)) {
    struct pollfd p;
    p.fd = fd;
    p.events = POLLIN;
    p.revents = 0;
    const int rc = poll(&p, 1, /*timeout_ms=*/100);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) continue;
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;  // Peer closed.
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      break;
    }
    buf.append(chunk, static_cast<size_t>(n));
    // Extract every complete frame in the buffer (multiplexing clients
    // pipeline aggressively; partial frames wait for the next read).
    while (buf.size() >= kWireLengthSize) {
      const uint32_t length = LoadLe32(buf.data());
      if (length < 4 || static_cast<size_t>(length) > options_.max_frame_bytes) {
        // Not our framing: the stream cannot be resynchronized. Drop the
        // connection; the listener itself keeps accepting.
        bad_frames_.fetch_add(1, std::memory_order_relaxed);
        open = false;
        break;
      }
      const size_t frame_size = kWireLengthSize + static_cast<size_t>(length);
      if (buf.size() < frame_size) break;
      // Common case — the buffer holds exactly one frame: hand it on by
      // move instead of copying (frames can be MBs of cells).
      std::string frame;
      if (buf.size() == frame_size) {
        frame = std::move(buf);
        buf.clear();  // Moved-from: restore to a known-empty state.
      } else {
        frame = buf.substr(0, frame_size);
        buf.erase(0, frame_size);
      }
      frames_.fetch_add(1, std::memory_order_relaxed);
      // Stats scrape is served by the LISTENER, not the shard handler:
      // the registry covers the whole server process (shard metrics,
      // cache gauges, handle-latency histograms), and a scrape must keep
      // working even while every worker is busy with heavy queries —
      // answered inline here, never queued. The type byte peek uses the
      // envelope offsets transport.h freezes with static_asserts; a
      // malformed or version-skewed stats frame falls through to the
      // handler's typed error path.
      if (options_.registry != nullptr && frame.size() > kWireTypeOffset &&
          static_cast<uint8_t>(frame[kWireTypeOffset]) ==
              static_cast<uint8_t>(MessageType::kStatsRequest)) {
        StatsRequest stats_request;
        if (StatsRequest::Decode(frame, &stats_request).ok()) {
          StatsReply reply;
          reply.text = options_.registry->RenderText();
          std::string stats_response = reply.Encode();
          PatchCorrelation(&stats_response, PeekCorrelation(frame));
          dbsa::MutexLock wl(conn->write_mu);
          if (!SendAll(fd, stats_response.data(), stats_response.size(),
                       Deadline::After(options_.write_timeout_ms))
                   .ok()) {
            open = false;
            break;
          }
          continue;
        }
      }
      // Everything else goes to the worker pool: responses come back in
      // COMPLETION order, each echoing its request's correlation id —
      // a slow query never head-of-line blocks the fast one behind it.
      // The queue is bounded: a flooding client parks ITS connection
      // thread here, not the process.
      {
        dbsa::MutexLock lock(work_mu_);
        while (work_.size() >= kMaxQueuedWork && !workers_stop_) {
          space_cv_.Wait(lock);
        }
        if (workers_stop_) {
          open = false;
          break;
        }
        work_.push_back(Work{conn, std::move(frame)});
      }
      work_cv_.NotifyOne();
    }
  }
  UnregisterConn(fd);
}

void ShardListener::WorkerLoop() {
  while (true) {
    Work work;
    {
      dbsa::MutexLock lock(work_mu_);
      while (work_.empty() && !workers_stop_) work_cv_.Wait(lock);
      if (work_.empty()) return;  // workers_stop_ and the queue is drained.
      work = std::move(work_.front());
      work_.pop_front();
    }
    space_cv_.NotifyOne();
    if (!work.conn->open.load(std::memory_order_acquire)) continue;
    std::string response = handler_(work.frame);
    if (response.empty()) {
      // Handler-signalled connection drop (fault injection hook).
      dropped_.fetch_add(1, std::memory_order_relaxed);
      work.conn->open.store(false, std::memory_order_release);
      shutdown(work.conn->fd, SHUT_RDWR);
      continue;
    }
    // Belt and braces: the reply must carry the request's correlation id
    // or a multiplexing client cannot pair it (ShardServer already
    // echoes it; raw test handlers get it stamped here).
    PatchCorrelation(&response, PeekCorrelation(work.frame));
    // Bounded write under the per-connection lock: a client that stops
    // draining must not pin this worker forever (write_timeout_ms).
    dbsa::MutexLock wl(work.conn->write_mu);
    if (!SendAll(work.conn->fd, response.data(), response.size(),
                 Deadline::After(options_.write_timeout_ms))
             .ok()) {
      work.conn->open.store(false, std::memory_order_release);
      shutdown(work.conn->fd, SHUT_RDWR);
    }
  }
}

void ShardListener::CloseConnections() {
  dbsa::MutexLock lock(conns_mu_);
  // dbsa-lint-allow(determinism): fd shutdown fan-out — per-fd side
  // effect, order-free; no bytes are produced.
  for (const int fd : live_fds_) shutdown(fd, SHUT_RDWR);
}

void ShardListener::Stop() {
  stopping_.store(true);
  // Serialize the teardown: join() on an already-joined std::thread is
  // UB, so a second (possibly concurrent) Stop must wait for the first
  // to finish rather than race it — idempotence the mutex way.
  dbsa::MutexLock stop_lock(stop_mu_);
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    dbsa::MutexLock lock(conns_mu_);
    // dbsa-lint-allow(determinism): fd shutdown fan-out — see above.
    for (const int fd : live_fds_) shutdown(fd, SHUT_RDWR);
    while (live_threads_ != 0) conns_cv_.Wait(lock);
  }
  // Connection threads are gone; drain-and-stop the worker pool (queued
  // work for severed connections fails fast on write).
  {
    dbsa::MutexLock lock(work_mu_);
    workers_stop_ = true;
  }
  work_cv_.NotifyAll();
  space_cv_.NotifyAll();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

ShardListener::Stats ShardListener::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.frames = frames_.load(std::memory_order_relaxed);
  s.bad_frames = bad_frames_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  return s;
}

ShardListener::Stats ServeShard(
    ShardListener::Handler handler, const ShardListener::Options& options,
    const std::atomic<bool>& stop,
    const std::function<void(const Endpoint&)>& on_listening) {
  ShardListener listener(std::move(handler), options);
  if (on_listening != nullptr) on_listening(listener.endpoint());
  while (!stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  listener.Stop();
  return listener.stats();
}

}  // namespace dbsa::service
