#include "service/socket_transport.h"

#include <errno.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <system_error>
#include <utility>

#include "util/check.h"

namespace dbsa::service {

namespace {

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

void SetNoDelay(int fd) {
  // Request/response RPC with small frames: without TCP_NODELAY the
  // Nagle + delayed-ACK interaction turns every roundtrip into ~40 ms.
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// poll() for `events` on fd within the deadline. OK when ready,
/// kDeadlineExceeded on timeout, kUnavailable on poll failure.
Status PollFor(int fd, short events, const Deadline& deadline, const char* op) {
  while (true) {
    struct pollfd p;
    p.fd = fd;
    p.events = events;
    p.revents = 0;
    const int timeout = deadline.RemainingMs();
    if (!deadline.infinite() && timeout <= 0) {
      return Status::DeadlineExceeded(std::string(op) + " timed out");
    }
    const int rc = poll(&p, 1, timeout);
    if (rc > 0) return Status::OK();  // Ready (POLLERR/HUP surface on the op).
    if (rc == 0) {
      return Status::DeadlineExceeded(std::string(op) + " timed out");
    }
    if (errno == EINTR) continue;
    return Status::Unavailable(Errno("poll"));
  }
}

/// Reads exactly n bytes. kUnavailable on EOF/reset, kDeadlineExceeded
/// on timeout.
Status RecvExactly(int fd, char* out, size_t n, const Deadline& deadline) {
  size_t off = 0;
  while (off < n) {
    const ssize_t r = recv(fd, out + off, n - off, 0);
    if (r > 0) {
      off += static_cast<size_t>(r);
      continue;
    }
    if (r == 0) return Status::Unavailable("connection closed by peer");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      const Status ready = PollFor(fd, POLLIN, deadline, "recv");
      if (!ready.ok()) return ready;
      continue;
    }
    return Status::Unavailable(Errno("recv"));
  }
  return Status::OK();
}

uint32_t LoadLe32(const char* p) {
  uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));  // Supported targets are little-endian
  return v;                       // (same convention as transport.cc).
}

}  // namespace

int Deadline::RemainingMs() const {
  if (infinite()) return -1;
  const auto now = std::chrono::steady_clock::now();
  if (now >= at) return 0;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(at - now).count();
  // +1: round up so a sub-millisecond remainder still polls, not spins.
  return static_cast<int>(std::min<int64_t>(ms + 1, 1 << 30));
}

Status SendAll(int fd, const char* data, size_t n, const Deadline& deadline) {
  size_t off = 0;
  while (off < n) {
    // MSG_NOSIGNAL: a peer that died mid-write must yield EPIPE, not kill
    // the process with SIGPIPE.
    const ssize_t w = send(fd, data + off, n - off, MSG_NOSIGNAL);
    if (w > 0) {
      off += static_cast<size_t>(w);
      continue;
    }
    if (w < 0 && errno == EINTR) continue;
    if (w < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      const Status ready = PollFor(fd, POLLOUT, deadline, "send");
      if (!ready.ok()) return ready;
      continue;
    }
    return Status::Unavailable(Errno("send"));
  }
  return Status::OK();
}

StatusOr<std::string> ReadFrame(int fd, size_t max_frame_bytes,
                                const Deadline& deadline,
                                const Deadline* first_byte_deadline) {
  char prefix[4];
  // The wait for the FIRST byte may be capped tighter than the rest of
  // the frame (failover hedging, see Roundtrip): once the peer has
  // started answering, the transfer is making progress and gets the
  // full deadline.
  const Status got_first =
      RecvExactly(fd, prefix, 1,
                  first_byte_deadline != nullptr ? *first_byte_deadline : deadline);
  if (!got_first.ok()) return got_first;
  const Status got_prefix =
      RecvExactly(fd, prefix + 1, sizeof(prefix) - 1, deadline);
  if (!got_prefix.ok()) return got_prefix;
  const uint32_t length = LoadLe32(prefix);
  // A frame payload is at least magic+version+type (4 bytes, see
  // transport.h). Anything outside the window means the stream is not
  // speaking our framing at all — there is no way to resynchronize, so
  // the caller must drop the connection.
  if (length < 4 || static_cast<size_t>(length) > max_frame_bytes) {
    return Status::InvalidArgument("frame length " + std::to_string(length) +
                                   " outside [4, " +
                                   std::to_string(max_frame_bytes) + "]");
  }
  std::string frame;
  frame.resize(4 + static_cast<size_t>(length));
  std::memcpy(&frame[0], prefix, sizeof(prefix));
  const Status got_body =
      RecvExactly(fd, &frame[4], static_cast<size_t>(length), deadline);
  if (!got_body.ok()) return got_body;
  return frame;
}

StatusOr<int> DialTcp(const Endpoint& endpoint, const Deadline& deadline) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string port = std::to_string(endpoint.port);
  const int rc = getaddrinfo(endpoint.host.c_str(), port.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::Unavailable("resolve " + endpoint.ToString() + ": " +
                               gai_strerror(rc));
  }
  Status last = Status::Unavailable("no addresses for " + endpoint.ToString());
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = socket(ai->ai_family, ai->ai_socktype | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          ai->ai_protocol);
    if (fd < 0) {
      last = Status::Unavailable(Errno("socket"));
      continue;
    }
    SetNoDelay(fd);
    if (connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) {
      freeaddrinfo(res);
      return fd;
    }
    if (errno != EINPROGRESS) {
      last = Status::Unavailable(endpoint.ToString() + ": " + Errno("connect"));
      close(fd);
      continue;
    }
    const Status ready = PollFor(fd, POLLOUT, deadline, "connect");
    if (!ready.ok()) {
      close(fd);
      if (ready.code() == StatusCode::kDeadlineExceeded) {
        freeaddrinfo(res);
        return Status::DeadlineExceeded("connect to " + endpoint.ToString() +
                                        " timed out");
      }
      last = ready;
      continue;
    }
    int err = 0;
    socklen_t err_len = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0 || err != 0) {
      last = Status::Unavailable(endpoint.ToString() + ": connect: " +
                                 std::strerror(err != 0 ? err : errno));
      close(fd);
      continue;
    }
    freeaddrinfo(res);
    return fd;
  }
  freeaddrinfo(res);
  return last;
}

// ---------------------------------------------------------- SocketTransport

SocketTransport::SocketTransport(ShardPlacement placement)
    : SocketTransport(std::move(placement), Options()) {}

SocketTransport::SocketTransport(ShardPlacement placement, const Options& options)
    : placement_(std::move(placement)),
      options_(options),
      registry_(options.registry
                    ? options.registry
                    : std::make_shared<telemetry::MetricRegistry>()),
      messages_(registry_->GetCounter("dbsa_socket_messages_total")),
      request_bytes_(registry_->GetCounter("dbsa_socket_request_bytes_total")),
      response_bytes_(registry_->GetCounter("dbsa_socket_response_bytes_total")),
      dials_(registry_->GetCounter("dbsa_socket_dials_total")),
      reconnects_(registry_->GetCounter("dbsa_socket_reconnects_total")),
      failovers_(registry_->GetCounter("dbsa_socket_failovers_total")),
      timeouts_(registry_->GetCounter("dbsa_socket_timeouts_total")),
      transport_errors_(
          registry_->GetCounter("dbsa_socket_transport_errors_total")) {
  DBSA_CHECK(placement_.num_shards() > 0);
  DBSA_CHECK(options_.max_dial_attempts >= 1);
  conns_.reserve(placement_.num_shards());
  roundtrip_ms_.reserve(placement_.num_shards());
  for (size_t s = 0; s < placement_.num_shards(); ++s) {
    conns_.push_back(std::make_unique<ShardConns>());
    roundtrip_ms_.push_back(registry_->GetHistogram(
        "dbsa_socket_roundtrip_ms{shard=\"" + std::to_string(s) + "\"}"));
  }
}

SocketTransport::~SocketTransport() { CloseIdleConnections(); }

void SocketTransport::CloseIdleConnections() {
  for (const std::unique_ptr<ShardConns>& sc : conns_) {
    std::lock_guard<std::mutex> lock(sc->mu);
    for (const PooledConn& conn : sc->idle) close(conn.fd);
    sc->idle.clear();
  }
}

const Endpoint& SocketTransport::EndpointOf(size_t shard, int which) const {
  const ShardPlacement::Entry& entry = placement_.shards[shard];
  return which == kPrimary ? entry.primary : entry.replica;
}

bool SocketTransport::HasEndpoint(size_t shard, int which) const {
  return which == kPrimary || placement_.shards[shard].has_replica;
}

int SocketTransport::PopIdle(size_t shard, int endpoint) {
  ShardConns& sc = *conns_[shard];
  std::lock_guard<std::mutex> lock(sc.mu);
  for (size_t i = 0; i < sc.idle.size(); ++i) {
    if (sc.idle[i].endpoint != endpoint) continue;
    const int fd = sc.idle[i].fd;
    sc.idle.erase(sc.idle.begin() + static_cast<ptrdiff_t>(i));
    return fd;
  }
  return -1;
}

void SocketTransport::PushIdle(size_t shard, int endpoint, int fd) {
  ShardConns& sc = *conns_[shard];
  std::lock_guard<std::mutex> lock(sc.mu);
  if (sc.idle.size() >= options_.max_idle_connections_per_shard) {
    close(fd);
    return;
  }
  sc.idle.push_back(PooledConn{fd, endpoint});
}

Status SocketTransport::Exchange(int fd, const std::string& request,
                                 std::string* response, const Deadline& deadline,
                                 const Deadline* first_byte_deadline) {
  // The hedge cap (when set) covers everything before the peer shows
  // life: the request send AND the wait for the first response byte. A
  // wedged peer that stops reading would otherwise stall SendAll for
  // the full deadline and the untried replica would never get its hop.
  const Status sent =
      SendAll(fd, request.data(), request.size(),
              first_byte_deadline != nullptr ? *first_byte_deadline : deadline);
  if (!sent.ok()) return sent;
  StatusOr<std::string> frame =
      ReadFrame(fd, options_.max_frame_bytes, deadline, first_byte_deadline);
  if (!frame.ok()) return frame.status();
  *response = std::move(frame.value());
  return Status::OK();
}

std::string SocketTransport::Roundtrip(size_t shard, const std::string& request) {
  if (shard >= num_shards()) {
    throw StatusException(Status::InvalidArgument(
        "SocketTransport: no such shard " + std::to_string(shard)));
  }
  const Deadline deadline = Deadline::After(options_.roundtrip_timeout_ms);
  const auto started = std::chrono::steady_clock::now();
  ShardConns& sc = *conns_[shard];
  int first;
  {
    std::lock_guard<std::mutex> lock(sc.mu);
    first = sc.preferred;
  }

  const auto succeed = [&](int endpoint, int fd,
                           std::string response) -> std::string {
    PushIdle(shard, endpoint, fd);
    {
      std::lock_guard<std::mutex> lock(sc.mu);
      sc.preferred = endpoint;
    }
    if (endpoint == kReplica) failovers_->Add(1);
    messages_->Add(1);
    request_bytes_->Add(request.size());
    response_bytes_->Add(response.size());
    roundtrip_ms_[shard]->Record(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - started)
            .count());
    return response;
  };
  const auto timed_out = [&](const Status& status) -> StatusException {
    timeouts_->Add(1);
    return StatusException(Status::DeadlineExceeded(
        "shard " + std::to_string(shard) + " roundtrip exceeded " +
        std::to_string(options_.roundtrip_timeout_ms) + " ms (" +
        status.message() + ")"));
  };

  Status last = Status::OK();
  for (int hop = 0; hop < 2; ++hop) {
    const int endpoint = (first + hop) % 2;
    if (!HasEndpoint(shard, endpoint)) continue;
    bool had_stale_conn = false;

    // A stalled endpoint must not consume the whole roundtrip budget
    // while the OTHER endpoint is still untried: a wedged-but-kernel-
    // accepting primary would otherwise starve a healthy replica
    // forever, every call burning the full deadline on recv. When a
    // fallback exists, the first hop's connect and its wait for the
    // FIRST response byte are capped at half the budget (standard
    // hedging); a response that has started flowing is progress and
    // keeps the full deadline, and the last hop always gets everything
    // that remains. Resending after a stall is safe — requests are
    // idempotent (header contract).
    const bool has_fallback = hop == 0 && HasEndpoint(shard, (endpoint + 1) % 2);
    const int hedge_ms = options_.hedge_timeout_ms < 0
                             ? options_.roundtrip_timeout_ms / 2
                             : options_.hedge_timeout_ms;
    const bool hedged = has_fallback && hedge_ms > 0 && !deadline.infinite() &&
                        hedge_ms < options_.roundtrip_timeout_ms;
    Deadline attempt_deadline = deadline;
    if (hedged) {
      // Cap = roundtrip start + hedge budget.
      attempt_deadline.at -= std::chrono::milliseconds(
          options_.roundtrip_timeout_ms - hedge_ms);
    }
    const Deadline* first_byte = hedged ? &attempt_deadline : nullptr;
    bool stalled = false;

    // Reused connections first: a pooled socket that died since its last
    // use costs nothing to discard (the request is idempotent — header
    // contract — so resending it on a fresh connection is safe).
    for (int fd = PopIdle(shard, endpoint); fd >= 0;
         fd = PopIdle(shard, endpoint)) {
      std::string response;
      const Status exchanged =
          Exchange(fd, request, &response, deadline, first_byte);
      if (exchanged.ok()) return succeed(endpoint, fd, std::move(response));
      close(fd);
      if (exchanged.code() == StatusCode::kDeadlineExceeded) {
        if (!has_fallback || deadline.expired()) throw timed_out(exchanged);
        last = exchanged;
        stalled = true;
        break;
      }
      if (exchanged.code() == StatusCode::kInvalidArgument) {
        // The peer answered, but not with our framing: a protocol bug,
        // not an availability problem — do not mask it with a retry.
        throw StatusException(Status::InvalidArgument(
            "shard " + std::to_string(shard) + ": " + exchanged.message()));
      }
      last = exchanged;
      had_stale_conn = true;
    }
    if (stalled) continue;  // This endpoint is wedged: try the other one.

    // Fresh dials with exponential backoff.
    for (int attempt = 0; attempt < options_.max_dial_attempts; ++attempt) {
      if (attempt > 0) {
        // Saturate the exponential: attempt counts are operator-tunable,
        // and an unclamped shift overflows int past ~30 attempts (the nap
        // would go negative and the loop would hot-spin instead of backing
        // off). A 10s ceiling keeps retries inside realistic deadlines.
        const long long scaled =
            static_cast<long long>(options_.reconnect_backoff_ms)
            << std::min(attempt - 1, 20);
        const int backoff_ms =
            static_cast<int>(std::min<long long>(scaled, 10000));
        const int remaining = deadline.RemainingMs();
        const int nap =
            remaining < 0 ? backoff_ms : std::min(backoff_ms, remaining);
        if (nap > 0) std::this_thread::sleep_for(std::chrono::milliseconds(nap));
      }
      if (deadline.expired()) throw timed_out(last.ok() ? Status::DeadlineExceeded("no attempt finished") : last);
      Deadline connect_deadline = Deadline::After(options_.connect_timeout_ms);
      if (!attempt_deadline.infinite() &&
          (connect_deadline.infinite() ||
           attempt_deadline.at < connect_deadline.at)) {
        connect_deadline = attempt_deadline;
      }
      StatusOr<int> dialed = DialTcp(EndpointOf(shard, endpoint), connect_deadline);
      if (!dialed.ok()) {
        last = dialed.status();
        if (last.code() == StatusCode::kDeadlineExceeded && deadline.expired()) {
          throw timed_out(last);
        }
        if (attempt_deadline.expired() && has_fallback) break;
        continue;
      }
      dials_->Add(1);
      if (had_stale_conn || attempt > 0) reconnects_->Add(1);
      const int fd = dialed.value();
      std::string response;
      const Status exchanged =
          Exchange(fd, request, &response, deadline, first_byte);
      if (exchanged.ok()) return succeed(endpoint, fd, std::move(response));
      close(fd);
      if (exchanged.code() == StatusCode::kDeadlineExceeded) {
        if (!has_fallback || deadline.expired()) throw timed_out(exchanged);
        last = exchanged;
        break;  // This endpoint is wedged: try the other one.
      }
      if (exchanged.code() == StatusCode::kInvalidArgument) {
        throw StatusException(Status::InvalidArgument(
            "shard " + std::to_string(shard) + ": " + exchanged.message()));
      }
      // A freshly-dialed connection that still cannot complete an
      // exchange means the endpoint itself is sick: fail over.
      last = exchanged;
      break;
    }
  }

  transport_errors_->Add(1);
  throw StatusException(Status::Unavailable(
      "shard " + std::to_string(shard) + " unreachable (primary " +
      EndpointOf(shard, kPrimary).ToString() +
      (HasEndpoint(shard, kReplica)
           ? ", replica " + EndpointOf(shard, kReplica).ToString()
           : std::string(", no replica")) +
      "): " + (last.ok() ? std::string("no endpoint answered") : last.message())));
}

SocketTransport::Stats SocketTransport::stats() const {
  Stats s;
  s.messages = messages_->Value();
  s.request_bytes = request_bytes_->Value();
  s.response_bytes = response_bytes_->Value();
  s.dials = dials_->Value();
  s.reconnects = reconnects_->Value();
  s.failovers = failovers_->Value();
  s.timeouts = timeouts_->Value();
  s.transport_errors = transport_errors_->Value();
  return s;
}

// ----------------------------------------------------------- ShardListener

namespace {

/// Binds a listening socket on host:port (0 = ephemeral). Returns the fd;
/// `bound_port` receives the actual port.
StatusOr<int> BindListener(const std::string& host, uint16_t port, int backlog,
                           uint16_t* bound_port) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = AI_PASSIVE;
  struct addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  const int rc = getaddrinfo(host.empty() ? nullptr : host.c_str(),
                             port_str.c_str(), &hints, &res);
  if (rc != 0) {
    return Status::Unavailable("resolve " + host + ": " + gai_strerror(rc));
  }
  Status last = Status::Unavailable("no addresses for " + host);
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    const int fd = socket(ai->ai_family, ai->ai_socktype | SOCK_NONBLOCK | SOCK_CLOEXEC,
                          ai->ai_protocol);
    if (fd < 0) {
      last = Status::Unavailable(Errno("socket"));
      continue;
    }
    int one = 1;
    setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (bind(fd, ai->ai_addr, ai->ai_addrlen) != 0 || listen(fd, backlog) != 0) {
      last = Status::Unavailable(host + ":" + port_str + ": " + Errno("bind/listen"));
      close(fd);
      continue;
    }
    struct sockaddr_storage addr;
    socklen_t addr_len = sizeof(addr);
    if (getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &addr_len) == 0) {
      if (addr.ss_family == AF_INET) {
        *bound_port = ntohs(reinterpret_cast<struct sockaddr_in*>(&addr)->sin_port);
      } else if (addr.ss_family == AF_INET6) {
        *bound_port = ntohs(reinterpret_cast<struct sockaddr_in6*>(&addr)->sin6_port);
      }
    }
    freeaddrinfo(res);
    return fd;
  }
  freeaddrinfo(res);
  return last;
}

}  // namespace

ShardListener::ShardListener(Handler handler)
    : ShardListener(std::move(handler), Options()) {}

ShardListener::ShardListener(Handler handler, const Options& options)
    : handler_(std::move(handler)), options_(options) {
  DBSA_CHECK(handler_ != nullptr);
  StatusOr<int> bound =
      BindListener(options_.host, options_.port, options_.backlog, &port_);
  if (!bound.ok()) throw StatusException(bound.status());
  listen_fd_ = bound.value();
  accept_thread_ = std::thread([this]() { AcceptLoop(); });
}

ShardListener::~ShardListener() { Stop(); }

void ShardListener::RegisterConn(int fd) {
  std::lock_guard<std::mutex> lock(conns_mu_);
  live_fds_.insert(fd);
  ++live_threads_;
}

void ShardListener::UnregisterConn(int fd) {
  std::lock_guard<std::mutex> lock(conns_mu_);
  live_fds_.erase(fd);
  close(fd);  // Under the lock: the fd number cannot be shut down by
              // Stop/CloseConnections after the kernel reuses it.
  --live_threads_;
  conns_cv_.notify_all();
}

void ShardListener::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    struct pollfd p;
    p.fd = listen_fd_;
    p.events = POLLIN;
    p.revents = 0;
    const int rc = poll(&p, 1, /*timeout_ms=*/50);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) continue;
    const int fd = accept4(listen_fd_, nullptr, nullptr,
                           SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) continue;
    SetNoDelay(fd);
    accepted_.fetch_add(1, std::memory_order_relaxed);
    {
      // Thread-per-connection needs a cap: past it, refuse THIS
      // connection (close; the client sees a reset and may retry) and
      // keep serving the live ones. Only this thread registers
      // connections, so the check cannot race RegisterConn.
      std::lock_guard<std::mutex> lock(conns_mu_);
      if (live_fds_.size() >= options_.max_connections) {
        close(fd);
        continue;
      }
    }
    RegisterConn(fd);
    // Detached: Stop() joins by waiting for live_threads_ to reach zero
    // (the thread's last touch of this object is the notify in
    // UnregisterConn, made while Stop still holds the object alive).
    try {
      std::thread([this, fd]() { ConnectionLoop(fd); }).detach();
    } catch (const std::system_error&) {
      // Thread creation failed (RLIMIT_NPROC, memory pressure): refuse
      // the one connection instead of letting the exception escape this
      // thread and terminate the whole server. UnregisterConn also
      // closes the fd and rebalances live_threads_ for Stop().
      UnregisterConn(fd);
    }
  }
}

void ShardListener::ConnectionLoop(int fd) {
  std::string buf;
  char chunk[64 * 1024];
  bool open = true;
  while (open && !stopping_.load(std::memory_order_acquire)) {
    struct pollfd p;
    p.fd = fd;
    p.events = POLLIN;
    p.revents = 0;
    const int rc = poll(&p, 1, /*timeout_ms=*/100);
    if (rc < 0 && errno != EINTR) break;
    if (rc <= 0) continue;
    const ssize_t n = recv(fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;  // Peer closed.
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      break;
    }
    buf.append(chunk, static_cast<size_t>(n));
    // Extract and answer every complete frame in the buffer (clients may
    // pipeline; partial frames wait for the next read).
    while (buf.size() >= 4) {
      const uint32_t length = LoadLe32(buf.data());
      if (length < 4 || static_cast<size_t>(length) > options_.max_frame_bytes) {
        // Not our framing: the stream cannot be resynchronized. Drop the
        // connection; the listener itself keeps accepting.
        bad_frames_.fetch_add(1, std::memory_order_relaxed);
        open = false;
        break;
      }
      const size_t frame_size = 4 + static_cast<size_t>(length);
      if (buf.size() < frame_size) break;
      // Common case — the buffer holds exactly one frame: hand it to the
      // handler by move instead of copying (frames can be MBs of cells).
      std::string frame;
      if (buf.size() == frame_size) {
        frame = std::move(buf);
        buf.clear();  // Moved-from: restore to a known-empty state.
      } else {
        frame = buf.substr(0, frame_size);
        buf.erase(0, frame_size);
      }
      frames_.fetch_add(1, std::memory_order_relaxed);
      // Stats scrape is served by the LISTENER, not the shard handler:
      // the registry covers the whole server process (shard metrics,
      // cache gauges, handle-latency histograms), and a scrape must keep
      // working even while the handler is busy with a heavy query. The
      // type byte sits at frame index 7 ([u32 len][u16 magic][u8 ver]
      // [u8 type], docs/wire-format.md); a malformed or version-skewed
      // stats frame falls through to the handler's typed error path.
      if (options_.registry != nullptr && frame.size() >= 8 &&
          static_cast<uint8_t>(frame[7]) ==
              static_cast<uint8_t>(MessageType::kStatsRequest)) {
        StatsRequest stats_request;
        if (StatsRequest::Decode(frame, &stats_request).ok()) {
          StatsReply reply;
          reply.text = options_.registry->RenderText();
          const std::string stats_response = reply.Encode();
          if (!SendAll(fd, stats_response.data(), stats_response.size(),
                       Deadline::After(options_.write_timeout_ms))
                   .ok()) {
            open = false;
            break;
          }
          continue;
        }
      }
      const std::string response = handler_(frame);
      if (response.empty()) {
        // Handler-signalled connection drop (fault injection hook).
        dropped_.fetch_add(1, std::memory_order_relaxed);
        open = false;
        break;
      }
      // Bounded: a client that stops draining must not pin this thread
      // and the response buffer forever (see Options::write_timeout_ms).
      if (!SendAll(fd, response.data(), response.size(),
                   Deadline::After(options_.write_timeout_ms))
               .ok()) {
        open = false;
        break;
      }
    }
  }
  UnregisterConn(fd);
}

void ShardListener::CloseConnections() {
  std::lock_guard<std::mutex> lock(conns_mu_);
  for (const int fd : live_fds_) shutdown(fd, SHUT_RDWR);
}

void ShardListener::Stop() {
  stopping_.store(true);
  // Serialize the teardown: join() on an already-joined std::thread is
  // UB, so a second (possibly concurrent) Stop must wait for the first
  // to finish rather than race it — idempotence the mutex way.
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::unique_lock<std::mutex> lock(conns_mu_);
  for (const int fd : live_fds_) shutdown(fd, SHUT_RDWR);
  conns_cv_.wait(lock, [this]() { return live_threads_ == 0; });
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

ShardListener::Stats ShardListener::stats() const {
  Stats s;
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.frames = frames_.load(std::memory_order_relaxed);
  s.bad_frames = bad_frames_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  return s;
}

ShardListener::Stats ServeShard(
    ShardListener::Handler handler, const ShardListener::Options& options,
    const std::atomic<bool>& stop,
    const std::function<void(const Endpoint&)>& on_listening) {
  ShardListener listener(std::move(handler), options);
  if (on_listening != nullptr) on_listening(listener.endpoint());
  while (!stop.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  listener.Stop();
  return listener.stats();
}

}  // namespace dbsa::service
