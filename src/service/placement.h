// Shard placement: which network endpoint serves which shard, and where
// its replica (if any) lives. This is the deployment-side input of the
// socket transport (service/socket_transport.h): the wire format and the
// router know nothing about hosts — they see shard indices — and the
// placement maps index -> host:port.
//
// The spec format is a deliberately boring line-oriented text file
// (operable with grep, diff and a text editor — see docs/operations.md):
//
//   # comments and blank lines are ignored
//   # <shard-id> <primary host:port> [<replica host:port>]
//   0 127.0.0.1:7601 127.0.0.1:7701
//   1 127.0.0.1:7602 127.0.0.1:7702
//   2 127.0.0.1:7603
//
// Shard ids must cover 0..K-1 exactly (any order, no duplicates), so a
// typo'd placement fails loudly at parse time instead of as a routing
// hole at query time. The replica column is optional per shard; a shard
// without one simply has no failover target (the transport reports
// kUnavailable when its primary is gone).

#ifndef DBSA_SERVICE_PLACEMENT_H_
#define DBSA_SERVICE_PLACEMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace dbsa::service {

/// One TCP endpoint. The host is a name or numeric address; resolution
/// happens at connect time (socket_transport.cc), not at parse time, so a
/// placement file can name hosts that are not yet up.
struct Endpoint {
  std::string host;
  uint16_t port = 0;

  bool operator==(const Endpoint& other) const {
    return host == other.host && port == other.port;
  }
  bool operator!=(const Endpoint& other) const { return !(*this == other); }

  /// "host:port".
  std::string ToString() const;
};

/// Parses "host:port". The port must be 1..65535; the host non-empty.
StatusOr<Endpoint> ParseEndpoint(const std::string& spec);

/// shard id -> primary endpoint (+ optional replica).
struct ShardPlacement {
  struct Entry {
    Endpoint primary;
    bool has_replica = false;
    Endpoint replica;
  };

  std::vector<Entry> shards;

  size_t num_shards() const { return shards.size(); }

  /// Appends one shard served at `primary` (and optionally `replica`).
  /// Builder convenience for tests and in-process demos.
  ShardPlacement& Add(Endpoint primary);
  ShardPlacement& Add(Endpoint primary, Endpoint replica);

  /// Serializes back to the spec format (parse-roundtrip stable).
  std::string ToString() const;

  /// Parses a placement spec (format above). Total: malformed lines,
  /// duplicate or missing shard ids and bad endpoints all yield a typed
  /// kInvalidArgument naming the offending line.
  static StatusOr<ShardPlacement> Parse(const std::string& text);

  /// Parse(contents of `path`); kNotFound if the file cannot be read.
  static StatusOr<ShardPlacement> Load(const std::string& path);
};

}  // namespace dbsa::service

#endif  // DBSA_SERVICE_PLACEMENT_H_
