// FROZEN v1 shim implementations (see v1_compat.h). Everything here is
// conversion glue; no execution logic may live in this file.

#include "service/v1_compat.h"

#include <stdexcept>
#include <utility>

#include "util/check.h"

namespace dbsa::service {

Request Request::MakeAggregate(join::AggKind agg, core::Attr attr, double epsilon,
                               core::Mode mode) {
  Request r;
  r.kind = Kind::kAggregate;
  r.agg = agg;
  r.attr = attr;
  r.epsilon = epsilon;
  r.mode = mode;
  return r;
}

Request Request::MakeCount(geom::Polygon poly, double epsilon) {
  Request r;
  r.kind = Kind::kCountInPolygon;
  r.poly = std::move(poly);
  r.epsilon = epsilon;
  return r;
}

Request Request::MakeSelect(geom::Polygon poly, double epsilon) {
  Request r;
  r.kind = Kind::kSelectInPolygon;
  r.poly = std::move(poly);
  r.epsilon = epsilon;
  return r;
}

Query QueryFromV1(const Request& request) {
  switch (request.kind) {
    case Request::Kind::kAggregate:
      return Query::Aggregate(request.agg, request.attr);
    case Request::Kind::kCountInPolygon:
      return Query::Count(request.poly);
    case Request::Kind::kSelectInPolygon:
      return Query::Select(request.poly);
  }
  DBSA_CHECK(false);
  return Query();
}

ExecOptions OptionsFromV1(const Request& request) {
  ExecOptions options;
  options.bound = query::ErrorBound::Absolute(request.epsilon);
  options.mode = request.mode;
  return options;
}

namespace {

Request::Kind KindFromV2(QueryKind kind) {
  switch (kind) {
    case QueryKind::kAggregate:
      return Request::Kind::kAggregate;
    case QueryKind::kCount:
      return Request::Kind::kCountInPolygon;
    case QueryKind::kSelect:
      return Request::Kind::kSelectInPolygon;
  }
  DBSA_CHECK(false);
  return Request::Kind::kAggregate;
}

}  // namespace

Response ResponseFromResult(Result result) {
  Response response;
  response.ticket = result.ticket;
  response.kind = KindFromV2(result.kind);
  response.aggregate = std::move(result.aggregate);
  response.range = result.range;
  response.ids = std::move(result.ids);
  if (!result.status.ok()) {
    response.error = result.status.message().empty() ? "query failed"
                                                     : result.status.message();
  }
  return response;
}

void ThrowLegacy(const Status& status) {
  DBSA_CHECK(!status.ok());
  if (status.code() == StatusCode::kInvalidArgument) {
    throw std::invalid_argument(status.message());
  }
  throw StatusException(status);
}

}  // namespace dbsa::service
