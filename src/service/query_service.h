// QueryService — the concurrent serving layer over one immutable engine
// snapshot (core::EngineState). Clients submit Aggregate /
// CountInPolygon / SelectInPolygon requests; a fixed thread pool executes
// them, and a memory-budgeted LRU cache shares the HR approximations
// across queries, sessions and threads (built once per (region, epsilon
// level), with cache misses fanned out across the pool).
//
// Two client styles:
//   * typed futures — Aggregate() / CountInPolygon() / SelectInPolygon()
//     return std::future, one per request;
//   * batched — Submit() tickets requests, Drain() waits for everything
//     outstanding and returns the responses in submission order.
//
// Determinism: a service run with any thread count returns results
// byte-identical to the single-threaded SpatialEngine on the same
// workload — per-query floating-point accumulation order is fixed (see
// ExecHooks in core/engine_state.h), only scheduling varies.
//
// Sharding: with ServiceOptions::num_shards > 1 the snapshot's points are
// partitioned into Hilbert-contiguous spatial shards (core::ShardedState)
// and point-index queries run scatter-gather — approximation cells routed
// only to intersecting shards, shard partials merged in canonical order —
// preserving the determinism guarantee (see sharded_state.h for the exact
// merge-identity contract).

#ifndef DBSA_SERVICE_QUERY_SERVICE_H_
#define DBSA_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/engine_state.h"
#include "core/sharded_state.h"
#include "service/approx_cache.h"
#include "service/shard_server.h"
#include "service/thread_pool.h"
#include "service/transport.h"

namespace dbsa::service {

struct ServiceOptions {
  /// 0 = hardware concurrency.
  size_t num_threads = 0;
  /// Budget for the shared approximation cache (HR bytes).
  size_t cache_budget_bytes = size_t{64} << 20;
  /// Fan the per-polygon stage of region aggregations out across the
  /// pool (cache misses build HRs in parallel). Results are identical
  /// either way; this only trades latency for pool occupancy.
  bool parallel_regions = true;
  /// > 1 partitions the point table into this many Hilbert-contiguous
  /// spatial shards (core::ShardedState); point-index queries scatter
  /// across the shards that survive pruning and gather byte-identical
  /// results. 1 = serve the snapshot unsharded.
  size_t num_shards = 1;
  /// Grid level of the Hilbert ordering used by the partitioner.
  int shard_hilbert_level = 16;
  /// Serve the shards through the shard-server message seam: every shard
  /// probe crosses the serialized wire format of service/transport.h via
  /// an in-process LoopbackTransport (the multi-node rehearsal — a real
  /// RPC transport drops in without touching execution). Effective at any
  /// num_shards >= 1 (one shard server is the degenerate deployment).
  /// Results stay byte-identical to the in-process engine per pinned
  /// plan; each ShardServer additionally keeps a per-shard HR cache of
  /// its routed cell slices (see WarmCache).
  bool use_transport = false;
  /// Budget of each shard server's routed-cell cache (transport only).
  size_t shard_cache_budget_bytes = size_t{8} << 20;
};

/// One queued request. kind selects which fields matter.
struct Request {
  enum class Kind { kAggregate, kCountInPolygon, kSelectInPolygon };

  Kind kind = Kind::kAggregate;
  // kAggregate:
  join::AggKind agg = join::AggKind::kCount;
  core::Attr attr = core::Attr::kNone;
  core::Mode mode = core::Mode::kAuto;
  // All kinds:
  double epsilon = 0.0;
  // kCountInPolygon / kSelectInPolygon:
  geom::Polygon poly;

  static Request MakeAggregate(join::AggKind agg, core::Attr attr, double epsilon,
                               core::Mode mode = core::Mode::kAuto);
  static Request MakeCount(geom::Polygon poly, double epsilon);
  static Request MakeSelect(geom::Polygon poly, double epsilon);
};

/// Response to one request; the field matching the request's kind is set.
/// A failed query (invalid request, execution exception) surfaces as a
/// response with `error` set and default payload fields — Drain never
/// loses a ticket to one bad query.
struct Response {
  uint64_t ticket = 0;
  Request::Kind kind = Request::Kind::kAggregate;
  core::AggregateAnswer aggregate;
  join::ResultRange range;
  std::vector<uint32_t> ids;
  std::string error;  ///< Empty iff the query succeeded.

  bool ok() const { return error.empty(); }
};

class QueryService {
 public:
  /// Serves the given snapshot. The snapshot is immutable and shared —
  /// several services (or a service plus single-threaded engines) may
  /// serve the same one.
  explicit QueryService(std::shared_ptr<const core::EngineState> state,
                        const ServiceOptions& options = {});

  /// Convenience: builds the snapshot from the tables (moved, not copied).
  QueryService(data::PointSet points, data::RegionSet regions,
               const ServiceOptions& options = {});

  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // ---- typed futures -------------------------------------------------
  std::future<core::AggregateAnswer> Aggregate(join::AggKind agg, core::Attr attr,
                                               double epsilon,
                                               core::Mode mode = core::Mode::kAuto);
  std::future<join::ResultRange> CountInPolygon(geom::Polygon poly, double epsilon);
  std::future<std::vector<uint32_t>> SelectInPolygon(geom::Polygon poly,
                                                     double epsilon);

  // ---- batched -------------------------------------------------------
  /// Enqueues a request; returns its ticket. Never blocks.
  uint64_t Submit(Request request);

  /// Waits for every outstanding submitted request and returns their
  /// responses sorted by ticket (= submission) order. A query that threw
  /// yields an error Response (same ticket slot, `ok() == false`); the
  /// drain always returns one response per outstanding ticket.
  std::vector<Response> Drain();

  // ---- cache management ---------------------------------------------
  /// Builds the HR approximations of ALL region polygons at the given
  /// epsilon in parallel across the pool (the cache-miss path of a full
  /// region aggregation, without running a query). Blocks until warm.
  /// Shard-aware: with the transport seam active, each shard server's
  /// per-shard cache is additionally warmed with the routed cell slices
  /// of exactly the regions whose cells route to that shard.
  void WarmCache(double epsilon);

  ApproxCache::Stats cache_stats() const { return cache_.stats(); }

  const core::EngineState& state() const { return *state_; }
  /// Non-null iff the shard-aware execution path is active
  /// (options.num_shards > 1, or options.use_transport).
  const core::ShardedState* sharded() const { return sharded_.get(); }
  size_t num_threads() const { return pool_.size(); }

  // ---- the message seam (non-null iff options.use_transport) ---------
  size_t num_shard_servers() const { return servers_.size(); }
  const ShardServer* shard_server(size_t s) const {
    return s < servers_.size() ? servers_[s].get() : nullptr;
  }
  /// Loopback byte/message counters ({} when the seam is inactive).
  LoopbackTransport::Stats transport_stats() const {
    return loopback_ != nullptr ? loopback_->stats() : LoopbackTransport::Stats{};
  }

 private:
  /// Builds the cache-backed exec hooks. When the counter pointers are
  /// non-null they receive this query's hit/miss tallies; they must
  /// outlive every Execute* call using the hooks.
  core::ExecHooks MakeHooks(std::atomic<size_t>* query_hits = nullptr,
                            std::atomic<size_t>* query_misses = nullptr);
  Response Run(uint64_t ticket, const Request& request);
  core::AggregateAnswer RunAggregate(const Request& request);
  join::ResultRange RunCount(const geom::Polygon& poly, double epsilon);
  std::vector<uint32_t> RunSelect(const geom::Polygon& poly, double epsilon);

  std::shared_ptr<const core::EngineState> state_;
  std::shared_ptr<const core::ShardedState> sharded_;  ///< Null when unsharded.
  /// The message seam (all null unless options.use_transport): one server
  /// per shard behind a loopback transport, driven by the router.
  std::vector<std::shared_ptr<ShardServer>> servers_;
  std::shared_ptr<LoopbackTransport> loopback_;
  std::unique_ptr<ShardRouter> router_;
  ServiceOptions options_;
  ApproxCache cache_;
  ThreadPool pool_;  ///< Last member: workers die before cache/state.

  struct Pending {
    uint64_t ticket = 0;
    Request::Kind kind = Request::Kind::kAggregate;
    std::future<Response> future;
  };
  std::mutex pending_mu_;
  uint64_t next_ticket_ = 1;
  std::vector<Pending> pending_;
};

}  // namespace dbsa::service

#endif  // DBSA_SERVICE_QUERY_SERVICE_H_
