// QueryService — the concurrent serving layer over one immutable engine
// snapshot (core::EngineState), speaking the v2 query envelope
// (service/query.h): clients submit Query descriptors with per-query
// ExecOptions (typed distance bound, mode hint, deadline, cancellation,
// shard fan-out cap) and get Results carrying the payload, the ACHIEVED
// side of the distance-bound contract (BoundReport) and a typed Status.
// A fixed thread pool executes queries; a memory-budgeted LRU cache
// shares the HR approximations across queries, sessions and threads.
//
// Client styles:
//   * typed future  — Execute(query, options) returns one
//     std::future<Result> per query;
//   * batched       — Submit(query, options) tickets the query, Drain()
//     waits for everything outstanding and returns the Results in
//     submission order (one per ticket, failures as statuses — a
//     poisoned query can never lose a batch).
//   * v1 shims      — the frozen Request/Response surface of
//     service/v1_compat.h (Submit(Request), DrainResponses(), the typed
//     futures below) forwards to the envelope unchanged for one release.
//
// Determinism: a service run with any thread count, shard count, fan-out
// cap and deployment path (in-process, sharded, transport seam) returns
// payloads byte-identical to the single-threaded engine on the same
// workload per pinned plan — per-query floating-point accumulation order
// is fixed (ExecHooks in core/engine_state.h; compensated SUM merges in
// join/point_index_join.h), only scheduling varies. Restated and tested
// over the v2 envelope in tests/query_envelope_test.cc.
//
// Sharding and the message seam are unchanged from PR 2/3 (see
// ServiceOptions below and core/sharded_state.h, service/shard_server.h).

#ifndef DBSA_SERVICE_QUERY_SERVICE_H_
#define DBSA_SERVICE_QUERY_SERVICE_H_

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine_state.h"
#include "core/sharded_state.h"
#include "service/approx_cache.h"
#include "service/placement.h"
#include "service/query.h"
#include "service/shard_server.h"
#include "service/socket_transport.h"
#include "service/thread_pool.h"
#include "service/transport.h"
#include "service/v1_compat.h"
#include "util/thread_annotations.h"

namespace dbsa::service {

/// Which Transport carries the shard messages when the seam is active
/// (ServiceOptions::use_transport).
enum class TransportKind : uint8_t {
  /// In-process: shard servers owned by the service, requests handed to
  /// them as function calls (every byte still crosses the wire format).
  kLoopback = 0,
  /// Real RPC: shard servers are EXTERNAL processes (shard_server_main)
  /// reached over TCP per ServiceOptions::placement. The service owns
  /// only the client half (routing metadata + SocketTransport).
  kSocket = 1,
};

struct ServiceOptions {
  /// 0 = hardware concurrency.
  size_t num_threads = 0;
  /// Budget for the shared approximation cache (HR bytes).
  size_t cache_budget_bytes = size_t{64} << 20;
  /// Fan the per-polygon stage of region aggregations out across the
  /// pool (cache misses build HRs in parallel). Results are identical
  /// either way; this only trades latency for pool occupancy.
  bool parallel_regions = true;
  /// > 1 partitions the point table into this many Hilbert-contiguous
  /// spatial shards (core::ShardedState); point-index queries scatter
  /// across the shards that survive pruning and gather byte-identical
  /// results. 1 = serve the snapshot unsharded.
  size_t num_shards = 1;
  /// Grid level of the Hilbert ordering used by the partitioner.
  int shard_hilbert_level = 16;
  /// Serve the shards through the shard-server message seam: every shard
  /// probe crosses the serialized wire format of service/transport.h via
  /// an in-process LoopbackTransport (the multi-node rehearsal — a real
  /// RPC transport drops in without touching execution). Effective at any
  /// num_shards >= 1 (one shard server is the degenerate deployment).
  /// Results stay byte-identical to the in-process engine per pinned
  /// plan; each ShardServer additionally keeps a per-shard HR cache of
  /// its routed cell slices (see WarmCache).
  bool use_transport = false;
  /// Budget of each shard server's routed-cell cache (loopback transport
  /// only — socket-mode servers configure their own, see
  /// shard_server_main --cache_budget_mb).
  size_t shard_cache_budget_bytes = size_t{8} << 20;
  /// Which transport carries the seam (use_transport only).
  TransportKind transport_kind = TransportKind::kLoopback;
  /// kSocket only: where each shard (and its optional failover replica)
  /// listens. When `num_shards` is left at its default (<= 1) the shard
  /// count is taken from the placement; otherwise the two must agree.
  ShardPlacement placement;
  /// kSocket only: connection management knobs (timeouts, backoff,
  /// failover behaviour, cost model) — see socket_transport.h.
  SocketTransport::Options socket_options;

  // ---- epoch-stamped snapshots (src/snapshot/) ----------------------
  /// Dataset generation this service serves. Non-zero (the snapshot
  /// deployment: state loaded from epoch-stamped files): every outgoing
  /// ScatterRequest is pinned to it and every loopback shard server
  /// rejects other epochs typed (kFailedPrecondition) — see
  /// ShardServer::Options::serving_epoch. Zero (default): queries carry
  /// the wildcard epoch and accept any serving generation.
  uint64_t serving_epoch = 0;
  /// kSocket only: when a shard's preferred endpoint changes (failover
  /// to a replica, or failback), re-warm the newly serving endpoint's
  /// per-shard cell cache with the routed slices of every region, at the
  /// last WarmCache epsilon — off the query path, on a pool worker. A
  /// freshly promoted replica then serves reference requests at primary
  /// hit rates instead of a kNotCached round-trip per object. No-op
  /// until WarmCache has been called once.
  bool rewarm_on_failover = false;

  // ---- telemetry (src/telemetry/) -----------------------------------
  /// Mint a TraceContext per query and record per-stage spans (admission,
  /// cache lookup, HR build, route, per-shard roundtrip, execute, merge,
  /// gather), propagated to shard servers over wire v3. Observe-only:
  /// payloads are byte-identical with tracing on or off.
  bool enable_tracing = true;
  /// > 0: a query whose end-to-end latency exceeds this emits one
  /// structured SLOW_QUERY line (trace id, kind, bound, achieved epsilon,
  /// per-stage span table) to `slow_query_sink`. Needs enable_tracing for
  /// the span table; the line is emitted either way.
  double slow_query_ms = 0.0;
  /// Destination of SLOW_QUERY lines; null -> stderr.
  std::function<void(const std::string&)> slow_query_sink;
  /// Registry every component of this service records into (cache,
  /// transports, loopback shard servers, per-query latencies). Null: the
  /// service creates its own — shard it to aggregate several services or
  /// to expose one process-wide scrape.
  std::shared_ptr<telemetry::MetricRegistry> registry;

  // ---- admission control --------------------------------------------
  /// > 0: cap on queries in flight (queued + executing). Submit/Execute
  /// past the cap BLOCK the caller until the depth drops below it —
  /// bounded backpressure instead of an unbounded pool queue. 0 = off.
  size_t max_inflight = 0;
  /// > 0: when the in-flight depth is at or above this threshold, new
  /// queries are REJECTED immediately with a typed kUnavailable Result
  /// (load shedding) — before any pool enqueue, cache lookup or HR
  /// build, so an overloaded service degrades by answering cheaply
  /// instead of queueing expensively. Shed queries count in
  /// dbsa_shed_total and still yield exactly one Result per ticket
  /// (Drain never loses them). Set at or below max_inflight to shed
  /// instead of blocking; 0 = never shed.
  size_t shed_inflight_threshold = 0;
};

class QueryService {
 public:
  /// Serves the given snapshot. The snapshot is immutable and shared —
  /// several services (or a service plus single-threaded engines) may
  /// serve the same one.
  explicit QueryService(std::shared_ptr<const core::EngineState> state,
                        const ServiceOptions& options = {});

  /// Convenience: builds the snapshot from the tables (moved, not copied).
  QueryService(data::PointSet points, data::RegionSet regions,
               const ServiceOptions& options = {});

  /// Serves a PREASSEMBLED sharded state (snapshot load, src/snapshot/):
  /// the service adopts `sharded` — base + routing (+ slices, loopback)
  /// — instead of re-partitioning the dataset. Shard count and (socket
  /// mode) placement must agree with the assembled state; loopback mode
  /// requires has_slices(). Pair with ServiceOptions::serving_epoch so
  /// queries pin to the snapshot's generation.
  QueryService(std::shared_ptr<const core::ShardedState> sharded,
               const ServiceOptions& options);

  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  // ---- the v2 envelope ----------------------------------------------
  /// One query, one future. The Result is always delivered (failures as
  /// statuses); the future never stores an exception.
  std::future<Result> Execute(Query query, ExecOptions options = {});

  /// Enqueues a query; returns its ticket. Deadlines are measured from
  /// this call. Blocks only under admission control: at the
  /// ServiceOptions::max_inflight cap the caller waits for capacity,
  /// and at shed_inflight_threshold the ticket resolves immediately to
  /// a kUnavailable Result without queueing.
  uint64_t Submit(Query query, ExecOptions options);

  /// Waits for every outstanding submitted query and returns their
  /// Results sorted by ticket (= submission) order — exactly one Result
  /// per outstanding ticket, failed queries carrying their Status.
  std::vector<Result> Drain();

  // ---- cache management ---------------------------------------------
  /// Builds the HR approximations of ALL region polygons at the given
  /// epsilon in parallel across the pool (the cache-miss path of a full
  /// region aggregation, without running a query). Blocks until warm.
  /// Shard-aware: with the transport seam active, each shard server's
  /// per-shard cache is additionally warmed with the routed cell slices
  /// of exactly the regions whose cells route to that shard.
  void WarmCache(double epsilon);

  ApproxCache::Stats cache_stats() const { return cache_.stats(); }

  /// The metric registry this service records into (ServiceOptions::
  /// registry, or the service-private one) — RenderText() it to scrape.
  const std::shared_ptr<telemetry::MetricRegistry>& registry() const {
    return registry_;
  }

  const core::EngineState& state() const { return *state_; }
  /// Non-null iff the shard-aware execution path is active
  /// (options.num_shards > 1, or options.use_transport). In socket mode
  /// this is a ROUTING-ONLY build (has_slices() == false): curve runs and
  /// pruning metadata, no local slice states.
  const core::ShardedState* sharded() const { return sharded_.get(); }
  size_t num_threads() const { return pool_.size(); }
  /// The deployment path Results will report (BoundReport::path).
  ExecPath exec_path() const;

  // ---- the message seam (non-null iff options.use_transport) ---------
  /// Loopback mode only: socket-mode servers live in other processes.
  size_t num_shard_servers() const { return servers_.size(); }
  const ShardServer* shard_server(size_t s) const {
    return s < servers_.size() ? servers_[s].get() : nullptr;
  }
  /// Loopback byte/message counters ({} when the seam is inactive or
  /// carried by sockets — see socket_transport()).
  LoopbackTransport::Stats transport_stats() const {
    return loopback_ != nullptr ? loopback_->stats() : LoopbackTransport::Stats{};
  }
  /// Non-null iff the seam runs over TCP (TransportKind::kSocket):
  /// connection/failover/timeout counters and the placement in use.
  const SocketTransport* socket_transport() const { return socket_.get(); }

  // ---- FROZEN v1 shims (service/v1_compat.h) -------------------------
  std::future<core::AggregateAnswer> Aggregate(join::AggKind agg, core::Attr attr,
                                               double epsilon,
                                               core::Mode mode = core::Mode::kAuto);
  std::future<join::ResultRange> CountInPolygon(geom::Polygon poly, double epsilon);
  std::future<std::vector<uint32_t>> SelectInPolygon(geom::Polygon poly,
                                                     double epsilon);
  uint64_t Submit(Request request);
  /// v1 Drain: the same tickets as Drain(), converted to Responses.
  std::vector<Response> DrainResponses();

 private:
  using Clock = std::chrono::steady_clock;

  /// The one real constructor: `preassembled`, when non-null, is adopted
  /// as the sharded state instead of partitioning `state`.
  QueryService(std::shared_ptr<const core::EngineState> state,
               std::shared_ptr<const core::ShardedState> preassembled,
               const ServiceOptions& options);

  /// Post-failover cache rewarm of one shard (pool task; see
  /// ServiceOptions::rewarm_on_failover): re-ships the routed cell slice
  /// of every region whose cells route to `shard`, at the last WarmCache
  /// epsilon.
  void RewarmShard(size_t shard);

  /// Builds the cache-backed exec hooks for one query. When the counter
  /// pointers are non-null they receive this query's hit/miss tallies;
  /// they must outlive every Execute* call using the hooks. `trace`, when
  /// non-null, is threaded through the hooks (cache_lookup / hr_build
  /// spans, shard roundtrip spans downstream).
  core::ExecHooks MakeHooks(const ExecOptions& options,
                            std::atomic<size_t>* query_hits = nullptr,
                            std::atomic<size_t>* query_misses = nullptr,
                            telemetry::QueryTrace* trace = nullptr);

  /// The one execution funnel: admission (cancel/deadline/validation),
  /// dispatch on the spec visitor, BoundReport assembly, telemetry
  /// (latency histograms, stage spans, slow-query log), and the
  /// exception->Status boundary. Runs on a pool worker; never throws.
  Result RunQuery(uint64_t ticket, const Query& query, const ExecOptions& options,
                  Clock::time_point submitted);

  void RunSpec(const AggregateSpec& spec, const ExecOptions& options,
               telemetry::QueryTrace* trace, Result* result);
  void RunSpec(const CountSpec& spec, const ExecOptions& options,
               telemetry::QueryTrace* trace, Result* result);
  void RunSpec(const SelectSpec& spec, const ExecOptions& options,
               telemetry::QueryTrace* trace, Result* result);

  /// Shared per-spec scaffolding: builds the counter-wired hooks, runs
  /// the executor, copies the cache tallies into its stats and lifts the
  /// achieved bound onto the Result. `run(hooks)` returns the answer
  /// (AggregateAnswer / CountAnswer / SelectAnswer — anything with a
  /// `stats` member).
  template <typename RunFn>
  auto RunWithStats(const ExecOptions& options, telemetry::QueryTrace* trace,
                    Result* result, RunFn&& run);

  /// End-of-query telemetry: latency/stage histograms, query counters,
  /// the slow-query log. Called once per RunQuery, success or failure.
  void FinishQueryTelemetry(const Result& result, telemetry::QueryTrace* trace,
                            double total_ms);

  /// Admission control (see ServiceOptions::max_inflight /
  /// shed_inflight_threshold). Returns true when the query was admitted
  /// (depth incremented — the caller MUST pair it with FinishInflight
  /// when the query completes); false when it was shed, with `*shed`
  /// holding the typed kUnavailable Result to deliver.
  bool AdmitQuery(uint64_t ticket, QueryKind kind, Result* shed);
  void FinishInflight();

  std::shared_ptr<const core::EngineState> state_;
  std::shared_ptr<const core::ShardedState> sharded_;  ///< Null when unsharded.
  /// The message seam (all null unless options.use_transport): either
  /// one in-process server per shard behind a loopback transport, or a
  /// socket transport to external servers — the router drives both.
  std::vector<std::shared_ptr<ShardServer>> servers_;
  std::shared_ptr<LoopbackTransport> loopback_;
  std::shared_ptr<SocketTransport> socket_;
  std::unique_ptr<ShardRouter> router_;
  ServiceOptions options_;
  /// Declared before cache_: the cache (and every other component)
  /// records into it.
  std::shared_ptr<telemetry::MetricRegistry> registry_;
  /// Pre-resolved per-kind metrics (indexed by QueryKind) so the query
  /// path never takes the registry lock.
  telemetry::Counter* queries_total_[3] = {};
  telemetry::Histogram* query_latency_ms_[3] = {};
  telemetry::Counter* slow_queries_total_ = nullptr;
  /// Admission control state: depth counts admitted-but-unfinished
  /// queries (queued + executing). The gauge mirrors it for scrapes.
  dbsa::Mutex inflight_mu_;
  dbsa::CondVar inflight_cv_;  ///< Signals: a query finished, depth dropped.
  size_t inflight_depth_ DBSA_GUARDED_BY(inflight_mu_) = 0;
  telemetry::Gauge* inflight_depth_gauge_ = nullptr;
  telemetry::Counter* shed_total_ = nullptr;
  ApproxCache cache_;
  ThreadPool pool_;  ///< Last member: workers die before cache/state.

  struct Pending {
    uint64_t ticket = 0;
    QueryKind kind = QueryKind::kAggregate;
    std::future<Result> future;
  };
  dbsa::Mutex pending_mu_;
  uint64_t next_ticket_ DBSA_GUARDED_BY(pending_mu_) = 1;
  std::vector<Pending> pending_ DBSA_GUARDED_BY(pending_mu_);

  /// Epsilon of the most recent WarmCache call (0 = never warmed); what
  /// a post-failover rewarm replays.
  mutable dbsa::Mutex warm_mu_;
  double last_warm_epsilon_ DBSA_GUARDED_BY(warm_mu_) = 0.0;
};

}  // namespace dbsa::service

#endif  // DBSA_SERVICE_QUERY_SERVICE_H_
