#include "service/thread_pool.h"

#include <algorithm>

namespace dbsa::service {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    dbsa::MutexLock lock(mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    dbsa::MutexLock lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      dbsa::MutexLock lock(mu_);
      while (!stop_ && queue_.empty()) cv_.Wait(lock);
      if (queue_.empty()) return;  // stop_ and drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1 || threads_.empty()) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // Shared iteration state: workers and the caller race on `next`; the
  // caller waits until `done` reaches n. Helpers are best-effort — if the
  // pool is saturated, the caller finishes the loop alone. A throwing body
  // must not strand the caller at done < n: the first exception is
  // captured, the remaining iterations are drained (claimed and counted
  // without running the body), and the caller rethrows after the loop.
  struct LoopState {
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    std::atomic<bool> failed{false};
    dbsa::Mutex err_mu;
    std::exception_ptr error DBSA_GUARDED_BY(err_mu);
    dbsa::Mutex mu;  ///< Pairs with cv only; `done` itself is atomic.
    dbsa::CondVar cv;
  };
  auto state = std::make_shared<LoopState>();
  const size_t total = n;
  // One body shared by the caller and the queued helpers; `f` is the
  // caller's reference on the calling thread and a by-value copy in the
  // helpers (a queued helper may start after the caller already drained
  // the loop and returned, at which point a reference would dangle).
  const auto drain = [state, total](const std::function<void(size_t)>& f) {
    for (;;) {
      const size_t i = state->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= total) break;
      if (!state->failed.load(std::memory_order_acquire)) {
        try {
          f(i);
        } catch (...) {
          {
            dbsa::MutexLock lock(state->err_mu);
            if (state->error == nullptr) state->error = std::current_exception();
          }
          state->failed.store(true, std::memory_order_release);
        }
      }
      if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 == total) {
        dbsa::MutexLock lock(state->mu);
        state->cv.NotifyAll();
      }
    }
  };

  const size_t helpers = std::min(threads_.size(), n - 1);
  for (size_t h = 0; h < helpers; ++h) {
    Submit([drain, fn]() { drain(fn); });
  }

  drain(fn);
  {
    dbsa::MutexLock lock(state->mu);
    while (state->done.load(std::memory_order_acquire) != total) {
      state->cv.Wait(lock);
    }
  }
  if (state->failed.load(std::memory_order_acquire)) {
    dbsa::MutexLock lock(state->err_mu);
    std::rethrow_exception(state->error);
  }
}

}  // namespace dbsa::service
