#include "service/transport.h"

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "util/check.h"
#include "util/thread_annotations.h"

namespace dbsa::service {

std::string WireWriter::TakeFramed(MessageType type, uint64_t correlation) {
  WireWriter framed;
  // magic+version+type+correlation.
  framed.U32(static_cast<uint32_t>(out_.size() + kWireHeaderAfterLength));
  framed.U16(kWireMagic);
  framed.U8(kWireVersion);
  framed.U8(static_cast<uint8_t>(type));
  framed.U64(correlation);
  framed.Bytes(out_.data(), out_.size());
  out_.clear();
  return std::move(framed.out_);
}

Status ParseFrame(const std::string& bytes, MessageType* type,
                  const char** payload, size_t* payload_size,
                  uint64_t* correlation) {
  WireReader reader(bytes);
  const uint32_t length = reader.U32();
  const uint16_t magic = reader.U16();
  const uint8_t version = reader.U8();
  const uint8_t raw_type = reader.U8();
  if (!reader.ok()) {
    return Status::InvalidArgument("frame shorter than header");
  }
  if (magic != kWireMagic) {
    return Status::InvalidArgument("bad magic");
  }
  if (version != kWireVersion) {
    // Version skew is not corruption: the peer speaks a real-but-other
    // protocol revision. v1–v4 frames land here — rejected with a typed
    // status, never decoded with a misread correlation field, defaulted
    // contract/trace fields, or a missing epoch. Checked BEFORE the
    // correlation read: v1–v3 have no correlation field, so a short
    // older-version frame must reject as skew, not as truncation.
    return Status::Unimplemented("wire version " + std::to_string(version) +
                                 " not served (this peer speaks version " +
                                 std::to_string(kWireVersion) + ")");
  }
  const uint64_t corr = reader.U64();
  if (!reader.ok()) {
    return Status::InvalidArgument("frame shorter than v5 envelope");
  }
  if (static_cast<size_t>(length) + kWireLengthSize != bytes.size()) {
    return Status::InvalidArgument("frame length mismatch");
  }
  static_assert(kMessageTypeCount == 4,
                "new MessageType: widen this acceptance range (and teach "
                "ShardListener / the demux loops to route it)");
  if (raw_type < static_cast<uint8_t>(MessageType::kScatterRequest) ||
      raw_type > static_cast<uint8_t>(MessageType::kStatsReply)) {
    return Status::InvalidArgument("unknown message type " +
                                   std::to_string(raw_type));
  }
  *type = static_cast<MessageType>(raw_type);
  *payload = bytes.data() + kWireEnvelopeSize;
  *payload_size = bytes.size() - kWireEnvelopeSize;
  if (correlation != nullptr) *correlation = corr;
  return Status::OK();
}

uint64_t PeekCorrelation(const std::string& frame) {
  if (frame.size() < kWireEnvelopeSize) return 0;
  return util::LoadWire<uint64_t>(frame.data() + kWireCorrelationOffset);
}

void PatchCorrelation(std::string* frame, uint64_t correlation) {
  if (frame->size() < kWireEnvelopeSize) return;
  util::StoreWire(frame->data() + kWireCorrelationOffset, correlation);
}

namespace {

/// A well-formed CellId: a single sentinel bit at an even position at or
/// below 2*kMaxLevel, with the Morton prefix inside the 49-bit id domain.
/// Must be checked BEFORE CellId::level()/prefix() touch the value —
/// __builtin_ctzll(0) is undefined behaviour.
bool ValidCellIdBits(uint64_t id) {
  if (id == 0) return false;
  if (id >= (uint64_t{1} << (2 * raster::CellId::kMaxLevel + 1))) return false;
  const int ctz = __builtin_ctzll(id);
  return ctz % 2 == 0 && ctz <= 2 * raster::CellId::kMaxLevel;
}

constexpr uint8_t kFlagHasObject = 1u << 0;
constexpr uint8_t kFlagHasCells = 1u << 1;

bool ValidScatterKind(uint8_t k) {
  static_assert(ScatterRequest::kKindCount == 3,
                "new scatter kind: widen this acceptance bound");
  return k <= static_cast<uint8_t>(ScatterRequest::Kind::kWarm);
}

bool ValidBoundKind(uint8_t k) {
  static_assert(query::kBoundKindCount == 3,
                "new bound kind: widen this acceptance bound");
  return k <= static_cast<uint8_t>(query::BoundKind::kExact);
}

bool ValidStatusCode(uint8_t c) {
  static_assert(kStatusCodeCount == 10,
                "new StatusCode: widen this acceptance bound (codes are "
                "stable wire values — append only)");
  return c <= static_cast<uint8_t>(kMaxStatusCode);
}

}  // namespace

std::string ScatterRequest::Encode() const {
  WireWriter w;
  w.U8(static_cast<uint8_t>(kind));
  uint8_t flags = 0;
  if (has_object) flags |= kFlagHasObject;
  if (has_cells) flags |= kFlagHasCells;
  w.U8(flags);
  w.U8(static_cast<uint8_t>(bound_kind));
  w.F64(bound_epsilon);
  w.I32(level);
  w.U64(checksum);
  w.U64(trace_hi);
  w.U64(trace_lo);
  w.U64(span_id);
  w.U64(epoch);
  if (has_object) {
    w.U64(object.hi);
    w.U64(object.lo);
  }
  if (has_cells) {
    w.U32(static_cast<uint32_t>(cells.size()));
    for (const raster::HrCell& cell : cells) {
      w.U64(cell.id.id());
      w.U8(cell.boundary ? 1 : 0);
    }
  }
  return w.TakeFramed(MessageType::kScatterRequest);
}

Status ScatterRequest::Decode(const std::string& bytes, ScatterRequest* out) {
  MessageType type;
  const char* payload = nullptr;
  size_t payload_size = 0;
  const Status framed = ParseFrame(bytes, &type, &payload, &payload_size);
  if (!framed.ok()) return framed;
  if (type != MessageType::kScatterRequest) {
    return Status::InvalidArgument("not a ScatterRequest");
  }
  WireReader r(payload, payload_size);
  const uint8_t raw_kind = r.U8();
  const uint8_t flags = r.U8();
  const uint8_t raw_bound_kind = r.U8();
  out->bound_epsilon = r.F64();
  out->level = r.I32();
  out->checksum = r.U64();
  out->trace_hi = r.U64();
  out->trace_lo = r.U64();
  out->span_id = r.U64();
  out->epoch = r.U64();
  if (!ValidScatterKind(raw_kind)) {
    return Status::InvalidArgument("unknown scatter kind");
  }
  if (!ValidBoundKind(raw_bound_kind)) {
    return Status::InvalidArgument("unknown bound kind");
  }
  if (std::isnan(out->bound_epsilon)) {
    return Status::InvalidArgument("NaN bound epsilon");
  }
  out->kind = static_cast<Kind>(raw_kind);
  out->bound_kind = static_cast<query::BoundKind>(raw_bound_kind);
  out->has_object = (flags & kFlagHasObject) != 0;
  out->has_cells = (flags & kFlagHasCells) != 0;
  out->object = ObjectKey();
  if (out->has_object) {
    const uint64_t hi = r.U64();
    const uint64_t lo = r.U64();
    out->object = ObjectKey(hi, lo);
  }
  out->cells.clear();
  if (out->has_cells) {
    const uint32_t n = r.U32();
    // The count must be consistent with the remaining bytes before any
    // allocation — a corrupted count must not reserve gigabytes.
    if (!r.ok() || static_cast<uint64_t>(n) * 9 != r.remaining()) {
      return Status::InvalidArgument("cell count inconsistent with payload size");
    }
    out->cells.reserve(n);
    for (uint32_t i = 0; i < n; ++i) {
      const uint64_t id = r.U64();
      const uint8_t boundary = r.U8();
      if (!ValidCellIdBits(id) || boundary > 1) {
        return Status::InvalidArgument("invalid cell encoding");
      }
      out->cells.push_back({raster::CellId(id), boundary != 0});
    }
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in ScatterRequest");
  }
  return Status::OK();
}

dbsa::Status GatherPartial::ToStatus() const {
  static_assert(kDispositionCount == 3,
                "new disposition: give it a typed status mapping below");
  switch (status) {
    case Disposition::kOk:
      return Status::OK();
    case Disposition::kNotCached:
      return Status(code != StatusCode::kOk ? code : StatusCode::kNotFound,
                    error.empty() ? "slice not cached" : error);
    case Disposition::kError:
      return Status(code != StatusCode::kOk ? code : StatusCode::kInternal,
                    error.empty() ? "shard error" : error);
  }
  return Status::Internal("invalid partial disposition");
}

GatherPartial GatherPartial::FromStatus(ScatterRequest::Kind kind,
                                        Disposition disp,
                                        const dbsa::Status& status) {
  DBSA_CHECK(disp != Disposition::kOk && !status.ok());
  GatherPartial out;
  out.kind = kind;
  out.status = disp;
  out.code = status.code();
  out.error = status.message();
  return out;
}

std::string GatherPartial::Encode() const {
  WireWriter w;
  w.U8(static_cast<uint8_t>(kind));
  w.U8(static_cast<uint8_t>(status));
  // The serving epoch travels on EVERY partial — error and not-cached
  // included — so an epoch-skew rejection names the server's epoch typed.
  w.U64(epoch);
  if (status != Disposition::kOk) {
    w.U8(static_cast<uint8_t>(code));
    w.U32(static_cast<uint32_t>(error.size()));
    w.Bytes(error.data(), error.size());
  } else {
    static_assert(ScatterRequest::kKindCount == 3,
                  "new scatter kind: encode its partial payload below (and "
                  "mirror the decoder + docs/wire-format.md)");
    switch (kind) {
      case ScatterRequest::Kind::kAggregateCells: {
        w.F64(aggregate.count);
        w.F64(aggregate.sum);
        w.F64(aggregate.sum_comp);
        w.F64(aggregate.boundary_count);
        w.F64(aggregate.boundary_sum);
        w.F64(aggregate.boundary_sum_comp);
        w.U64(aggregate.query_cells);
        w.U64(aggregate.searches);
        break;
      }
      case ScatterRequest::Kind::kSelectIds: {
        w.U64(probe_cells);
        w.U32(static_cast<uint32_t>(keyed_ids.size()));
        for (const auto& [key, id] : keyed_ids) {
          w.U64(key);
          w.U32(id);
        }
        break;
      }
      case ScatterRequest::Kind::kWarm: {
        w.U64(cells_cached);
        break;
      }
    }
  }
  return w.TakeFramed(MessageType::kGatherPartial);
}

dbsa::Status GatherPartial::Decode(const std::string& bytes, GatherPartial* out) {
  MessageType type;
  const char* payload = nullptr;
  size_t payload_size = 0;
  const Status framed = ParseFrame(bytes, &type, &payload, &payload_size);
  if (!framed.ok()) return framed;
  if (type != MessageType::kGatherPartial) {
    return Status::InvalidArgument("not a GatherPartial");
  }
  WireReader r(payload, payload_size);
  const uint8_t raw_kind = r.U8();
  const uint8_t raw_status = r.U8();
  const uint64_t epoch = r.U64();
  if (!r.ok() || !ValidScatterKind(raw_kind) ||
      raw_status > static_cast<uint8_t>(Disposition::kNotCached)) {
    return Status::InvalidArgument("invalid GatherPartial header");
  }
  out->kind = static_cast<ScatterRequest::Kind>(raw_kind);
  out->status = static_cast<Disposition>(raw_status);
  out->epoch = epoch;
  out->code = StatusCode::kOk;
  out->error.clear();
  out->aggregate = join::CellAggregate();
  out->keyed_ids.clear();
  out->probe_cells = 0;
  out->cells_cached = 0;
  if (out->status != Disposition::kOk) {
    const uint8_t raw_code = r.U8();
    if (!r.ok() || !ValidStatusCode(raw_code)) {
      return Status::InvalidArgument("invalid partial status code");
    }
    out->code = static_cast<StatusCode>(raw_code);
    const uint32_t n = r.U32();
    if (!r.ok() || n != r.remaining()) {
      return Status::InvalidArgument("error text inconsistent with payload size");
    }
    out->error.assign(payload + (payload_size - n), n);
    return Status::OK();
  }
  static_assert(ScatterRequest::kKindCount == 3,
                "new scatter kind: decode its partial payload below");
  switch (out->kind) {
    case ScatterRequest::Kind::kAggregateCells: {
      out->aggregate.count = r.F64();
      out->aggregate.sum = r.F64();
      out->aggregate.sum_comp = r.F64();
      out->aggregate.boundary_count = r.F64();
      out->aggregate.boundary_sum = r.F64();
      out->aggregate.boundary_sum_comp = r.F64();
      out->aggregate.query_cells = static_cast<size_t>(r.U64());
      out->aggregate.searches = static_cast<size_t>(r.U64());
      break;
    }
    case ScatterRequest::Kind::kSelectIds: {
      out->probe_cells = r.U64();
      const uint32_t n = r.U32();
      if (!r.ok() || static_cast<uint64_t>(n) * 12 != r.remaining()) {
        return Status::InvalidArgument("id count inconsistent with payload size");
      }
      out->keyed_ids.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        const uint64_t key = r.U64();
        const uint32_t id = r.U32();
        out->keyed_ids.emplace_back(key, id);
      }
      break;
    }
    case ScatterRequest::Kind::kWarm: {
      out->cells_cached = r.U64();
      break;
    }
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in GatherPartial");
  }
  return Status::OK();
}

std::string StatsRequest::Encode() const {
  WireWriter w;
  return w.TakeFramed(MessageType::kStatsRequest);
}

dbsa::Status StatsRequest::Decode(const std::string& bytes, StatsRequest* out) {
  (void)out;
  MessageType type;
  const char* payload = nullptr;
  size_t payload_size = 0;
  const Status framed = ParseFrame(bytes, &type, &payload, &payload_size);
  if (!framed.ok()) return framed;
  if (type != MessageType::kStatsRequest) {
    return Status::InvalidArgument("not a StatsRequest");
  }
  if (payload_size != 0) {
    return Status::InvalidArgument("trailing bytes in StatsRequest");
  }
  return Status::OK();
}

std::string StatsReply::Encode() const {
  WireWriter w;
  w.U32(static_cast<uint32_t>(text.size()));
  w.Bytes(text.data(), text.size());
  return w.TakeFramed(MessageType::kStatsReply);
}

dbsa::Status StatsReply::Decode(const std::string& bytes, StatsReply* out) {
  MessageType type;
  const char* payload = nullptr;
  size_t payload_size = 0;
  const Status framed = ParseFrame(bytes, &type, &payload, &payload_size);
  if (!framed.ok()) return framed;
  if (type != MessageType::kStatsReply) {
    return Status::InvalidArgument("not a StatsReply");
  }
  WireReader r(payload, payload_size);
  const uint32_t n = r.U32();
  if (!r.ok() || n != r.remaining()) {
    return Status::InvalidArgument("stats text inconsistent with payload size");
  }
  out->text.assign(payload + (payload_size - n), n);
  return Status::OK();
}

LoopbackTransport::LoopbackTransport(
    std::vector<Handler> handlers,
    std::shared_ptr<telemetry::MetricRegistry> registry)
    : handlers_(std::move(handlers)),
      registry_(registry ? std::move(registry)
                         : std::make_shared<telemetry::MetricRegistry>()),
      messages_(registry_->GetCounter("dbsa_loopback_messages_total")),
      request_bytes_(registry_->GetCounter("dbsa_loopback_request_bytes_total")),
      response_bytes_(
          registry_->GetCounter("dbsa_loopback_response_bytes_total")) {}

uint64_t LoopbackTransport::Send(size_t shard, std::string request, Done done) {
  if (shard >= handlers_.size()) {
    done(Status::InvalidArgument("LoopbackTransport: no such shard " +
                                 std::to_string(shard)));
    return 0;
  }
  const uint64_t correlation =
      next_correlation_.fetch_add(1, std::memory_order_relaxed);
  PatchCorrelation(&request, correlation);
  messages_->Add(1);
  request_bytes_->Add(request.size());
  std::string response = handlers_[shard](request);
  response_bytes_->Add(response.size());
  done(std::move(response));
  return correlation;
}

std::string Roundtrip(Transport& transport, size_t shard, std::string request) {
  // The callback may fire on a transport-owned thread after this frame
  // would have unwound on an exception path, so the wait state is shared,
  // not stack-owned.
  struct WaitState {
    dbsa::Mutex mu;
    dbsa::CondVar cv;
    bool ready DBSA_GUARDED_BY(mu) = false;
    Status status DBSA_GUARDED_BY(mu) = Status::OK();
    std::string frame DBSA_GUARDED_BY(mu);
  };
  auto state = std::make_shared<WaitState>();
  transport.Send(shard, std::move(request),
                 [state](StatusOr<std::string> result) {
                   {
                     dbsa::MutexLock lock(state->mu);
                     if (result.ok()) {
                       state->frame = std::move(result).value();
                     } else {
                       state->status = result.status();
                     }
                     state->ready = true;
                   }
                   state->cv.NotifyOne();
                 });
  dbsa::MutexLock lock(state->mu);
  while (!state->ready) state->cv.Wait(lock);
  if (!state->status.ok()) throw StatusException(state->status);
  return std::move(state->frame);
}

LoopbackTransport::Stats LoopbackTransport::stats() const {
  Stats s;
  s.messages = messages_->Value();
  s.request_bytes = request_bytes_->Value();
  s.response_bytes = response_bytes_->Value();
  return s;
}

}  // namespace dbsa::service
