#include "service/placement.h"

#include <fstream>
#include <sstream>

namespace dbsa::service {

std::string Endpoint::ToString() const {
  // IPv6 literals get brackets so ToString() output re-parses (the
  // placement-file round-trip contract).
  if (host.find(':') != std::string::npos) {
    return "[" + host + "]:" + std::to_string(port);
  }
  return host + ":" + std::to_string(port);
}

StatusOr<Endpoint> ParseEndpoint(const std::string& spec) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) {
    return Status::InvalidArgument("endpoint '" + spec +
                                   "' is not of the form host:port");
  }
  Endpoint out;
  out.host = spec.substr(0, colon);
  // IPv6 literals must be bracketed ([::1]:7001) so the host/port split
  // is unambiguous; a bare colon-bearing host is a missing-port typo
  // ("fe80::1" would otherwise "parse" as host "fe80:" port 1 and only
  // surface per-query as an unresolvable endpoint).
  if (!out.host.empty() && out.host.front() == '[') {
    if (out.host.size() < 3 || out.host.back() != ']') {
      return Status::InvalidArgument("endpoint '" + spec +
                                     "': malformed [IPv6] host");
    }
    out.host = out.host.substr(1, out.host.size() - 2);
  } else if (out.host.find(':') != std::string::npos) {
    return Status::InvalidArgument(
        "endpoint '" + spec +
        "': host contains ':' (missing port? bracket IPv6 as [addr]:port)");
  }
  const std::string port_str = spec.substr(colon + 1);
  uint32_t port = 0;
  for (const char c : port_str) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("endpoint '" + spec + "': non-numeric port");
    }
    port = port * 10 + static_cast<uint32_t>(c - '0');
    if (port > 65535) {
      return Status::InvalidArgument("endpoint '" + spec + "': port out of range");
    }
  }
  if (port == 0) {
    return Status::InvalidArgument("endpoint '" + spec + "': port must be 1..65535");
  }
  out.port = static_cast<uint16_t>(port);
  return out;
}

ShardPlacement& ShardPlacement::Add(Endpoint primary) {
  Entry entry;
  entry.primary = std::move(primary);
  shards.push_back(std::move(entry));
  return *this;
}

ShardPlacement& ShardPlacement::Add(Endpoint primary, Endpoint replica) {
  Entry entry;
  entry.primary = std::move(primary);
  entry.has_replica = true;
  entry.replica = std::move(replica);
  shards.push_back(std::move(entry));
  return *this;
}

std::string ShardPlacement::ToString() const {
  std::string out = "# <shard-id> <primary host:port> [<replica host:port>]\n";
  for (size_t s = 0; s < shards.size(); ++s) {
    out += std::to_string(s) + " " + shards[s].primary.ToString();
    if (shards[s].has_replica) out += " " + shards[s].replica.ToString();
    out += "\n";
  }
  return out;
}

StatusOr<ShardPlacement> ShardPlacement::Parse(const std::string& text) {
  struct Parsed {
    bool seen = false;
    Entry entry;
  };
  std::vector<Parsed> by_id;
  std::istringstream lines(text);
  std::string line;
  size_t line_no = 0;
  while (std::getline(lines, line)) {
    ++line_no;
    const std::string at_line = " (placement line " + std::to_string(line_no) + ")";
    // Strip trailing comments and whitespace-only lines.
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream fields(line);
    std::string id_str, primary_str, replica_str, extra;
    if (!(fields >> id_str)) continue;  // Blank / comment-only line.
    if (!(fields >> primary_str)) {
      return Status::InvalidArgument("shard line needs a primary endpoint" +
                                     at_line);
    }
    const bool has_replica = static_cast<bool>(fields >> replica_str);
    if (fields >> extra) {
      return Status::InvalidArgument("unexpected trailing field '" + extra + "'" +
                                     at_line);
    }
    size_t id = 0;
    for (const char c : id_str) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument("shard id '" + id_str +
                                       "' is not a number" + at_line);
      }
      id = id * 10 + static_cast<size_t>(c - '0');
      if (id > 1u << 20) {
        return Status::InvalidArgument("shard id '" + id_str +
                                       "' is implausibly large" + at_line);
      }
    }
    StatusOr<Endpoint> primary = ParseEndpoint(primary_str);
    if (!primary.ok()) {
      return Status::InvalidArgument(primary.status().message() + at_line);
    }
    Parsed parsed;
    parsed.seen = true;
    parsed.entry.primary = std::move(primary.value());
    if (has_replica) {
      StatusOr<Endpoint> replica = ParseEndpoint(replica_str);
      if (!replica.ok()) {
        return Status::InvalidArgument(replica.status().message() + at_line);
      }
      parsed.entry.has_replica = true;
      parsed.entry.replica = std::move(replica.value());
    }
    if (by_id.size() <= id) by_id.resize(id + 1);
    if (by_id[id].seen) {
      return Status::InvalidArgument("duplicate shard id " + std::to_string(id) +
                                     at_line);
    }
    by_id[id] = std::move(parsed);
  }
  if (by_id.empty()) {
    return Status::InvalidArgument("placement spec names no shards");
  }
  ShardPlacement placement;
  placement.shards.reserve(by_id.size());
  for (size_t s = 0; s < by_id.size(); ++s) {
    if (!by_id[s].seen) {
      return Status::InvalidArgument(
          "placement covers " + std::to_string(by_id.size()) +
          " shards but shard " + std::to_string(s) + " is missing");
    }
    placement.shards.push_back(std::move(by_id[s].entry));
  }
  return placement;
}

StatusOr<ShardPlacement> ShardPlacement::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("cannot read placement file '" + path + "'");
  }
  std::ostringstream text;
  text << in.rdbuf();
  return Parse(text.str());
}

}  // namespace dbsa::service
