// The shard-server message seam: a byte-level wire format plus the
// transport abstraction the distribution rehearsal runs over.
//
// ShardedState (core/sharded_state.h) already isolates shards behind
// independent EngineState slices with clean scatter/gather seams — the
// routed cell slice of PruneCellsForShard going out, a CellAggregate or
// keyed id list coming back, merged in ascending shard order. This header
// turns those seams into explicit serialized messages:
//
//   ScatterRequest   query kind, epsilon level, optional approximation
//                    identity (the per-shard cache key) and the routed
//                    cell span for ONE shard;
//   GatherPartial    the shard's partial answer — cell aggregates for
//                    aggregations/counts, (leaf key, global id) pairs for
//                    selections — or a typed error / not-cached signal.
//
// The NORMATIVE byte-level spec — offsets, field tables, acceptance
// rules, compatibility policy — is docs/wire-format.md; this comment is
// the summary. Wire format invariants (tested in transport_test.cc):
//
//   * every message is length-prefixed, versioned and correlated:
//       [u32 length][u16 magic 0xDB5A][u8 version][u8 type]
//       [u64 correlation][payload]
//     where `length` counts every byte after the length field, so a
//     stream transport can frame messages without understanding them;
//   * all integers are little-endian fixed-width; doubles travel as their
//     IEEE-754 bit pattern (bit-exact round trip — the byte-identity
//     contract of the sharded engine survives serialization, including
//     the compensated SUM pairs of CellAggregate);
//   * decoding is total: truncated, oversized, version-skewed or
//     corrupted bytes produce a typed Status, never undefined behaviour
//     (cell ids are validated against the CellId invariants before any
//     bit-twiddling touches them);
//   * unknown trailing payload bytes are rejected — a frame must be
//     consumed exactly;
//   * version 5 (current) keeps the v4 multiplexed envelope — a u64
//     correlation id on every frame, replies paired by id, never by
//     stream position — and adds a u64 serving EPOCH to every
//     ScatterRequest and GatherPartial payload: a client pinned to epoch
//     E is rejected typed (kFailedPrecondition) by a server loaded at a
//     different epoch, so read-your-epoch holds across failover
//     (docs/snapshot-format.md). Versions 1–4 are rejected with
//     StatusCode::kUnimplemented — total, typed, never UB — since an
//     older peer would misread the epoch field as payload (and vice
//     versa).
//
// The Transport interface is asynchronous and multiplexed: Send starts
// one tagged request and the completion callback delivers the framed
// reply (or a typed Status) when it lands, so one connection per shard
// carries many in-flight requests instead of one blocked thread each.
// LoopbackTransport is the in-process implementation (request and
// response still cross the byte format, so the rehearsal exercises the
// full seam); a real RPC transport drops in by implementing Send. The
// free function Roundtrip(transport, shard, request) is the blocking
// one-shot wrapper for callers without concurrency.

#ifndef DBSA_SERVICE_TRANSPORT_H_
#define DBSA_SERVICE_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "join/point_index_join.h"
#include "query/error_bound.h"
#include "raster/hierarchical_raster.h"
#include "service/approx_cache.h"
#include "telemetry/metrics.h"
#include "util/determinism.h"
#include "util/status.h"

namespace dbsa::service {

// ---------------------------------------------------------------- wire
// Primitive little-endian encoding helpers. WireReader is bounds-checked:
// any read past the end flips ok() and returns zeros, so decoders can
// validate once at the end instead of after every field.

inline constexpr uint16_t kWireMagic = 0xDB5A;
/// Version 5: the v4 envelope with a u64 serving-epoch field on every
/// ScatterRequest and GatherPartial payload (read-your-epoch across
/// failover; see docs/snapshot-format.md). Decoders reject every other
/// version with a typed status.
inline constexpr uint8_t kWireVersion = 5;

/// Envelope field layout, as byte offsets from the start of a framed
/// message: [u32 length][u16 magic][u8 version][u8 type][u64 correlation].
/// The length field counts everything AFTER itself (header remainder +
/// payload), so a framed message is kWireLengthSize + length bytes long.
inline constexpr size_t kWireLengthSize = sizeof(uint32_t);
inline constexpr size_t kWireMagicOffset = kWireLengthSize;
inline constexpr size_t kWireVersionOffset =
    kWireMagicOffset + sizeof(kWireMagic);
inline constexpr size_t kWireTypeOffset =
    kWireVersionOffset + sizeof(kWireVersion);
inline constexpr size_t kWireCorrelationOffset =
    kWireTypeOffset + sizeof(uint8_t);  // The type byte.
inline constexpr size_t kWireEnvelopeSize =
    kWireCorrelationOffset + sizeof(uint64_t);
/// What the length field itself counts for an empty payload.
inline constexpr size_t kWireHeaderAfterLength =
    kWireEnvelopeSize - kWireLengthSize;

// The layout above is normative: every encoder, decoder, correlation
// patcher and type-byte peek in the codebase (and the external processes
// on the other end of the socket) agrees on these exact offsets, and
// docs/wire-format.md documents them as numbers. Freeze them — a drifted
// field size or a reordered header must fail the build, not corrupt a
// conversation with a peer that framed yesterday's layout.
static_assert(kWireMagicOffset == 4, "wire envelope: magic moved");
static_assert(kWireVersionOffset == 6, "wire envelope: version moved");
static_assert(kWireTypeOffset == 7, "wire envelope: type moved");
static_assert(kWireCorrelationOffset == 8, "wire envelope: correlation moved");
static_assert(kWireEnvelopeSize == 16, "wire envelope: size changed");
static_assert(kWireHeaderAfterLength == 12,
              "wire envelope: length field no longer counts 12 header bytes");
static_assert(kWireMagic == 0xDB5A, "wire magic changed");
static_assert(kWireVersion == 5, "wire version changed — update the asserts "
                                 "and docs/wire-format.md together");

enum class MessageType : uint8_t {
  kScatterRequest = 1,
  kGatherPartial = 2,
  kStatsRequest = 3,  ///< Admin: scrape the server's MetricRegistry.
  kStatsReply = 4,    ///< Admin: Prometheus text exposition bytes.
};

/// Number of MessageType values (wire types number 1..kMessageTypeCount;
/// zero is reserved as never-valid). Non-switch dispatch sites — frame
/// type validation, the listener's type-byte peek — pin this with an
/// adjacent static_assert so a new frame type is a compile error at
/// every site that must learn to route it.
inline constexpr int kMessageTypeCount = 4;
static_assert(static_cast<int>(MessageType::kStatsReply) == kMessageTypeCount,
              "MessageType grew: bump kMessageTypeCount, then fix every "
              "static_assert(kMessageTypeCount == ...) handling site and "
              "docs/wire-format.md");

/// Serializes payload fields. Deliberately field-wise: the only way to
/// put bytes on the wire is one arithmetic/enum primitive at a time
/// (util::StoreWire rejects whole structs at compile time) or an
/// explicit length-counted byte string. Struct padding therefore cannot
/// reach a frame — the layout on the wire is the one docs/wire-format.md
/// spells, never whatever the host ABI happened to pack.
class WireWriter {
 public:
  void U8(uint8_t v) { out_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v) { Put(v); }
  void U32(uint32_t v) { Put(v); }
  void U64(uint64_t v) { Put(v); }
  void I32(int32_t v) { Put(v); }
  /// IEEE-754 bit pattern — bit-exact round trip.
  void F64(double v) { Put(util::BitCast<uint64_t>(v)); }
  /// Opaque byte strings (error text, stats expositions) — callers
  /// always write a length field first. Typed char*-only so this is not
  /// a struct escape hatch: `w.Bytes(&some_struct, sizeof(...))` would
  /// put padding bytes on the wire without any memcpy token for
  /// check_determinism.sh to see, so the deleted overload makes it a
  /// compile error instead.
  void Bytes(const char* data, size_t n) { out_.append(data, n); }
  template <typename T>
  void Bytes(const T*, size_t) = delete;  // field-wise encode via U8/.../F64

  const std::string& payload() const { return out_; }

  /// Wraps the accumulated payload in a framed message and resets.
  /// Encoders frame with correlation 0 by default; the transport stamps a
  /// unique id at Send time (PatchCorrelation), and a server echoes the
  /// request's id on the reply.
  std::string TakeFramed(MessageType type, uint64_t correlation = 0);

 private:
  /// Values are written in host order; the supported targets are
  /// little-endian (a static_assert here would be the place to widen
  /// this). StoreWire statically rejects non-primitive T.
  template <typename T>
  void Put(const T& v) {
    char buf[sizeof(T)];
    util::StoreWire(buf, v);
    out_.append(buf, sizeof(T));
  }

  std::string out_;
};

/// Bounds-checked field-wise decoder: any read past the end flips ok()
/// and returns zeros, so decoders can validate once at the end instead
/// of after every field. Like WireWriter, reads are typed primitives
/// only — a frame is never read through a struct layout.
class WireReader {
 public:
  WireReader(const void* data, size_t n)
      : p_(static_cast<const uint8_t*>(data)), n_(n) {}
  explicit WireReader(const std::string& bytes) : WireReader(bytes.data(), bytes.size()) {}

  uint8_t U8() { return Take<uint8_t>(); }
  uint16_t U16() { return Take<uint16_t>(); }
  uint32_t U32() { return Take<uint32_t>(); }
  uint64_t U64() { return Take<uint64_t>(); }
  int32_t I32() { return Take<int32_t>(); }
  double F64() { return util::BitCast<double>(Take<uint64_t>()); }

  /// True iff every read so far was in bounds.
  bool ok() const { return ok_; }
  /// True iff the payload was consumed exactly (no trailing bytes).
  bool AtEnd() const { return ok_ && pos_ == n_; }
  size_t remaining() const { return n_ - pos_; }

 private:
  template <typename T>
  T Take() {
    if (!ok_ || n_ - pos_ < sizeof(T)) {
      ok_ = false;
      return T{};
    }
    const T v = util::LoadWire<T>(p_ + pos_);
    pos_ += sizeof(T);
    return v;
  }

  const uint8_t* p_;
  size_t n_;
  size_t pos_ = 0;
  bool ok_ = true;
};

/// Parses a frame header; on success points `payload` into `bytes` and
/// (when `correlation` is non-null) yields the frame's correlation id.
/// Rejects short frames, length mismatches and bad magic with
/// kInvalidArgument, and version skew (v1–v3 included) with
/// kUnimplemented — so a router can tell "corrupt bytes" from "peer
/// speaks another version" without parsing error text. The version check
/// runs BEFORE the correlation field is read, so a short frame of an
/// older (correlation-free) version still rejects as version skew, not
/// as truncation.
Status ParseFrame(const std::string& bytes, MessageType* type,
                  const char** payload, size_t* payload_size,
                  uint64_t* correlation = nullptr);

/// Reads the correlation id of a framed message without validating the
/// rest of the envelope (0 if the frame is too short to carry one).
/// Demux loops use this to pair an arriving reply with its pending
/// request before — and regardless of — payload decoding.
uint64_t PeekCorrelation(const std::string& frame);

/// Overwrites the correlation id field of a framed message in place.
/// No-op if the frame is too short to carry one.
void PatchCorrelation(std::string* frame, uint64_t correlation);

// ------------------------------------------------------------- messages

/// One shard's slice of a scattered query. Cells, when present, are the
/// exact output of ShardedState::PruneCellsForShard for this shard — the
/// in-process seam re-expressed as a payload. When `has_cells` is false
/// the request references the shard's cached slice for (object, level)
/// instead of shipping it (the per-shard HR cache hit path); the server
/// answers kNotCached if it no longer holds the entry.
struct ScatterRequest {
  enum class Kind : uint8_t {
    kAggregateCells = 0,  ///< GatherPartial carries a CellAggregate.
    kSelectIds = 1,       ///< GatherPartial carries (leaf key, id) pairs.
    kWarm = 2,            ///< Cache the cells; no execution.
  };
  /// Pinned at every Kind dispatch (encoder, decoder, server handler) by
  /// an adjacent static_assert — a new request kind must visit each.
  static constexpr int kKindCount = 3;

  Kind kind = Kind::kAggregateCells;
  /// The query's distance-bound contract as submitted (v2 envelope
  /// provenance: a shard can log/account the bound regime it served
  /// under). The SERVING resolution is `level` below; warm requests
  /// carry the level as a kGridLevel bound.
  query::BoundKind bound_kind = query::BoundKind::kGridLevel;
  double bound_epsilon = 0.0;
  /// Epsilon level of the approximation (half of the cache key).
  int32_t level = 0;
  /// Checksum of the FULL approximation the cells were pruned from
  /// (ApproxChecksum in shard_server.h). Stored with cached slices and
  /// compared on reference requests, so a stale or colliding cache entry
  /// is detected instead of silently reused.
  uint64_t checksum = 0;
  /// Trace identity (v3): the submitting query's 128-bit trace id and the
  /// client-side span this request descends from. All-zero means
  /// untraced; servers record their spans under this id either way and
  /// never branch execution on it (observe-only contract).
  uint64_t trace_hi = 0;
  uint64_t trace_lo = 0;
  uint64_t span_id = 0;
  /// Serving epoch the client is pinned to (v5). Zero means "any epoch"
  /// — a client that never loaded a snapshot accepts whatever the server
  /// serves. Non-zero: a server whose own serving epoch differs rejects
  /// the request with a typed kFailedPrecondition partial, so a failover
  /// to a stale replica can never silently answer from another dataset
  /// generation (read-your-epoch; docs/snapshot-format.md).
  uint64_t epoch = 0;
  /// Identity of the approximation the cells came from (region index or
  /// ad-hoc polygon fingerprint — the ApproxCache key space).
  bool has_object = false;
  ObjectKey object;
  /// Routed cell span for this shard.
  bool has_cells = false;
  std::vector<raster::HrCell> cells;

  std::string Encode() const;
  /// Total: any malformed input yields a non-OK status (kUnimplemented
  /// for version skew, kInvalidArgument otherwise), never UB.
  static Status Decode(const std::string& bytes, ScatterRequest* out);
};

/// One shard's partial answer, merged client-side in ascending shard
/// order (the canonical gather of the merge-identity contract).
struct GatherPartial {
  enum class Disposition : uint8_t {
    kOk = 0,
    kError = 1,      ///< `code` + `error` carry the typed failure.
    kNotCached = 2,  ///< Cache reference missed; resend with cells.
  };
  /// Pinned at the disposition dispatches (ToStatus, wire validation).
  static constexpr int kDispositionCount = 3;

  ScatterRequest::Kind kind = ScatterRequest::Kind::kAggregateCells;
  Disposition status = Disposition::kOk;
  /// The answering server's serving epoch (v5), echoed on EVERY partial
  /// — OK, error and not-cached alike — so a client can observe which
  /// dataset generation produced the answer (and an epoch-skew rejection
  /// names the server's epoch without parsing error text).
  uint64_t epoch = 0;
  /// Typed error of a non-OK partial — wire errors round-trip as
  /// StatusCode values, not as text to be re-parsed.
  StatusCode code = StatusCode::kOk;
  std::string error;
  /// kAggregateCells: the shard's cell aggregate (doubles bit-exact,
  /// compensated SUM pairs included).
  join::CellAggregate aggregate;
  /// kSelectIds: (base-grid leaf key, base-table row id), ascending.
  std::vector<std::pair<uint64_t, uint32_t>> keyed_ids;
  /// kSelectIds: cells of the slice the shard probed — reported even on
  /// cache-reference hits (the server knows its slice size when the
  /// router deliberately does not), so ExecStats::query_cells keeps the
  /// per-shard-slice accounting selects share with aggregates/counts.
  uint64_t probe_cells = 0;
  /// kWarm: number of cells now cached for the key.
  uint64_t cells_cached = 0;

  /// The typed status of this partial (OK for kOk; kNotCached maps to
  /// kNotFound unless the server set a code).
  dbsa::Status ToStatus() const;
  /// Builds an error partial from a status (never from an OK one).
  static GatherPartial FromStatus(ScatterRequest::Kind kind, Disposition disp,
                                  const dbsa::Status& status);

  std::string Encode() const;
  /// Total: any malformed input yields a non-OK status, never UB.
  static dbsa::Status Decode(const std::string& bytes, GatherPartial* out);
};

/// Admin frame (v3+): asks a shard process for its MetricRegistry. Empty
/// payload by design — a scraper needs no state to ask.
struct StatsRequest {
  std::string Encode() const;
  static dbsa::Status Decode(const std::string& bytes, StatsRequest* out);
};

/// Admin reply (v3+): the Prometheus text exposition of the serving
/// process's registry. Opaque bytes on the wire (length-prefixed), so the
/// exposition format can evolve without a wire revision.
struct StatsReply {
  std::string text;

  std::string Encode() const;
  static dbsa::Status Decode(const std::string& bytes, StatsReply* out);
};

// ------------------------------------------------------------ transport

/// Asynchronous multiplexed message transport to a set of shard servers.
/// Implementations must be thread-safe: the router fans scatter requests
/// out across the service pool, and many queries keep requests in flight
/// on the same shard concurrently.
class Transport {
 public:
  /// Completion callback: the framed response, or the typed transport
  /// failure. Invoked exactly once per Send — possibly inline on the
  /// sending thread (loopback), possibly on a transport-owned demux
  /// thread (sockets) — and must not throw.
  using Done = std::function<void(StatusOr<std::string>)>;

  virtual ~Transport() = default;

  virtual size_t num_shards() const = 0;

  /// Starts one framed request to shard `shard` and returns the
  /// correlation id the transport stamped into its envelope (the same id
  /// the reply will carry). `done` fires exactly once with the framed
  /// response or a typed Status; destruction of the transport completes
  /// every still-pending request with kUnavailable before returning.
  virtual uint64_t Send(size_t shard, std::string request, Done done) = 0;

  /// Abstract optimizer cost units (one simple memory op = 1) charged per
  /// message round-trip — the transport-cost term of the shard probe
  /// model (query::QueryProfile::transport_overhead).
  virtual double CostPerMessage() const = 0;
};

/// Blocking one-shot wrapper over Transport::Send: sends `request` and
/// waits for its completion. Throws StatusException (a runtime_error
/// carrying the typed Status) on transport failure. For callers without
/// their own completion plumbing — tests, warming, admin scrapes.
std::string Roundtrip(Transport& transport, size_t shard, std::string request);

/// In-process transport: requests are handed to per-shard handler
/// functions (ShardServer::Handle bound by the service) on the calling
/// thread, so completion is always inline. The bytes still cross the
/// full wire format — correlation id stamped and echoed included — so
/// loopback execution exercises exactly the seam a remote deployment
/// would.
class LoopbackTransport : public Transport {
 public:
  using Handler = std::function<std::string(const std::string&)>;

  /// Counters live in `registry` under dbsa_loopback_* names (one scrape
  /// covers the transport); a null registry gets a private one so
  /// standalone construction keeps working.
  explicit LoopbackTransport(
      std::vector<Handler> handlers,
      std::shared_ptr<telemetry::MetricRegistry> registry = nullptr);

  size_t num_shards() const override { return handlers_.size(); }
  uint64_t Send(size_t shard, std::string request, Done done) override;
  double CostPerMessage() const override { return kCostPerMessage; }

  struct Stats {
    uint64_t messages = 0;
    uint64_t request_bytes = 0;
    uint64_t response_bytes = 0;
  };
  /// Thin read of the registry counters (kept for callers that predate
  /// the MetricRegistry migration).
  Stats stats() const;

  /// Loopback serialization overhead in optimizer cost units. A real RPC
  /// transport would report orders of magnitude more.
  static constexpr double kCostPerMessage = 64.0;

 private:
  std::vector<Handler> handlers_;
  std::shared_ptr<telemetry::MetricRegistry> registry_;
  telemetry::Counter* messages_;
  telemetry::Counter* request_bytes_;
  telemetry::Counter* response_bytes_;
  std::atomic<uint64_t> next_correlation_{1};
};

}  // namespace dbsa::service

#endif  // DBSA_SERVICE_TRANSPORT_H_
