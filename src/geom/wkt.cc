#include "geom/wkt.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace dbsa::geom {

namespace {

// Simple recursive-descent scanner over the WKT text.
class Scanner {
 public:
  explicit Scanner(const std::string& text) : s_(text) {}

  void SkipSpace() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  bool ConsumeKeyword(const char* kw) {
    SkipSpace();
    size_t p = pos_;
    for (const char* c = kw; *c; ++c, ++p) {
      if (p >= s_.size() || std::toupper(static_cast<unsigned char>(s_[p])) != *c) {
        return false;
      }
    }
    pos_ = p;
    return true;
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < s_.size() && s_[pos_] == c;
  }

  bool ParseDouble(double* out) {
    SkipSpace();
    const char* start = s_.c_str() + pos_;
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) return false;
    pos_ += static_cast<size_t>(end - start);
    *out = v;
    return true;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= s_.size();
  }

  size_t pos() const { return pos_; }

 private:
  const std::string& s_;
  size_t pos_ = 0;
};

Status ParseCoord(Scanner* sc, Point* out) {
  if (!sc->ParseDouble(&out->x)) return Status::InvalidArgument("expected x coordinate");
  if (!sc->ParseDouble(&out->y)) return Status::InvalidArgument("expected y coordinate");
  return Status::OK();
}

Status ParseRing(Scanner* sc, Ring* out) {
  if (!sc->Consume('(')) return Status::InvalidArgument("expected '(' starting ring");
  out->clear();
  do {
    Point p;
    Status st = ParseCoord(sc, &p);
    if (!st.ok()) return st;
    out->push_back(p);
  } while (sc->Consume(','));
  if (!sc->Consume(')')) return Status::InvalidArgument("expected ')' ending ring");
  // WKT repeats the first vertex at the end; drop the duplicate.
  if (out->size() >= 2 && out->front() == out->back()) out->pop_back();
  if (out->size() < 3) return Status::InvalidArgument("ring needs >= 3 vertices");
  return Status::OK();
}

Status ParsePolygonBody(Scanner* sc, Polygon* out) {
  if (!sc->Consume('(')) return Status::InvalidArgument("expected '(' starting polygon");
  Ring outer;
  Status st = ParseRing(sc, &outer);
  if (!st.ok()) return st;
  std::vector<Ring> holes;
  while (sc->Consume(',')) {
    Ring h;
    st = ParseRing(sc, &h);
    if (!st.ok()) return st;
    holes.push_back(std::move(h));
  }
  if (!sc->Consume(')')) return Status::InvalidArgument("expected ')' ending polygon");
  *out = Polygon(std::move(outer), std::move(holes));
  out->Normalize();
  return Status::OK();
}

void AppendRing(std::string* out, const Ring& r) {
  out->push_back('(');
  char buf[64];
  for (size_t i = 0; i <= r.size(); ++i) {
    const Point& p = r[i % r.size()];  // Repeat the first vertex to close.
    std::snprintf(buf, sizeof(buf), "%s%.10g %.10g", i == 0 ? "" : ", ", p.x, p.y);
    out->append(buf);
  }
  out->push_back(')');
}

void AppendPolygonBody(std::string* out, const Polygon& poly) {
  out->push_back('(');
  AppendRing(out, poly.outer());
  for (const Ring& h : poly.holes()) {
    out->append(", ");
    AppendRing(out, h);
  }
  out->push_back(')');
}

}  // namespace

StatusOr<Point> ParseWktPoint(const std::string& wkt) {
  Scanner sc(wkt);
  if (!sc.ConsumeKeyword("POINT")) return Status::InvalidArgument("expected POINT");
  if (!sc.Consume('(')) return Status::InvalidArgument("expected '('");
  Point p;
  Status st = ParseCoord(&sc, &p);
  if (!st.ok()) return st;
  if (!sc.Consume(')')) return Status::InvalidArgument("expected ')'");
  if (!sc.AtEnd()) return Status::InvalidArgument("trailing characters after POINT");
  return p;
}

StatusOr<Polygon> ParseWktPolygon(const std::string& wkt) {
  Scanner sc(wkt);
  if (!sc.ConsumeKeyword("POLYGON")) return Status::InvalidArgument("expected POLYGON");
  Polygon poly;
  Status st = ParsePolygonBody(&sc, &poly);
  if (!st.ok()) return st;
  if (!sc.AtEnd()) return Status::InvalidArgument("trailing characters after POLYGON");
  return poly;
}

StatusOr<MultiPolygon> ParseWktMultiPolygon(const std::string& wkt) {
  Scanner sc(wkt);
  if (sc.ConsumeKeyword("MULTIPOLYGON")) {
    if (!sc.Consume('(')) return Status::InvalidArgument("expected '('");
    std::vector<Polygon> parts;
    do {
      Polygon poly;
      Status st = ParsePolygonBody(&sc, &poly);
      if (!st.ok()) return st;
      parts.push_back(std::move(poly));
    } while (sc.Consume(','));
    if (!sc.Consume(')')) return Status::InvalidArgument("expected ')'");
    if (!sc.AtEnd()) {
      return Status::InvalidArgument("trailing characters after MULTIPOLYGON");
    }
    return MultiPolygon(std::move(parts));
  }
  // Fall back: accept a single POLYGON as a one-part multi-polygon.
  StatusOr<Polygon> poly = ParseWktPolygon(wkt);
  if (!poly.ok()) return poly.status();
  std::vector<Polygon> parts;
  parts.push_back(std::move(poly.value()));
  return MultiPolygon(std::move(parts));
}

std::string ToWkt(const Point& p) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "POINT (%.10g %.10g)", p.x, p.y);
  return buf;
}

std::string ToWkt(const Polygon& poly) {
  std::string out = "POLYGON ";
  AppendPolygonBody(&out, poly);
  return out;
}

std::string ToWkt(const MultiPolygon& mp) {
  std::string out = "MULTIPOLYGON (";
  for (size_t i = 0; i < mp.parts().size(); ++i) {
    if (i) out.append(", ");
    AppendPolygonBody(&out, mp.parts()[i]);
  }
  out.push_back(')');
  return out;
}

}  // namespace dbsa::geom
