// Convex hull (Andrew's monotone chain) — substrate for the CH, RMBR and
// n-corner approximations from Brinkhoff et al. that the paper surveys.

#ifndef DBSA_GEOM_CONVEX_HULL_H_
#define DBSA_GEOM_CONVEX_HULL_H_

#include <vector>

#include "geom/point.h"
#include "geom/polygon.h"

namespace dbsa::geom {

/// Returns the convex hull as a CCW ring (no repeated endpoint). Degenerate
/// inputs (< 3 distinct points) return what is available.
Ring ConvexHull(std::vector<Point> points);

/// Hull of all polygon vertices (outer ring and holes).
Ring ConvexHullOf(const Polygon& poly);

}  // namespace dbsa::geom

#endif  // DBSA_GEOM_CONVEX_HULL_H_
