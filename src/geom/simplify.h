// Distance-bounded polyline/polygon simplification (Douglas-Peucker).
// The vector-space counterpart of the paper's raster approximations: the
// simplified ring stays within Hausdorff distance epsilon of the
// original in the simplified->original direction, which makes it another
// epsilon-approximation in the Section 2.2 sense (without the raster's
// conservative one-sidedness).

#ifndef DBSA_GEOM_SIMPLIFY_H_
#define DBSA_GEOM_SIMPLIFY_H_

#include "geom/polygon.h"

namespace dbsa::geom {

/// Douglas-Peucker on an open polyline: keeps endpoints, drops interior
/// vertices whose deviation from the simplified chain is <= epsilon.
std::vector<Point> SimplifyPolyline(const std::vector<Point>& line, double epsilon);

/// Simplifies a ring (closed). The two extreme vertices are pinned so the
/// result stays a valid ring; output has >= 3 vertices.
Ring SimplifyRing(const Ring& ring, double epsilon);

/// Simplifies every ring of a polygon; holes that collapse below 3
/// vertices are dropped.
Polygon SimplifyPolygon(const Polygon& poly, double epsilon);

}  // namespace dbsa::geom

#endif  // DBSA_GEOM_SIMPLIFY_H_
