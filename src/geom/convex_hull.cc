#include "geom/convex_hull.h"

#include <algorithm>

namespace dbsa::geom {

Ring ConvexHull(std::vector<Point> pts) {
  std::sort(pts.begin(), pts.end(), [](const Point& a, const Point& b) {
    return a.x < b.x || (a.x == b.x && a.y < b.y);
  });
  pts.erase(std::unique(pts.begin(), pts.end()), pts.end());
  const size_t n = pts.size();
  if (n < 3) return pts;

  Ring hull(2 * n);
  size_t k = 0;
  // Lower chain.
  for (size_t i = 0; i < n; ++i) {
    while (k >= 2 && Orient(hull[k - 2], hull[k - 1], pts[i]) <= 0) --k;
    hull[k++] = pts[i];
  }
  // Upper chain.
  const size_t lower = k + 1;
  for (size_t i = n - 1; i-- > 0;) {
    while (k >= lower && Orient(hull[k - 2], hull[k - 1], pts[i]) <= 0) --k;
    hull[k++] = pts[i];
  }
  hull.resize(k - 1);  // Last point equals the first.
  return hull;
}

Ring ConvexHullOf(const Polygon& poly) {
  std::vector<Point> pts = poly.outer();
  for (const Ring& h : poly.holes()) pts.insert(pts.end(), h.begin(), h.end());
  return ConvexHull(std::move(pts));
}

}  // namespace dbsa::geom
