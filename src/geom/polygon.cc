#include "geom/polygon.h"

#include <algorithm>
#include <cmath>

#include "geom/segment.h"

namespace dbsa::geom {

double SignedArea(const Ring& ring) {
  const size_t n = ring.size();
  if (n < 3) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const Point& a = ring[i];
    const Point& b = ring[(i + 1 == n) ? 0 : i + 1];
    acc += a.Cross(b);
  }
  return acc * 0.5;
}

double Perimeter(const Ring& ring) {
  const size_t n = ring.size();
  if (n < 2) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) {
    acc += Distance(ring[i], ring[(i + 1 == n) ? 0 : i + 1]);
  }
  return acc;
}

bool RingContains(const Ring& ring, const Point& p) {
  // Crossing-number (even-odd) rule.
  const size_t n = ring.size();
  bool inside = false;
  for (size_t i = 0, j = n - 1; i < n; j = i++) {
    const Point& a = ring[i];
    const Point& b = ring[j];
    if ((a.y > p.y) != (b.y > p.y)) {
      const double x_int = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
      if (p.x < x_int) inside = !inside;
    }
  }
  return inside;
}

size_t Polygon::NumVertices() const {
  size_t n = outer_.size();
  for (const Ring& h : holes_) n += h.size();
  return n;
}

double Polygon::Area() const {
  double a = std::fabs(SignedArea(outer_));
  for (const Ring& h : holes_) a -= std::fabs(SignedArea(h));
  return std::max(a, 0.0);
}

double Polygon::TotalPerimeter() const {
  double p = Perimeter(outer_);
  for (const Ring& h : holes_) p += Perimeter(h);
  return p;
}

Point Polygon::Centroid() const {
  const size_t n = outer_.size();
  if (n == 0) return {};
  double cx = 0.0, cy = 0.0, a = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const Point& p0 = outer_[i];
    const Point& p1 = outer_[(i + 1 == n) ? 0 : i + 1];
    const double cross = p0.Cross(p1);
    a += cross;
    cx += (p0.x + p1.x) * cross;
    cy += (p0.y + p1.y) * cross;
  }
  if (std::fabs(a) < 1e-300) {
    // Degenerate: average the vertices.
    Point avg;
    for (const Point& p : outer_) avg = avg + p;
    return avg / static_cast<double>(n);
  }
  return {cx / (3.0 * a), cy / (3.0 * a)};
}

bool Polygon::Contains(const Point& p) const {
  if (!bounds_.Contains(p)) return false;
  if (!RingContains(outer_, p)) return false;
  for (const Ring& h : holes_) {
    if (RingContains(h, p)) return false;
  }
  return true;
}

bool Polygon::BoundaryIntersectsBox(const Box& box) const {
  bool hit = false;
  ForEachEdge([&](const Point& a, const Point& b) {
    if (!hit && SegmentIntersectsBox(a, b, box)) hit = true;
  });
  return hit;
}

void Polygon::Normalize() {
  if (SignedArea(outer_) < 0.0) std::reverse(outer_.begin(), outer_.end());
  for (Ring& h : holes_) {
    if (SignedArea(h) > 0.0) std::reverse(h.begin(), h.end());
  }
  RecomputeBounds();
}

bool Polygon::IsValid() const {
  auto ring_ok = [](const Ring& r) {
    if (r.size() < 3) return false;
    for (const Point& p : r) {
      if (!std::isfinite(p.x) || !std::isfinite(p.y)) return false;
    }
    return true;
  };
  if (!ring_ok(outer_)) return false;
  for (const Ring& h : holes_) {
    if (!ring_ok(h)) return false;
  }
  return Area() > 0.0;
}

void Polygon::RecomputeBounds() {
  bounds_ = Box();
  for (const Point& p : outer_) bounds_.Extend(p);
}

size_t MultiPolygon::NumVertices() const {
  size_t n = 0;
  for (const Polygon& p : parts_) n += p.NumVertices();
  return n;
}

double MultiPolygon::Area() const {
  double a = 0.0;
  for (const Polygon& p : parts_) a += p.Area();
  return a;
}

bool MultiPolygon::Contains(const Point& p) const {
  if (!bounds_.Contains(p)) return false;
  for (const Polygon& part : parts_) {
    if (part.Contains(p)) return true;
  }
  return false;
}

void MultiPolygon::Add(Polygon poly) {
  bounds_.Extend(poly.bounds());
  parts_.push_back(std::move(poly));
}

void MultiPolygon::RecomputeBounds() {
  bounds_ = Box();
  for (const Polygon& p : parts_) bounds_.Extend(p.bounds());
}

}  // namespace dbsa::geom
