// Polygon-vs-box operations used by the rasterizer (cell classification)
// and by the coverage-fraction computation of non-conservative rasters.

#ifndef DBSA_GEOM_POLYGON_OPS_H_
#define DBSA_GEOM_POLYGON_OPS_H_

#include "geom/polygon.h"

namespace dbsa::geom {

/// Relationship of a box to a polygon.
enum class BoxRelation {
  kOutside,   ///< No overlap at all.
  kBoundary,  ///< Overlaps the polygon boundary.
  kInside,    ///< Entirely inside the polygon (no hole intrusion).
};

/// Exact classification of a cell box against a polygon.
BoxRelation ClassifyBox(const Polygon& poly, const Box& box);

/// Clips a ring to a box (Sutherland-Hodgman). The result may be empty.
Ring ClipRingToBox(const Ring& ring, const Box& box);

/// Area of (polygon intersect box), computed by clipping. Holes are
/// clipped and subtracted.
double PolygonBoxIntersectionArea(const Polygon& poly, const Box& box);

/// Fraction of the box covered by the polygon, in [0, 1].
double BoxCoverageFraction(const Polygon& poly, const Box& box);

}  // namespace dbsa::geom

#endif  // DBSA_GEOM_POLYGON_OPS_H_
