#include "geom/polygon_ops.h"

#include <algorithm>
#include <cmath>

#include "geom/segment.h"

namespace dbsa::geom {

BoxRelation ClassifyBox(const Polygon& poly, const Box& box) {
  if (!poly.bounds().Intersects(box)) return BoxRelation::kOutside;
  if (poly.BoundaryIntersectsBox(box)) return BoxRelation::kBoundary;
  // No boundary crossing: the box is homogeneously inside or outside; the
  // center decides.
  return poly.Contains(box.Center()) ? BoxRelation::kInside : BoxRelation::kOutside;
}

namespace {

// Clips `in` against the half-plane `inside(p)`, with `intersect(a, b)`
// giving the edge/boundary intersection point.
template <typename InsideFn, typename IntersectFn>
Ring ClipHalfPlane(const Ring& in, InsideFn inside, IntersectFn intersect) {
  Ring out;
  const size_t n = in.size();
  if (n == 0) return out;
  out.reserve(n + 4);
  for (size_t i = 0; i < n; ++i) {
    const Point& cur = in[i];
    const Point& nxt = in[(i + 1 == n) ? 0 : i + 1];
    const bool cur_in = inside(cur);
    const bool nxt_in = inside(nxt);
    if (cur_in) {
      out.push_back(cur);
      if (!nxt_in) out.push_back(intersect(cur, nxt));
    } else if (nxt_in) {
      out.push_back(intersect(cur, nxt));
    }
  }
  return out;
}

}  // namespace

Ring ClipRingToBox(const Ring& ring, const Box& box) {
  Ring r = ring;
  r = ClipHalfPlane(
      r, [&](const Point& p) { return p.x >= box.min.x; },
      [&](const Point& a, const Point& b) {
        const double t = (box.min.x - a.x) / (b.x - a.x);
        return Point{box.min.x, a.y + t * (b.y - a.y)};
      });
  r = ClipHalfPlane(
      r, [&](const Point& p) { return p.x <= box.max.x; },
      [&](const Point& a, const Point& b) {
        const double t = (box.max.x - a.x) / (b.x - a.x);
        return Point{box.max.x, a.y + t * (b.y - a.y)};
      });
  r = ClipHalfPlane(
      r, [&](const Point& p) { return p.y >= box.min.y; },
      [&](const Point& a, const Point& b) {
        const double t = (box.min.y - a.y) / (b.y - a.y);
        return Point{a.x + t * (b.x - a.x), box.min.y};
      });
  r = ClipHalfPlane(
      r, [&](const Point& p) { return p.y <= box.max.y; },
      [&](const Point& a, const Point& b) {
        const double t = (box.max.y - a.y) / (b.y - a.y);
        return Point{a.x + t * (b.x - a.x), box.max.y};
      });
  return r;
}

double PolygonBoxIntersectionArea(const Polygon& poly, const Box& box) {
  if (!poly.bounds().Intersects(box)) return 0.0;
  const Ring outer_clip = ClipRingToBox(poly.outer(), box);
  double area = std::fabs(SignedArea(outer_clip));
  for (const Ring& h : poly.holes()) {
    const Ring hole_clip = ClipRingToBox(h, box);
    area -= std::fabs(SignedArea(hole_clip));
  }
  return std::max(area, 0.0);
}

double BoxCoverageFraction(const Polygon& poly, const Box& box) {
  const double ba = box.Area();
  if (ba <= 0.0) return 0.0;
  return std::clamp(PolygonBoxIntersectionArea(poly, box) / ba, 0.0, 1.0);
}

}  // namespace dbsa::geom
