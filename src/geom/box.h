// Axis-aligned box (the MBR primitive).

#ifndef DBSA_GEOM_BOX_H_
#define DBSA_GEOM_BOX_H_

#include <algorithm>
#include <limits>

#include "geom/point.h"

namespace dbsa::geom {

/// Axis-aligned rectangle [min.x, max.x] x [min.y, max.y]. An empty box has
/// min > max and behaves as the identity under Extend().
struct Box {
  Point min;
  Point max;

  /// Constructs an empty (inverted) box.
  Box()
      : min(std::numeric_limits<double>::infinity(),
            std::numeric_limits<double>::infinity()),
        max(-std::numeric_limits<double>::infinity(),
            -std::numeric_limits<double>::infinity()) {}
  Box(Point mn, Point mx) : min(mn), max(mx) {}
  Box(double x0, double y0, double x1, double y1) : min(x0, y0), max(x1, y1) {}

  bool IsEmpty() const { return min.x > max.x || min.y > max.y; }

  double Width() const { return max.x - min.x; }
  double Height() const { return max.y - min.y; }
  double Area() const { return IsEmpty() ? 0.0 : Width() * Height(); }
  double Margin() const { return IsEmpty() ? 0.0 : 2.0 * (Width() + Height()); }
  Point Center() const { return {(min.x + max.x) * 0.5, (min.y + max.y) * 0.5}; }

  /// Grows the box to include p.
  void Extend(const Point& p) {
    min.x = std::min(min.x, p.x);
    min.y = std::min(min.y, p.y);
    max.x = std::max(max.x, p.x);
    max.y = std::max(max.y, p.y);
  }

  /// Grows the box to include another box.
  void Extend(const Box& b) {
    if (b.IsEmpty()) return;
    Extend(b.min);
    Extend(b.max);
  }

  /// Closed-interval containment of a point.
  bool Contains(const Point& p) const {
    return p.x >= min.x && p.x <= max.x && p.y >= min.y && p.y <= max.y;
  }

  /// True iff b lies entirely inside this box.
  bool Contains(const Box& b) const {
    return !b.IsEmpty() && b.min.x >= min.x && b.max.x <= max.x &&
           b.min.y >= min.y && b.max.y <= max.y;
  }

  /// Closed-interval overlap test.
  bool Intersects(const Box& b) const {
    return !(b.min.x > max.x || b.max.x < min.x || b.min.y > max.y || b.max.y < min.y);
  }

  /// Intersection box (empty if disjoint).
  Box Intersection(const Box& b) const {
    Box r({std::max(min.x, b.min.x), std::max(min.y, b.min.y)},
          {std::min(max.x, b.max.x), std::min(max.y, b.max.y)});
    return r;
  }

  /// Smallest box covering both.
  Box Union(const Box& b) const {
    Box r = *this;
    r.Extend(b);
    return r;
  }

  /// Area increase needed to include b.
  double Enlargement(const Box& b) const { return Union(b).Area() - Area(); }

  /// Distance from p to the box (0 if inside).
  double Distance(const Point& p) const {
    const double dx = std::max({min.x - p.x, 0.0, p.x - max.x});
    const double dy = std::max({min.y - p.y, 0.0, p.y - max.y});
    return std::sqrt(dx * dx + dy * dy);
  }
};

}  // namespace dbsa::geom

#endif  // DBSA_GEOM_BOX_H_
