// Line-segment predicates: intersection tests and point-to-segment
// distances. These are the inner loops of the PIP tests and of the
// Hausdorff computations, so they are header-only and branch-light.

#ifndef DBSA_GEOM_SEGMENT_H_
#define DBSA_GEOM_SEGMENT_H_

#include <algorithm>

#include "geom/box.h"
#include "geom/point.h"

namespace dbsa::geom {

/// A line segment between two points.
struct Segment {
  Point a;
  Point b;

  Segment() = default;
  Segment(Point pa, Point pb) : a(pa), b(pb) {}

  Box Bounds() const {
    Box box;
    box.Extend(a);
    box.Extend(b);
    return box;
  }
};

/// Squared distance from point p to segment (a, b).
inline double DistancePointSegment2(const Point& p, const Point& a, const Point& b) {
  const Point ab = b - a;
  const double len2 = ab.Norm2();
  if (len2 <= 0.0) return Distance2(p, a);
  double t = (p - a).Dot(ab) / len2;
  t = std::clamp(t, 0.0, 1.0);
  const Point proj = a + ab * t;
  return Distance2(p, proj);
}

/// Distance from point p to segment (a, b).
inline double DistancePointSegment(const Point& p, const Point& a, const Point& b) {
  return std::sqrt(DistancePointSegment2(p, a, b));
}

/// True iff point q lies on segment (a, b), assuming collinearity.
inline bool OnSegment(const Point& a, const Point& b, const Point& q) {
  return q.x >= std::min(a.x, b.x) && q.x <= std::max(a.x, b.x) &&
         q.y >= std::min(a.y, b.y) && q.y <= std::max(a.y, b.y);
}

/// Proper-or-touching intersection test for segments (p1,p2) and (q1,q2).
inline bool SegmentsIntersect(const Point& p1, const Point& p2, const Point& q1,
                              const Point& q2) {
  const double o1 = Orient(p1, p2, q1);
  const double o2 = Orient(p1, p2, q2);
  const double o3 = Orient(q1, q2, p1);
  const double o4 = Orient(q1, q2, p2);

  if (((o1 > 0) != (o2 > 0)) && ((o3 > 0) != (o4 > 0)) && o1 != 0 && o2 != 0 &&
      o3 != 0 && o4 != 0) {
    return true;
  }
  // Collinear / touching cases.
  if (o1 == 0 && OnSegment(p1, p2, q1)) return true;
  if (o2 == 0 && OnSegment(p1, p2, q2)) return true;
  if (o3 == 0 && OnSegment(q1, q2, p1)) return true;
  if (o4 == 0 && OnSegment(q1, q2, p2)) return true;
  return false;
}

/// Squared distance between two segments (0 if they intersect).
inline double DistanceSegmentSegment2(const Point& p1, const Point& p2,
                                      const Point& q1, const Point& q2) {
  if (SegmentsIntersect(p1, p2, q1, q2)) return 0.0;
  return std::min({DistancePointSegment2(p1, q1, q2), DistancePointSegment2(p2, q1, q2),
                   DistancePointSegment2(q1, p1, p2), DistancePointSegment2(q2, p1, p2)});
}

/// True iff segment (a, b) intersects the (closed) box.
inline bool SegmentIntersectsBox(const Point& a, const Point& b, const Box& box) {
  if (box.Contains(a) || box.Contains(b)) return true;
  if (!box.Intersects(Segment(a, b).Bounds())) return false;
  const Point c0 = box.min;
  const Point c1{box.max.x, box.min.y};
  const Point c2 = box.max;
  const Point c3{box.min.x, box.max.y};
  return SegmentsIntersect(a, b, c0, c1) || SegmentsIntersect(a, b, c1, c2) ||
         SegmentsIntersect(a, b, c2, c3) || SegmentsIntersect(a, b, c3, c0);
}

}  // namespace dbsa::geom

#endif  // DBSA_GEOM_SEGMENT_H_
