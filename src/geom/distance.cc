#include "geom/distance.h"

#include <algorithm>
#include <cmath>

#include "geom/segment.h"

namespace dbsa::geom {

double DistanceToRing(const Point& p, const Ring& ring) {
  const size_t n = ring.size();
  if (n == 0) return std::numeric_limits<double>::infinity();
  if (n == 1) return Distance(p, ring[0]);
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    best = std::min(best,
                    DistancePointSegment2(p, ring[i], ring[(i + 1 == n) ? 0 : i + 1]));
  }
  return std::sqrt(best);
}

double DistanceToBoundary(const Point& p, const Polygon& poly) {
  double best = DistanceToRing(p, poly.outer());
  for (const Ring& h : poly.holes()) best = std::min(best, DistanceToRing(p, h));
  return best;
}

double DistanceToPolygon(const Point& p, const Polygon& poly) {
  if (poly.Contains(p)) return 0.0;
  return DistanceToBoundary(p, poly);
}

double DistanceToMultiPolygon(const Point& p, const MultiPolygon& mp) {
  double best = std::numeric_limits<double>::infinity();
  for (const Polygon& part : mp.parts()) {
    best = std::min(best, DistanceToPolygon(p, part));
    if (best == 0.0) break;
  }
  return best;
}

namespace {

// Calls fn(p) for points sampled along the ring boundary with spacing
// <= step (all vertices are always included).
template <typename Fn>
void SampleRing(const Ring& ring, double step, Fn&& fn) {
  const size_t n = ring.size();
  for (size_t i = 0; i < n; ++i) {
    const Point& a = ring[i];
    const Point& b = ring[(i + 1 == n) ? 0 : i + 1];
    fn(a);
    const double len = Distance(a, b);
    if (len > step) {
      const int k = static_cast<int>(std::ceil(len / step));
      for (int j = 1; j < k; ++j) {
        const double t = static_cast<double>(j) / k;
        fn(a + (b - a) * t);
      }
    }
  }
}

}  // namespace

double DirectedHausdorffSampled(const Ring& a, const Ring& b, double step) {
  double worst = 0.0;
  SampleRing(a, step, [&](const Point& p) {
    worst = std::max(worst, DistanceToRing(p, b));
  });
  return worst;
}

double HausdorffSampled(const Ring& a, const Ring& b, double step) {
  return std::max(DirectedHausdorffSampled(a, b, step),
                  DirectedHausdorffSampled(b, a, step));
}

}  // namespace dbsa::geom
