// Polygon and multi-polygon types with the exact predicates the paper's
// refinement step performs (point-in-polygon being the expensive one that
// distance-bounded approximations eliminate).

#ifndef DBSA_GEOM_POLYGON_H_
#define DBSA_GEOM_POLYGON_H_

#include <cstddef>
#include <vector>

#include "geom/box.h"
#include "geom/point.h"

namespace dbsa::geom {

/// A closed ring of vertices. The closing edge (back -> front) is implicit;
/// the first vertex is NOT repeated at the end.
using Ring = std::vector<Point>;

/// Signed area of a ring (> 0 for counter-clockwise orientation).
double SignedArea(const Ring& ring);

/// Ring perimeter (including the implicit closing edge).
double Perimeter(const Ring& ring);

/// Crossing-number point-in-ring test. Boundary points may report either
/// side (consistent with the paper's treatment of fuzzy boundaries).
bool RingContains(const Ring& ring, const Point& p);

/// A simple polygon: one outer ring plus zero or more hole rings. The
/// canonical orientation (outer CCW, holes CW) is enforced by Normalize().
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(Ring outer) : outer_(std::move(outer)) { RecomputeBounds(); }
  Polygon(Ring outer, std::vector<Ring> holes)
      : outer_(std::move(outer)), holes_(std::move(holes)) {
    RecomputeBounds();
  }

  const Ring& outer() const { return outer_; }
  const std::vector<Ring>& holes() const { return holes_; }
  const Box& bounds() const { return bounds_; }

  /// Total vertex count across all rings.
  size_t NumVertices() const;

  /// Area of the outer ring minus the hole areas.
  double Area() const;

  /// Perimeter of all rings.
  double TotalPerimeter() const;

  /// Centroid of the outer ring (area-weighted).
  Point Centroid() const;

  /// Exact containment: inside the outer ring and outside every hole.
  /// Cost is linear in the vertex count — this is the PIP test whose
  /// elimination the paper's approximate processing targets.
  bool Contains(const Point& p) const;

  /// True iff any ring edge intersects the box.
  bool BoundaryIntersectsBox(const Box& box) const;

  /// Enforces outer-CCW / holes-CW orientation and refreshes bounds.
  void Normalize();

  /// Basic structural validity: >= 3 vertices per ring, finite coords,
  /// non-zero area.
  bool IsValid() const;

  /// Iterates all edges (over all rings) as (a, b) pairs.
  template <typename Fn>
  void ForEachEdge(Fn&& fn) const {
    auto ring_edges = [&fn](const Ring& r) {
      const size_t n = r.size();
      for (size_t i = 0; i < n; ++i) {
        fn(r[i], r[(i + 1 == n) ? 0 : i + 1]);
      }
    };
    ring_edges(outer_);
    for (const Ring& h : holes_) ring_edges(h);
  }

 private:
  void RecomputeBounds();

  Ring outer_;
  std::vector<Ring> holes_;
  Box bounds_;
};

/// A collection of polygons treated as one geometry (the paper's region
/// datasets contain multi-polygons).
class MultiPolygon {
 public:
  MultiPolygon() = default;
  explicit MultiPolygon(std::vector<Polygon> parts) : parts_(std::move(parts)) {
    RecomputeBounds();
  }

  const std::vector<Polygon>& parts() const { return parts_; }
  const Box& bounds() const { return bounds_; }
  bool Empty() const { return parts_.empty(); }
  size_t NumVertices() const;
  double Area() const;
  bool Contains(const Point& p) const;

  void Add(Polygon poly);

 private:
  void RecomputeBounds();

  std::vector<Polygon> parts_;
  Box bounds_;
};

}  // namespace dbsa::geom

#endif  // DBSA_GEOM_POLYGON_H_
