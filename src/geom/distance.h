// Distance functions between points, rings and polygons, plus the sampled
// Hausdorff distance used to *measure* approximation error (Section 2.2 of
// the paper defines the epsilon-approximation in terms of the Hausdorff
// distance d_H).

#ifndef DBSA_GEOM_DISTANCE_H_
#define DBSA_GEOM_DISTANCE_H_

#include "geom/polygon.h"

namespace dbsa::geom {

/// Distance from p to the closest point on the ring's boundary.
double DistanceToRing(const Point& p, const Ring& ring);

/// Distance from p to the polygon *boundary* (any ring). Zero only if p is
/// exactly on an edge.
double DistanceToBoundary(const Point& p, const Polygon& poly);

/// Distance from p to the polygon as a solid region: 0 if inside,
/// otherwise the distance to the boundary.
double DistanceToPolygon(const Point& p, const Polygon& poly);

/// Distance from p to a solid multi-polygon region.
double DistanceToMultiPolygon(const Point& p, const MultiPolygon& mp);

/// Directed Hausdorff distance h(A -> B) between two ring boundaries,
/// estimated by sampling A at the given max step and measuring distance
/// to B's edges exactly. The true value is within +step/2 of the result.
double DirectedHausdorffSampled(const Ring& a, const Ring& b, double step);

/// Symmetric sampled Hausdorff distance between ring boundaries.
double HausdorffSampled(const Ring& a, const Ring& b, double step);

}  // namespace dbsa::geom

#endif  // DBSA_GEOM_DISTANCE_H_
