// 2-D point / vector type. Coordinates are doubles in "universe" units
// (metres throughout the benches).

#ifndef DBSA_GEOM_POINT_H_
#define DBSA_GEOM_POINT_H_

#include <cmath>

namespace dbsa::geom {

/// A 2-D point (also used as a vector).
struct Point {
  double x = 0.0;
  double y = 0.0;

  Point() = default;
  Point(double px, double py) : x(px), y(py) {}

  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  Point operator*(double s) const { return {x * s, y * s}; }
  Point operator/(double s) const { return {x / s, y / s}; }
  bool operator==(const Point& o) const { return x == o.x && y == o.y; }
  bool operator!=(const Point& o) const { return !(*this == o); }

  double Dot(const Point& o) const { return x * o.x + y * o.y; }
  /// 2-D cross product (z-component of the 3-D cross product).
  double Cross(const Point& o) const { return x * o.y - y * o.x; }
  double Norm2() const { return x * x + y * y; }
  double Norm() const { return std::sqrt(Norm2()); }
};

/// Euclidean distance between two points.
inline double Distance(const Point& a, const Point& b) { return (a - b).Norm(); }

/// Squared Euclidean distance (avoids the sqrt when only comparing).
inline double Distance2(const Point& a, const Point& b) { return (a - b).Norm2(); }

/// Orientation of the triple (a, b, c): > 0 counter-clockwise, < 0 clockwise,
/// 0 collinear.
inline double Orient(const Point& a, const Point& b, const Point& c) {
  return (b - a).Cross(c - a);
}

}  // namespace dbsa::geom

#endif  // DBSA_GEOM_POINT_H_
