#include "geom/simplify.h"

#include <algorithm>

#include "geom/segment.h"

namespace dbsa::geom {

namespace {

// Marks kept vertices in [first, last] (inclusive) recursively.
void DouglasPeucker(const std::vector<Point>& pts, size_t first, size_t last,
                    double eps2, std::vector<bool>* keep) {
  if (last <= first + 1) return;
  double worst = 0.0;
  size_t worst_i = first;
  for (size_t i = first + 1; i < last; ++i) {
    const double d2 = DistancePointSegment2(pts[i], pts[first], pts[last]);
    if (d2 > worst) {
      worst = d2;
      worst_i = i;
    }
  }
  if (worst > eps2) {
    (*keep)[worst_i] = true;
    DouglasPeucker(pts, first, worst_i, eps2, keep);
    DouglasPeucker(pts, worst_i, last, eps2, keep);
  }
}

}  // namespace

std::vector<Point> SimplifyPolyline(const std::vector<Point>& line, double epsilon) {
  const size_t n = line.size();
  if (n <= 2) return line;
  std::vector<bool> keep(n, false);
  keep.front() = keep.back() = true;
  DouglasPeucker(line, 0, n - 1, epsilon * epsilon, &keep);
  std::vector<Point> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (keep[i]) out.push_back(line[i]);
  }
  return out;
}

Ring SimplifyRing(const Ring& ring, double epsilon) {
  const size_t n = ring.size();
  if (n <= 3) return ring;
  // Pin the two x-extreme vertices and simplify the two arcs between
  // them; this keeps the ring closed and non-degenerate.
  size_t lo = 0, hi = 0;
  for (size_t i = 1; i < n; ++i) {
    if (ring[i].x < ring[lo].x) lo = i;
    if (ring[i].x > ring[hi].x) hi = i;
  }
  if (lo == hi) return ring;  // Degenerate (all same x).

  auto arc = [&](size_t from, size_t to) {
    std::vector<Point> pts;
    for (size_t i = from; i != to; i = (i + 1) % n) pts.push_back(ring[i]);
    pts.push_back(ring[to]);
    return pts;
  };
  const std::vector<Point> a = SimplifyPolyline(arc(lo, hi), epsilon);
  const std::vector<Point> b = SimplifyPolyline(arc(hi, lo), epsilon);

  Ring out;
  out.reserve(a.size() + b.size() - 2);
  out.insert(out.end(), a.begin(), a.end() - 1);  // lo .. hi-1 simplified.
  out.insert(out.end(), b.begin(), b.end() - 1);  // hi .. lo-1 simplified.
  if (out.size() < 3) return ring;
  return out;
}

Polygon SimplifyPolygon(const Polygon& poly, double epsilon) {
  Ring outer = SimplifyRing(poly.outer(), epsilon);
  std::vector<Ring> holes;
  for (const Ring& h : poly.holes()) {
    Ring hs = SimplifyRing(h, epsilon);
    if (hs.size() >= 3 && std::fabs(SignedArea(hs)) > 0.0) {
      holes.push_back(std::move(hs));
    }
  }
  Polygon out(std::move(outer), std::move(holes));
  out.Normalize();
  return out;
}

}  // namespace dbsa::geom
