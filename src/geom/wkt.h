// Minimal WKT (Well-Known Text) reader/writer for POINT, POLYGON and
// MULTIPOLYGON — the interchange format for examples and tests.

#ifndef DBSA_GEOM_WKT_H_
#define DBSA_GEOM_WKT_H_

#include <string>

#include "geom/polygon.h"
#include "util/status.h"

namespace dbsa::geom {

/// Parses "POINT (x y)".
StatusOr<Point> ParseWktPoint(const std::string& wkt);

/// Parses "POLYGON ((x y, ...), (hole...))".
StatusOr<Polygon> ParseWktPolygon(const std::string& wkt);

/// Parses "MULTIPOLYGON (((...)), ((...)))" (also accepts plain POLYGON).
StatusOr<MultiPolygon> ParseWktMultiPolygon(const std::string& wkt);

/// Serializers.
std::string ToWkt(const Point& p);
std::string ToWkt(const Polygon& poly);
std::string ToWkt(const MultiPolygon& mp);

}  // namespace dbsa::geom

#endif  // DBSA_GEOM_WKT_H_
