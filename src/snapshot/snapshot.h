// Epoch-stamped snapshot interchange — the serialization of the engine's
// immutable build products (core/engine_state.h, core/sharded_state.h),
// so a shard server loads its slice from a file instead of re-deriving
// the dataset, and a failover replica provably serves the SAME dataset
// generation as the primary it replaced.
//
// A snapshot file is a header, a section directory and flat sections:
//
//   [header]      magic, format version, epoch, shard index, shard count,
//                 hilbert level, section count — 32 bytes, fixed.
//   [directory]   one 32-byte entry per section: id, absolute offset,
//                 length and an FNV-1a checksum of the section bytes.
//   [sections]    back to back, in directory order, ending exactly at
//                 the end of the file (no gaps, no trailer).
//
// Two file shapes share the format (docs/snapshot-format.md is the
// normative byte spec):
//
//   client file   shard_index == -1: the FULL base EngineState (points,
//                 regions, grid, point index) + the routing metadata of
//                 every shard. Full because exact bounds never cross the
//                 shard seam — they execute client-side against the base.
//   slice file    shard_index == s: shard s's slice EngineState + its
//                 global-id map. What one shard-server process needs.
//
// Determinism: every byte is written via the sanctioned StoreWire
// vocabulary (service::WireWriter), field-wise, little-endian, with no
// timestamps — two writers over the same state emit byte-identical
// files, which is what lets scripts/check_snapshot_golden.sh byte-diff a
// checked-in fixture against a fresh rebuild.
//
// Totality: SnapshotReader mirrors the ParseFrame discipline — ANY input
// (truncated, bit-flipped, section-spliced, adversarial) yields a typed
// Status, never UB. Corruption (bad magic, checksum mismatch, length
// inconsistency) is kInvalidArgument; a real-but-other format version is
// kUnimplemented — skew, not corruption, mirroring the wire rule. Counts
// are checked against remaining bytes BEFORE any allocation. Fuzzed by
// fuzz/fuzz_snapshot_reader.cc under ASan and MSan.
//
// The epoch is the dataset-generation stamp: every process loading files
// of epoch E serves wire-v5 requests pinned to E and rejects others
// typed (kFailedPrecondition) — read-your-epoch across failover. Epoch 0
// is reserved as the wire wildcard and must not stamp a snapshot.

#ifndef DBSA_SNAPSHOT_SNAPSHOT_H_
#define DBSA_SNAPSHOT_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/engine_state.h"
#include "core/sharded_state.h"
#include "util/status.h"

namespace dbsa::snapshot {

/// "snap", little-endian.
inline constexpr uint32_t kSnapshotMagic = 0x70616E73;
/// Format revisions are wholesale, like the wire: a reader serves exactly
/// one version and rejects every other with kUnimplemented.
inline constexpr uint16_t kSnapshotFormatVersion = 1;

/// Fixed header: magic u32, version u16, reserved u16 (must be 0),
/// epoch u64, shard_index i32, num_shards u32, hilbert_level i32,
/// section_count u32.
inline constexpr size_t kSnapshotHeaderSize = 32;
/// Directory entry: section id u32, reserved u32 (must be 0), absolute
/// offset u64, length u64, FNV-1a checksum u64.
inline constexpr size_t kSnapshotDirEntrySize = 32;
static_assert(kSnapshotHeaderSize == 4 + 2 + 2 + 8 + 4 + 4 + 4 + 4,
              "snapshot header layout drifted — update docs/snapshot-format.md");
static_assert(kSnapshotDirEntrySize == 4 + 4 + 8 + 8 + 8,
              "snapshot directory layout drifted — update docs/snapshot-format.md");

/// Section ids are stable file values: append only, never renumber
/// (docs/snapshot-format.md). Zero is reserved as never-valid.
enum class SectionId : uint32_t {
  kGrid = 1,         ///< Covering grid: origin + side.
  kPoints = 2,       ///< Column-wise point table.
  kRegions = 3,      ///< Region table: polygons + names.
  kIndexKeys = 4,    ///< Sorted leaf keys of the point index.
  kIndexPrefix = 5,  ///< Compensated prefix-sum pairs (n+1 each).
  kIndexIds = 6,     ///< Sort permutation (original row ids).
  kRouting = 7,      ///< Per-shard routing metadata (client files).
  kShardIds = 8,     ///< This slice's local-row -> base-row map.
};
/// Pinned by the reader's id-validation static_assert: a new section
/// must widen the acceptance bound and teach the golden fixture.
inline constexpr int kSectionIdCount = 8;

/// File identity carried by the header.
struct SnapshotMeta {
  /// Dataset-generation stamp (see header comment). Never 0 in a file.
  uint64_t epoch = 0;
  /// -1 for a client/base file; the shard index for a slice file.
  int32_t shard_index = -1;
  /// Shard count of the sharded build both file shapes derive from.
  uint32_t num_shards = 0;
  /// Hilbert ordering granularity of the shard cuts.
  int32_t hilbert_level = 16;
};

/// FNV-1a over `n` bytes — the same construction as the wire-layer
/// ApproxChecksum (shard_server.cc), applied to raw section bytes.
uint64_t SnapshotChecksum(const char* data, size_t n);

// ------------------------------------------------------------- writer

/// Accumulates sections and serializes the framed file. Deterministic:
/// output is a pure function of the meta + sections added, in order.
class SnapshotWriter {
 public:
  explicit SnapshotWriter(const SnapshotMeta& meta) : meta_(meta) {}

  /// Appends one section (raw payload bytes; the writer frames and
  /// checksums them). Ids must be unique per file.
  void AddSection(SectionId id, std::string bytes);

  /// The complete file image.
  std::string Serialize() const;

  /// Serialize() to `path`. kUnavailable if the file cannot be written.
  Status WriteFile(const std::string& path) const;

 private:
  SnapshotMeta meta_;
  std::vector<std::pair<SectionId, std::string>> sections_;
};

/// Adds the four EngineState sections (grid, points, regions, index
/// keys/prefix/ids) of `state` — the shared core of both file shapes.
void AddEngineStateSections(const core::EngineState& state, SnapshotWriter* writer);

/// The complete client/base file of a sharded build: full base
/// EngineState + per-shard routing metadata. `sharded` may be a
/// routing-only build (slices are not serialized into client files).
std::string EncodeClientSnapshot(const core::ShardedState& sharded, uint64_t epoch);

/// The slice file of shard `shard`: its slice EngineState + global-id
/// map. The slice must be materialized (ShardingOptions::only_slice or a
/// full build).
std::string EncodeShardSnapshot(const core::ShardedState& sharded, size_t shard,
                                uint64_t epoch);

// ------------------------------------------------------------- reader

/// Total, typed decoder over an mmap- or buffer-backed file image.
/// Parse/Load validate the header, directory geometry (sections back to
/// back, covering the file exactly) and every section checksum up front;
/// the Assemble* methods then decode individual sections with the same
/// count-before-allocation discipline as the wire decoders. Copyable:
/// copies share the backing bytes.
class SnapshotReader {
 public:
  SnapshotReader() = default;

  /// Parses an in-memory file image (the reader takes ownership).
  static StatusOr<SnapshotReader> Parse(std::string bytes);

  /// Maps `path` read-only (falling back to a buffered read where mmap
  /// is unavailable) and parses it. kNotFound if the file cannot be
  /// opened.
  static StatusOr<SnapshotReader> Load(const std::string& path);

  const SnapshotMeta& meta() const { return meta_; }
  bool HasSection(SectionId id) const;

  /// Assembles the base/slice EngineState from the grid, points, regions
  /// and index sections. The point index is restored from its frozen
  /// arrays (search structures rebuilt deterministically from the keys),
  /// so answers are byte-identical to a rebuild from the same tables.
  StatusOr<std::shared_ptr<const core::EngineState>> AssembleEngineState() const;

  /// The slice's global-id map (slice files; kShardIds section).
  StatusOr<std::vector<uint32_t>> DecodeShardIds() const;

  /// Assembles a ROUTING-ONLY sharded state over `base` from the
  /// kRouting section (client files): every shard's pruning metadata,
  /// no slice states (has_slices() == false — the socket client shape).
  StatusOr<std::shared_ptr<const core::ShardedState>> AssembleRoutingState(
      std::shared_ptr<const core::EngineState> base) const;

 private:
  struct Section {
    SectionId id;
    const char* data;
    size_t size;
  };
  /// Shared validation core of Parse/Load: header, directory geometry,
  /// checksums. `data` must stay valid as long as `backing` lives.
  static StatusOr<SnapshotReader> ParseBacking(const char* data, size_t size,
                                               std::shared_ptr<const void> backing);
  const Section* FindSection(SectionId id) const;

  SnapshotMeta meta_;
  std::vector<Section> sections_;
  /// Owns the bytes the sections point into (heap string or mmap).
  std::shared_ptr<const void> backing_;
};

/// Assembles the FULL in-process sharded state of a snapshot-written
/// cluster: the client file's base + routing, with every shard's slice
/// state grafted in from its slice file (has_slices() == true — the
/// loopback-cluster shape the conformance tests drive). Rejects typed:
/// epoch or shard-count skew across the files is kFailedPrecondition; a
/// slice whose global-id map disagrees with the client's routing section
/// is kInvalidArgument.
StatusOr<std::shared_ptr<const core::ShardedState>> AssembleClusterState(
    const SnapshotReader& client, const std::vector<SnapshotReader>& slices);

}  // namespace dbsa::snapshot

#endif  // DBSA_SNAPSHOT_SNAPSHOT_H_
