// snapshot_write — cuts a deterministic demo-city build into epoch-
// stamped snapshot files (src/snapshot/snapshot.h): one client/base file
// (full EngineState + routing metadata) and one slice file per shard.
// The emitted set is what a snapshot-loaded cluster serves from:
//
//   ./build/snapshot_write --placement=cluster.placement --epoch=7
//       --out_dir=/tmp/snap
//   ./build/shard_server_main --placement=cluster.placement --shard=2
//       --snapshot=/tmp/snap/shard-2.snapshot
//
// --shards=K stands in for --placement when no placement file exists yet
// (the tool only needs the shard count). Dataset flags are the shared
// cluster-demo knobs (data/cluster_demo.h); output is a pure function of
// flags — two runs emit byte-identical files, which is what the golden
// fixture gate (scripts/check_snapshot_golden.sh) relies on.

#include <sys/stat.h>
#include <sys/types.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/engine_state.h"
#include "core/sharded_state.h"
#include "data/cluster_demo.h"
#include "service/placement.h"
#include "snapshot/snapshot.h"
#include "util/flags.h"

namespace {

using dbsa::util::FlagValue;

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s (--placement=FILE | --shards=K) --out_dir=DIR\n"
      "          [--epoch=1]\n"
      "          [--points=20000] [--regions=24] [--universe=4096]\n"
      "          [--seed=20210111] [--hilbert_level=16]\n"
      "\n"
      "Writes DIR/client.snapshot (base dataset + routing metadata) and\n"
      "DIR/shard-<i>.snapshot for every shard. The epoch must be nonzero\n"
      "(0 is the wire wildcard) and stamps every file: servers loading\n"
      "them pin their serving epoch to it. Deterministic: byte-identical\n"
      "output for identical flags.\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dbsa;

  if (!util::KnownFlagsOnly(argc, argv,
                            {"placement", "shards", "out_dir", "epoch",
                             "points", "regions", "universe", "seed",
                             "hilbert_level"})) {
    return Usage(argv[0]);
  }

  std::string out_dir;
  if (!FlagValue(argc, argv, "out_dir", &out_dir) || out_dir.empty()) {
    return Usage(argv[0]);
  }

  size_t num_shards = 0;
  std::string placement_path;
  if (FlagValue(argc, argv, "placement", &placement_path)) {
    StatusOr<service::ShardPlacement> placement =
        service::ShardPlacement::Load(placement_path);
    if (!placement.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   placement.status().ToString().c_str());
      return 1;
    }
    num_shards = placement->num_shards();
  } else {
    num_shards = static_cast<size_t>(util::UintFlag(argc, argv, "shards", 0));
  }
  if (num_shards == 0) {
    std::fprintf(stderr, "error: need --placement=FILE or --shards=K\n");
    return Usage(argv[0]);
  }

  const uint64_t epoch = util::UintFlag(argc, argv, "epoch", 1);
  if (epoch == 0) {
    std::fprintf(stderr,
                 "error: --epoch=0 is the wire wildcard, not a stampable "
                 "dataset generation\n");
    return 1;
  }

  const data::ClusterDemoConfig dataset =
      data::ClusterDemoConfigFromFlags(argc, argv);
  if (dataset.num_points < num_shards) {
    std::fprintf(stderr,
                 "error: --points=%zu is fewer than the %zu shards\n",
                 dataset.num_points, num_shards);
    return 1;
  }

  // Created if absent; an existing directory is fine (files overwrite).
  if (::mkdir(out_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    std::fprintf(stderr, "error: mkdir %s: %s\n", out_dir.c_str(),
                 std::strerror(errno));
    return 1;
  }

  std::printf("building demo city (%zu points, %zu regions, universe %.0f, "
              "seed %llu), %zu shards...\n",
              dataset.num_points, dataset.num_regions, dataset.universe_side,
              static_cast<unsigned long long>(dataset.seed), num_shards);
  std::fflush(stdout);

  const auto base = core::BuildEngineState(data::ClusterDemoPoints(dataset),
                                           data::ClusterDemoRegions(dataset));
  core::ShardingOptions sharding;
  sharding.num_shards = num_shards;
  sharding.hilbert_level = dataset.hilbert_level;
  const auto sharded = core::ShardedState::Build(base, sharding);

  const std::string client_path = out_dir + "/client.snapshot";
  {
    const std::string image = snapshot::EncodeClientSnapshot(*sharded, epoch);
    std::FILE* f = std::fopen(client_path.c_str(), "wb");
    if (f == nullptr ||
        std::fwrite(image.data(), 1, image.size(), f) != image.size() ||
        std::fclose(f) != 0) {
      std::fprintf(stderr, "error: cannot write %s\n", client_path.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu bytes, epoch %llu)\n", client_path.c_str(),
                image.size(), static_cast<unsigned long long>(epoch));
  }

  for (size_t s = 0; s < sharded->num_shards(); ++s) {
    const std::string image = snapshot::EncodeShardSnapshot(*sharded, s, epoch);
    const std::string path =
        out_dir + "/shard-" + std::to_string(s) + ".snapshot";
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr ||
        std::fwrite(image.data(), 1, image.size(), f) != image.size() ||
        std::fclose(f) != 0) {
      std::fprintf(stderr, "error: cannot write %s\n", path.c_str());
      return 1;
    }
    std::printf("wrote %s (%zu bytes, %zu points)\n", path.c_str(),
                image.size(), sharded->shard(s).global_ids.size());
  }
  return 0;
}
