#include "snapshot/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "service/transport.h"
#include "util/check.h"

namespace dbsa::snapshot {

namespace {

using service::WireReader;
using service::WireWriter;

bool ValidSectionId(uint32_t raw) {
  static_assert(static_cast<int>(SectionId::kShardIds) == kSectionIdCount,
                "SectionId grew: bump kSectionIdCount and extend the golden "
                "fixture before widening this acceptance bound");
  return raw >= 1 && raw <= static_cast<uint32_t>(kSectionIdCount);
}

// ---- section encoders --------------------------------------------------
// Every encoder is a pure function of the state: field-wise writes via
// the StoreWire vocabulary, no timestamps, no pointers — the determinism
// the golden-fixture gate byte-diffs against.

std::string EncodeGridSection(const raster::Grid& grid) {
  WireWriter w;
  w.F64(grid.origin().x);
  w.F64(grid.origin().y);
  w.F64(grid.side());
  return w.payload();
}

std::string EncodePointsSection(const data::PointSet& points) {
  WireWriter w;
  const size_t n = points.size();
  DBSA_CHECK(n <= UINT32_MAX);
  // Attribute columns are all-or-nothing, mirroring the slice copy in
  // ShardedState::Build — a per-row presence bit would change layout.
  DBSA_CHECK(points.fare.empty() || points.fare.size() == n);
  DBSA_CHECK(points.passengers.empty() || points.passengers.size() == n);
  DBSA_CHECK(points.hour.empty() || points.hour.size() == n);
  w.U32(static_cast<uint32_t>(n));
  w.U8(points.fare.empty() ? 0 : 1);
  w.U8(points.passengers.empty() ? 0 : 1);
  w.U8(points.hour.empty() ? 0 : 1);
  for (const geom::Point& p : points.locs) {
    w.F64(p.x);
    w.F64(p.y);
  }
  for (const double f : points.fare) w.F64(f);
  for (const uint8_t p : points.passengers) w.U8(p);
  for (const uint8_t h : points.hour) w.U8(h);
  return w.payload();
}

void EncodeRing(const geom::Ring& ring, WireWriter* w) {
  DBSA_CHECK(ring.size() <= UINT32_MAX);
  w->U32(static_cast<uint32_t>(ring.size()));
  for (const geom::Point& v : ring) {
    w->F64(v.x);
    w->F64(v.y);
  }
}

std::string EncodeRegionsSection(const data::RegionSet& regions) {
  WireWriter w;
  DBSA_CHECK(regions.num_regions <= UINT32_MAX);
  DBSA_CHECK(regions.polys.size() <= UINT32_MAX);
  DBSA_CHECK(regions.region_of.size() == regions.polys.size());
  w.U32(static_cast<uint32_t>(regions.num_regions));
  w.U32(static_cast<uint32_t>(regions.polys.size()));
  for (size_t i = 0; i < regions.polys.size(); ++i) {
    const geom::Polygon& poly = regions.polys[i];
    w.U32(regions.region_of[i]);
    DBSA_CHECK(poly.holes().size() <= UINT32_MAX - 1);
    w.U32(static_cast<uint32_t>(1 + poly.holes().size()));
    EncodeRing(poly.outer(), &w);
    for (const geom::Ring& hole : poly.holes()) EncodeRing(hole, &w);
  }
  DBSA_CHECK(regions.names.size() <= UINT32_MAX);
  w.U32(static_cast<uint32_t>(regions.names.size()));
  for (const std::string& name : regions.names) {
    DBSA_CHECK(name.size() <= UINT32_MAX);
    w.U32(static_cast<uint32_t>(name.size()));
    w.Bytes(name.data(), name.size());
  }
  return w.payload();
}

std::string EncodeIndexKeysSection(const index::PrefixSumIndex& index) {
  WireWriter w;
  DBSA_CHECK(index.size() <= UINT32_MAX);
  w.U32(static_cast<uint32_t>(index.size()));
  for (const uint64_t k : index.keys().keys()) w.U64(k);
  return w.payload();
}

std::string EncodeIndexPrefixSection(const index::PrefixSumIndex& index) {
  WireWriter w;
  DBSA_CHECK(index.prefix().size() == index.size() + 1);
  DBSA_CHECK(index.prefix_comp().size() == index.size() + 1);
  w.U32(static_cast<uint32_t>(index.size()));
  for (const double p : index.prefix()) w.F64(p);
  for (const double p : index.prefix_comp()) w.F64(p);
  return w.payload();
}

std::string EncodeIndexIdsSection(const index::PrefixSumIndex& index) {
  WireWriter w;
  DBSA_CHECK(index.ids().size() == index.size());
  w.U32(static_cast<uint32_t>(index.size()));
  for (const uint32_t id : index.ids()) w.U32(id);
  return w.payload();
}

std::string EncodeRoutingSection(const core::ShardedState& sharded) {
  WireWriter w;
  DBSA_CHECK(sharded.num_shards() <= UINT32_MAX);
  w.U32(static_cast<uint32_t>(sharded.num_shards()));
  for (const core::ShardedState::Shard& shard : sharded.shards()) {
    w.F64(shard.bounds.min.x);
    w.F64(shard.bounds.min.y);
    w.F64(shard.bounds.max.x);
    w.F64(shard.bounds.max.y);
    w.U32(shard.min_ix);
    w.U32(shard.min_iy);
    w.U32(shard.max_ix);
    w.U32(shard.max_iy);
    w.U64(shard.hilbert_lo);
    w.U64(shard.hilbert_hi);
    DBSA_CHECK(shard.key_ranges.size() <= UINT32_MAX);
    w.U32(static_cast<uint32_t>(shard.key_ranges.size()));
    for (const auto& [lo, hi] : shard.key_ranges) {
      w.U64(lo);
      w.U64(hi);
    }
    DBSA_CHECK(shard.global_ids.size() <= UINT32_MAX);
    w.U32(static_cast<uint32_t>(shard.global_ids.size()));
    for (const uint32_t id : shard.global_ids) w.U32(id);
  }
  return w.payload();
}

std::string EncodeShardIdsSection(const std::vector<uint32_t>& ids) {
  WireWriter w;
  DBSA_CHECK(ids.size() <= UINT32_MAX);
  w.U32(static_cast<uint32_t>(ids.size()));
  for (const uint32_t id : ids) w.U32(id);
  return w.payload();
}

// ---- section decoders --------------------------------------------------
// Total: counts checked against remaining bytes BEFORE allocation, every
// section consumed exactly, every structural invariant the assembly
// factories rely on validated here (the factories DBSA_CHECK, they do
// not parse).

struct GridParts {
  double origin_x = 0.0, origin_y = 0.0, side = 1.0;
};

Status DecodeGridSection(const char* data, size_t size, GridParts* out) {
  WireReader r(data, size);
  out->origin_x = r.F64();
  out->origin_y = r.F64();
  out->side = r.F64();
  if (!r.AtEnd()) return Status::InvalidArgument("malformed grid section");
  if (!std::isfinite(out->origin_x) || !std::isfinite(out->origin_y) ||
      !std::isfinite(out->side) || out->side <= 0.0) {
    return Status::InvalidArgument("grid section: non-finite origin or side");
  }
  return Status::OK();
}

Status DecodePointsSection(const char* data, size_t size, data::PointSet* out) {
  WireReader r(data, size);
  const uint32_t n = r.U32();
  const uint8_t has_fare = r.U8();
  const uint8_t has_passengers = r.U8();
  const uint8_t has_hour = r.U8();
  if (!r.ok() || has_fare > 1 || has_passengers > 1 || has_hour > 1) {
    return Status::InvalidArgument("malformed points section header");
  }
  const uint64_t need = uint64_t{n} * 16 + (has_fare ? uint64_t{n} * 8 : 0) +
                        (has_passengers ? uint64_t{n} : 0) +
                        (has_hour ? uint64_t{n} : 0);
  if (need != r.remaining()) {
    return Status::InvalidArgument("points section length mismatch");
  }
  out->locs.resize(n);
  for (geom::Point& p : out->locs) {
    p.x = r.F64();
    p.y = r.F64();
    if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
      return Status::InvalidArgument("points section: non-finite coordinate");
    }
  }
  if (has_fare) {
    out->fare.resize(n);
    for (double& f : out->fare) f = r.F64();
  }
  if (has_passengers) {
    out->passengers.resize(n);
    for (uint8_t& p : out->passengers) p = r.U8();
  }
  if (has_hour) {
    out->hour.resize(n);
    for (uint8_t& h : out->hour) h = r.U8();
  }
  if (!r.AtEnd()) return Status::InvalidArgument("malformed points section");
  return Status::OK();
}

Status DecodeRing(WireReader* r, geom::Ring* out) {
  const uint32_t nverts = r->U32();
  if (!r->ok() || uint64_t{nverts} * 16 > r->remaining()) {
    return Status::InvalidArgument("regions section: ring count overruns");
  }
  out->resize(nverts);
  for (geom::Point& v : *out) {
    v.x = r->F64();
    v.y = r->F64();
    if (!std::isfinite(v.x) || !std::isfinite(v.y)) {
      return Status::InvalidArgument("regions section: non-finite vertex");
    }
  }
  return Status::OK();
}

Status DecodeRegionsSection(const char* data, size_t size, data::RegionSet* out) {
  WireReader r(data, size);
  const uint32_t num_regions = r.U32();
  const uint32_t num_polys = r.U32();
  if (!r.ok()) return Status::InvalidArgument("malformed regions section header");
  out->num_regions = num_regions;
  // No up-front reserve from counts: each polygon consumes >= 12 bytes of
  // the section, so growth is bounded by actual input.
  for (uint32_t i = 0; i < num_polys; ++i) {
    const uint32_t region_of = r.U32();
    const uint32_t ring_count = r.U32();
    if (!r.ok() || region_of >= num_regions || ring_count < 1 ||
        uint64_t{ring_count} * 4 > r.remaining()) {
      return Status::InvalidArgument("regions section: malformed polygon header");
    }
    geom::Ring outer;
    Status s = DecodeRing(&r, &outer);
    if (!s.ok()) return s;
    std::vector<geom::Ring> holes(ring_count - 1);
    for (geom::Ring& hole : holes) {
      s = DecodeRing(&r, &hole);
      if (!s.ok()) return s;
    }
    out->region_of.push_back(region_of);
    // Rings are reconstructed verbatim (no Normalize): the writer stored
    // the canonical orientation, and re-normalizing would have to be a
    // provable no-op anyway for the byte-identity contract to hold.
    out->polys.emplace_back(std::move(outer), std::move(holes));
  }
  const uint32_t num_names = r.U32();
  if (!r.ok()) return Status::InvalidArgument("regions section: malformed names");
  for (uint32_t i = 0; i < num_names; ++i) {
    const uint32_t len = r.U32();
    if (!r.ok() || len > r.remaining()) {
      return Status::InvalidArgument("regions section: name overruns");
    }
    std::string name(len, '\0');
    for (char& c : name) c = static_cast<char>(r.U8());
    out->names.push_back(std::move(name));
  }
  if (!r.AtEnd()) return Status::InvalidArgument("malformed regions section");
  return Status::OK();
}

Status DecodeIndexKeysSection(const char* data, size_t size,
                              std::vector<uint64_t>* out) {
  WireReader r(data, size);
  const uint32_t n = r.U32();
  if (!r.ok() || uint64_t{n} * 8 != r.remaining()) {
    return Status::InvalidArgument("index-keys section length mismatch");
  }
  out->resize(n);
  for (uint64_t& k : *out) k = r.U64();
  if (!r.AtEnd()) return Status::InvalidArgument("malformed index-keys section");
  if (!std::is_sorted(out->begin(), out->end())) {
    return Status::InvalidArgument("index-keys section: keys not sorted");
  }
  return Status::OK();
}

Status DecodeIndexPrefixSection(const char* data, size_t size,
                                std::vector<double>* prefix,
                                std::vector<double>* prefix_comp) {
  WireReader r(data, size);
  const uint32_t n = r.U32();
  if (!r.ok() || (uint64_t{n} + 1) * 16 != r.remaining()) {
    return Status::InvalidArgument("index-prefix section length mismatch");
  }
  prefix->resize(uint64_t{n} + 1);
  for (double& p : *prefix) p = r.F64();
  prefix_comp->resize(uint64_t{n} + 1);
  for (double& p : *prefix_comp) p = r.F64();
  if (!r.AtEnd()) return Status::InvalidArgument("malformed index-prefix section");
  if ((*prefix)[0] != 0.0 || (*prefix_comp)[0] != 0.0) {
    return Status::InvalidArgument("index-prefix section: prefix[0] not zero");
  }
  return Status::OK();
}

Status DecodeIndexIdsSection(const char* data, size_t size,
                             std::vector<uint32_t>* out) {
  WireReader r(data, size);
  const uint32_t n = r.U32();
  if (!r.ok() || uint64_t{n} * 4 != r.remaining()) {
    return Status::InvalidArgument("index-ids section length mismatch");
  }
  out->resize(n);
  for (uint32_t& id : *out) {
    id = r.U32();
    if (id >= n) return Status::InvalidArgument("index-ids section: id out of range");
  }
  if (!r.AtEnd()) return Status::InvalidArgument("malformed index-ids section");
  return Status::OK();
}

Status DecodeRoutingSection(const char* data, size_t size, uint32_t expect_shards,
                            std::vector<core::ShardedState::Shard>* out) {
  WireReader r(data, size);
  const uint32_t num_shards = r.U32();
  if (!r.ok() || num_shards != expect_shards) {
    return Status::InvalidArgument("routing section shard count mismatch");
  }
  for (uint32_t s = 0; s < num_shards; ++s) {
    core::ShardedState::Shard shard;
    shard.bounds.min.x = r.F64();
    shard.bounds.min.y = r.F64();
    shard.bounds.max.x = r.F64();
    shard.bounds.max.y = r.F64();
    shard.min_ix = r.U32();
    shard.min_iy = r.U32();
    shard.max_ix = r.U32();
    shard.max_iy = r.U32();
    shard.hilbert_lo = r.U64();
    shard.hilbert_hi = r.U64();
    const uint32_t nranges = r.U32();
    if (!r.ok() || uint64_t{nranges} * 16 > r.remaining()) {
      return Status::InvalidArgument("routing section: key ranges overrun");
    }
    shard.key_ranges.resize(nranges);
    uint64_t prev_hi = 0;
    bool first = true;
    for (auto& [lo, hi] : shard.key_ranges) {
      lo = r.U64();
      hi = r.U64();
      if (lo > hi || (!first && lo <= prev_hi)) {
        return Status::InvalidArgument(
            "routing section: key ranges not sorted-disjoint");
      }
      prev_hi = hi;
      first = false;
    }
    const uint32_t nids = r.U32();
    if (!r.ok() || uint64_t{nids} * 4 > r.remaining()) {
      return Status::InvalidArgument("routing section: global ids overrun");
    }
    shard.global_ids.resize(nids);
    uint32_t prev_id = 0;
    bool first_id = true;
    for (uint32_t& id : shard.global_ids) {
      id = r.U32();
      if (!first_id && id <= prev_id) {
        return Status::InvalidArgument("routing section: global ids not ascending");
      }
      prev_id = id;
      first_id = false;
    }
    out->push_back(std::move(shard));
  }
  if (!r.AtEnd()) return Status::InvalidArgument("malformed routing section");
  return Status::OK();
}

}  // namespace

uint64_t SnapshotChecksum(const char* data, size_t n) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < n; ++i) {
    h ^= static_cast<uint8_t>(data[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

// ---- SnapshotWriter ----------------------------------------------------

void SnapshotWriter::AddSection(SectionId id, std::string bytes) {
  for (const auto& [existing, unused] : sections_) {
    DBSA_CHECK(existing != id);
  }
  sections_.emplace_back(id, std::move(bytes));
}

std::string SnapshotWriter::Serialize() const {
  DBSA_CHECK(meta_.epoch != 0);  // 0 is the wire wildcard, never a file epoch
  WireWriter w;
  w.U32(kSnapshotMagic);
  w.U16(kSnapshotFormatVersion);
  w.U16(0);  // reserved
  w.U64(meta_.epoch);
  w.I32(meta_.shard_index);
  w.U32(meta_.num_shards);
  w.I32(meta_.hilbert_level);
  DBSA_CHECK(sections_.size() <= static_cast<size_t>(kSectionIdCount));
  w.U32(static_cast<uint32_t>(sections_.size()));
  uint64_t offset =
      kSnapshotHeaderSize + sections_.size() * kSnapshotDirEntrySize;
  for (const auto& [id, bytes] : sections_) {
    w.U32(static_cast<uint32_t>(id));
    w.U32(0);  // reserved
    w.U64(offset);
    w.U64(bytes.size());
    w.U64(SnapshotChecksum(bytes.data(), bytes.size()));
    offset += bytes.size();
  }
  std::string out = w.payload();
  for (const auto& [id, bytes] : sections_) out.append(bytes);
  return out;
}

Status SnapshotWriter::WriteFile(const std::string& path) const {
  const std::string image = Serialize();
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Unavailable("cannot open snapshot for writing: " + path);
  }
  const size_t written = std::fwrite(image.data(), 1, image.size(), f);
  const bool closed = std::fclose(f) == 0;
  if (written != image.size() || !closed) {
    std::remove(path.c_str());
    return Status::Unavailable("short write to snapshot: " + path);
  }
  return Status::OK();
}

void AddEngineStateSections(const core::EngineState& state, SnapshotWriter* writer) {
  DBSA_CHECK(state.points != nullptr && state.regions != nullptr);
  DBSA_CHECK(state.point_index.has_value());
  const index::PrefixSumIndex& index = state.point_index->prefix_index();
  DBSA_CHECK(index.size() == state.points->size());
  writer->AddSection(SectionId::kGrid, EncodeGridSection(state.grid));
  writer->AddSection(SectionId::kPoints, EncodePointsSection(*state.points));
  writer->AddSection(SectionId::kRegions, EncodeRegionsSection(*state.regions));
  writer->AddSection(SectionId::kIndexKeys, EncodeIndexKeysSection(index));
  writer->AddSection(SectionId::kIndexPrefix, EncodeIndexPrefixSection(index));
  writer->AddSection(SectionId::kIndexIds, EncodeIndexIdsSection(index));
}

std::string EncodeClientSnapshot(const core::ShardedState& sharded, uint64_t epoch) {
  SnapshotMeta meta;
  meta.epoch = epoch;
  meta.shard_index = -1;
  meta.num_shards = static_cast<uint32_t>(sharded.num_shards());
  meta.hilbert_level = sharded.hilbert_level();
  SnapshotWriter writer(meta);
  AddEngineStateSections(sharded.base(), &writer);
  writer.AddSection(SectionId::kRouting, EncodeRoutingSection(sharded));
  return writer.Serialize();
}

std::string EncodeShardSnapshot(const core::ShardedState& sharded, size_t shard,
                                uint64_t epoch) {
  DBSA_CHECK(shard < sharded.num_shards());
  const core::ShardedState::Shard& s = sharded.shard(shard);
  DBSA_CHECK(s.state != nullptr);  // slice must be materialized (and non-empty)
  SnapshotMeta meta;
  meta.epoch = epoch;
  meta.shard_index = static_cast<int32_t>(shard);
  meta.num_shards = static_cast<uint32_t>(sharded.num_shards());
  meta.hilbert_level = sharded.hilbert_level();
  SnapshotWriter writer(meta);
  AddEngineStateSections(*s.state, &writer);
  writer.AddSection(SectionId::kShardIds, EncodeShardIdsSection(s.global_ids));
  return writer.Serialize();
}

// ---- SnapshotReader ----------------------------------------------------

StatusOr<SnapshotReader> SnapshotReader::ParseBacking(
    const char* data, size_t size, std::shared_ptr<const void> backing) {
  if (size < kSnapshotHeaderSize) {
    return Status::InvalidArgument("snapshot shorter than header");
  }
  WireReader r(data, size);
  const uint32_t magic = r.U32();
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument("bad snapshot magic");
  }
  const uint16_t version = r.U16();
  if (version != kSnapshotFormatVersion) {
    // Skew, not corruption: the file is well-formed for another format
    // revision — same split the wire's ParseFrame makes.
    return Status::Unimplemented("snapshot format version skew: file v" +
                                 std::to_string(version) + ", reader v" +
                                 std::to_string(kSnapshotFormatVersion));
  }
  const uint16_t reserved = r.U16();
  SnapshotReader reader;
  reader.meta_.epoch = r.U64();
  reader.meta_.shard_index = r.I32();
  reader.meta_.num_shards = r.U32();
  reader.meta_.hilbert_level = r.I32();
  const uint32_t section_count = r.U32();
  if (reserved != 0 || reader.meta_.epoch == 0 ||
      reader.meta_.shard_index < -1 || reader.meta_.num_shards == 0 ||
      reader.meta_.num_shards > (1u << 20) ||
      (reader.meta_.shard_index >= 0 &&
       static_cast<uint32_t>(reader.meta_.shard_index) >= reader.meta_.num_shards) ||
      reader.meta_.hilbert_level < 0 || reader.meta_.hilbert_level > 32) {
    return Status::InvalidArgument("malformed snapshot header");
  }
  // Ids are unique and drawn from [1, kSectionIdCount], so more entries
  // than ids is malformed before we even read the directory.
  if (section_count > static_cast<uint32_t>(kSectionIdCount)) {
    return Status::InvalidArgument("snapshot section count out of range");
  }
  const uint64_t sections_start =
      kSnapshotHeaderSize + uint64_t{section_count} * kSnapshotDirEntrySize;
  if (sections_start > size) {
    return Status::InvalidArgument("snapshot directory overruns file");
  }
  uint64_t expected_offset = sections_start;
  for (uint32_t i = 0; i < section_count; ++i) {
    const uint32_t raw_id = r.U32();
    const uint32_t entry_reserved = r.U32();
    const uint64_t offset = r.U64();
    const uint64_t length = r.U64();
    const uint64_t checksum = r.U64();
    DBSA_CHECK(r.ok());  // directory bound checked above
    if (!ValidSectionId(raw_id) || entry_reserved != 0) {
      return Status::InvalidArgument("malformed snapshot directory entry");
    }
    const SectionId id = static_cast<SectionId>(raw_id);
    for (const Section& existing : reader.sections_) {
      if (existing.id == id) {
        return Status::InvalidArgument("duplicate snapshot section");
      }
    }
    // Strict geometry: sections sit back to back in directory order.
    // offset <= size holds inductively, so size - offset cannot wrap.
    if (offset != expected_offset || length > size - offset) {
      return Status::InvalidArgument("snapshot section geometry mismatch");
    }
    if (SnapshotChecksum(data + offset, length) != checksum) {
      return Status::InvalidArgument("snapshot section checksum mismatch");
    }
    reader.sections_.push_back(Section{id, data + offset, length});
    expected_offset = offset + length;
  }
  if (expected_offset != size) {
    return Status::InvalidArgument("snapshot has trailing bytes");
  }
  reader.backing_ = std::move(backing);
  return reader;
}

StatusOr<SnapshotReader> SnapshotReader::Parse(std::string bytes) {
  auto backing = std::make_shared<const std::string>(std::move(bytes));
  return ParseBacking(backing->data(), backing->size(), backing);
}

StatusOr<SnapshotReader> SnapshotReader::Load(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::NotFound("cannot open snapshot: " + path);
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::NotFound("cannot stat snapshot: " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size > 0) {
    void* map = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    ::close(fd);
    if (map != MAP_FAILED) {
      std::shared_ptr<const void> owner(map, [size](const void* p) {
        ::munmap(const_cast<void*>(p), size);
      });
      return ParseBacking(static_cast<const char*>(map), size, std::move(owner));
    }
  } else {
    ::close(fd);
  }
  // Buffered fallback (mmap unavailable or empty file).
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open snapshot: " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  return Parse(std::move(bytes));
}

const SnapshotReader::Section* SnapshotReader::FindSection(SectionId id) const {
  for (const Section& s : sections_) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

bool SnapshotReader::HasSection(SectionId id) const {
  return FindSection(id) != nullptr;
}

StatusOr<std::shared_ptr<const core::EngineState>>
SnapshotReader::AssembleEngineState() const {
  const Section* grid_sec = FindSection(SectionId::kGrid);
  const Section* points_sec = FindSection(SectionId::kPoints);
  const Section* regions_sec = FindSection(SectionId::kRegions);
  const Section* keys_sec = FindSection(SectionId::kIndexKeys);
  const Section* prefix_sec = FindSection(SectionId::kIndexPrefix);
  const Section* ids_sec = FindSection(SectionId::kIndexIds);
  if (grid_sec == nullptr || points_sec == nullptr || regions_sec == nullptr ||
      keys_sec == nullptr || prefix_sec == nullptr || ids_sec == nullptr) {
    return Status::InvalidArgument("snapshot missing engine-state section");
  }
  GridParts grid;
  data::PointSet points;
  data::RegionSet regions;
  std::vector<uint64_t> keys;
  std::vector<double> prefix, prefix_comp;
  std::vector<uint32_t> ids;
  Status s = DecodeGridSection(grid_sec->data, grid_sec->size, &grid);
  if (s.ok()) s = DecodePointsSection(points_sec->data, points_sec->size, &points);
  if (s.ok()) {
    s = DecodeRegionsSection(regions_sec->data, regions_sec->size, &regions);
  }
  if (s.ok()) s = DecodeIndexKeysSection(keys_sec->data, keys_sec->size, &keys);
  if (s.ok()) {
    s = DecodeIndexPrefixSection(prefix_sec->data, prefix_sec->size, &prefix,
                                 &prefix_comp);
  }
  if (s.ok()) s = DecodeIndexIdsSection(ids_sec->data, ids_sec->size, &ids);
  if (!s.ok()) return s;
  // Cross-section consistency: one index entry per point, matching array
  // lengths (per-section checks bounded ids against their OWN count).
  if (keys.size() != points.size() || ids.size() != keys.size() ||
      prefix.size() != keys.size() + 1) {
    return Status::InvalidArgument("snapshot index/point table size mismatch");
  }
  auto state = std::make_shared<core::EngineState>();
  state->points = std::make_shared<const data::PointSet>(std::move(points));
  state->regions = std::make_shared<const data::RegionSet>(std::move(regions));
  state->passengers_as_double.assign(state->points->passengers.begin(),
                                     state->points->passengers.end());
  state->grid = raster::Grid(geom::Point{grid.origin_x, grid.origin_y}, grid.side);
  state->point_index = join::PointIndex::FromParts(
      state->grid,
      index::PrefixSumIndex::FromParts(std::move(keys), std::move(prefix),
                                       std::move(prefix_comp), std::move(ids)));
  return std::shared_ptr<const core::EngineState>(std::move(state));
}

StatusOr<std::vector<uint32_t>> SnapshotReader::DecodeShardIds() const {
  const Section* sec = FindSection(SectionId::kShardIds);
  if (sec == nullptr) {
    return Status::InvalidArgument("snapshot missing shard-ids section");
  }
  WireReader r(sec->data, sec->size);
  const uint32_t n = r.U32();
  if (!r.ok() || uint64_t{n} * 4 != r.remaining()) {
    return Status::InvalidArgument("shard-ids section length mismatch");
  }
  std::vector<uint32_t> ids(n);
  uint32_t prev = 0;
  bool first = true;
  for (uint32_t& id : ids) {
    id = r.U32();
    if (!first && id <= prev) {
      return Status::InvalidArgument("shard-ids section: ids not ascending");
    }
    prev = id;
    first = false;
  }
  if (!r.AtEnd()) return Status::InvalidArgument("malformed shard-ids section");
  return ids;
}

StatusOr<std::shared_ptr<const core::ShardedState>>
SnapshotReader::AssembleRoutingState(
    std::shared_ptr<const core::EngineState> base) const {
  DBSA_CHECK(base != nullptr);
  const Section* sec = FindSection(SectionId::kRouting);
  if (sec == nullptr) {
    return Status::InvalidArgument("snapshot missing routing section");
  }
  std::vector<core::ShardedState::Shard> shards;
  Status s = DecodeRoutingSection(sec->data, sec->size, meta_.num_shards, &shards);
  if (!s.ok()) return s;
  const size_t num_points = base->points->size();
  size_t total_ids = 0;
  for (const core::ShardedState::Shard& shard : shards) {
    for (const uint32_t id : shard.global_ids) {
      if (id >= num_points) {
        return Status::InvalidArgument("routing section: global id out of range");
      }
    }
    total_ids += shard.global_ids.size();
  }
  // Shards partition the base rows (ascending per shard, checked above).
  if (total_ids != num_points) {
    return Status::InvalidArgument("routing section does not partition the points");
  }
  return core::ShardedState::FromParts(std::move(base), std::move(shards),
                                       meta_.hilbert_level, /*has_slices=*/false);
}

StatusOr<std::shared_ptr<const core::ShardedState>> AssembleClusterState(
    const SnapshotReader& client, const std::vector<SnapshotReader>& slices) {
  if (client.meta().shard_index != -1) {
    return Status::InvalidArgument("not a client snapshot");
  }
  if (slices.size() != client.meta().num_shards) {
    return Status::FailedPrecondition(
        "slice count disagrees with client snapshot shard count");
  }
  auto base_or = client.AssembleEngineState();
  if (!base_or.ok()) return base_or.status();
  auto routing_or = client.AssembleRoutingState(base_or.value());
  if (!routing_or.ok()) return routing_or.status();
  const core::ShardedState& routing = *routing_or.value();
  std::vector<core::ShardedState::Shard> shards(routing.shards());
  for (size_t i = 0; i < slices.size(); ++i) {
    const SnapshotMeta& m = slices[i].meta();
    if (m.epoch != client.meta().epoch) {
      return Status::FailedPrecondition(
          "snapshot epoch skew: slice " + std::to_string(i) + " has epoch " +
          std::to_string(m.epoch) + ", client has " +
          std::to_string(client.meta().epoch));
    }
    if (m.shard_index != static_cast<int32_t>(i) ||
        m.num_shards != client.meta().num_shards ||
        m.hilbert_level != client.meta().hilbert_level) {
      return Status::FailedPrecondition("snapshot shard topology skew");
    }
    auto slice_or = slices[i].AssembleEngineState();
    if (!slice_or.ok()) return slice_or.status();
    auto ids_or = slices[i].DecodeShardIds();
    if (!ids_or.ok()) return ids_or.status();
    if (ids_or.value() != shards[i].global_ids) {
      return Status::InvalidArgument(
          "slice global-id map disagrees with client routing section");
    }
    if (slice_or.value()->points->size() != shards[i].global_ids.size()) {
      return Status::InvalidArgument("slice point count disagrees with id map");
    }
    shards[i].state = std::move(slice_or).value();
  }
  return core::ShardedState::FromParts(routing.base_ptr(), std::move(shards),
                                       client.meta().hilbert_level,
                                       /*has_slices=*/true);
}

}  // namespace dbsa::snapshot
