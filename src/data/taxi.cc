#include "data/taxi.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace dbsa::data {

PointSet GenerateTaxiPoints(size_t n, const TaxiConfig& config) {
  Rng rng(config.seed);
  const geom::Box& u = config.universe;

  // Hotspot centers: one dominant core plus secondary centers.
  struct Hotspot {
    geom::Point center;
    double sigma;
    double weight;
  };
  std::vector<Hotspot> hotspots;
  const geom::Point core{u.min.x + u.Width() * 0.45, u.min.y + u.Height() * 0.55};
  hotspots.push_back({core, u.Width() * 0.04, 0.4});
  for (int h = 1; h < std::max(config.num_hotspots, 1); ++h) {
    Hotspot hs;
    hs.center = {rng.Uniform(u.min.x + u.Width() * 0.1, u.max.x - u.Width() * 0.1),
                 rng.Uniform(u.min.y + u.Height() * 0.1, u.max.y - u.Height() * 0.1)};
    hs.sigma = u.Width() * rng.Uniform(0.01, 0.05);
    hs.weight = rng.Uniform(0.2, 1.0);
    hotspots.push_back(hs);
  }
  double total_weight = 0.0;
  for (const Hotspot& hs : hotspots) total_weight += hs.weight;

  PointSet points;
  points.locs.reserve(n);
  points.fare.reserve(n);
  points.passengers.reserve(n);
  points.hour.reserve(n);

  const double diag = std::sqrt(u.Width() * u.Width() + u.Height() * u.Height());
  for (size_t i = 0; i < n; ++i) {
    geom::Point p;
    if (rng.Bernoulli(config.hotspot_fraction)) {
      // Pick a hotspot by weight.
      double pick = rng.Uniform() * total_weight;
      size_t h = 0;
      while (h + 1 < hotspots.size() && pick > hotspots[h].weight) {
        pick -= hotspots[h].weight;
        ++h;
      }
      const Hotspot& hs = hotspots[h];
      do {
        p = {rng.Gaussian(hs.center.x, hs.sigma), rng.Gaussian(hs.center.y, hs.sigma)};
      } while (!u.Contains(p));
    } else {
      p = {rng.Uniform(u.min.x, u.max.x), rng.Uniform(u.min.y, u.max.y)};
    }
    points.locs.push_back(p);

    // Fare: lognormal base plus a distance-from-core component.
    const double dist_frac = geom::Distance(p, core) / diag;
    const double fare = std::exp(rng.Gaussian(2.2, 0.45)) + 25.0 * dist_frac;
    points.fare.push_back(fare);
    points.passengers.push_back(static_cast<uint8_t>(1 + rng.Below(6)));
    // Hour with rush-hour humps at 8-9 and 17-19.
    const double r = rng.Uniform();
    int hour;
    if (r < 0.25) {
      hour = 8 + static_cast<int>(rng.Below(2));
    } else if (r < 0.55) {
      hour = 17 + static_cast<int>(rng.Below(3));
    } else {
      hour = static_cast<int>(rng.Below(24));
    }
    points.hour.push_back(static_cast<uint8_t>(hour));
  }
  return points;
}

}  // namespace dbsa::data
