#include "data/regions.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "util/check.h"
#include "util/random.h"

namespace dbsa::data {

namespace {

// Smooth pseudo-random warp field. All vertices (including shared edge
// samples) go through this same function, so shared boundaries remain
// shared after warping. The envelope pins the universe border in place.
class Warp {
 public:
  Warp(const geom::Box& universe, double amplitude)
      : u_(universe), a_(amplitude), inv_w_(1.0 / universe.Width()),
        inv_h_(1.0 / universe.Height()) {}

  geom::Point Apply(const geom::Point& p) const {
    const double nx = (p.x - u_.min.x) * inv_w_;
    const double ny = (p.y - u_.min.y) * inv_h_;
    const double env = Envelope(nx) * Envelope(ny);
    const double two_pi = 6.283185307179586;
    const double fx = std::sin(two_pi * (3.1 * nx + 1.7 * ny) + 0.9) +
                      0.6 * std::sin(two_pi * (7.3 * nx - 5.1 * ny) + 2.1) +
                      0.35 * std::sin(two_pi * (13.7 * nx + 11.3 * ny) + 4.2);
    const double fy = std::sin(two_pi * (2.7 * nx - 3.3 * ny) + 5.3) +
                      0.6 * std::sin(two_pi * (6.1 * nx + 8.3 * ny) + 1.3) +
                      0.35 * std::sin(two_pi * (12.3 * nx - 9.7 * ny) + 3.7);
    return {p.x + a_ * env * fx, p.y + a_ * env * fy};
  }

 private:
  // Smoothstep ramp over the outer 2% so the universe border stays fixed.
  static double Envelope(double t) {
    const double margin = 0.02;
    const double d = std::min({t, 1.0 - t, margin}) / margin;
    return d * d * (3.0 - 2.0 * d);
  }

  geom::Box u_;
  double a_;
  double inv_w_, inv_h_;
};

struct Rect {
  double x0, y0, x1, y1;
  double Area() const { return (x1 - x0) * (y1 - y0); }
};

}  // namespace

RegionSet GenerateRegions(const RegionConfig& config) {
  DBSA_CHECK(config.num_polygons >= 1);
  Rng rng(config.seed);
  const geom::Box& u = config.universe;

  // --- 1. KD subdivision: split the largest rect until num_polygons.
  std::vector<Rect> rects = {{u.min.x, u.min.y, u.max.x, u.max.y}};
  while (rects.size() < config.num_polygons) {
    size_t largest = 0;
    for (size_t i = 1; i < rects.size(); ++i) {
      if (rects[i].Area() > rects[largest].Area()) largest = i;
    }
    Rect r = rects[largest];
    const double ratio = rng.Uniform(0.35, 0.65);
    Rect a = r, b = r;
    if (r.x1 - r.x0 >= r.y1 - r.y0) {
      const double cut = r.x0 + (r.x1 - r.x0) * ratio;
      a.x1 = cut;
      b.x0 = cut;
    } else {
      const double cut = r.y0 + (r.y1 - r.y0) * ratio;
      a.y1 = cut;
      b.y0 = cut;
    }
    rects[largest] = a;
    rects.push_back(b);
  }

  // Corner maps: every rect corner, grouped by its y (for horizontal
  // edges) and x (for vertical edges). A neighbour's corner lying on this
  // rect's edge is a T-junction and must become a shared vertex — that is
  // what keeps the warped tiling exact.
  std::map<double, std::set<double>> corners_at_y;  // y -> {x}.
  std::map<double, std::set<double>> corners_at_x;  // x -> {y}.
  for (const Rect& r : rects) {
    corners_at_y[r.y0].insert(r.x0);
    corners_at_y[r.y0].insert(r.x1);
    corners_at_y[r.y1].insert(r.x0);
    corners_at_y[r.y1].insert(r.x1);
    corners_at_x[r.x0].insert(r.y0);
    corners_at_x[r.x0].insert(r.y1);
    corners_at_x[r.x1].insert(r.y0);
    corners_at_x[r.x1].insert(r.y1);
  }

  // --- 2. Edge sampling step from the vertex-count target.
  double avg_perimeter = 0.0;
  for (const Rect& r : rects) avg_perimeter += 2.0 * ((r.x1 - r.x0) + (r.y1 - r.y0));
  avg_perimeter /= static_cast<double>(rects.size());
  const double target = std::max(config.target_avg_vertices, 4.0);
  const double step = avg_perimeter / std::max(target - 6.0, 2.0);

  const double amplitude =
      std::min(config.warp_amplitude_frac * step, u.Width() / 220.0);
  const Warp warp(u, amplitude);

  // Sample positions along one axis: global lattice multiples of `step`
  // plus every T-junction corner strictly inside (lo, hi). Both
  // neighbours of a shared edge use the same rule, so their warped
  // polylines coincide and the tiling stays exact.
  auto axis_samples = [&](double lo, double hi, const std::set<double>& junctions) {
    std::vector<double> out;
    out.push_back(lo);
    const double first = std::ceil(lo / step) * step;
    for (double v = first; v < hi - 1e-9; v += step) {
      if (v > lo + 1e-9) out.push_back(v);
    }
    for (auto it = junctions.upper_bound(lo);
         it != junctions.end() && *it < hi - 1e-9; ++it) {
      out.push_back(*it);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end(),
                          [](double a, double b) { return std::fabs(a - b) < 1e-9; }),
              out.end());
    return out;  // Includes lo, excludes hi.
  };

  RegionSet regions;
  regions.polys.reserve(rects.size());
  const std::set<double> empty_set;
  auto junctions_at = [&](const std::map<double, std::set<double>>& m,
                          double coord) -> const std::set<double>& {
    const auto it = m.find(coord);
    return it == m.end() ? empty_set : it->second;
  };
  for (const Rect& r : rects) {
    geom::Ring ring;
    // Bottom edge (left to right), excluding the end corner of each edge.
    for (const double x : axis_samples(r.x0, r.x1, junctions_at(corners_at_y, r.y0))) {
      ring.push_back(warp.Apply({x, r.y0}));
    }
    // Right edge (bottom to top).
    for (const double y : axis_samples(r.y0, r.y1, junctions_at(corners_at_x, r.x1))) {
      ring.push_back(warp.Apply({r.x1, y}));
    }
    // Top edge (right to left): x1 corner then interior samples reversed.
    {
      auto xs = axis_samples(r.x0, r.x1, junctions_at(corners_at_y, r.y1));
      ring.push_back(warp.Apply({r.x1, r.y1}));
      for (size_t i = xs.size(); i-- > 1;) {
        ring.push_back(warp.Apply({xs[i], r.y1}));
      }
    }
    // Left edge (top to bottom): y1 corner then interior samples reversed.
    {
      auto ys = axis_samples(r.y0, r.y1, junctions_at(corners_at_x, r.x0));
      ring.push_back(warp.Apply({r.x0, r.y1}));
      for (size_t i = ys.size(); i-- > 1;) {
        ring.push_back(warp.Apply({r.x0, ys[i]}));
      }
    }
    geom::Polygon poly(std::move(ring));
    poly.Normalize();
    regions.polys.push_back(std::move(poly));
  }

  // --- 3. Region ids (optionally fold polygons into multi-part regions).
  const size_t n = regions.polys.size();
  regions.region_of.resize(n);
  for (size_t i = 0; i < n; ++i) regions.region_of[i] = static_cast<uint32_t>(i);
  if (config.multi_fraction > 0.0 && n >= 2) {
    const size_t folds = static_cast<size_t>(config.multi_fraction * n);
    for (size_t f = 0; f < folds; ++f) {
      const size_t a = rng.Below(n);
      const size_t b = rng.Below(n);
      if (a != b) regions.region_of[a] = regions.region_of[b];
    }
    // Path-compress and densify ids.
    for (size_t i = 0; i < n; ++i) {
      uint32_t r = regions.region_of[i];
      while (regions.region_of[r] != r) r = regions.region_of[r];
      regions.region_of[i] = r;
    }
  }
  std::vector<int64_t> remap(n, -1);
  uint32_t next_id = 0;
  for (size_t i = 0; i < n; ++i) {
    const uint32_t root = regions.region_of[i];
    if (remap[root] < 0) remap[root] = next_id++;
    regions.region_of[i] = static_cast<uint32_t>(remap[root]);
  }
  regions.num_regions = next_id;
  regions.names.resize(regions.num_regions);
  for (size_t r = 0; r < regions.num_regions; ++r) {
    regions.names[r] = "R" + std::to_string(r);
  }
  return regions;
}

RegionConfig BoroughsConfig(const geom::Box& universe) {
  RegionConfig c;
  c.universe = universe;
  c.num_polygons = 5;
  c.target_avg_vertices = 663.0;
  c.seed = 501;
  return c;
}

RegionConfig NeighborhoodsConfig(const geom::Box& universe) {
  RegionConfig c;
  c.universe = universe;
  c.num_polygons = 289;
  c.target_avg_vertices = 30.6;
  c.multi_fraction = 0.1;  // ~260 regions out of 289 polygons, as in Fig 7.
  c.seed = 502;
  return c;
}

RegionConfig CensusConfig(const geom::Box& universe, size_t num_polygons) {
  RegionConfig c;
  c.universe = universe;
  c.num_polygons = num_polygons;  // Paper: 39,200; benches scale down.
  c.target_avg_vertices = 13.6;
  c.seed = 503;
  return c;
}

}  // namespace dbsa::data
