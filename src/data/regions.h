// Synthetic administrative-region generator — the stand-in for the NYC
// polygon datasets (Boroughs: 5 polygons / 663 avg vertices,
// Neighborhoods: 289 / 30.6, Census: 39,200 / 13.6). A KD subdivision of
// the universe is pushed through a smooth global warp; because shared
// edges are sampled on a global lattice (plus all split coordinates) and
// warped pointwise, the regions tile the universe exactly — every point
// belongs to exactly one region, as with real administrative boundaries.

#ifndef DBSA_DATA_REGIONS_H_
#define DBSA_DATA_REGIONS_H_

#include "data/dataset.h"

namespace dbsa::data {

struct RegionConfig {
  geom::Box universe = geom::Box(0.0, 0.0, 65536.0, 65536.0);
  size_t num_polygons = 289;
  double target_avg_vertices = 30.0;
  /// Warp displacement as a fraction of the edge-sampling step.
  double warp_amplitude_frac = 0.35;
  /// Fraction of polygons folded into other polygons' regions, producing
  /// multi-polygon regions (the paper's Neighborhoods contain some).
  double multi_fraction = 0.0;
  uint64_t seed = 7;
};

/// Generates a tiling region set per the config.
RegionSet GenerateRegions(const RegionConfig& config);

/// Presets calibrated to the paper's datasets, scaled by `scale` (1.0 =
/// paper-sized polygon counts; benches use smaller scales for Census).
RegionConfig BoroughsConfig(const geom::Box& universe);
RegionConfig NeighborhoodsConfig(const geom::Box& universe);
RegionConfig CensusConfig(const geom::Box& universe, size_t num_polygons = 3920);

}  // namespace dbsa::data

#endif  // DBSA_DATA_REGIONS_H_
