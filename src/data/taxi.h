// Synthetic taxi-trip generator — the stand-in for the NYC TLC trip data
// the paper joins (1.2B pickups, 2009-2016). Pickup locations follow a
// hotspot mixture (a dense core plus secondary centers over a uniform
// floor), matching the skew that makes the paper's experiments
// interesting; fares correlate with distance from the core.

#ifndef DBSA_DATA_TAXI_H_
#define DBSA_DATA_TAXI_H_

#include "data/dataset.h"

namespace dbsa::data {

/// Configuration of the synthetic city.
struct TaxiConfig {
  geom::Box universe = geom::Box(0.0, 0.0, 65536.0, 65536.0);  ///< ~65 km side.
  int num_hotspots = 12;
  double hotspot_fraction = 0.85;  ///< Points drawn from hotspots vs uniform.
  uint64_t seed = 20210111;        ///< CIDR'21 started Jan 11, 2021.
};

/// Generates n trip pickups.
PointSet GenerateTaxiPoints(size_t n, const TaxiConfig& config = {});

}  // namespace dbsa::data

#endif  // DBSA_DATA_TAXI_H_
