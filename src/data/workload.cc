#include "data/workload.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace dbsa::data {

std::vector<ZoomStep> MakeZoomSequence(const geom::Box& universe,
                                       const geom::Point& focus, int steps,
                                       int screen_pixels) {
  std::vector<ZoomStep> out;
  geom::Box view = universe;
  for (int s = 0; s < steps; ++s) {
    ZoomStep step;
    step.viewport = view;
    step.epsilon = std::max(view.Width(), view.Height()) /
                   static_cast<double>(screen_pixels) * 1.4142135623730951;
    out.push_back(step);
    // Halve towards the focus, clamped inside the universe.
    const double w = view.Width() * 0.5;
    const double h = view.Height() * 0.5;
    double x0 = std::clamp(focus.x - w * 0.5, universe.min.x, universe.max.x - w);
    double y0 = std::clamp(focus.y - h * 0.5, universe.min.y, universe.max.y - h);
    view = geom::Box(x0, y0, x0 + w, y0 + h);
  }
  return out;
}

std::vector<geom::Box> MakeQueryBoxes(const geom::Box& universe, size_t count,
                                      double selectivity, uint64_t seed) {
  Rng rng(seed);
  std::vector<geom::Box> out;
  out.reserve(count);
  const double side_frac = std::sqrt(std::clamp(selectivity, 1e-9, 1.0));
  const double w = universe.Width() * side_frac;
  const double h = universe.Height() * side_frac;
  for (size_t i = 0; i < count; ++i) {
    const double x0 = rng.Uniform(universe.min.x, universe.max.x - w);
    const double y0 = rng.Uniform(universe.min.y, universe.max.y - h);
    out.push_back(geom::Box(x0, y0, x0 + w, y0 + h));
  }
  return out;
}

}  // namespace dbsa::data
