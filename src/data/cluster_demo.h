// The "demo city": the deterministic synthetic dataset shared by BOTH
// halves of the socket-cluster walkthrough — shard_server_main (the
// server processes) and examples/socket_cluster_demo.cpp (the client).
//
// A socket deployment only reproduces the engine's byte-identity
// contract if every process builds the SAME EngineState bit for bit:
// the client shards it for routing metadata, each server shards it and
// keeps its own slice, and the slices must line up exactly. The
// generators (data/taxi.h, data/regions.h) are pure functions of their
// configs, so agreeing on this one config — same flags on every process
// — is sufficient. docs/operations.md walks through it.

#ifndef DBSA_DATA_CLUSTER_DEMO_H_
#define DBSA_DATA_CLUSTER_DEMO_H_

#include "data/regions.h"
#include "data/taxi.h"
#include "util/flags.h"

namespace dbsa::data {

/// One knob set for the whole cluster; every field must match across
/// processes (see header comment).
struct ClusterDemoConfig {
  double universe_side = 4096.0;
  size_t num_points = 20000;
  size_t num_regions = 24;
  uint64_t seed = 20210111;
  /// Hilbert ordering granularity of the shard cuts. Not a generator
  /// knob, but every process's cuts must agree (client routing build AND
  /// each server's slice build), so it rides in the must-match config.
  int hilbert_level = 16;
};

/// Parses the knobs every cluster process must agree on (--universe,
/// --points, --regions, --seed, --hilbert_level). ONE definition for
/// shard_server_main AND the demo client: a knob added here reaches
/// both binaries, so the flags-must-match contract holds by
/// construction instead of by parallel edits.
inline ClusterDemoConfig ClusterDemoConfigFromFlags(int argc, char** argv) {
  ClusterDemoConfig config;
  config.universe_side =
      util::NumFlag(argc, argv, "universe", config.universe_side);
  if (config.universe_side <= 0.0) {
    std::fprintf(stderr, "error: --universe=%g must be positive\n",
                 config.universe_side);
    std::exit(2);
  }
  config.num_points = static_cast<size_t>(
      util::UintFlag(argc, argv, "points", config.num_points));
  config.num_regions = static_cast<size_t>(
      util::UintFlag(argc, argv, "regions", config.num_regions));
  config.seed = util::UintFlag(argc, argv, "seed", config.seed);
  config.hilbert_level = static_cast<int>(util::UintFlag(
      argc, argv, "hilbert_level",
      static_cast<unsigned long long>(config.hilbert_level)));
  return config;
}

inline PointSet ClusterDemoPoints(const ClusterDemoConfig& config = {}) {
  TaxiConfig taxi;
  taxi.universe = geom::Box(0.0, 0.0, config.universe_side, config.universe_side);
  taxi.seed = config.seed;
  return GenerateTaxiPoints(config.num_points, taxi);
}

inline RegionSet ClusterDemoRegions(const ClusterDemoConfig& config = {}) {
  RegionConfig regions;
  regions.universe = geom::Box(0.0, 0.0, config.universe_side, config.universe_side);
  regions.num_polygons = config.num_regions;
  regions.target_avg_vertices = 24.0;
  regions.multi_fraction = 0.2;
  regions.seed = config.seed ^ 0x9e3779b97f4a7c15ULL;
  return GenerateRegions(regions);
}

}  // namespace dbsa::data

#endif  // DBSA_DATA_CLUSTER_DEMO_H_
