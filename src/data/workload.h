// Query workload generators: level-of-detail zoom sequences (the Uber
// Movement exploration pattern from the paper's introduction) and
// selectivity-controlled query boxes.

#ifndef DBSA_DATA_WORKLOAD_H_
#define DBSA_DATA_WORKLOAD_H_

#include <vector>

#include "data/dataset.h"

namespace dbsa::data {

/// One step of a level-of-detail exploration: a viewport plus the
/// distance bound a visualization of that viewport needs (pixel-accurate
/// at the given screen resolution).
struct ZoomStep {
  geom::Box viewport;
  double epsilon;  ///< Viewport extent / screen pixels * sqrt(2).
};

/// A zoom-in sequence: starts at the full universe, halves the viewport
/// towards `focus` each step. Epsilon follows the viewport size (overview
/// queries tolerate coarse bounds; detail views need tight ones).
std::vector<ZoomStep> MakeZoomSequence(const geom::Box& universe,
                                       const geom::Point& focus, int steps,
                                       int screen_pixels = 1024);

/// Random query boxes with area = `selectivity` * universe area.
std::vector<geom::Box> MakeQueryBoxes(const geom::Box& universe, size_t count,
                                      double selectivity, uint64_t seed);

}  // namespace dbsa::data

#endif  // DBSA_DATA_WORKLOAD_H_
