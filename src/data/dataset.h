// In-memory datasets used by benches, examples and tests: a point table
// with attributes (the taxi-trip stand-in) and a region table (the
// Boroughs / Neighborhoods / Census stand-ins). See DESIGN.md §2 for the
// substitution rationale.

#ifndef DBSA_DATA_DATASET_H_
#define DBSA_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/polygon.h"

namespace dbsa::data {

/// Column-oriented point table: P(loc, fare, passengers, hour).
struct PointSet {
  std::vector<geom::Point> locs;
  std::vector<double> fare;
  std::vector<uint8_t> passengers;
  std::vector<uint8_t> hour;

  size_t size() const { return locs.size(); }
  geom::Box Bounds() const {
    geom::Box b;
    for (const geom::Point& p : locs) b.Extend(p);
    return b;
  }
};

/// Region table: R(id, name, geometry). Regions may be multi-part:
/// polys[i] belongs to region region_of[i].
struct RegionSet {
  std::vector<geom::Polygon> polys;
  std::vector<uint32_t> region_of;
  std::vector<std::string> names;
  size_t num_regions = 0;

  size_t NumPolygons() const { return polys.size(); }

  double AvgVertices() const {
    if (polys.empty()) return 0.0;
    size_t total = 0;
    for (const geom::Polygon& p : polys) total += p.NumVertices();
    return static_cast<double>(total) / static_cast<double>(polys.size());
  }

  double TotalPerimeter() const {
    double t = 0.0;
    for (const geom::Polygon& p : polys) t += p.TotalPerimeter();
    return t;
  }

  double TotalArea() const {
    double t = 0.0;
    for (const geom::Polygon& p : polys) t += p.Area();
    return t;
  }

  geom::Box Bounds() const {
    geom::Box b;
    for (const geom::Polygon& p : polys) b.Extend(p.bounds());
    return b;
  }
};

}  // namespace dbsa::data

#endif  // DBSA_DATA_DATASET_H_
