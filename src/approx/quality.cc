#include "approx/quality.h"

#include "approx/clipped.h"
#include "approx/mbc.h"
#include "approx/mbe.h"
#include "approx/mbr.h"
#include "approx/ncorner.h"
#include "approx/rmbr.h"
#include "geom/distance.h"

namespace dbsa::approx {

std::unique_ptr<Approximation> BuildApproximation(ApproxKind kind,
                                                  const geom::Polygon& poly) {
  switch (kind) {
    case ApproxKind::kMbr:
      return std::make_unique<MbrApproximation>(poly);
    case ApproxKind::kRotatedMbr:
      return std::make_unique<RotatedMbrApproximation>(poly);
    case ApproxKind::kCircle:
      return std::make_unique<CircleApproximation>(poly);
    case ApproxKind::kEllipse:
      return std::make_unique<EllipseApproximation>(poly);
    case ApproxKind::kConvexHull:
      return std::make_unique<ConvexHullApproximation>(poly);
    case ApproxKind::kNCorner:
      return std::make_unique<NCornerApproximation>(poly, 5);
    case ApproxKind::kClippedMbr:
      return std::make_unique<ClippedMbrApproximation>(poly);
  }
  return nullptr;
}

const char* ApproxKindName(ApproxKind kind) {
  switch (kind) {
    case ApproxKind::kMbr:
      return "MBR";
    case ApproxKind::kRotatedMbr:
      return "RMBR";
    case ApproxKind::kCircle:
      return "MBC";
    case ApproxKind::kEllipse:
      return "MBE";
    case ApproxKind::kConvexHull:
      return "CH";
    case ApproxKind::kNCorner:
      return "5-C";
    case ApproxKind::kClippedMbr:
      return "CBR";
  }
  return "?";
}

Quality MeasureQuality(const Approximation& approx, const geom::Polygon& poly,
                       double sample_step) {
  Quality q;
  q.name = approx.Name();
  const double poly_area = poly.Area();
  q.area_ratio = poly_area > 0 ? approx.Area() / poly_area : 0.0;
  const geom::Ring outline = approx.Outline(256);
  q.hausdorff = geom::HausdorffSampled(outline, poly.outer(), sample_step);
  q.memory_bytes = approx.MemoryBytes();
  return q;
}

std::vector<Quality> MeasureAllApproximations(const geom::Polygon& poly,
                                              double sample_step) {
  std::vector<Quality> out;
  for (const ApproxKind kind :
       {ApproxKind::kMbr, ApproxKind::kRotatedMbr, ApproxKind::kCircle,
        ApproxKind::kEllipse, ApproxKind::kConvexHull, ApproxKind::kNCorner,
        ApproxKind::kClippedMbr}) {
    const auto approx = BuildApproximation(kind, poly);
    out.push_back(MeasureQuality(*approx, poly, sample_step));
  }
  return out;
}

}  // namespace dbsa::approx
