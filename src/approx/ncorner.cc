#include "approx/ncorner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/convex_hull.h"

namespace dbsa::approx {

namespace {

// Containment in a CCW convex ring: the point must be left of every edge.
bool ConvexContains(const geom::Ring& ring, const geom::Point& p) {
  const size_t n = ring.size();
  if (n < 3) return false;
  for (size_t i = 0; i < n; ++i) {
    if (geom::Orient(ring[i], ring[(i + 1) % n], p) < -1e-9) return false;
  }
  return true;
}

// Intersection of infinite lines (a1->a2) and (b1->b2); false if parallel.
bool LineIntersect(const geom::Point& a1, const geom::Point& a2, const geom::Point& b1,
                   const geom::Point& b2, geom::Point* out) {
  const geom::Point da = a2 - a1;
  const geom::Point db = b2 - b1;
  const double denom = da.Cross(db);
  if (std::fabs(denom) < 1e-18) return false;
  const double t = (b1 - a1).Cross(db) / denom;
  *out = a1 + da * t;
  return true;
}

}  // namespace

NCornerApproximation::NCornerApproximation(const geom::Polygon& poly, int n_corners)
    : n_corners_(std::max(n_corners, 3)) {
  ring_ = geom::ConvexHullOf(poly);
  // Greedy edge removal: deleting edge (v_i, v_{i+1}) extends its two
  // neighbouring edges to their intersection x, replacing both endpoints
  // by x. Coverage is preserved (x lies outward of the removed edge) and
  // the vertex count drops by one; pick the removal adding minimum area.
  while (static_cast<int>(ring_.size()) > n_corners_) {
    const size_t n = ring_.size();
    double best_area = std::numeric_limits<double>::infinity();
    size_t best_i = n;
    geom::Point best_pt;
    for (size_t i = 0; i < n; ++i) {
      const geom::Point& a = ring_[(i + n - 1) % n];  // Predecessor of v_i.
      const geom::Point& b = ring_[i];                // Edge start.
      const geom::Point& c = ring_[(i + 1) % n];      // Edge end.
      const geom::Point& d = ring_[(i + 2) % n];      // Successor of v_{i+1}.
      geom::Point x;
      if (!LineIntersect(a, b, d, c, &x)) continue;
      // x must lie outward of edge (b, c): to its right for a CCW ring,
      // and ahead of b along (a->b) so the ring stays convex.
      if (geom::Orient(b, c, x) > 1e-12) continue;
      if ((x - b).Dot(b - a) < -1e-12) continue;
      if ((x - c).Dot(c - d) < -1e-12) continue;
      const double added = 0.5 * std::fabs((x - b).Cross(c - b));
      if (added < best_area) {
        best_area = added;
        best_i = i;
        best_pt = x;
      }
    }
    if (best_i == n) break;  // No valid merge (parallel neighbours).
    geom::Ring next_ring;
    next_ring.reserve(n - 1);
    const size_t skip = (best_i + 1) % n;
    for (size_t j = 0; j < n; ++j) {
      if (j == best_i) {
        next_ring.push_back(best_pt);
      } else if (j != skip) {
        next_ring.push_back(ring_[j]);
      }
    }
    ring_ = std::move(next_ring);
  }
}

std::string NCornerApproximation::Name() const {
  return std::to_string(n_corners_) + "-C";
}

bool NCornerApproximation::Contains(const geom::Point& p) const {
  return ConvexContains(ring_, p);
}

double NCornerApproximation::Area() const { return std::fabs(geom::SignedArea(ring_)); }

ConvexHullApproximation::ConvexHullApproximation(const geom::Polygon& poly)
    : ring_(geom::ConvexHullOf(poly)) {}

bool ConvexHullApproximation::Contains(const geom::Point& p) const {
  return ConvexContains(ring_, p);
}

double ConvexHullApproximation::Area() const {
  return std::fabs(geom::SignedArea(ring_));
}

}  // namespace dbsa::approx
