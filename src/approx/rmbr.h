// Rotated Minimum Bounding Rectangle: the minimum-area oriented rectangle,
// found with rotating calipers over the convex hull.

#ifndef DBSA_APPROX_RMBR_H_
#define DBSA_APPROX_RMBR_H_

#include "approx/approximation.h"

namespace dbsa::approx {

/// Minimum-area oriented bounding rectangle.
class RotatedMbrApproximation : public Approximation {
 public:
  explicit RotatedMbrApproximation(const geom::Polygon& poly);

  std::string Name() const override { return "RMBR"; }
  bool Contains(const geom::Point& p) const override;
  double Area() const override { return extent_u_ * extent_v_; }
  geom::Ring Outline(int samples) const override;
  size_t MemoryBytes() const override { return 6 * sizeof(double); }

 private:
  geom::Point center_;  ///< Rectangle center.
  geom::Point axis_u_;  ///< Unit vector of the first axis.
  double extent_u_ = 0.0;
  double extent_v_ = 0.0;
};

}  // namespace dbsa::approx

#endif  // DBSA_APPROX_RMBR_H_
