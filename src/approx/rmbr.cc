#include "approx/rmbr.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "geom/convex_hull.h"

namespace dbsa::approx {

RotatedMbrApproximation::RotatedMbrApproximation(const geom::Polygon& poly) {
  const geom::Ring hull = geom::ConvexHullOf(poly);
  const size_t n = hull.size();
  if (n == 0) return;
  if (n < 3) {
    center_ = hull[0];
    axis_u_ = {1.0, 0.0};
    if (n == 2) {
      const geom::Point d = hull[1] - hull[0];
      const double len = d.Norm();
      center_ = (hull[0] + hull[1]) * 0.5;
      axis_u_ = len > 0 ? d / len : geom::Point{1.0, 0.0};
      extent_u_ = len;
    }
    return;
  }

  // Rotating calipers: the minimum-area rectangle has one side collinear
  // with a hull edge; try each edge direction.
  double best_area = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < n; ++i) {
    const geom::Point e = hull[(i + 1) % n] - hull[i];
    const double len = e.Norm();
    if (len <= 0.0) continue;
    const geom::Point u = e / len;
    const geom::Point v{-u.y, u.x};
    double min_u = std::numeric_limits<double>::infinity(), max_u = -min_u;
    double min_v = min_u, max_v = -min_u;
    for (const geom::Point& p : hull) {
      const double pu = p.Dot(u);
      const double pv = p.Dot(v);
      min_u = std::min(min_u, pu);
      max_u = std::max(max_u, pu);
      min_v = std::min(min_v, pv);
      max_v = std::max(max_v, pv);
    }
    const double area = (max_u - min_u) * (max_v - min_v);
    if (area < best_area) {
      best_area = area;
      axis_u_ = u;
      extent_u_ = max_u - min_u;
      extent_v_ = max_v - min_v;
      const double cu = (min_u + max_u) * 0.5;
      const double cv = (min_v + max_v) * 0.5;
      center_ = u * cu + v * cv;
    }
  }
}

bool RotatedMbrApproximation::Contains(const geom::Point& p) const {
  const geom::Point d = p - center_;
  const geom::Point v{-axis_u_.y, axis_u_.x};
  return std::fabs(d.Dot(axis_u_)) <= extent_u_ * 0.5 + 1e-12 &&
         std::fabs(d.Dot(v)) <= extent_v_ * 0.5 + 1e-12;
}

geom::Ring RotatedMbrApproximation::Outline(int /*samples*/) const {
  const geom::Point v{-axis_u_.y, axis_u_.x};
  const geom::Point du = axis_u_ * (extent_u_ * 0.5);
  const geom::Point dv = v * (extent_v_ * 0.5);
  return {center_ - du - dv, center_ + du - dv, center_ + du + dv, center_ - du + dv};
}

}  // namespace dbsa::approx
