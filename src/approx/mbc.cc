#include "approx/mbc.h"

#include <cmath>
#include <vector>

#include "util/random.h"

namespace dbsa::approx {

namespace {

struct Circle {
  geom::Point c;
  double r2 = -1.0;  // Squared radius; negative means empty.

  bool Contains(const geom::Point& p) const {
    return r2 >= 0 && geom::Distance2(p, c) <= r2 * (1.0 + 1e-10) + 1e-20;
  }
};

Circle FromTwo(const geom::Point& a, const geom::Point& b) {
  Circle circ;
  circ.c = (a + b) * 0.5;
  circ.r2 = geom::Distance2(a, b) * 0.25;
  return circ;
}

Circle FromThree(const geom::Point& a, const geom::Point& b, const geom::Point& c) {
  // Circumcircle via perpendicular bisectors.
  const double d = 2.0 * (a.x * (b.y - c.y) + b.x * (c.y - a.y) + c.x * (a.y - b.y));
  if (std::fabs(d) < 1e-18) {
    // Collinear: use the widest pair.
    Circle ab = FromTwo(a, b), bc = FromTwo(b, c), ac = FromTwo(a, c);
    Circle best = ab;
    if (bc.r2 > best.r2) best = bc;
    if (ac.r2 > best.r2) best = ac;
    return best;
  }
  const double a2 = a.Norm2(), b2 = b.Norm2(), c2 = c.Norm2();
  Circle circ;
  circ.c.x = (a2 * (b.y - c.y) + b2 * (c.y - a.y) + c2 * (a.y - b.y)) / d;
  circ.c.y = (a2 * (c.x - b.x) + b2 * (a.x - c.x) + c2 * (b.x - a.x)) / d;
  circ.r2 = geom::Distance2(circ.c, a);
  return circ;
}

// Welzl's move-to-front algorithm, iterative-restart formulation.
Circle Welzl(std::vector<geom::Point> pts) {
  Rng rng(0xC1DCu);
  // Shuffle for expected-linear behaviour.
  for (size_t i = pts.size(); i > 1; --i) {
    std::swap(pts[i - 1], pts[rng.Below(i)]);
  }
  Circle circ;
  for (size_t i = 0; i < pts.size(); ++i) {
    if (circ.Contains(pts[i])) continue;
    circ = Circle{pts[i], 0.0};
    for (size_t j = 0; j < i; ++j) {
      if (circ.Contains(pts[j])) continue;
      circ = FromTwo(pts[i], pts[j]);
      for (size_t k = 0; k < j; ++k) {
        if (circ.Contains(pts[k])) continue;
        circ = FromThree(pts[i], pts[j], pts[k]);
      }
    }
  }
  return circ;
}

}  // namespace

CircleApproximation::CircleApproximation(const geom::Polygon& poly) {
  std::vector<geom::Point> pts = poly.outer();
  for (const geom::Ring& h : poly.holes()) pts.insert(pts.end(), h.begin(), h.end());
  if (pts.empty()) return;
  const Circle circ = Welzl(std::move(pts));
  center_ = circ.c;
  radius_ = circ.r2 > 0 ? std::sqrt(circ.r2) : 0.0;
}

geom::Ring CircleApproximation::Outline(int samples) const {
  geom::Ring ring;
  const int n = samples < 8 ? 8 : samples;
  ring.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double t = 2.0 * 3.141592653589793 * i / n;
    ring.push_back({center_.x + radius_ * std::cos(t), center_.y + radius_ * std::sin(t)});
  }
  return ring;
}

}  // namespace dbsa::approx
