// Minimum Bounding Ellipse (Khachiyan's algorithm on the hull vertices).

#ifndef DBSA_APPROX_MBE_H_
#define DBSA_APPROX_MBE_H_

#include "approx/approximation.h"

namespace dbsa::approx {

/// Minimum-volume enclosing ellipse, computed to a small tolerance with
/// Khachiyan's iterative scheme and then inflated to guarantee coverage.
class EllipseApproximation : public Approximation {
 public:
  explicit EllipseApproximation(const geom::Polygon& poly);

  std::string Name() const override { return "MBE"; }
  bool Contains(const geom::Point& p) const override;
  double Area() const override;
  geom::Ring Outline(int samples) const override;
  size_t MemoryBytes() const override { return 6 * sizeof(double); }

 private:
  geom::Point center_;
  // Inverse shape matrix: (p-c)^T A (p-c) <= 1 defines the ellipse.
  double a11_ = 0.0, a12_ = 0.0, a22_ = 0.0;
};

}  // namespace dbsa::approx

#endif  // DBSA_APPROX_MBE_H_
