// Minimum-bounding n-corner: a convex polygon with at most n vertices that
// encloses the geometry, built by greedy edge-merging of the convex hull
// (each merge replaces two adjacent hull edges by their intersection,
// adding the least possible area).

#ifndef DBSA_APPROX_NCORNER_H_
#define DBSA_APPROX_NCORNER_H_

#include "approx/approximation.h"

namespace dbsa::approx {

/// Convex n-corner enclosure (n >= 3).
class NCornerApproximation : public Approximation {
 public:
  NCornerApproximation(const geom::Polygon& poly, int n_corners);

  std::string Name() const override;
  bool Contains(const geom::Point& p) const override;
  double Area() const override;
  geom::Ring Outline(int /*samples*/) const override { return ring_; }
  size_t MemoryBytes() const override { return ring_.size() * sizeof(geom::Point); }

 private:
  int n_corners_;
  geom::Ring ring_;  ///< CCW convex ring.
};

/// Convex hull as an approximation (the n = hull-size special case).
class ConvexHullApproximation : public Approximation {
 public:
  explicit ConvexHullApproximation(const geom::Polygon& poly);

  std::string Name() const override { return "CH"; }
  bool Contains(const geom::Point& p) const override;
  double Area() const override;
  geom::Ring Outline(int /*samples*/) const override { return ring_; }
  size_t MemoryBytes() const override { return ring_.size() * sizeof(geom::Point); }

 private:
  geom::Ring ring_;
};

}  // namespace dbsa::approx

#endif  // DBSA_APPROX_NCORNER_H_
