#include "approx/mbe.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "geom/convex_hull.h"

namespace dbsa::approx {

EllipseApproximation::EllipseApproximation(const geom::Polygon& poly) {
  const geom::Ring hull = geom::ConvexHullOf(poly);
  const size_t n = hull.size();
  if (n == 0) return;
  if (n == 1) {
    center_ = hull[0];
    a11_ = a22_ = 1e12;  // Degenerate: a tiny ellipse around the point.
    return;
  }

  // Khachiyan's algorithm in d = 2: lift points to (x, y, 1) and iterate
  // weights u until the Mahalanobis bound converges.
  std::vector<double> u(n, 1.0 / static_cast<double>(n));
  const int max_iter = 200;
  const double tol = 1e-7;
  for (int iter = 0; iter < max_iter; ++iter) {
    // X = sum u_i q_i q_i^T for lifted q_i (3x3 symmetric).
    double s00 = 0, s01 = 0, s02 = 0, s11 = 0, s12 = 0, s22 = 0;
    for (size_t i = 0; i < n; ++i) {
      const double x = hull[i].x, y = hull[i].y, w = u[i];
      s00 += w * x * x;
      s01 += w * x * y;
      s02 += w * x;
      s11 += w * y * y;
      s12 += w * y;
      s22 += w;
    }
    // Invert the 3x3 symmetric matrix.
    const double c00 = s11 * s22 - s12 * s12;
    const double c01 = s02 * s12 - s01 * s22;
    const double c02 = s01 * s12 - s02 * s11;
    const double det = s00 * c00 + s01 * c01 + s02 * c02;
    if (std::fabs(det) < 1e-30) break;
    const double inv = 1.0 / det;
    const double i00 = c00 * inv;
    const double i01 = c01 * inv;
    const double i02 = c02 * inv;
    const double i11 = (s00 * s22 - s02 * s02) * inv;
    const double i12 = (s01 * s02 - s00 * s12) * inv;
    const double i22 = (s00 * s11 - s01 * s01) * inv;

    // M_i = q_i^T X^{-1} q_i; the farthest point gets more weight.
    double max_m = -1.0;
    size_t max_i = 0;
    for (size_t i = 0; i < n; ++i) {
      const double x = hull[i].x, y = hull[i].y;
      const double m = x * (i00 * x + i01 * y + i02) + y * (i01 * x + i11 * y + i12) +
                       (i02 * x + i12 * y + i22);
      if (m > max_m) {
        max_m = m;
        max_i = i;
      }
    }
    const double step = (max_m - 3.0) / (3.0 * (max_m - 1.0));
    if (max_m - 3.0 < tol * 3.0) break;
    for (double& w : u) w *= (1.0 - step);
    u[max_i] += step;
  }

  // Center and covariance from the final weights.
  double cx = 0, cy = 0;
  for (size_t i = 0; i < n; ++i) {
    cx += u[i] * hull[i].x;
    cy += u[i] * hull[i].y;
  }
  center_ = {cx, cy};
  double p11 = 0, p12 = 0, p22 = 0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = hull[i].x - cx, dy = hull[i].y - cy;
    p11 += u[i] * dx * dx;
    p12 += u[i] * dx * dy;
    p22 += u[i] * dy * dy;
  }
  // Shape matrix A = (1/d) * P^{-1} with d = 2.
  const double det = p11 * p22 - p12 * p12;
  if (std::fabs(det) < 1e-30) {
    a11_ = a22_ = 1e12;
    a12_ = 0.0;
  } else {
    const double inv = 1.0 / (2.0 * det);
    a11_ = p22 * inv;
    a12_ = -p12 * inv;
    a22_ = p11 * inv;
  }

  // Inflate so every hull vertex is strictly covered (Khachiyan stops at a
  // tolerance; conservativeness is non-negotiable for a filter).
  double worst = 0.0;
  for (const geom::Point& p : hull) {
    const double dx = p.x - center_.x, dy = p.y - center_.y;
    const double q = a11_ * dx * dx + 2.0 * a12_ * dx * dy + a22_ * dy * dy;
    worst = std::max(worst, q);
  }
  if (worst > 0.0) {
    const double scale = 1.0 / worst;
    a11_ *= scale;
    a12_ *= scale;
    a22_ *= scale;
  }
}

bool EllipseApproximation::Contains(const geom::Point& p) const {
  const double dx = p.x - center_.x, dy = p.y - center_.y;
  return a11_ * dx * dx + 2.0 * a12_ * dx * dy + a22_ * dy * dy <= 1.0 + 1e-9;
}

double EllipseApproximation::Area() const {
  const double det = a11_ * a22_ - a12_ * a12_;
  if (det <= 0.0) return 0.0;
  return 3.141592653589793 / std::sqrt(det);
}

geom::Ring EllipseApproximation::Outline(int samples) const {
  // Eigen-decompose A to get the principal axes.
  const double tr = a11_ + a22_;
  const double det = a11_ * a22_ - a12_ * a12_;
  const double disc = std::sqrt(std::max(tr * tr / 4.0 - det, 0.0));
  const double l1 = tr / 2.0 + disc;  // Larger eigenvalue -> shorter axis.
  const double l2 = tr / 2.0 - disc;
  double vx = 1.0, vy = 0.0;
  if (std::fabs(a12_) > 1e-30) {
    vx = l1 - a22_;
    vy = a12_;
    const double norm = std::sqrt(vx * vx + vy * vy);
    vx /= norm;
    vy /= norm;
  } else if (a22_ > a11_) {
    vx = 0.0;
    vy = 1.0;
  }
  const double r1 = l1 > 0 ? 1.0 / std::sqrt(l1) : 0.0;
  const double r2 = l2 > 0 ? 1.0 / std::sqrt(l2) : 0.0;

  geom::Ring ring;
  const int n = samples < 8 ? 8 : samples;
  ring.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double t = 2.0 * 3.141592653589793 * i / n;
    const double eu = r1 * std::cos(t);
    const double ev = r2 * std::sin(t);
    ring.push_back({center_.x + eu * vx - ev * vy, center_.y + eu * vy + ev * vx});
  }
  return ring;
}

}  // namespace dbsa::approx
