#include "approx/mbr.h"

namespace dbsa::approx {

geom::Ring MbrApproximation::Outline(int /*samples*/) const {
  return {box_.min,
          {box_.max.x, box_.min.y},
          box_.max,
          {box_.min.x, box_.max.y}};
}

}  // namespace dbsa::approx
