// Approximation-quality metrics: false area and measured Hausdorff
// distance. These quantify Section 2.2's argument that MBR-family
// approximations have data-dependent error while rasters have a tunable,
// geometry-independent bound.

#ifndef DBSA_APPROX_QUALITY_H_
#define DBSA_APPROX_QUALITY_H_

#include "approx/approximation.h"

namespace dbsa::approx {

/// Quality report of one approximation vs its source polygon.
struct Quality {
  std::string name;
  /// approx_area / polygon_area (>= 1 for conservative approximations).
  double area_ratio = 0.0;
  /// Sampled Hausdorff distance between the approximation outline and the
  /// polygon outer ring — the paper's distance-error notion.
  double hausdorff = 0.0;
  size_t memory_bytes = 0;
};

/// Measures an approximation against the polygon. sample_step controls
/// the boundary sampling for the Hausdorff estimate.
Quality MeasureQuality(const Approximation& approx, const geom::Polygon& poly,
                       double sample_step);

/// Builds and measures the full zoo (factory from approximation.h).
std::vector<Quality> MeasureAllApproximations(const geom::Polygon& poly,
                                              double sample_step);

}  // namespace dbsa::approx

#endif  // DBSA_APPROX_QUALITY_H_
