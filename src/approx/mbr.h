// Minimum Bounding Rectangle — Figure 1(a), the approximation the paper's
// baselines filter with.

#ifndef DBSA_APPROX_MBR_H_
#define DBSA_APPROX_MBR_H_

#include "approx/approximation.h"
#include "geom/box.h"

namespace dbsa::approx {

/// Axis-aligned minimum bounding rectangle of a polygon.
class MbrApproximation : public Approximation {
 public:
  explicit MbrApproximation(const geom::Polygon& poly) : box_(poly.bounds()) {}

  std::string Name() const override { return "MBR"; }
  bool Contains(const geom::Point& p) const override { return box_.Contains(p); }
  double Area() const override { return box_.Area(); }
  geom::Ring Outline(int samples) const override;
  size_t MemoryBytes() const override { return sizeof(geom::Box); }

  const geom::Box& box() const { return box_; }

 private:
  geom::Box box_;
};

}  // namespace dbsa::approx

#endif  // DBSA_APPROX_MBR_H_
