// Minimum Bounding Circle (Welzl's algorithm).

#ifndef DBSA_APPROX_MBC_H_
#define DBSA_APPROX_MBC_H_

#include "approx/approximation.h"

namespace dbsa::approx {

/// Smallest enclosing circle of the polygon's vertices.
class CircleApproximation : public Approximation {
 public:
  explicit CircleApproximation(const geom::Polygon& poly);

  std::string Name() const override { return "MBC"; }
  bool Contains(const geom::Point& p) const override {
    return geom::Distance2(p, center_) <= radius_ * radius_ * (1.0 + 1e-12);
  }
  double Area() const override { return 3.141592653589793 * radius_ * radius_; }
  geom::Ring Outline(int samples) const override;
  size_t MemoryBytes() const override { return 3 * sizeof(double); }

  const geom::Point& center() const { return center_; }
  double radius() const { return radius_; }

 private:
  geom::Point center_;
  double radius_ = 0.0;
};

}  // namespace dbsa::approx

#endif  // DBSA_APPROX_MBC_H_
