// Clipped Bounding Rectangle (Sidlauskas et al., ICDE'18, cited by the
// paper): an MBR whose empty corners are clipped by 45-degree lines, each
// pushed as far as the geometry allows.

#ifndef DBSA_APPROX_CLIPPED_H_
#define DBSA_APPROX_CLIPPED_H_

#include "approx/approximation.h"
#include "geom/box.h"

namespace dbsa::approx {

/// MBR with four maximal 45-degree corner clips.
class ClippedMbrApproximation : public Approximation {
 public:
  explicit ClippedMbrApproximation(const geom::Polygon& poly);

  std::string Name() const override { return "CBR"; }
  bool Contains(const geom::Point& p) const override;
  double Area() const override;
  geom::Ring Outline(int samples) const override;
  size_t MemoryBytes() const override {
    return sizeof(geom::Box) + 4 * sizeof(double);
  }

 private:
  geom::Box box_;
  // Support values of the geometry along the four diagonal directions:
  // points inside satisfy  x+y >= lo_pp, x+y <= hi_pp, x-y >= lo_pm,
  // x-y <= hi_pm.
  double lo_pp_ = 0.0, hi_pp_ = 0.0, lo_pm_ = 0.0, hi_pm_ = 0.0;
};

}  // namespace dbsa::approx

#endif  // DBSA_APPROX_CLIPPED_H_
