#include "approx/clipped.h"

#include <algorithm>
#include <limits>

namespace dbsa::approx {

ClippedMbrApproximation::ClippedMbrApproximation(const geom::Polygon& poly)
    : box_(poly.bounds()) {
  lo_pp_ = lo_pm_ = std::numeric_limits<double>::infinity();
  hi_pp_ = hi_pm_ = -std::numeric_limits<double>::infinity();
  auto visit = [&](const geom::Ring& ring) {
    for (const geom::Point& p : ring) {
      lo_pp_ = std::min(lo_pp_, p.x + p.y);
      hi_pp_ = std::max(hi_pp_, p.x + p.y);
      lo_pm_ = std::min(lo_pm_, p.x - p.y);
      hi_pm_ = std::max(hi_pm_, p.x - p.y);
    }
  };
  visit(poly.outer());
  // Holes cannot extend the support; outer ring suffices.
}

bool ClippedMbrApproximation::Contains(const geom::Point& p) const {
  if (!box_.Contains(p)) return false;
  const double pp = p.x + p.y;
  const double pm = p.x - p.y;
  return pp >= lo_pp_ - 1e-12 && pp <= hi_pp_ + 1e-12 && pm >= lo_pm_ - 1e-12 &&
         pm <= hi_pm_ + 1e-12;
}

namespace {

// Area of the right triangle clipped off a box corner by a 45-degree line
// at (signed) margin m, clamped to the box dimensions.
double CornerClipArea(double m, double w, double h) {
  const double side = std::clamp(m, 0.0, std::min(w, h));
  return 0.5 * side * side;
}

}  // namespace

double ClippedMbrApproximation::Area() const {
  const double w = box_.Width();
  const double h = box_.Height();
  double area = w * h;
  // Corner (min,min) clipped by x+y >= lo_pp.
  area -= CornerClipArea(lo_pp_ - (box_.min.x + box_.min.y), w, h);
  // Corner (max,max) clipped by x+y <= hi_pp.
  area -= CornerClipArea((box_.max.x + box_.max.y) - hi_pp_, w, h);
  // Corner (min,max) clipped by x-y >= lo_pm.
  area -= CornerClipArea(lo_pm_ - (box_.min.x - box_.max.y), w, h);
  // Corner (max,min) clipped by x-y <= hi_pm.
  area -= CornerClipArea((box_.max.x - box_.min.y) - hi_pm_, w, h);
  return std::max(area, 0.0);
}

geom::Ring ClippedMbrApproximation::Outline(int /*samples*/) const {
  // Start from the box corners, inserting clip segments where active.
  geom::Ring ring;
  const double x0 = box_.min.x, y0 = box_.min.y, x1 = box_.max.x, y1 = box_.max.y;
  auto push_unique = [&ring](geom::Point p) {
    if (ring.empty() || geom::Distance2(ring.back(), p) > 1e-24) ring.push_back(p);
  };

  // Bottom-left corner, clip x+y = lo_pp.
  if (lo_pp_ > x0 + y0 + 1e-12) {
    push_unique({x0, std::min(lo_pp_ - x0, y1)});
    push_unique({std::min(lo_pp_ - y0, x1), y0});
  } else {
    push_unique({x0, y0});
  }
  // Bottom-right corner, clip x-y = hi_pm.
  if (hi_pm_ < x1 - y0 - 1e-12) {
    push_unique({std::max(hi_pm_ + y0, x0), y0});
    push_unique({x1, std::max(x1 - hi_pm_, y0)});
  } else {
    push_unique({x1, y0});
  }
  // Top-right corner, clip x+y = hi_pp.
  if (hi_pp_ < x1 + y1 - 1e-12) {
    push_unique({x1, std::max(hi_pp_ - x1, y0)});
    push_unique({std::max(hi_pp_ - y1, x0), y1});
  } else {
    push_unique({x1, y1});
  }
  // Top-left corner, clip x-y = lo_pm.
  if (lo_pm_ > x0 - y1 + 1e-12) {
    push_unique({std::min(lo_pm_ + y1, x1), y1});
    push_unique({x0, std::min(x0 - lo_pm_, y1)});
  } else {
    push_unique({x0, y1});
  }
  if (ring.size() >= 2 && geom::Distance2(ring.front(), ring.back()) <= 1e-24) {
    ring.pop_back();
  }
  return ring;
}

}  // namespace dbsa::approx
