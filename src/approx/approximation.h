// Common interface for the classical geometric approximations the paper
// surveys (Section 2.1, citing Brinkhoff et al.): MBR, rotated MBR,
// minimum bounding circle/ellipse, convex hull, n-corner and clipped
// bounding rectangle. These serve two purposes in the reproduction:
//
//   * baselines for the Figure 2 motivating example (MBR filtering), and
//   * evidence for Section 2.2's observation that, unlike rasters, none of
//     them admits a data-independent distance bound (their Hausdorff
//     distance to the object is data-dependent).

#ifndef DBSA_APPROX_APPROXIMATION_H_
#define DBSA_APPROX_APPROXIMATION_H_

#include <memory>
#include <string>

#include "geom/polygon.h"

namespace dbsa::approx {

/// A conservative outer approximation of a polygon: contains the whole
/// geometry, so a negative Contains() answer is exact while a positive
/// answer may be a false positive.
class Approximation {
 public:
  virtual ~Approximation() = default;

  /// Name for reports ("MBR", "RMBR", ...).
  virtual std::string Name() const = 0;

  /// Containment test against the approximation (not the exact geometry).
  virtual bool Contains(const geom::Point& p) const = 0;

  /// Area of the approximation (>= area of the polygon).
  virtual double Area() const = 0;

  /// Polygonal outline of the approximation boundary, for measuring the
  /// Hausdorff distance to the original geometry. Curved shapes are
  /// sampled with `samples` vertices.
  virtual geom::Ring Outline(int samples) const = 0;

  /// Approximate storage cost.
  virtual size_t MemoryBytes() const = 0;
};

enum class ApproxKind {
  kMbr,
  kRotatedMbr,
  kCircle,
  kEllipse,
  kConvexHull,
  kNCorner,
  kClippedMbr,
};

/// Factory covering the whole zoo.
std::unique_ptr<Approximation> BuildApproximation(ApproxKind kind,
                                                  const geom::Polygon& poly);

const char* ApproxKindName(ApproxKind kind);

}  // namespace dbsa::approx

#endif  // DBSA_APPROX_APPROXIMATION_H_
