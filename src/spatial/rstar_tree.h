// R*-tree (Beckmann et al., SIGMOD'90) — the paper's main exact baseline
// (it benchmarks the Boost.Geometry R*-tree). Implements ChooseSubtree
// with overlap-minimal leaf choice, margin-based split-axis selection,
// overlap-minimal split distribution, and forced reinsert at the leaf
// level.

#ifndef DBSA_SPATIAL_RSTAR_TREE_H_
#define DBSA_SPATIAL_RSTAR_TREE_H_

#include <cstdint>
#include <vector>

#include "geom/box.h"

namespace dbsa::spatial {

/// Dynamic R*-tree over (box, id) entries. Points are boxes with
/// min == max.
class RStarTree {
 public:
  struct Options {
    int max_entries = 32;
    int min_entries = 13;         ///< ~40% of max, per the R* paper.
    bool forced_reinsert = true;  ///< Reinsert 30% on first leaf overflow.
  };

  RStarTree() : RStarTree(Options{}) {}
  explicit RStarTree(Options opts);

  void Insert(const geom::Box& box, uint32_t id);

  /// Ids of all entries whose box intersects the query box.
  void QueryBox(const geom::Box& query, std::vector<uint32_t>* out) const;

  /// Visits ids of all entries whose box intersects the query box.
  template <typename Fn>
  void VisitBox(const geom::Box& query, Fn&& fn) const {
    if (size_ == 0) return;
    VisitRec(root_, query, fn);
  }

  size_t size() const { return size_; }
  int height() const { return height_; }
  size_t MemoryBytes() const;

 private:
  struct Entry {
    geom::Box box;
    uint32_t handle = 0;  ///< Child node index (inner) or entry id (leaf).
  };
  struct Node {
    bool leaf = true;
    std::vector<Entry> entries;
  };

  static constexpr uint32_t kNone = 0xffffffffu;

  geom::Box NodeBox(uint32_t node_idx) const;
  uint32_t NewNode(bool leaf);

  /// Returns the index of the new sibling if the node split, else kNone.
  uint32_t InsertRec(uint32_t node_idx, const Entry& entry);
  uint32_t ChooseChild(const Node& node, const geom::Box& box) const;

  /// R* overflow treatment: forced reinsert (leaves, once per top-level
  /// insertion) or split. Returns sibling index or kNone.
  uint32_t HandleOverflow(uint32_t node_idx);
  uint32_t SplitNode(uint32_t node_idx);

  template <typename Fn>
  void VisitRec(uint32_t node_idx, const geom::Box& query, Fn& fn) const {
    const Node& node = nodes_[node_idx];
    for (const Entry& e : node.entries) {
      if (!e.box.Intersects(query)) continue;
      if (node.leaf) {
        fn(e.handle);
      } else {
        VisitRec(e.handle, query, fn);
      }
    }
  }

  Options opts_;
  std::vector<Node> nodes_;
  std::vector<Entry> pending_;  ///< Forced-reinsert queue.
  uint32_t root_ = 0;
  size_t size_ = 0;
  int height_ = 1;
  bool reinsert_used_ = false;
};

}  // namespace dbsa::spatial

#endif  // DBSA_SPATIAL_RSTAR_TREE_H_
